(* Serving layer: artifact round-trips (bitwise), corrupt/truncated
   artifact detection, compiled pole-residue accuracy against direct
   descriptor evaluation, LRU cache accounting, and the line-delimited
   JSON protocol including its typed error paths. *)

open Linalg
open Statespace
open Serve

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let spec ports =
  { Random_sys.order = 16; ports; rank_d = ports; freq_lo = 1e2;
    freq_hi = 1e6; damping = 0.12; seed = 7 + ports }

let sys_of ports = Random_sys.generate (spec ports)

let model_of sys =
  Mfti.Engine.Model.make
    ~sigma:[| 3.0; 1.5; 0.25 |]
    ~stats:{ Mfti.Engine.Model.selected_units = 4; total_units = 9;
             iterations = 3; history = [| 0.5; 0.25; 0.125 |] }
    ~timings:[ ("ingest", 0.001); ("reduce", 0.002) ]
    ~rank:(Descriptor.order sys) sys

let artifact_of ?(name = "test-model") sys =
  Artifact.v ~name ~fit_err:3.25e-7 ~created:1.7e9 (model_of sys)

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mfti_serve_test_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* bitwise float comparison: IEEE bits, so NaN = NaN and -0. <> 0. *)
let same_float what x y =
  if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then
    Alcotest.failf "%s: %h <> %h" what x y

let same_mat what x y =
  let dx = Cmat.dims x and dy = Cmat.dims y in
  Alcotest.(check (pair int int)) (what ^ " dims") dx dy;
  let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
  let yr = Cmat.unsafe_re y and yi = Cmat.unsafe_im y in
  Array.iteri (fun k v -> same_float (Printf.sprintf "%s re[%d]" what k) v yr.(k)) xr;
  Array.iteri (fun k v -> same_float (Printf.sprintf "%s im[%d]" what k) v yi.(k)) xi

let rel_err got exact =
  Cmat.norm_fro (Cmat.sub got exact)
  /. Stdlib.max (Cmat.norm_fro exact) 1e-300

let expect_parse what = function
  | Error (Mfti_error.Parse _) -> ()
  | Error e ->
    Alcotest.failf "%s: expected Parse error, got %s" what
      (Mfti_error.to_string e)
  | Ok _ -> Alcotest.failf "%s: damaged artifact was accepted" what

(* ------------------------------------------------------------------ *)
(* Artifact *)

let test_artifact_round_trip () =
  let sys = sys_of 3 in
  let art = artifact_of sys in
  match Artifact.of_string (Artifact.to_string art) with
  | Error e -> Alcotest.failf "decode failed: %s" (Mfti_error.to_string e)
  | Ok got ->
    Alcotest.(check string) "name" art.Artifact.name got.Artifact.name;
    same_float "created" art.Artifact.created got.Artifact.created;
    same_float "fit_err" art.Artifact.fit_err got.Artifact.fit_err;
    let m = art.Artifact.model and m' = got.Artifact.model in
    Alcotest.(check int) "rank" (Mfti.Engine.Model.rank m)
      (Mfti.Engine.Model.rank m');
    Array.iteri
      (fun i v -> same_float (Printf.sprintf "sigma[%d]" i) v
          (Mfti.Engine.Model.sigma m').(i))
      (Mfti.Engine.Model.sigma m);
    Alcotest.(check (list (pair string (float 0.)))) "timings"
      (Mfti.Engine.Model.timings m) (Mfti.Engine.Model.timings m');
    (match Mfti.Engine.Model.stats m, Mfti.Engine.Model.stats m' with
     | Some s, Some s' ->
       Alcotest.(check int) "selected" s.Mfti.Engine.Model.selected_units
         s'.Mfti.Engine.Model.selected_units;
       Alcotest.(check int) "iterations" s.Mfti.Engine.Model.iterations
         s'.Mfti.Engine.Model.iterations
     | _ -> Alcotest.fail "stats lost in round trip");
    let d = Mfti.Engine.Model.descriptor m
    and d' = Mfti.Engine.Model.descriptor m' in
    same_mat "E" d.Descriptor.e d'.Descriptor.e;
    same_mat "A" d.Descriptor.a d'.Descriptor.a;
    same_mat "B" d.Descriptor.b d'.Descriptor.b;
    same_mat "C" d.Descriptor.c d'.Descriptor.c;
    same_mat "D" d.Descriptor.d d'.Descriptor.d

(* NaN fit error (the "unknown" marker) must survive the raw-bits path *)
let test_artifact_nan_fit_err () =
  let art = Artifact.v ~name:"n" (model_of (sys_of 1)) in
  match Artifact.of_string (Artifact.to_string art) with
  | Error e -> Alcotest.failf "decode failed: %s" (Mfti_error.to_string e)
  | Ok got ->
    Alcotest.(check bool) "fit_err is nan" true
      (Float.is_nan got.Artifact.fit_err)

let test_artifact_byte_stable () =
  let art = artifact_of (sys_of 2) in
  let s1 = Artifact.to_string art in
  match Artifact.of_string s1 with
  | Error e -> Alcotest.failf "decode failed: %s" (Mfti_error.to_string e)
  | Ok got ->
    let s2 = Artifact.to_string got in
    Alcotest.(check int) "encoded length" (String.length s1) (String.length s2);
    Alcotest.(check bool) "decode/encode is the identity on bytes" true
      (String.equal s1 s2)

let test_artifact_fault_corrupt () =
  let art = artifact_of (sys_of 2) in
  let s = Fault.with_spec "artifact.corrupt" (fun () -> Artifact.to_string art) in
  expect_parse "corrupt header" (Artifact.of_string s)

let test_artifact_fault_truncate () =
  let art = artifact_of (sys_of 2) in
  let s = Fault.with_spec "artifact.truncate" (fun () -> Artifact.to_string art) in
  expect_parse "truncated" (Artifact.of_string s)

let test_artifact_payload_bitflip () =
  let art = artifact_of (sys_of 2) in
  let s = Artifact.to_string art in
  (* flip one bit in the middle of the payload: only the CRC can see it *)
  let b = Bytes.of_string s in
  let k = String.length s / 2 in
  Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0x10));
  expect_parse "payload bit flip" (Artifact.of_string (Bytes.to_string b))

let test_artifact_bad_version () =
  let art = artifact_of (sys_of 2) in
  let s = Artifact.to_string art in
  let b = Bytes.of_string s in
  Bytes.set b 8 '\x63';  (* version field follows the 8-byte magic *)
  expect_parse "future version" (Artifact.of_string (Bytes.to_string b));
  expect_parse "trailing garbage" (Artifact.of_string (s ^ "!!"));
  expect_parse "empty" (Artifact.of_string "");
  expect_parse "not an artifact" (Artifact.of_string "MFTIART\x00 nope")

let test_artifact_file_round_trip () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "m.mfti" in
  let art = artifact_of (sys_of 2) in
  Artifact.save path art;
  let got = Artifact.load_exn path in
  Alcotest.(check string) "name" art.Artifact.name got.Artifact.name;
  same_mat "A"
    (Mfti.Engine.Model.descriptor art.Artifact.model).Descriptor.a
    (Mfti.Engine.Model.descriptor got.Artifact.model).Descriptor.a;
  expect_parse "missing file" (Artifact.load (Filename.concat dir "no.mfti"))

(* property: encoding is deterministic and self-inverse across systems *)
let prop_artifact_round_trip =
  let gen =
    QCheck.Gen.(
      int_range 1 4 >>= fun ports ->
      int_range 1 10 >>= fun order ->
      int_bound 1000 >|= fun seed -> (ports, order, seed))
  in
  let arb =
    QCheck.make gen ~print:(fun (p, n, s) ->
        Printf.sprintf "ports=%d order=%d seed=%d" p n s)
  in
  QCheck.Test.make ~name:"artifact byte-stability across random systems"
    ~count:25 arb
    (fun (ports, order, seed) ->
      let sys =
        Random_sys.generate
          { Random_sys.order; ports; rank_d = ports; freq_lo = 10.;
            freq_hi = 1e5; damping = 0.2; seed }
      in
      let art = Artifact.v ~name:"prop" (Mfti.Engine.Model.make ~rank:order sys) in
      let s1 = Artifact.to_string art in
      match Artifact.of_string s1 with
      | Error _ -> false
      | Ok got -> String.equal s1 (Artifact.to_string got))

(* ------------------------------------------------------------------ *)
(* Compiled *)

let eval_tol = 1e-10

let test_compiled_accuracy () =
  List.iter
    (fun ports ->
      let sys = sys_of ports in
      let c = Compiled.of_descriptor ~tol:1e-11 sys in
      Alcotest.(check bool)
        (Printf.sprintf "ports=%d compiles to pole-residue" ports)
        true (Compiled.mode c = Compiled.Pole_residue);
      Alcotest.(check int) "pole count" (Descriptor.order sys)
        (Array.length (Compiled.poles c));
      Array.iter
        (fun f ->
          let e = rel_err (Compiled.eval_freq c f) (Descriptor.eval_freq sys f) in
          if e > eval_tol then
            Alcotest.failf "ports=%d f=%g: rel err %.3e > %.0e" ports f e
              eval_tol)
        (Sampling.logspace 1e1 1e7 64))
    [ 1; 2; 4; 8 ]

let test_compiled_grid_matches_single () =
  let c = Compiled.of_descriptor ~tol:1e-11 (sys_of 2) in
  let freqs = Sampling.logspace 1e2 1e6 33 in
  let grid = Compiled.eval_grid c freqs in
  Array.iteri
    (fun i f -> same_mat (Printf.sprintf "point %d" i) grid.(i)
        (Compiled.eval_freq c f))
    freqs

let test_compiled_grid_domain_invariant () =
  let c = Compiled.of_descriptor ~tol:1e-11 (sys_of 4) in
  let freqs = Sampling.logspace 1e2 1e6 257 in
  let pooled = Compiled.eval_grid c freqs in
  let sequential = Parallel.with_sequential (fun () -> Compiled.eval_grid c freqs) in
  Array.iteri
    (fun i _ -> same_mat (Printf.sprintf "point %d" i) pooled.(i) sequential.(i))
    freqs

let test_compiled_defective_fault () =
  let sys = sys_of 2 in
  let (c, diag) =
    Fault.with_spec "compiled.defective" (fun () ->
        Diag.with_collector (fun () -> Compiled.of_descriptor sys))
  in
  Alcotest.(check bool) "direct mode" true (Compiled.mode c = Compiled.Direct);
  Alcotest.(check int) "no poles" 0 (Array.length (Compiled.poles c));
  Alcotest.(check bool) "fallback recorded" true
    (Diag.recorded diag "compiled.defective_fallback");
  (* Direct mode is the exact per-point LU evaluation *)
  let s = Cx.jw 1e4 in
  same_mat "direct eval" (Compiled.eval c s) (Descriptor.eval sys s)

let test_compiled_static () =
  let d = Cmat.create 2 2 in
  Cmat.set d 0 0 { Cx.re = 0.5; im = 0. };
  Cmat.set d 1 1 { Cx.re = -0.25; im = 0. };
  let sys =
    Descriptor.create ~e:(Cmat.create 0 0) ~a:(Cmat.create 0 0)
      ~b:(Cmat.create 0 2) ~c:(Cmat.create 2 0) ~d
  in
  let c = Compiled.of_descriptor sys in
  Alcotest.(check bool) "pole-residue" true
    (Compiled.mode c = Compiled.Pole_residue);
  Alcotest.(check int) "no poles" 0 (Array.length (Compiled.poles c));
  same_mat "H = D" (Compiled.eval c (Cx.jw 42.)) d

(* the acceptance-gate headline: pack, reload, recompile, evaluate —
   every float identical to serving the in-memory model *)
let test_pack_load_eval_bit_identical () =
  let sys = sys_of 4 in
  let art = artifact_of sys in
  let dir = fresh_dir () in
  let path = Filename.concat dir "bit.mfti" in
  Artifact.save path art;
  let loaded = Artifact.load_exn path in
  let c0 = Compiled.of_model art.Artifact.model in
  let c1 = Compiled.of_model loaded.Artifact.model in
  Alcotest.(check bool) "same mode" true
    (Compiled.mode c0 = Compiled.mode c1);
  let freqs = Sampling.logspace 1e2 1e6 48 in
  let g0 = Compiled.eval_grid c0 freqs and g1 = Compiled.eval_grid c1 freqs in
  Array.iteri
    (fun i _ -> same_mat (Printf.sprintf "point %d" i) g0.(i) g1.(i))
    freqs

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_eviction_order () =
  let cache = Lru.create ~budget:100 in
  Lru.insert cache "a" ~bytes:40 0;
  Lru.insert cache "b" ~bytes:40 1;
  Lru.insert cache "c" ~bytes:40 2;
  Alcotest.(check bool) "a evicted" false (Lru.mem cache "a");
  Alcotest.(check (list string)) "recency order" [ "c"; "b" ]
    (Lru.keys_by_recency cache);
  Alcotest.(check int) "bytes" 80 (Lru.resident_bytes cache);
  Alcotest.(check int) "evictions" 1 (Lru.stats cache).Lru.evictions

let test_lru_find_bumps_recency () =
  let cache = Lru.create ~budget:100 in
  Lru.insert cache "a" ~bytes:40 0;
  Lru.insert cache "b" ~bytes:40 1;
  Alcotest.(check (option int)) "hit" (Some 0) (Lru.find cache "a");
  Lru.insert cache "c" ~bytes:40 2;
  (* b, not a, is now the LRU victim *)
  Alcotest.(check bool) "a kept" true (Lru.mem cache "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem cache "b");
  let s = Lru.stats cache in
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "count" 2 s.Lru.count

let test_lru_oversize () =
  let cache = Lru.create ~budget:100 in
  Lru.insert cache "a" ~bytes:40 0;
  Lru.insert cache "huge" ~bytes:101 1;
  Alcotest.(check bool) "oversize not cached" false (Lru.mem cache "huge");
  Alcotest.(check bool) "existing entry untouched" true (Lru.mem cache "a");
  Alcotest.(check int) "oversize counted" 1 (Lru.stats cache).Lru.oversize;
  Alcotest.(check int) "no eviction charged" 0 (Lru.stats cache).Lru.evictions

let test_lru_replace_releases_bytes () =
  let cache = Lru.create ~budget:100 in
  Lru.insert cache "a" ~bytes:60 0;
  Lru.insert cache "a" ~bytes:30 1;
  Alcotest.(check int) "bytes after replace" 30 (Lru.resident_bytes cache);
  Alcotest.(check (option int)) "new value" (Some 1) (Lru.find cache "a");
  Lru.remove cache "a";
  Alcotest.(check int) "bytes after remove" 0 (Lru.resident_bytes cache);
  Alcotest.(check int) "still no evictions" 0 (Lru.stats cache).Lru.evictions

(* ------------------------------------------------------------------ *)
(* Server protocol *)

let j_mem k j =
  match Sjson.member k j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S in %s" k (Sjson.to_string j)

let j_bool k j =
  match j_mem k j with
  | Sjson.Bool b -> b
  | _ -> Alcotest.failf "%S is not a bool" k

let j_num k j =
  match j_mem k j with
  | Sjson.Num x -> x
  | _ -> Alcotest.failf "%S is not a number" k

let j_str k j =
  match j_mem k j with
  | Sjson.Str s -> s
  | _ -> Alcotest.failf "%S is not a string" k

let request srv line =
  let text, stop = Server.handle_line srv line in
  (Sjson.parse text, stop)

let expect_error srv ~kind line =
  let j, stop = request srv line in
  Alcotest.(check bool) "not ok" false (j_bool "ok" j);
  Alcotest.(check bool) "does not stop the loop" false stop;
  Alcotest.(check string) "error kind" kind (j_str "kind" (j_mem "error" j))

(* one root with two models, shared across the protocol tests *)
let server_root =
  lazy
    (let dir = fresh_dir () in
     Artifact.save (Filename.concat dir "alpha.mfti")
       (artifact_of ~name:"alpha" (sys_of 2));
     Artifact.save (Filename.concat dir "beta.mfti")
       (artifact_of ~name:"beta" (sys_of 1));
     dir)

let make_server ?cache_bytes () =
  Server.create ?cache_bytes ~root:(Lazy.force server_root) ()

let test_server_list_models () =
  let srv = make_server () in
  let j, _ = request srv {|{"op":"list-models"}|} in
  Alcotest.(check bool) "ok" true (j_bool "ok" j);
  match j_mem "models" j with
  | Sjson.Arr models ->
    Alcotest.(check (list string)) "ids" [ "alpha"; "beta" ]
      (List.map (j_str "id") models);
    List.iter
      (fun m -> Alcotest.(check bool) "not yet cached" false (j_bool "cached" m))
      models
  | _ -> Alcotest.fail "models is not an array"

let test_server_model_info () =
  let srv = make_server () in
  let j, _ = request srv {|{"op":"model-info","model":"alpha"}|} in
  Alcotest.(check bool) "ok" true (j_bool "ok" j);
  Alcotest.(check string) "name" "alpha" (j_str "name" j);
  Alcotest.(check (float 0.)) "order" 16. (j_num "order" j);
  Alcotest.(check (float 0.)) "inputs" 2. (j_num "inputs" j);
  Alcotest.(check string) "mode" "pole-residue" (j_str "mode" j);
  Alcotest.(check bool) "first hit is a miss" false (j_bool "cached" j);
  let j2, _ = request srv {|{"op":"model-info","model":"alpha"}|} in
  Alcotest.(check bool) "second hit is cached" true (j_bool "cached" j2)

let test_server_eval_bit_exact () =
  let srv = make_server () in
  let freqs = [ 1.5e3; 2.5e4; 7.25e5 ] in
  let line =
    Sjson.to_string
      (Sjson.Obj
         [ ("op", Sjson.Str "eval-grid"); ("model", Sjson.Str "alpha");
           ("freqs", Sjson.Arr (List.map (fun f -> Sjson.Num f) freqs)) ])
  in
  let j, _ = request srv line in
  Alcotest.(check bool) "ok" true (j_bool "ok" j);
  Alcotest.(check (float 0.)) "points" 3. (j_num "points" j);
  (* reference: compile the artifact in-process *)
  let art = Artifact.load_exn
      (Filename.concat (Lazy.force server_root) "alpha.mfti") in
  let c = Compiled.of_model art.Artifact.model in
  let grid = Compiled.eval_grid c (Array.of_list freqs) in
  match j_mem "results" j with
  | Sjson.Arr pts ->
    List.iteri
      (fun k rows ->
        let h = grid.(k) in
        match rows with
        | Sjson.Arr rows ->
          List.iteri
            (fun i cols ->
              match cols with
              | Sjson.Arr cols ->
                List.iteri
                  (fun jc z ->
                    let exact = Cmat.get h i jc in
                    match z with
                    | Sjson.Arr [ Sjson.Num re; Sjson.Num im ] ->
                      same_float "re over the wire" exact.Cx.re re;
                      same_float "im over the wire" exact.Cx.im im
                    | _ -> Alcotest.fail "entry is not an [re, im] pair")
                  cols
              | _ -> Alcotest.fail "row is not an array")
            rows
        | _ -> Alcotest.fail "point is not a matrix")
      pts
  | _ -> Alcotest.fail "results is not an array"

let test_server_error_paths () =
  let srv = make_server () in
  expect_error srv ~kind:"validation" {|{"op":"model-info","model":"nope"}|};
  expect_error srv ~kind:"validation" {|{"op":"model-info","model":"../evil"}|};
  expect_error srv ~kind:"validation" {|{"op":"launch-missiles"}|};
  expect_error srv ~kind:"validation" {|{"op":"eval-grid","model":"alpha"}|};
  expect_error srv ~kind:"validation"
    {|{"op":"eval-grid","model":"alpha","freqs":[]}|};
  expect_error srv ~kind:"validation"
    {|{"op":"eval-grid","model":"alpha","freqs":["x"]}|};
  expect_error srv ~kind:"validation" {|{"no_op_at_all":1}|};
  expect_error srv ~kind:"parse" {|{"op": truncated|};
  expect_error srv ~kind:"parse" "not json at all";
  (* a corrupt artifact in the root is a typed response, not a crash *)
  let bad = Filename.concat (Lazy.force server_root) "damaged.mfti" in
  let oc = open_out_bin bad in
  output_string oc "MFTIART\x00 this is not a model";
  close_out oc;
  expect_error srv ~kind:"parse" {|{"op":"model-info","model":"damaged"}|};
  Sys.remove bad;
  (* the loop survived all of the above *)
  let j, _ = request srv {|{"op":"list-models"}|} in
  Alcotest.(check bool) "server still serves" true (j_bool "ok" j)

let test_server_stats_and_shutdown () =
  let srv = make_server () in
  ignore (request srv {|{"op":"model-info","model":"alpha"}|});
  ignore (request srv {|{"op":"model-info","model":"alpha"}|});
  ignore (request srv {|{"op":"nonsense"}|});
  let j, stop = request srv {|{"op":"stats"}|} in
  Alcotest.(check bool) "stats do not stop" false stop;
  Alcotest.(check (float 0.)) "requests" 4. (j_num "requests" j);
  Alcotest.(check (float 0.)) "errors" 1. (j_num "errors" j);
  let cache = j_mem "cache" j in
  Alcotest.(check (float 0.)) "one miss" 1. (j_num "misses" cache);
  Alcotest.(check (float 0.)) "one hit" 1. (j_num "hits" cache);
  Alcotest.(check (float 0.)) "one resident model" 1. (j_num "models" cache);
  Alcotest.(check bool) "bytes flowed" true (j_num "bytes_out" j > 0.);
  let info = j_mem "model-info" (j_mem "by_op" j) in
  Alcotest.(check (float 0.)) "per-op count" 2. (j_num "count" info);
  let j, stop = request srv {|{"op":"shutdown"}|} in
  Alcotest.(check bool) "shutdown acknowledged" true (j_bool "ok" j);
  Alcotest.(check bool) "loop stops" true stop

let test_server_cache_eviction () =
  let bytes =
    (Unix.stat (Filename.concat (Lazy.force server_root) "alpha.mfti"))
      .Unix.st_size
  in
  (* budget fits exactly one artifact: loading the second evicts the first *)
  let srv = make_server ~cache_bytes:(bytes + 16) () in
  ignore (request srv {|{"op":"model-info","model":"alpha"}|});
  ignore (request srv {|{"op":"model-info","model":"beta"}|});
  let j, _ = request srv {|{"op":"stats"}|} in
  let cache = j_mem "cache" j in
  Alcotest.(check (float 0.)) "eviction happened" 1. (j_num "evictions" cache);
  Alcotest.(check (float 0.)) "one resident" 1. (j_num "models" cache);
  let j, _ = request srv {|{"op":"model-info","model":"alpha"}|} in
  Alcotest.(check bool) "evicted model reloads" true (j_bool "ok" j)

let test_server_channels () =
  let srv = make_server () in
  let dir = fresh_dir () in
  let req_path = Filename.concat dir "requests" in
  let resp_path = Filename.concat dir "responses" in
  let oc = open_out req_path in
  output_string oc
    "{\"op\":\"list-models\"}\n\n{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n\
     {\"op\":\"after-shutdown-is-never-read\"}\n";
  close_out oc;
  let ic = open_in req_path and oc = open_out resp_path in
  let outcome = Server.serve_channels srv ic oc in
  close_in ic;
  close_out oc;
  Alcotest.(check bool) "stopped by shutdown" true (outcome = `Stop);
  let ic = open_in resp_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "three responses, blank line skipped" 3
    (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) "each response is ok" true
        (j_bool "ok" (Sjson.parse l)))
    lines

(* ------------------------------------------------------------------ *)
(* Sjson fuzz: deterministic byte mutations of valid frames.  Every
   mutation must either parse to a value or raise [Sjson.Parse_error] —
   no other exception may escape the parser.  Seeded SplitMix64, no
   [Random] at runtime, so a failure replays exactly. *)

let fuzz_seed_frames =
  [ "{\"op\":\"eval-grid\",\"model\":\"alpha\",\"freqs\":[1e3,2.5e4,-0.0]}";
    "{\"op\":\"model-info\",\"model\":\"beta\",\"extra\":null}";
    "{\"a\":[true,false,null,[],{}],\"b\":{\"c\":[1,2,3]}}";
    "{\"s\":\"esc \\\" \\\\ \\/ \\b \\f \\n \\r \\t \\u0041 end\"}";
    "[1.5e-300,\"\\u00e9\",{\"k\":\"v\"},[[[0]]]]" ]

let test_sjson_fuzz () =
  let rng = Rng.create 0xC0FFEE in
  let parses = ref 0 and rejects = ref 0 in
  List.iter
    (fun frame ->
      for _ = 1 to 1500 do
        let b = Bytes.of_string frame in
        let muts = 1 + Rng.int rng 3 in
        for _ = 1 to muts do
          Bytes.set b (Rng.int rng (Bytes.length b))
            (Char.chr (Rng.int rng 256))
        done;
        let s = Bytes.to_string b in
        match Sjson.parse s with
        | _ -> incr parses
        | exception Sjson.Parse_error _ -> incr rejects
        | exception e ->
          Alcotest.failf "parser escape on %S: %s" s (Printexc.to_string e)
      done)
    fuzz_seed_frames;
  (* the corpus must actually exercise both outcomes *)
  Alcotest.(check bool) "some mutations still parse" true (!parses > 0);
  Alcotest.(check bool) "some mutations are rejected" true (!rejects > 0)

(* ------------------------------------------------------------------ *)
(* Crash-safe artifact store *)

let test_artifact_atomic_save () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "m.mfti" in
  let art = artifact_of ~name:"m" (sys_of 1) in
  Artifact.save path art;
  Alcotest.(check bool) "no temp file left" false
    (Sys.file_exists (path ^ ".tmp"));
  (match Artifact.load path with
   | Ok got -> Alcotest.(check string) "loads back" "m" got.Artifact.name
   | Error e -> Alcotest.failf "load failed: %s" (Mfti_error.to_string e));
  (* overwrite is atomic too *)
  Artifact.save path (artifact_of ~name:"m2" (sys_of 1));
  match Artifact.load path with
  | Ok got -> Alcotest.(check string) "overwritten" "m2" got.Artifact.name
  | Error e -> Alcotest.failf "reload failed: %s" (Mfti_error.to_string e)

let test_artifact_torn_write () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "torn.mfti" in
  let art = artifact_of ~name:"torn" (sys_of 1) in
  (match
     Fault.with_spec "serve.torn_write" (fun () -> Artifact.save path art)
   with
   | () -> Alcotest.fail "torn write did not raise"
   | exception Mfti_error.Error (Mfti_error.Fault_injected _) -> ()
   | exception e ->
     Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  Alcotest.(check bool) "no final artifact appears" false
    (Sys.file_exists path);
  Alcotest.(check bool) "torn temp file left behind" true
    (Sys.file_exists (path ^ ".tmp"));
  (* a crash mid-overwrite must leave the previous version intact *)
  Artifact.save path art;
  (match
     Fault.with_spec "serve.torn_write" (fun () ->
         Artifact.save path (artifact_of ~name:"newer" (sys_of 1)))
   with
   | () -> Alcotest.fail "torn overwrite did not raise"
   | exception Mfti_error.Error _ -> ());
  match Artifact.load path with
  | Ok got ->
    Alcotest.(check string) "previous version intact" "torn"
      got.Artifact.name
  | Error e -> Alcotest.failf "load failed: %s" (Mfti_error.to_string e)

let test_recovery_quarantine () =
  let dir = fresh_dir () in
  let good = Filename.concat dir "good.mfti" in
  Artifact.save good (artifact_of ~name:"good" (sys_of 1));
  (* orphaned temp from a killed writer *)
  (try
     Fault.with_spec "serve.torn_write" (fun () ->
         Artifact.save (Filename.concat dir "orphan.mfti")
           (artifact_of ~name:"orphan" (sys_of 1)))
   with Mfti_error.Error _ -> ());
  (* a torn *final* file, as if rename won but an ancient writer was
     not atomic: half the encoded bytes under the servable name *)
  let torn = Filename.concat dir "halved.mfti" in
  let bytes = Artifact.to_string (artifact_of ~name:"halved" (sys_of 1)) in
  let oc = open_out_bin torn in
  output_string oc (String.sub bytes 0 (String.length bytes / 2));
  close_out oc;
  let qs = Artifact.recover_root dir in
  Alcotest.(check int) "two files quarantined" 2 (List.length qs);
  List.iter
    (fun (q : Artifact.quarantine) ->
      Alcotest.(check bool) "moved aside" true
        (Sys.file_exists q.Artifact.quarantined);
      Alcotest.(check bool) "gone from servable namespace" false
        (Sys.file_exists q.Artifact.original);
      match q.Artifact.reason with
      | Mfti_error.Parse _ -> ()
      | e ->
        Alcotest.failf "expected Parse diagnostic, got %s"
          (Mfti_error.to_string e))
    qs;
  Alcotest.(check bool) "good artifact untouched" true
    (Sys.file_exists good);
  (* a server over this root sees only the healthy model *)
  let srv = Server.create ~root:dir () in
  Alcotest.(check int) "nothing left to quarantine" 0
    (List.length (Server.quarantined srv));
  let j, _ = request srv "{\"op\":\"list-models\"}" in
  (match j_mem "models" j with
   | Sjson.Arr models ->
     Alcotest.(check (list string)) "only the good model served" [ "good" ]
       (List.map (j_str "id") models)
   | _ -> Alcotest.fail "models not an array");
  (* the torn file is never silently loadable *)
  let j, _ =
    request srv "{\"op\":\"model-info\",\"model\":\"halved\"}"
  in
  Alcotest.(check bool) "torn model not servable" false (j_bool "ok" j)

let test_server_startup_recovery () =
  let dir = fresh_dir () in
  Artifact.save (Filename.concat dir "ok.mfti")
    (artifact_of ~name:"ok" (sys_of 1));
  (try
     Fault.with_spec "serve.torn_write" (fun () ->
         Artifact.save (Filename.concat dir "dead.mfti")
           (artifact_of ~name:"dead" (sys_of 1)))
   with Mfti_error.Error _ -> ());
  let srv = Server.create ~root:dir () in
  Alcotest.(check int) "startup scan quarantined the orphan" 1
    (List.length (Server.quarantined srv));
  let j, _ = request srv "{\"op\":\"stats\"}" in
  Alcotest.(check (float 0.)) "stats reports quarantine count" 1.
    (j_num "quarantined" j)

(* ------------------------------------------------------------------ *)
(* Socket-path race (satellite: bind_unix ownership semantics) *)

let test_bind_unix_race () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "sock" in
  let fd = Server.bind_unix ~path in
  (* a live socket must be refused with a typed error, not unlinked *)
  (match Server.bind_unix ~path with
   | _ -> Alcotest.fail "second bind on a live socket succeeded"
   | exception Mfti_error.Error (Mfti_error.Validation _) -> ());
  Alcotest.(check bool) "live socket not deleted" true (Sys.file_exists path);
  Server.release_unix ~path fd;
  Alcotest.(check bool) "release removes the path" false
    (Sys.file_exists path);
  (* a stale file from a dead process is cleaned up and rebound *)
  let fd2 = Server.bind_unix ~path in
  Server.release_unix ~path fd2;
  (* a non-socket at the path is never deleted *)
  let oc = open_out path in
  output_string oc "not a socket";
  close_out oc;
  (match Server.bind_unix ~path with
   | fd3 ->
     Server.release_unix ~path fd3;
     Alcotest.fail "bound over a regular file"
   | exception Mfti_error.Error (Mfti_error.Validation _) -> ());
  Alcotest.(check bool) "regular file preserved" true (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* LRU under concurrent access: N domains hammer one server whose cache
   holds exactly one model, forcing hit/miss/eviction churn.  The
   accounting must come out exact — the mutex guard means no lost
   updates, no approximate counters. *)

let test_lru_concurrent_exact () =
  let alpha_bytes =
    (Unix.stat (Filename.concat (Lazy.force server_root) "alpha.mfti"))
      .Unix.st_size
  in
  let srv = make_server ~cache_bytes:(alpha_bytes + 16) () in
  let cycle =
    [| "{\"op\":\"model-info\",\"model\":\"alpha\"}";
       "{\"op\":\"model-info\",\"model\":\"beta\"}";
       "{\"op\":\"eval-grid\",\"model\":\"alpha\",\"freqs\":[1e3,1e4]}";
       "{\"op\":\"model-info\",\"model\":\"alpha\"}" |]
  in
  let domains = 4 and per_domain = 40 in
  let failures = Atomic.make 0 in
  let body () =
    (* worker domains must not submit to the shared kernel pool
       concurrently; serialize evaluations exactly as the supervisor
       tier does *)
    Parallel.with_sequential @@ fun () ->
    for k = 0 to per_domain - 1 do
      let text, _ = Server.handle_line srv cycle.(k mod Array.length cycle) in
      match Sjson.parse text with
      | j -> if not (j_bool "ok" j) then Atomic.incr failures
      | exception Sjson.Parse_error _ -> Atomic.incr failures
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join ds;
  Alcotest.(check int) "every request succeeded" 0 (Atomic.get failures);
  let j, _ = request srv "{\"op\":\"stats\"}" in
  let cache = j_mem "cache" j in
  let hits = j_num "hits" cache and misses = j_num "misses" cache in
  (* one model lookup per request: the books must balance exactly *)
  Alcotest.(check (float 0.)) "hits + misses = total lookups"
    (float_of_int (domains * per_domain))
    (hits +. misses);
  Alcotest.(check bool) "cache thrashed between models" true
    (j_num "evictions" cache > 0.);
  Alcotest.(check (float 0.)) "single-slot cache holds one model" 1.
    (j_num "models" cache);
  Alcotest.(check (float 0.)) "no request was dropped"
    (float_of_int ((domains * per_domain) + 1))
    (j_num "requests" j)

(* ------------------------------------------------------------------ *)
(* Streaming fit sessions over the protocol *)

let stream_sys = lazy (sys_of 2)

let stream_samples freqs =
  let sys = Lazy.force stream_sys in
  Array.map
    (fun f -> { Sampling.freq = f; s = Descriptor.eval_freq sys f })
    freqs

let sample_json (s : Sampling.sample) =
  let p, m = Cmat.dims s.Sampling.s in
  Sjson.Obj
    [ ("freq", Sjson.Num s.Sampling.freq);
      ( "s",
        Sjson.Arr
          (List.init p (fun i ->
               Sjson.Arr
                 (List.init m (fun j ->
                      let z = Cmat.get s.Sampling.s i j in
                      Sjson.Arr [ Sjson.Num z.Cx.re; Sjson.Num z.Cx.im ])))) ) ]

let add_line ?(holdout = false) session samples =
  Sjson.to_string
    (Sjson.Obj
       ([ ("op", Sjson.Str "fit-add-samples");
          ("session", Sjson.Str session);
          ( "samples",
            Sjson.Arr (Array.to_list (Array.map sample_json samples)) ) ]
        @ if holdout then [ ("holdout", Sjson.Bool true) ] else []))

let session_server ?session_limits () =
  Server.create ?session_limits ~root:(fresh_dir ()) ()

let open_session ?(extra = []) srv =
  let j, _ =
    request srv
      (Sjson.to_string
         (Sjson.Obj
            ([ ("op", Sjson.Str "fit-open"); ("ports", Sjson.Num 2.) ]
             @ extra)))
  in
  Alcotest.(check bool) "fit-open ok" true (j_bool "ok" j);
  j_str "session" j

let test_session_stream_roundtrip () =
  let srv = session_server () in
  let sid = open_session ~extra:[ ("certify", Sjson.Str "check") ] srv in
  let fit = stream_samples (Sampling.logspace 1e2 1e6 24) in
  let held = stream_samples (Sampling.logspace 1.7e2 0.7e6 5) in
  (* two fit batches: the first ends mid-pair, so a sample waits in the
     pending slot until the second batch completes it *)
  let j1, _ = request srv (add_line sid (Array.sub fit 0 9)) in
  Alcotest.(check bool) "batch 1 ok" true (j_bool "ok" j1);
  Alcotest.(check bool) "odd batch leaves a pending sample" true
    (j_bool "pending" j1);
  Alcotest.(check (float 0.)) "completed pairs only" 8. (j_num "samples" j1);
  let j2, _ =
    request srv (add_line sid (Array.sub fit 9 (Array.length fit - 9)))
  in
  Alcotest.(check bool) "batch 2 ok" true (j_bool "ok" j2);
  Alcotest.(check (float 0.)) "all samples in" 24. (j_num "samples" j2);
  Alcotest.(check string) "stage assembled" "assembled" (j_str "stage" j2);
  let jh, _ = request srv (add_line ~holdout:true sid held) in
  Alcotest.(check (float 0.)) "hold-out in" 5. (j_num "holdout_samples" jh);
  (* status with refit reports a finite hold-out error *)
  let js, _ =
    request srv
      (Printf.sprintf
         "{\"op\":\"fit-status\",\"session\":%S,\"refit\":true}" sid)
  in
  Alcotest.(check bool) "status ok" true (j_bool "ok" js);
  Alcotest.(check string) "stage reduced" "reduced" (j_str "stage" js);
  Alcotest.(check bool) "hold-out err reported" true
    (match j_mem "holdout_err" js with
     | Sjson.Num e -> Float.is_finite e && e >= 0.
     | _ -> false);
  let c = j_mem "counters" js in
  Alcotest.(check (float 0.)) "appended counter" 24. (j_num "appended" c);
  Alcotest.(check (float 0.)) "held-out counter" 5. (j_num "held_out" c);
  (* adaptive suggestions come back best-first, inside the band *)
  let jg, _ =
    request srv
      (Printf.sprintf
         "{\"op\":\"fit-suggest\",\"session\":%S,\"count\":3}" sid)
  in
  Alcotest.(check bool) "suggest ok" true (j_bool "ok" jg);
  (match j_mem "suggestions" jg with
   | Sjson.Arr (_ :: _ as ss) ->
     Alcotest.(check bool) "at most 3" true (List.length ss <= 3);
     let scores = List.map (j_num "score") ss in
     Alcotest.(check bool) "descending scores" true
       (List.for_all2 ( >= ) scores (List.tl scores @ [ -1. ]));
     List.iter
       (fun s ->
         let f = j_num "freq" s in
         Alcotest.(check bool) "inside the sampled band" true
           (f >= 1e2 && f <= 1e6))
       ss
   | _ -> Alcotest.fail "no suggestions");
  (* finalize packs a loadable artifact carrying the check certificate *)
  let jf, _ =
    request srv
      (Printf.sprintf
         "{\"op\":\"fit-finalize\",\"session\":%S,\"model\":\"streamed\"}"
         sid)
  in
  Alcotest.(check bool) "finalize ok" true (j_bool "ok" jf);
  Alcotest.(check bool) "certificate present" true
    (match j_mem "certificate" jf with Sjson.Obj _ -> true | _ -> false);
  let ji, _ =
    request srv "{\"op\":\"model-info\",\"model\":\"streamed\"}"
  in
  Alcotest.(check bool) "packed model servable" true (j_bool "ok" ji);
  Alcotest.(check (float 0.)) "ports" 2. (j_num "inputs" ji);
  (* the session is gone: its id no longer resolves *)
  expect_error srv ~kind:"validation"
    (Printf.sprintf "{\"op\":\"fit-status\",\"session\":%S}" sid);
  (* and the books balance *)
  let jt, _ = request srv "{\"op\":\"stats\"}" in
  let sess = j_mem "sessions" jt in
  Alcotest.(check (float 0.)) "opened" 1. (j_num "opened" sess);
  Alcotest.(check (float 0.)) "finalized" 1. (j_num "finalized" sess);
  Alcotest.(check (float 0.)) "none open" 0. (j_num "open" sess);
  Alcotest.(check (float 0.)) "appended samples" 29.
    (j_num "appended_samples" sess);
  Alcotest.(check (float 0.)) "suggest calls" 1. (j_num "suggest_calls" sess)

let test_session_slot_budget () =
  let srv =
    session_server
      ~session_limits:{ Server.default_session_limits with max_sessions = 1 }
      ()
  in
  let _sid = open_session srv in
  expect_error srv ~kind:"budget" "{\"op\":\"fit-open\",\"ports\":2}";
  let jt, _ = request srv "{\"op\":\"stats\"}" in
  let sess = j_mem "sessions" jt in
  Alcotest.(check (float 0.)) "refusal counted" 1. (j_num "refused" sess);
  Alcotest.(check (float 0.)) "one open" 1. (j_num "open" sess)

let test_session_byte_budget () =
  let srv =
    session_server
      ~session_limits:{ Server.default_session_limits with session_bytes = 300 }
      ()
  in
  let sid = open_session srv in
  (* 2x2 complex samples cost 80 bytes each: the first batch of three
     fits, a second overruns the 300-byte budget and is refused whole *)
  let fit = stream_samples (Sampling.logspace 1e2 1e6 8) in
  let j1, _ = request srv (add_line sid (Array.sub fit 0 3)) in
  Alcotest.(check bool) "under budget accepted" true (j_bool "ok" j1);
  expect_error srv ~kind:"budget" (add_line sid (Array.sub fit 3 3));
  (* the refused batch changed nothing *)
  let js, _ =
    request srv (Printf.sprintf "{\"op\":\"fit-status\",\"session\":%S}" sid)
  in
  Alcotest.(check (float 0.)) "samples unchanged" 2. (j_num "samples" js);
  Alcotest.(check (float 0.)) "bytes unchanged" 240. (j_num "bytes" js)

let test_session_ttl_expiry () =
  let srv =
    session_server
      ~session_limits:
        { Server.default_session_limits with session_ttl_s = 0.05 }
      ()
  in
  let sid = open_session srv in
  Unix.sleepf 0.12;
  expect_error srv ~kind:"validation"
    (Printf.sprintf "{\"op\":\"fit-status\",\"session\":%S}" sid);
  let jt, _ = request srv "{\"op\":\"stats\"}" in
  let sess = j_mem "sessions" jt in
  Alcotest.(check (float 0.)) "expiry counted" 1. (j_num "expired" sess);
  Alcotest.(check (float 0.)) "none open" 0. (j_num "open" sess)

let test_session_drain_refusal () =
  let srv = session_server () in
  let sid = open_session srv in
  Server.set_draining srv true;
  (* no new sessions while draining... *)
  expect_error srv ~kind:"validation" "{\"op\":\"fit-open\",\"ports\":2}";
  (* ...but the live session streams and finalizes *)
  let fit = stream_samples (Sampling.logspace 1e2 1e6 12) in
  let j1, _ = request srv (add_line sid fit) in
  Alcotest.(check bool) "live session still appends" true (j_bool "ok" j1);
  let jf, _ =
    request srv
      (Printf.sprintf
         "{\"op\":\"fit-finalize\",\"session\":%S,\"model\":\"drained\"}"
         sid)
  in
  Alcotest.(check bool) "live session finalizes" true (j_bool "ok" jf);
  Server.set_draining srv false;
  let sid2 = open_session srv in
  Alcotest.(check bool) "fit-open works again" true (String.length sid2 > 0)

let test_session_protocol_errors () =
  let srv = session_server () in
  expect_error srv ~kind:"validation"
    "{\"op\":\"fit-status\",\"session\":\"nope\"}";
  expect_error srv ~kind:"validation" "{\"op\":\"fit-open\",\"ports\":0}";
  expect_error srv ~kind:"validation"
    "{\"op\":\"fit-open\",\"ports\":2,\"certify\":\"sometimes\"}";
  let sid = open_session srv in
  expect_error srv ~kind:"validation"
    (Printf.sprintf
       "{\"op\":\"fit-add-samples\",\"session\":%S,\"samples\":[{\"freq\":1e3}]}"
       sid);
  expect_error srv ~kind:"validation"
    (Printf.sprintf
       "{\"op\":\"fit-add-samples\",\"session\":%S,\"samples\":[]}" sid);
  (* a 3x3 sample into a 2x2 session: vetted by the session, refused whole *)
  let wrong =
    Array.map
      (fun (s : Sampling.sample) -> { s with Sampling.s = Cmat.zeros 3 3 })
      (stream_samples [| 1e3; 2e3 |])
  in
  expect_error srv ~kind:"validation" (add_line sid wrong);
  (* finalizing an empty session is refused, the id survives *)
  expect_error srv ~kind:"validation"
    (Printf.sprintf
       "{\"op\":\"fit-finalize\",\"session\":%S,\"model\":\"empty\"}" sid);
  let js, _ =
    request srv (Printf.sprintf "{\"op\":\"fit-status\",\"session\":%S}" sid)
  in
  Alcotest.(check bool) "session survives refused finalize" true
    (j_bool "ok" js)

let test_session_fault_sites () =
  let srv = session_server () in
  let sid = open_session srv in
  let fit = stream_samples (Sampling.logspace 1e2 1e6 12) in
  Fault.with_spec "session.stale_append" (fun () ->
      expect_error srv ~kind:"validation" (add_line sid fit));
  let j1, _ = request srv (add_line sid fit) in
  Alcotest.(check bool) "append works once disarmed" true (j_bool "ok" j1);
  Fault.with_spec "session.finalize_race" (fun () ->
      expect_error srv ~kind:"validation"
        (Printf.sprintf
           "{\"op\":\"fit-finalize\",\"session\":%S,\"model\":\"raced\"}"
           sid));
  let jf, _ =
    request srv
      (Printf.sprintf
         "{\"op\":\"fit-finalize\",\"session\":%S,\"model\":\"raced\"}" sid)
  in
  Alcotest.(check bool) "finalize works once disarmed" true (j_bool "ok" jf)

(* ------------------------------------------------------------------ *)
(* Frame codec: binary grid bodies, incremental reader, negotiation *)

let test_frame_grid_body_roundtrip () =
  let meta =
    Sjson.Obj
      [ ("ok", Sjson.Bool true);
        ("op", Sjson.Str "eval-grid");
        ("model", Sjson.Str "alpha");
        ("points", Sjson.Num 3.) ]
  in
  let mk seed =
    let m = Cmat.zeros 2 3 in
    for i = 0 to 1 do
      for j = 0 to 2 do
        Cmat.set m i j
          (Cx.make
             (float_of_int ((seed * 7) + (i * 3) + j) *. 1.25e-3)
             (-1. /. float_of_int (seed + i + j + 1)))
      done
    done;
    m
  in
  let grid = [| mk 1; mk 2; mk 3 |] in
  (* adversarial floats must survive bitwise: -0., denormal, huge *)
  Cmat.set grid.(0) 0 0 (Cx.make (-0.) 4.9e-324);
  Cmat.set grid.(1) 1 2 (Cx.make 1.797e308 (-2.2250738585072014e-308));
  let body = Frame.grid_body ~meta ~grid in
  let meta', grid' = Frame.decode_grid_body body in
  Alcotest.(check string) "meta text survives" (Sjson.to_string meta)
    (Sjson.to_string meta');
  Alcotest.(check int) "points survive" 3 (Array.length grid');
  Array.iteri
    (fun k m -> same_mat (Printf.sprintf "grid[%d]" k) m grid'.(k))
    grid;
  (* a damaged body is a typed parse error, never an escaping exception *)
  (match Frame.decode_grid_body (String.sub body 0 (String.length body - 5)) with
   | _ -> Alcotest.fail "truncated grid body accepted"
   | exception Mfti_error.Error (Mfti_error.Parse _) -> ());
  match Frame.decode_grid_body "xy" with
  | _ -> Alcotest.fail "garbage grid body accepted"
  | exception Mfti_error.Error (Mfti_error.Parse _) -> ()

let feed_bytes r s =
  (* one byte at a time: the reader must reassemble across any split *)
  String.iter
    (fun c -> Frame.Reader.add r (Bytes.make 1 c) 1)
    s

let test_frame_reader_json () =
  let r = Frame.Reader.create () in
  feed_bytes r "{\"op\": \"ping\"}\r\n{\"op\": \"stats\"}\ntail";
  (match Frame.Reader.next r ~mode:Frame.Json ~max_bytes:1024 with
   | `Frame (Frame.Json_text "{\"op\": \"ping\"}") -> ()
   | _ -> Alcotest.fail "CRLF line not stripped and framed");
  (match Frame.Reader.next r ~mode:Frame.Json ~max_bytes:1024 with
   | `Frame (Frame.Json_text "{\"op\": \"stats\"}") -> ()
   | _ -> Alcotest.fail "second line not framed");
  (match Frame.Reader.next r ~mode:Frame.Json ~max_bytes:1024 with
   | `None -> ()
   | _ -> Alcotest.fail "incomplete line must wait for more bytes");
  Alcotest.(check string) "EOF drains the unterminated tail" "tail"
    (Frame.Reader.take_rest r);
  (* an endless unterminated line trips the cap instead of buffering *)
  let r = Frame.Reader.create () in
  feed_bytes r (String.make 64 'x');
  (match Frame.Reader.next r ~mode:Frame.Json ~max_bytes:32 with
   | `Too_long -> ()
   | _ -> Alcotest.fail "oversized line not rejected")

let test_frame_reader_binary () =
  let r = Frame.Reader.create () in
  feed_bytes r (Frame.encode_json "{\"a\": 1}" ^ Frame.encode_grid "BODY");
  (match Frame.Reader.next r ~mode:Frame.Binary ~max_bytes:1024 with
   | `Frame (Frame.Json_text "{\"a\": 1}") -> ()
   | _ -> Alcotest.fail "json frame not reassembled from byte dribble");
  (match Frame.Reader.next r ~mode:Frame.Binary ~max_bytes:1024 with
   | `Frame (Frame.Grid_body "BODY") -> ()
   | _ -> Alcotest.fail "grid frame not reassembled");
  (match Frame.Reader.next r ~mode:Frame.Binary ~max_bytes:1024 with
   | `None -> ()
   | _ -> Alcotest.fail "empty buffer must report `None");
  (* unknown tag and empty payload are malformed, typed `Bad *)
  let r = Frame.Reader.create () in
  feed_bytes r "\x00\x00\x00\x02Zp";
  (match Frame.Reader.next r ~mode:Frame.Binary ~max_bytes:1024 with
   | `Bad _ -> ()
   | _ -> Alcotest.fail "unknown tag accepted");
  let r = Frame.Reader.create () in
  feed_bytes r "\x00\x00\x00\x00";
  (match Frame.Reader.next r ~mode:Frame.Binary ~max_bytes:1024 with
   | `Bad _ -> ()
   | _ -> Alcotest.fail "empty payload accepted");
  (* a frame larger than the cap is rejected before it is buffered *)
  let r = Frame.Reader.create () in
  feed_bytes r "\x00\x10\x00\x00J";
  (match Frame.Reader.next r ~mode:Frame.Binary ~max_bytes:1024 with
   | `Too_long -> ()
   | _ -> Alcotest.fail "oversized frame not rejected")

let test_frame_hello () =
  Alcotest.(check (option string)) "binary hello"
    (Some "binary")
    (Frame.is_hello "{\"op\": \"hello\", \"frames\": \"binary\"}");
  Alcotest.(check (option string)) "json hello"
    (Some "json")
    (Frame.is_hello "{\"op\": \"hello\", \"frames\": \"json\"}");
  Alcotest.(check (option string)) "missing frames field"
    (Some "")
    (Frame.is_hello "{\"op\": \"hello\"}");
  Alcotest.(check (option string)) "not a hello"
    None
    (Frame.is_hello "{\"op\": \"ping\"}");
  Alcotest.(check (option string)) "hello as a value only"
    None
    (Frame.is_hello "{\"op\": \"eval\", \"model\": \"hello\"}");
  let ack = Frame.hello_ack "binary" in
  (match Sjson.parse ack with
   | j ->
     Alcotest.(check bool) "ack ok" true
       (Sjson.member "ok" j = Some (Sjson.Bool true));
     Alcotest.(check bool) "ack frames" true
       (Sjson.member "frames" j = Some (Sjson.Str "binary"))
   | exception Sjson.Parse_error m -> Alcotest.failf "bad ack: %s" m)

(* ------------------------------------------------------------------ *)
(* Transports: TCP listener, binary negotiation end-to-end, drops *)

let send_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* pull the next frame through a client-side Frame.Reader *)
let next_frame ?(timeout = 10.0) fd r ~mode =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Frame.Reader.next r ~mode ~max_bytes:(1 lsl 24) with
    | `Frame p -> p
    | `Too_long -> Alcotest.fail "client reader: frame too long"
    | `Bad m -> Alcotest.failf "client reader: %s" m
    | `None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then Alcotest.fail "no frame within deadline"
      else (
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> go ()
        | _ ->
          (match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> Alcotest.fail "connection closed mid-frame"
           | k ->
             Frame.Reader.add r chunk k;
             go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let expect_text what = function
  | Frame.Json_text s -> s
  | Frame.Grid_body _ -> Alcotest.failf "%s: unexpected grid frame" what

let transport_config =
  { Supervisor.default_config with
    workers = 2; queue = 8; request_timeout_ms = 4_000;
    idle_timeout_ms = 10_000; drain_ms = 500 }

let with_transport listen f =
  let dir = fresh_dir () in
  Artifact.save (Filename.concat dir "alpha.mfti")
    (artifact_of ~name:"alpha" (sys_of 3));
  let srv = Server.create ~root:dir () in
  let sup = Supervisor.start ~config:transport_config srv ~listen in
  Fun.protect
    ~finally:(fun () -> try Supervisor.stop sup with _ -> ())
    (fun () -> f sup)

let test_supervisor_tcp () =
  with_transport (Supervisor.Tcp ("127.0.0.1", 0)) @@ fun sup ->
  let port =
    match Supervisor.bound_port sup with
    | Some p -> p
    | None -> Alcotest.fail "TCP listener reported no bound port"
  in
  if port <= 0 then Alcotest.failf "nonsense bound port %d" port;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let r = Frame.Reader.create () in
      (* ping is answered without touching any model *)
      send_all fd "{\"op\": \"ping\"}\n";
      let l = expect_text "ping" (next_frame fd r ~mode:Frame.Json) in
      let j = Sjson.parse l in
      Alcotest.(check bool) "ping ok" true
        (Sjson.member "ok" j = Some (Sjson.Bool true));
      Alcotest.(check bool) "ping not draining" true
        (Sjson.member "draining" j = Some (Sjson.Bool false));
      (* a real model round-trip over TCP *)
      send_all fd "{\"op\": \"model-info\", \"model\": \"alpha\"}\n";
      let l = expect_text "model-info" (next_frame fd r ~mode:Frame.Json) in
      let j = Sjson.parse l in
      Alcotest.(check bool) "model-info ok" true
        (Sjson.member "ok" j = Some (Sjson.Bool true)))

let test_supervisor_binary_negotiation () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "b.sock" in
  with_transport (Supervisor.Unix_path path) @@ fun _sup ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let r = Frame.Reader.create () in
      let grid_req =
        "{\"op\": \"eval-grid\", \"model\": \"alpha\", \"freqs\": [1e3, 1e5]}"
      in
      (* reference response in plain JSON-lines mode (warm the cache
         first so the cached flag matches across framings) *)
      send_all fd (grid_req ^ "\n");
      ignore (expect_text "warm" (next_frame fd r ~mode:Frame.Json));
      send_all fd (grid_req ^ "\n");
      let json_line =
        expect_text "json grid" (next_frame fd r ~mode:Frame.Json)
      in
      (* negotiate: ack arrives in the OLD framing *)
      send_all fd "{\"op\": \"hello\", \"frames\": \"binary\"}\n";
      let ack =
        expect_text "hello ack" (next_frame fd r ~mode:Frame.Json)
      in
      Alcotest.(check string) "ack text" (Frame.hello_ack "binary") ack;
      (* same request as a binary frame; response is a grid frame whose
         re-rendered JSON is byte-identical to the JSON-lines response *)
      send_all fd (Frame.encode_json grid_req);
      (match next_frame fd r ~mode:Frame.Binary with
       | Frame.Grid_body body ->
         let meta, grid = Frame.decode_grid_body body in
         let fields =
           match meta with
           | Sjson.Obj fs -> fs
           | _ -> Alcotest.fail "grid meta is not an object"
         in
         let rendered =
           Sjson.to_string
             (Sjson.Obj (fields @ [ ("results", Frame.results_json grid) ]))
         in
         Alcotest.(check string)
           "binary grid re-renders byte-identical to the JSON response"
           json_line rendered
       | Frame.Json_text l ->
         Alcotest.failf "expected a grid frame, got text: %s" l);
      (* non-grid ops stay JSON text, framed *)
      send_all fd (Frame.encode_json "{\"op\": \"ping\"}");
      let l = expect_text "binary ping" (next_frame fd r ~mode:Frame.Binary) in
      let j = Sjson.parse l in
      Alcotest.(check bool) "binary ping ok" true
        (Sjson.member "ok" j = Some (Sjson.Bool true));
      (* switch back: ack arrives as a binary frame, then plain lines *)
      send_all fd (Frame.encode_json "{\"op\": \"hello\", \"frames\": \"json\"}");
      let ack =
        expect_text "json ack" (next_frame fd r ~mode:Frame.Binary)
      in
      Alcotest.(check string) "ack back" (Frame.hello_ack "json") ack;
      send_all fd "{\"op\": \"ping\"}\n";
      let l = expect_text "line ping" (next_frame fd r ~mode:Frame.Json) in
      Alcotest.(check bool) "line ping ok" true
        (Sjson.member "ok" (Sjson.parse l) = Some (Sjson.Bool true));
      (* an unknown framing is a typed refusal, mode unchanged *)
      send_all fd "{\"op\": \"hello\", \"frames\": \"morse\"}\n";
      let l = expect_text "bad hello" (next_frame fd r ~mode:Frame.Json) in
      let j = Sjson.parse l in
      (match Sjson.member "error" j with
       | Some err ->
         Alcotest.(check bool) "typed validation" true
           (Sjson.member "kind" err = Some (Sjson.Str "validation"))
       | None -> Alcotest.failf "bad hello not refused: %s" l))

let test_supervisor_conn_drop_typed () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "d.sock" in
  with_transport (Supervisor.Unix_path path) @@ fun _sup ->
  (* request a grid big enough to guarantee chunked writes (> 64 KiB),
     then slam the connection before reading: the server's write hits
     EPIPE/ECONNRESET mid-stream and must record a typed conn drop *)
  let freqs =
    String.concat ", " (List.init 3000 (fun i -> Printf.sprintf "%d" (1000 + i)))
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  send_all fd
    (Printf.sprintf "{\"op\": \"eval-grid\", \"model\": \"alpha\", \"freqs\": [%s]}\n"
       freqs);
  Unix.close fd;
  (* the drop lands asynchronously; poll stats until it is counted *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec poll () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let drops =
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX path);
          let r = Frame.Reader.create () in
          send_all fd "{\"op\": \"stats\"}\n";
          let l = expect_text "stats" (next_frame fd r ~mode:Frame.Json) in
          match Sjson.member "conn_drops" (Sjson.parse l) with
          | Some (Sjson.Num n) -> int_of_float n
          | _ -> Alcotest.failf "stats missing conn_drops: %s" l)
    in
    if drops >= 1 then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.fail "connection drop never counted"
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ("artifact",
       [ Alcotest.test_case "round trip" `Quick test_artifact_round_trip;
         Alcotest.test_case "nan fit_err" `Quick test_artifact_nan_fit_err;
         Alcotest.test_case "byte stable" `Quick test_artifact_byte_stable;
         Alcotest.test_case "fault: corrupt" `Quick test_artifact_fault_corrupt;
         Alcotest.test_case "fault: truncate" `Quick
           test_artifact_fault_truncate;
         Alcotest.test_case "payload bit flip" `Quick
           test_artifact_payload_bitflip;
         Alcotest.test_case "bad version / framing" `Quick
           test_artifact_bad_version;
         Alcotest.test_case "file round trip" `Quick
           test_artifact_file_round_trip;
         QCheck_alcotest.to_alcotest prop_artifact_round_trip ]);
      ("compiled",
       [ Alcotest.test_case "accuracy across ports" `Quick
           test_compiled_accuracy;
         Alcotest.test_case "grid = single points" `Quick
           test_compiled_grid_matches_single;
         Alcotest.test_case "grid domain invariance" `Quick
           test_compiled_grid_domain_invariant;
         Alcotest.test_case "fault: defective pencil" `Quick
           test_compiled_defective_fault;
         Alcotest.test_case "static system" `Quick test_compiled_static;
         Alcotest.test_case "pack/load/eval bit-identical" `Quick
           test_pack_load_eval_bit_identical ]);
      ("lru",
       [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
         Alcotest.test_case "find bumps recency" `Quick
           test_lru_find_bumps_recency;
         Alcotest.test_case "oversize rejected" `Quick test_lru_oversize;
         Alcotest.test_case "replace releases bytes" `Quick
           test_lru_replace_releases_bytes ]);
      ("server",
       [ Alcotest.test_case "list models" `Quick test_server_list_models;
         Alcotest.test_case "model info + cache" `Quick test_server_model_info;
         Alcotest.test_case "eval bit-exact over the wire" `Quick
           test_server_eval_bit_exact;
         Alcotest.test_case "typed error paths" `Quick test_server_error_paths;
         Alcotest.test_case "stats + shutdown" `Quick
           test_server_stats_and_shutdown;
         Alcotest.test_case "cache eviction" `Quick test_server_cache_eviction;
         Alcotest.test_case "channel loop" `Quick test_server_channels ]);
      ("sjson",
       [ Alcotest.test_case "byte-mutation fuzz" `Quick test_sjson_fuzz ]);
      ("crash-safety",
       [ Alcotest.test_case "atomic save" `Quick test_artifact_atomic_save;
         Alcotest.test_case "torn write" `Quick test_artifact_torn_write;
         Alcotest.test_case "recovery quarantine" `Quick
           test_recovery_quarantine;
         Alcotest.test_case "server startup recovery" `Quick
           test_server_startup_recovery ]);
      ("sessions",
       [ Alcotest.test_case "stream / suggest / finalize" `Quick
           test_session_stream_roundtrip;
         Alcotest.test_case "slot budget" `Quick test_session_slot_budget;
         Alcotest.test_case "byte budget" `Quick test_session_byte_budget;
         Alcotest.test_case "ttl expiry" `Quick test_session_ttl_expiry;
         Alcotest.test_case "drain refuses fit-open" `Quick
           test_session_drain_refusal;
         Alcotest.test_case "typed protocol errors" `Quick
           test_session_protocol_errors;
         Alcotest.test_case "fault sites" `Quick test_session_fault_sites ]);
      ("concurrency",
       [ Alcotest.test_case "bind_unix race" `Quick test_bind_unix_race;
         Alcotest.test_case "lru exact under domains" `Quick
           test_lru_concurrent_exact ]);
      ("frame",
       [ Alcotest.test_case "grid body bitwise round trip" `Quick
           test_frame_grid_body_roundtrip;
         Alcotest.test_case "json reader" `Quick test_frame_reader_json;
         Alcotest.test_case "binary reader" `Quick test_frame_reader_binary;
         Alcotest.test_case "hello negotiation parsing" `Quick
           test_frame_hello ]);
      ("transport",
       [ Alcotest.test_case "tcp listener end-to-end" `Quick
           test_supervisor_tcp;
         Alcotest.test_case "binary frames bit-identical" `Quick
           test_supervisor_binary_negotiation;
         Alcotest.test_case "client drop counted typed" `Quick
           test_supervisor_conn_drop_typed ]) ]
