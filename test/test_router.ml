(* Routing-tier suite: consistent-hash ring units, health state
   machine units, and end-to-end chaos against a real fleet — N replica
   supervisors plus a router on Unix sockets, attacked from raw client
   sockets.  The invariants: failover answers are bit-identical to a
   direct replica answer, a flapping replica never causes
   double-execution, coalesced responses are byte-identical, and every
   degraded outcome is a typed response.  All faults are deterministic
   ({!Linalg.Fault} sites). *)

open Linalg
open Statespace
open Serve

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let spec ports =
  { Random_sys.order = 12; ports; rank_d = ports; freq_lo = 1e2;
    freq_hi = 1e6; damping = 0.12; seed = 31 + ports }

let model_of sys =
  Mfti.Engine.Model.make ~sigma:[| 2.0; 1.0 |] ~timings:[]
    ~rank:(Descriptor.order sys) sys

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mfti_router_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let save_model root id =
  Artifact.save
    (Filename.concat root (id ^ ".mfti"))
    (Artifact.v ~name:id (model_of (Random_sys.generate (spec 2))))

let sup_config =
  { Supervisor.default_config with
    workers = 2; queue = 8; request_timeout_ms = 4_000;
    idle_timeout_ms = 10_000; drain_ms = 500;
    backoff_base_ms = 2; backoff_cap_ms = 20 }

let router_config =
  { Router.default_config with
    vnodes = 64; probe_interval_ms = 40; fail_threshold = 1;
    max_failover = 2; connect_timeout_ms = 1_000;
    request_timeout_ms = 4_000; idle_timeout_ms = 10_000;
    backoff_base_ms = 5; backoff_cap_ms = 50 }

type fleet = {
  root : string;
  replica_paths : string list;
  sups : Supervisor.t array;
  router_path : string;
  router : Router.t;
}

(* a root with [models], [n] replica supervisors over it, one router *)
let with_fleet ?(config = router_config) ~n ~models f =
  let root = fresh_dir () in
  List.iter (save_model root) models;
  let sock_dir = fresh_dir () in
  let replica_paths =
    List.init n (fun i -> Filename.concat sock_dir (Printf.sprintf "r%d.sock" i))
  in
  let sups =
    Array.of_list
      (List.map
         (fun path ->
           let srv = Server.create ~root () in
           Supervisor.start ~config:sup_config srv
             ~listen:(Supervisor.Unix_path path))
         replica_paths)
  in
  let router_path = Filename.concat sock_dir "router.sock" in
  let router =
    Router.start ~config ~listen:(Supervisor.Unix_path router_path)
      ~replicas:replica_paths ()
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.set_spec None;
      Router.stop router;
      Array.iter (fun s -> try Supervisor.stop s with _ -> ()) sups)
    (fun () -> f { root; replica_paths; sups; router_path; router })

(* ------------------------------------------------------------------ *)
(* Raw clients *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_line fd s =
  let s = s ^ "\n" in
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_line ?(timeout = 10.0) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then Alcotest.fail "no response within deadline"
      else
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> go ()
        | _ ->
          (match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> Alcotest.fail "connection closed"
           | k ->
             Buffer.add_subbytes buf chunk 0 k;
             go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* one-shot request over a fresh connection *)
let ask ?timeout path line =
  let fd = connect path in
  Fun.protect
    ~finally:(fun () -> close_quiet fd)
    (fun () ->
      send_line fd line;
      recv_line ?timeout fd)

let parse line =
  match Sjson.parse line with
  | j -> j
  | exception Sjson.Parse_error m ->
    Alcotest.failf "unparseable response %s: %s" line m

let expect_ok what line =
  let j = parse line in
  if Sjson.member "ok" j <> Some (Sjson.Bool true) then
    Alcotest.failf "%s: expected ok, got %s" what line;
  j

let expect_kind what kind line =
  let j = parse line in
  (match Sjson.member "error" j with
   | Some err ->
     (match Sjson.member "kind" err with
      | Some (Sjson.Str k) when k = kind -> ()
      | _ -> Alcotest.failf "%s: expected %S error, got %s" what kind line)
   | None -> Alcotest.failf "%s: expected %S error, got %s" what kind line);
  j

let grid_req id =
  Printf.sprintf
    "{\"op\": \"eval-grid\", \"model\": %S, \"freqs\": [1e3, 4.5e4, 2e5]}" id

let j_num what k j =
  match Sjson.member k j with
  | Some (Sjson.Num f) -> f
  | _ -> Alcotest.failf "%s: missing number %S" what k

(* sum of eval-grid executions across the fleet, from replica stats *)
let fleet_eval_count fleet =
  List.fold_left
    (fun acc path ->
      let j = expect_ok "replica stats" (ask path "{\"op\": \"stats\"}") in
      match Sjson.member "by_op" j with
      | Some ops ->
        (match Sjson.member "eval-grid" ops with
         | Some per ->
           acc + int_of_float (j_num "by_op.eval-grid" "count" per)
         | None -> acc)
      | None -> Alcotest.fail "replica stats missing by_op")
    0 fleet.replica_paths

(* the first model id (from a deterministic candidate pool) whose
   primary replica is [name] under the fleet's ring *)
let model_with_primary fleet name =
  let ring = Router.Ring.make ~vnodes:router_config.Router.vnodes
      fleet.replica_paths in
  let rec go i =
    if i >= 256 then Alcotest.fail "no candidate id hashes to the replica"
    else
      let id = Printf.sprintf "shard%d" i in
      match Router.Ring.candidates ring id with
      | primary :: _ when primary = name -> id
      | _ -> go (i + 1)
  in
  let id = go 0 in
  save_model fleet.root id;
  id

let wait_for ?(timeout = 5.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let replica_state fleet name =
  let s = Router.stats fleet.router in
  match
    List.find_opt (fun r -> r.Router.rp_name = name) s.Router.rt_replicas
  with
  | Some r -> r
  | None -> Alcotest.failf "replica %s missing from router stats" name

(* ------------------------------------------------------------------ *)
(* Ring units *)

let test_ring_deterministic () =
  let names = [ "a"; "b"; "c" ] in
  let r1 = Router.Ring.make ~vnodes:64 names in
  let r2 = Router.Ring.make ~vnodes:64 names in
  for i = 0 to 49 do
    let key = Printf.sprintf "key%d" i in
    Alcotest.(check (list string))
      (Printf.sprintf "candidates stable for %s" key)
      (Router.Ring.candidates r1 key)
      (Router.Ring.candidates r2 key)
  done;
  let cands = Router.Ring.candidates r1 "anything" in
  Alcotest.(check int) "every replica appears once" 3 (List.length cands);
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " present") true (List.mem n cands))
    names

let test_ring_distribution () =
  let names = [ "a"; "b"; "c" ] in
  let r = Router.Ring.make ~vnodes:64 names in
  let counts = Hashtbl.create 3 in
  for i = 0 to 299 do
    let primary = List.hd (Router.Ring.candidates r (string_of_int i)) in
    Hashtbl.replace counts primary
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts primary))
  done;
  List.iter
    (fun n ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts n) in
      if c < 30 then
        Alcotest.failf "replica %s owns only %d/300 keys (ring too lumpy)" n c)
    names

let test_ring_consistent_remap () =
  (* adding a replica must only move keys onto the newcomer — a key
     whose primary survives keeps it *)
  let before = Router.Ring.make ~vnodes:64 [ "a"; "b"; "c" ] in
  let after = Router.Ring.make ~vnodes:64 [ "a"; "b"; "c"; "d" ] in
  let moved = ref 0 in
  for i = 0 to 299 do
    let key = string_of_int i in
    let p0 = List.hd (Router.Ring.candidates before key) in
    let p1 = List.hd (Router.Ring.candidates after key) in
    if p1 <> p0 then begin
      incr moved;
      Alcotest.(check string)
        (Printf.sprintf "key %s moved somewhere other than the newcomer" key)
        "d" p1
    end
  done;
  if !moved = 0 then Alcotest.fail "no key moved to the new replica";
  if !moved > 150 then
    Alcotest.failf "%d/300 keys moved (expected ~1/4 for 1 of 4 replicas)"
      !moved

let test_ring_empty_and_bad () =
  Alcotest.(check (list string))
    "empty ring has no candidates" []
    (Router.Ring.candidates (Router.Ring.make ~vnodes:8 []) "k");
  (match Router.Ring.make ~vnodes:0 [ "a" ] with
   | _ -> Alcotest.fail "vnodes=0 accepted"
   | exception Mfti_error.Error (Mfti_error.Validation _) -> ())

(* ------------------------------------------------------------------ *)
(* Health units *)

let test_health_step () =
  let open Router.Health in
  let step s f p = Router.Health.step ~fail_threshold:3 s f p in
  Alcotest.(check bool) "up stays up on ok" true (step Up 0 Ok = (Up, 0));
  Alcotest.(check bool) "first failure suspects" true
    (step Up 0 Failed = (Suspect, 1));
  Alcotest.(check bool) "second failure still suspect" true
    (step Suspect 1 Failed = (Suspect, 2));
  Alcotest.(check bool) "threshold downs" true
    (step Suspect 2 Failed = (Down, 3));
  Alcotest.(check bool) "down stays down on failure" true
    (step Down 3 Failed = (Down, 4));
  Alcotest.(check bool) "ok rejoins from down" true
    (step Down 7 Ok = (Up, 0));
  Alcotest.(check bool) "draining on ok_draining" true
    (step Up 0 Ok_draining = (Draining, 0));
  Alcotest.(check bool) "draining survives failures below threshold" true
    (step Draining 0 Failed = (Draining, 1));
  Alcotest.(check bool) "draining rejoins on plain ok" true
    (step Draining 0 Ok = (Up, 0))

let test_parse_addr () =
  (match Router.parse_addr "/tmp/x.sock" with
   | Supervisor.Unix_path "/tmp/x.sock" -> ()
   | _ -> Alcotest.fail "path not parsed as unix socket");
  (match Router.parse_addr "127.0.0.1:7070" with
   | Supervisor.Tcp ("127.0.0.1", 7070) -> ()
   | _ -> Alcotest.fail "host:port not parsed as tcp");
  (match Router.parse_addr "localhost:0" with
   | Supervisor.Tcp ("localhost", 0) -> ()
   | _ -> Alcotest.fail "port 0 not accepted");
  (match Router.parse_addr "host:notaport" with
   | _ -> Alcotest.fail "bad port accepted"
   | exception Mfti_error.Error (Mfti_error.Validation _) -> ())

(* ------------------------------------------------------------------ *)
(* End-to-end: basic routing *)

let test_route_basic () =
  with_fleet ~n:3 ~models:[ "alpha"; "beta"; "gamma" ] @@ fun fleet ->
  let j = expect_ok "ping" (ask fleet.router_path "{\"op\": \"ping\"}") in
  Alcotest.(check bool) "not draining" true
    (Sjson.member "draining" j = Some (Sjson.Bool false));
  List.iter
    (fun id ->
      let j =
        expect_ok ("model-info " ^ id)
          (ask fleet.router_path
             (Printf.sprintf "{\"op\": \"model-info\", \"model\": %S}" id))
      in
      ignore (j_num "model-info" "order" j))
    [ "alpha"; "beta"; "gamma" ];
  (* eval-grid through the router is byte-identical to a direct replica
     answer.  Warm both sides first so the cached flag agrees. *)
  List.iter
    (fun id ->
      let req = grid_req id in
      ignore (expect_ok "warm via router" (ask fleet.router_path req));
      let via_router = ask fleet.router_path req in
      ignore (expect_ok "router grid" via_router);
      let direct_path = List.hd fleet.replica_paths in
      ignore (expect_ok "warm direct" (ask direct_path req));
      let direct = ask direct_path req in
      Alcotest.(check string)
        (Printf.sprintf "router response for %s is byte-identical" id)
        direct via_router)
    [ "alpha"; "beta"; "gamma" ];
  (* a missing model is the replica's typed validation error, relayed *)
  ignore
    (expect_kind "unknown model" "validation"
       (ask fleet.router_path (grid_req "no-such-model")));
  (* malformed JSON is relayed to a replica for its typed parse error *)
  ignore
    (expect_kind "bad json" "parse" (ask fleet.router_path "{nope"));
  (* router stats expose the fleet *)
  let s = Router.stats fleet.router in
  Alcotest.(check int) "three replicas" 3 (List.length s.Router.rt_replicas);
  if s.Router.rt_forwarded = 0 then Alcotest.fail "nothing was forwarded"

(* ------------------------------------------------------------------ *)
(* End-to-end: kill a replica, failover is bit-identical *)

let test_failover_kill_bit_identical () =
  (* slow probes: the *request path* must discover the dead replica and
     fail over itself, not find it already probed Down and skipped *)
  let config = { router_config with probe_interval_ms = 60_000 } in
  with_fleet ~config ~n:3 ~models:[] @@ fun fleet ->
  let first = List.hd fleet.replica_paths in
  let id = model_with_primary fleet first in
  let req = grid_req id in
  let ring =
    Router.Ring.make ~vnodes:router_config.Router.vnodes fleet.replica_paths
  in
  let second =
    match Router.Ring.candidates ring id with
    | _ :: s :: _ -> s
    | _ -> Alcotest.fail "ring has no failover candidate"
  in
  (* warm the failover target directly and keep its steady answer *)
  ignore (expect_ok "warm failover target" (ask second req));
  let expected = ask second req in
  ignore (expect_ok "failover target answer" expected);
  (* sanity: the router currently serves this model from the primary *)
  ignore (expect_ok "pre-kill route" (ask fleet.router_path req));
  (* kill the primary mid-fleet *)
  let idx =
    match
      List.find_index (fun p -> p = first) fleet.replica_paths
    with
    | Some i -> i
    | None -> Alcotest.fail "first replica path missing"
  in
  Supervisor.stop fleet.sups.(idx);
  (* the very next request must fail over and answer bit-identically *)
  let via_router = ask fleet.router_path req in
  ignore (expect_ok "post-kill route" via_router);
  Alcotest.(check string) "failover answer is bit-identical" expected
    via_router;
  let s = Router.stats fleet.router in
  if s.Router.rt_failovers < 1 then
    Alcotest.fail "failover not counted";
  (* health converges: the dead replica goes down, the fleet keeps
     answering *)
  wait_for "primary marked down" (fun () ->
      (replica_state fleet first).Router.rp_state = Router.Health.Down);
  ignore (expect_ok "steady after kill" (ask fleet.router_path req))

(* ------------------------------------------------------------------ *)
(* End-to-end: partition fault, then heal and rejoin *)

let test_partition_failover_and_rejoin () =
  with_fleet ~n:3 ~models:[] @@ fun fleet ->
  let first = List.hd fleet.replica_paths in
  let id = model_with_primary fleet first in
  let req = grid_req id in
  ignore (expect_ok "pre-partition" (ask fleet.router_path req));
  Fault.set_spec (Some "router.partition");
  (* requests keep working through failover while probes down the
     partitioned replica *)
  ignore (expect_ok "during partition 1" (ask fleet.router_path req));
  wait_for "partitioned replica down" (fun () ->
      (replica_state fleet first).Router.rp_state = Router.Health.Down);
  ignore (expect_ok "during partition 2" (ask fleet.router_path req));
  let s = Router.stats fleet.router in
  if s.Router.rt_failovers < 1 then
    Alcotest.fail "partition did not cause a failover";
  (* heal: the replica must rejoin and serve again *)
  Fault.set_spec None;
  wait_for "replica rejoined" (fun () ->
      let r = replica_state fleet first in
      r.Router.rp_state = Router.Health.Up && r.Router.rp_rejoins >= 1);
  ignore (expect_ok "after heal" (ask fleet.router_path req))

(* ------------------------------------------------------------------ *)
(* End-to-end: flap x3 converges, no double execution *)

let test_rejoin_flap_no_double_execution () =
  with_fleet ~n:3 ~models:[] @@ fun fleet ->
  let first = List.hd fleet.replica_paths in
  let id = model_with_primary fleet first in
  let req = grid_req id in
  let sent = ref 0 in
  let send () =
    ignore (expect_ok "flap traffic" (ask fleet.router_path req));
    incr sent
  in
  send ();
  Fault.set_spec (Some "router.rejoin_flap");
  (* fail_threshold = 1, so each failed probe downs the replica and
     each ok probe rejoins it: wait through >= 3 full flap cycles *)
  wait_for ~timeout:10.0 "three rejoin cycles" (fun () ->
      (replica_state fleet first).Router.rp_rejoins >= 3);
  for _ = 1 to 6 do
    send ()
  done;
  Fault.set_spec None;
  wait_for "flapping replica settles up" (fun () ->
      (replica_state fleet first).Router.rp_state = Router.Health.Up);
  send ();
  (* every request executed exactly once somewhere in the fleet *)
  let total = fleet_eval_count fleet in
  Alcotest.(check int) "no double execution across the fleet" !sent total

(* ------------------------------------------------------------------ *)
(* End-to-end: coalescing is byte-identical *)

let test_coalescing_byte_identical () =
  let config = { router_config with coalesce_hold_ms = 300 } in
  with_fleet ~config ~n:2 ~models:[ "alpha" ] @@ fun fleet ->
  let req = grid_req "alpha" in
  (* warm so the cached flag is steady *)
  ignore (expect_ok "warm" (ask fleet.router_path req));
  let expected = ask fleet.router_path req in
  ignore (expect_ok "steady answer" expected);
  let before = Router.stats fleet.router in
  let n = 4 in
  let results = Array.make n "" in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            let fd = connect fleet.router_path in
            Fun.protect
              ~finally:(fun () -> close_quiet fd)
              (fun () ->
                send_line fd req;
                results.(i) <- recv_line fd))
          ())
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      ignore (expect_ok (Printf.sprintf "coalesced client %d" i) r);
      Alcotest.(check string)
        (Printf.sprintf "client %d byte-identical to the steady answer" i)
        expected r)
    results;
  let after = Router.stats fleet.router in
  let hits = after.Router.rt_coalesce_hits - before.Router.rt_coalesce_hits in
  let batches =
    after.Router.rt_coalesce_batches - before.Router.rt_coalesce_batches
  in
  if hits < 1 then
    Alcotest.failf "no coalescing observed (%d batches, %d hits)" batches
      hits;
  if batches + hits <> n then
    Alcotest.failf "coalescing accounting off: %d batches + %d hits <> %d"
      batches hits n

(* a coalesced batch over *different* grids still demuxes each waiter
   exactly its own frequencies *)
let test_coalescing_demux_subsets () =
  let config = { router_config with coalesce_hold_ms = 300 } in
  with_fleet ~config ~n:2 ~models:[ "alpha" ] @@ fun fleet ->
  let req_of freqs =
    Printf.sprintf "{\"op\": \"eval-grid\", \"model\": \"alpha\", \"freqs\": [%s]}"
      (String.concat ", " freqs)
  in
  let grids =
    [| req_of [ "1e3"; "2e5" ]; req_of [ "7e3" ];
       req_of [ "2e5"; "1e3" ]; req_of [ "1e3"; "7e3"; "2e5" ] |]
  in
  (* steady direct answers, warmed *)
  let expected =
    Array.map
      (fun r ->
        ignore (expect_ok "warm" (ask fleet.router_path r));
        ask fleet.router_path r)
      grids
  in
  let n = Array.length grids in
  let results = Array.make n "" in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            let fd = connect fleet.router_path in
            Fun.protect
              ~finally:(fun () -> close_quiet fd)
              (fun () ->
                send_line fd grids.(i);
                results.(i) <- recv_line fd))
          ())
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      ignore (expect_ok (Printf.sprintf "demux client %d" i) r);
      Alcotest.(check string)
        (Printf.sprintf "demux client %d got exactly its own grid" i)
        expected.(i) r)
    results

(* ------------------------------------------------------------------ *)
(* End-to-end: slow replica is a typed timeout, never a failover *)

let test_slow_replica_typed_timeout () =
  with_fleet ~n:3 ~models:[] @@ fun fleet ->
  let first = List.hd fleet.replica_paths in
  let id = model_with_primary fleet first in
  let req = grid_req id in
  ignore (expect_ok "pre-fault" (ask fleet.router_path req));
  let before = Router.stats fleet.router in
  Fault.set_spec (Some "router.slow_replica");
  ignore (expect_kind "slow replica" "timeout" (ask fleet.router_path req));
  Fault.set_spec None;
  let after = Router.stats fleet.router in
  Alcotest.(check int) "timeout counted" 1
    (after.Router.rt_timeouts - before.Router.rt_timeouts);
  Alcotest.(check int) "no failover on timeout" 0
    (after.Router.rt_failovers - before.Router.rt_failovers)

(* ------------------------------------------------------------------ *)
(* End-to-end: runtime registration *)

let test_register_replica () =
  with_fleet ~n:2 ~models:[ "alpha" ] @@ fun fleet ->
  ignore (expect_ok "pre-register" (ask fleet.router_path (grid_req "alpha")));
  (* bring up a third replica over the same store and register it *)
  let path = Filename.concat (fresh_dir ()) "r-late.sock" in
  let srv = Server.create ~root:fleet.root () in
  let sup =
    Supervisor.start ~config:sup_config srv ~listen:(Supervisor.Unix_path path)
  in
  Fun.protect
    ~finally:(fun () -> try Supervisor.stop sup with _ -> ())
    (fun () ->
      let j =
        expect_ok "register"
          (ask fleet.router_path
             (Printf.sprintf "{\"op\": \"register\", \"replica\": %S}" path))
      in
      Alcotest.(check int) "three replicas after register" 3
        (int_of_float (j_num "register" "replicas" j));
      (* re-register is idempotent *)
      let j2 =
        expect_ok "re-register"
          (ask fleet.router_path
             (Printf.sprintf "{\"op\": \"register\", \"replica\": %S}" path))
      in
      Alcotest.(check int) "still three replicas" 3
        (int_of_float (j_num "register" "replicas" j2));
      (* a malformed address is a typed refusal *)
      ignore
        (expect_kind "bad register" "validation"
           (ask fleet.router_path
              "{\"op\": \"register\", \"replica\": \"host:notaport\"}"));
      (* the fleet keeps serving; the newcomer becomes probe-visible *)
      wait_for "late replica probed up" (fun () ->
          (replica_state fleet path).Router.rp_state = Router.Health.Up);
      ignore
        (expect_ok "post-register" (ask fleet.router_path (grid_req "alpha"))))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "router"
    [ ( "ring",
        [ Alcotest.test_case "deterministic candidates" `Quick
            test_ring_deterministic;
          Alcotest.test_case "spread across replicas" `Quick
            test_ring_distribution;
          Alcotest.test_case "consistent remap on growth" `Quick
            test_ring_consistent_remap;
          Alcotest.test_case "empty ring, bad vnodes" `Quick
            test_ring_empty_and_bad ] );
      ( "health",
        [ Alcotest.test_case "state machine steps" `Quick test_health_step;
          Alcotest.test_case "address parsing" `Quick test_parse_addr ] );
      ( "routing",
        [ Alcotest.test_case "basic ops and byte-identity" `Quick
            test_route_basic;
          Alcotest.test_case "register replica at runtime" `Quick
            test_register_replica ] );
      ( "chaos",
        [ Alcotest.test_case "kill replica: failover bit-identical" `Quick
            test_failover_kill_bit_identical;
          Alcotest.test_case "partition: failover then rejoin" `Quick
            test_partition_failover_and_rejoin;
          Alcotest.test_case "flap x3: no double execution" `Quick
            test_rejoin_flap_no_double_execution;
          Alcotest.test_case "slow replica: typed timeout, no failover"
            `Quick test_slow_replica_typed_timeout ] );
      ( "coalescing",
        [ Alcotest.test_case "identical requests byte-identical" `Quick
            test_coalescing_byte_identical;
          Alcotest.test_case "mixed grids demux correctly" `Quick
            test_coalescing_demux_subsets ] ) ]
