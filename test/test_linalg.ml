(* Tests for the dense linear-algebra substrate. *)

open Linalg

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.1g)" msg expected actual tol

let check_small ?(tol = 1e-9) msg x =
  if abs_float x > tol then Alcotest.failf "%s: |%.3g| exceeds tol %.1g" msg x tol

let cx re im = Cx.make re im

(* ------------------------------------------------------------------ *)
(* Cx *)

let test_cx_arith () =
  let a = cx 1. 2. and b = cx 3. (-1.) in
  let sum = Cx.add a b in
  check_float "re(a+b)" 4. sum.Cx.re;
  check_float "im(a+b)" 1. sum.Cx.im;
  let prod = Cx.mul a b in
  (* (1+2j)(3-j) = 3 - j + 6j - 2j^2 = 5 + 5j *)
  check_float "re(a*b)" 5. prod.Cx.re;
  check_float "im(a*b)" 5. prod.Cx.im;
  let q = Cx.div prod b in
  check_float "re(a*b/b)" a.Cx.re q.Cx.re;
  check_float "im(a*b/b)" a.Cx.im q.Cx.im

let test_cx_abs_conj () =
  let a = cx 3. 4. in
  check_float "|3+4j|" 5. (Cx.abs a);
  check_float "|3+4j|^2" 25. (Cx.abs2 a);
  let c = Cx.conj a in
  check_float "conj im" (-4.) c.Cx.im;
  check_float "conj re" 3. c.Cx.re;
  Alcotest.(check bool) "equal tol" true (Cx.equal ~tol:1e-12 a (cx 3. 4.))

let test_cx_polar () =
  let z = Cx.polar 2. (Float.pi /. 2.) in
  check_close ~tol:1e-12 "polar re" 0. z.Cx.re;
  check_close ~tol:1e-12 "polar im" 2. z.Cx.im;
  check_close ~tol:1e-12 "arg" (Float.pi /. 2.) (Cx.arg z)

let test_cx_add_mul () =
  let acc = cx 1. 1. and a = cx 2. 3. and b = cx (-1.) 4. in
  let got = Cx.add_mul acc a b in
  let expect = Cx.add acc (Cx.mul a b) in
  check_float "add_mul re" expect.Cx.re got.Cx.re;
  check_float "add_mul im" expect.Cx.im got.Cx.im

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.uniform a) (Rng.uniform b)
  done

let test_rng_uniform_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check_close ~tol:0.05 "gaussian mean" 0. mean;
  check_close ~tol:0.1 "gaussian var" 1. var

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    let k = Rng.int rng 5 in
    Alcotest.(check bool) "bound" true (k >= 0 && k < 5);
    seen.(k) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Rmat *)

let test_rmat_mul () =
  let a = Rmat.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Rmat.of_rows [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  let c = Rmat.mul a b in
  check_float "c00" 19. (Rmat.get c 0 0);
  check_float "c01" 22. (Rmat.get c 0 1);
  check_float "c10" 43. (Rmat.get c 1 0);
  check_float "c11" 50. (Rmat.get c 1 1)

let test_rmat_transpose () =
  let a = Rmat.of_rows [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  let t = Rmat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Rmat.dims t);
  check_float "t(2,1)" 6. (Rmat.get t 2 1);
  check_float "t(0,1)" 4. (Rmat.get t 0 1)

let test_rmat_mul_tn () =
  let rng = Rng.create 5 in
  let a = Rmat.random rng 7 4 and b = Rmat.random rng 7 3 in
  let direct = Rmat.mul (Rmat.transpose a) b in
  let fused = Rmat.mul_tn a b in
  Alcotest.(check bool) "mul_tn = T*B" true (Rmat.equal ~tol:1e-12 direct fused)

let test_rmat_blocks () =
  let a = Rmat.of_rows [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = Rmat.of_rows [ [ 5. ]; [ 6. ] ] in
  let h = Rmat.hcat a b in
  Alcotest.(check (pair int int)) "hcat dims" (2, 3) (Rmat.dims h);
  check_float "hcat entry" 6. (Rmat.get h 1 2);
  let v = Rmat.vcat a (Rmat.of_rows [ [ 7.; 8. ] ]) in
  Alcotest.(check (pair int int)) "vcat dims" (3, 2) (Rmat.dims v);
  check_float "vcat entry" 8. (Rmat.get v 2 1);
  let s = Rmat.sub_matrix h ~r:0 ~c:1 ~rows:2 ~cols:2 in
  check_float "sub entry" 4. (Rmat.get s 1 0)

let test_rmat_norms () =
  let a = Rmat.of_rows [ [ 3.; 0. ]; [ 0.; 4. ] ] in
  check_float "fro" 5. (Rmat.norm_fro a);
  check_float "max_abs" 4. (Rmat.max_abs a);
  check_float "trace" 7. (Rmat.trace a)

(* ------------------------------------------------------------------ *)
(* Cmat *)

let naive_mul a b =
  let m = Cmat.rows a and n = Cmat.cols b and kk = Cmat.cols a in
  Cmat.init m n (fun i jcol ->
      let acc = ref Cx.zero in
      for k = 0 to kk - 1 do
        acc := Cx.add_mul !acc (Cmat.get a i k) (Cmat.get b k jcol)
      done;
      !acc)

let test_cmat_mul () =
  let rng = Rng.create 17 in
  let a = Cmat.random rng 6 5 and b = Cmat.random rng 5 4 in
  let fast = Cmat.mul a b and slow = naive_mul a b in
  Alcotest.(check bool) "gemm matches naive" true (Cmat.equal ~tol:1e-12 fast slow)

let test_cmat_mul_cn () =
  let rng = Rng.create 18 in
  let a = Cmat.random rng 6 3 and b = Cmat.random rng 6 4 in
  let direct = Cmat.mul (Cmat.ctranspose a) b in
  let fused = Cmat.mul_cn a b in
  Alcotest.(check bool) "mul_cn = A* B" true (Cmat.equal ~tol:1e-12 direct fused)

let test_cmat_ctranspose () =
  let a = Cmat.of_rows [ [ cx 1. 2.; cx 3. 4. ] ] in
  let h = Cmat.ctranspose a in
  Alcotest.(check (pair int int)) "dims" (2, 1) (Cmat.dims h);
  let z = Cmat.get h 1 0 in
  check_float "conj re" 3. z.Cx.re;
  check_float "conj im" (-4.) z.Cx.im

let test_cmat_blocks () =
  let a = Cmat.identity 2 in
  let b = Cmat.zeros 2 1 in
  let c = Cmat.zeros 1 2 in
  let d = Cmat.scalar (cx 5. 0.) in
  let m = Cmat.blocks [ [ a; b ]; [ c; d ] ] in
  Alcotest.(check (pair int int)) "dims" (3, 3) (Cmat.dims m);
  check_float "corner" 5. (Cmat.get m 2 2).Cx.re;
  check_float "id part" 1. (Cmat.get m 1 1).Cx.re;
  let bd = Cmat.blkdiag [ a; d ] in
  Alcotest.(check (pair int int)) "blkdiag dims" (3, 3) (Cmat.dims bd);
  check_float "blkdiag corner" 5. (Cmat.get bd 2 2).Cx.re;
  check_float "blkdiag off" 0. (Cmat.get bd 0 2).Cx.re

let test_cmat_select () =
  let m = Cmat.init 4 4 (fun i jcol -> cx (float_of_int (10 * i + jcol)) 0.) in
  let r = Cmat.select_rows m [| 3; 1 |] in
  check_float "row sel" 31. (Cmat.get r 0 1).Cx.re;
  check_float "row sel2" 12. (Cmat.get r 1 2).Cx.re;
  let c = Cmat.select_cols m [| 2; 0 |] in
  check_float "col sel" 2. (Cmat.get c 0 0).Cx.re;
  check_float "col sel2" 30. (Cmat.get c 3 1).Cx.re

let test_cmat_real_round_trip () =
  let rng = Rng.create 23 in
  let r = Rmat.random rng 3 4 in
  let c = Cmat.of_real r in
  check_small "max_imag of real" (Cmat.max_imag c);
  let back = Cmat.to_real ~tol:1e-12 c in
  Alcotest.(check bool) "round trip" true (Rmat.equal ~tol:0. r back);
  let noisy = Cmat.add c (Cmat.scale (cx 0. 1.) (Cmat.of_real (Rmat.identity 3 |> fun i -> Rmat.hcat i (Rmat.create 3 1)))) in
  match Cmat.to_real ~tol:1e-12 noisy with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "to_real should reject a genuinely complex matrix"

let test_cmat_norms () =
  let m = Cmat.of_rows [ [ cx 3. 4.; Cx.zero ]; [ Cx.zero; Cx.zero ] ] in
  check_float "fro" 5. (Cmat.norm_fro m);
  check_float "max_abs" 5. (Cmat.max_abs m);
  check_float "norm_one" 5. (Cmat.norm_one m);
  let v = Cmat.col_vector [| cx 1. 0.; cx 0. 2. |] in
  check_close ~tol:1e-12 "vec_norm" (sqrt 5.) (Cmat.vec_norm v);
  let w = Cmat.col_vector [| cx 0. 1.; cx 1. 0. |] in
  let d = Cmat.vec_dot v w in
  (* conj(1)*j + conj(2j)*1 = j - 2j = -j *)
  check_float "dot re" 0. d.Cx.re;
  check_float "dot im" (-1.) d.Cx.im

(* ------------------------------------------------------------------ *)
(* Lu *)

let test_lu_solve () =
  let rng = Rng.create 31 in
  let n = 25 in
  let a = Cmat.random rng n n in
  let x_true = Cmat.random rng n 3 in
  let b = Cmat.mul a x_true in
  let x = Lu.solve_mat a b in
  check_small ~tol:1e-8 "solve residual"
    (Cmat.norm_fro (Cmat.sub x x_true) /. Cmat.norm_fro x_true)

let test_lu_det () =
  (* det of a triangular-ish known matrix *)
  let a = Cmat.of_rows [ [ cx 2. 0.; cx 1. 0. ]; [ Cx.zero; cx 3. 0. ] ] in
  let d = Lu.det (Lu.factorize a) in
  check_float "det re" 6. d.Cx.re;
  check_float "det im" 0. d.Cx.im;
  (* complex determinant: [[j, 0],[0, j]] -> det = -1 *)
  let b = Cmat.of_rows [ [ Cx.j; Cx.zero ]; [ Cx.zero; Cx.j ] ] in
  let db = Lu.det (Lu.factorize b) in
  check_float "det j^2 re" (-1.) db.Cx.re;
  check_small "det j^2 im" db.Cx.im

let test_lu_inverse () =
  let rng = Rng.create 37 in
  let n = 15 in
  let a = Cmat.random rng n n in
  let ainv = Lu.inverse a in
  let id = Cmat.mul a ainv in
  check_small ~tol:1e-9 "A A^-1 = I" (Cmat.norm_fro (Cmat.sub id (Cmat.identity n)))

let test_lu_singular () =
  let a = Cmat.of_rows [ [ cx 1. 0.; cx 2. 0. ]; [ cx 2. 0.; cx 4. 0. ] ] in
  (match Lu.factorize a with
   | exception Lu.Singular _ -> ()
   | _ -> Alcotest.fail "expected Singular");
  check_float "rcond of singular" 0. (Lu.rcond_est a)

let test_lu_rcond () =
  let id = Cmat.identity 5 in
  check_close ~tol:1e-12 "rcond of identity" 1. (Lu.rcond_est id);
  (* a badly scaled diagonal matrix has rcond = min/max entry *)
  let d = Cmat.of_rows [ [ cx 1e6 0.; Cx.zero ]; [ Cx.zero; cx 1. 0. ] ] in
  check_close ~tol:1e-18 "rcond of scaled diag" 1e-6 (Lu.rcond_est d)

(* ------------------------------------------------------------------ *)
(* Qr *)

let test_qr_reconstruct () =
  let rng = Rng.create 41 in
  let a = Cmat.random rng 8 5 in
  let f = Qr.factorize a in
  let q = Qr.thin_q f and r = Qr.r f in
  let qr = Cmat.mul q r in
  check_small ~tol:1e-10 "QR = A" (Cmat.norm_fro (Cmat.sub qr a));
  let qhq = Cmat.mul_cn q q in
  check_small ~tol:1e-10 "Q*Q = I" (Cmat.norm_fro (Cmat.sub qhq (Cmat.identity 5)))

let test_qr_apply () =
  let rng = Rng.create 43 in
  let a = Cmat.random rng 7 7 in
  let f = Qr.factorize a in
  let b = Cmat.random rng 7 2 in
  let qb = Qr.apply_q f b in
  let back = Qr.apply_qh f qb in
  check_small ~tol:1e-10 "Q* Q b = b" (Cmat.norm_fro (Cmat.sub back b))

let test_qr_solve_ls_exact () =
  let rng = Rng.create 47 in
  let a = Cmat.random rng 6 6 in
  let x_true = Cmat.random rng 6 2 in
  let b = Cmat.mul a x_true in
  let x = Qr.solve_ls a b in
  check_small ~tol:1e-9 "square LS is exact"
    (Cmat.norm_fro (Cmat.sub x x_true) /. Cmat.norm_fro x_true)

let test_qr_solve_ls_overdetermined () =
  let rng = Rng.create 53 in
  let a = Cmat.random rng 20 4 in
  let b = Cmat.random rng 20 1 in
  let x = Qr.solve_ls a b in
  (* Normal equations: A*(Ax - b) = 0 *)
  let resid = Cmat.sub (Cmat.mul a x) b in
  check_small ~tol:1e-9 "normal equations" (Cmat.norm_fro (Cmat.mul_cn a resid))

let test_qr_orthonormalize () =
  let rng = Rng.create 59 in
  let a = Cmat.random rng 10 3 in
  let q = Qr.orthonormalize a in
  let qhq = Cmat.mul_cn q q in
  check_small ~tol:1e-10 "orthonormal" (Cmat.norm_fro (Cmat.sub qhq (Cmat.identity 3)));
  (* Span is preserved: a = q (q* a) *)
  let proj = Cmat.mul q (Cmat.mul_cn q a) in
  check_small ~tol:1e-9 "span preserved" (Cmat.norm_fro (Cmat.sub proj a))

(* ------------------------------------------------------------------ *)
(* Svd *)

let test_svd_diag () =
  let a = Cmat.of_rows
      [ [ cx 3. 0.; Cx.zero; Cx.zero ];
        [ Cx.zero; cx 5. 0.; Cx.zero ];
        [ Cx.zero; Cx.zero; cx 1. 0. ] ]
  in
  let d = Svd.decompose a in
  check_float "s0" 5. d.Svd.sigma.(0);
  check_float "s1" 3. d.Svd.sigma.(1);
  check_float "s2" 1. d.Svd.sigma.(2)

let test_svd_reconstruct () =
  let rng = Rng.create 61 in
  let a = Cmat.random rng 9 6 in
  let d = Svd.decompose a in
  check_small ~tol:1e-9 "USV* = A" (Cmat.norm_fro (Cmat.sub (Svd.reconstruct d) a));
  let uhu = Cmat.mul_cn d.Svd.u d.Svd.u in
  check_small ~tol:1e-10 "U*U = I" (Cmat.norm_fro (Cmat.sub uhu (Cmat.identity 6)));
  let vhv = Cmat.mul_cn d.Svd.v d.Svd.v in
  check_small ~tol:1e-10 "V*V = I" (Cmat.norm_fro (Cmat.sub vhv (Cmat.identity 6)))

let test_svd_wide () =
  let rng = Rng.create 67 in
  let a = Cmat.random rng 4 9 in
  let d = Svd.decompose a in
  check_small ~tol:1e-9 "wide USV* = A" (Cmat.norm_fro (Cmat.sub (Svd.reconstruct d) a));
  Alcotest.(check int) "wide k" 4 (Array.length d.Svd.sigma)

let test_svd_rank () =
  let rng = Rng.create 71 in
  (* rank-3 product of 8x3 and 3x8 *)
  let a = Cmat.mul (Cmat.random rng 8 3) (Cmat.random rng 3 8) in
  let d = Svd.decompose a in
  Alcotest.(check int) "rank" 3 (Svd.rank ~rtol:1e-10 d);
  Alcotest.(check int) "rank_gap" 3 (Svd.rank_gap d)

let test_svd_ordering () =
  let rng = Rng.create 73 in
  let d = Svd.decompose (Cmat.random rng 10 10) in
  for i = 0 to Array.length d.Svd.sigma - 2 do
    Alcotest.(check bool) "descending" true (d.Svd.sigma.(i) >= d.Svd.sigma.(i + 1))
  done

let test_svd_pinv () =
  let rng = Rng.create 79 in
  let a = Cmat.mul (Cmat.random rng 7 3) (Cmat.random rng 3 6) in
  let p = Svd.pinv a in
  (* Moore-Penrose: A P A = A and P A P = P *)
  check_small ~tol:1e-8 "A P A = A" (Cmat.norm_fro (Cmat.sub (Cmat.mul a (Cmat.mul p a)) a));
  check_small ~tol:1e-8 "P A P = P" (Cmat.norm_fro (Cmat.sub (Cmat.mul p (Cmat.mul a p)) p))

let test_svd_algorithms_agree () =
  let rng = Rng.create 91 in
  List.iter
    (fun (m, n) ->
      let a = Cmat.random rng m n in
      let dj = Svd.decompose ~algorithm:Svd.Jacobi a in
      let dg = Svd.decompose ~algorithm:Svd.Golub_kahan a in
      Array.iteri
        (fun i s ->
          check_small ~tol:1e-12 "sigma agreement"
            ((s -. dg.Svd.sigma.(i)) /. (1. +. s)))
        dj.Svd.sigma;
      check_small ~tol:1e-12 "gk reconstruction"
        (Cmat.norm_fro (Cmat.sub (Svd.reconstruct dg) a) /. (1. +. Cmat.norm_fro a)))
    [ (1, 1); (4, 3); (3, 4); (12, 12); (40, 25); (25, 40); (64, 64) ]

let test_svd_gk_graded_spectrum () =
  (* a steeply graded spectrum, the shape Loewner pencils produce *)
  let n = 40 in
  let rng = Rng.create 93 in
  let q1 = Qr.orthonormalize (Cmat.random rng n n) in
  let q2 = Qr.orthonormalize (Cmat.random rng n n) in
  let sig_true = Array.init n (fun i -> 10. ** (-.(float_of_int i) /. 2.)) in
  let s = Cmat.init n n (fun i jcol ->
      if i = jcol then Cx.of_float sig_true.(i) else Cx.zero)
  in
  let a = Cmat.mul q1 (Cmat.mul s (Cmat.ctranspose q2)) in
  let d = Svd.decompose ~algorithm:Svd.Golub_kahan a in
  Array.iteri
    (fun i s ->
      (* absolute accuracy at the eps * sigma_max level *)
      check_small ~tol:1e-14 "graded sigma" (s -. d.Svd.sigma.(i)))
    sig_true

let test_svd_norm2 () =
  let a = Cmat.of_rows [ [ cx 0. 7. ] ] in
  check_float "norm2 of scalar" 7. (Svd.norm2 a);
  let rng = Rng.create 83 in
  let q = Qr.orthonormalize (Cmat.random rng 6 6) in
  check_close ~tol:1e-10 "norm2 of unitary" 1. (Svd.norm2 q)

(* ------------------------------------------------------------------ *)
(* Eig *)

let contains_eig vs target tol =
  Array.exists (fun v -> Cx.abs (Cx.sub v target) < tol) vs

let test_eig_2x2 () =
  (* [[0, -1],[1, 0]] has eigenvalues +-j *)
  let a = Cmat.of_rows [ [ Cx.zero; cx (-1.) 0. ]; [ cx 1. 0.; Cx.zero ] ] in
  let vs = Eig.eigenvalues a in
  Alcotest.(check int) "count" 2 (Array.length vs);
  Alcotest.(check bool) "+j" true (contains_eig vs Cx.j 1e-10);
  Alcotest.(check bool) "-j" true (contains_eig vs (Cx.neg Cx.j) 1e-10)

let test_eig_triangular () =
  let a = Cmat.of_rows
      [ [ cx 2. 0.; cx 5. 1.; cx 0. 3. ];
        [ Cx.zero; cx (-1.) 2.; cx 4. 0. ];
        [ Cx.zero; Cx.zero; cx 0.5 (-3.) ] ]
  in
  let vs = Eig.eigenvalues a in
  Alcotest.(check bool) "2" true (contains_eig vs (cx 2. 0.) 1e-9);
  Alcotest.(check bool) "-1+2j" true (contains_eig vs (cx (-1.) 2.) 1e-9);
  Alcotest.(check bool) "0.5-3j" true (contains_eig vs (cx 0.5 (-3.)) 1e-9)

let test_eig_companion () =
  (* companion of p(x) = x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3) *)
  let a = Cmat.of_rows
      [ [ cx 6. 0.; cx (-11.) 0.; cx 6. 0. ];
        [ cx 1. 0.; Cx.zero; Cx.zero ];
        [ Cx.zero; cx 1. 0.; Cx.zero ] ]
  in
  let vs = Eig.eigenvalues a in
  Alcotest.(check bool) "root 1" true (contains_eig vs (cx 1. 0.) 1e-8);
  Alcotest.(check bool) "root 2" true (contains_eig vs (cx 2. 0.) 1e-8);
  Alcotest.(check bool) "root 3" true (contains_eig vs (cx 3. 0.) 1e-8)

let test_eig_trace_sum () =
  let rng = Rng.create 89 in
  let n = 20 in
  let a = Cmat.random rng n n in
  let vs = Eig.eigenvalues a in
  let sum = Array.fold_left Cx.add Cx.zero vs in
  let tr = Cmat.trace a in
  check_small ~tol:1e-8 "trace = sum eig" (Cx.abs (Cx.sub sum tr))

let test_eig_real_conjugate_pairs () =
  let rng = Rng.create 97 in
  let a = Rmat.random rng 12 12 in
  let vs = Eig.eigenvalues_real a in
  (* every eigenvalue with im > tol must have a conjugate partner *)
  Array.iter
    (fun v ->
      if abs_float v.Cx.im > 1e-8 then
        Alcotest.(check bool) "conjugate present" true
          (contains_eig vs (Cx.conj v) 1e-6))
    vs

let test_eig_similarity_invariance () =
  let rng = Rng.create 101 in
  let n = 8 in
  let a = Cmat.random rng n n in
  let t = Cmat.random rng n n in
  let b = Lu.solve_mat t (Cmat.mul a t) in
  (* b = T^{-1} (A T): similar to A *)
  let va = Eig.sort_by_magnitude (Eig.eigenvalues a) in
  let vb = Eig.sort_by_magnitude (Eig.eigenvalues b) in
  Array.iteri
    (fun i v -> check_small ~tol:1e-6 "similar spectra" (Cx.abs (Cx.sub v vb.(i))))
    va

let test_eig_right_vectors () =
  let rng = Rng.create 131 in
  let a = Cmat.random rng 10 10 in
  let values, vectors = Eig.eigen a in
  let av = Cmat.mul a vectors in
  Array.iteri
    (fun i lambda ->
      let v = Cmat.col vectors i in
      let lhs = Cmat.col av i in
      let rhs = Cmat.scale lambda v in
      check_small ~tol:1e-7 "A v = lambda v"
        (Cmat.norm_fro (Cmat.sub lhs rhs) /. (1. +. Cx.abs lambda)))
    values

let test_eig_diag_large () =
  (* large diagonal + small perturbation: eigenvalues near diagonal *)
  let n = 30 in
  let rng = Rng.create 103 in
  let a = Cmat.init n n (fun i jcol ->
      if i = jcol then cx (float_of_int (i + 1)) 0.
      else Cx.scale 1e-8 (Rng.complex_gaussian rng))
  in
  let vs = Eig.eigenvalues a in
  for i = 1 to n do
    Alcotest.(check bool)
      (Printf.sprintf "eig near %d" i)
      true
      (contains_eig vs (cx (float_of_int i) 0.) 1e-5)
  done

(* ------------------------------------------------------------------ *)
(* Expm *)

let test_expm_zero () =
  let e = Expm.expm (Cmat.zeros 4 4) in
  check_small ~tol:1e-14 "exp(0) = I" (Cmat.norm_fro (Cmat.sub e (Cmat.identity 4)))

let test_expm_diagonal () =
  let a = Cmat.of_rows [ [ cx 1. 0.; Cx.zero ]; [ Cx.zero; cx (-2.) 0.5 ] ] in
  let e = Expm.expm a in
  let e00 = Cmat.get e 0 0 and e11 = Cmat.get e 1 1 in
  check_small ~tol:1e-13 "e^1" (Cx.abs (Cx.sub e00 (cx (exp 1.) 0.)));
  let expected = Cx.mul (Cx.of_float (exp (-2.))) (Cx.exp (cx 0. 0.5)) in
  check_small ~tol:1e-13 "e^{-2+0.5j}" (Cx.abs (Cx.sub e11 expected));
  check_small "off-diagonal" (Cx.abs (Cmat.get e 0 1))

let test_expm_nilpotent () =
  let a = Cmat.of_rows [ [ Cx.zero; cx 3. 0. ]; [ Cx.zero; Cx.zero ] ] in
  let e = Expm.expm a in
  (* exp of a nilpotent = I + A exactly *)
  check_small ~tol:1e-14 "I + A"
    (Cmat.norm_fro (Cmat.sub e (Cmat.add (Cmat.identity 2) a)))

let test_expm_rotation () =
  let theta = 0.7 in
  let a = Cmat.of_rows
      [ [ Cx.zero; cx (-.theta) 0. ]; [ cx theta 0.; Cx.zero ] ]
  in
  let e = Expm.expm a in
  check_close ~tol:1e-13 "cos" (cos theta) (Cmat.get e 0 0).Cx.re;
  check_close ~tol:1e-13 "sin" (sin theta) (Cmat.get e 1 0).Cx.re

let test_expm_inverse () =
  let rng = Rng.create 111 in
  let a = Cmat.scale_float 2. (Cmat.random rng 8 8) in
  let id = Cmat.mul (Expm.expm a) (Expm.expm (Cmat.neg a)) in
  check_small ~tol:1e-10 "exp(A) exp(-A) = I"
    (Cmat.norm_fro (Cmat.sub id (Cmat.identity 8)))

let test_expm_det_trace () =
  let rng = Rng.create 113 in
  let a = Cmat.random rng 6 6 in
  let det = Lu.det (Lu.factorize (Expm.expm a)) in
  let expected = Cx.exp (Cmat.trace a) in
  check_small ~tol:1e-9 "det exp A = exp tr A"
    (Cx.abs (Cx.sub det expected) /. (1. +. Cx.abs expected))

(* ------------------------------------------------------------------ *)
(* Lyapunov *)

let stable_random rng n =
  let g = Cmat.random rng n n in
  Cmat.sub g (Cmat.scale_float (Svd.norm2 g +. 0.5) (Cmat.identity n))

let test_lyapunov_solve () =
  let rng = Rng.create 117 in
  let a = stable_random rng 12 in
  let b = Cmat.random rng 12 3 in
  let q = Cmat.mul b (Cmat.ctranspose b) in
  let x = Lyapunov.solve ~a ~q in
  check_small ~tol:1e-8 "residual"
    (Lyapunov.residual ~a ~q x /. (1. +. Cmat.norm_fro q))

let test_lyapunov_hermitian_psd () =
  (* the Gramian of a stable system is Hermitian positive semidefinite *)
  let rng = Rng.create 119 in
  let a = stable_random rng 9 in
  let b = Cmat.random rng 9 2 in
  let x = Lyapunov.solve ~a ~q:(Cmat.mul b (Cmat.ctranspose b)) in
  check_small ~tol:1e-9 "hermitian"
    (Cmat.norm_fro (Cmat.sub x (Cmat.ctranspose x)));
  let d = Svd.decompose x in
  (* eigenvalues = singular values for Hermitian PSD; all real >= 0 means
     x v = sigma v with positive inner product; verify via quadratic form *)
  let v = Cmat.random rng 9 1 in
  let quad = Cmat.vec_dot v (Cmat.mul x v) in
  Alcotest.(check bool) "psd quadratic form" true (Cx.re quad >= -1e-9);
  Alcotest.(check bool) "nonzero" true (d.Svd.sigma.(0) > 0.)

let test_lyapunov_known_scalar () =
  (* a x + x a + q = 0 with a = -2, q = 8 -> x = 2 *)
  let x =
    Lyapunov.solve ~a:(Cmat.scalar (cx (-2.) 0.)) ~q:(Cmat.scalar (cx 8. 0.))
  in
  check_close ~tol:1e-12 "scalar solution" 2. (Cmat.get x 0 0).Cx.re

let test_lyapunov_unstable_rejected () =
  let a = Cmat.identity 3 in
  match Lyapunov.solve ~a ~q:(Cmat.identity 3) with
  | exception Lyapunov.Not_stable -> ()
  | _ -> Alcotest.fail "unstable A accepted"

(* ------------------------------------------------------------------ *)
(* Chol *)

let spd_random rng n =
  let g = Cmat.random rng n n in
  Cmat.add (Cmat.mul g (Cmat.ctranspose g)) (Cmat.identity n)

let test_chol_factorize () =
  let rng = Rng.create 121 in
  let a = spd_random rng 10 in
  let l = Chol.factorize a in
  check_small ~tol:1e-9 "L L* = A"
    (Cmat.norm_fro (Cmat.sub (Cmat.mul l (Cmat.ctranspose l)) a)
     /. Cmat.norm_fro a);
  (* strictly upper part of L is zero *)
  for i = 0 to 9 do
    for jcol = i + 1 to 9 do
      check_small "upper zero" (Cx.abs (Cmat.get l i jcol))
    done
  done

let test_chol_solve () =
  let rng = Rng.create 123 in
  let a = spd_random rng 8 in
  let x_true = Cmat.random rng 8 2 in
  let b = Cmat.mul a x_true in
  let x = Chol.solve (Chol.factorize a) b in
  check_small ~tol:1e-9 "solve"
    (Cmat.norm_fro (Cmat.sub x x_true) /. Cmat.norm_fro x_true)

let test_chol_indefinite () =
  let a = Cmat.of_rows [ [ cx 1. 0.; cx 2. 0. ]; [ cx 2. 0.; cx 1. 0. ] ] in
  Alcotest.(check bool) "indefinite rejected" false (Chol.is_positive_definite a);
  let rng = Rng.create 127 in
  Alcotest.(check bool) "spd accepted" true
    (Chol.is_positive_definite (spd_random rng 5))

(* ------------------------------------------------------------------ *)
(* Sylvester *)

let test_sylvester_solve () =
  let rng = Rng.create 107 in
  let mu = Array.init 4 (fun i -> cx (float_of_int i) 1.) in
  let lambda = Array.init 5 (fun i -> cx (float_of_int i) (-1.)) in
  let f = Cmat.random rng 4 5 in
  let x = Sylvester.solve_diag ~mu ~lambda f in
  check_small ~tol:1e-12 "residual" (Sylvester.residual ~mu ~lambda x f)

let test_sylvester_singular () =
  let mu = [| cx 1. 0. |] and lambda = [| cx 1. 0. |] in
  let f = Cmat.identity 1 in
  Alcotest.check_raises "singular rejected"
    (Invalid_argument "Sylvester.solve_diag: lambda_j = mu_i makes the equation singular")
    (fun () -> ignore (Sylvester.solve_diag ~mu ~lambda f))

(* ------------------------------------------------------------------ *)
(* Rank rules over bare spectra (truncated-spectrum safe variants) *)

let test_rank_of_values () =
  Alcotest.(check int) "empty" 0 (Svd.rank_of_values ~rtol:1e-10 [||]);
  Alcotest.(check int) "zero spectrum" 0 (Svd.rank_of_values ~rtol:1e-10 [| 0. |]);
  Alcotest.(check int) "counts above rtol * sigma0" 2
    (Svd.rank_of_values ~rtol:1e-6 [| 1.0; 1e-3; 1e-9 |])

let test_rank_gap_boundary () =
  (* Spectrum truncated exactly at its cliff: no internal drop clears
     the 10x threshold, so without a tail bound the rule falls back to
     the floor count; with the certified bound the drop from the last
     retained value into the tail is itself a candidate gap and the
     full retained count is reported. *)
  let sigma = [| 100.; 50.; 49.5 |] in
  Alcotest.(check int) "no bound: floor count" 3
    (Svd.rank_gap_of_values sigma);
  Alcotest.(check int) "bound below cliff: boundary gap wins" 3
    (Svd.rank_gap_of_values ~tail_bound:1e-8 sigma)

let test_rank_gap_internal_wins () =
  (* A genuine interior cliff must still beat a shallow boundary drop. *)
  let sigma = [| 100.; 1e-6; 5e-7 |] in
  Alcotest.(check int) "no bound" 1 (Svd.rank_gap_of_values sigma);
  Alcotest.(check int) "shallow boundary loses" 1
    (Svd.rank_gap_of_values ~tail_bound:1e-7 sigma)

let test_rank_gap_boundary_below_floor () =
  (* A last retained value already under the noise floor is not a
     boundary candidate; the floor count decides. *)
  Alcotest.(check int) "tail candidate below floor ignored" 1
    (Svd.rank_gap_of_values ~floor:0.5 ~tail_bound:1e-30 [| 1.0; 0.2 |])

let test_rank_gap_matches_untruncated () =
  (* Truncating a spectrum at a genuine cliff and supplying the first
     cut value as the tail bound must reproduce the full-spectrum
     decision. *)
  let full = [| 10.; 9.; 8.5; 1e-9; 1e-10 |] in
  let trunc = Array.sub full 0 3 in
  Alcotest.(check int) "full" 3 (Svd.rank_gap_of_values full);
  Alcotest.(check int) "truncated + bound" 3
    (Svd.rank_gap_of_values ~tail_bound:full.(3) trunc)

(* ------------------------------------------------------------------ *)
(* Blocked one-sided Jacobi *)

let test_svd_blocked_matches_plain () =
  let rng = Rng.create 21 in
  List.iter
    (fun (m, n) ->
      let a = Cmat.random rng m n in
      let dp = Svd.decompose ~algorithm:Svd.Jacobi a in
      let db = Svd.decompose ~algorithm:Svd.Blocked_jacobi a in
      Array.iteri
        (fun i s ->
          check_small ~tol:1e-10
            (Printf.sprintf "%dx%d sigma %d" m n i)
            ((s -. dp.Svd.sigma.(i)) /. (1. +. s)))
        db.Svd.sigma;
      check_small ~tol:1e-9 "blocked USV* = A"
        (Cmat.norm_fro (Cmat.sub (Svd.reconstruct db) a)
        /. (1. +. Cmat.norm_fro a)))
    [ (48, 40); (60, 20) ]

let test_svd_blocked_domain_invariant () =
  (* The tournament schedule is fixed by the matrix shape alone, so the
     blocked factorization is bit-identical whether the intra-block
     passes run inline or fan out on the pool. *)
  let rng = Rng.create 22 in
  let a = Cmat.random rng 56 40 in
  let d_par = Svd.decompose ~algorithm:Svd.Blocked_jacobi a in
  let d_seq =
    Parallel.with_sequential (fun () ->
        Svd.decompose ~algorithm:Svd.Blocked_jacobi a)
  in
  Alcotest.(check bool) "sigma bit-identical" true
    (d_par.Svd.sigma = d_seq.Svd.sigma);
  Alcotest.(check bool) "u bit-identical" true
    (Cmat.equal ~tol:0. d_par.Svd.u d_seq.Svd.u);
  Alcotest.(check bool) "v bit-identical" true
    (Cmat.equal ~tol:0. d_par.Svd.v d_seq.Svd.v)

(* ------------------------------------------------------------------ *)
(* Randomized range-finder SVD *)

(* Exactly low-rank test matrix: the sketch captures the whole range,
   so the certificate must reach machine precision with a sketch far
   narrower than the spectrum. *)
let low_rank_matrix seed m n r =
  let rng = Rng.create seed in
  Cmat.mul (Cmat.random rng m r) (Cmat.random rng r n)

let test_rsvd_certified_bound () =
  let a = low_rank_matrix 31 80 48 8 in
  let r = Rsvd.decompose ~rank:8 a in
  Alcotest.(check bool) "certified" true r.Rsvd.certified;
  Alcotest.(check bool) "sketch narrower than spectrum" true
    (r.Rsvd.sketch < 48);
  let recon = Cmat.norm_fro (Cmat.sub (Svd.reconstruct r.Rsvd.svd) a) in
  let na = Cmat.norm_fro a in
  Alcotest.(check bool) "reconstruction within certificate" true
    (recon <= r.Rsvd.residual +. (1e-9 *. na))

let test_rsvd_adaptive () =
  let a = low_rank_matrix 32 90 60 12 in
  let r = Rsvd.decompose_adaptive a in
  Alcotest.(check bool) "certified" true r.Rsvd.certified;
  Alcotest.(check bool) "sketch narrower than spectrum" true
    (r.Rsvd.sketch < 60);
  let recon = Cmat.norm_fro (Cmat.sub (Svd.reconstruct r.Rsvd.svd) a) in
  Alcotest.(check bool) "reconstruction within certificate" true
    (recon <= r.Rsvd.residual +. (1e-9 *. Cmat.norm_fro a));
  (* The certified tail bound plugged into the gap rule recovers the
     true numerical rank. *)
  Alcotest.(check int) "rank via tail bound" 12
    (Svd.rank_gap_of_values ~tail_bound:r.Rsvd.residual r.Rsvd.svd.Svd.sigma)

let test_rsvd_deterministic () =
  let a = low_rank_matrix 5 64 40 6 in
  let r1 = Rsvd.decompose ~seed:42 ~rank:6 a in
  let r2 = Rsvd.decompose ~seed:42 ~rank:6 a in
  Alcotest.(check bool) "sigma bit-identical" true
    (r1.Rsvd.svd.Svd.sigma = r2.Rsvd.svd.Svd.sigma);
  Alcotest.(check bool) "u bit-identical" true
    (Cmat.equal ~tol:0. r1.Rsvd.svd.Svd.u r2.Rsvd.svd.Svd.u);
  Alcotest.(check bool) "v bit-identical" true
    (Cmat.equal ~tol:0. r1.Rsvd.svd.Svd.v r2.Rsvd.svd.Svd.v);
  Alcotest.(check (float 0.)) "residual bit-identical" r1.Rsvd.residual
    r2.Rsvd.residual

let test_rsvd_domain_invariant () =
  (* Sketch, power iteration and CholeskyQR2 are all GEMM-shaped, and
     GEMM output is chunking-invariant, so the factorization is
     bit-identical under any pool size. *)
  let a = low_rank_matrix 9 72 44 7 in
  let r_par = Rsvd.decompose ~rank:7 a in
  let r_seq = Parallel.with_sequential (fun () -> Rsvd.decompose ~rank:7 a) in
  Alcotest.(check bool) "sigma bit-identical" true
    (r_par.Rsvd.svd.Svd.sigma = r_seq.Rsvd.svd.Svd.sigma);
  Alcotest.(check bool) "u bit-identical" true
    (Cmat.equal ~tol:0. r_par.Rsvd.svd.Svd.u r_seq.Rsvd.svd.Svd.u)

let test_rsvd_wide () =
  let a = low_rank_matrix 13 40 90 5 in
  let r = Rsvd.decompose ~rank:5 a in
  Alcotest.(check bool) "certified" true r.Rsvd.certified;
  Alcotest.(check int) "u rows" 40 (Cmat.rows r.Rsvd.svd.Svd.u);
  Alcotest.(check int) "v rows" 90 (Cmat.rows r.Rsvd.svd.Svd.v);
  check_small ~tol:1e-9 "wide reconstruction"
    (Cmat.norm_fro (Cmat.sub (Svd.reconstruct r.Rsvd.svd) a)
    /. (1. +. Cmat.norm_fro a))

let test_rsvd_small_exact () =
  (* Below the sketch cutoff the exact path answers directly with a
     zero-residual certificate. *)
  let rng = Rng.create 17 in
  let a = Cmat.random rng 20 10 in
  let r = Rsvd.decompose ~rank:4 a in
  Alcotest.(check bool) "certified" true r.Rsvd.certified;
  Alcotest.(check (float 0.)) "residual" 0. r.Rsvd.residual;
  let d = Svd.decompose a in
  Array.iteri
    (fun i s -> check_float (Printf.sprintf "sigma %d" i) s r.Rsvd.svd.Svd.sigma.(i))
    d.Svd.sigma

let test_rsvd_degrade_fault () =
  (* The degrade fault poisons the certificate only: the factorization
     itself stays intact but can never certify. *)
  let a = low_rank_matrix 31 80 48 8 in
  Fault.with_spec "svd.rsvd.degrade" (fun () ->
      let r = Rsvd.decompose ~rank:8 a in
      Alcotest.(check bool) "uncertified" false r.Rsvd.certified;
      Alcotest.(check bool) "residual poisoned" true
        (r.Rsvd.residual = Float.infinity);
      check_small ~tol:1e-9 "factorization intact"
        (Cmat.norm_fro (Cmat.sub (Svd.reconstruct r.Rsvd.svd) a)
        /. (1. +. Cmat.norm_fro a)))

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let small_dim = QCheck.Gen.int_range 1 8

let gen_cmat =
  QCheck.Gen.(
    small_dim >>= fun m ->
    small_dim >>= fun n ->
    int_bound 1_000_000 >|= fun seed ->
    let rng = Rng.create seed in
    Cmat.random rng m n)

let arb_cmat =
  QCheck.make gen_cmat
    ~print:(fun m -> Format.asprintf "%dx%d matrix@.%a" (Cmat.rows m) (Cmat.cols m) Cmat.pp m)

let gen_square =
  QCheck.Gen.(
    int_range 1 10 >>= fun n ->
    int_bound 1_000_000 >|= fun seed ->
    let rng = Rng.create seed in
    Cmat.random rng n n)

let arb_square =
  QCheck.make gen_square
    ~print:(fun m -> Format.asprintf "%dx%d matrix@.%a" (Cmat.rows m) (Cmat.cols m) Cmat.pp m)

let prop_ctranspose_involution =
  QCheck.Test.make ~name:"ctranspose involution" ~count:50 arb_cmat (fun a ->
      Cmat.equal ~tol:0. (Cmat.ctranspose (Cmat.ctranspose a)) a)

let prop_mul_ctranspose =
  QCheck.Test.make ~name:"(AB)* = B* A*" ~count:50
    QCheck.(pair arb_square arb_square)
    (fun (a, b) ->
      QCheck.assume (Cmat.cols a = Cmat.rows b);
      let lhs = Cmat.ctranspose (Cmat.mul a b) in
      let rhs = Cmat.mul (Cmat.ctranspose b) (Cmat.ctranspose a) in
      Cmat.equal ~tol:1e-10 lhs rhs)

let prop_fro_triangle =
  QCheck.Test.make ~name:"Frobenius triangle inequality" ~count:50
    QCheck.(pair arb_square arb_square)
    (fun (a, b) ->
      QCheck.assume (Cmat.dims a = Cmat.dims b);
      Cmat.norm_fro (Cmat.add a b) <= Cmat.norm_fro a +. Cmat.norm_fro b +. 1e-12)

let prop_lu_solve =
  QCheck.Test.make ~name:"LU solve residual" ~count:40 arb_square (fun a ->
      match Lu.factorize a with
      | exception Lu.Singular _ -> true
      | f ->
        if Lu.rcond_est a < 1e-8 then true
        else begin
          let n = Cmat.rows a in
          let rng = Rng.create 1 in
          let b = Cmat.random rng n 1 in
          let x = Lu.solve f b in
          let resid = Cmat.norm_fro (Cmat.sub (Cmat.mul a x) b) in
          resid <= 1e-7 *. (Cmat.norm_fro a *. Cmat.norm_fro x +. Cmat.norm_fro b)
        end)

let prop_svd_reconstruct =
  QCheck.Test.make ~name:"SVD reconstruction" ~count:40 arb_cmat (fun a ->
      let d = Svd.decompose a in
      Cmat.norm_fro (Cmat.sub (Svd.reconstruct d) a) <= 1e-9 *. (1. +. Cmat.norm_fro a))

let prop_svd_norm_bound =
  QCheck.Test.make ~name:"sigma_max bounds Frobenius" ~count:40 arb_cmat (fun a ->
      let d = Svd.decompose a in
      let k = Array.length d.Svd.sigma in
      if k = 0 then true
      else
        d.Svd.sigma.(0) <= Cmat.norm_fro a +. 1e-12
        && Cmat.norm_fro a <= (sqrt (float_of_int k) *. d.Svd.sigma.(0)) +. 1e-12)

let prop_eig_det =
  QCheck.Test.make ~name:"product of eigenvalues = det" ~count:30 arb_square (fun a ->
      match Lu.factorize a with
      | exception Lu.Singular _ -> true
      | f ->
        let det = Lu.det f in
        let vs = Eig.eigenvalues a in
        let prod = Array.fold_left Cx.mul Cx.one vs in
        Cx.abs (Cx.sub det prod) <= 1e-6 *. (1. +. Cx.abs det))

let prop_qr_preserves_norm =
  QCheck.Test.make ~name:"Q preserves norms" ~count:40 arb_square (fun a ->
      let f = Qr.factorize a in
      let rng = Rng.create 2 in
      let b = Cmat.random rng (Cmat.rows a) 1 in
      let qb = Qr.apply_q f b in
      abs_float (Cmat.norm_fro qb -. Cmat.norm_fro b) <= 1e-9 *. (1. +. Cmat.norm_fro b))

(* Larger low-rank matrices so the sketch path (spectrum > 32) actually
   engages, unlike [arb_cmat]'s tiny shapes. *)
let arb_low_rank =
  QCheck.make
    QCheck.Gen.(
      int_range 40 70 >>= fun m ->
      int_range 36 48 >>= fun n ->
      int_range 1 10 >>= fun r ->
      int_bound 1_000_000 >|= fun seed ->
      let rng = Rng.create seed in
      Cmat.mul (Cmat.random rng m r) (Cmat.random rng r n))
    ~print:(fun m ->
      Format.asprintf "%dx%d matrix@.%a" (Cmat.rows m) (Cmat.cols m) Cmat.pp m)

let prop_rsvd_certificate =
  QCheck.Test.make ~name:"rsvd certificate bounds reconstruction" ~count:15
    arb_low_rank (fun a ->
      let r = Rsvd.decompose_adaptive a in
      let recon = Cmat.norm_fro (Cmat.sub (Svd.reconstruct r.Rsvd.svd) a) in
      r.Rsvd.certified
      && recon <= r.Rsvd.residual +. (1e-8 *. (1. +. Cmat.norm_fro a)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_ctranspose_involution; prop_mul_ctranspose; prop_fro_triangle;
      prop_lu_solve; prop_svd_reconstruct; prop_svd_norm_bound; prop_eig_det;
      prop_qr_preserves_norm; prop_rsvd_certificate ]

let () =
  Alcotest.run "linalg"
    [ ("cx",
       [ Alcotest.test_case "arithmetic" `Quick test_cx_arith;
         Alcotest.test_case "abs and conj" `Quick test_cx_abs_conj;
         Alcotest.test_case "polar" `Quick test_cx_polar;
         Alcotest.test_case "add_mul" `Quick test_cx_add_mul ]);
      ("rng",
       [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
         Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
         Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds ]);
      ("rmat",
       [ Alcotest.test_case "mul" `Quick test_rmat_mul;
         Alcotest.test_case "transpose" `Quick test_rmat_transpose;
         Alcotest.test_case "mul_tn" `Quick test_rmat_mul_tn;
         Alcotest.test_case "blocks" `Quick test_rmat_blocks;
         Alcotest.test_case "norms" `Quick test_rmat_norms ]);
      ("cmat",
       [ Alcotest.test_case "mul" `Quick test_cmat_mul;
         Alcotest.test_case "mul_cn" `Quick test_cmat_mul_cn;
         Alcotest.test_case "ctranspose" `Quick test_cmat_ctranspose;
         Alcotest.test_case "blocks" `Quick test_cmat_blocks;
         Alcotest.test_case "select" `Quick test_cmat_select;
         Alcotest.test_case "real round trip" `Quick test_cmat_real_round_trip;
         Alcotest.test_case "norms" `Quick test_cmat_norms ]);
      ("lu",
       [ Alcotest.test_case "solve" `Quick test_lu_solve;
         Alcotest.test_case "det" `Quick test_lu_det;
         Alcotest.test_case "inverse" `Quick test_lu_inverse;
         Alcotest.test_case "singular" `Quick test_lu_singular;
         Alcotest.test_case "rcond" `Quick test_lu_rcond ]);
      ("qr",
       [ Alcotest.test_case "reconstruct" `Quick test_qr_reconstruct;
         Alcotest.test_case "apply" `Quick test_qr_apply;
         Alcotest.test_case "solve exact" `Quick test_qr_solve_ls_exact;
         Alcotest.test_case "solve overdetermined" `Quick test_qr_solve_ls_overdetermined;
         Alcotest.test_case "orthonormalize" `Quick test_qr_orthonormalize ]);
      ("svd",
       [ Alcotest.test_case "diagonal" `Quick test_svd_diag;
         Alcotest.test_case "reconstruct" `Quick test_svd_reconstruct;
         Alcotest.test_case "wide" `Quick test_svd_wide;
         Alcotest.test_case "rank" `Quick test_svd_rank;
         Alcotest.test_case "ordering" `Quick test_svd_ordering;
         Alcotest.test_case "pinv" `Quick test_svd_pinv;
         Alcotest.test_case "algorithms agree" `Quick test_svd_algorithms_agree;
         Alcotest.test_case "gk graded spectrum" `Quick test_svd_gk_graded_spectrum;
         Alcotest.test_case "norm2" `Quick test_svd_norm2;
         Alcotest.test_case "blocked = plain" `Quick test_svd_blocked_matches_plain;
         Alcotest.test_case "blocked domain-invariant (bit)" `Quick
           test_svd_blocked_domain_invariant ]);
      ("rank rules",
       [ Alcotest.test_case "rank_of_values" `Quick test_rank_of_values;
         Alcotest.test_case "gap at truncation boundary" `Quick
           test_rank_gap_boundary;
         Alcotest.test_case "interior gap beats boundary" `Quick
           test_rank_gap_internal_wins;
         Alcotest.test_case "boundary below floor" `Quick
           test_rank_gap_boundary_below_floor;
         Alcotest.test_case "truncated matches full spectrum" `Quick
           test_rank_gap_matches_untruncated ]);
      ("rsvd",
       [ Alcotest.test_case "certified bound" `Quick test_rsvd_certified_bound;
         Alcotest.test_case "adaptive" `Quick test_rsvd_adaptive;
         Alcotest.test_case "deterministic under seed" `Quick
           test_rsvd_deterministic;
         Alcotest.test_case "domain-invariant (bit)" `Quick
           test_rsvd_domain_invariant;
         Alcotest.test_case "wide" `Quick test_rsvd_wide;
         Alcotest.test_case "small falls back to exact" `Quick
           test_rsvd_small_exact;
         Alcotest.test_case "degrade fault poisons certificate" `Quick
           test_rsvd_degrade_fault ]);
      ("eig",
       [ Alcotest.test_case "2x2 rotation" `Quick test_eig_2x2;
         Alcotest.test_case "triangular" `Quick test_eig_triangular;
         Alcotest.test_case "companion" `Quick test_eig_companion;
         Alcotest.test_case "trace = sum" `Quick test_eig_trace_sum;
         Alcotest.test_case "real conjugate pairs" `Quick test_eig_real_conjugate_pairs;
         Alcotest.test_case "similarity invariance" `Quick test_eig_similarity_invariance;
         Alcotest.test_case "right vectors" `Quick test_eig_right_vectors;
         Alcotest.test_case "diagonal dominant" `Quick test_eig_diag_large ]);
      ("expm",
       [ Alcotest.test_case "zero" `Quick test_expm_zero;
         Alcotest.test_case "diagonal" `Quick test_expm_diagonal;
         Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
         Alcotest.test_case "rotation" `Quick test_expm_rotation;
         Alcotest.test_case "inverse" `Quick test_expm_inverse;
         Alcotest.test_case "det = exp trace" `Quick test_expm_det_trace ]);
      ("lyapunov",
       [ Alcotest.test_case "solve" `Quick test_lyapunov_solve;
         Alcotest.test_case "hermitian psd" `Quick test_lyapunov_hermitian_psd;
         Alcotest.test_case "known scalar" `Quick test_lyapunov_known_scalar;
         Alcotest.test_case "unstable rejected" `Quick test_lyapunov_unstable_rejected ]);
      ("chol",
       [ Alcotest.test_case "factorize" `Quick test_chol_factorize;
         Alcotest.test_case "solve" `Quick test_chol_solve;
         Alcotest.test_case "indefinite" `Quick test_chol_indefinite ]);
      ("sylvester",
       [ Alcotest.test_case "solve" `Quick test_sylvester_solve;
         Alcotest.test_case "singular" `Quick test_sylvester_singular ]);
      ("properties", props) ]
