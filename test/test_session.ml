(* Streaming fit sessions: bit-identity of [Session.finalize] against
   the one-shot batch fit, stage invalidation on append, atomic batch
   vetting, the session fault sites, and adaptive frequency
   suggestion. *)

open Linalg
open Statespace
open Mfti

let spec ports seed =
  { Random_sys.order = 10; ports; rank_d = ports; freq_lo = 100.;
    freq_hi = 1e5; damping = 0.1; seed }

let samples ~ports ~seed k =
  let sys = Random_sys.generate (spec ports seed) in
  Sampling.sample_system sys (Sampling.logspace 100. 1e5 k)

let check_cmat msg a b =
  if not (Cmat.equal ~tol:0. a b) then Alcotest.failf "%s: matrices differ" msg

let check_descriptor msg (a : Descriptor.t) (b : Descriptor.t) =
  check_cmat (msg ^ " E") a.Descriptor.e b.Descriptor.e;
  check_cmat (msg ^ " A") a.Descriptor.a b.Descriptor.a;
  check_cmat (msg ^ " B") a.Descriptor.b b.Descriptor.b;
  check_cmat (msg ^ " C") a.Descriptor.c b.Descriptor.c;
  check_cmat (msg ^ " D") a.Descriptor.d b.Descriptor.d

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.fail (Mfti_error.to_string e)

(* Chop [smps] into batches of the cyclic sizes in [pattern]. *)
let chunks pattern smps =
  let n = Array.length smps in
  let out = ref [] and i = ref 0 and pi = ref 0 in
  while !i < n do
    let len = Stdlib.min pattern.(!pi mod Array.length pattern) (n - !i) in
    out := Array.sub smps !i len :: !out;
    i := !i + len;
    pi := !pi + 1
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Bit-identity: streamed appends + finalize == one-shot Direct fit *)

(* The acceptance property: over port counts and sample-pool sizes,
   any batch chunking of the stream finalizes to the bit-exact model
   of the batch path — matrices, rank and singular values alike. *)
let test_finalize_bit_identity () =
  List.iter
    (fun (ports, pool, pattern, seed) ->
      let smps = samples ~ports ~seed pool in
      let options = Engine.default_options in
      let batch_fit =
        Engine.run_exn ~options ~strategy:Engine.Direct
          (Dataset.of_samples smps)
      in
      let sess = ok (Engine.Session.open_ ~options ~inputs:ports
                       ~outputs:ports ()) in
      List.iter
        (fun b -> ignore (ok (Engine.Session.append sess b)))
        (chunks pattern smps);
      let m = ok (Engine.Session.finalize sess) in
      let msg = Printf.sprintf "ports %d pool %d" ports pool in
      check_descriptor msg (Engine.Model.descriptor m)
        batch_fit.Engine.model;
      Alcotest.(check int) (msg ^ " rank") batch_fit.Engine.rank
        (Engine.Model.rank m);
      Alcotest.(check (array (float 0.))) (msg ^ " sigma")
        batch_fit.Engine.sigma (Engine.Model.sigma m))
    [ (2, 8, [| 1 |], 3);          (* one sample at a time *)
      (2, 12, [| 3; 1; 2 |], 5);   (* ragged batches splitting pairs *)
      (4, 12, [| 5; 7 |], 7);
      (4, 16, [| 16 |], 9);        (* one shot through the session *)
      (8, 12, [| 2 |], 11);
      (8, 16, [| 7; 3; 6 |], 13) ]

(* Same property with interleaved refits (model queries between
   appends must not perturb the final bits) and across domain counts. *)
let test_finalize_bit_identity_refits () =
  let ports = 4 and pool = 12 in
  let smps = samples ~ports ~seed:17 pool in
  let options = { Engine.default_options with certify = Certify.Check } in
  let batch_fit =
    Engine.run_exn ~options ~strategy:Engine.Direct (Dataset.of_samples smps)
  in
  List.iter
    (fun ndom ->
      Parallel.set_domain_count ndom;
      Fun.protect ~finally:(fun () -> Parallel.set_domain_count 1)
        (fun () ->
          let sess = ok (Engine.Session.open_ ~options ~inputs:ports
                           ~outputs:ports ()) in
          List.iter
            (fun b ->
              ignore (ok (Engine.Session.append sess b));
              (* refit between every batch: downstream stages rerun *)
              ignore (ok (Engine.Session.model sess)))
            (chunks [| 4 |] smps);
          let m = ok (Engine.Session.finalize sess) in
          let msg = Printf.sprintf "domains %d" ndom in
          check_descriptor msg (Engine.Model.descriptor m)
            batch_fit.Engine.model;
          (match Engine.Model.certificate m with
           | Some _ -> ()
           | None -> Alcotest.fail (msg ^ ": finalize lost the certificate"))))
    [ 1; 4 ]

(* ------------------------------------------------------------------ *)
(* Invalidation tracking *)

let test_append_invalidation () =
  let smps = samples ~ports:2 ~seed:23 12 in
  let sess = ok (Engine.Session.open_ ~inputs:2 ~outputs:2 ()) in
  Alcotest.(check bool) "starts Ingested" true
    (Engine.Session.stage sess = Engine.Ingested);
  let inv = ok (Engine.Session.append sess (Array.sub smps 0 6)) in
  Alcotest.(check bool) "first append invalidates nothing" true (inv = []);
  Alcotest.(check bool) "assembled after first pair" true
    (Engine.Session.stage sess = Engine.Assembled);
  ignore (ok (Engine.Session.model sess));
  Alcotest.(check bool) "reduced after model" true
    (Engine.Session.stage sess = Engine.Reduced);
  let c1 = Engine.Session.counters sess in
  Alcotest.(check int) "one refit" 1 c1.Engine.Session.refits;
  (* an append drops exactly the downstream caches *)
  let inv = ok (Engine.Session.append sess (Array.sub smps 6 4)) in
  Alcotest.(check bool) "append invalidates reduce + realify" true
    (inv = [ Engine.Reduced; Engine.Realified ]);
  Alcotest.(check bool) "back to assembled" true
    (Engine.Session.stage sess = Engine.Assembled);
  Alcotest.(check bool) "invalidated is recorded" true
    (Engine.Session.invalidated sess = [ Engine.Reduced; Engine.Realified ]);
  (* hold-out appends never invalidate *)
  ignore (ok (Engine.Session.model sess));
  let inv = ok (Engine.Session.append ~holdout:true sess
                  (Array.sub smps 10 2)) in
  Alcotest.(check bool) "holdout append invalidates nothing" true (inv = []);
  Alcotest.(check bool) "still reduced" true
    (Engine.Session.stage sess = Engine.Reduced);
  let c2 = Engine.Session.counters sess in
  Alcotest.(check int) "two refits" 2 c2.Engine.Session.refits;
  Alcotest.(check int) "ten fit samples" 10 c2.Engine.Session.appended;
  Alcotest.(check int) "two held out" 2 c2.Engine.Session.held_out;
  let err = ok (Engine.Session.holdout_err sess) in
  (match err with
   | Some e -> Alcotest.(check bool) "holdout err finite" true
                 (Float.is_finite e)
   | None -> Alcotest.fail "holdout err missing")

(* ------------------------------------------------------------------ *)
(* Pending slot and batch atomicity *)

let test_pending_and_atomicity () =
  let smps = samples ~ports:2 ~seed:29 9 in
  let sess = ok (Engine.Session.open_ ~inputs:2 ~outputs:2 ()) in
  ignore (ok (Engine.Session.append sess (Array.sub smps 0 5)));
  Alcotest.(check bool) "odd count leaves a pending sample" true
    (Engine.Session.pending sess);
  Alcotest.(check int) "only completed pairs count" 4
    (Engine.Session.size sess);
  ignore (ok (Engine.Session.append sess (Array.sub smps 5 1)));
  Alcotest.(check bool) "partner clears the pending slot" false
    (Engine.Session.pending sess);
  Alcotest.(check int) "pair completed" 6 (Engine.Session.size sess);
  (* a batch with one bad sample is refused whole: nothing changes *)
  let bad = [| smps.(6); smps.(0) |] in   (* duplicate frequency *)
  (match Engine.Session.append sess bad with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "duplicate frequency accepted");
  Alcotest.(check int) "refused batch left the session untouched" 6
    (Engine.Session.size sess);
  Alcotest.(check bool) "no pending from refused batch" false
    (Engine.Session.pending sess);
  (* dimension mismatch *)
  let wrong = samples ~ports:3 ~seed:31 2 in
  (match Engine.Session.append sess wrong with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "3x3 sample accepted into a 2x2 session");
  (* finalize drops an unpaired trailing sample, like trim_even *)
  ignore (ok (Engine.Session.append sess (Array.sub smps 6 1)));
  Alcotest.(check bool) "pending again" true (Engine.Session.pending sess);
  let m = ok (Engine.Session.finalize sess) in
  let batch =
    Engine.run_exn ~strategy:Engine.Direct
      (Dataset.of_samples (Array.sub smps 0 6))
  in
  check_descriptor "pending dropped at finalize"
    (Engine.Model.descriptor m) batch.Engine.model

let test_open_validation () =
  (match Engine.Session.open_ ~inputs:0 ~outputs:2 () with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "inputs 0 accepted");
  (match Engine.Session.open_
           ~options:{ Engine.default_options with
                      weight = Tangential.Per_sample [| 1 |] }
           ~inputs:2 ~outputs:2 () with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "Per_sample weight accepted");
  match Engine.Session.open_
          ~options:{ Engine.default_options with
                     weight = Tangential.Uniform 5 }
          ~inputs:2 ~outputs:2 () with
  | Error (Mfti_error.Validation _) -> ()
  | _ -> Alcotest.fail "width 5 accepted for 2x2"

(* ------------------------------------------------------------------ *)
(* Lifecycle and fault sites *)

let test_lifecycle_and_faults () =
  let smps = samples ~ports:2 ~seed:37 8 in
  let sess = ok (Engine.Session.open_ ~inputs:2 ~outputs:2 ()) in
  (* empty finalize is a typed error *)
  (match Engine.Session.finalize sess with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "empty finalize accepted");
  ignore (ok (Engine.Session.append sess smps));
  (* forced stale append: the TTL-race path, deterministic *)
  Fault.with_spec "session.stale_append" (fun () ->
      match Engine.Session.append sess [| smps.(0) |] with
      | Error (Mfti_error.Validation { context = "session"; message }) ->
        Alcotest.(check bool) "stale message names the fault" true
          (String.length message > 0)
      | _ -> Alcotest.fail "stale append not refused");
  (* forced finalize race *)
  Fault.with_spec "session.finalize_race" (fun () ->
      match Engine.Session.finalize sess with
      | Error (Mfti_error.Validation { context = "session"; _ }) -> ()
      | _ -> Alcotest.fail "finalize race not refused");
  (* the fault paths left the session usable *)
  ignore (ok (Engine.Session.finalize sess));
  Alcotest.(check bool) "finalized" true (Engine.Session.finalized sess);
  (* post-finalize appends and re-finalizes are typed errors *)
  (match Engine.Session.append sess [| smps.(0) |] with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "append after finalize accepted");
  match Engine.Session.finalize sess with
  | Error (Mfti_error.Validation _) -> ()
  | _ -> Alcotest.fail "double finalize accepted"

(* ------------------------------------------------------------------ *)
(* Adaptive suggestion *)

let test_adaptive_suggest () =
  let smps = samples ~ports:2 ~seed:41 16 in
  let opts = { Adaptive.default_options with count = 4 } in
  let s1 = ok (Adaptive.suggest ~options:opts smps) in
  let s2 = ok (Adaptive.suggest ~options:opts smps) in
  Alcotest.(check bool) "deterministic" true (s1 = s2);
  Alcotest.(check bool) "returns suggestions" true (List.length s1 > 0);
  Alcotest.(check bool) "at most count" true (List.length s1 <= 4);
  List.iter
    (fun (s : Adaptive.score) ->
      Alcotest.(check bool) "in band" true (s.Adaptive.freq >= 100.
                                            && s.Adaptive.freq <= 1e5);
      Alcotest.(check bool) "score finite" true
        (Float.is_finite s.Adaptive.score && s.Adaptive.score >= 0.);
      (* no suggestion lands on an existing sample *)
      Array.iter
        (fun smp ->
          Alcotest.(check bool) "clear of samples" true
            (Float.abs (log10 s.Adaptive.freq -. log10 smp.Sampling.freq)
             >= opts.Adaptive.min_gap))
        smps)
    s1;
  (* suggestions are spaced apart *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "mutual spacing" true
              (Float.abs (log10 a.Adaptive.freq -. log10 b.Adaptive.freq)
               >= opts.Adaptive.min_gap))
        s1)
    s1;
  (* ranking is best-first *)
  let rec descending = function
    | a :: (b :: _ as rest) ->
      (a : Adaptive.score).Adaptive.score >= b.Adaptive.score
      && descending rest
    | _ -> true
  in
  Alcotest.(check bool) "best first" true (descending s1);
  (* too few samples is a typed error *)
  (match Adaptive.suggest (Array.sub smps 0 6) with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "6 samples accepted");
  (* explicit candidate grids are honored *)
  let cands = [| 333.; 4444.; 55555. |] in
  let s3 = ok (Adaptive.suggest ~options:opts ~candidates:cands smps) in
  List.iter
    (fun (s : Adaptive.score) ->
      Alcotest.(check bool) "from the explicit grid" true
        (Array.exists (fun c -> c = s.Adaptive.freq) cands))
    s3

(* Suggestions must concentrate where the data leaves the response
   unconstrained: sample densely everywhere except one decade and the
   top pick should land inside the hole. *)
let test_adaptive_targets_gap () =
  (* all of the system's dynamics live inside the unsampled decade *)
  let sys =
    Random_sys.generate
      { Random_sys.order = 10; ports = 2; rank_d = 2; freq_lo = 2e3;
        freq_hi = 8e3; damping = 0.1; seed = 43 }
  in
  let freqs =
    Array.append (Sampling.logspace 100. 1e3 10)
      (Sampling.logspace 1.1e4 1e5 10)
  in
  let smps = Sampling.sample_system sys freqs in
  let sugg =
    ok (Adaptive.suggest
          ~options:{ Adaptive.default_options with count = 1; grid = 96 }
          smps)
  in
  match sugg with
  | top :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "top suggestion %g inside the gap" top.Adaptive.freq)
      true
      (top.Adaptive.freq > 1e3 && top.Adaptive.freq < 1.1e4)
  | [] -> Alcotest.fail "no suggestion"

let () =
  Alcotest.run "session"
    [ ( "bit-identity",
        [ Alcotest.test_case "finalize = batch fit (bit)" `Quick
            test_finalize_bit_identity;
          Alcotest.test_case "with interleaved refits + domains (bit)" `Quick
            test_finalize_bit_identity_refits ] );
      ( "lifecycle",
        [ Alcotest.test_case "append invalidation" `Quick
            test_append_invalidation;
          Alcotest.test_case "pending slot + atomic batches" `Quick
            test_pending_and_atomicity;
          Alcotest.test_case "open validation" `Quick test_open_validation;
          Alcotest.test_case "faults + finalize lifecycle" `Quick
            test_lifecycle_and_faults ] );
      ( "adaptive",
        [ Alcotest.test_case "suggest invariants" `Quick
            test_adaptive_suggest;
          Alcotest.test_case "targets the unsampled gap" `Quick
            test_adaptive_targets_gap ] ) ]
