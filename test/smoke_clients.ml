(* CI smoke driver for the supervised socket transport.

   Usage: smoke_clients.exe SOCKET MODEL
          smoke_clients.exe --lines SOCKET

   Default mode attacks a running `mfti serve --socket SOCKET` with
   four concurrent clients: one stalls mid-frame (and must be timed
   out with a typed "timeout" response), three issue well-formed
   requests (and must all complete).  A final client checks the stats
   op reports the timeout, then sends the shutdown request so the
   server drains.  Exit 0 only when every expectation holds; failures
   print to stderr.

   --lines is a plain pipe client: each stdin line is sent over one
   connection and the response line printed to stdout — the socket
   equivalent of piping requests into a stdio server. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     die "connect %s: %s" path (Unix.error_message e));
  fd

let send_raw fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_line ?(timeout = 10.0) fd what =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then die "%s: no response within %.1fs" what timeout
      else
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> go ()
        | _ ->
          (match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> die "%s: connection closed" what
           | k -> Buffer.add_subbytes buf chunk 0 k; go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* string-level checks keep this driver free of the serve library, so
   it exercises the CLI binary exactly as an external client would *)
let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let expect_ok what line =
  if not (contains line "\"ok\": true") then
    die "%s: expected ok response, got %s" what line

let expect_kind what kind line =
  if not (contains line (Printf.sprintf "\"kind\": %S" kind)) then
    die "%s: expected %S error, got %s" what kind line

let run_lines socket =
  let fd = connect socket in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         send_raw fd (line ^ "\n");
         print_endline (recv_line ~timeout:60.0 fd "lines client")
       end
     done
   with End_of_file -> ());
  Unix.close fd

let () =
  let socket, model =
    match Sys.argv with
    | [| _; "--lines"; s |] -> run_lines s; exit 0
    | [| _; s; m |] -> (s, m)
    | _ -> die "usage: smoke_clients [--lines] SOCKET [MODEL]"
  in
  (* client 1: stalls mid-frame *)
  let slow = connect socket in
  send_raw slow "{\"op\":\"eval-grid\",\"model\":\"";
  (* clients 2-4: well-formed traffic while the slow client hangs *)
  let fast = Array.init 3 (fun _ -> connect socket) in
  Array.iteri
    (fun i fd ->
      let what = Printf.sprintf "fast client %d" i in
      send_raw fd
        (Printf.sprintf "{\"op\":\"model-info\",\"model\":%S}\n" model);
      expect_ok what (recv_line fd what);
      Unix.close fd)
    fast;
  print_endline "fast clients: 3/3 ok";
  (* the stalled client must receive a typed timeout, per policy *)
  let l = recv_line ~timeout:15.0 slow "slow client" in
  expect_kind "slow client" "timeout" l;
  Unix.close slow;
  print_endline "slow client: timed out with typed response";
  (* stats must account for the stall; then drain the server *)
  let last = connect socket in
  send_raw last "{\"op\":\"stats\"}\n";
  let stats = recv_line last "stats" in
  expect_ok "stats" stats;
  if not (contains stats "\"supervisor\"") then
    die "stats: missing supervisor block: %s" stats;
  if contains stats "\"read_timeouts\": 0," then
    die "stats: slow-client timeout not recorded: %s" stats;
  send_raw last "{\"op\":\"shutdown\"}\n";
  expect_ok "shutdown" (recv_line last "shutdown");
  Unix.close last;
  print_endline "shutdown: acknowledged, server draining"
