(* CI smoke driver for the supervised socket/TCP transports and the
   routing tier.

   Usage: smoke_clients.exe ADDR MODEL
          smoke_clients.exe --lines ADDR
          smoke_clients.exe --blast N ADDR MODEL

   ADDR is a Unix socket path, or HOST:PORT (no '/') for TCP.  Every
   connection retries with capped exponential backoff and dies with a
   typed "gave up after N attempts" diagnostic, so a briefly-restarting
   server does not flake the suite.

   Default mode attacks a running server with four concurrent clients:
   one stalls mid-frame (and must be timed out with a typed "timeout"
   response), three issue well-formed requests (and must all
   complete).  A final client checks the stats op reports the timeout,
   then sends the shutdown request so the server drains.

   --lines is a plain pipe client: each stdin line is sent over one
   connection and the response line printed to stdout — the socket
   equivalent of piping requests into a stdio server.

   --blast fires N concurrent identical eval-grid requests (one thread
   per client) and asserts every response is byte-identical — the
   router's coalescing demux must be invisible to clients.  Exit 0
   only when every expectation holds; failures print to stderr. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

(* ADDR with a ':' and no '/' is HOST:PORT; anything else a socket path *)
let parse_addr s =
  if String.contains s '/' || not (String.contains s ':') then `Unix s
  else
    match String.rindex_opt s ':' with
    | None -> `Unix s
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
       | Some p when p >= 0 && p <= 65535 && host <> "" -> `Tcp (host, p)
       | _ -> die "malformed address %S (want host:port or a path)" s)

let connect_once addr =
  match addr with
  | `Unix path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (match Unix.connect fd (Unix.ADDR_UNIX path) with
     | () -> Ok fd
     | exception Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Error (Unix.error_message e))
  | `Tcp (host, port) ->
    let ip =
      try Some (Unix.inet_addr_of_string host)
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> None
        | h -> Some h.Unix.h_addr_list.(0)
        | exception Not_found -> None)
    in
    (match ip with
     | None -> Error ("cannot resolve host " ^ host)
     | Some ip ->
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ());
       (match Unix.connect fd (Unix.ADDR_INET (ip, port)) with
        | () -> Ok fd
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Unix.error_message e)))

(* capped exponential backoff; giving up is a typed diagnostic *)
let connect ?(attempts = 5) ?(base_ms = 100) ?(cap_ms = 2000) addr_s =
  let addr = parse_addr addr_s in
  let rec go n delay_ms =
    match connect_once addr with
    | Ok fd -> fd
    | Error msg ->
      if n >= attempts then
        die
          "gave up connecting to %s after %d attempts (capped exponential \
           backoff): %s"
          addr_s attempts msg
      else begin
        Unix.sleepf (float_of_int delay_ms /. 1000.);
        go (n + 1) (min cap_ms (delay_ms * 2))
      end
  in
  go 1 base_ms

let send_raw fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_line ?(timeout = 10.0) fd what =
  let deadline = Unix.gettimeofday () +. timeout in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then die "%s: no response within %.1fs" what timeout
      else
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> go ()
        | _ ->
          (match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> die "%s: connection closed" what
           | k -> Buffer.add_subbytes buf chunk 0 k; go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* string-level checks keep this driver free of the serve library, so
   it exercises the CLI binary exactly as an external client would *)
let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let expect_ok what line =
  if not (contains line "\"ok\": true") then
    die "%s: expected ok response, got %s" what line

let expect_kind what kind line =
  if not (contains line (Printf.sprintf "\"kind\": %S" kind)) then
    die "%s: expected %S error, got %s" what kind line

let run_lines socket =
  let fd = connect socket in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         send_raw fd (line ^ "\n");
         print_endline (recv_line ~timeout:60.0 fd "lines client")
       end
     done
   with End_of_file -> ());
  Unix.close fd

(* N concurrent identical eval-grid clients; responses must be
   byte-identical (the router's coalescing demux is invisible) *)
let run_blast n addr model =
  if n < 1 then die "--blast wants N >= 1";
  let req =
    Printf.sprintf
      "{\"op\":\"eval-grid\",\"model\":%S,\"freqs\":[1e6,2e6,5e6,1e7]}\n"
      model
  in
  let results = Array.make n "" in
  let threads =
    Array.init n (fun i ->
        Thread.create
          (fun () ->
            let fd = connect addr in
            send_raw fd req;
            results.(i) <- recv_line ~timeout:30.0 fd
                (Printf.sprintf "blast client %d" i);
            Unix.close fd)
          ())
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      expect_ok (Printf.sprintf "blast client %d" i) r;
      if r <> results.(0) then
        die "blast client %d: response differs from client 0:\n%s\nvs\n%s" i
          r results.(0))
    results;
  Printf.printf "blast: %d/%d identical ok responses\n%!" n n

let () =
  let socket, model =
    match Sys.argv with
    | [| _; "--lines"; s |] -> run_lines s; exit 0
    | [| _; "--blast"; n; s; m |] ->
      (match int_of_string_opt n with
       | Some n -> run_blast n s m; exit 0
       | None -> die "--blast wants a numeric count, got %S" n)
    | [| _; s; m |] -> (s, m)
    | _ -> die "usage: smoke_clients [--lines | --blast N] ADDR [MODEL]"
  in
  (* client 1: stalls mid-frame *)
  let slow = connect socket in
  send_raw slow "{\"op\":\"eval-grid\",\"model\":\"";
  (* clients 2-4: well-formed traffic while the slow client hangs *)
  let fast = Array.init 3 (fun _ -> connect socket) in
  Array.iteri
    (fun i fd ->
      let what = Printf.sprintf "fast client %d" i in
      send_raw fd
        (Printf.sprintf "{\"op\":\"model-info\",\"model\":%S}\n" model);
      expect_ok what (recv_line fd what);
      Unix.close fd)
    fast;
  print_endline "fast clients: 3/3 ok";
  (* the stalled client must receive a typed timeout, per policy *)
  let l = recv_line ~timeout:15.0 slow "slow client" in
  expect_kind "slow client" "timeout" l;
  Unix.close slow;
  print_endline "slow client: timed out with typed response";
  (* stats must account for the stall; then drain the server *)
  let last = connect socket in
  send_raw last "{\"op\":\"stats\"}\n";
  let stats = recv_line last "stats" in
  expect_ok "stats" stats;
  if not (contains stats "\"supervisor\"") then
    die "stats: missing supervisor block: %s" stats;
  if contains stats "\"read_timeouts\": 0," then
    die "stats: slow-client timeout not recorded: %s" stats;
  send_raw last "{\"op\":\"shutdown\"}\n";
  expect_ok "shutdown" (recv_line last "shutdown");
  Unix.close last;
  print_endline "shutdown: acknowledged, server draining"
