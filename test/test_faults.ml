(* Fault-injection harness: every armed MFTI_FAULT site must produce
   either a typed [Mfti_error.t] or a degraded-but-valid model with the
   degradation recorded in the diagnostics — never an uncaught
   exception, never a hang.  Scenarios cover the parse, linear-algebra,
   recursion and domain-pool layers, plus property-style fuzzing of the
   parser and the fitting entry points. *)

open Linalg
open Statespace
open Mfti

let rng = Rng.create 5150

let test_spec =
  { Random_sys.order = 12; ports = 3; rank_d = 3; freq_lo = 100.;
    freq_hi = 1e5; damping = 0.08; seed = 42 }

let test_system = Random_sys.generate test_spec
let samples k = Sampling.sample_system test_system (Sampling.logspace 100. 1e5 k)

let finite_model model smps =
  let e = Metrics.err model smps in
  Float.is_finite e

(* ------------------------------------------------------------------ *)
(* Parse layer: touchstone.corrupt *)

let touchstone_text =
  Rf.Touchstone.print
    { Rf.Touchstone.parameter = Rf.Touchstone.S; z0 = 50.;
      samples = Sampling.sample_system test_system (Sampling.logspace 1e3 1e4 8) }

let test_touchstone_corrupt_strict () =
  Fault.with_spec "touchstone.corrupt" (fun () ->
      match Rf.Touchstone.parse_result ~nports:3 touchstone_text with
      | Error (Mfti_error.Parse { line = Some _; _ }) -> ()
      | Error e ->
        Alcotest.failf "expected Parse error, got %s" (Mfti_error.to_string e)
      | Ok _ -> Alcotest.fail "strict parse accepted injected garbage")

let test_touchstone_corrupt_lenient () =
  Fault.with_spec "touchstone.corrupt" (fun () ->
      let r, diag =
        Diag.with_collector (fun () ->
            Rf.Touchstone.parse_result ~policy:Rf.Touchstone.Lenient ~nports:3
              touchstone_text)
      in
      match r with
      | Ok t ->
        Alcotest.(check int) "all clean records recovered" 8
          (Array.length t.Rf.Touchstone.samples);
        Alcotest.(check bool) "recovery recorded" true
          (Diag.recorded diag "touchstone.lenient")
      | Error e ->
        Alcotest.failf "lenient parse failed: %s" (Mfti_error.to_string e))

(* ------------------------------------------------------------------ *)
(* Input layer: sample.corrupt *)

let test_sample_corrupt () =
  Fault.with_spec "sample.corrupt" (fun () ->
      (match Algorithm1.fit_result (samples 6) with
       | Error (Mfti_error.Validation _) -> ()
       | Error e ->
         Alcotest.failf "expected Validation, got %s" (Mfti_error.to_string e)
       | Ok _ -> Alcotest.fail "algorithm 1 fitted NaN-poisoned samples");
      match Algorithm2.fit_result (samples 12) with
      | Error (Mfti_error.Validation _) -> ()
      | Error e ->
        Alcotest.failf "expected Validation, got %s" (Mfti_error.to_string e)
      | Ok _ -> Alcotest.fail "algorithm 2 fitted NaN-poisoned samples")

(* ------------------------------------------------------------------ *)
(* Linear algebra: loewner.poison, svd.no_converge, lu.singular *)

let test_loewner_poison () =
  Fault.with_spec "loewner.poison" (fun () ->
      match Algorithm1.fit_result (samples 6) with
      | Error (Mfti_error.Numerical_breakdown _) -> ()
      | Error e ->
        Alcotest.failf "expected Numerical_breakdown, got %s"
          (Mfti_error.to_string e)
      | Ok _ -> Alcotest.fail "fit succeeded on a NaN-poisoned pencil")

let test_svd_no_converge_degrades () =
  Fault.with_spec "svd.no_converge" (fun () ->
      match Algorithm1.fit_result (samples 6) with
      | Error e ->
        Alcotest.failf "cascade must not fail the fit: %s"
          (Mfti_error.to_string e)
      | Ok r ->
        Alcotest.(check bool) "fallbacks recorded" true
          (Diag.fallback_count r.Algorithm1.diagnostics > 0);
        Alcotest.(check bool) "retries counted" true
          (r.Algorithm1.diagnostics.Diag.retries > 0);
        Alcotest.(check bool) "model still evaluable" true
          (finite_model r.Algorithm1.model (samples 6)))

let test_svd_gk_fallback () =
  Fault.with_spec "svd.no_converge" (fun () ->
      let a = Cmat.random rng 40 40 in
      let r, diag =
        Diag.with_collector (fun () ->
            Svd.decompose ~algorithm:Svd.Golub_kahan a)
      in
      Alcotest.(check bool) "GK fell back to Jacobi" true
        (Diag.recorded diag "svd.gk.jacobi_fallback");
      Alcotest.(check bool) "singular values finite" true
        (Array.for_all Float.is_finite r.Svd.sigma))

let test_rsvd_degrade_fallback () =
  (* Poisoning the randomized certificate must never fail the fit: the
     reduce stage records the fallback, reruns the exact cascade, and
     lands on exactly the rank the exact backend would have chosen. *)
  let smps = samples 24 in
  let options backend =
    { Algorithm1.default_options with svd = backend }
  in
  let exact = Algorithm1.fit ~options:(options Svd_reduce.Jacobi) smps in
  Fault.with_spec "svd.rsvd.degrade" (fun () ->
      match
        Algorithm1.fit_result ~options:(options Svd_reduce.Randomized) smps
      with
      | Error e ->
        Alcotest.failf "degraded certificate must not fail the fit: %s"
          (Mfti_error.to_string e)
      | Ok r ->
        Alcotest.(check bool) "fallback recorded" true
          (Diag.recorded r.Algorithm1.diagnostics "svd.rsvd.fallback");
        Alcotest.(check bool) "retries counted" true
          (r.Algorithm1.diagnostics.Diag.retries > 0);
        Alcotest.(check int) "rank matches the exact cascade"
          exact.Algorithm1.rank r.Algorithm1.rank;
        Alcotest.(check bool) "model still evaluable" true
          (finite_model r.Algorithm1.model smps))

let test_lu_singular_qr_fallback () =
  Fault.with_spec "lu.singular" (fun () ->
      let a = Cmat.random rng 12 12 and b = Cmat.random rng 12 3 in
      let x, diag = Diag.with_collector (fun () -> Lu.solve_robust a b) in
      Alcotest.(check bool) "QR fallback recorded" true
        (Diag.recorded diag "lu.qr_fallback");
      let resid = Cmat.norm_fro (Cmat.sub (Cmat.mul a x) b) in
      if not (resid /. Cmat.norm_fro b < 1e-8) then
        Alcotest.failf "QR fallback residual too large: %.3g" resid);
  (* model evaluation goes through solve_robust, so a whole fit + sweep
     must survive the injected pivot failure too *)
  Fault.with_spec "lu.singular" (fun () ->
      match Algorithm1.fit_result (samples 6) with
      | Error e ->
        Alcotest.failf "fit must survive LU breakdown: %s"
          (Mfti_error.to_string e)
      | Ok r ->
        Alcotest.(check bool) "model evaluable via QR path" true
          (finite_model r.Algorithm1.model (samples 6)))

(* ------------------------------------------------------------------ *)
(* Domain pool: pool.worker *)

let test_pool_worker () =
  (* sample generation also routes through the pool, so build the
     fixture before arming the fault *)
  let smps = samples 6 in
  Fault.with_spec "pool.worker" (fun () ->
      (match Parallel.parallel_for_result ~context:"faults" 100 (fun _ _ -> ())
       with
       | Error (Mfti_error.Fault_injected { site }) ->
         Alcotest.(check string) "site" "pool.worker" site
       | Error e ->
         Alcotest.failf "expected Fault_injected, got %s"
           (Mfti_error.to_string e)
       | Ok () -> Alcotest.fail "armed pool.worker completed normally");
      (* a fit routed through the pool surfaces the same typed error *)
      match Algorithm1.fit_result smps with
      | Error (Mfti_error.Fault_injected _) -> ()
      | Error e ->
        Alcotest.failf "expected Fault_injected, got %s"
          (Mfti_error.to_string e)
      | Ok _ -> Alcotest.fail "fit succeeded with a failing pool worker");
  (* the pool must be reusable after a worker fault: no deadlock, no
     poisoned state *)
  let sum = ref (Atomic.make 0) in
  Parallel.parallel_for 1000 (fun lo hi ->
      for i = lo to hi - 1 do
        ignore (Atomic.fetch_and_add !sum i)
      done);
  Alcotest.(check int) "pool healthy after fault" (1000 * 999 / 2)
    (Atomic.get !sum);
  match Algorithm1.fit_result smps with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "fit after pool fault failed: %s" (Mfti_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Recursion: algorithm2.diverge *)

let test_algorithm2_diverge () =
  Fault.with_spec "algorithm2.diverge" (fun () ->
      let options = { Algorithm2.default_options with batch = 1 } in
      match Algorithm2.fit_result ~options (samples 12) with
      | Error e ->
        Alcotest.failf "divergence guard must not fail the fit: %s"
          (Mfti_error.to_string e)
      | Ok r ->
        Alcotest.(check bool) "divergence guard recorded" true
          (Diag.recorded r.Algorithm2.diagnostics "algorithm2.divergence");
        Alcotest.(check bool) "best-so-far model evaluable" true
          (finite_model r.Algorithm2.model (samples 12)))

(* ------------------------------------------------------------------ *)
(* Diagnostics are populated on clean runs too *)

let test_diagnostics_clean_fit () =
  (match Algorithm1.fit_result (samples 8) with
   | Error e -> Alcotest.failf "clean fit failed: %s" (Mfti_error.to_string e)
   | Ok r ->
     let d = r.Algorithm1.diagnostics in
     Alcotest.(check bool) "wall time measured" true (d.Diag.wall_time > 0.);
     Alcotest.(check bool) "condition estimated" true
       (match d.Diag.condition with Some c -> Float.is_finite c && c >= 1. | None -> false));
  let noisy = Rf.Noise.add_relative ~seed:7 ~level:1e-4 (samples 16) in
  match Algorithm2.fit_result noisy with
  | Error e -> Alcotest.failf "noisy fit failed: %s" (Mfti_error.to_string e)
  | Ok r ->
    let d = r.Algorithm2.diagnostics in
    Alcotest.(check bool) "wall time measured" true (d.Diag.wall_time > 0.);
    Alcotest.(check bool) "condition estimated" true
      (d.Diag.condition <> None)

(* ------------------------------------------------------------------ *)
(* Property-style fuzzing: corrupted inputs through the full pipeline
   must yield a typed error or a valid model, never an exception. *)

let typed_or_valid pp f =
  match f () with
  | Ok m -> pp m
  | Error (_ : Mfti_error.t) -> true
  | exception e ->
    Printf.eprintf "uncaught exception: %s\n" (Printexc.to_string e);
    false

let fuzz_touchstone =
  QCheck.Test.make ~count:200 ~name:"fuzz: corrupted Touchstone text"
    QCheck.(triple small_nat small_nat printable_string)
    (fun (cut, pos, garbage) ->
      (* splice garbage into (a possibly truncated copy of) a valid
         file at an arbitrary offset *)
      let base = touchstone_text in
      let len = String.length base in
      let keep = len - (cut mod (len / 2)) in
      let base = String.sub base 0 keep in
      let pos = pos mod (String.length base + 1) in
      let text =
        String.sub base 0 pos ^ garbage
        ^ String.sub base pos (String.length base - pos)
      in
      typed_or_valid
        (fun (t : Rf.Touchstone.t) -> Array.length t.Rf.Touchstone.samples > 0)
        (fun () ->
          Rf.Touchstone.parse_result ~policy:Rf.Touchstone.Lenient ~nports:3
            text))

let fuzz_poisoned_fit =
  QCheck.Test.make ~count:50 ~name:"fuzz: NaN-poisoned samples through fits"
    QCheck.(triple (int_bound 5) (int_bound 2) (int_bound 2))
    (fun (k, i, j) ->
      let smps = Array.map (fun (s : Sampling.sample) ->
          { s with Sampling.s = Cmat.copy s.Sampling.s }) (samples 6)
      in
      Cmat.set smps.(k).Sampling.s i j (Cx.make Float.nan 0.);
      typed_or_valid
        (fun (r : Algorithm1.result) -> finite_model r.Algorithm1.model smps)
        (fun () -> Algorithm1.fit_result smps))

let fuzz_bad_frequencies =
  QCheck.Test.make ~count:50 ~name:"fuzz: corrupted frequency grids"
    QCheck.(pair (int_bound 5) (oneofl [ Float.nan; Float.infinity; 0.; -1. ]))
    (fun (k, bad) ->
      let smps = Array.map (fun (s : Sampling.sample) -> s) (samples 6) in
      smps.(k) <- { smps.(k) with Sampling.freq = bad };
      typed_or_valid
        (fun (r : Algorithm2.result) -> finite_model r.Algorithm2.model smps)
        (fun () -> Algorithm2.fit_result smps))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [ ( "parse",
        [ Alcotest.test_case "touchstone.corrupt strict -> typed error" `Quick
            test_touchstone_corrupt_strict;
          Alcotest.test_case "touchstone.corrupt lenient -> recovers" `Quick
            test_touchstone_corrupt_lenient ] );
      ( "input",
        [ Alcotest.test_case "sample.corrupt -> Validation" `Quick
            test_sample_corrupt ] );
      ( "linalg",
        [ Alcotest.test_case "loewner.poison -> Numerical_breakdown" `Quick
            test_loewner_poison;
          Alcotest.test_case "svd.no_converge -> degraded model" `Quick
            test_svd_no_converge_degrades;
          Alcotest.test_case "svd.no_converge -> GK falls back to Jacobi"
            `Quick test_svd_gk_fallback;
          Alcotest.test_case "svd.rsvd.degrade -> exact-cascade fallback"
            `Quick test_rsvd_degrade_fallback;
          Alcotest.test_case "lu.singular -> QR fallback" `Quick
            test_lu_singular_qr_fallback ] );
      ( "pool",
        [ Alcotest.test_case "pool.worker -> typed error, pool reusable"
            `Quick test_pool_worker ] );
      ( "recursion",
        [ Alcotest.test_case "algorithm2.diverge -> best-so-far model" `Quick
            test_algorithm2_diverge ] );
      ( "diagnostics",
        [ Alcotest.test_case "populated on clean and noisy fits" `Quick
            test_diagnostics_clean_fit ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest
          [ fuzz_touchstone; fuzz_poisoned_fit; fuzz_bad_frequencies ] ) ]
