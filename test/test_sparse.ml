(* Tests for the sparse subsystem: Scsr assembly/kernels, AMD/RCM
   orderings, Slu factorization, and their agreement with the dense
   reference path on random MNA matrices. *)

open Linalg
open Sparse
module Mna = Rf.Mna
module Pdn = Rf.Pdn
module Netlist = Rf.Netlist

let check_close ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.1g)" msg expected
      actual tol

let check_small ?(tol = 1e-9) msg x =
  if abs_float x > tol then
    Alcotest.failf "%s: |%.3g| exceeds tol %.1g" msg x tol

let cx re im = Cx.make re im

let random_sparse rng n density =
  let b = Scsr.create ~rows:n ~cols:n () in
  for i = 0 to n - 1 do
    (* guaranteed nonzero diagonal keeps the matrix comfortably regular *)
    Scsr.add b i i (Cx.add (cx 3. 0.) (Rng.complex_gaussian rng));
    for _ = 1 to density do
      Scsr.add b i (Rng.int rng n) (Rng.complex_gaussian rng)
    done
  done;
  Scsr.compress b

(* ------------------------------------------------------------------ *)
(* Scsr *)

let test_round_trip () =
  let rng = Rng.create 211 in
  let d = Cmat.random rng 7 5 in
  let sp = Scsr.of_dense d in
  Alcotest.(check bool) "dense round trip" true
    (Cmat.equal ~tol:0. (Scsr.to_dense sp) d);
  Alcotest.(check int) "nnz" 35 (Scsr.nnz sp)

let test_duplicates_accumulate () =
  let b = Scsr.create ~rows:2 ~cols:2 () in
  Scsr.add b 0 0 (cx 1. 0.);
  Scsr.add b 0 0 (cx 2. 0.);
  Scsr.add b 1 0 (cx 5. 0.);
  Alcotest.(check int) "pending triplets" 3 (Scsr.pending b);
  let sp = Scsr.compress b in
  Alcotest.(check int) "merged nnz" 2 (Scsr.nnz sp);
  check_close "accumulated" 3. (Cmat.get (Scsr.to_dense sp) 0 0).Cx.re

let test_mul_vec () =
  let rng = Rng.create 213 in
  let d = Cmat.random rng 6 6 in
  let sp = Scsr.of_dense d in
  let x = Cmat.random rng 6 1 in
  let y1 = Scsr.mul_vec sp x and y2 = Cmat.mul d x in
  check_small ~tol:1e-12 "mul_vec" (Cmat.norm_fro (Cmat.sub y1 y2))

let test_mul_mat_wide () =
  (* k >= 4 takes the column-split path; check it against dense *)
  let rng = Rng.create 229 in
  let sp = random_sparse rng 40 3 in
  let d = Scsr.to_dense sp in
  let x = Cmat.random rng 40 7 in
  let y1 = Scsr.mul_mat sp x and y2 = Cmat.mul d x in
  check_small ~tol:1e-11 "mul_mat"
    (Cmat.norm_fro (Cmat.sub y1 y2) /. (1. +. Cmat.norm_fro y2))

let test_scale_add () =
  let rng = Rng.create 215 in
  let a = Cmat.random rng 5 5 and b = Cmat.random rng 5 5 in
  let alpha = cx 2. 1. and beta = cx 0. (-3.) in
  let s = Scsr.scale_add ~alpha (Scsr.of_dense a) ~beta (Scsr.of_dense b) in
  let expected = Cmat.add (Cmat.scale alpha a) (Cmat.scale beta b) in
  check_small ~tol:1e-12 "alpha A + beta B"
    (Cmat.norm_fro (Cmat.sub (Scsr.to_dense s) expected))

let test_scale_add_pattern_union () =
  (* cancellation must not change the pattern: the frequency sweep
     computes the ordering on one (alpha, beta) pair and reuses it *)
  let b1 = Scsr.create ~rows:2 ~cols:2 () in
  Scsr.add b1 0 0 Cx.one;
  Scsr.add b1 0 1 Cx.one;
  let a = Scsr.compress b1 in
  let b2 = Scsr.create ~rows:2 ~cols:2 () in
  Scsr.add b2 0 1 Cx.one;
  Scsr.add b2 1 1 Cx.one;
  let b = Scsr.compress b2 in
  let s = Scsr.scale_add ~alpha:Cx.one a ~beta:(cx (-1.) 0.) b in
  (* the (0,1) entries cancel exactly but the slot must survive *)
  Alcotest.(check int) "union pattern" 3 (Scsr.nnz s)

let test_transpose () =
  let rng = Rng.create 231 in
  let sp = random_sparse rng 12 2 in
  let d = Scsr.to_dense sp in
  Alcotest.(check bool) "transpose" true
    (Cmat.equal ~tol:0. (Scsr.to_dense (Scsr.transpose sp)) (Cmat.transpose d))

let test_permute () =
  let rng = Rng.create 227 in
  let d = Cmat.random rng 6 6 in
  let sp = Scsr.of_dense d in
  let perm = [| 3; 1; 5; 0; 2; 4 |] in
  let pd = Scsr.to_dense (Scsr.permute sp ~perm) in
  for i = 0 to 5 do
    for jcol = 0 to 5 do
      check_small ~tol:0. "permuted entry"
        (Cx.abs (Cx.sub (Cmat.get pd i jcol) (Cmat.get d perm.(i) perm.(jcol))))
    done
  done;
  match Scsr.permute sp ~perm:[| 0; 0; 1; 2; 3; 4 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-permutation accepted"

(* ------------------------------------------------------------------ *)
(* Slu *)

let factorize_ok ?ordering ?perm sp =
  match Slu.factorize ?ordering ?perm sp with
  | Ok f -> f
  | Error e -> Alcotest.failf "factorize failed: %s" (Mfti_error.to_string e)

let test_lu_matches_dense () =
  let rng = Rng.create 217 in
  List.iter
    (fun (n, density) ->
      let sp = random_sparse rng n density in
      let d = Scsr.to_dense sp in
      let f = factorize_ok sp in
      let b = Cmat.random rng n 3 in
      let xs = Slu.solve f b in
      let xd = Lu.solve_mat d b in
      check_small ~tol:1e-7 "sparse = dense solve"
        (Cmat.norm_fro (Cmat.sub xs xd) /. (1. +. Cmat.norm_fro xd));
      let resid = Cmat.sub (Cmat.mul d xs) b in
      check_small ~tol:1e-8 "residual"
        (Cmat.norm_fro resid /. (1. +. Cmat.norm_fro b)))
    [ (5, 2); (20, 3); (60, 4); (120, 3) ]

let test_lu_permuted_identity () =
  (* a permutation matrix exercises the pivoting bookkeeping *)
  let n = 8 in
  let b = Scsr.create ~rows:n ~cols:n () in
  for i = 0 to n - 1 do
    Scsr.add b ((i + 3) mod n) i Cx.one
  done;
  let sp = Scsr.compress b in
  let f = factorize_ok sp in
  let rng = Rng.create 219 in
  let rhs = Cmat.random rng n 1 in
  let x = Slu.solve f rhs in
  let resid = Cmat.sub (Scsr.mul_vec sp x) rhs in
  check_small ~tol:1e-12 "permutation solve" (Cmat.norm_fro resid)

let test_lu_singular_typed () =
  let b = Scsr.create ~rows:3 ~cols:3 () in
  Scsr.add b 0 0 Cx.one;
  Scsr.add b 1 1 Cx.one;
  (* column 2 empty -> structurally singular *)
  let sp = Scsr.compress b in
  match Slu.factorize sp with
  | Error (Mfti_error.Numerical_breakdown { context; _ }) ->
    Alcotest.(check string) "context" "sparse.lu" context
  | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
  | Ok _ -> Alcotest.fail "singular accepted"

let test_lu_bad_perm_typed () =
  let rng = Rng.create 233 in
  let sp = random_sparse rng 6 2 in
  match Slu.factorize ~perm:[| 0; 0; 1; 2; 3; 4 |] sp with
  | Error (Mfti_error.Validation _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
  | Ok _ -> Alcotest.fail "bad permutation accepted"

let test_lu_fill_reported () =
  let rng = Rng.create 221 in
  let sp = random_sparse rng 30 2 in
  let f = factorize_ok sp in
  Alcotest.(check bool) "fill >= nnz" true (Slu.fill f >= Scsr.nnz sp)

(* ------------------------------------------------------------------ *)
(* Orderings *)

let grid_laplacian rng nx =
  let n = nx * nx in
  let b = Scsr.create ~rows:n ~cols:n () in
  let node i j = (i * nx) + j in
  for i = 0 to nx - 1 do
    for j = 0 to nx - 1 do
      Scsr.add b (node i j) (node i j)
        (Cx.add (cx 4. 0.) (Rng.complex_gaussian rng));
      if i + 1 < nx then begin
        Scsr.add b (node i j) (node (i + 1) j) (cx (-1.) 0.);
        Scsr.add b (node (i + 1) j) (node i j) (cx (-1.) 0.)
      end;
      if j + 1 < nx then begin
        Scsr.add b (node i j) (node i (j + 1)) (cx (-1.) 0.);
        Scsr.add b (node i (j + 1)) (node i j) (cx (-1.) 0.)
      end
    done
  done;
  Scsr.compress b

let check_permutation n perm =
  Alcotest.(check int) "perm length" n (Array.length perm);
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then Alcotest.fail "not a permutation";
      seen.(i) <- true)
    perm

let test_orderings_correct_and_helpful () =
  (* all orderings solve the same system; the fill-reducing ones should
     beat natural order convincingly on a 2-D grid *)
  let nx = 15 in
  let n = nx * nx in
  let rng = Rng.create 223 in
  let sp = grid_laplacian rng nx in
  check_permutation n (Ordering.amd sp);
  check_permutation n (Ordering.rcm sp);
  let rhs = Cmat.random rng n 1 in
  let f_nat = factorize_ok ~ordering:`Natural sp in
  let f_rcm = factorize_ok ~ordering:`Rcm sp in
  let f_amd = factorize_ok ~ordering:`Amd sp in
  let x_nat = Slu.solve f_nat rhs in
  List.iter
    (fun (name, f) ->
      let x = Slu.solve f rhs in
      check_small ~tol:1e-9
        (name ^ " same solution")
        (Cmat.norm_fro (Cmat.sub x_nat x) /. (1. +. Cmat.norm_fro x_nat));
      let resid = Cmat.sub (Scsr.mul_vec sp x) rhs in
      check_small ~tol:1e-9 (name ^ " residual") (Cmat.norm_fro resid))
    [ ("rcm", f_rcm); ("amd", f_amd) ];
  let fn = Slu.fill f_nat and fr = Slu.fill f_rcm and fa = Slu.fill f_amd in
  Alcotest.(check bool)
    (Printf.sprintf "amd fill beats natural (nat %d, rcm %d, amd %d)" fn fr fa)
    true
    (fa < fn);
  Alcotest.(check bool) "amd fill competitive with rcm" true (fa <= 2 * fr)

let test_amd_disconnected_and_dense_rows () =
  (* components, an isolated node, and a hub row: the quotient-graph
     bookkeeping has to survive all of them *)
  let n = 12 in
  let b = Scsr.create ~rows:n ~cols:n () in
  for i = 0 to n - 1 do
    Scsr.add b i i (cx 5. 0.)
  done;
  (* chain on 0..4, clique on 6..8, hub 9 touching everything but 5 *)
  for i = 0 to 3 do
    Scsr.add b i (i + 1) Cx.one;
    Scsr.add b (i + 1) i Cx.one
  done;
  for i = 6 to 8 do
    for j = 6 to 8 do
      if i <> j then Scsr.add b i j Cx.one
    done
  done;
  for j = 0 to n - 1 do
    if j <> 5 && j <> 9 then begin
      Scsr.add b 9 j Cx.one;
      Scsr.add b j 9 Cx.one
    end
  done;
  let sp = Scsr.compress b in
  check_permutation n (Ordering.amd sp);
  let f = factorize_ok ~ordering:`Amd sp in
  let rng = Rng.create 235 in
  let rhs = Cmat.random rng n 2 in
  let x = Slu.solve f rhs in
  let resid = Cmat.sub (Scsr.to_dense sp |> fun d -> Cmat.mul d x) rhs in
  check_small ~tol:1e-10 "residual" (Cmat.norm_fro resid)

let test_amd_random_matrices () =
  let rng = Rng.create 237 in
  for trial = 0 to 19 do
    let n = 2 + Rng.int rng 40 in
    let sp = random_sparse rng n (1 + (trial mod 4)) in
    check_permutation n (Ordering.amd sp)
  done

(* ------------------------------------------------------------------ *)
(* fault sites *)

let test_fault_singular_pivot () =
  let rng = Rng.create 239 in
  let sp = random_sparse rng 10 2 in
  Fault.with_spec "sparse.singular_pivot" (fun () ->
    match Slu.factorize sp with
    | Error (Mfti_error.Numerical_breakdown { context = "sparse.lu"; _ }) -> ()
    | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
    | Ok _ -> Alcotest.fail "armed fault did not fire")

let test_fault_ordering_degrade () =
  let rng = Rng.create 241 in
  let sp = grid_laplacian rng 8 in
  let n = Scsr.rows sp in
  Fault.with_spec "sparse.ordering_degrade" (fun () ->
    let (), d = Diag.with_collector (fun () ->
      let perm = Ordering.amd sp in
      Alcotest.(check bool) "degraded to natural" true
        (perm = Array.init n (fun i -> i)))
    in
    Alcotest.(check bool) "degrade recorded" true
      (Diag.recorded d "sparse.ordering_degrade"));
  (* factorization still succeeds through the degraded ordering *)
  Fault.with_spec "sparse.ordering_degrade" (fun () ->
    let f = factorize_ok ~ordering:`Amd sp in
    let rng = Rng.create 243 in
    let rhs = Cmat.random rng n 1 in
    let resid = Cmat.sub (Scsr.mul_vec sp (Slu.solve f rhs)) rhs in
    check_small ~tol:1e-9 "residual" (Cmat.norm_fro resid))

(* ------------------------------------------------------------------ *)
(* sparse-vs-dense agreement on random MNA matrices, across port
   counts and pool sizes (the issue's property test) *)

let random_mna rng ~ports =
  let nodes = 12 + Rng.int rng 10 in
  let c = ref (Mna.create ~nodes) in
  let nodef () = Rng.int rng nodes in
  for _ = 1 to 3 * nodes do
    let a = nodef () in
    let b = (a + 1 + Rng.int rng (nodes - 1)) mod nodes in
    let pick = Rng.int rng 4 in
    let v () = 0.1 +. Rng.uniform rng in
    c :=
      Mna.add !c
        (if pick = 0 then Mna.Resistor { a; b; ohms = v () }
         else if pick = 1 then Mna.Capacitor { a; b; farads = 1e-9 *. v () }
         else if pick = 2 then Mna.Inductor { a; b; henries = 1e-9 *. v () }
         else
           Mna.Rl_branch { a; b; ohms = v (); henries = 1e-9 *. v () })
  done;
  (* ground ties keep the MNA pencil regular at dc *)
  for k = 0 to nodes - 2 do
    if k mod 3 = 0 then
      c := Mna.add !c (Mna.Resistor { a = k + 1; b = 0; ohms = 50. })
  done;
  for p = 1 to ports do
    let _, c' = Mna.add_port !c ~plus:(1 + ((p * 3) mod (nodes - 1))) ~minus:0 in
    c := c'
  done;
  !c

let agreement_property ~pool () =
  let saved = Parallel.domain_count () in
  Parallel.set_domain_count pool;
  Fun.protect
    ~finally:(fun () -> Parallel.set_domain_count saved)
    (fun () ->
      let rng = Rng.create (1009 * pool) in
      List.iter
        (fun ports ->
          for _trial = 0 to 2 do
            let circuit = random_mna rng ~ports in
            let g, c, b, l = Mna.sparse_system circuit in
            let n = Mna.num_states circuit in
            Alcotest.(check int) "dims" n (Scsr.rows g);
            let gd = Scsr.to_dense g and cd = Scsr.to_dense c in
            (* matvec agreement to 1e-12 *)
            let x = Cmat.random rng n (1 + (ports mod 3)) in
            let ys = Scsr.mul_mat g x and yd = Cmat.mul gd x in
            check_small ~tol:1e-12 "matvec"
              (Cmat.norm_fro (Cmat.sub ys yd) /. (1. +. Cmat.norm_fro yd));
            (* solve agreement to 1e-12 at a generic frequency *)
            let s = Cx.jw (2. *. Float.pi *. 1e9) in
            let m = Scsr.scale_add ~alpha:s c ~beta:Cx.one g in
            let md = Cmat.add (Cmat.scale s cd) gd in
            let f = factorize_ok m in
            let xs = Slu.solve f b in
            let xd = Lu.solve_mat md b in
            check_small ~tol:1e-12 "solve"
              (Cmat.norm_fro (Cmat.sub xs xd) /. (1. +. Cmat.norm_fro xd));
            ignore l
          done)
        [ 1; 2; 4 ])

let test_agreement_pool1 () = agreement_property ~pool:1 ()
let test_agreement_pool4 () = agreement_property ~pool:4 ()

let test_matvec_pool_invariant () =
  (* bit-identical results at pool sizes 1 and 4 *)
  let rng = Rng.create 251 in
  let sp = random_sparse rng 200 4 in
  let x = Cmat.random rng 200 6 in
  let saved = Parallel.domain_count () in
  Fun.protect
    ~finally:(fun () -> Parallel.set_domain_count saved)
    (fun () ->
      Parallel.set_domain_count 1;
      let y1 = Scsr.mul_mat sp x in
      Parallel.set_domain_count 4;
      let y4 = Scsr.mul_mat sp x in
      Alcotest.(check bool) "bit identical" true
        (Cmat.equal ~tol:0. y1 y4))

(* ------------------------------------------------------------------ *)
(* netlist round trip *)

let test_netlist_round_trip () =
  let spec = { Pdn.default_spec with nx = 3; ny = 3; ports = 2; decaps = 1 } in
  let circuit = Pdn.build spec in
  let path = Filename.temp_file "mfti_netlist" ".ckt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netlist.save path circuit;
      let loaded =
        match Netlist.load path with
        | Ok c -> c
        | Error e -> Alcotest.failf "load: %s" (Mfti_error.to_string e)
      in
      Alcotest.(check int) "nodes" (Mna.num_nodes circuit)
        (Mna.num_nodes loaded);
      Alcotest.(check int) "ports" (Mna.num_ports circuit)
        (Mna.num_ports loaded);
      Alcotest.(check int) "states" (Mna.num_states circuit)
        (Mna.num_states loaded);
      let freqs = [| 1e6; 1e8; 1e9 |] in
      let a = Mna.impedance circuit freqs and b = Mna.impedance loaded freqs in
      Array.iteri
        (fun i sa ->
          check_small ~tol:1e-12 "same response"
            (Cmat.norm_fro
               (Cmat.sub sa.Statespace.Sampling.s
                  b.(i).Statespace.Sampling.s)))
        a)

let test_netlist_parse_errors () =
  let write content =
    let path = Filename.temp_file "mfti_netlist" ".ckt" in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  let expect_parse content =
    let path = write content in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        match Netlist.load path with
        | Error (Mfti_error.Parse { line; _ }) -> line
        | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
        | Ok _ -> Alcotest.fail "malformed netlist accepted")
  in
  (* element before nodes *)
  ignore (expect_parse "R 0 1 10\n");
  (* negative value, with the right line number *)
  Alcotest.(check (option int)) "line number" (Some 3)
    (expect_parse "nodes 3\nR 0 1 10\nC 1 2 -1e-12\nP 1 0\n");
  (* unknown directive *)
  ignore (expect_parse "nodes 2\nQ 0 1 3\n");
  (* no ports *)
  ignore (expect_parse "nodes 2\nR 0 1 10\n")

(* ------------------------------------------------------------------ *)
(* sparse vs dense MNA assembly agreement (migrated from test_rf) *)

let test_mna_sparse_matches_dense () =
  let spec = { Pdn.default_spec with nx = 4; ny = 4; ports = 3; decaps = 2 } in
  let circuit = Pdn.build spec in
  let freqs = [| 1e6; 1e8; 2e9 |] in
  let dense = Mna.impedance circuit freqs in
  let sparse = Mna.impedance_sparse circuit freqs in
  Array.iteri
    (fun i sd ->
      check_small ~tol:1e-9 "impedance agreement"
        (Cmat.norm_fro
           (Cmat.sub sd.Statespace.Sampling.s sparse.(i).Statespace.Sampling.s)
         /. (1. +. Cmat.norm_fro sd.Statespace.Sampling.s)))
    dense

(* ------------------------------------------------------------------ *)
(* Krylov pre-reduction *)

module Krylov = Mfti.Krylov
module Engine = Mfti.Engine

let small_grid_spec =
  { Pdn.default_spec with nx = 5; ny = 5; ports = 2; decaps = 3 }

let krylov_test_options =
  { Krylov.default_options with
    f_lo = 1e5;
    f_hi = 1e9;
    shifts = 6;
    batch = 2;
    max_rounds = 4;
    tol = 1e-9;
    holdout = 7 }

let test_krylov_reduce_accuracy () =
  let circuit = Pdn.build small_grid_spec in
  let sys = Krylov.of_mna circuit in
  let kr =
    match Krylov.reduce ~options:krylov_test_options sys with
    | Ok kr -> kr
    | Error e -> Alcotest.failf "reduce: %s" (Mfti_error.to_string e)
  in
  Alcotest.(check bool) "nontrivial order" true (kr.Krylov.order > 0);
  Alcotest.(check bool) "reduced below full" true
    (kr.Krylov.order <= Mna.num_states circuit);
  Alcotest.(check bool) "history recorded" true
    (Array.length kr.Krylov.history > 0);
  Alcotest.(check bool) "factorizations counted" true
    (kr.Krylov.factorizations >= krylov_test_options.Krylov.shifts);
  (* fresh frequencies: neither shifts nor hold-out probes *)
  let freqs = [| 3.3e5; 4.7e6; 8.9e7; 6.1e8 |] in
  let exact = Mna.impedance circuit freqs in
  Array.iter
    (fun sample ->
      let f = sample.Statespace.Sampling.freq in
      let approx = Engine.Model.eval_freq kr.Krylov.model f in
      let rel =
        Cmat.norm_fro (Cmat.sub approx sample.Statespace.Sampling.s)
        /. Cmat.norm_fro sample.Statespace.Sampling.s
      in
      check_small ~tol:1e-4
        (Printf.sprintf "reduced model matches at %.3g Hz" f)
        rel)
    exact

let test_krylov_vs_dense_mfti () =
  (* acceptance: krylov+mfti hold-out accuracy within 10x of a dense
     MFTI fit of the same small grid *)
  let z0 = 50. in
  let fit_freqs = Statespace.Sampling.logspace 1e5 1e9 64 in
  let holdout_freqs =
    Array.init 16 (fun i -> 1.23e5 *. (1.71 ** float_of_int i))
  in
  let dense_fit = Pdn.scattering small_grid_spec ~z0 fit_freqs in
  let holdout = Pdn.scattering small_grid_spec ~z0 holdout_freqs in
  let dense_model =
    match Engine.fit_result ~strategy:Engine.Direct dense_fit with
    | Ok fit -> Engine.Model.of_fit fit
    | Error e -> Alcotest.failf "dense fit: %s" (Mfti_error.to_string e)
  in
  let options = { krylov_test_options with z0 = Some z0 } in
  let krylov_model, _ =
    match Krylov.fit_mfti ~options (Krylov.of_mna (Pdn.build small_grid_spec))
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "krylov+mfti: %s" (Mfti_error.to_string e)
  in
  let dense_err = Engine.Model.err dense_model holdout in
  let krylov_err = Engine.Model.err krylov_model holdout in
  if krylov_err > Float.max (10. *. dense_err) 1e-8 then
    Alcotest.failf "krylov+mfti err %.3g exceeds 10x dense err %.3g"
      krylov_err dense_err

let test_krylov_validation () =
  let sys = Krylov.of_mna (Pdn.build small_grid_spec) in
  let expect_validation name r =
    match r with
    | Error (Mfti_error.Validation _) -> ()
    | Error e ->
      Alcotest.failf "%s: wrong error %s" name (Mfti_error.to_string e)
    | Ok _ -> Alcotest.failf "%s: unexpectedly succeeded" name
  in
  expect_validation "inverted band"
    (Krylov.reduce
       ~options:{ Krylov.default_options with f_lo = 1e9; f_hi = 1e5 }
       sys);
  expect_validation "too few shifts"
    (Krylov.reduce ~options:{ Krylov.default_options with shifts = 1 } sys);
  expect_validation "bad z0"
    (Krylov.reduce ~options:{ Krylov.default_options with z0 = Some 0. } sys);
  expect_validation "mismatched ports"
    (Krylov.reduce { sys with b = Cmat.zeros 3 2 })

let () =
  Alcotest.run "sparse"
    [ ("scsr",
       [ Alcotest.test_case "round trip" `Quick test_round_trip;
         Alcotest.test_case "duplicates" `Quick test_duplicates_accumulate;
         Alcotest.test_case "mul_vec" `Quick test_mul_vec;
         Alcotest.test_case "mul_mat wide" `Quick test_mul_mat_wide;
         Alcotest.test_case "scale_add" `Quick test_scale_add;
         Alcotest.test_case "scale_add pattern union" `Quick
           test_scale_add_pattern_union;
         Alcotest.test_case "transpose" `Quick test_transpose;
         Alcotest.test_case "permute" `Quick test_permute ]);
      ("slu",
       [ Alcotest.test_case "matches dense" `Quick test_lu_matches_dense;
         Alcotest.test_case "permutation matrix" `Quick
           test_lu_permuted_identity;
         Alcotest.test_case "singular typed" `Quick test_lu_singular_typed;
         Alcotest.test_case "bad perm typed" `Quick test_lu_bad_perm_typed;
         Alcotest.test_case "fill reported" `Quick test_lu_fill_reported ]);
      ("ordering",
       [ Alcotest.test_case "correct and helpful" `Quick
           test_orderings_correct_and_helpful;
         Alcotest.test_case "amd odd graphs" `Quick
           test_amd_disconnected_and_dense_rows;
         Alcotest.test_case "amd random" `Quick test_amd_random_matrices ]);
      ("faults",
       [ Alcotest.test_case "singular pivot" `Quick test_fault_singular_pivot;
         Alcotest.test_case "ordering degrade" `Quick
           test_fault_ordering_degrade ]);
      ("agreement",
       [ Alcotest.test_case "mna pool 1" `Quick test_agreement_pool1;
         Alcotest.test_case "mna pool 4" `Quick test_agreement_pool4;
         Alcotest.test_case "pool invariant" `Quick test_matvec_pool_invariant;
         Alcotest.test_case "mna sparse = dense" `Quick
           test_mna_sparse_matches_dense ]);
      ("netlist",
       [ Alcotest.test_case "round trip" `Quick test_netlist_round_trip;
         Alcotest.test_case "parse errors" `Quick test_netlist_parse_errors ]);
      ("krylov",
       [ Alcotest.test_case "reduce accuracy" `Quick
           test_krylov_reduce_accuracy;
         Alcotest.test_case "within 10x of dense mfti" `Quick
           test_krylov_vs_dense_mfti;
         Alcotest.test_case "validation" `Quick test_krylov_validation ])
    ]
