(* End-to-end smoke tests for the mfti command-line tool.

   The test binary runs in _build/default/test/, and the dune rule
   declares the CLI as a dependency, so it sits at ../bin/mfti_cli.exe. *)

let cli =
  (* resolve relative to this test binary, so it works under both
     `dune runtest` (cwd = _build/default/test) and `dune exec` *)
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "mfti_cli.exe"))

let run args =
  let out = Filename.temp_file "mfti_cli" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" (Filename.quote cli) args out in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains what needle text =
  if not (contains ~needle text) then
    Alcotest.failf "%s: expected %S in output:\n%s" what needle text

let workload = Filename.concat (Filename.get_temp_dir_name ()) "mfti_cli_test.s2p"

let test_gen () =
  let code, text =
    run (Printf.sprintf "gen ladder --points 40 --f-hi 2e10 --out %s" workload)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "gen" "wrote 40 samples, 2 ports" text;
  Alcotest.(check bool) "file exists" true (Sys.file_exists workload)

let test_info () =
  let code, text = run (Printf.sprintf "info %s" workload) in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "info" "40 samples, 2x2 matrices" text;
  check_contains "info" "passive" text

let test_fit () =
  let code, text = run (Printf.sprintf "fit %s" workload) in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "fit" "MFTI: order" text;
  check_contains "fit" "stable: true" text;
  check_contains "fit" "passivity:" text

let test_fit_save_and_plot () =
  let tmp = Filename.get_temp_dir_name () in
  let model = Filename.concat tmp "mfti_cli_model.txt" in
  let plot = Filename.concat tmp "mfti_cli_err.svg" in
  let code, text =
    run (Printf.sprintf "fit %s --symmetrize --save-model %s --plot %s"
           workload model plot)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "save" "saved model" text;
  check_contains "plot" "wrote error plot" text;
  Alcotest.(check bool) "model file" true (Sys.file_exists model);
  Alcotest.(check bool) "plot file" true (Sys.file_exists plot);
  Sys.remove model;
  Sys.remove plot

let test_fit_vf () =
  let code, text = run (Printf.sprintf "fit %s --algorithm vf --poles 21" workload) in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "vf fit" "VF: order 21" text

let test_compare () =
  let code, text = run (Printf.sprintf "compare %s" workload) in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "compare" "VFTI" text;
  check_contains "compare" "MFTI-1 (full)" text;
  check_contains "compare" "VF (n=50)" text

let test_bad_input () =
  let code, _ = run "fit /nonexistent.s2p" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  let code, _ = run "gen ladder --out /tmp/wrong_ports.s7p" in
  Alcotest.(check bool) "port mismatch rejected" true (code <> 0)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* a 2-port body with one garbage line spliced into the middle *)
let dirty_body =
  "# HZ S RI R 50\n\
   1e6 0.1 0 0.9 0 0.9 0 0.1 0\n\
   not a data line at all\n\
   2e6 0.2 0 0.8 0 0.8 0 0.2 0\n\
   3e6 0.3 0 0.7 0 0.7 0 0.3 0\n\
   4e6 0.4 0 0.6 0 0.6 0 0.4 0\n"

let test_exit_codes () =
  let dirty = Filename.concat (Filename.get_temp_dir_name ()) "mfti_dirty.s2p" in
  write_file dirty dirty_body;
  (* strict (default): corrupt data is a parse error -> sysexits EX_DATAERR *)
  let code, text = run (Printf.sprintf "fit %s" dirty) in
  Alcotest.(check int) "corrupt file exits 65" 65 code;
  check_contains "parse diagnostic" "mfti:" text;
  let code, _ = run (Printf.sprintf "info %s" dirty) in
  Alcotest.(check int) "info exits 65 too" 65 code;
  Sys.remove dirty

let test_lenient_recovers () =
  let dirty = Filename.concat (Filename.get_temp_dir_name ()) "mfti_dirty2.s2p" in
  write_file dirty dirty_body;
  let code, text = run (Printf.sprintf "fit --lenient %s" dirty) in
  Alcotest.(check int) "lenient fit succeeds" 0 code;
  check_contains "recovery reported" "input recovery" text;
  check_contains "fit ran" "MFTI: order" text;
  check_contains "diagnostics line" "diagnostics:" text;
  Sys.remove dirty

(* pack -> inspect -> serve: the full artifact lifecycle over the CLI *)
let artifact_path =
  Filename.concat (Filename.get_temp_dir_name ()) "mfti_cli_model.mfti"

let test_pack () =
  let code, text =
    run (Printf.sprintf "pack %s --out %s --name ladder" workload artifact_path)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "pack" "packed ladder ->" text;
  check_contains "pack" "2x2 ports" text;
  Alcotest.(check bool) "artifact exists" true (Sys.file_exists artifact_path)

let test_inspect () =
  let code, text = run (Printf.sprintf "inspect %s" artifact_path) in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "inspect" "format v2, checksum ok" text;
  check_contains "inspect" "name: ladder" text;
  check_contains "inspect" "certificate: none (uncertified)" text;
  check_contains "inspect" "2 outputs x 2 inputs" text;
  check_contains "inspect" "compiled: pole-residue" text

let test_inspect_corrupt () =
  let bad = Filename.concat (Filename.get_temp_dir_name ()) "mfti_bad.mfti" in
  let ic = open_in_bin artifact_path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 1));
  let oc = open_out_bin bad in
  output_bytes oc b;
  close_out oc;
  let code, text = run (Printf.sprintf "inspect %s" bad) in
  Alcotest.(check int) "corrupt artifact exits 65" 65 code;
  check_contains "diagnostic" "checksum" text;
  Sys.remove bad

let test_serve_stdio () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "mfti_cli_root" in
  (try Unix.mkdir root 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let model = Filename.concat root "ladder.mfti" in
  let code, _ = run (Printf.sprintf "pack %s --out %s" workload model) in
  Alcotest.(check int) "pack for serving" 0 code;
  let requests =
    Filename.concat (Filename.get_temp_dir_name ()) "mfti_cli_requests"
  in
  write_file requests
    "{\"op\":\"list-models\"}\n\
     {\"op\":\"eval-grid\",\"model\":\"ladder\",\"freqs\":[1e6,1e9]}\n\
     {\"op\":\"model-info\",\"model\":\"missing\"}\n\
     {\"op\":\"shutdown\"}\n";
  let out = Filename.temp_file "mfti_cli_serve" ".out" in
  let cmd =
    Printf.sprintf "%s serve --root %s < %s > %s 2>/dev/null"
      (Filename.quote cli) (Filename.quote root) (Filename.quote requests) out
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  Sys.remove requests;
  Alcotest.(check int) "serve exit code" 0 code;
  check_contains "list" "\"id\": \"ladder\"" text;
  check_contains "eval" "\"op\": \"eval-grid\", \"model\": \"ladder\", \"points\": 2"
    text;
  check_contains "typed error" "\"ok\": false" text;
  check_contains "typed error kind" "\"kind\": \"validation\"" text;
  check_contains "shutdown ack" "\"op\": \"shutdown\"" text

(* gen --netlist -> engine --strategy krylov: the sparse pipeline *)
let netlist_path =
  Filename.concat (Filename.get_temp_dir_name ()) "mfti_cli_grid.ckt"

let test_gen_netlist () =
  let code, text =
    run (Printf.sprintf "gen pdn --grid 10x10 --ports 2 --netlist %s"
           netlist_path)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "netlist header" "wrote netlist: 10" text;
  check_contains "ports" "2 ports" text;
  Alcotest.(check bool) "netlist exists" true (Sys.file_exists netlist_path)

let test_gen_refusals () =
  let expect_64 what args =
    let code, text = run args in
    Alcotest.(check int) (what ^ " exits 64") 64 code;
    check_contains what "invalid input (gen)" text
  in
  expect_64 "zero grid side" "gen pdn --grid 0x5 --netlist /tmp/x.ckt";
  expect_64 "garbage grid" "gen pdn --grid 4by4 --netlist /tmp/x.ckt";
  expect_64 "zero node budget" "gen pdn --nodes 0 --netlist /tmp/x.ckt";
  expect_64 "no outputs" "gen pdn";
  expect_64 "ladder has no plane" "gen ladder --netlist /tmp/x.ckt";
  expect_64 "overfull plane"
    "gen pdn --grid 3x3 --ports 9 --netlist /tmp/x.ckt"

let test_engine_krylov () =
  let code, text =
    run
      (Printf.sprintf
         "engine %s --strategy krylov --f-lo 1e6 --f-hi 1e9 --shifts 4 \
          --krylov-order 96"
         netlist_path)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "netlist echoed" "netlist: 10" text;
  check_contains "reduction ran" "krylov: order" text;
  check_contains "adaptive rounds" "round 1: hold-out err" text;
  check_contains "model line" "retained order:" text

let test_engine_krylov_mfti_pack () =
  let packed =
    Filename.concat (Filename.get_temp_dir_name ()) "mfti_cli_grid.mfti"
  in
  let code, text =
    run
      (Printf.sprintf
         "engine %s --strategy krylov+mfti --f-lo 1e6 --f-hi 1e9 \
          --shifts 4 --krylov-order 96 --certify --pack %s"
         netlist_path packed)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "mfti stage ran" "stage reduce" text;
  check_contains "certified" "certificate:" text;
  check_contains "packed" "packed mfti_cli_grid ->" text;
  Alcotest.(check bool) "artifact exists" true (Sys.file_exists packed);
  let code, text = run (Printf.sprintf "inspect %s" packed) in
  Alcotest.(check int) "inspect exit code" 0 code;
  check_contains "checksum" "checksum ok" text;
  Sys.remove packed

let test_engine_strategy_mismatch () =
  let code, text = run (Printf.sprintf "engine %s" netlist_path) in
  Alcotest.(check int) "dense on netlist exits 64" 64 code;
  check_contains "mismatch" "needs --strategy krylov" text;
  let code, text =
    run (Printf.sprintf "engine %s --strategy krylov" workload)
  in
  Alcotest.(check int) "krylov on touchstone exits 64" 64 code;
  check_contains "mismatch" "not a" text

let test_diagnostics_reported () =
  let code, text = run (Printf.sprintf "fit %s" workload) in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "diagnostics on stderr" "diagnostics:" text

let () =
  Alcotest.run "cli"
    [ ("mfti_cli",
       [ Alcotest.test_case "gen" `Quick test_gen;
         Alcotest.test_case "info" `Quick test_info;
         Alcotest.test_case "fit" `Quick test_fit;
         Alcotest.test_case "fit vf" `Quick test_fit_vf;
         Alcotest.test_case "fit save/plot" `Quick test_fit_save_and_plot;
         Alcotest.test_case "compare" `Quick test_compare;
         Alcotest.test_case "bad input" `Quick test_bad_input;
         Alcotest.test_case "exit codes" `Quick test_exit_codes;
         Alcotest.test_case "lenient recovery" `Quick test_lenient_recovers;
         Alcotest.test_case "pack" `Quick test_pack;
         Alcotest.test_case "inspect" `Quick test_inspect;
         Alcotest.test_case "inspect corrupt" `Quick test_inspect_corrupt;
         Alcotest.test_case "serve over stdio" `Quick test_serve_stdio;
         Alcotest.test_case "gen netlist" `Quick test_gen_netlist;
         Alcotest.test_case "gen refusals" `Quick test_gen_refusals;
         Alcotest.test_case "engine krylov" `Quick test_engine_krylov;
         Alcotest.test_case "engine krylov+mfti pack" `Quick
           test_engine_krylov_mfti_pack;
         Alcotest.test_case "engine strategy mismatch" `Quick
           test_engine_strategy_mismatch;
         Alcotest.test_case "diagnostics reported" `Quick
           test_diagnostics_reported ]) ]
