(* Tests for the MFTI core: tangential data, Loewner pencil,
   realification, SVD reduction, Algorithm 1/2, VFTI baseline. *)

open Linalg
open Statespace
open Mfti

let check_small ?(tol = 1e-9) msg x =
  if abs_float x > tol then Alcotest.failf "%s: |%.3g| exceeds tol %.1g" msg x tol

(* A modest test system: order 12, 3 ports, full-rank D. *)
let test_spec =
  { Random_sys.order = 12; ports = 3; rank_d = 3; freq_lo = 100.;
    freq_hi = 1e5; damping = 0.08; seed = 42 }

let test_system = Random_sys.generate test_spec

(* order + rank_d = 15; with 3 ports Theorem 3.5 says 6 samples suffice. *)
let sample_freqs k = Sampling.logspace 100. 1e5 k
let samples k = Sampling.sample_system test_system (sample_freqs k)

(* validation grid deliberately off the sampling grid *)
let validation_samples =
  Sampling.sample_system test_system (Sampling.logspace 150. 0.9e5 41)

(* ------------------------------------------------------------------ *)
(* Tangential *)

let test_tangential_structure () =
  let data = Tangential.build (samples 6) in
  Alcotest.(check int) "right blocks" 6 (Array.length data.Tangential.right);
  Alcotest.(check int) "left blocks" 6 (Array.length data.Tangential.left);
  Alcotest.(check int) "right width" 18 (Tangential.right_width data);
  Alcotest.(check int) "left width" 18 (Tangential.left_width data);
  (* conjugate pairs adjacent *)
  for g = 0 to 2 do
    let b0 = data.Tangential.right.(2 * g) in
    let b1 = data.Tangential.right.((2 * g) + 1) in
    check_small "lambda conjugate"
      (Cx.abs (Cx.sub b1.Tangential.lambda (Cx.conj b0.Tangential.lambda)));
    Alcotest.(check bool) "shared direction" true
      (Cmat.equal ~tol:0. b0.Tangential.r b1.Tangential.r);
    Alcotest.(check bool) "conjugated data" true
      (Cmat.equal ~tol:0. b1.Tangential.w (Cmat.conj b0.Tangential.w))
  done

let test_tangential_data_consistency () =
  (* W = S R and V = L S at the matching frequencies *)
  let smps = samples 6 in
  let data = Tangential.build smps in
  for g = 0 to 2 do
    let rb = data.Tangential.right.(2 * g) in
    let s = smps.(2 * g).Sampling.s in
    check_small "W = S R"
      (Cmat.norm_fro (Cmat.sub rb.Tangential.w (Cmat.mul s rb.Tangential.r)));
    let lb = data.Tangential.left.(2 * g) in
    let s' = smps.((2 * g) + 1).Sampling.s in
    check_small "V = L S"
      (Cmat.norm_fro (Cmat.sub lb.Tangential.v (Cmat.mul lb.Tangential.l s')))
  done

let test_tangential_validation () =
  (match Tangential.build (samples 5) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "odd sample count accepted");
  (match Tangential.build [| (samples 2).(0) |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "single sample accepted");
  (match Tangential.build ~weight:(Tangential.Uniform 7) (samples 6) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "oversized width accepted");
  (match Tangential.build ~weight:(Tangential.Per_sample [| 1; 2 |]) (samples 6) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "wrong weight length accepted");
  let dup = [| (samples 2).(0); (samples 2).(0) |] in
  match Tangential.build dup with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate frequency accepted"

let test_trim_even () =
  let s = samples 6 in
  let odd = Array.sub s 0 5 in
  Alcotest.(check int) "trimmed" 4 (Array.length (Tangential.trim_even odd));
  Alcotest.(check int) "even untouched" 6 (Array.length (Tangential.trim_even s))

let test_tangential_weights () =
  let data = Tangential.build ~weight:(Tangential.Uniform 2) (samples 6) in
  Alcotest.(check int) "uniform width" 12 (Tangential.right_width data);
  let data =
    Tangential.build ~weight:(Tangential.Per_sample [| 1; 2; 3; 1; 2; 3 |]) (samples 6)
  in
  (* samples 0,2,4 are right: widths 1,3,2 -> with conjugates: 12 *)
  Alcotest.(check int) "per-sample width" 12 (Tangential.right_width data);
  Alcotest.(check (list int)) "right sizes"
    [ 1; 1; 3; 3; 2; 2 ]
    (Array.to_list (Tangential.right_sizes data))

let test_vector_build () =
  let data = Tangential.build_vector (samples 8) in
  Alcotest.(check int) "vector width" 8 (Tangential.right_width data);
  Array.iter
    (fun b -> Alcotest.(check int) "width 1" 1 (Cmat.cols b.Tangential.r))
    data.Tangential.right

(* ------------------------------------------------------------------ *)
(* Loewner *)

let test_loewner_shape () =
  let data = Tangential.build (samples 6) in
  let p = Loewner.build data in
  Alcotest.(check (pair int int)) "LL dims" (18, 18) (Cmat.dims p.Loewner.ll);
  Alcotest.(check (pair int int)) "W dims" (3, 18) (Cmat.dims p.Loewner.w);
  Alcotest.(check (pair int int)) "V dims" (18, 3) (Cmat.dims p.Loewner.v)

let test_loewner_sylvester () =
  let data = Tangential.build (samples 6) in
  let p = Loewner.build data in
  let r1, r2 = Loewner.sylvester_residuals p in
  let scale = Cmat.norm_fro p.Loewner.sll +. 1. in
  check_small ~tol:1e-10 "Sylvester (13) for LL" (r1 /. scale);
  check_small ~tol:1e-10 "Sylvester (13) for sLL" (r2 /. scale)

let test_loewner_matches_sylvester_solve () =
  let data = Tangential.build ~weight:(Tangential.Uniform 2) (samples 6) in
  let p = Loewner.build data in
  let ll2 = Loewner.ll_via_sylvester p in
  check_small ~tol:1e-10 "divided differences = Sylvester solve"
    (Cmat.norm_fro (Cmat.sub ll2 p.Loewner.ll) /. (1. +. Cmat.norm_fro p.Loewner.ll))

let test_loewner_rank_bound () =
  (* Lemma 3.3: rank(x LL - sLL) <= order + rank D = 15 even though the
     pencil is 18x18. *)
  let data = Tangential.build (samples 6) in
  let p = Loewner.build data in
  let _, _, pencil_sigma = Svd_reduce.fig1_singular_values p in
  Alcotest.(check int) "pencil size" 18 (Array.length pencil_sigma);
  let rank =
    Array.fold_left (fun acc s -> if s > 1e-8 *. pencil_sigma.(0) then acc + 1 else acc)
      0 pencil_sigma
  in
  Alcotest.(check int) "rank = order + rank D" 15 rank

let test_loewner_ll_rank () =
  (* empirical observation in the paper: rank(LL) ~ order *)
  let data = Tangential.build (samples 6) in
  let p = Loewner.build data in
  let ll_sigma, _, _ = Svd_reduce.fig1_singular_values p in
  let rank =
    Array.fold_left (fun acc s -> if s > 1e-8 *. ll_sigma.(0) then acc + 1 else acc)
      0 ll_sigma
  in
  Alcotest.(check int) "rank LL = order" 12 rank

(* ------------------------------------------------------------------ *)
(* Realify *)

let test_transform_unitary () =
  let t = Realify.transform_matrix [| 2; 2; 3; 3 |] in
  Alcotest.(check (pair int int)) "dims" (10, 10) (Cmat.dims t);
  let id = Cmat.mul_cn t t in
  check_small ~tol:1e-12 "unitary" (Cmat.norm_fro (Cmat.sub id (Cmat.identity 10)))

let test_transform_validation () =
  (match Realify.transform_matrix [| 2; 3 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unequal pair accepted");
  match Realify.transform_matrix [| 2; 2; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "odd block count accepted"

let test_realify_matches_dense_transform () =
  (* the O(K^2) pairwise application must equal the dense T products *)
  let data = Tangential.build ~weight:(Tangential.Per_sample [| 2; 1; 3; 2; 1; 3 |])
      (samples 6)
  in
  let p = Loewner.build data in
  let fast = Realify.apply p in
  let tr = Realify.transform_matrix p.Loewner.right_sizes in
  let tl = Realify.transform_matrix p.Loewner.left_sizes in
  let dense = Cmat.mul (Cmat.ctranspose tl) (Cmat.mul p.Loewner.ll tr) in
  check_small ~tol:1e-10 "pairwise = dense (LL)"
    (Cmat.norm_fro (Cmat.sub fast.Loewner.ll dense)
     /. (1. +. Cmat.norm_fro dense));
  let dense_w = Cmat.mul p.Loewner.w tr in
  check_small ~tol:1e-10 "pairwise = dense (W)"
    (Cmat.norm_fro (Cmat.sub fast.Loewner.w dense_w)
     /. (1. +. Cmat.norm_fro dense_w));
  let dense_v = Cmat.mul (Cmat.ctranspose tl) p.Loewner.v in
  check_small ~tol:1e-10 "pairwise = dense (V)"
    (Cmat.norm_fro (Cmat.sub fast.Loewner.v dense_v)
     /. (1. +. Cmat.norm_fro dense_v))

let test_realify_produces_real () =
  let data = Tangential.build (samples 6) in
  let p = Realify.apply (Loewner.build data) in
  check_small ~tol:1e-12 "imaginary residue" (Realify.imaginary_residue p)

let test_realify_preserves_singular_values () =
  (* T is unitary, so the pencil's singular values are invariant *)
  let data = Tangential.build (samples 6) in
  let p = Loewner.build data in
  let pr = Realify.apply p in
  let s1 = Svd.values p.Loewner.ll and s2 = Svd.values pr.Loewner.ll in
  Array.iteri
    (fun i s ->
      check_small ~tol:1e-9 "invariant sigma" ((s -. s2.(i)) /. (1. +. s)))
    s1

(* ------------------------------------------------------------------ *)
(* Algorithm 1: recovery *)

let fit_default k = Algorithm1.fit (samples k)

let test_minimal_samples_estimate () =
  Alcotest.(check int) "theorem 3.5"
    6 (Svd_reduce.minimal_samples ~order:12 ~rank_d:3 ~inputs:3 ~outputs:3);
  Alcotest.(check int) "example 1 numbers"
    6 (Svd_reduce.minimal_samples ~order:150 ~rank_d:30 ~inputs:30 ~outputs:30)

let test_exact_recovery () =
  let result = fit_default 6 in
  Alcotest.(check int) "detected order" 15 result.Algorithm1.rank;
  (* interpolation conditions (10) *)
  let resid = Tangential.max_residual result.Algorithm1.model result.Algorithm1.data in
  check_small ~tol:1e-6 "tangential residual" resid;
  (* true recovery: error off the sampling grid *)
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  check_small ~tol:1e-7 "validation ERR" verr

let test_full_matrix_interpolation () =
  (* Lemma 3.1: with t = m = p and full-rank directions the whole matrix
     is matched at every sample frequency. *)
  let smps = samples 6 in
  let result = Algorithm1.fit smps in
  Array.iter
    (fun smp ->
      let h = Descriptor.eval_freq result.Algorithm1.model smp.Sampling.freq in
      check_small ~tol:1e-6 "H(j2pifi) = S(fi)"
        (Cmat.norm_fro (Cmat.sub h smp.Sampling.s)
         /. (1. +. Cmat.norm_fro smp.Sampling.s)))
    smps

let test_real_model () =
  let result = fit_default 6 in
  Alcotest.(check bool) "model real" true
    (Descriptor.is_real ~tol:1e-8 result.Algorithm1.model)

let test_pencil_mode_recovery () =
  let options =
    { Algorithm1.default_options with
      real_model = false;
      mode = Svd_reduce.Pencil None }
  in
  let result = Algorithm1.fit ~options (samples 6) in
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  check_small ~tol:1e-7 "pencil-mode validation ERR" verr

let test_undersampled_fails () =
  (* 4 samples -> K = 12 < 15: recovery impossible *)
  let result = fit_default 4 in
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  Alcotest.(check bool) "undersampled is inaccurate" true (verr > 1e-3)

let test_uniform_weight_recovery () =
  (* t = 2: 16 samples give K = 32 >= 15 *)
  let options =
    { Algorithm1.default_options with weight = Tangential.Uniform 2 }
  in
  let result = Algorithm1.fit ~options (samples 16) in
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  check_small ~tol:1e-6 "t=2 validation ERR" verr

let test_identity_directions_recovery () =
  let options =
    { Algorithm1.default_options with directions = Direction.Identity_cycle }
  in
  let result = Algorithm1.fit ~options (samples 6) in
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  check_small ~tol:1e-7 "identity directions" verr

let test_determinism () =
  let r1 = fit_default 6 and r2 = fit_default 6 in
  Alcotest.(check bool) "same sigma" true
    (r1.Algorithm1.sigma = r2.Algorithm1.sigma);
  Alcotest.(check bool) "same E" true
    (Cmat.equal ~tol:0. r1.Algorithm1.model.Descriptor.e
       r2.Algorithm1.model.Descriptor.e)

let test_fixed_rank_rule () =
  let options =
    { Algorithm1.default_options with rank_rule = Svd_reduce.Fixed 10 }
  in
  let result = Algorithm1.fit ~options (samples 6) in
  Alcotest.(check int) "clipped order" 10 result.Algorithm1.rank;
  Alcotest.(check int) "model order" 10
    (Descriptor.order result.Algorithm1.model)

let test_per_sample_weights_recovery () =
  (* uneven widths produce a non-square Loewner pencil; the projection
     must still recover the system when enough columns are present *)
  let weight = Tangential.Per_sample [| 3; 2; 3; 2; 3; 2; 3; 2; 3; 2 |] in
  let options = { Algorithm1.default_options with weight } in
  let result = Algorithm1.fit ~options (samples 10) in
  let p = result.Algorithm1.loewner in
  Alcotest.(check bool) "non-square pencil" true
    (Cmat.rows p.Loewner.ll <> Cmat.cols p.Loewner.ll);
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  check_small ~tol:1e-6 "non-square recovery" verr

let test_pencil_explicit_x0 () =
  let data = Tangential.build (samples 6) in
  let pencil = Loewner.build data in
  (* x0 = mu_0 must also satisfy Lemma 3.4 *)
  let x0 = pencil.Loewner.mu.(0) in
  let reduced =
    Svd_reduce.reduce ~mode:(Svd_reduce.Pencil (Some x0)) pencil
  in
  Alcotest.(check int) "rank at x0 = mu0" 15 reduced.Svd_reduce.rank;
  let verr = Metrics.err reduced.Svd_reduce.model validation_samples in
  check_small ~tol:1e-7 "x0 = mu0 recovery" verr

let test_model_transient_matches_original () =
  (* end-to-end: the fitted macromodel must track the original system in
     the time domain, not just at the sample frequencies *)
  let result = fit_default 8 in
  let dt = 1e-7 and steps = 400 in
  let original = Timedomain.step_response test_system ~port:0 ~dt ~steps in
  let fitted =
    Timedomain.step_response result.Algorithm1.model ~port:0 ~dt ~steps
  in
  let worst = ref 0. in
  for k = 0 to steps do
    let a = Cmat.get original.Timedomain.outputs 1 k in
    let b = Cmat.get fitted.Timedomain.outputs 1 k in
    worst := Stdlib.max !worst (Cx.abs (Cx.sub a b))
  done;
  check_small ~tol:1e-5 "transient agreement" !worst

let test_metrics_err_vector () =
  let smps = samples 4 in
  let e = Metrics.err_vector test_system smps in
  Alcotest.(check int) "length" 4 (Array.length e);
  Array.iter (fun x -> check_small ~tol:1e-12 "truth err" x) e;
  (* a deliberately wrong model: scaled system *)
  let wrong =
    Descriptor.create ~e:test_system.Descriptor.e ~a:test_system.Descriptor.a
      ~b:test_system.Descriptor.b
      ~c:(Cmat.scale_float 2. test_system.Descriptor.c)
      ~d:(Cmat.scale_float 2. test_system.Descriptor.d)
  in
  Array.iter
    (fun x -> check_small ~tol:1e-9 "relative error of 2x model" (x -. 1.))
    (Metrics.err_vector wrong smps)

(* ------------------------------------------------------------------ *)
(* VFTI baseline *)

let test_vfti_undersampled () =
  (* 8 vector samples only span rank 8 < 15: cannot recover *)
  let result = Vfti.fit (samples 8) in
  Alcotest.(check bool) "rank capped by samples" true (result.Algorithm1.rank <= 8);
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  Alcotest.(check bool) "VFTI under-sampled fails" true (verr > 1e-3)

let test_vfti_with_enough_samples () =
  let result = Vfti.fit (samples 40) in
  let verr = Metrics.err result.Algorithm1.model validation_samples in
  check_small ~tol:1e-5 "VFTI recovers with 40 samples" verr

let test_mfti_beats_vfti_undersampled () =
  let k = 8 in
  let m = Algorithm1.fit (samples k) in
  let v = Vfti.fit (samples k) in
  let em = Metrics.err m.Algorithm1.model validation_samples in
  let ev = Metrics.err v.Algorithm1.model validation_samples in
  Alcotest.(check bool) "MFTI better by 1000x" true (em *. 1000. < ev)

(* ------------------------------------------------------------------ *)
(* Algorithm 2 *)

let test_algorithm2_noise_free () =
  let options =
    { Algorithm2.default_options with
      weight = Tangential.Full; batch = 4; threshold = 1e-8 }
  in
  let result = Algorithm2.fit ~options (samples 12) in
  Alcotest.(check bool) "subset selected" true
    (result.Algorithm2.selected_units <= result.Algorithm2.total_units);
  let verr = Metrics.err result.Algorithm2.model validation_samples in
  check_small ~tol:1e-6 "recursive recovery" verr

let test_algorithm2_stops_early () =
  (* loose threshold: should stop well before consuming all units *)
  let options =
    { Algorithm2.default_options with
      weight = Tangential.Full; batch = 3; threshold = 1e-6 }
  in
  let result = Algorithm2.fit ~options (samples 20) in
  Alcotest.(check bool) "early stop" true
    (result.Algorithm2.selected_units < result.Algorithm2.total_units);
  Alcotest.(check bool) "history recorded" true
    (Array.length result.Algorithm2.history >= 1)

let test_algorithm2_exhausts_on_impossible_threshold () =
  let options =
    { Algorithm2.default_options with
      weight = Tangential.Uniform 1; batch = 64; threshold = 0.;
      max_iterations = 3 }
  in
  let result = Algorithm2.fit ~options (samples 8) in
  (* batch 64 > total units: single iteration consumes everything *)
  Alcotest.(check int) "all units" result.Algorithm2.total_units
    result.Algorithm2.selected_units;
  Alcotest.(check int) "one iteration" 1 result.Algorithm2.iterations

let test_algorithm2_validation () =
  (* bad options surface as typed validation errors, raised by the
     compatibility wrapper and returned by fit_result *)
  (match Algorithm2.fit ~options:{ Algorithm2.default_options with batch = 0 }
           (samples 6) with
   | exception Mfti_error.Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "batch 0 accepted");
  match Algorithm2.fit_result
          ~options:{ Algorithm2.default_options with max_iterations = 0 }
          (samples 6) with
  | Error (Mfti_error.Validation _) -> ()
  | _ -> Alcotest.fail "max_iterations 0 accepted"

let test_auto_noise_rank () =
  (* noisy data: Auto_noise should land near the informative rank without
     a hand-set tolerance *)
  let spec = { Random_sys.default_spec with order = 20; ports = 4;
               rank_d = 4; seed = 31 } in
  let sys = Random_sys.generate spec in
  let clean = Sampling.sample_system sys (Sampling.logspace 10. 1e5 30) in
  let noisy = Rf.Noise.add_relative ~seed:8 ~level:1e-4 clean in
  let options =
    { Algorithm1.default_options with
      weight = Tangential.Uniform 2; rank_rule = Svd_reduce.Auto_noise }
  in
  let auto = Algorithm1.fit ~options noisy in
  let e = Metrics.err auto.Algorithm1.model clean in
  Alcotest.(check bool) "reasonable auto rank" true
    (auto.Algorithm1.rank >= 10 && auto.Algorithm1.rank <= 50);
  Alcotest.(check bool)
    (Printf.sprintf "auto-noise fit usable (ERR %.2e)" e) true (e < 0.05)

let test_auto_noise_on_clean_falls_back () =
  (* noise-free data: Auto_noise must behave like the gap rule *)
  let options =
    { Algorithm1.default_options with rank_rule = Svd_reduce.Auto_noise }
  in
  let r = Algorithm1.fit ~options (samples 8) in
  Alcotest.(check int) "gap fallback" 15 r.Algorithm1.rank;
  check_small ~tol:1e-7 "still exact"
    (Metrics.err r.Algorithm1.model validation_samples)

(* property: exact recovery at the Theorem 3.5 minimal sampling, across
   random systems *)
let prop_minimal_recovery =
  let gen =
    QCheck.Gen.(
      int_range 2 5 >>= fun ports ->
      int_range 1 4 >>= fun blocks ->
      int_range 0 ports >>= fun rank_d ->
      int_bound 10_000 >|= fun seed -> (ports, 2 * blocks * ports, rank_d, seed))
  in
  let arb =
    QCheck.make gen ~print:(fun (p, n, r, s) ->
        Printf.sprintf "ports=%d order=%d rank_d=%d seed=%d" p n r s)
  in
  QCheck.Test.make ~name:"recovery at k_min across random systems" ~count:15 arb
    (fun (ports, order, rank_d, seed) ->
      let spec =
        { Random_sys.order; ports; rank_d; freq_lo = 100.; freq_hi = 1e5;
          damping = 0.1; seed }
      in
      let sys = Random_sys.generate spec in
      let k =
        Svd_reduce.minimal_samples ~order ~rank_d ~inputs:ports ~outputs:ports
      in
      (* a couple of extra samples buys margin for weakly observable modes *)
      let k = k + 2 in
      let smps = Sampling.sample_system sys (Sampling.logspace 100. 1e5 k) in
      let r = Algorithm1.fit smps in
      let vgrid = Sampling.sample_system sys (Sampling.logspace 130. 0.9e5 11) in
      Metrics.err r.Algorithm1.model vgrid < 1e-5)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_zero_for_truth () =
  check_small ~tol:1e-12 "ERR of the true system"
    (Metrics.err test_system validation_samples)

let test_metrics_report () =
  let s = Metrics.report ~name:"truth" test_system (samples 4) in
  Alcotest.(check bool) "mentions name" true
    (String.length s > 0 && String.sub s 0 5 = "truth")

(* ------------------------------------------------------------------ *)
(* Direction generators *)

let test_direction_orthonormal () =
  let r = Direction.right (Direction.Orthonormal 3) ~block:2 ~ports:5 ~size:3 in
  let g = Cmat.mul_cn r r in
  check_small ~tol:1e-10 "orthonormal columns"
    (Cmat.norm_fro (Cmat.sub g (Cmat.identity 3)));
  check_small "real" (Cmat.max_imag r)

let test_direction_identity_cycle () =
  let r = Direction.right Direction.Identity_cycle ~block:0 ~ports:3 ~size:3 in
  check_small "identity block 0"
    (Cmat.norm_fro (Cmat.sub r (Cmat.identity 3)));
  let r1 = Direction.right Direction.Identity_cycle ~block:1 ~ports:3 ~size:2 in
  (* block 1, size 2: columns e_2, e_0 *)
  check_small "cycled e2" (Cx.abs (Cx.sub (Cmat.get r1 2 0) Cx.one));
  check_small "cycled e0" (Cx.abs (Cx.sub (Cmat.get r1 0 1) Cx.one))

let test_direction_validation () =
  (match Direction.right Direction.Identity_cycle ~block:0 ~ports:3 ~size:4 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "oversize accepted");
  match Direction.left (Direction.Orthonormal 0) ~block:0 ~ports:3 ~size:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero size accepted"

let test_direction_left_shape () =
  let l = Direction.left (Direction.Orthonormal 1) ~block:0 ~ports:4 ~size:2 in
  Alcotest.(check (pair int int)) "left dims" (2, 4) (Cmat.dims l);
  let g = Cmat.mul l (Cmat.ctranspose l) in
  check_small ~tol:1e-10 "orthonormal rows"
    (Cmat.norm_fro (Cmat.sub g (Cmat.identity 2)))

let () =
  Alcotest.run "mfti"
    [ ("direction",
       [ Alcotest.test_case "orthonormal" `Quick test_direction_orthonormal;
         Alcotest.test_case "identity cycle" `Quick test_direction_identity_cycle;
         Alcotest.test_case "validation" `Quick test_direction_validation;
         Alcotest.test_case "left shape" `Quick test_direction_left_shape ]);
      ("tangential",
       [ Alcotest.test_case "structure" `Quick test_tangential_structure;
         Alcotest.test_case "data consistency" `Quick test_tangential_data_consistency;
         Alcotest.test_case "validation" `Quick test_tangential_validation;
         Alcotest.test_case "trim_even" `Quick test_trim_even;
         Alcotest.test_case "weights" `Quick test_tangential_weights;
         Alcotest.test_case "vector build" `Quick test_vector_build ]);
      ("loewner",
       [ Alcotest.test_case "shape" `Quick test_loewner_shape;
         Alcotest.test_case "sylvester identities" `Quick test_loewner_sylvester;
         Alcotest.test_case "sylvester construction" `Quick test_loewner_matches_sylvester_solve;
         Alcotest.test_case "rank bound (lemma 3.3)" `Quick test_loewner_rank_bound;
         Alcotest.test_case "LL rank = order" `Quick test_loewner_ll_rank ]);
      ("realify",
       [ Alcotest.test_case "transform unitary" `Quick test_transform_unitary;
         Alcotest.test_case "transform validation" `Quick test_transform_validation;
         Alcotest.test_case "pairwise = dense" `Quick test_realify_matches_dense_transform;
         Alcotest.test_case "produces real" `Quick test_realify_produces_real;
         Alcotest.test_case "preserves sigma" `Quick test_realify_preserves_singular_values ]);
      ("algorithm1",
       [ Alcotest.test_case "minimal samples (thm 3.5)" `Quick test_minimal_samples_estimate;
         Alcotest.test_case "exact recovery" `Quick test_exact_recovery;
         Alcotest.test_case "full-matrix interpolation (lemma 3.1)" `Quick test_full_matrix_interpolation;
         Alcotest.test_case "real model (lemma 3.2)" `Quick test_real_model;
         Alcotest.test_case "pencil mode (lemma 3.4)" `Quick test_pencil_mode_recovery;
         Alcotest.test_case "undersampled fails" `Quick test_undersampled_fails;
         Alcotest.test_case "uniform weight" `Quick test_uniform_weight_recovery;
         Alcotest.test_case "identity directions" `Quick test_identity_directions_recovery;
         Alcotest.test_case "determinism" `Quick test_determinism;
         Alcotest.test_case "fixed rank" `Quick test_fixed_rank_rule;
         Alcotest.test_case "per-sample weights" `Quick test_per_sample_weights_recovery;
         Alcotest.test_case "pencil explicit x0" `Quick test_pencil_explicit_x0;
         Alcotest.test_case "transient agreement" `Quick test_model_transient_matches_original ]);
      ("vfti",
       [ Alcotest.test_case "undersampled fails" `Quick test_vfti_undersampled;
         Alcotest.test_case "enough samples recover" `Quick test_vfti_with_enough_samples;
         Alcotest.test_case "MFTI beats VFTI" `Quick test_mfti_beats_vfti_undersampled ]);
      ("algorithm2",
       [ Alcotest.test_case "noise-free recovery" `Quick test_algorithm2_noise_free;
         Alcotest.test_case "early stop" `Quick test_algorithm2_stops_early;
         Alcotest.test_case "exhaustion" `Quick test_algorithm2_exhausts_on_impossible_threshold;
         Alcotest.test_case "validation" `Quick test_algorithm2_validation ]);
      ("metrics",
       [ Alcotest.test_case "zero for truth" `Quick test_metrics_zero_for_truth;
         Alcotest.test_case "err vector" `Quick test_metrics_err_vector;
         Alcotest.test_case "report" `Quick test_metrics_report ]);
      ("rank rules",
       [ Alcotest.test_case "auto-noise on noisy data" `Quick test_auto_noise_rank;
         Alcotest.test_case "auto-noise clean fallback" `Quick test_auto_noise_on_clean_falls_back ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_minimal_recovery ]) ]
