(* Determinism and correctness of the multicore kernel layer: every
   parallel kernel must agree with its forced-sequential run
   ([Parallel.with_sequential], the [MFTI_DOMAINS=1] behaviour)
   bit-for-bit or within 1e-12 relative Frobenius, across edge shapes
   (empty, 1x1, non-square, below/above the blocking threshold). *)

open Linalg
open Statespace
open Mfti

let () = Parallel.set_domain_count 4

let rng = Rng.create 90210

let rel_fro a b =
  let d = Cmat.norm_fro (Cmat.sub a b) in
  let s = Cmat.norm_fro a in
  if s > 0. then d /. s else d

let check_close msg x tol =
  if not (x <= tol) then Alcotest.failf "%s: %.3g exceeds %.1g" msg x tol

(* ------------------------------------------------------------------ *)
(* Parallel primitives *)

let test_parallel_for_covers () =
  List.iter
    (fun n ->
      let hits = Array.make (Stdlib.max n 1) 0 in
      Parallel.parallel_for n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      for i = 0 to n - 1 do
        if hits.(i) <> 1 then
          Alcotest.failf "n=%d: index %d visited %d times" n i hits.(i)
      done)
    [ 0; 1; 2; 7; 64; 1000 ];
  (* explicit chunk sizes, including chunk > n *)
  List.iter
    (fun chunk ->
      let hits = Array.make 37 0 in
      Parallel.parallel_for ~chunk 37 (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i h ->
          if h <> 1 then Alcotest.failf "chunk=%d: index %d hit %d" chunk i h)
        hits)
    [ 1; 2; 5; 36; 37; 100 ]

let test_parallel_for_reduce () =
  let n = 1234 in
  let expect = n * (n - 1) / 2 in
  let got =
    Parallel.parallel_for_reduce ~neutral:0 ~combine:( + ) n (fun lo hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          s := !s + i
        done;
        !s)
  in
  Alcotest.(check int) "sum 0..n-1" expect got;
  (* floating-point fold must not depend on the domain count *)
  let f lo hi =
    let s = ref 0. in
    for i = lo to hi - 1 do
      s := !s +. (1. /. float_of_int (i + 1))
    done;
    !s
  in
  let par =
    Parallel.parallel_for_reduce ~neutral:0. ~combine:( +. ) 4099 f
  in
  let seq =
    Parallel.with_sequential (fun () ->
        Parallel.parallel_for_reduce ~neutral:0. ~combine:( +. ) 4099 f)
  in
  Alcotest.(check (float 0.)) "harmonic sum bit-identical" seq par;
  Alcotest.(check (float 0.)) "empty range" 0.
    (Parallel.parallel_for_reduce ~neutral:0. ~combine:( +. ) 0 f)

let test_parallel_for_exception () =
  match
    Parallel.parallel_for 1000 (fun lo hi ->
        for i = lo to hi - 1 do
          if i = 777 then failwith "boom"
        done)
  with
  | () -> Alcotest.fail "expected exception to propagate"
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg

let test_parallel_for_result_typed () =
  (* worker exceptions surface as typed errors, and the pool stays
     usable afterwards (no deadlock, no poisoned worker state) *)
  (match
     Parallel.parallel_for_result ~context:"test" 500 (fun lo hi ->
         for i = lo to hi - 1 do
           if i = 123 then invalid_arg "bad shape"
         done)
   with
   | Error (Mfti_error.Validation { context; _ }) ->
     Alcotest.(check string) "context" "test" context
   | Error e ->
     Alcotest.failf "expected Validation, got %s" (Mfti_error.to_string e)
   | Ok () -> Alcotest.fail "expected the worker exception to surface");
  (match
     Parallel.parallel_for_result ~context:"test" 500 (fun _ _ ->
         raise (Fault.Injected "synthetic"))
   with
   | Error (Mfti_error.Fault_injected { site }) ->
     Alcotest.(check string) "site" "synthetic" site
   | Error e ->
     Alcotest.failf "expected Fault_injected, got %s" (Mfti_error.to_string e)
   | Ok () -> Alcotest.fail "expected the injected fault to surface");
  let hits = Array.make 500 0 in
  (match
     Parallel.parallel_for_result ~context:"test" 500 (fun lo hi ->
         for i = lo to hi - 1 do
           hits.(i) <- hits.(i) + 1
         done)
   with
   | Ok () -> ()
   | Error e ->
     Alcotest.failf "pool unusable after failure: %s" (Mfti_error.to_string e));
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "index %d hit %d times" i h)
    hits

let test_nested_parallel_for () =
  (* nested loops must run inline rather than deadlock on the pool *)
  let acc = Array.make 64 0 in
  Parallel.parallel_for 8 (fun lo hi ->
      for i = lo to hi - 1 do
        Parallel.parallel_for 8 (fun lo2 hi2 ->
            for j = lo2 to hi2 - 1 do
              acc.((i * 8) + j) <- acc.((i * 8) + j) + 1
            done)
      done);
  Array.iteri
    (fun k h -> if h <> 1 then Alcotest.failf "slot %d hit %d times" k h)
    acc

(* ------------------------------------------------------------------ *)
(* Blocked GEMM vs sequential and vs the scalar reference *)

(* (rows a, cols a, cols b): empty, degenerate, small-path, boundary,
   blocked-path and non-square shapes *)
let gemm_shapes =
  [ (0, 0, 0); (0, 5, 3); (4, 0, 6); (1, 1, 1); (3, 4, 2); (8, 8, 8);
    (32, 32, 32); (33, 32, 31); (40, 40, 40); (97, 61, 43); (64, 128, 96);
    (120, 120, 120) ]

let test_mul_matches_sequential () =
  List.iter
    (fun (m, k, n) ->
      let a = Cmat.random rng m k and b = Cmat.random rng k n in
      let seq = Parallel.with_sequential (fun () -> Cmat.mul a b) in
      let par = Cmat.mul a b in
      Alcotest.(check bool)
        (Printf.sprintf "mul %dx%dx%d bit-identical" m k n)
        true
        (Cmat.equal ~tol:0. seq par))
    gemm_shapes

let test_mul_matches_reference () =
  List.iter
    (fun (m, k, n) ->
      let a = Cmat.random rng m k and b = Cmat.random rng k n in
      check_close
        (Printf.sprintf "mul %dx%dx%d vs reference" m k n)
        (rel_fro (Cmat.mul_reference a b) (Cmat.mul a b))
        1e-12)
    gemm_shapes

let test_mul_cn_matches () =
  List.iter
    (fun (k, m, n) ->
      let a = Cmat.random rng k m and b = Cmat.random rng k n in
      let seq = Parallel.with_sequential (fun () -> Cmat.mul_cn a b) in
      let par = Cmat.mul_cn a b in
      Alcotest.(check bool)
        (Printf.sprintf "mul_cn %dx%dx%d bit-identical" k m n)
        true
        (Cmat.equal ~tol:0. seq par);
      check_close
        (Printf.sprintf "mul_cn %dx%dx%d vs reference" k m n)
        (rel_fro (Cmat.mul_cn_reference a b) par)
        1e-12)
    gemm_shapes

let test_axpy_equal_fastpaths () =
  let x = Cmat.random rng 23 17 and y = Cmat.random rng 23 17 in
  let alpha = { Cx.re = 0.25; im = -1.5 } in
  let fused = Cmat.axpy alpha x y in
  let composed = Cmat.add (Cmat.scale alpha x) y in
  Alcotest.(check bool) "axpy = scale-then-add" true
    (Cmat.equal ~tol:0. fused composed);
  Alcotest.(check bool) "equal early-exit mismatch" false
    (Cmat.equal ~tol:1e-9 fused (Cmat.scale_float 2. fused));
  Alcotest.(check bool) "equal on itself" true (Cmat.equal ~tol:0. fused fused)

(* ------------------------------------------------------------------ *)
(* Jacobi SVD: tournament sweeps vs forced-sequential *)

let test_svd_jacobi_deterministic () =
  List.iter
    (fun (m, n) ->
      let a = Cmat.random rng m n in
      let seq =
        Parallel.with_sequential (fun () ->
            Svd.decompose ~algorithm:Svd.Jacobi a)
      in
      let par = Svd.decompose ~algorithm:Svd.Jacobi a in
      Array.iteri
        (fun i s ->
          if s <> par.Svd.sigma.(i) then
            Alcotest.failf "%dx%d: sigma %d differs" m n i)
        seq.Svd.sigma;
      Alcotest.(check bool) "U bit-identical" true
        (Cmat.equal ~tol:0. seq.Svd.u par.Svd.u);
      Alcotest.(check bool) "V bit-identical" true
        (Cmat.equal ~tol:0. seq.Svd.v par.Svd.v);
      check_close
        (Printf.sprintf "recon %dx%d" m n)
        (rel_fro a (Svd.reconstruct par))
        1e-12)
    [ (1, 1); (8, 5); (24, 16); (120, 96) ]

(* ------------------------------------------------------------------ *)
(* Loewner assembly: aggregated-product build vs sequential, plus the
   eq. (13) Sylvester invariants at seed tolerance *)

let loewner_fixture ports nsamples =
  let sys =
    Random_sys.generate
      { Random_sys.order = 3 * ports; ports; rank_d = Stdlib.max 1 (ports / 2);
        freq_lo = 100.; freq_hi = 1e5; damping = 0.08; seed = 77 }
  in
  let samples = Sampling.sample_system sys (Sampling.logspace 100. 1e5 nsamples) in
  Tangential.build samples

let test_loewner_deterministic () =
  List.iter
    (fun (ports, nsamples) ->
      let data = loewner_fixture ports nsamples in
      let seq = Parallel.with_sequential (fun () -> Loewner.build data) in
      let par = Loewner.build data in
      Alcotest.(check bool) "LL bit-identical" true
        (Cmat.equal ~tol:0. seq.Loewner.ll par.Loewner.ll);
      Alcotest.(check bool) "sLL bit-identical" true
        (Cmat.equal ~tol:0. seq.Loewner.sll par.Loewner.sll))
    [ (2, 4); (3, 6); (8, 32) ]

let test_loewner_sylvester_residuals () =
  let data = loewner_fixture 8 32 in
  let p = Loewner.build data in
  let r1, r2 = Loewner.sylvester_residuals p in
  let scale = Cmat.norm_fro p.Loewner.sll +. 1. in
  check_close "Sylvester (13) for LL" (r1 /. scale) 1e-10;
  check_close "Sylvester (13) for sLL" (r2 /. scale) 1e-10;
  let ll2 = Loewner.ll_via_sylvester p in
  check_close "LL = Sylvester solve"
    (rel_fro p.Loewner.ll ll2)
    1e-9

let test_loewner_coincident_raises () =
  let data = loewner_fixture 2 4 in
  (* collide one left point with one right point *)
  let lam = data.Tangential.right.(0).Tangential.lambda in
  let bad_left =
    Array.mapi
      (fun i (lb : Tangential.left_block) ->
        if i = 0 then { lb with Tangential.mu = lam } else lb)
      data.Tangential.left
  in
  let bad = { data with Tangential.left = bad_left } in
  Alcotest.check_raises "coincident points"
    (Invalid_argument "Loewner.build: coincident left and right points")
    (fun () -> ignore (Loewner.build bad))

(* ------------------------------------------------------------------ *)
(* Frequency sweep *)

let test_sample_system_deterministic () =
  let sys =
    Random_sys.generate
      { Random_sys.order = 20; ports = 3; rank_d = 2; freq_lo = 10.;
        freq_hi = 1e6; damping = 0.05; seed = 13 }
  in
  List.iter
    (fun nfreq ->
      let freqs = Array.init nfreq (fun i -> 10. *. (1.9 ** float_of_int i)) in
      let seq =
        Parallel.with_sequential (fun () -> Sampling.sample_system sys freqs)
      in
      let par = Sampling.sample_system sys freqs in
      Alcotest.(check int) "length" (Array.length seq) (Array.length par);
      Array.iteri
        (fun i (s : Sampling.sample) ->
          Alcotest.(check (float 0.)) "freq" s.Sampling.freq
            par.(i).Sampling.freq;
          Alcotest.(check bool)
            (Printf.sprintf "sample %d bit-identical" i)
            true
            (Cmat.equal ~tol:0. s.Sampling.s par.(i).Sampling.s))
        seq)
    [ 0; 1; 7; 33 ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "parallel"
    [ ( "primitives",
        [ Alcotest.test_case "parallel_for covers ranges" `Quick
            test_parallel_for_covers;
          Alcotest.test_case "parallel_for_reduce" `Quick
            test_parallel_for_reduce;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_for_exception;
          Alcotest.test_case "typed errors + pool reuse" `Quick
            test_parallel_for_result_typed;
          Alcotest.test_case "nested loops inline" `Quick
            test_nested_parallel_for ] );
      ( "gemm",
        [ Alcotest.test_case "mul = sequential (bit)" `Quick
            test_mul_matches_sequential;
          Alcotest.test_case "mul = reference (1e-12)" `Quick
            test_mul_matches_reference;
          Alcotest.test_case "mul_cn = sequential + reference" `Quick
            test_mul_cn_matches;
          Alcotest.test_case "axpy fused / equal early-exit" `Quick
            test_axpy_equal_fastpaths ] );
      ( "svd",
        [ Alcotest.test_case "Jacobi tournament = sequential" `Quick
            test_svd_jacobi_deterministic ] );
      ( "loewner",
        [ Alcotest.test_case "build = sequential (bit)" `Quick
            test_loewner_deterministic;
          Alcotest.test_case "Sylvester residuals (eq. 13)" `Quick
            test_loewner_sylvester_residuals;
          Alcotest.test_case "coincident points raise" `Quick
            test_loewner_coincident_raises ] );
      ( "sweep",
        [ Alcotest.test_case "sample_system = sequential" `Quick
            test_sample_system_deterministic ] ) ]
