(* Tests for the RF substrate: MNA, conversions, generators, Touchstone. *)

open Linalg
open Statespace
open Rf

let check_small ?(tol = 1e-9) msg x =
  if abs_float x > tol then Alcotest.failf "%s: |%.3g| exceeds tol %.1g" msg x tol

let check_close ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let check_cx ?(tol = 1e-9) msg (expected : Cx.t) (actual : Cx.t) =
  if Cx.abs (Cx.sub expected actual) > tol then
    Alcotest.failf "%s: expected %s, got %s" msg (Cx.to_string expected)
      (Cx.to_string actual)

let cx re im = Cx.make re im

(* ------------------------------------------------------------------ *)
(* Mna *)

let z_at circuit f = (Mna.impedance circuit [| f |]).(0).Sampling.s

let test_mna_resistor () =
  let c = Mna.create ~nodes:2 in
  let c = Mna.add c (Mna.Resistor { a = 1; b = 0; ohms = 75. }) in
  let _, c = Mna.add_port c ~plus:1 ~minus:0 in
  let z = z_at c 1e3 in
  check_cx "Z = R" (cx 75. 0.) (Cmat.get z 0 0)

let test_mna_capacitor () =
  let cap = 1e-9 in
  let c = Mna.create ~nodes:2 in
  let c = Mna.add c (Mna.Capacitor { a = 1; b = 0; farads = cap }) in
  let _, c = Mna.add_port c ~plus:1 ~minus:0 in
  let f = 1e6 in
  let z = z_at c f in
  let w = 2. *. Float.pi *. f in
  (* Z = 1/(jwC) = -j/(wC) *)
  check_cx ~tol:1e-6 "Z = 1/jwC" (cx 0. (-1. /. (w *. cap))) (Cmat.get z 0 0)

let test_mna_rl_branch () =
  let r = 5. and l = 1e-6 in
  let c = Mna.create ~nodes:2 in
  let c = Mna.add c (Mna.Rl_branch { a = 1; b = 0; ohms = r; henries = l }) in
  let _, c = Mna.add_port c ~plus:1 ~minus:0 in
  let f = 1e5 in
  let z = z_at c f in
  let w = 2. *. Float.pi *. f in
  check_cx ~tol:1e-8 "Z = R + jwL" (cx r (w *. l)) (Cmat.get z 0 0)

let test_mna_inductor_matches_rl () =
  (* a pure Inductor and an Rl_branch with tiny R agree *)
  let l = 2e-6 and f = 3e4 in
  let c1 = Mna.create ~nodes:2 in
  let c1 = Mna.add c1 (Mna.Inductor { a = 1; b = 0; henries = l }) in
  let _, c1 = Mna.add_port c1 ~plus:1 ~minus:0 in
  let z = Cmat.get (z_at c1 f) 0 0 in
  let w = 2. *. Float.pi *. f in
  check_cx ~tol:1e-8 "Z = jwL" (cx 0. (w *. l)) z

let test_mna_rc_two_port () =
  (* R between ports, C at port 2: Z11 = R + Zc, Z12 = Z21 = Z22 = Zc *)
  let r = 100. and cap = 1e-9 and f = 1e5 in
  let c = Mna.create ~nodes:3 in
  let c = Mna.add c (Mna.Resistor { a = 1; b = 2; ohms = r }) in
  let c = Mna.add c (Mna.Capacitor { a = 2; b = 0; farads = cap }) in
  let _, c = Mna.add_port c ~plus:1 ~minus:0 in
  let _, c = Mna.add_port c ~plus:2 ~minus:0 in
  let z = z_at c f in
  let w = 2. *. Float.pi *. f in
  let zc = cx 0. (-1. /. (w *. cap)) in
  check_cx ~tol:1e-6 "Z11" (Cx.add (cx r 0.) zc) (Cmat.get z 0 0);
  check_cx ~tol:1e-6 "Z12" zc (Cmat.get z 0 1);
  check_cx ~tol:1e-6 "Z21" zc (Cmat.get z 1 0);
  check_cx ~tol:1e-6 "Z22" zc (Cmat.get z 1 1)

let test_mna_series_rlc_resonance () =
  let r = 2. and l = 1e-6 and cap = 1e-9 in
  let c = Mna.create ~nodes:3 in
  let c = Mna.add c (Mna.Rl_branch { a = 1; b = 2; ohms = r; henries = l }) in
  let c = Mna.add c (Mna.Capacitor { a = 2; b = 0; farads = cap }) in
  let _, c = Mna.add_port c ~plus:1 ~minus:0 in
  let f0 = 1. /. (2. *. Float.pi *. sqrt (l *. cap)) in
  let z = Cmat.get (z_at c f0) 0 0 in
  (* at series resonance the reactances cancel: Z = R *)
  check_close ~tol:1e-6 "resonant |Z| = R" r (Cx.abs z);
  check_small ~tol:1e-6 "resonant phase" (Cx.im z)

let test_mna_mutual () =
  (* two coupled inductors to ground at separate ports:
     Z11 = jwL1, Z22 = jwL2, Z12 = Z21 = jwM *)
  let l1 = 1e-6 and l2 = 2e-6 and m = 0.5e-6 and f = 1e5 in
  let c = Mna.create ~nodes:3 in
  let c = Mna.add c (Mna.Inductor { a = 1; b = 0; henries = l1 }) in
  let c = Mna.add c (Mna.Inductor { a = 2; b = 0; henries = l2 }) in
  let c = Mna.add c (Mna.Mutual { k1 = 0; k2 = 1; henries = m }) in
  let _, c = Mna.add_port c ~plus:1 ~minus:0 in
  let _, c = Mna.add_port c ~plus:2 ~minus:0 in
  let z = z_at c f in
  let w = 2. *. Float.pi *. f in
  check_cx ~tol:1e-8 "Z11 = jwL1" (cx 0. (w *. l1)) (Cmat.get z 0 0);
  check_cx ~tol:1e-8 "Z22 = jwL2" (cx 0. (w *. l2)) (Cmat.get z 1 1);
  check_cx ~tol:1e-8 "Z12 = jwM" (cx 0. (w *. m)) (Cmat.get z 0 1);
  check_cx ~tol:1e-8 "Z21 = jwM" (cx 0. (w *. m)) (Cmat.get z 1 0)

let test_mna_validation () =
  let c = Mna.create ~nodes:2 in
  (match Mna.add c (Mna.Resistor { a = 1; b = 5; ohms = 1. }) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bad node accepted");
  (match Mna.add c (Mna.Resistor { a = 1; b = 0; ohms = -3. }) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative R accepted");
  match Mna.add_port c ~plus:1 ~minus:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "degenerate port accepted"

let test_mna_state_count () =
  let c = Mna.create ~nodes:4 in
  let c = Mna.add c (Mna.Resistor { a = 1; b = 2; ohms = 1. }) in
  let c = Mna.add c (Mna.Inductor { a = 2; b = 3; henries = 1e-9 }) in
  let c = Mna.add c (Mna.Rl_branch { a = 3; b = 0; ohms = 1.; henries = 1e-9 }) in
  (* 3 non-ground nodes + 2 inductive branches *)
  Alcotest.(check int) "states" 5 (Mna.num_states c)

let test_mna_sparse_matches_dense () =
  (* the sparse path must produce the same impedances as the dense one *)
  let circuit = Pdn.build { Pdn.default_spec with seed = 8 } in
  let freqs = [| 1e7; 1e8; 1e9 |] in
  let dense = Mna.impedance circuit freqs in
  let sparse = Mna.impedance_sparse circuit freqs in
  Array.iteri
    (fun k smp ->
      check_small ~tol:1e-8 "sparse = dense"
        (Cmat.norm_fro (Cmat.sub smp.Sampling.s sparse.(k).Sampling.s)
         /. (1. +. Cmat.norm_fro smp.Sampling.s)))
    dense

let test_mna_sparse_assembly () =
  let circuit = Ladder.build Ladder.default_spec in
  let g, c = Mna.to_sparse circuit in
  let sys = Mna.to_descriptor circuit in
  (* G = -A, C = E *)
  check_small ~tol:1e-12 "sparse G"
    (Cmat.norm_fro (Cmat.sub (Sparse.Scsr.to_dense g) (Cmat.neg sys.Descriptor.a)));
  check_small ~tol:1e-12 "sparse C"
    (Cmat.norm_fro (Cmat.sub (Sparse.Scsr.to_dense c) sys.Descriptor.e))

(* ------------------------------------------------------------------ *)
(* Sparams *)

let random_z rng n =
  (* a plausible passive-ish impedance matrix: diagonally dominant with
     positive real part *)
  let base = Cmat.random rng n n in
  Cmat.add (Cmat.scale_float 60. (Cmat.identity n)) (Cmat.scale_float 5. base)

let test_z_s_round_trip () =
  let rng = Rng.create 13 in
  let z = random_z rng 4 in
  let s = Sparams.z_to_s ~z0:50. z in
  let z' = Sparams.s_to_z ~z0:50. s in
  check_small ~tol:1e-9 "roundtrip" (Cmat.norm_fro (Cmat.sub z z'))

let test_y_s_round_trip () =
  let rng = Rng.create 14 in
  let z = random_z rng 3 in
  let y = Sparams.z_to_y z in
  let s1 = Sparams.y_to_s ~z0:50. y in
  let s2 = Sparams.z_to_s ~z0:50. z in
  check_small ~tol:1e-9 "y path = z path" (Cmat.norm_fro (Cmat.sub s1 s2));
  let y' = Sparams.s_to_y ~z0:50. s1 in
  check_small ~tol:1e-10 "s_to_y roundtrip" (Cmat.norm_fro (Cmat.sub y y'))

let test_z_y_inverse () =
  let rng = Rng.create 15 in
  let z = random_z rng 5 in
  let y = Sparams.z_to_y z in
  let id = Cmat.mul z y in
  check_small ~tol:1e-10 "Z Y = I" (Cmat.norm_fro (Cmat.sub id (Cmat.identity 5)))

let test_matched_load_s_zero () =
  (* a 50-ohm resistor seen through a 50-ohm reference: S = 0 *)
  let z = Cmat.scalar (cx 50. 0.) in
  let s = Sparams.z_to_s ~z0:50. z in
  check_small ~tol:1e-12 "matched" (Cmat.norm_fro s)

let test_descriptor_z_to_s_matches_sampled () =
  (* algebraic S-model must equal sample-wise conversion *)
  let circuit = Ladder.build Ladder.default_spec in
  let sys_z = Mna.to_descriptor circuit in
  let sys_s = Sparams.descriptor_z_to_s ~z0:50. sys_z in
  let freqs = Sampling.logspace 1e6 5e9 9 in
  Array.iter
    (fun f ->
      let z = Descriptor.eval_freq sys_z f in
      let s_direct = Sparams.z_to_s ~z0:50. z in
      let s_model = Descriptor.eval_freq sys_s f in
      check_small ~tol:1e-8 "S model matches conversion"
        (Cmat.norm_fro (Cmat.sub s_direct s_model)))
    freqs

let test_rc_passivity () =
  let spec = { Ladder.default_spec with sections = 5 } in
  let samples = Ladder.scattering spec ~z0:50. (Sampling.logspace 1e6 1e9 12) in
  Array.iter
    (fun smp ->
      Alcotest.(check bool) "passive sample" true
        (Sparams.is_passive_sample ~tol:1e-6 smp.Sampling.s))
    samples;
  Alcotest.(check bool) "max sv <= 1" true
    (Sparams.max_singular_value samples <= 1. +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Ladder / Pdn generators *)

let test_ladder_model () =
  let model = Ladder.scattering_model Ladder.default_spec ~z0:50. in
  Alcotest.(check int) "two ports" 2 (Descriptor.inputs model);
  Alcotest.(check bool) "stable" true (Poles.is_stable model);
  (* DC: the ladder is resistive; S must be real at DC *)
  let s0 = Descriptor.dc_gain model in
  check_small ~tol:1e-9 "real at DC" (Cmat.max_imag s0)

let test_ladder_transmission () =
  (* a short lossless-ish line passes low frequencies: |S21| ~ near 1,
     and transmission drops at high frequency.  No explicit termination:
     the S-parameter reference impedance already terminates port 2. *)
  let spec =
    { Ladder.default_spec with sections = 20; series_r = 0.05; termination = 0. }
  in
  let samples = Ladder.scattering spec ~z0:50. [| 1e5; 3e10 |] in
  let s21_low = Cx.abs (Cmat.get samples.(0).Sampling.s 1 0) in
  let s21_high = Cx.abs (Cmat.get samples.(1).Sampling.s 1 0) in
  Alcotest.(check bool) "passes low" true (s21_low > 0.9);
  Alcotest.(check bool) "blocks high" true (s21_high < 0.2)

let test_pdn_shape () =
  let spec = Pdn.example2_spec in
  let model = Pdn.scattering_model spec ~z0:50. in
  Alcotest.(check int) "14 ports" 14 (Descriptor.inputs model);
  Alcotest.(check bool) "order is substantial" true (Descriptor.order model >= 120);
  Alcotest.(check bool) "stable" true (Poles.is_stable model)

let test_pdn_conjugate_symmetry () =
  let model = Pdn.scattering_model { Pdn.default_spec with seed = 4 } ~z0:50. in
  check_small ~tol:1e-10 "real impulse response"
    (Sampling.max_conjugate_mismatch model (Sampling.logspace 1e6 1e9 5))

let test_pdn_passive_samples () =
  let samples =
    Pdn.scattering { Pdn.default_spec with seed = 6 } ~z0:50.
      (Sampling.logspace 1e6 1e9 8)
  in
  Alcotest.(check bool) "passive" true
    (Sparams.max_singular_value samples <= 1. +. 1e-6)

let test_pdn_sparse_scattering_matches () =
  let spec = { Pdn.default_spec with seed = 5 } in
  let freqs = [| 1e7; 5e8 |] in
  let dense = Pdn.scattering spec ~z0:50. freqs in
  let sparse = Pdn.scattering_sparse spec ~z0:50. freqs in
  Array.iteri
    (fun k smp ->
      check_small ~tol:1e-9 "sparse scattering"
        (Cmat.norm_fro (Cmat.sub smp.Sampling.s sparse.(k).Sampling.s)))
    dense

let test_pdn_reproducible () =
  let s1 = Pdn.scattering Pdn.default_spec ~z0:50. [| 1e8 |] in
  let s2 = Pdn.scattering Pdn.default_spec ~z0:50. [| 1e8 |] in
  Alcotest.(check bool) "deterministic" true
    (Cmat.equal ~tol:0. s1.(0).Sampling.s s2.(0).Sampling.s)

let test_coupled_lines_shape () =
  let spec = Coupled_lines.default_spec in
  let model = Coupled_lines.scattering_model spec ~z0:50. in
  Alcotest.(check int) "ports" 6 (Descriptor.inputs model);
  Alcotest.(check bool) "stable" true (Poles.is_stable model);
  Alcotest.(check int) "near port" 1 (Coupled_lines.near_port spec ~line:1);
  Alcotest.(check int) "far port" 4 (Coupled_lines.far_port spec ~line:1)

let test_coupled_lines_reciprocity () =
  (* an RLC(+mutual) network is reciprocal: S must be symmetric *)
  let model = Coupled_lines.scattering_model Coupled_lines.default_spec ~z0:50. in
  List.iter
    (fun f ->
      let s = Descriptor.eval_freq model f in
      check_small ~tol:1e-9 "S = S^T"
        (Cmat.norm_fro (Cmat.sub s (Cmat.transpose s))))
    [ 1e8; 1e9; 1e10 ]

let test_coupled_lines_crosstalk_grows_with_coupling () =
  let xtalk k =
    let spec = { Coupled_lines.default_spec with coupling_k = k } in
    let model = Coupled_lines.scattering_model spec ~z0:50. in
    let s = Descriptor.eval_freq model 2e9 in
    Cx.abs (Cmat.get s 0 1)  (* near-end victim from aggressor *)
  in
  let weak = xtalk 0.05 and strong = xtalk 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "stronger coupling, more crosstalk (%.3f vs %.3f)" weak strong)
    true (strong > 2. *. weak)

let test_coupled_lines_passive () =
  let samples =
    Coupled_lines.scattering Coupled_lines.default_spec ~z0:50.
      (Sampling.logspace 1e7 4e10 10)
  in
  Alcotest.(check bool) "passive" true
    (Sparams.max_singular_value samples <= 1. +. 1e-6)

let test_coupled_lines_validation () =
  (match Coupled_lines.build { Coupled_lines.default_spec with lines = 1 } with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "single line accepted");
  match Coupled_lines.build { Coupled_lines.default_spec with coupling_k = 1.5 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "coupling >= 1 accepted"

(* ------------------------------------------------------------------ *)
(* Twoport *)

let test_twoport_elements () =
  (* series 50-ohm seen into a 50-ohm load: Zin = 100 *)
  let m = Twoport.series_impedance (cx 50. 0.) in
  let zin = Twoport.input_impedance ~load:(cx 50. 0.) m in
  check_cx "series Zin" (cx 100. 0.) zin;
  (* shunt admittance 1/50 into an open: Zin = 50 *)
  let m = Twoport.shunt_admittance (cx 0.02 0.) in
  let zin = Twoport.input_impedance ~load:(cx 1e12 0.) m in
  check_cx ~tol:1e-6 "shunt Zin" (cx 50. 0.) zin

let test_twoport_quarter_wave () =
  (* a quarter-wave line transforms Zl to z0^2 / Zl *)
  let m = Twoport.line ~z0:50. ~theta:(Float.pi /. 2.) in
  let zin = Twoport.input_impedance ~load:(cx 100. 0.) m in
  check_cx ~tol:1e-9 "quarter-wave transformer" (cx 25. 0.) zin

let test_twoport_s_round_trip () =
  let rng = Rng.create 41 in
  (* a random cascade of passive-ish elements *)
  let m =
    Twoport.chain
      [ Twoport.series_impedance (cx 5. 20.);
        Twoport.shunt_admittance (cx 0.001 0.004);
        Twoport.line ~z0:60. ~theta:0.7;
        Twoport.series_impedance (Rng.complex_gaussian rng) ]
  in
  let s = Twoport.s_of_abcd ~z0:50. m in
  let back = Twoport.abcd_of_s ~z0:50. s in
  check_small ~tol:1e-9 "ABCD round trip"
    (Cmat.norm_fro (Cmat.sub m back) /. (1. +. Cmat.norm_fro m))

let test_twoport_matches_mna_ladder () =
  (* the same ladder built two independent ways must agree:
     Mna/descriptor vs chained ABCD sections *)
  let spec = { Ladder.default_spec with sections = 6; termination = 0. } in
  let f = 2e9 in
  let w = 2. *. Float.pi *. f in
  let cell =
    Twoport.cascade
      (Twoport.series_impedance (cx spec.Ladder.series_r (w *. spec.Ladder.series_l)))
      (Twoport.shunt_admittance (cx 0. (w *. spec.Ladder.shunt_c)))
  in
  let abcd = Twoport.chain (List.init 6 (fun _ -> cell)) in
  let s_chain = Twoport.s_of_abcd ~z0:50. abcd in
  let s_mna =
    (Ladder.scattering spec ~z0:50. [| f |]).(0).Sampling.s
  in
  check_small ~tol:1e-9 "chain = MNA"
    (Cmat.norm_fro (Cmat.sub s_chain s_mna))

let test_twoport_cascade_s_associative () =
  let a = Twoport.s_of_abcd ~z0:50. (Twoport.series_impedance (cx 10. 5.)) in
  let b = Twoport.s_of_abcd ~z0:50. (Twoport.shunt_admittance (cx 0.01 0.002)) in
  let c = Twoport.s_of_abcd ~z0:50. (Twoport.line ~z0:75. ~theta:0.4) in
  let left = Twoport.cascade_s ~z0:50. (Twoport.cascade_s ~z0:50. a b) c in
  let right = Twoport.cascade_s ~z0:50. a (Twoport.cascade_s ~z0:50. b c) in
  check_small ~tol:1e-10 "associativity"
    (Cmat.norm_fro (Cmat.sub left right))

let test_twoport_deembed () =
  let fixture = Twoport.line ~z0:60. ~theta:0.3 in
  let dut = Twoport.series_impedance (cx 10. 40.) in
  let measured = Twoport.cascade fixture dut in
  let recovered = Twoport.deembed ~fixture measured in
  check_small ~tol:1e-12 "deembedding recovers the DUT"
    (Cmat.norm_fro (Cmat.sub recovered dut));
  let id = Twoport.cascade fixture (Twoport.inverse fixture) in
  check_small ~tol:1e-12 "inverse" (Cmat.norm_fro (Cmat.sub id (Cmat.identity 2)))

let test_twoport_validation () =
  (match Twoport.s_of_abcd ~z0:50. (Cmat.identity 3) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "3x3 accepted");
  (* an isolator-like S with S21 = 0 has no chain form *)
  let s = Cmat.of_rows [ [ cx 0.5 0.; cx 0.1 0. ]; [ Cx.zero; cx 0.5 0. ] ] in
  match Twoport.abcd_of_s ~z0:50. s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "S21 = 0 accepted"

(* ------------------------------------------------------------------ *)
(* Passivity *)

let test_passivity_ladder () =
  let model = Ladder.scattering_model Ladder.default_spec ~z0:50. in
  (match Passivity.check model with
   | Passivity.Passive -> ()
   | Passivity.Feedthrough_violation s ->
     Alcotest.failf "feedthrough violation %.3f on a passive RLC" s
   | Passivity.Violations fs ->
     Alcotest.failf "false violations (%d) on a passive RLC" (List.length fs));
  Alcotest.(check bool) "sampled check agrees" true
    (Passivity.max_violation model ~freqs:(Sampling.logspace 1e5 1e11 40) < 0.)

let test_passivity_analytic_crossing () =
  (* S(s) = 2/(s+1): |S(jw)| = 2/sqrt(1+w^2) crosses 1 at w = sqrt 3 *)
  let sys =
    Descriptor.of_state_space
      ~a:(Cmat.scalar (cx (-1.) 0.)) ~b:(Cmat.scalar Cx.one)
      ~c:(Cmat.scalar (cx 2. 0.)) ~d:(Cmat.scalar Cx.zero)
  in
  (match Passivity.check sys with
   | Passivity.Violations [ f ] ->
     check_close ~tol:1e-5 "crossing frequency (gamma margin shifts it slightly)"
       (sqrt 3. /. (2. *. Float.pi)) f
   | Passivity.Violations fs ->
     Alcotest.failf "expected one crossing, got %d" (List.length fs)
   | Passivity.Passive -> Alcotest.fail "non-passive model declared passive"
   | Passivity.Feedthrough_violation _ -> Alcotest.fail "wrong verdict");
  Alcotest.(check bool) "sampled violation positive" true
    (Passivity.max_violation sys ~freqs:[| 1e-3; 0.01; 0.1 |] > 0.)

let test_passivity_feedthrough () =
  let sys =
    Descriptor.of_state_space
      ~a:(Cmat.scalar (cx (-1.) 0.)) ~b:(Cmat.scalar Cx.one)
      ~c:(Cmat.scalar (cx 0.1 0.)) ~d:(Cmat.scalar (cx 1.5 0.))
  in
  match Passivity.check sys with
  | Passivity.Feedthrough_violation s -> check_close ~tol:1e-12 "sigma D" 1.5 s
  | Passivity.Passive | Passivity.Violations _ ->
    Alcotest.fail "amplifying feedthrough not flagged"

let test_passivity_pdn () =
  let model = Pdn.scattering_model { Pdn.default_spec with seed = 2 } ~z0:50. in
  match Passivity.check model with
  | Passivity.Passive -> ()
  | Passivity.Feedthrough_violation s -> Alcotest.failf "feedthrough %.3f" s
  | Passivity.Violations fs ->
    (* tiny numerical grazings are tolerable; anything sampled above
       1 + 1e-6 is not *)
    Alcotest.(check bool)
      (Printf.sprintf "grazing only (%d crossings)" (List.length fs))
      true
      (Passivity.max_violation model ~freqs:(Sampling.logspace 1e5 1e10 60) < 1e-6)

let test_passivity_lossless_boundary () =
  (* all-pass S(s) = (s-1)/(s+1): |S(jw)| = 1 at every frequency and
     sigma_max D = 1 exactly — the lossless boundary.  The default
     gamma margin must keep it on the passive side; at margin 0 the
     feedthrough precondition itself trips. *)
  let sys =
    Descriptor.of_state_space
      ~a:(Cmat.scalar (cx (-1.) 0.)) ~b:(Cmat.scalar Cx.one)
      ~c:(Cmat.scalar (cx (-2.) 0.)) ~d:(Cmat.scalar Cx.one)
  in
  (match Passivity.check sys with
   | Passivity.Passive -> ()
   | Passivity.Feedthrough_violation s ->
     Alcotest.failf "lossless boundary flagged at infinity (sigma D = %.12g)" s
   | Passivity.Violations fs ->
     Alcotest.failf "lossless boundary flagged with %d crossings"
       (List.length fs));
  check_small ~tol:1e-9 "sampled margin sits on the boundary"
    (Passivity.max_violation sys ~freqs:(Sampling.logspace 1e-3 1e3 25));
  match Passivity.check ~gamma_margin:0. sys with
  | Passivity.Feedthrough_violation s -> check_close ~tol:1e-12 "sigma D" 1. s
  | Passivity.Passive | Passivity.Violations _ ->
    Alcotest.fail "margin 0 must trip the feedthrough precondition"

let test_passivity_singular_e_descriptor () =
  (* index-1: one algebraic state (zero row of E) that Kron reduction
     solves out, leaving S(s) = 0.2/(s+1) + 0.09 — well inside the
     unit ball, so the Hamiltonian test must pass on the reduced
     proper model *)
  let e = Cmat.of_rows [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.zero ] ] in
  let a =
    Cmat.of_rows [ [ cx (-1.) 0.; Cx.zero ]; [ Cx.zero; cx (-1.) 0. ] ]
  in
  let b = Cmat.of_rows [ [ Cx.one ]; [ cx 0.3 0. ] ] in
  let c = Cmat.of_rows [ [ cx 0.2 0.; cx 0.3 0. ] ] in
  let sys = Descriptor.create ~e ~a ~b ~c ~d:(Cmat.zeros 1 1) in
  check_close ~tol:1e-12 "reduced DC gain" 0.29
    (Cx.abs (Cmat.get (Descriptor.eval sys Cx.zero) 0 0));
  (match Passivity.check sys with
   | Passivity.Passive -> ()
   | Passivity.Feedthrough_violation s ->
     Alcotest.failf "index-1 descriptor: spurious feedthrough %.3g" s
   | Passivity.Violations fs ->
     Alcotest.failf "index-1 descriptor: %d spurious crossings"
       (List.length fs));
  (* index-2 (nilpotent E coupling): a loud precondition failure, not a
     silently wrong verdict *)
  let e2 = Cmat.of_rows [ [ Cx.zero; Cx.one ]; [ Cx.zero; Cx.zero ] ] in
  let sys2 =
    Descriptor.create ~e:e2 ~a:(Cmat.identity 2) ~b ~c ~d:(Cmat.zeros 1 1)
  in
  match Passivity.check sys2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "index-2 descriptor accepted"

(* ------------------------------------------------------------------ *)
(* Noise *)

let flat_samples n =
  Array.init n (fun k ->
      { Sampling.freq = float_of_int (k + 1);
        s = Cmat.init 2 2 (fun i jcol -> cx (float_of_int (1 + i + jcol)) 0.5) })

let test_noise_zero_level () =
  let samples = flat_samples 3 in
  let noisy = Noise.add_relative ~seed:1 ~level:0. samples in
  Array.iteri
    (fun k smp ->
      Alcotest.(check bool) "unchanged" true
        (Cmat.equal ~tol:0. smp.Sampling.s noisy.(k).Sampling.s))
    samples

let test_noise_statistics () =
  let samples = flat_samples 200 in
  let level = 0.05 in
  let noisy = Noise.add_relative ~seed:3 ~level samples in
  (* average relative perturbation should be about `level` *)
  let total = ref 0. and count = ref 0 in
  Array.iteri
    (fun k smp ->
      let diff = Cmat.sub noisy.(k).Sampling.s smp.Sampling.s in
      Cmat.iteri
        (fun i jcol d ->
          let base = Cx.abs (Cmat.get smp.Sampling.s i jcol) in
          total := !total +. (Cx.abs d /. base);
          incr count)
        diff)
    samples;
  let mean = !total /. float_of_int !count in
  (* mean |g1 + j g2|/sqrt2 = sqrt(pi)/2 / sqrt(2) ~ 0.627 of level *)
  Alcotest.(check bool) "noise scale plausible" true
    (mean > 0.4 *. level && mean < 0.9 *. level)

let test_noise_determinism () =
  let samples = flat_samples 5 in
  let n1 = Noise.add_relative ~seed:9 ~level:0.01 samples in
  let n2 = Noise.add_relative ~seed:9 ~level:0.01 samples in
  Array.iteri
    (fun k smp ->
      Alcotest.(check bool) "same noise" true
        (Cmat.equal ~tol:0. smp.Sampling.s n2.(k).Sampling.s))
    n1;
  let n3 = Noise.add_floor ~seed:10 ~sigma:0.01 samples in
  let n4 = Noise.add_floor ~seed:11 ~sigma:0.01 samples in
  Alcotest.(check bool) "different seeds differ" false
    (Cmat.equal ~tol:0. n3.(0).Sampling.s n4.(0).Sampling.s)

let test_snr_conversion () =
  check_close ~tol:1e-12 "40 dB" 0.01 (Noise.snr_db_to_level 40.);
  check_close ~tol:1e-12 "20 dB" 0.1 (Noise.snr_db_to_level 20.)

(* ------------------------------------------------------------------ *)
(* Touchstone *)

let sample_data n k =
  let rng = Rng.create (100 + n) in
  Array.init k (fun i ->
      { Sampling.freq = 1e9 *. float_of_int (i + 1);
        s = Cmat.random rng n n })

let round_trip ?format n =
  let data = { Touchstone.parameter = Touchstone.S; z0 = 50.; samples = sample_data n 4 } in
  let text = Touchstone.print ?format data in
  let back = Touchstone.parse ~nports:n text in
  Alcotest.(check int) "sample count" 4 (Array.length back.Touchstone.samples);
  Array.iteri
    (fun k smp ->
      let orig = data.samples.(k) in
      check_small ~tol:1e-7 "freq" (smp.Sampling.freq -. orig.Sampling.freq);
      Alcotest.(check bool)
        (Printf.sprintf "%d-port matrices match" n)
        true
        (Cmat.equal ~tol:1e-6 smp.Sampling.s orig.Sampling.s))
    back.Touchstone.samples

let test_touchstone_round_trip_ri () = round_trip ~format:Touchstone.Ri 3
let test_touchstone_round_trip_ma () = round_trip ~format:Touchstone.Ma 2
let test_touchstone_round_trip_db () = round_trip ~format:Touchstone.Db 1
let test_touchstone_round_trip_large () = round_trip ~format:Touchstone.Ri 5

let test_touchstone_option_line () =
  let text = "! comment\n# MHz Z RI R 75\n1 1 0\n2 2 0\n" in
  let t = Touchstone.parse ~nports:1 text in
  Alcotest.(check bool) "parameter Z" true (t.Touchstone.parameter = Touchstone.Z);
  check_close "z0" 75. t.Touchstone.z0;
  check_close "MHz scaling" 1e6 t.Touchstone.samples.(0).Sampling.freq;
  check_close "entry" 1. (Cx.re (Cmat.get t.Touchstone.samples.(0).Sampling.s 0 0))

let test_touchstone_default_options () =
  (* no option line: GHz S MA R 50 *)
  let text = "1.0 0.5 0\n" in
  let t = Touchstone.parse ~nports:1 text in
  check_close "GHz default" 1e9 t.Touchstone.samples.(0).Sampling.freq;
  check_close "MA magnitude" 0.5
    (Cx.abs (Cmat.get t.Touchstone.samples.(0).Sampling.s 0 0))

let test_touchstone_two_port_order () =
  (* v1 2-port order is S11 S21 S12 S22 *)
  let text = "# HZ S RI R 50\n1 11 0 21 0 12 0 22 0\n" in
  let t = Touchstone.parse ~nports:2 text in
  let s = t.Touchstone.samples.(0).Sampling.s in
  check_close "S11" 11. (Cx.re (Cmat.get s 0 0));
  check_close "S21" 21. (Cx.re (Cmat.get s 1 0));
  check_close "S12" 12. (Cx.re (Cmat.get s 0 1));
  check_close "S22" 22. (Cx.re (Cmat.get s 1 1))

let test_touchstone_errors () =
  (match Touchstone.parse ~nports:1 "# HZ S RI R 50\n1 2\n" with
   | exception Touchstone.Parse_error _ -> ()
   | _ -> Alcotest.fail "truncated record accepted");
  (match Touchstone.parse ~nports:1 "# HZ S RI R 50\n1 2 bogus\n" with
   | exception Touchstone.Parse_error _ -> ()
   | _ -> Alcotest.fail "junk token accepted");
  match Touchstone.ports_of_filename "foo.txt" with
  | exception Touchstone.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad extension accepted"

let test_touchstone_ports_of_filename () =
  Alcotest.(check int) "s2p" 2 (Touchstone.ports_of_filename "meas.s2p");
  Alcotest.(check int) "s14p" 14 (Touchstone.ports_of_filename "/tmp/board.S14P")

let test_touchstone_file_io () =
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir "mfti_test.s3p" in
  let data = { Touchstone.parameter = Touchstone.S; z0 = 50.; samples = sample_data 3 5 } in
  Touchstone.write_file path data ~comment:"unit test";
  let back = Touchstone.read_file path in
  Sys.remove path;
  Alcotest.(check int) "count" 5 (Array.length back.Touchstone.samples);
  Alcotest.(check bool) "content" true
    (Cmat.equal ~tol:1e-6 back.Touchstone.samples.(2).Sampling.s
       data.samples.(2).Sampling.s)

let test_touchstone_line_endings () =
  (* CRLF (Windows) and lone-'\r' (classic Mac) files both parse *)
  let unix = "# HZ S RI R 50\n1 2 0\n2 3 0\n" in
  let crlf = "# HZ S RI R 50\r\n1 2 0\r\n2 3 0\r\n" in
  let mac = "# HZ S RI R 50\r1 2 0\r2 3 0\r" in
  let reference = Touchstone.parse ~nports:1 unix in
  List.iter
    (fun (name, text) ->
      let t = Touchstone.parse ~nports:1 text in
      Alcotest.(check int) (name ^ " count") 2
        (Array.length t.Touchstone.samples);
      Array.iteri
        (fun i smp ->
          check_close (name ^ " freq")
            reference.Touchstone.samples.(i).Sampling.freq smp.Sampling.freq;
          Alcotest.(check bool) (name ^ " data") true
            (Cmat.equal ~tol:0. reference.Touchstone.samples.(i).Sampling.s
               smp.Sampling.s))
        t.Touchstone.samples)
    [ ("crlf", crlf); ("mac", mac) ]

let test_touchstone_uppercase_extension () =
  Alcotest.(check int) ".S2P" 2 (Touchstone.ports_of_filename "MEAS.S2P");
  Alcotest.(check int) ".s2P" 2 (Touchstone.ports_of_filename "meas.s2P")

let test_touchstone_trailing_comments () =
  let text = "# HZ S RI R 50 ! options\n1 2 0 ! first point\n2 3 0!glued\n" in
  let t = Touchstone.parse ~nports:1 text in
  Alcotest.(check int) "count" 2 (Array.length t.Touchstone.samples);
  check_close "second entry" 3.
    (Cx.re (Cmat.get t.Touchstone.samples.(1).Sampling.s 0 0))

let test_touchstone_error_line_numbers () =
  match Touchstone.parse ~nports:1 "# HZ S RI R 50\n1 2 0\n2 bogus 0\n" with
  | exception Touchstone.Parse_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "line number in %S" msg)
      true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")
  | _ -> Alcotest.fail "junk token accepted"

let lenient_parse text =
  Linalg.Diag.with_collector (fun () ->
      match
        Touchstone.parse_result ~policy:Touchstone.Lenient ~nports:1 text
      with
      | Ok t -> t
      | Error e -> Alcotest.failf "lenient parse failed: %s"
                     (Linalg.Mfti_error.to_string e))

let test_touchstone_lenient_recovery () =
  (* garbage line dropped whole *)
  let t, diag = lenient_parse "# HZ S RI R 50\n1 2 0\nwhat is this\n2 3 0\n" in
  Alcotest.(check int) "garbage line dropped" 2
    (Array.length t.Touchstone.samples);
  Alcotest.(check bool) "recovery recorded" true
    (Linalg.Diag.recorded diag "touchstone.lenient");
  (* truncated trailing record discarded *)
  let t, _ = lenient_parse "# HZ S RI R 50\n1 2 0\n2 3\n" in
  Alcotest.(check int) "truncated tail dropped" 1
    (Array.length t.Touchstone.samples);
  (* non-finite record scrubbed *)
  let t, _ = lenient_parse "# HZ S RI R 50\n1 2 0\n2 nan 0\n3 4 0\n" in
  Alcotest.(check int) "NaN record scrubbed" 2
    (Array.length t.Touchstone.samples);
  (* duplicate frequency deduplicated, first wins *)
  let t, _ = lenient_parse "# HZ S RI R 50\n1 2 0\n1 9 0\n2 3 0\n" in
  Alcotest.(check int) "duplicate freq dropped" 2
    (Array.length t.Touchstone.samples);
  check_close "first wins" 2.
    (Cx.re (Cmat.get t.Touchstone.samples.(0).Sampling.s 0 0))

let test_touchstone_strict_rejects_nan () =
  match Touchstone.parse ~nports:1 "# HZ S RI R 50\n1 nan 0\n" with
  | exception Touchstone.Parse_error _ -> ()
  | _ -> Alcotest.fail "strict parse accepted a NaN record"

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let gen_circuit =
  QCheck.Gen.(
    int_range 3 7 >>= fun nodes ->
    int_range 4 14 >>= fun elements ->
    int_bound 100_000 >|= fun seed -> (nodes, elements, seed))

let arb_circuit =
  QCheck.make gen_circuit ~print:(fun (n, e, s) ->
      Printf.sprintf "nodes=%d elements=%d seed=%d" n e s)

let build_random_circuit (nodes, elements, seed) =
  let rng = Rng.create seed in
  let circuit = ref (Mna.create ~nodes) in
  for _ = 1 to elements do
    let a = Rng.int rng nodes and b = Rng.int rng nodes in
    if a <> b then begin
      let v = 10. ** Rng.range rng (-1.) 2. in
      let e =
        match Rng.int rng 3 with
        | 0 -> Mna.Resistor { a; b; ohms = v }
        | 1 -> Mna.Capacitor { a; b; farads = v *. 1e-12 }
        | _ -> Mna.Rl_branch { a; b; ohms = 0.1; henries = v *. 1e-9 }
      in
      circuit := Mna.add !circuit e
    end
  done;
  (* ground every node resistively so the MNA system is nonsingular *)
  for n = 1 to nodes - 1 do
    circuit := Mna.add !circuit (Mna.Resistor { a = n; b = 0; ohms = 1e4 })
  done;
  let _, c = Mna.add_port !circuit ~plus:1 ~minus:0 in
  let _, c = Mna.add_port c ~plus:(nodes - 1) ~minus:0 in
  c

let prop_mna_reciprocity =
  QCheck.Test.make ~name:"random RLC circuits are reciprocal (Z = Z^T)"
    ~count:30 arb_circuit (fun params ->
      let circuit = build_random_circuit params in
      let z = (Mna.impedance circuit [| 1e8 |]).(0).Sampling.s in
      Cmat.norm_fro (Cmat.sub z (Cmat.transpose z))
      <= 1e-8 *. (1. +. Cmat.norm_fro z))

let prop_mna_dc_symmetry =
  QCheck.Test.make ~name:"Z(conj s) = conj Z(s) for random circuits"
    ~count:30 arb_circuit (fun params ->
      let circuit = build_random_circuit params in
      let sys = Mna.to_descriptor circuit in
      let s = Cx.jw (2. *. Float.pi *. 3e7) in
      let zp = Descriptor.eval sys s in
      let zm = Descriptor.eval sys (Cx.conj s) in
      Cmat.norm_fro (Cmat.sub zm (Cmat.conj zp))
      <= 1e-8 *. (1. +. Cmat.norm_fro zp))

let prop_z_s_round_trip =
  let gen =
    QCheck.Gen.(int_range 1 6 >>= fun n -> int_bound 100_000 >|= fun s -> (n, s))
  in
  QCheck.Test.make
    ~name:"z_to_s / s_to_z round trip"
    ~count:40
    (QCheck.make gen ~print:(fun (n, s) -> Printf.sprintf "n=%d seed=%d" n s))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let z = random_z rng n in
      let s = Sparams.z_to_s ~z0:50. z in
      let z' = Sparams.s_to_z ~z0:50. s in
      Cmat.norm_fro (Cmat.sub z z') <= 1e-8 *. (1. +. Cmat.norm_fro z))

let rf_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_mna_reciprocity; prop_mna_dc_symmetry; prop_z_s_round_trip ]

let () =
  Alcotest.run "rf"
    [ ("mna",
       [ Alcotest.test_case "resistor" `Quick test_mna_resistor;
         Alcotest.test_case "capacitor" `Quick test_mna_capacitor;
         Alcotest.test_case "rl branch" `Quick test_mna_rl_branch;
         Alcotest.test_case "inductor" `Quick test_mna_inductor_matches_rl;
         Alcotest.test_case "rc two-port" `Quick test_mna_rc_two_port;
         Alcotest.test_case "series rlc resonance" `Quick test_mna_series_rlc_resonance;
         Alcotest.test_case "mutual inductance" `Quick test_mna_mutual;
         Alcotest.test_case "validation" `Quick test_mna_validation;
         Alcotest.test_case "state count" `Quick test_mna_state_count;
         Alcotest.test_case "sparse assembly" `Quick test_mna_sparse_assembly;
         Alcotest.test_case "sparse = dense" `Quick test_mna_sparse_matches_dense ]);
      ("sparams",
       [ Alcotest.test_case "z-s roundtrip" `Quick test_z_s_round_trip;
         Alcotest.test_case "y-s roundtrip" `Quick test_y_s_round_trip;
         Alcotest.test_case "z-y inverse" `Quick test_z_y_inverse;
         Alcotest.test_case "matched load" `Quick test_matched_load_s_zero;
         Alcotest.test_case "descriptor conversion" `Quick test_descriptor_z_to_s_matches_sampled;
         Alcotest.test_case "rc passivity" `Quick test_rc_passivity ]);
      ("generators",
       [ Alcotest.test_case "ladder model" `Quick test_ladder_model;
         Alcotest.test_case "ladder transmission" `Quick test_ladder_transmission;
         Alcotest.test_case "pdn shape" `Quick test_pdn_shape;
         Alcotest.test_case "pdn conjugate symmetry" `Quick test_pdn_conjugate_symmetry;
         Alcotest.test_case "pdn passivity" `Quick test_pdn_passive_samples;
         Alcotest.test_case "pdn sparse scattering" `Quick test_pdn_sparse_scattering_matches;
         Alcotest.test_case "pdn reproducible" `Quick test_pdn_reproducible ]);
      ("coupled lines",
       [ Alcotest.test_case "shape" `Quick test_coupled_lines_shape;
         Alcotest.test_case "reciprocity" `Quick test_coupled_lines_reciprocity;
         Alcotest.test_case "coupling strength" `Quick test_coupled_lines_crosstalk_grows_with_coupling;
         Alcotest.test_case "passivity" `Quick test_coupled_lines_passive;
         Alcotest.test_case "validation" `Quick test_coupled_lines_validation ]);
      ("twoport",
       [ Alcotest.test_case "elements" `Quick test_twoport_elements;
         Alcotest.test_case "quarter wave" `Quick test_twoport_quarter_wave;
         Alcotest.test_case "s round trip" `Quick test_twoport_s_round_trip;
         Alcotest.test_case "matches MNA ladder" `Quick test_twoport_matches_mna_ladder;
         Alcotest.test_case "cascade associativity" `Quick test_twoport_cascade_s_associative;
         Alcotest.test_case "de-embedding" `Quick test_twoport_deembed;
         Alcotest.test_case "validation" `Quick test_twoport_validation ]);
      ("passivity",
       [ Alcotest.test_case "passive ladder" `Quick test_passivity_ladder;
         Alcotest.test_case "analytic crossing" `Quick test_passivity_analytic_crossing;
         Alcotest.test_case "feedthrough" `Quick test_passivity_feedthrough;
         Alcotest.test_case "pdn" `Quick test_passivity_pdn;
         Alcotest.test_case "lossless boundary" `Quick
           test_passivity_lossless_boundary;
         Alcotest.test_case "singular-E descriptor" `Quick
           test_passivity_singular_e_descriptor ]);
      ("noise",
       [ Alcotest.test_case "zero level" `Quick test_noise_zero_level;
         Alcotest.test_case "statistics" `Quick test_noise_statistics;
         Alcotest.test_case "determinism" `Quick test_noise_determinism;
         Alcotest.test_case "snr conversion" `Quick test_snr_conversion ]);
      ("touchstone",
       [ Alcotest.test_case "roundtrip RI 3-port" `Quick test_touchstone_round_trip_ri;
         Alcotest.test_case "roundtrip MA 2-port" `Quick test_touchstone_round_trip_ma;
         Alcotest.test_case "roundtrip DB 1-port" `Quick test_touchstone_round_trip_db;
         Alcotest.test_case "roundtrip 5-port" `Quick test_touchstone_round_trip_large;
         Alcotest.test_case "option line" `Quick test_touchstone_option_line;
         Alcotest.test_case "default options" `Quick test_touchstone_default_options;
         Alcotest.test_case "2-port order" `Quick test_touchstone_two_port_order;
         Alcotest.test_case "errors" `Quick test_touchstone_errors;
         Alcotest.test_case "ports of filename" `Quick test_touchstone_ports_of_filename;
         Alcotest.test_case "file io" `Quick test_touchstone_file_io;
         Alcotest.test_case "CRLF and classic-Mac line endings" `Quick
           test_touchstone_line_endings;
         Alcotest.test_case "uppercase extension" `Quick
           test_touchstone_uppercase_extension;
         Alcotest.test_case "trailing comments" `Quick
           test_touchstone_trailing_comments;
         Alcotest.test_case "error line numbers" `Quick
           test_touchstone_error_line_numbers;
         Alcotest.test_case "lenient recovery" `Quick
           test_touchstone_lenient_recovery;
         Alcotest.test_case "strict rejects NaN" `Quick
           test_touchstone_strict_rejects_nan ]);
      ("properties", rf_props) ]
