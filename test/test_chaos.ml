(* Protocol-level chaos suite for the supervised server.

   Each test starts a real Supervisor on a Unix domain socket and
   attacks it from raw client sockets: concurrent clients with one
   stalled mid-frame, overload past the admission queue, handler
   crashes, deadline blowers, and graceful drain.  The invariant under
   every fault is the same: the server answers each well-formed
   surviving request with a typed response and never exits
   non-gracefully.  All faults are deterministic ({!Linalg.Fault}
   sites) — no timing roulette beyond the deadlines under test. *)

open Linalg
open Statespace
open Serve

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let spec ports =
  { Random_sys.order = 12; ports; rank_d = ports; freq_lo = 1e2;
    freq_hi = 1e6; damping = 0.12; seed = 23 + ports }

let model_of sys =
  Mfti.Engine.Model.make ~sigma:[| 2.0; 1.0 |] ~timings:[]
    ~rank:(Descriptor.order sys) sys

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mfti_chaos_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let server_root =
  lazy
    (let dir = fresh_dir () in
     Artifact.save (Filename.concat dir "alpha.mfti")
       (Artifact.v ~name:"alpha" (model_of (Random_sys.generate (spec 2))));
     dir)

let test_config =
  { Supervisor.default_config with
    workers = 2;
    queue = 4;
    request_timeout_ms = 2_000;
    idle_timeout_ms = 5_000;
    drain_ms = 1_000;
    backoff_base_ms = 2;
    backoff_cap_ms = 20 }

(* start a supervisor; run [f sup path]; always stop and clear faults *)
let with_supervisor ?(config = test_config) f =
  let srv = Server.create ~root:(Lazy.force server_root) () in
  let path =
    Filename.concat (fresh_dir ())
      (Printf.sprintf "s%d.sock" (Unix.getpid ()))
  in
  let sup = Supervisor.start ~config srv ~listen:(Supervisor.Unix_path path) in
  Fun.protect
    ~finally:(fun () ->
      Fault.set_spec None;
      Supervisor.stop sup)
    (fun () -> f sup srv path)

(* ------------------------------------------------------------------ *)
(* Raw socket clients *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> Unix.close fd; raise e);
  fd

let send_raw fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let send_line fd line = send_raw fd (line ^ "\n")

(* read one newline-terminated frame with a wall-clock deadline;
   [`Line l | `Eof | `Timeout].  [buf] persists bytes past the first
   newline — pipelined responses can coalesce into a single read, so a
   caller expecting several frames must pass the same buffer each
   time. *)
let recv_line_buf ?(timeout = 10.0) buf fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear buf;
      Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
      `Line (String.sub s 0 i)
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then `Timeout
      else
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> `Timeout
        | _ ->
          (match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> `Eof
           | k -> Buffer.add_subbytes buf chunk 0 k; go ()
           | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Eof)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let recv_line ?timeout fd = recv_line_buf ?timeout (Buffer.create 256) fd

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let expect_line what = function
  | `Line l -> Sjson.parse l
  | `Eof -> Alcotest.failf "%s: connection closed" what
  | `Timeout -> Alcotest.failf "%s: no response" what

let j_mem k j =
  match Sjson.member k j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S in %s" k (Sjson.to_string j)

let j_bool k j =
  match j_mem k j with
  | Sjson.Bool b -> b
  | _ -> Alcotest.failf "%S is not a bool" k

let j_str k j =
  match j_mem k j with
  | Sjson.Str s -> s
  | _ -> Alcotest.failf "%S is not a string" k

let expect_ok what r =
  let j = expect_line what r in
  Alcotest.(check bool) (what ^ " ok") true (j_bool "ok" j);
  j

let expect_kind what kind r =
  let j = expect_line what r in
  Alcotest.(check bool) (what ^ " not ok") false (j_bool "ok" j);
  Alcotest.(check string) (what ^ " kind") kind
    (j_str "kind" (j_mem "error" j))

let roundtrip ?timeout path line what =
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  send_line fd line;
  expect_ok what (recv_line ?timeout fd)

(* ------------------------------------------------------------------ *)
(* Baseline: the supervised transport speaks the same protocol *)

let test_supervised_roundtrip () =
  with_supervisor @@ fun sup _srv path ->
  ignore (roundtrip path "{\"op\":\"list-models\"}" "list");
  ignore (roundtrip path "{\"op\":\"model-info\",\"model\":\"alpha\"}" "info");
  (* stats exposes the supervisor block through the ordinary op *)
  let j = roundtrip path "{\"op\":\"stats\"}" "stats" in
  let s = j_mem "supervisor" j in
  (match j_mem "queue_capacity" s with
   | Sjson.Num n -> Alcotest.(check (float 0.)) "capacity" 4. n
   | _ -> Alcotest.fail "queue_capacity not a number");
  (* pipelined frames on one connection *)
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  send_raw fd "{\"op\":\"stats\"}\n{\"op\":\"stats\"}\n";
  let pbuf = Buffer.create 256 in
  ignore (expect_ok "pipelined 1" (recv_line_buf pbuf fd));
  ignore (expect_ok "pipelined 2" (recv_line_buf pbuf fd));
  let snap = Supervisor.stats sup in
  Alcotest.(check bool) "connections dispatched" true
    (snap.Supervisor.dispatched >= 4)

(* ------------------------------------------------------------------ *)
(* Acceptance scenario: four concurrent clients, one stalled mid-frame.
   The stalled client is timed out per policy; the other three complete
   normally; the stats op reports the timeout. *)

let test_four_clients_one_stalled () =
  let config = { test_config with workers = 4 } in
  with_supervisor ~config @@ fun sup _srv path ->
  let stalled = connect path in
  Fun.protect ~finally:(fun () -> close_quiet stalled) @@ fun () ->
  (* half a frame, then silence: the partial-frame deadline applies *)
  send_raw stalled "{\"op\":\"eval";
  let fast = Array.init 3 (fun _ -> connect path) in
  Fun.protect
    ~finally:(fun () -> Array.iter close_quiet fast)
    (fun () ->
      Array.iteri
        (fun i fd ->
          send_line fd "{\"op\":\"model-info\",\"model\":\"alpha\"}";
          ignore (expect_ok (Printf.sprintf "fast client %d" i)
                    (recv_line fd)))
        fast);
  (* the stalled client gets a typed timeout once its deadline passes *)
  expect_kind "stalled client" "timeout" (recv_line ~timeout:10.0 stalled);
  let snap = Supervisor.stats sup in
  Alcotest.(check bool) "read timeout recorded" true
    (snap.Supervisor.read_timeouts >= 1);
  Alcotest.(check bool) "no worker restarts needed" true
    (snap.Supervisor.restarts = 0)

(* ------------------------------------------------------------------ *)
(* Load shedding: with one worker and a one-slot queue, overload is
   refused with a typed "overloaded" response, never an unbounded
   backlog. *)

let test_load_shedding () =
  let config = { test_config with workers = 1; queue = 1 } in
  with_supervisor ~config @@ fun sup _srv path ->
  (* occupy the only worker: a stalled partial frame pins it until the
     request deadline *)
  let pin = connect path in
  Fun.protect ~finally:(fun () -> close_quiet pin) @@ fun () ->
  send_raw pin "{\"op\":\"sta";
  (* wait until the connection is actually in flight so later connects
     hit the queue, not the worker *)
  let rec wait_busy n =
    if n = 0 then Alcotest.fail "worker never became busy";
    if (Supervisor.stats sup).Supervisor.in_flight < 1 then begin
      Unix.sleepf 0.01; wait_busy (n - 1)
    end
  in
  wait_busy 500;
  (* fill the single queue slot *)
  let queued = connect path in
  Fun.protect ~finally:(fun () -> close_quiet queued) @@ fun () ->
  let rec wait_queued n =
    if n = 0 then Alcotest.fail "connection never queued";
    if (Supervisor.stats sup).Supervisor.queue_depth < 1 then begin
      Unix.sleepf 0.01; wait_queued (n - 1)
    end
  in
  wait_queued 500;
  (* everyone else is shed, immediately and typed *)
  let shed = Array.init 3 (fun _ -> connect path) in
  Fun.protect
    ~finally:(fun () -> Array.iter close_quiet shed)
    (fun () ->
      Array.iteri
        (fun i fd ->
          expect_kind
            (Printf.sprintf "shed client %d" i)
            "overloaded" (recv_line fd))
        shed);
  (* the queued client is eventually served once the pin times out *)
  send_line queued "{\"op\":\"list-models\"}";
  ignore (expect_ok "queued client" (recv_line ~timeout:10.0 queued));
  let snap = Supervisor.stats sup in
  Alcotest.(check bool) "sheds recorded" true (snap.Supervisor.shed >= 3);
  Alcotest.(check bool) "queue high-water mark" true
    (snap.Supervisor.queue_max >= 1)

(* ------------------------------------------------------------------ *)
(* Worker crash (serve.conn_drop): the handler dies mid-connection, the
   worker restarts with backoff, and the next connection is served. *)

let test_conn_drop_restart () =
  with_supervisor @@ fun sup _srv path ->
  Fault.set_spec (Some "serve.conn_drop");
  let fd = connect path in
  send_line fd "{\"op\":\"list-models\"}";
  (* the dying worker closes the connection without an answer *)
  (match recv_line ~timeout:10.0 fd with
   | `Eof -> ()
   | `Line l -> Alcotest.failf "dropped connection answered: %s" l
   | `Timeout -> Alcotest.fail "dropped connection neither closed nor answered");
  close_quiet fd;
  Fault.set_spec None;
  (* restarted worker serves the next client *)
  ignore (roundtrip path "{\"op\":\"list-models\"}" "after restart");
  (* the conn closes (client EOF) slightly before the crashed worker's
     supervisor bumps the restart counter — poll rather than race it *)
  let rec wait_restart n =
    if (Supervisor.stats sup).Supervisor.restarts >= 1 then ()
    else if n = 0 then Alcotest.fail "restart never recorded"
    else begin
      Unix.sleepf 0.01;
      wait_restart (n - 1)
    end
  in
  wait_restart 500

(* ------------------------------------------------------------------ *)
(* Deadline blower (serve.stall): the evaluation overshoots the request
   deadline; the client gets "timeout", not the stale result. *)

let test_stall_timeout () =
  let config = { test_config with request_timeout_ms = 100 } in
  with_supervisor ~config @@ fun sup _srv path ->
  Fault.set_spec (Some "serve.stall");
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  send_line fd "{\"op\":\"model-info\",\"model\":\"alpha\"}";
  expect_kind "stalled request" "timeout" (recv_line ~timeout:10.0 fd);
  Fault.set_spec None;
  let snap = Supervisor.stats sup in
  Alcotest.(check bool) "request timeout recorded" true
    (snap.Supervisor.request_timeouts >= 1);
  (* server unharmed *)
  ignore (roundtrip path "{\"op\":\"stats\"}" "after stall")

(* serve.slow_client forces the partial-frame expiry deterministically *)
let test_slow_client_fault () =
  with_supervisor @@ fun sup _srv path ->
  Fault.set_spec (Some "serve.slow_client");
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  send_raw fd "{\"op\":\"lis";
  expect_kind "slow client" "timeout" (recv_line ~timeout:10.0 fd);
  Fault.set_spec None;
  let snap = Supervisor.stats sup in
  Alcotest.(check bool) "read timeout recorded" true
    (snap.Supervisor.read_timeouts >= 1)

(* ------------------------------------------------------------------ *)
(* Graceful drain: a shutdown request stops accepting, in-flight work
   finishes, the socket file disappears, and stop is idempotent. *)

let test_graceful_drain () =
  with_supervisor @@ fun sup _srv path ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
  send_line fd "{\"op\":\"shutdown\"}";
  ignore (expect_ok "shutdown ack" (recv_line fd));
  Supervisor.stop sup;
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists path);
  (match connect path with
   | fd2 -> close_quiet fd2; Alcotest.fail "connect succeeded after drain"
   | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
     ());
  Supervisor.stop sup;
  Alcotest.(check bool) "draining flag" true
    (Supervisor.stats sup).Supervisor.draining

(* ------------------------------------------------------------------ *)
(* Chaos storm: cycle every serve.* fault while well-formed requests
   keep arriving.  Every surviving request gets a typed answer; the
   server process never dies; a final clean pass works. *)

let test_chaos_storm () =
  with_supervisor @@ fun _sup _srv path ->
  let specs =
    [ Some "serve.conn_drop"; None; Some "serve.slow_client"; None;
      Some "serve.stall"; None ]
  in
  List.iter
    (fun spec ->
      Fault.set_spec spec;
      let fd = connect path in
      Fun.protect ~finally:(fun () -> close_quiet fd) @@ fun () ->
      (match spec with
       | Some "serve.slow_client" ->
         send_raw fd "{\"op\":\"stats\"";
         ignore (expect_line "storm slow" (recv_line ~timeout:10.0 fd))
       | _ ->
         send_line fd "{\"op\":\"stats\"}";
         (* conn_drop closes without answering; everything else must
            produce a well-formed frame *)
         (match recv_line ~timeout:10.0 fd with
          | `Line l ->
            ignore (Sjson.parse l)
          | `Eof when spec = Some "serve.conn_drop" -> ()
          | `Eof -> Alcotest.fail "connection dropped without fault"
          | `Timeout -> Alcotest.fail "storm request unanswered")))
    specs;
  Fault.set_spec None;
  ignore (roundtrip path "{\"op\":\"model-info\",\"model\":\"alpha\"}"
            "after the storm")

(* ------------------------------------------------------------------ *)
(* Streaming fit session over the supervised socket: two connections
   interleave ops on one session id (sticky serialization inside the
   server), and the per-session counters surface exactly through the
   ordinary stats op. *)

let j_num k j =
  match j_mem k j with
  | Sjson.Num x -> x
  | _ -> Alcotest.failf "%S is not a number" k

let session_sample_json (s : Sampling.sample) =
  let p, m = Cmat.dims s.Sampling.s in
  Sjson.Obj
    [ ("freq", Sjson.Num s.Sampling.freq);
      ( "s",
        Sjson.Arr
          (List.init p (fun i ->
               Sjson.Arr
                 (List.init m (fun j ->
                      let z = Cmat.get s.Sampling.s i j in
                      Sjson.Arr [ Sjson.Num z.Cx.re; Sjson.Num z.Cx.im ])))) ) ]

let test_session_over_socket () =
  with_supervisor @@ fun _sup _srv path ->
  let sys = Random_sys.generate (spec 2) in
  let sample f = { Sampling.freq = f; s = Descriptor.eval_freq sys f } in
  let batch ?(holdout = false) sid freqs =
    Sjson.to_string
      (Sjson.Obj
         ([ ("op", Sjson.Str "fit-add-samples");
            ("session", Sjson.Str sid);
            ( "samples",
              Sjson.Arr
                (Array.to_list
                   (Array.map (fun f -> session_sample_json (sample f)) freqs))
            ) ]
          @ if holdout then [ ("holdout", Sjson.Bool true) ] else []))
  in
  let a = connect path in
  Fun.protect ~finally:(fun () -> close_quiet a) @@ fun () ->
  let abuf = Buffer.create 256 in
  send_line a "{\"op\":\"fit-open\",\"ports\":2,\"certify\":\"check\"}";
  let jo = expect_ok "fit-open" (recv_line_buf abuf a) in
  let sid = j_str "session" jo in
  send_line a (batch sid (Sampling.logspace 1e2 1e6 12));
  ignore (expect_ok "batch on conn A" (recv_line_buf abuf a));
  (* a second connection reaches the same session: sticky by id, not
     by transport *)
  let b = connect path in
  Fun.protect ~finally:(fun () -> close_quiet b) @@ fun () ->
  let bbuf = Buffer.create 256 in
  send_line b (batch sid (Sampling.logspace 1.5e2 1.5e6 12));
  let jb = expect_ok "batch on conn B" (recv_line_buf bbuf b) in
  Alcotest.(check (float 0.)) "both batches landed" 24. (j_num "samples" jb);
  send_line b (batch ~holdout:true sid [| 3.3e3; 4.7e4 |]);
  ignore (expect_ok "hold-out on conn B" (recv_line_buf bbuf b));
  send_line b
    (Printf.sprintf "{\"op\":\"fit-suggest\",\"session\":%S,\"count\":2}" sid);
  ignore (expect_ok "suggest on conn B" (recv_line_buf bbuf b));
  (* counters through the ordinary stats op, exact *)
  send_line a "{\"op\":\"stats\"}";
  let js = expect_ok "stats" (recv_line_buf abuf a) in
  let sess = j_mem "sessions" js in
  Alcotest.(check (float 0.)) "opened" 1. (j_num "opened" sess);
  Alcotest.(check (float 0.)) "open" 1. (j_num "open" sess);
  Alcotest.(check (float 0.)) "appended samples" 26.
    (j_num "appended_samples" sess);
  Alcotest.(check (float 0.)) "suggest calls" 1. (j_num "suggest_calls" sess);
  Alcotest.(check (float 0.)) "nothing refused" 0. (j_num "refused" sess);
  Alcotest.(check bool) "bytes accounted" true
    (j_num "resident_bytes" sess > 0.);
  (* finalize on connection A; the packed model serves on connection B *)
  send_line a
    (Printf.sprintf
       "{\"op\":\"fit-finalize\",\"session\":%S,\"model\":\"sess-model\"}" sid);
  ignore (expect_ok "finalize" (recv_line_buf abuf a));
  send_line b "{\"op\":\"model-info\",\"model\":\"sess-model\"}";
  let ji = expect_ok "packed model served" (recv_line_buf bbuf b) in
  Alcotest.(check (float 0.)) "ports" 2. (j_num "inputs" ji);
  send_line b "{\"op\":\"stats\"}";
  let js2 = expect_ok "stats after finalize" (recv_line_buf bbuf b) in
  let sess2 = j_mem "sessions" js2 in
  Alcotest.(check (float 0.)) "finalized" 1. (j_num "finalized" sess2);
  Alcotest.(check (float 0.)) "none open" 0. (j_num "open" sess2)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chaos"
    [ ("supervisor",
       [ Alcotest.test_case "supervised roundtrip" `Quick
           test_supervised_roundtrip;
         Alcotest.test_case "4 clients, 1 stalled" `Quick
           test_four_clients_one_stalled;
         Alcotest.test_case "load shedding" `Quick test_load_shedding;
         Alcotest.test_case "conn drop -> restart" `Quick
           test_conn_drop_restart;
         Alcotest.test_case "stall -> timeout" `Quick test_stall_timeout;
         Alcotest.test_case "slow client fault" `Quick
           test_slow_client_fault;
         Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
         Alcotest.test_case "session over socket" `Quick
           test_session_over_socket;
         Alcotest.test_case "chaos storm" `Quick test_chaos_storm ]) ]
