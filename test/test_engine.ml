(* Tests for the staged fitting engine: incremental Loewner assembly
   (bit-identical to batch builds under any schedule), strategy
   equivalence, resumable stages, datasets, and the unified model. *)

open Linalg
open Statespace
open Mfti

let spec ports seed =
  { Random_sys.order = 10; ports; rank_d = ports; freq_lo = 100.;
    freq_hi = 1e5; damping = 0.1; seed }

let samples ~ports ~seed k =
  let sys = Random_sys.generate (spec ports seed) in
  Sampling.sample_system sys (Sampling.logspace 100. 1e5 k)

let check_cmat msg a b =
  if not (Cmat.equal ~tol:0. a b) then Alcotest.failf "%s: matrices differ" msg

let check_cx_array msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      if not (Float.equal x.Cx.re y.Cx.re && Float.equal x.Cx.im y.Cx.im) then
        Alcotest.failf "%s: entry %d differs" msg i)
    a

let check_pencil msg (p : Loewner.t) (q : Loewner.t) =
  check_cmat (msg ^ " ll") p.Loewner.ll q.Loewner.ll;
  check_cmat (msg ^ " sll") p.Loewner.sll q.Loewner.sll;
  check_cmat (msg ^ " w") p.Loewner.w q.Loewner.w;
  check_cmat (msg ^ " v") p.Loewner.v q.Loewner.v;
  check_cmat (msg ^ " r") p.Loewner.r q.Loewner.r;
  check_cmat (msg ^ " l") p.Loewner.l q.Loewner.l;
  check_cx_array (msg ^ " lambda") p.Loewner.lambda q.Loewner.lambda;
  check_cx_array (msg ^ " mu") p.Loewner.mu q.Loewner.mu;
  Alcotest.(check (array int)) (msg ^ " right sizes")
    p.Loewner.right_sizes q.Loewner.right_sizes;
  Alcotest.(check (array int)) (msg ^ " left sizes")
    p.Loewner.left_sizes q.Loewner.left_sizes

let truncated (data : Tangential.t) n =
  { data with
    Tangential.right = Array.sub data.Tangential.right 0 n;
    left = Array.sub data.Tangential.left 0 n }

(* ------------------------------------------------------------------ *)
(* Incremental builder *)

(* The load-bearing property: a builder extended one block at a time is
   bit-identical to a fresh [Loewner.build] of the same prefix, after
   EVERY append — across port counts and weights.  Tiny initial
   capacities force the growable storage through several regrows. *)
let test_builder_matches_build () =
  List.iter
    (fun (ports, weight, seed) ->
      let smps = samples ~ports ~seed 8 in
      let data = Tangential.build ~weight smps in
      let nblocks = Array.length data.Tangential.right in
      let b =
        Loewner.builder ~right_capacity:1 ~left_capacity:1
          ~inputs:data.Tangential.inputs ~outputs:data.Tangential.outputs ()
      in
      for i = 0 to nblocks - 1 do
        Loewner.append b data.Tangential.right.(i) data.Tangential.left.(i);
        let fresh = Loewner.build (truncated data (i + 1)) in
        check_pencil
          (Printf.sprintf "ports %d prefix %d" ports (i + 1))
          (Loewner.snapshot b) fresh
      done)
    [ (1, Tangential.Full, 1); (2, Tangential.Uniform 1, 2);
      (2, Tangential.Full, 3); (3, Tangential.Uniform 2, 4);
      (3, Tangential.Full, 5) ]

(* Interleaving freedom: right and left blocks may arrive in ANY
   relative order (each side's own order fixed), in any chunking, and
   the snapshot still matches the batch build bitwise — entries are
   filled the moment both their row and column data exist, by a
   per-entry pure formula.  Property-tested over schedules and domain
   counts. *)
let builder_interleaving_prop =
  let schedule ~pattern nblocks =
    (* [pattern.(i mod len)] rights, then one left, cycling; leftovers
       flushed at the end — a deterministic family of skewed orders *)
    let order = ref [] and nr = ref 0 and nl = ref 0 and pi = ref 0 in
    while !nr < nblocks || !nl < nblocks do
      let burst = pattern.(!pi mod Array.length pattern) in
      for _ = 1 to burst do
        if !nr < nblocks then begin
          order := `R !nr :: !order;
          incr nr
        end
      done;
      if !nl < Stdlib.min nblocks !nr then begin
        order := `L !nl :: !order;
        incr nl
      end
      else if !nr >= nblocks && !nl < nblocks then begin
        order := `L !nl :: !order;
        incr nl
      end;
      incr pi
    done;
    List.rev !order
  in
  QCheck.Test.make ~count:24
    ~name:"interleaved appends are bit-identical to the batch build"
    QCheck.(triple (int_range 1 3) (int_range 2 5) (int_range 0 1000))
    (fun (ports, npairs, seed) ->
        let smps = samples ~ports ~seed (2 * npairs) in
        let data = Tangential.build smps in
        let fresh = Loewner.build data in
        let nblocks = Array.length data.Tangential.right in
        let patterns =
          [ [| 1 |]; [| nblocks |]; [| 2; 1 |]; [| 1; 3 |];
            [| (seed mod 3) + 1; 1 |] ]
        in
        List.for_all
          (fun pattern ->
            List.for_all
              (fun ndom ->
                Parallel.set_domain_count ndom;
                Fun.protect
                  ~finally:(fun () -> Parallel.set_domain_count 1)
                  (fun () ->
                    let b =
                      Loewner.builder ~right_capacity:1 ~left_capacity:1
                        ~inputs:data.Tangential.inputs
                        ~outputs:data.Tangential.outputs ()
                    in
                    List.iter
                      (function
                        | `R i ->
                          Loewner.append_right b data.Tangential.right.(i)
                        | `L i ->
                          Loewner.append_left b data.Tangential.left.(i))
                      (schedule ~pattern nblocks);
                    check_pencil
                      (Printf.sprintf "ports %d pairs %d" ports npairs)
                      (Loewner.snapshot b) fresh;
                    true))
              [ 1; 4 ])
          patterns)

(* All lefts before any right: the append_right fill path does all the
   work against a fully populated row side. *)
let test_builder_lefts_first () =
  let smps = samples ~ports:3 ~seed:19 8 in
  let data = Tangential.build smps in
  let b =
    Loewner.builder ~inputs:data.Tangential.inputs
      ~outputs:data.Tangential.outputs ()
  in
  Array.iter (Loewner.append_left b) data.Tangential.left;
  Array.iter (Loewner.append_right b) data.Tangential.right;
  check_pencil "lefts first" (Loewner.snapshot b) (Loewner.build data)

(* Chunking across domains cannot change any bit of the fill. *)
let test_builder_domain_invariance () =
  let smps = samples ~ports:3 ~seed:7 10 in
  let data = Tangential.build smps in
  let build_with n =
    Parallel.set_domain_count n;
    Fun.protect ~finally:(fun () -> Parallel.set_domain_count 1) (fun () ->
        let b = Loewner.of_tangential data in
        Loewner.snapshot b)
  in
  let seq = Parallel.with_sequential (fun () -> Loewner.build data) in
  check_pencil "domains 4 vs sequential" (build_with 4) seq;
  check_pencil "domains 2 vs sequential" (build_with 2) seq

(* The ["loewner.poison"] fault must hit both assembly paths the same
   way: a NaN at entry (0,0) of LL, everything else untouched. *)
let test_builder_fault_parity () =
  let smps = samples ~ports:2 ~seed:11 6 in
  let data = Tangential.build smps in
  let clean = Loewner.build data in
  let batch, incr =
    Fault.with_spec "loewner.poison" (fun () ->
        (Loewner.build data, Loewner.snapshot (Loewner.of_tangential data)))
  in
  List.iter
    (fun (name, (p : Loewner.t)) ->
      Alcotest.(check bool) (name ^ " poisoned at (0,0)") true
        (Float.is_nan (Cmat.get p.Loewner.ll 0 0).Cx.re);
      (match Loewner.check_finite p with
       | Error (Mfti_error.Numerical_breakdown _) -> ()
       | _ -> Alcotest.fail (name ^ ": poison not detected"));
      (* repair the poisoned entry; the rest must match the clean build *)
      Cmat.set p.Loewner.ll 0 0 (Cmat.get clean.Loewner.ll 0 0);
      check_pencil (name ^ " repaired") p clean)
    [ ("batch", batch); ("incremental", incr) ]

(* ------------------------------------------------------------------ *)
(* Strategy equivalence *)

let check_float_array msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      let y = b.(i) in
      if not (Float.is_nan x && Float.is_nan y) && not (Float.equal x y) then
        Alcotest.failf "%s: entry %d differs (%.17g vs %.17g)" msg i x y)
    a

let check_fit_identical msg (a : Engine.fit) (b : Engine.fit) =
  let da = a.Engine.model and db = b.Engine.model in
  check_cmat (msg ^ " E") da.Descriptor.e db.Descriptor.e;
  check_cmat (msg ^ " A") da.Descriptor.a db.Descriptor.a;
  check_cmat (msg ^ " B") da.Descriptor.b db.Descriptor.b;
  check_cmat (msg ^ " C") da.Descriptor.c db.Descriptor.c;
  check_cmat (msg ^ " D") da.Descriptor.d db.Descriptor.d;
  Alcotest.(check int) (msg ^ " rank") a.Engine.rank b.Engine.rank;
  Alcotest.(check int) (msg ^ " iterations") a.Engine.iterations
    b.Engine.iterations;
  Alcotest.(check int) (msg ^ " selected") a.Engine.selected_units
    b.Engine.selected_units;
  check_float_array (msg ^ " history") a.Engine.history b.Engine.history;
  check_float_array (msg ^ " sigma") a.Engine.sigma b.Engine.sigma

(* Incremental Algorithm 2 must produce bit-identical models to the
   batch path, for exact and probed residual scoring. *)
let test_incremental_matches_batch () =
  let smps = samples ~ports:3 ~seed:21 16 in
  List.iter
    (fun probe ->
      let options =
        { Engine.default_recursive_options with
          batch = 2; threshold = 1e-8; max_iterations = 6; probe }
      in
      let run asm =
        Engine.fit ~options ~strategy:(Engine.Recursive asm) smps
      in
      let b = run Engine.Batch and i = run Engine.Incremental in
      Alcotest.(check bool) "took several iterations" true
        (b.Engine.iterations > 1);
      check_fit_identical
        (match probe with None -> "exact" | Some _ -> "probed")
        b i)
    [ None; Some 3 ]

(* The wrappers go through the engine: same models as calling it
   directly with the matching strategy. *)
let test_wrappers_delegate () =
  let smps = samples ~ports:2 ~seed:31 8 in
  let a1 = Algorithm1.fit smps in
  let d = Engine.fit ~strategy:Engine.Direct smps in
  check_fit_identical "algorithm1 = direct" a1 d;
  let vf = Vfti.fit smps in
  let v = Engine.fit ~strategy:Engine.Vector smps in
  check_fit_identical "vfti = vector" vf v

(* ------------------------------------------------------------------ *)
(* Staged pipeline *)

let test_stages_resume () =
  let smps = samples ~ports:2 ~seed:41 8 in
  let dataset = Dataset.of_samples smps in
  let st =
    match Engine.ingest dataset with
    | Ok st -> st
    | Error e -> Alcotest.failf "ingest: %s" (Mfti_error.to_string e)
  in
  Alcotest.(check bool) "ingested" true (Engine.stage st = Engine.Ingested);
  (match Engine.assemble st with
   | Ok () -> ()
   | Error e -> Alcotest.failf "assemble: %s" (Mfti_error.to_string e));
  Alcotest.(check bool) "assembled" true (Engine.stage st = Engine.Assembled);
  Alcotest.(check bool) "pencil available" true (Engine.pencil st <> None);
  (match Engine.realify st with
   | Ok () -> ()
   | Error e -> Alcotest.failf "realify: %s" (Mfti_error.to_string e));
  Alcotest.(check bool) "realified" true (Engine.stage st = Engine.Realified);
  (match Engine.reduce st with
   | Ok () -> ()
   | Error e -> Alcotest.failf "reduce: %s" (Mfti_error.to_string e));
  Alcotest.(check bool) "reduced" true (Engine.stage st = Engine.Reduced);
  let m =
    match Engine.model st with
    | Ok m -> m
    | Error e -> Alcotest.failf "model: %s" (Mfti_error.to_string e)
  in
  (* a second reduce is a no-op: same reduction object *)
  (match Engine.reduce st with
   | Ok () -> ()
   | Error e -> Alcotest.failf "re-reduce: %s" (Mfti_error.to_string e));
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " timed") true
        (List.mem_assoc stage (Engine.timings st)))
    [ "ingest"; "assemble"; "realify"; "reduce" ];
  (* the staged result equals the one-shot driver *)
  let oneshot = Engine.run_exn dataset in
  check_cmat "staged = one-shot A"
    (Engine.Model.descriptor m).Descriptor.a oneshot.Engine.model.Descriptor.a;
  Alcotest.(check bool) "model evaluates" true
    (Cmat.is_finite (Engine.Model.eval_freq m 1e3))

let test_engine_validation () =
  let smps = samples ~ports:2 ~seed:51 6 in
  (match Engine.fit_result
           ~options:{ Engine.default_recursive_options with batch = 0 }
           ~strategy:(Engine.Recursive Engine.Incremental) smps with
   | Error (Mfti_error.Validation _) -> ()
   | _ -> Alcotest.fail "batch = 0 accepted");
  match Engine.fit_result
          ~options:{ Engine.default_options with probe = Some 0 } smps with
  | Error (Mfti_error.Validation _) -> ()
  | _ -> Alcotest.fail "probe = 0 accepted"

(* ------------------------------------------------------------------ *)
(* Dataset *)

let test_dataset_partition () =
  let smps = samples ~ports:2 ~seed:61 12 in
  let d =
    match Dataset.partition ~every:3 (Dataset.of_samples smps) with
    | Ok d -> d
    | Error e -> Alcotest.fail (Mfti_error.to_string e)
  in
  Alcotest.(check int) "fit size" 8 (Dataset.size d);
  Alcotest.(check int) "holdout size" 4 (Dataset.holdout_size d);
  (* held-out samples are exactly positions 2, 5, 8, 11 *)
  Array.iteri
    (fun i h ->
      let expect = smps.((3 * i) + 2) in
      Alcotest.(check (float 0.)) "holdout freq" expect.Sampling.freq
        h.Sampling.freq;
      check_cmat "holdout matrix" expect.Sampling.s h.Sampling.s)
    (Dataset.holdout_samples d);
  (* hold-out drives the error metric *)
  let fitted = Engine.run_exn d in
  let err_holdout =
    Metrics.err fitted.Engine.model (Dataset.holdout_samples d)
  in
  let m = Engine.Model.of_fit fitted in
  Alcotest.(check (float 0.)) "Dataset.err scores the holdout" err_holdout
    (Dataset.err (Engine.Model.descriptor m) d)

(* [every <= 1] must be a typed validation error, not a silent
   acceptance or an untyped exception. *)
let test_dataset_partition_invalid () =
  let smps = samples ~ports:2 ~seed:61 8 in
  let d = Dataset.of_samples smps in
  List.iter
    (fun every ->
      match Dataset.partition ~every d with
      | Error (Mfti_error.Validation { context = "dataset"; _ }) -> ()
      | Ok _ ->
        Alcotest.failf "partition ~every:%d accepted" every
      | Error e ->
        Alcotest.failf "partition ~every:%d: wrong error %s" every
          (Mfti_error.to_string e))
    [ 1; 0; -3 ]

let test_dataset_of_system () =
  let sys = Random_sys.generate (spec 2 71) in
  let d =
    Dataset.of_system sys (Sampling.logspace 100. 1e5 10)
      ~holdout_freqs:(Sampling.logspace 150. 0.9e5 5)
  in
  Alcotest.(check int) "fit" 10 (Dataset.size d);
  Alcotest.(check int) "holdout" 5 (Dataset.holdout_size d);
  Alcotest.(check bool) "validates" true (Dataset.validate d = Ok ())

(* ------------------------------------------------------------------ *)
(* Vector-fitting model wrapper *)

(* ------------------------------------------------------------------ *)
(* Reduce backends *)

(* The rank decision — and the retained spectrum behind it — must not
   depend on which SVD backend ran the reduce stage (randomized,
   blocked Jacobi, exact cascade) nor on the pool size it ran under.
   The randomized path certifies a 1e-10 |A|_F truncation, so retained
   values are compared at 1e-8 relative rather than bit-exactly. *)
let test_backend_rank_invariance () =
  List.iter
    (fun ports ->
      let smps = samples ~ports ~seed:3 12 in
      let run backend domains =
        Parallel.set_domain_count domains;
        Fun.protect
          ~finally:(fun () -> Parallel.set_domain_count 1)
          (fun () ->
            Engine.fit
              ~options:{ Engine.default_options with svd = backend } smps)
      in
      let base = run Svd_reduce.Gk 1 in
      List.iter
        (fun (backend, domains, label) ->
          let f = run backend domains in
          Alcotest.(check int)
            (Printf.sprintf "%d ports: %s rank" ports label)
            base.Engine.rank f.Engine.rank;
          for i = 0 to base.Engine.rank - 1 do
            let s0 = base.Engine.sigma.(i) and s1 = f.Engine.sigma.(i) in
            if abs_float (s0 -. s1) > 1e-8 *. (1. +. s0) then
              Alcotest.failf "%d ports: %s sigma %d differs (%g vs %g)" ports
                label i s0 s1
          done)
        [ (Svd_reduce.Jacobi, 1, "jacobi@1dom");
          (Svd_reduce.Randomized, 1, "rsvd@1dom");
          (Svd_reduce.Randomized, 4, "rsvd@4dom");
          (Svd_reduce.Auto, 4, "auto@4dom") ])
    [ 2; 4; 8 ]

let test_vf_fit_model () =
  let sys = Random_sys.generate (spec 2 81) in
  let smps = Sampling.sample_system sys (Sampling.logspace 100. 1e5 40) in
  let m =
    Vfit.Vf.fit_model
      ~options:{ Vfit.Vf.default_options with n_poles = 12 } smps
  in
  Alcotest.(check int) "rank = pole count" 12 (Engine.Model.rank m);
  Alcotest.(check bool) "err finite" true
    (Float.is_finite (Engine.Model.err m smps));
  Alcotest.(check bool) "fit timed" true
    (List.mem_assoc "fit" (Engine.Model.timings m));
  (match Engine.Model.stats m with
   | Some s -> Alcotest.(check bool) "iterations ran" true (s.Engine.Model.iterations >= 1)
   | None -> Alcotest.fail "stats missing");
  Alcotest.(check bool) "vf site recorded" true
    (Diag.recorded (Engine.Model.diagnostics m) "vf")

let () =
  Alcotest.run "engine"
    [ ( "builder",
        [ QCheck_alcotest.to_alcotest builder_interleaving_prop;
          Alcotest.test_case "lefts before rights (bit)" `Quick
            test_builder_lefts_first;
          Alcotest.test_case "incremental = fresh build (bit)" `Quick
            test_builder_matches_build;
          Alcotest.test_case "domain-count invariant (bit)" `Quick
            test_builder_domain_invariance;
          Alcotest.test_case "loewner.poison parity" `Quick
            test_builder_fault_parity ] );
      ( "strategies",
        [ Alcotest.test_case "incremental = batch recursion (bit)" `Quick
            test_incremental_matches_batch;
          Alcotest.test_case "wrappers delegate to engine" `Quick
            test_wrappers_delegate ] );
      ( "stages",
        [ Alcotest.test_case "resume through stages" `Quick test_stages_resume;
          Alcotest.test_case "option validation" `Quick
            test_engine_validation ] );
      ( "dataset",
        [ Alcotest.test_case "partition" `Quick test_dataset_partition;
          Alcotest.test_case "partition rejects every <= 1" `Quick
            test_dataset_partition_invalid;
          Alcotest.test_case "of_system" `Quick test_dataset_of_system ] );
      ( "reduce backends",
        [ Alcotest.test_case "rank invariant across backends and pools"
            `Quick test_backend_rank_invariance ] );
      ( "vf",
        [ Alcotest.test_case "fit_model wraps vector fitting" `Quick
            test_vf_fit_model ] ) ]
