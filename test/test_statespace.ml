(* Tests for the descriptor-system substrate. *)

open Linalg
open Statespace

let check_small ?(tol = 1e-9) msg x =
  if abs_float x > tol then Alcotest.failf "%s: |%.3g| exceeds tol %.1g" msg x tol

let check_close ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let cx re im = Cx.make re im

(* ------------------------------------------------------------------ *)
(* Descriptor *)

let siso ~pole ~residue ~direct =
  Descriptor.of_state_space
    ~a:(Cmat.scalar (Cx.of_float pole))
    ~b:(Cmat.scalar Cx.one)
    ~c:(Cmat.scalar (Cx.of_float residue))
    ~d:(Cmat.scalar (Cx.of_float direct))

let test_eval_siso () =
  let sys = siso ~pole:(-2.) ~residue:3. ~direct:0.5 in
  (* H(s) = 3/(s+2) + 0.5 *)
  let h = Descriptor.eval sys (Cx.of_float 1.) in
  check_close "H(1)" (3. /. 3. +. 0.5) (Cmat.get h 0 0).Cx.re;
  let h0 = Descriptor.dc_gain sys in
  check_close "H(0)" 2. (Cmat.get h0 0 0).Cx.re;
  let hj = Descriptor.eval sys Cx.j in
  (* 3/(j+2) + 0.5 = 3(2-j)/5 + 0.5 *)
  check_close "H(j) re" ((6. /. 5.) +. 0.5) (Cmat.get hj 0 0).Cx.re;
  check_close "H(j) im" (-3. /. 5.) (Cmat.get hj 0 0).Cx.im

let test_create_validation () =
  let bad () =
    Descriptor.create
      ~e:(Cmat.identity 2) ~a:(Cmat.identity 3)
      ~b:(Cmat.zeros 2 1) ~c:(Cmat.zeros 1 2) ~d:(Cmat.zeros 1 1)
  in
  (match bad () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "dimension mismatch accepted");
  let bad_d () =
    Descriptor.create
      ~e:(Cmat.identity 2) ~a:(Cmat.identity 2)
      ~b:(Cmat.zeros 2 1) ~c:(Cmat.zeros 1 2) ~d:(Cmat.zeros 2 2)
  in
  match bad_d () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad D accepted"

let test_eval_conjugate_symmetry () =
  let sys = Random_sys.generate { Random_sys.default_spec with seed = 5 } in
  let freqs = Sampling.logspace 10. 1e5 7 in
  check_small ~tol:1e-10 "H(-jw) = conj H(jw)"
    (Sampling.max_conjugate_mismatch sys freqs)

let test_singular_e_descriptor () =
  (* E = diag(1, 0): second state is algebraic, x2 = -b2 u / a22 acts as
     feedthrough.  H(s) = c1 b1 / (s - a11) - c2 b2 / a22. *)
  let e = Cmat.of_rows [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.zero ] ] in
  let a = Cmat.of_rows [ [ cx (-1.) 0.; Cx.zero ]; [ Cx.zero; cx (-2.) 0. ] ] in
  let b = Cmat.of_rows [ [ Cx.one ]; [ Cx.one ] ] in
  let c = Cmat.of_rows [ [ cx 4. 0.; cx 6. 0. ] ] in
  let d = Cmat.zeros 1 1 in
  let sys = Descriptor.create ~e ~a ~b ~c ~d in
  (* H(s) = 4/(s+1) + 6/2 = 4/(s+1) + 3 *)
  let h0 = (Cmat.get (Descriptor.dc_gain sys) 0 0).Cx.re in
  check_close "singular-E dc" 7. h0;
  let poles = Poles.finite_poles sys in
  Alcotest.(check int) "one finite pole" 1 (Array.length poles);
  check_close ~tol:1e-8 "pole at -1" (-1.) (Cx.re poles.(0));
  check_small ~tol:1e-8 "pole imaginary" (Cx.im poles.(0))

let test_is_real () =
  let sys = Random_sys.generate Random_sys.default_spec in
  Alcotest.(check bool) "random system is real" true (Descriptor.is_real sys);
  let complex_sys =
    Descriptor.of_state_space
      ~a:(Cmat.scalar (cx (-1.) 1.)) ~b:(Cmat.scalar Cx.one)
      ~c:(Cmat.scalar Cx.one) ~d:(Cmat.scalar Cx.zero)
  in
  Alcotest.(check bool) "complex flagged" false (Descriptor.is_real complex_sys)

let test_to_proper () =
  (* singular-E system: H(s) = 4/(s+1) + 3; to_proper must expose D = 3 *)
  let e = Cmat.of_rows [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.zero ] ] in
  let a = Cmat.of_rows [ [ cx (-1.) 0.; Cx.zero ]; [ Cx.zero; cx (-2.) 0. ] ] in
  let b = Cmat.of_rows [ [ Cx.one ]; [ Cx.one ] ] in
  let c = Cmat.of_rows [ [ cx 4. 0.; cx 6. 0. ] ] in
  let sys = Descriptor.create ~e ~a ~b ~c ~d:(Cmat.zeros 1 1) in
  let proper = Descriptor.to_proper sys in
  Alcotest.(check int) "order reduced" 1 (Descriptor.order proper);
  check_close "explicit feedthrough" 3. (Cmat.get proper.Descriptor.d 0 0).Cx.re;
  List.iter
    (fun f ->
      let h1 = Descriptor.eval_freq sys f and h2 = Descriptor.eval_freq proper f in
      check_small ~tol:1e-12 "transfer preserved"
        (Cmat.norm_fro (Cmat.sub h1 h2)))
    [ 0.001; 0.1; 5. ];
  (* full-rank E is returned untouched *)
  let full = Random_sys.generate Random_sys.default_spec in
  let same = Descriptor.to_proper full in
  Alcotest.(check int) "no-op on regular E" (Descriptor.order full)
    (Descriptor.order same)

let test_to_proper_higher_index_rejected () =
  (* E = [[0,1],[0,0]]-style nilpotent with singular algebraic block *)
  let e = Cmat.of_rows [ [ Cx.zero; Cx.one ]; [ Cx.zero; Cx.zero ] ] in
  let a = Cmat.identity 2 in
  let a = Cmat.mapi (fun i jcol x -> if i = 1 && jcol = 1 then Cx.zero else x) a in
  let sys =
    Descriptor.create ~e ~a ~b:(Cmat.of_rows [ [ Cx.one ]; [ Cx.one ] ])
      ~c:(Cmat.of_rows [ [ Cx.one; Cx.one ] ]) ~d:(Cmat.zeros 1 1)
  in
  match Descriptor.to_proper sys with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "higher-index descriptor accepted"

(* ------------------------------------------------------------------ *)
(* Sampling *)

let test_linspace () =
  let g = Sampling.linspace 1. 5. 5 in
  Alcotest.(check int) "count" 5 (Array.length g);
  check_close "first" 1. g.(0);
  check_close "last" 5. g.(4);
  check_close "step" 2. g.(1) ~tol:1.

let test_logspace () =
  let g = Sampling.logspace 1. 1e4 5 in
  check_close "first" 1. g.(0);
  check_close ~tol:1e-9 "last" 1e4 g.(4);
  check_close ~tol:1e-9 "middle" 100. g.(2)

let test_clustered () =
  let g = Sampling.clustered ~lo:10. ~hi:1e5 ~split:1e4 ~fraction:0.8 100 in
  Alcotest.(check int) "count" 100 (Array.length g);
  let high = Array.to_list g |> List.filter (fun f -> f > 1e4) in
  Alcotest.(check bool) "concentrated high" true (List.length high >= 75);
  Array.iter (fun f -> Alcotest.(check bool) "in range" true (f >= 10. && f <= 1e5)) g

let test_sample_system_dims () =
  let sys = Random_sys.generate { Random_sys.default_spec with ports = 3 } in
  let samples = Sampling.sample_system sys (Sampling.logspace 10. 1e5 4) in
  Alcotest.(check int) "count" 4 (Array.length samples);
  Alcotest.(check (pair int int)) "dims" (3, 3) (Sampling.port_dims samples)

let test_port_dims_errors () =
  (match Sampling.port_dims [||] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty accepted");
  let mixed =
    [| { Sampling.freq = 1.; s = Cmat.identity 2 };
       { Sampling.freq = 2.; s = Cmat.identity 3 } |]
  in
  match Sampling.port_dims mixed with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inconsistent accepted"

let test_interpolate () =
  (* a linear-in-frequency fake response interpolates exactly *)
  let samples =
    Array.init 5 (fun k ->
        let f = float_of_int (k + 1) *. 100. in
        { Sampling.freq = f; s = Cmat.scalar (cx f (2. *. f)) })
  in
  let out = Sampling.interpolate samples [| 150.; 320.; 500. |] in
  check_close ~tol:1e-9 "mid 150" 150. (Cmat.get out.(0).Sampling.s 0 0).Cx.re;
  check_close ~tol:1e-9 "mid 320 im" 640. (Cmat.get out.(1).Sampling.s 0 0).Cx.im;
  check_close ~tol:1e-9 "endpoint" 500. (Cmat.get out.(2).Sampling.s 0 0).Cx.re;
  (* clamping outside the band *)
  let out = Sampling.interpolate samples [| 10.; 9999. |] in
  check_close "clamp low" 100. (Cmat.get out.(0).Sampling.s 0 0).Cx.re;
  check_close "clamp high" 500. (Cmat.get out.(1).Sampling.s 0 0).Cx.re;
  (* unsorted rejected *)
  let bad = [| samples.(2); samples.(0) |] in
  match Sampling.interpolate bad [| 150. |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsorted accepted"

let test_symmetrize () =
  let s = Cmat.of_rows [ [ cx 1. 0.; cx 2. 1. ]; [ cx 4. (-1.); cx 5. 0. ] ] in
  let out = Sampling.symmetrize [| { Sampling.freq = 1.; s } |] in
  let sym = out.(0).Sampling.s in
  check_small ~tol:1e-12 "symmetric"
    (Cmat.norm_fro (Cmat.sub sym (Cmat.transpose sym)));
  check_close "off-diagonal average" 3. (Cmat.get sym 0 1).Cx.re

let test_save_load_round_trip () =
  let sys = Random_sys.generate { Random_sys.default_spec with order = 9; seed = 44 } in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "mfti_model_test.txt" in
  Descriptor.save path sys;
  let back = Descriptor.load path in
  Sys.remove path;
  Alcotest.(check int) "order" (Descriptor.order sys) (Descriptor.order back);
  List.iter
    (fun f ->
      let h1 = Descriptor.eval_freq sys f and h2 = Descriptor.eval_freq back f in
      check_small ~tol:1e-12 "transfer preserved"
        (Cmat.norm_fro (Cmat.sub h1 h2)))
    [ 100.; 1e4 ];
  Alcotest.(check bool) "exact matrices" true
    (Cmat.equal ~tol:0. sys.Descriptor.a back.Descriptor.a)

let test_load_rejects_garbage () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "mfti_bad_model.txt" in
  let oc = open_out path in
  output_string oc "not a model\n";
  close_out oc;
  (match Descriptor.load path with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "garbage accepted");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Random_sys *)

let test_random_sys_shape () =
  let spec = { Random_sys.default_spec with order = 17; ports = 4; rank_d = 2 } in
  let sys = Random_sys.generate spec in
  Alcotest.(check int) "order" 17 (Descriptor.order sys);
  Alcotest.(check int) "inputs" 4 (Descriptor.inputs sys);
  Alcotest.(check int) "outputs" 4 (Descriptor.outputs sys)

let test_random_sys_stable () =
  let sys = Random_sys.generate { Random_sys.default_spec with order = 30; seed = 9 } in
  Alcotest.(check bool) "stable" true (Poles.is_stable sys);
  Alcotest.(check bool) "abscissa negative" true (Poles.spectral_abscissa sys < 0.)

let test_random_sys_rank_d () =
  let spec = { Random_sys.default_spec with ports = 5; rank_d = 3; seed = 2 } in
  let sys = Random_sys.generate spec in
  let d = Svd.decompose sys.Descriptor.d in
  Alcotest.(check int) "rank D" 3 (Svd.rank ~rtol:1e-10 d)

let test_random_sys_reproducible () =
  let s1 = Random_sys.generate { Random_sys.default_spec with seed = 77 } in
  let s2 = Random_sys.generate { Random_sys.default_spec with seed = 77 } in
  Alcotest.(check bool) "same A" true
    (Cmat.equal ~tol:0. s1.Descriptor.a s2.Descriptor.a);
  Alcotest.(check bool) "same B" true
    (Cmat.equal ~tol:0. s1.Descriptor.b s2.Descriptor.b)

let test_example1_spec () =
  let sys = Random_sys.example1 () in
  Alcotest.(check int) "order 150" 150 (Descriptor.order sys);
  Alcotest.(check int) "30 ports" 30 (Descriptor.inputs sys);
  let d = Svd.decompose sys.Descriptor.d in
  Alcotest.(check int) "full-rank D" 30 (Svd.rank ~rtol:1e-10 d);
  Alcotest.(check bool) "stable" true (Poles.is_stable sys)

(* ------------------------------------------------------------------ *)
(* Poles *)

let test_poles_match_eigenvalues () =
  let sys = Random_sys.generate { Random_sys.default_spec with order = 12; seed = 3 } in
  let poles = Poles.finite_poles sys in
  let eigs = Eig.eigenvalues sys.Descriptor.a in
  Alcotest.(check int) "count" 12 (Array.length poles);
  (* conjugate pairs share a modulus, so match each pole to its nearest
     eigenvalue rather than relying on a sort order *)
  Array.iter
    (fun p ->
      let best =
        Array.fold_left
          (fun acc e -> Stdlib.min acc (Cx.abs (Cx.sub p e)))
          infinity eigs
      in
      check_small ~tol:1e-6 "pole matches eig" (best /. (1. +. Cx.abs p)))
    poles

let test_reflect_unstable () =
  let poles = [| cx 1. 2.; cx (-3.) 1.; cx 0.5 0. |] in
  let r = Poles.reflect_unstable poles in
  check_close "flipped re" (-1.) (Cx.re r.(0));
  check_close "kept im" 2. (Cx.im r.(0));
  check_close "stable untouched" (-3.) (Cx.re r.(1));
  check_close "real flipped" (-0.5) (Cx.re r.(2))

(* ------------------------------------------------------------------ *)
(* Timedomain *)

let test_step_response_rc () =
  (* x' = -x/tau + u/tau, y = x: first-order lag, step -> 1 - exp(-t/tau) *)
  let tau = 0.5 in
  let sys =
    Descriptor.of_state_space
      ~a:(Cmat.scalar (Cx.of_float (-1. /. tau)))
      ~b:(Cmat.scalar (Cx.of_float (1. /. tau)))
      ~c:(Cmat.scalar Cx.one)
      ~d:(Cmat.scalar Cx.zero)
  in
  let dt = 0.001 and steps = 1000 in
  let r = Timedomain.step_response sys ~port:0 ~dt ~steps in
  Alcotest.(check int) "length" (steps + 1) (Array.length r.Timedomain.times);
  for k = 0 to steps do
    let t = r.Timedomain.times.(k) in
    let expected = 1. -. exp (-.t /. tau) in
    let got = (Cmat.get r.Timedomain.outputs 0 k).Cx.re in
    check_small ~tol:2e-4 "rc step" (got -. expected)
  done

let test_simulate_input_validation () =
  let sys = siso ~pole:(-1.) ~residue:1. ~direct:0. in
  (match Timedomain.simulate sys ~input:(fun _ -> Cmat.zeros 2 1) ~dt:0.1 ~steps:2 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "wrong input dims accepted");
  match Timedomain.simulate sys ~input:(fun _ -> Cmat.zeros 1 1) ~dt:(-1.) ~steps:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative dt accepted"

let test_simulate_sine_steady_state () =
  (* drive a stable SISO system with a sine; after transients the output
     amplitude must match |H(jw)|. *)
  let sys = siso ~pole:(-10.) ~residue:10. ~direct:0. in
  let w = 5. in
  let input t = Cmat.scalar (Cx.of_float (sin (w *. t))) in
  let dt = 0.002 and steps = 4000 in
  let r = Timedomain.simulate sys ~input ~dt ~steps in
  (* steady-state amplitude in the last quarter of the run *)
  let amp = ref 0. in
  for k = 3 * steps / 4 to steps do
    amp := Stdlib.max !amp (abs_float (Cmat.get r.Timedomain.outputs 0 k).Cx.re)
  done;
  let h = Descriptor.eval sys (Cx.jw w) in
  let expected = Cx.abs (Cmat.get h 0 0) in
  check_small ~tol:0.01 "steady-state gain" (!amp -. expected)

let test_integrator_agreement () =
  (* all three integrators converge to the same trajectory; the 2nd-order
     ones are markedly more accurate at a coarse step *)
  let sys = siso ~pole:(-10.) ~residue:10. ~direct:0. in
  let analytic t = 1. -. exp (-10. *. t) in
  let error method_ dt =
    let steps = int_of_float (0.5 /. dt) in
    let r = Timedomain.step_response ~method_ sys ~port:0 ~dt ~steps in
    (* skip the region polluted by the shared backward-Euler startup *)
    let worst = ref 0. in
    for k = 20 to steps do
      let t = r.Timedomain.times.(k) in
      let y = (Cmat.get r.Timedomain.outputs 0 k).Cx.re in
      worst := Stdlib.max !worst (abs_float (y -. analytic t))
    done;
    !worst
  in
  let dt = 0.01 in
  let e_trap = error Timedomain.Trapezoidal dt in
  let e_be = error Timedomain.Backward_euler dt in
  let e_bdf2 = error Timedomain.Bdf2 dt in
  Alcotest.(check bool)
    (Printf.sprintf "trapezoidal (%.1e) beats BE (%.1e)" e_trap e_be)
    true (e_trap < e_be /. 3.);
  Alcotest.(check bool)
    (Printf.sprintf "bdf2 (%.1e) beats BE (%.1e)" e_bdf2 e_be)
    true (e_bdf2 < e_be /. 3.);
  check_small ~tol:2e-3 "bdf2 accurate" e_bdf2

let test_integrator_convergence_order () =
  (* halving dt must cut the BDF2 error by ~4x and BE by ~2x *)
  let sys = siso ~pole:(-3.) ~residue:3. ~direct:0. in
  let analytic t = 1. -. exp (-3. *. t) in
  let error method_ dt =
    let steps = int_of_float (1.0 /. dt) in
    let r = Timedomain.step_response ~method_ sys ~port:0 ~dt ~steps in
    let y = (Cmat.get r.Timedomain.outputs 0 steps).Cx.re in
    abs_float (y -. analytic r.Timedomain.times.(steps))
  in
  let ratio method_ = error method_ 0.02 /. error method_ 0.01 in
  Alcotest.(check bool) "BE is first order" true
    (ratio Timedomain.Backward_euler > 1.6 && ratio Timedomain.Backward_euler < 2.6);
  Alcotest.(check bool) "BDF2 is second order" true
    (ratio Timedomain.Bdf2 > 3. && ratio Timedomain.Bdf2 < 5.5)

let test_waveforms () =
  let open Timedomain.Waveform in
  let s = step ~t0:1. () in
  check_close "step before" 0. (s 0.5);
  check_close "step after" 1. (s 1.5);
  let p = pulse ~t0:0. ~rise:1. ~width:2. () in
  check_close "pulse mid-rise" 0.5 (p 0.5);
  check_close "pulse top" 1. (p 2.);
  check_close "pulse mid-fall" 0.5 (p 3.5);
  check_close "pulse done" 0. (p 5.);
  let r = ramp ~rise:2. ~amplitude:4. () in
  check_close "ramp mid" 2. (r 1.);
  check_close "ramp saturated" 4. (r 10.);
  let w = sine ~freq:1. ~amplitude:2. () in
  check_close ~tol:1e-12 "sine quarter" 2. (w 0.25);
  (* prbs: levels stay in [0, amplitude]; deterministic *)
  let b1 = prbs ~seed:3 ~bit_period:1. ~rise:0.1 () in
  let b2 = prbs ~seed:3 ~bit_period:1. ~rise:0.1 () in
  for k = 0 to 50 do
    let t = 0.13 *. float_of_int k in
    check_close "prbs deterministic" (b1 t) (b2 t);
    Alcotest.(check bool) "prbs in range" true (b1 t >= 0. && b1 t <= 1.)
  done;
  let u = on_port ~ports:3 ~port:1 s in
  let v = u 2. in
  check_close "on_port hit" 1. (Cmat.get v 1 0).Cx.re;
  check_close "on_port miss" 0. (Cmat.get v 0 0).Cx.re

(* ------------------------------------------------------------------ *)
(* Reduction (balanced truncation) *)

let reduction_system =
  Random_sys.generate
    { Random_sys.order = 30; ports = 2; rank_d = 2; freq_lo = 100.;
      freq_hi = 1e4; damping = 0.15; seed = 55 }

let sampled_max_error a b freqs =
  Array.fold_left
    (fun acc f ->
      let ha = Descriptor.eval_freq a f and hb = Descriptor.eval_freq b f in
      Stdlib.max acc (Svd.norm2 (Cmat.sub ha hb)))
    0. freqs

let test_reduction_bound () =
  let r = Reduction.balanced_truncation ~order:12 reduction_system in
  Alcotest.(check int) "retained" 12 r.Reduction.retained;
  Alcotest.(check int) "model order" 12 (Descriptor.order r.Reduction.model);
  (* H-infinity bound holds at every sampled frequency *)
  let freqs = Sampling.logspace 1. 1e6 60 in
  let worst = sampled_max_error reduction_system r.Reduction.model freqs in
  Alcotest.(check bool)
    (Printf.sprintf "error %.3e within bound %.3e" worst r.Reduction.error_bound)
    true (worst <= r.Reduction.error_bound +. 1e-12)

let test_reduction_hankel_descending () =
  let r = Reduction.balanced_truncation ~order:5 reduction_system in
  let h = r.Reduction.hankel in
  Alcotest.(check int) "all values" 30 (Array.length h);
  for i = 0 to Array.length h - 2 do
    Alcotest.(check bool) "descending" true (h.(i) >= h.(i + 1))
  done

let test_reduction_auto_is_accurate () =
  (* default rtol keeps everything numerically relevant: near-exact *)
  let r = Reduction.balanced_truncation reduction_system in
  let freqs = Sampling.logspace 10. 1e5 25 in
  let worst = sampled_max_error reduction_system r.Reduction.model freqs in
  check_small ~tol:1e-6 "near exact" worst;
  Alcotest.(check bool) "reduced or equal" true (r.Reduction.retained <= 30)

let test_reduction_stability_preserved () =
  (* balanced truncation of a stable system is stable *)
  let r = Reduction.balanced_truncation ~order:7 reduction_system in
  Alcotest.(check bool) "stable" true (Poles.is_stable r.Reduction.model)

let test_reduction_singular_e_via_proper () =
  (* the algebraic state is eliminated by to_proper; the reduced model
     must keep the exact transfer (4/(s+1) + 3 from the singular-E test
     system above) including the implicit feedthrough *)
  let e = Cmat.of_rows [ [ Cx.one; Cx.zero ]; [ Cx.zero; Cx.zero ] ] in
  let sys =
    Descriptor.create ~e
      ~a:(Cmat.of_rows [ [ cx (-1.) 0.; Cx.zero ]; [ Cx.zero; cx (-2.) 0. ] ])
      ~b:(Cmat.of_rows [ [ Cx.one ]; [ Cx.one ] ])
      ~c:(Cmat.of_rows [ [ cx 4. 0.; cx 6. 0. ] ])
      ~d:(Cmat.zeros 1 1)
  in
  let r = Reduction.balanced_truncation sys in
  Alcotest.(check int) "one dynamic state" 1 r.Reduction.retained;
  List.iter
    (fun f ->
      check_small ~tol:1e-9 "transfer preserved"
        (sampled_max_error sys r.Reduction.model [| f |]))
    [ 0.01; 0.3; 2. ]

let test_reduction_scaled_e_equivalent () =
  (* E = 2I is absorbed exactly *)
  let s = reduction_system in
  let sys2 =
    Descriptor.create
      ~e:(Cmat.scale_float 2. (Cmat.identity 30))
      ~a:(Cmat.scale_float 2. s.Descriptor.a)
      ~b:(Cmat.scale_float 2. s.Descriptor.b)
      ~c:s.Descriptor.c ~d:s.Descriptor.d
  in
  let r1 = Reduction.balanced_truncation ~order:10 s in
  let r2 = Reduction.balanced_truncation ~order:10 sys2 in
  let freqs = Sampling.logspace 10. 1e5 9 in
  check_small ~tol:1e-7 "same reduced transfer"
    (sampled_max_error r1.Reduction.model r2.Reduction.model freqs)

(* ------------------------------------------------------------------ *)
(* Stabilize *)

let test_stabilize_flips () =
  (* one unstable real pole and one unstable pair *)
  let a = Cmat.of_rows
      [ [ cx 2. 0.; Cx.zero; Cx.zero ];
        [ Cx.zero; cx 0.5 0.; cx 30. 0. ];
        [ Cx.zero; cx (-30.) 0.; cx 0.5 0. ] ]
  in
  let sys =
    Descriptor.of_state_space ~a ~b:(Cmat.of_rows [ [ Cx.one ]; [ Cx.one ]; [ Cx.zero ] ])
      ~c:(Cmat.of_rows [ [ Cx.one; Cx.one; Cx.one ] ]) ~d:(Cmat.zeros 1 1)
  in
  let r = Stabilize.reflect sys in
  Alcotest.(check int) "three flips" 3 r.Stabilize.flipped;
  Alcotest.(check bool) "now stable" true (Poles.is_stable r.Stabilize.model);
  (* reflected poles keep their imaginary parts and |Re| *)
  let poles = Poles.finite_poles r.Stabilize.model in
  Alcotest.(check bool) "mirror of +2" true
    (Array.exists (fun p -> Cx.abs (Cx.sub p (cx (-2.) 0.)) < 1e-6) poles);
  Alcotest.(check bool) "mirror of 0.5+30j" true
    (Array.exists (fun p -> Cx.abs (Cx.sub p (cx (-0.5) 30.)) < 1e-4) poles)

let test_stabilize_noop_when_stable () =
  let sys = reduction_system in
  let r = Stabilize.reflect sys in
  Alcotest.(check int) "no flips" 0 r.Stabilize.flipped;
  let freqs = Sampling.logspace 10. 1e5 7 in
  check_small ~tol:1e-9 "transfer unchanged"
    (sampled_max_error sys r.Stabilize.model freqs)

let test_stabilize_preserves_far_response () =
  (* a mildly unstable mode buried among stable ones: after flipping,
     the response away from that resonance barely changes *)
  let base = reduction_system in
  let a = Cmat.copy base.Descriptor.a in
  (* replace the last resonant pair with an unstable one: 100 +- 1e4 j *)
  Cmat.set a 28 28 (cx 100. 0.);
  Cmat.set a 28 29 (cx 1e4 0.);
  Cmat.set a 29 28 (cx (-1e4) 0.);
  Cmat.set a 29 29 (cx 100. 0.);
  let sys =
    Descriptor.of_state_space ~a ~b:base.Descriptor.b ~c:base.Descriptor.c
      ~d:base.Descriptor.d
  in
  let r = Stabilize.reflect sys in
  Alcotest.(check bool) "stable" true (Poles.is_stable r.Stabilize.model);
  Alcotest.(check bool) "some flips" true (r.Stabilize.flipped >= 1)

let test_stabilize_residual_refusal () =
  (* a near-defective unstable pair (eigenvalues 1 and 1 + 1e-8 coupled
     by 1e8): the eigenvector matrix is catastrophically conditioned,
     so the modal reconstruction residual cannot be small and a
     reflection built on it would be untrustworthy.  With a trust
     threshold set, the refusal must be the typed error — never
     [Invalid_argument], never a silently wrong model. *)
  let a =
    Cmat.of_rows [ [ cx 1. 0.; cx 1e8 0. ]; [ Cx.zero; cx (1. +. 1e-8) 0. ] ]
  in
  let sys =
    Descriptor.of_state_space ~a
      ~b:(Cmat.of_rows [ [ Cx.one ]; [ Cx.one ] ])
      ~c:(Cmat.of_rows [ [ Cx.one; Cx.one ] ])
      ~d:(Cmat.zeros 1 1)
  in
  (match Stabilize.reflect ~max_residual:1e-12 sys with
   | _ -> Alcotest.fail "untrustworthy modal decomposition accepted"
   | exception Mfti_error.Error (Mfti_error.Numerical_breakdown nb) ->
     Alcotest.(check string) "context" "stabilize" nb.context;
     (match nb.condition with
      | Some r -> Alcotest.(check bool) "residual reported" true (r > 1e-12)
      | None -> Alcotest.fail "residual missing from the error"));
  (* the default threshold (infinity) keeps legacy callers working *)
  let r = Stabilize.reflect sys in
  Alcotest.(check bool) "default threshold still flips" true
    (r.Stabilize.flipped >= 1)

(* ------------------------------------------------------------------ *)
(* Property-based tests *)

let prop_simulation_linearity =
  let gen =
    QCheck.Gen.(int_range 2 10 >>= fun order -> int_bound 10_000 >|= fun s ->
                (order, s))
  in
  QCheck.Test.make ~name:"transient response is linear in the input"
    ~count:15
    (QCheck.make gen ~print:(fun (o, s) -> Printf.sprintf "order=%d seed=%d" o s))
    (fun (order, seed) ->
      let sys =
        Random_sys.generate
          { Random_sys.default_spec with order; ports = 1; rank_d = 1; seed }
      in
      let wave = Timedomain.Waveform.sine ~freq:1e3 () in
      let dt = 1e-5 and steps = 50 in
      let run scale =
        Timedomain.simulate sys
          ~input:(fun t -> Cmat.scalar (Cx.of_float (scale *. wave t)))
          ~dt ~steps
      in
      let r1 = run 1. and r3 = run 3. in
      let ok = ref true in
      for k = 0 to steps do
        let y1 = (Cmat.get r1.Timedomain.outputs 0 k).Cx.re in
        let y3 = (Cmat.get r3.Timedomain.outputs 0 k).Cx.re in
        if abs_float (y3 -. (3. *. y1)) > 1e-8 *. (1. +. abs_float y3) then
          ok := false
      done;
      !ok)

let prop_eval_conjugate =
  QCheck.Test.make ~name:"H(conj s) = conj H(s) for random real systems"
    ~count:20
    (QCheck.make QCheck.Gen.(int_bound 10_000) ~print:string_of_int)
    (fun seed ->
      let sys = Random_sys.generate { Random_sys.default_spec with seed } in
      let s = Cx.jw 12345.6 in
      let hp = Descriptor.eval sys s and hm = Descriptor.eval sys (Cx.conj s) in
      Cmat.norm_fro (Cmat.sub hm (Cmat.conj hp))
      <= 1e-9 *. (1. +. Cmat.norm_fro hp))

let statespace_props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_simulation_linearity; prop_eval_conjugate ]

let () =
  Alcotest.run "statespace"
    [ ("descriptor",
       [ Alcotest.test_case "eval siso" `Quick test_eval_siso;
         Alcotest.test_case "create validation" `Quick test_create_validation;
         Alcotest.test_case "conjugate symmetry" `Quick test_eval_conjugate_symmetry;
         Alcotest.test_case "singular E" `Quick test_singular_e_descriptor;
         Alcotest.test_case "to_proper" `Quick test_to_proper;
         Alcotest.test_case "to_proper index check" `Quick test_to_proper_higher_index_rejected;
         Alcotest.test_case "is_real" `Quick test_is_real ]);
      ("sampling",
       [ Alcotest.test_case "linspace" `Quick test_linspace;
         Alcotest.test_case "logspace" `Quick test_logspace;
         Alcotest.test_case "clustered" `Quick test_clustered;
         Alcotest.test_case "sample dims" `Quick test_sample_system_dims;
         Alcotest.test_case "port_dims errors" `Quick test_port_dims_errors;
         Alcotest.test_case "interpolate" `Quick test_interpolate;
         Alcotest.test_case "symmetrize" `Quick test_symmetrize ]);
      ("model io",
       [ Alcotest.test_case "save/load round trip" `Quick test_save_load_round_trip;
         Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage ]);
      ("random_sys",
       [ Alcotest.test_case "shape" `Quick test_random_sys_shape;
         Alcotest.test_case "stability" `Quick test_random_sys_stable;
         Alcotest.test_case "rank of D" `Quick test_random_sys_rank_d;
         Alcotest.test_case "reproducible" `Quick test_random_sys_reproducible;
         Alcotest.test_case "example1 spec" `Quick test_example1_spec ]);
      ("poles",
       [ Alcotest.test_case "match eigenvalues" `Quick test_poles_match_eigenvalues;
         Alcotest.test_case "reflect unstable" `Quick test_reflect_unstable ]);
      ("timedomain",
       [ Alcotest.test_case "rc step response" `Quick test_step_response_rc;
         Alcotest.test_case "input validation" `Quick test_simulate_input_validation;
         Alcotest.test_case "sine steady state" `Quick test_simulate_sine_steady_state;
         Alcotest.test_case "integrator agreement" `Quick test_integrator_agreement;
         Alcotest.test_case "convergence order" `Quick test_integrator_convergence_order;
         Alcotest.test_case "waveforms" `Quick test_waveforms ]);
      ("reduction",
       [ Alcotest.test_case "error bound" `Quick test_reduction_bound;
         Alcotest.test_case "hankel descending" `Quick test_reduction_hankel_descending;
         Alcotest.test_case "auto accuracy" `Quick test_reduction_auto_is_accurate;
         Alcotest.test_case "stability preserved" `Quick test_reduction_stability_preserved;
         Alcotest.test_case "singular E via to_proper" `Quick test_reduction_singular_e_via_proper;
         Alcotest.test_case "scaled E equivalent" `Quick test_reduction_scaled_e_equivalent ]);
      ("stabilize",
       [ Alcotest.test_case "flips unstable" `Quick test_stabilize_flips;
         Alcotest.test_case "no-op when stable" `Quick test_stabilize_noop_when_stable;
         Alcotest.test_case "buried unstable mode" `Quick test_stabilize_preserves_far_response;
         Alcotest.test_case "untrustworthy residual refusal" `Quick test_stabilize_residual_refusal ]);
      ("properties", statespace_props) ]
