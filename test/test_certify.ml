(* Tests for the certification pipeline: stability + passivity checks,
   perturbative repair, typed refusals, fault-site determinism, the
   engine's certify stage, version-2 artifacts (with version-1
   backward compatibility) and the serving layer's admission policy. *)

open Linalg
open Statespace
open Mfti

let cx re im = Cx.make re im

let check_close ?(tol = 1e-9) msg expected actual =
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let fail_error what e = Alcotest.failf "%s: %s" what (Mfti_error.to_string e)

let same_float what x y =
  if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)) then
    Alcotest.failf "%s: %h <> %h" what x y

(* ------------------------------------------------------------------ *)
(* Fixtures *)

(* S(s) = g/(s+1): passive for g <= 1, worst margin g - 1 at DC *)
let siso_gain g =
  Descriptor.of_state_space
    ~a:(Cmat.scalar (cx (-1.) 0.)) ~b:(Cmat.scalar Cx.one)
    ~c:(Cmat.scalar (cx g 0.)) ~d:(Cmat.scalar Cx.zero)

let passive_sys = siso_gain 0.5
(* worst sampled margin 0.05 at DC: curable with one contraction *)
let mild_violator = siso_gain 1.05
(* worst margin 1.0 at DC: far beyond the default repair limit 0.25 *)
let incurable = siso_gain 2.0

(* pole at +0.7 (not +1: that lands exactly on the shift the pole
   solver picks for a unit-norm pencil); reflection sends it to -0.7
   and the transfer stays small *)
let unstable_sys =
  Descriptor.of_state_space
    ~a:(Cmat.scalar (cx 0.7 0.)) ~b:(Cmat.scalar Cx.one)
    ~c:(Cmat.scalar (cx 0.5 0.)) ~d:(Cmat.scalar Cx.zero)

(* the violation band of the siso fixtures lives below ~0.05 Hz *)
let low_freqs = Sampling.logspace 1e-3 1e1 40

let run_ok ?options what sys =
  match Certify.run ?options ~freqs:low_freqs sys with
  | Ok r -> r
  | Error e -> fail_error what e

let cert_of what = function
  | _, Some c -> c
  | _, None -> Alcotest.failf "%s: no certificate" what

(* noisy scattering fit of a small PDN — the Table-1 regime the
   pipeline exists for *)
let pdn_spec seed =
  { Rf.Pdn.default_spec with nx = 3; ny = 3; ports = 2; decaps = 2; seed }

let noisy_fit seed =
  let truth = Rf.Pdn.scattering_model (pdn_spec seed) ~z0:50. in
  let grid = Sampling.linspace 1e6 2e9 60 in
  let clean = Sampling.sample_system truth grid in
  (Rf.Noise.add_relative ~seed ~level:1e-3 clean, clean)

let fit_options certify =
  { Engine.default_options with
    rank_rule = Svd_reduce.Tol 3e-3;
    certify }

(* ------------------------------------------------------------------ *)
(* Certify.run modes *)

let test_certify_off () =
  match Certify.run ~options:{ Certify.default_options with mode = Certify.Off }
          ~freqs:low_freqs mild_violator with
  | Ok (sys, None) ->
    Alcotest.(check bool) "model untouched" true (sys == mild_violator)
  | Ok (_, Some _) -> Alcotest.fail "Off mode produced a certificate"
  | Error e -> fail_error "off" e

let test_certify_check_records_without_modifying () =
  let options = { Certify.default_options with mode = Certify.Check } in
  let sys, c = run_ok ~options "check" mild_violator in
  let c = cert_of "check" (sys, Some (Option.get c)) in
  Alcotest.(check bool) "model untouched" true (sys == mild_violator);
  Alcotest.(check bool) "stable recorded" true c.Certify.Certificate.stable;
  Alcotest.(check bool) "defect recorded" false c.Certify.Certificate.passive;
  Alcotest.(check bool) "not passed" false (Certify.Certificate.passed c);
  Alcotest.(check int) "no repairs" 0 c.Certify.Certificate.repair_iterations;
  check_close ~tol:1e-3 "worst margin is the DC excess" 0.05
    c.Certify.Certificate.worst_margin;
  same_float "pre = post when untouched" c.Certify.Certificate.worst_margin
    c.Certify.Certificate.pre_margin;
  same_float "untouched fit delta" 0. c.Certify.Certificate.fit_delta;
  (* an incurable model is still only recorded, never refused *)
  let _, c2 = run_ok ~options "check incurable" incurable in
  let c2 = Option.get c2 in
  Alcotest.(check bool) "incurable recorded" false
    (Certify.Certificate.passed c2);
  check_close ~tol:1e-2 "incurable margin" 1.0 c2.Certify.Certificate.worst_margin

let test_certify_repairs_mild_violation () =
  let repaired, c = run_ok "repair" mild_violator in
  let c = cert_of "repair" (repaired, c) in
  Alcotest.(check bool) "passed" true (Certify.Certificate.passed c);
  Alcotest.(check int) "no pole flips" 0 c.Certify.Certificate.flipped;
  Alcotest.(check bool) "at least one repair" true
    (c.Certify.Certificate.repair_iterations >= 1);
  check_close ~tol:1e-3 "pre-repair margin" 0.05
    c.Certify.Certificate.pre_margin;
  Alcotest.(check bool) "post-repair margin within tolerance" true
    (c.Certify.Certificate.worst_margin
     <= Certify.default_options.Certify.gamma_margin);
  Alcotest.(check bool) "repair cost recorded" true
    (c.Certify.Certificate.fit_delta > 0.);
  (* independent verdicts on the repaired realization *)
  (match Rf.Passivity.check repaired with
   | Rf.Passivity.Passive -> ()
   | _ -> Alcotest.fail "repaired model fails an independent check");
  Alcotest.(check bool) "sampled margin gone" true
    (Rf.Passivity.max_violation repaired ~freqs:low_freqs <= 1e-6)

let test_certify_clean_model_bit_identical () =
  let sys, c = run_ok "clean" passive_sys in
  let c = cert_of "clean" (sys, c) in
  Alcotest.(check bool) "same realization" true (sys == passive_sys);
  Alcotest.(check bool) "passed" true (Certify.Certificate.passed c);
  Alcotest.(check int) "no repairs" 0 c.Certify.Certificate.repair_iterations;
  same_float "no fit delta" 0. c.Certify.Certificate.fit_delta

let test_certify_reflects_unstable () =
  let repaired, c = run_ok "unstable" unstable_sys in
  let c = cert_of "unstable" (repaired, c) in
  Alcotest.(check bool) "stable now" true (Poles.is_stable repaired);
  Alcotest.(check bool) "passed" true (Certify.Certificate.passed c);
  Alcotest.(check int) "one flip" 1 c.Certify.Certificate.flipped;
  Alcotest.(check bool) "reflection cost recorded" true
    (c.Certify.Certificate.fit_delta > 0.)

let test_certify_incurable_refusal () =
  match Certify.run ~freqs:low_freqs incurable with
  | Error (Mfti_error.Numerical_breakdown nb) ->
    Alcotest.(check string) "context" "certify" nb.context;
    (match nb.condition with
     | Some m -> Alcotest.(check bool) "margin reported" true (m > 0.25)
     | None -> Alcotest.fail "margin missing from the refusal")
  | Error e -> Alcotest.failf "wrong error class: %s" (Mfti_error.to_string e)
  | Ok _ -> Alcotest.fail "incurable model certified"

let test_certify_passivity_opt_out () =
  (* Y/Z-parameter data: bounded-realness is not the gate *)
  let options = { Certify.default_options with check_passivity = false } in
  let sys, c = run_ok ~options "opt-out" incurable in
  let c = cert_of "opt-out" (sys, c) in
  Alcotest.(check bool) "model untouched" true (sys == incurable);
  Alcotest.(check bool) "vacuously passed" true (Certify.Certificate.passed c);
  Alcotest.(check bool) "margin unknown" true
    (Float.is_nan c.Certify.Certificate.worst_margin)

(* ------------------------------------------------------------------ *)
(* Fault sites *)

let test_fault_unstable () =
  (* repair: the post-reflection re-check fails -> typed breakdown *)
  (match Fault.with_spec "certify.unstable"
           (fun () -> Certify.run ~freqs:low_freqs passive_sys) with
   | Error (Mfti_error.Numerical_breakdown nb) ->
     Alcotest.(check string) "context" "certify" nb.context
   | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
   | Ok _ -> Alcotest.fail "forced-unstable model certified");
  (* check mode only records the defect *)
  let options = { Certify.default_options with mode = Certify.Check } in
  let c =
    Fault.with_spec "certify.unstable" (fun () ->
        cert_of "fault check" (run_ok ~options "fault check" passive_sys))
  in
  Alcotest.(check bool) "stable = false" false c.Certify.Certificate.stable;
  Alcotest.(check bool) "not passed" false (Certify.Certificate.passed c)

let test_fault_passivity_violation () =
  match Fault.with_spec "certify.passivity_violation"
          (fun () -> Certify.run ~freqs:low_freqs passive_sys) with
  | Error (Mfti_error.Numerical_breakdown nb) ->
    Alcotest.(check string) "context" "certify" nb.context
  | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
  | Ok _ -> Alcotest.fail "poisoned margin certified"

let test_fault_repair_stall () =
  match Fault.with_spec "certify.repair_stall"
          (fun () -> Certify.run ~freqs:low_freqs passive_sys) with
  | Error (Mfti_error.Non_convergence nc) ->
    Alcotest.(check string) "context" "certify" nc.context;
    Alcotest.(check int) "retry budget exhausted"
      Certify.default_options.Certify.max_repair nc.iterations
  | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
  | Ok _ -> Alcotest.fail "stalled repair loop certified"

(* ------------------------------------------------------------------ *)
(* Engine integration *)

let test_engine_certify_stage () =
  let noisy, clean = noisy_fit 12 in
  let fit =
    match Engine.fit_result ~options:(fit_options Certify.Repair) noisy with
    | Ok f -> f
    | Error e -> fail_error "engine fit" e
  in
  let c =
    match fit.Engine.certificate with
    | Some c -> c
    | None -> Alcotest.fail "certify stage produced no certificate"
  in
  Alcotest.(check bool) "certified" true (Certify.Certificate.passed c);
  Alcotest.(check bool) "certify stage timed" true
    (List.mem_assoc "certify" fit.Engine.timings);
  (* the certified model still fits the clean data *)
  let m = Engine.Model.of_fit fit in
  Alcotest.(check bool) "certificate carried by the model" true
    (Engine.Model.certificate m <> None);
  Alcotest.(check bool) "fit survives certification" true
    (Engine.Model.err m clean < 0.05);
  (* Off skips the stage *)
  match Engine.fit_result ~options:(fit_options Certify.Off) noisy with
  | Ok f -> Alcotest.(check bool) "no certificate" true (f.Engine.certificate = None)
  | Error e -> fail_error "engine fit (off)" e

let test_engine_staged_certify () =
  let noisy, _ = noisy_fit 41 in
  let dataset = Dataset.of_samples noisy in
  let st =
    match Engine.ingest ~options:(fit_options Certify.Check) dataset with
    | Ok st -> st
    | Error e -> fail_error "ingest" e
  in
  (match Engine.certify st with
   | Ok () -> ()
   | Error e -> fail_error "certify (runs earlier stages)" e);
  Alcotest.(check bool) "stage is Certified" true
    (Engine.stage st = Engine.Certified);
  let m = match Engine.model st with Ok m -> m | Error e -> fail_error "model" e in
  Alcotest.(check bool) "model carries the certificate" true
    (Engine.Model.certificate m <> None)

(* ------------------------------------------------------------------ *)
(* Artifacts: version 2 round trip, version 1 backward compatibility *)

let model_with_cert () =
  let repaired, c = run_ok "artifact fixture" mild_violator in
  Engine.Model.make ?certificate:c ~rank:(Descriptor.order repaired) repaired

let same_cert what (a : Certify.Certificate.t) (b : Certify.Certificate.t) =
  Alcotest.(check bool) (what ^ " stable") a.stable b.stable;
  Alcotest.(check bool) (what ^ " passive") a.passive b.passive;
  Alcotest.(check int) (what ^ " flipped") a.flipped b.flipped;
  Alcotest.(check int) (what ^ " repairs") a.repair_iterations
    b.repair_iterations;
  same_float (what ^ " worst margin") a.worst_margin b.worst_margin;
  same_float (what ^ " pre margin") a.pre_margin b.pre_margin;
  same_float (what ^ " fit delta") a.fit_delta b.fit_delta

let test_artifact_v2_round_trip () =
  let m = model_with_cert () in
  let art = Serve.Artifact.v ~name:"certified" ~fit_err:1e-3 ~created:1.7e9 m in
  let s = Serve.Artifact.to_string art in
  let got =
    match Serve.Artifact.of_string s with
    | Ok a -> a
    | Error e -> fail_error "decode v2" e
  in
  same_cert "round trip"
    (Option.get (Engine.Model.certificate art.Serve.Artifact.model))
    (Option.get (Engine.Model.certificate got.Serve.Artifact.model));
  (* deterministic: re-encoding reproduces the bytes *)
  Alcotest.(check bool) "bitwise stable" true
    (String.equal s (Serve.Artifact.to_string got));
  (* NaN margins (passivity skipped) must round-trip too *)
  let options = { Certify.default_options with check_passivity = false } in
  let sys, c = run_ok ~options "nan fixture" passive_sys in
  let m2 = Engine.Model.make ?certificate:c ~rank:1 sys in
  let s2 = Serve.Artifact.to_string (Serve.Artifact.v ~created:1.7e9 m2) in
  (match Serve.Artifact.of_string s2 with
   | Ok a ->
     let c2 = Option.get (Engine.Model.certificate a.Serve.Artifact.model) in
     Alcotest.(check bool) "NaN margin round-trips" true
       (Float.is_nan c2.Certify.Certificate.worst_margin)
   | Error e -> fail_error "decode NaN cert" e)

(* the artifact checksum, reimplemented so the test can forge a valid
   version-1 file: CRC-32 (IEEE 802.3), reflected, poly 0xEDB88320 *)
let crc32 s =
  let table =
    Array.init 256 (fun n ->
        let c = ref (Int32.of_int n) in
        for _ = 0 to 7 do
          c :=
            if Int32.logand !c 1l <> 0l then
              Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
            else Int32.shift_right_logical !c 1
        done;
        !c)
  in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let test_artifact_v1_backcompat () =
  (* an uncertified v2 body is the v1 body plus one zero flag byte:
     strip it, patch the version field to 1, re-checksum — exactly the
     bytes a version-1 writer would have produced *)
  let m = Engine.Model.make ~rank:1 passive_sys in
  let v2 = Serve.Artifact.to_string (Serve.Artifact.v ~name:"legacy" ~created:1.6e9 m) in
  let n = String.length v2 in
  same_float "fixture is uncertified" 0.
    (float_of_int (Char.code v2.[n - 5]));
  let body = String.sub v2 0 (n - 5) in
  let body = Bytes.of_string body in
  Bytes.set_int32_le body 8 1l;  (* version u32 follows the 8-byte magic *)
  let body = Bytes.to_string body in
  let crc = Bytes.create 4 in
  Bytes.set_int32_le crc 0 (crc32 body);
  let v1 = body ^ Bytes.to_string crc in
  (match Serve.Artifact.of_string v1 with
   | Ok a ->
     Alcotest.(check string) "name" "legacy" a.Serve.Artifact.name;
     Alcotest.(check bool) "uncertified" true
       (Engine.Model.certificate a.Serve.Artifact.model = None);
     Alcotest.(check int) "order" 1
       (Descriptor.order (Engine.Model.descriptor a.Serve.Artifact.model))
   | Error e -> fail_error "decode v1" e);
  (* a truncated v1 (cert flag missing without the version patch) is
     rejected, not half-loaded *)
  let crc_bad = Bytes.create 4 in
  Bytes.set_int32_le crc_bad 0 (crc32 (String.sub v2 0 (n - 5)));
  match Serve.Artifact.of_string (String.sub v2 0 (n - 5) ^ Bytes.to_string crc_bad) with
  | Error (Mfti_error.Parse _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Mfti_error.to_string e)
  | Ok _ -> Alcotest.fail "v2 without a cert flag accepted"

(* ------------------------------------------------------------------ *)
(* Serve admission policy *)

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mfti_certify_test_%d_%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let j_mem k = function
  | Serve.Sjson.Obj kvs ->
    (try List.assoc k kvs
     with Not_found -> Alcotest.failf "missing member %S" k)
  | _ -> Alcotest.failf "not an object looking for %S" k

let j_bool k j =
  match j_mem k j with
  | Serve.Sjson.Bool b -> b
  | _ -> Alcotest.failf "%S is not a bool" k

let j_num k j =
  match j_mem k j with
  | Serve.Sjson.Num x -> x
  | _ -> Alcotest.failf "%S is not a number" k

let j_str k j =
  match j_mem k j with
  | Serve.Sjson.Str s -> s
  | _ -> Alcotest.failf "%S is not a string" k

let admission_root =
  lazy
    (let dir = fresh_dir () in
     let save id m =
       Serve.Artifact.save
         (Filename.concat dir (id ^ ".mfti"))
         (Serve.Artifact.v ~name:id ~created:1.7e9 m)
     in
     save "certified" (model_with_cert ());
     save "plain" (Engine.Model.make ~rank:1 passive_sys);
     let options = { Certify.default_options with mode = Certify.Check } in
     let _, c = run_ok ~options "failed fixture" incurable in
     save "failed" (Engine.Model.make ?certificate:c ~rank:1 incurable);
     dir)

let request srv line =
  let text, _ = Serve.Server.handle_line srv line in
  Serve.Sjson.parse text

let info_req id = Printf.sprintf {|{"op":"model-info","model":%S}|} id

let test_admission_strict () =
  let srv =
    Serve.Server.create ~admission:Serve.Server.Strict
      ~root:(Lazy.force admission_root) ()
  in
  let j = request srv (info_req "certified") in
  Alcotest.(check bool) "certified admitted" true (j_bool "ok" j);
  let cert = j_mem "certificate" j in
  Alcotest.(check bool) "certificate published" true (j_bool "passed" cert);
  Alcotest.(check bool) "margin published" true
    (j_num "worst_margin" cert
     <= Certify.default_options.Certify.gamma_margin);
  List.iter
    (fun id ->
      let j = request srv (info_req id) in
      Alcotest.(check bool) (id ^ " refused") false (j_bool "ok" j);
      Alcotest.(check string) (id ^ " typed") "validation"
        (j_str "kind" (j_mem "error" j)))
    [ "plain"; "failed" ];
  let stats = request srv {|{"op":"stats"}|} in
  let adm = j_mem "admission" stats in
  Alcotest.(check string) "policy" "strict" (j_str "policy" adm);
  check_close ~tol:0. "refused count" 2. (j_num "refused" adm);
  check_close ~tol:0. "warned count" 0. (j_num "warned" adm)

let test_admission_warn_and_open () =
  let root = Lazy.force admission_root in
  let warn = Serve.Server.create ~root () in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " served under warn") true
        (j_bool "ok" (request warn (info_req id))))
    [ "certified"; "plain"; "failed" ];
  let adm = j_mem "admission" (request warn {|{"op":"stats"}|}) in
  Alcotest.(check string) "default policy" "warn" (j_str "policy" adm);
  check_close ~tol:0. "warned" 2. (j_num "warned" adm);
  check_close ~tol:0. "refused" 0. (j_num "refused" adm);
  let opened =
    Serve.Server.create ~admission:Serve.Server.Open ~root ()
  in
  Alcotest.(check bool) "open serves everything" true
    (j_bool "ok" (request opened (info_req "plain")));
  let adm = j_mem "admission" (request opened {|{"op":"stats"}|}) in
  check_close ~tol:0. "open counts nothing" 0.
    (j_num "warned" adm +. j_num "refused" adm);
  (* uncertified models publish a null certificate *)
  match j_mem "certificate" (request opened (info_req "plain")) with
  | Serve.Sjson.Null -> ()
  | _ -> Alcotest.fail "uncertified model published a certificate"

(* ------------------------------------------------------------------ *)
(* Property: the noisy regime always ends certified or typed *)

let test_noisy_fits_certified_or_refused () =
  let certified = ref 0 in
  List.iter
    (fun seed ->
      let noisy, _ = noisy_fit seed in
      match Engine.fit_result ~options:(fit_options Certify.Repair) noisy with
      | Ok f ->
        let c =
          match f.Engine.certificate with
          | Some c -> c
          | None -> Alcotest.failf "seed %d: certified fit has no evidence" seed
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d passes" seed) true
          (Certify.Certificate.passed c);
        (* the certificate is honest: an independent Hamiltonian check
           agrees *)
        (match Rf.Passivity.check f.Engine.model with
         | Rf.Passivity.Passive -> ()
         | _ -> Alcotest.failf "seed %d: certificate disagrees with check" seed);
        incr certified
      | Error (Mfti_error.Numerical_breakdown _)
      | Error (Mfti_error.Non_convergence _) -> ()  (* typed refusal: fine *)
      | Error e -> Alcotest.failf "seed %d: wrong refusal class: %s" seed
                     (Mfti_error.to_string e))
    [ 1; 2; 3; 5; 8 ];
  (* the regime is curable in practice: most seeds must certify *)
  Alcotest.(check bool) "majority certified" true (!certified >= 3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "certify"
    [ ("modes",
       [ Alcotest.test_case "off" `Quick test_certify_off;
         Alcotest.test_case "check records without modifying" `Quick
           test_certify_check_records_without_modifying;
         Alcotest.test_case "repairs mild violation" `Quick
           test_certify_repairs_mild_violation;
         Alcotest.test_case "clean model bit-identical" `Quick
           test_certify_clean_model_bit_identical;
         Alcotest.test_case "reflects unstable poles" `Quick
           test_certify_reflects_unstable;
         Alcotest.test_case "incurable refusal" `Quick
           test_certify_incurable_refusal;
         Alcotest.test_case "passivity opt-out" `Quick
           test_certify_passivity_opt_out ]);
      ("faults",
       [ Alcotest.test_case "certify.unstable" `Quick test_fault_unstable;
         Alcotest.test_case "certify.passivity_violation" `Quick
           test_fault_passivity_violation;
         Alcotest.test_case "certify.repair_stall" `Quick
           test_fault_repair_stall ]);
      ("engine",
       [ Alcotest.test_case "certify stage" `Quick test_engine_certify_stage;
         Alcotest.test_case "staged pipeline" `Quick
           test_engine_staged_certify ]);
      ("artifact",
       [ Alcotest.test_case "v2 round trip" `Quick test_artifact_v2_round_trip;
         Alcotest.test_case "v1 backward compatibility" `Quick
           test_artifact_v1_backcompat ]);
      ("admission",
       [ Alcotest.test_case "strict" `Quick test_admission_strict;
         Alcotest.test_case "warn and open" `Quick
           test_admission_warn_and_open ]);
      ("property",
       [ Alcotest.test_case "noisy fits certified or refused" `Quick
         test_noisy_fits_certified_or_refused ]) ]
