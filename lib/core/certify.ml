open Linalg
open Statespace

module Certificate = struct
  type t = {
    stable : bool;
    passive : bool;
    flipped : int;
    worst_margin : float;
    pre_margin : float;
    repair_iterations : int;
    fit_delta : float;
  }

  let passed c = c.stable && c.passive

  let fl x = if Float.is_nan x then "unknown" else Printf.sprintf "%.3g" x

  let to_string c =
    Printf.sprintf
      "%s (stable=%b passive=%b flipped=%d margin=%s pre=%s repairs=%d \
       delta=%s)"
      (if passed c then "certified" else "FAILED")
      c.stable c.passive c.flipped (fl c.worst_margin) (fl c.pre_margin)
      c.repair_iterations (fl c.fit_delta)

  let pp fmt c = Format.pp_print_string fmt (to_string c)
end

type mode = Off | Check | Repair

type options = {
  mode : mode;
  check_passivity : bool;
  gamma_margin : float;
  sweep_points : int;
  repair_limit : float;
  max_repair : int;
  max_reflect_residual : float;
}

let default_options =
  { mode = Repair;
    check_passivity = true;
    gamma_margin = 1e-6;
    sweep_points = 128;
    repair_limit = 0.25;
    max_repair = 8;
    max_reflect_residual = 1e-3 }

let breakdown ?condition message =
  Mfti_error.raise_error
    (Mfti_error.Numerical_breakdown
       { context = "certify"; message; condition })

(* ---- sweep grid ------------------------------------------------------ *)

let base_grid opts freqs =
  let usable =
    Array.to_list freqs
    |> List.filter (fun f -> Float.is_finite f && f >= 0.)
    |> List.sort_uniq compare
  in
  match usable with
  | [] ->
    (* no data grid (synthetic model): decade sweep over the RF band *)
    List.init (Stdlib.max 2 opts.sweep_points) (fun i ->
        let t = float_of_int i /. float_of_int (opts.sweep_points - 1) in
        10. ** (12. *. t))
  | fs ->
    let n = List.length fs in
    if n <= opts.sweep_points then fs
    else
      let arr = Array.of_list fs in
      let stride = float_of_int (n - 1) /. float_of_int (opts.sweep_points - 1) in
      List.init opts.sweep_points (fun i ->
          arr.(int_of_float (Float.round (float_of_int i *. stride))))
      |> List.sort_uniq compare

(* Refine around the Hamiltonian test's crossing frequencies: the sampled
   margin must see the interior of each violation band, not just straddle
   it, or the repair scale factor underestimates the defect. *)
let refine grid crossings =
  let extra =
    List.concat_map
      (fun c -> if c > 0. then [ 0.97 *. c; c; 1.03 *. c ] else [ c ])
      crossings
  in
  let mids =
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        (if a > 0. && b > 0. then [ sqrt (a *. b) ] else []) @ pairs rest
      | _ -> []
    in
    pairs (List.sort compare crossings)
  in
  List.sort_uniq compare (grid @ extra @ mids) |> Array.of_list

(* ---- measurements ---------------------------------------------------- *)

(* The exact Hamiltonian test; an index > 1 descriptor degrades to the
   sampled sweep alone (recorded, not fatal). *)
let hamiltonian opts sys =
  match Rf.Passivity.check ~gamma_margin:opts.gamma_margin sys with
  | v -> Some v
  | exception Invalid_argument _ ->
    Diag.record ~site:"certify.sweep_only"
      "index > 1 descriptor: Hamiltonian test unavailable, sampled sweep only";
    None

let crossings_of = function
  | Some (Rf.Passivity.Violations fs) -> fs
  | _ -> []

(* Sampled worst margin [max (sigma_max S(jw) - 1)] over the refined
   grid, floored by the feedthrough margin (the w = inf sample).  The
   "certify.passivity_violation" fault forces an incurable violation. *)
let sampled_margin opts grid sys verdict =
  let m =
    Rf.Passivity.max_violation sys ~freqs:(refine grid (crossings_of verdict))
  in
  let m = Stdlib.max m (Svd.norm2 sys.Descriptor.d -. 1.) in
  if Fault.armed "certify.passivity_violation" then
    1. +. 4. *. opts.repair_limit
  else m

let passivity_ok opts verdict margin =
  (match verdict with
   | Some Rf.Passivity.Passive | None -> true
   | Some _ -> false)
  && margin <= opts.gamma_margin

(* Relative RMS transfer-function change over the grid — the price the
   repair paid in fit accuracy. *)
let fit_delta grid before after =
  let num = ref 0. and den = ref 0. in
  List.iter
    (fun f ->
      let h0 = Descriptor.eval_freq before f in
      let h1 = Descriptor.eval_freq after f in
      let d = Cmat.norm_fro (Cmat.sub h1 h0) in
      let n0 = Cmat.norm_fro h0 in
      num := !num +. (d *. d);
      den := !den +. (n0 *. n0))
    grid;
  if !den > 0. then sqrt (!num /. !den) else sqrt !num

(* ---- stability ------------------------------------------------------- *)

let stable_now sys =
  Poles.is_stable sys && not (Fault.armed "certify.unstable")

(* ---- the pipeline ---------------------------------------------------- *)

let check_only opts grid sys =
  let stable = stable_now sys in
  let passive, margin =
    if not opts.check_passivity then (true, nan)
    else
      let verdict = hamiltonian opts sys in
      let margin = sampled_margin opts grid sys verdict in
      (stable && passivity_ok opts verdict margin, margin)
  in
  { Certificate.stable; passive; flipped = 0; worst_margin = margin;
    pre_margin = margin; repair_iterations = 0; fit_delta = 0. }

let repair opts grid sys =
  (* stage 1: stability *)
  let sys', flipped =
    if stable_now sys then (sys, 0)
    else begin
      let r =
        Stabilize.reflect ~max_residual:opts.max_reflect_residual sys
      in
      if not (stable_now r.Stabilize.model) then
        breakdown
          "model remains unstable after pole reflection \
           (site certify.unstable)";
      (r.Stabilize.model, r.Stabilize.flipped)
    end
  in
  (* stage 2+3: passivity, with bounded perturbative repair *)
  if not opts.check_passivity then
    ( sys',
      { Certificate.stable = true; passive = true; flipped;
        worst_margin = nan; pre_margin = nan; repair_iterations = 0;
        fit_delta =
          (if flipped = 0 then 0. else fit_delta grid sys sys') } )
  else begin
    let verdict0 = hamiltonian opts sys' in
    let pre_margin = sampled_margin opts grid sys' verdict0 in
    let cur = ref sys' in
    let iterations = ref 0 in
    let margin = ref pre_margin in
    let verdict = ref verdict0 in
    let ok = ref (passivity_ok opts !verdict !margin
                  && not (Fault.armed "certify.repair_stall")) in
    while (not !ok) && !iterations < opts.max_repair do
      if !margin > opts.repair_limit then
        breakdown ~condition:!margin
          (Printf.sprintf
             "passivity violation %.3g exceeds the perturbative repair \
              limit %.3g: incurable (site certify.passivity_violation)"
             !margin opts.repair_limit);
      let s = !cur in
      let sd = Svd.norm2 s.Descriptor.d in
      let repaired =
        match !verdict with
        | Some (Rf.Passivity.Feedthrough_violation _) when sd > 0. ->
          (* violated only at w = inf: contracting D alone suffices *)
          Descriptor.create ~e:s.Descriptor.e ~a:s.Descriptor.a
            ~b:s.Descriptor.b ~c:s.Descriptor.c
            ~d:(Cmat.scale_float ((1. -. opts.gamma_margin) /. sd)
                  s.Descriptor.d)
        | _ ->
          (* finite-frequency violation: contract the whole transfer
             function toward the bounded-real boundary *)
          let k = (1. -. opts.gamma_margin) /. (1. +. Stdlib.max !margin 0.) in
          Descriptor.create ~e:s.Descriptor.e ~a:s.Descriptor.a
            ~b:s.Descriptor.b
            ~c:(Cmat.scale_float k s.Descriptor.c)
            ~d:(Cmat.scale_float k s.Descriptor.d)
      in
      cur := repaired;
      incr iterations;
      verdict := hamiltonian opts repaired;
      margin := sampled_margin opts grid repaired !verdict;
      ok := passivity_ok opts !verdict !margin
            && not (Fault.armed "certify.repair_stall")
    done;
    if not !ok then begin
      if !margin > opts.repair_limit then
        breakdown ~condition:!margin
          (Printf.sprintf
             "passivity violation %.3g exceeds the perturbative repair \
              limit %.3g: incurable (site certify.passivity_violation)"
             !margin opts.repair_limit);
      Mfti_error.raise_error
        (Mfti_error.Non_convergence
           { context = "certify";
             achieved = !margin;
             target = opts.gamma_margin;
             iterations = !iterations })
    end;
    let touched = flipped > 0 || !iterations > 0 in
    ( !cur,
      { Certificate.stable = true; passive = true; flipped;
        worst_margin = !margin; pre_margin; repair_iterations = !iterations;
        fit_delta = (if touched then fit_delta grid sys !cur else 0.) } )
  end

let run ?(options = default_options) ~freqs sys =
  match options.mode with
  | Off -> Ok (sys, None)
  | Check ->
    Mfti_error.guard ~context:"certify" (fun () ->
        let grid = base_grid options freqs in
        (sys, Some (check_only options grid sys)))
  | Repair ->
    Mfti_error.guard ~context:"certify" (fun () ->
        let grid = base_grid options freqs in
        let sys', cert = repair options grid sys in
        (sys', Some cert))
