(** The staged fitting engine.

    All four fitting paths (MFTI Algorithm 1 and 2, VFTI, vector
    fitting's model wrapper) are strategies over one pipeline:

    {v ingest -> assemble -> realify -> reduce -> certify -> model v}

    Each stage is explicit and resumable over a shared {!state}: calling
    a stage runs every stage it depends on that has not run yet, and
    running a stage twice is a no-op — so a driver can stop after
    {!assemble} to inspect the pencil, then continue.  Per-stage wall
    times accumulate in {!timings}.

    The [Recursive Incremental] strategy is the reason the engine
    exists: Algorithm 2 adds interpolation units one batch at a time,
    and the incremental {!Loewner.builder} appends only the new block
    rows/columns to the cached pencil — O(k) new divided differences per
    unit instead of the O(k^2) full rebuild — while producing
    bit-identical models to the [Recursive Batch] arm. *)

(** Superset of the per-algorithm option records.  The recursion fields
    ([batch] ... [probe]) are ignored by the single-pass strategies. *)
type options = {
  weight : Tangential.weight;        (** tangential block widths *)
  directions : Direction.kind;
  real_model : bool;                 (** realify before reduction *)
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;          (** SVD engine for the reduce stage *)
  batch : int;                       (** units added per iteration *)
  threshold : float;                 (** stop when the mean held-out
                                         residual drops below this *)
  max_iterations : int;
  divergence_factor : float;         (** bail when the residual exceeds
                                         this multiple of the best seen *)
  iteration_budget : float;          (** wall-clock budget in seconds *)
  probe : int option;
      (** score at most this many held-out units per iteration (strided
          subsample); [None] scores all of them — the exact Algorithm 2
          reordering *)
  certify : Certify.mode;
      (** post-reduce certification: [Off] (default) skips the stage
          entirely, [Check] records a {!Certify.Certificate.t} without
          touching the model, [Repair] additionally enforces stability
          and passivity (see {!Certify.run}) *)
}

(** [Full] weight, [Stacked]/[Gap] reduction, recursion knobs at the
    Algorithm 2 defaults, [probe = None]. *)
val default_options : options

(** {!default_options} with the [Uniform 2] weight Algorithm 2 uses. *)
val default_recursive_options : options

(** How the recursive strategy assembles each iteration's sub-pencil. *)
type assembly =
  | Batch        (** build the full pencil once, select rows/columns *)
  | Incremental  (** grow a {!Loewner.builder}, appending new units *)

type strategy =
  | Direct               (** MFTI Algorithm 1: one shot, all samples *)
  | Vector               (** VFTI: width-1 blocks (forces [Uniform 1]) *)
  | Recursive of assembly  (** MFTI Algorithm 2 *)

type stage = Ingested | Assembled | Realified | Reduced | Certified

(** Mutable pipeline state; create with {!ingest}. *)
type state

(** Validate the data and options, apply fault hooks, and build the
    tangential interpolation data.  [strategy] defaults to [Direct]. *)
val ingest :
  ?options:options -> ?strategy:strategy -> Dataset.t ->
  (state, Linalg.Mfti_error.t) result

(** Build the Loewner pencil (no-op for [Recursive Incremental], whose
    pencil grows inside the reduce stage). *)
val assemble : state -> (unit, Linalg.Mfti_error.t) result

(** Apply the realification transform when [real_model] is set. *)
val realify : state -> (unit, Linalg.Mfti_error.t) result

(** Run the SVD projection — for recursive strategies, the whole
    greedy selection loop. *)
val reduce : state -> (unit, Linalg.Mfti_error.t) result

(** Run the certification pass on the reduced model, against the
    dataset's own frequency grid.  With [options.certify = Off] the
    stage completes instantly (model unchanged, no certificate); with
    [Repair] an incurable model is a typed error and the state stays at
    {!Reduced}. *)
val certify : state -> (unit, Linalg.Mfti_error.t) result

(** Furthest stage that has completed. *)
val stage : state -> stage

val tangential : state -> Tangential.t
val dataset : state -> Dataset.t

(** The assembled full pencil, once {!assemble} has run (always [None]
    for [Recursive Incremental]). *)
val pencil : state -> Loewner.t option

val reduction : state -> Svd_reduce.result option
val diagnostics : state -> Linalg.Diag.t

(** Accumulated per-stage wall times, in first-hit order: ["ingest"],
    ["assemble"], ["realify"], ["reduce"], (recursion only)
    ["evaluate"] and (when enabled) ["certify"]. *)
val timings : state -> (string * float) list

(** Everything a finished fit produced.  The per-algorithm [result]
    records are re-exports of this type. *)
type fit = {
  model : Statespace.Descriptor.t;
  rank : int;                 (** retained order *)
  sigma : float array;        (** singular values the rank decision saw *)
  data : Tangential.t;
  loewner : Loewner.t;        (** working pencil of the final reduction *)
  selected_units : int;       (** units used ([= total] for single pass) *)
  total_units : int;
  iterations : int;
  history : float array;      (** mean held-out residual per iteration *)
  certificate : Certify.Certificate.t option;
      (** certification evidence; [None] when the stage ran with
          [certify = Off] *)
  diagnostics : Linalg.Diag.t;
  timings : (string * float) list;
}

(** First-class fitted model: the descriptor realization plus the
    metadata needed to judge and reuse it. *)
module Model : sig
  type stats = {
    selected_units : int;
    total_units : int;
    iterations : int;
    history : float array;
  }

  type t

  (** Wrap a bare descriptor (e.g. a vector-fitting result). *)
  val make :
    ?sigma:float array -> ?stats:stats ->
    ?certificate:Certify.Certificate.t -> ?diagnostics:Linalg.Diag.t ->
    ?timings:(string * float) list -> rank:int ->
    Statespace.Descriptor.t -> t

  val of_fit : fit -> t

  val descriptor : t -> Statespace.Descriptor.t
  val rank : t -> int
  val sigma : t -> float array
  val stats : t -> stats option

  (** Certification evidence attached by the engine's certify stage or
      by {!certify}; [None] for uncertified models. *)
  val certificate : t -> Certify.Certificate.t option

  (** [certify ?options ~freqs m] runs {!Certify.run} on the wrapped
      descriptor and returns the model with the (possibly repaired)
      realization and its certificate attached. *)
  val certify :
    ?options:Certify.options -> freqs:float array -> t ->
    (t, Linalg.Mfti_error.t) result

  val diagnostics : t -> Linalg.Diag.t
  val timings : t -> (string * float) list

  val order : t -> int

  (** Port dimensions of the realization: {!inputs} is [m], {!outputs}
      is [p] — the serving layer stores both in packed artifacts. *)
  val inputs : t -> int

  val outputs : t -> int
  val eval : t -> Linalg.Cx.t -> Linalg.Cmat.t
  val eval_freq : t -> float -> Linalg.Cmat.t
  val poles : ?infinite_tol:float -> t -> Linalg.Cx.t array
  val stable : ?infinite_tol:float -> t -> bool
  val is_real : ?tol:float -> t -> bool
  val save : string -> t -> unit

  val err : t -> Statespace.Sampling.sample array -> float
  val err_vector : t -> Statespace.Sampling.sample array -> float array
  val max_err : t -> Statespace.Sampling.sample array -> float
  val report : name:string -> t -> Statespace.Sampling.sample array -> string
end

(** Run every remaining stage and return the model. *)
val model : state -> (Model.t, Linalg.Mfti_error.t) result

(** [run ?options ?strategy dataset] = ingest + all stages. *)
val run :
  ?options:options -> ?strategy:strategy -> Dataset.t ->
  (fit, Linalg.Mfti_error.t) result

val run_exn : ?options:options -> ?strategy:strategy -> Dataset.t -> fit

(** Convenience over a bare sample array ({!Dataset.of_samples}). *)
val fit_result :
  ?options:options -> ?strategy:strategy ->
  Statespace.Sampling.sample array -> (fit, Linalg.Mfti_error.t) result

val fit :
  ?options:options -> ?strategy:strategy ->
  Statespace.Sampling.sample array -> fit

(** {1 Streaming fit sessions}

    A session is the pipeline turned live: instead of one ingest fixing
    the sample set, samples stream in — as instruments produce them —
    and the incremental {!Loewner.builder} absorbs each completed
    right/left pair as one O(k) append.  The assemble stage never
    reruns; an append only invalidates the cached downstream stages
    (realify / reduce / certify), and {!refit} replays exactly those.
    {!finalize} certifies per the session options and is bit-identical
    to [run ~strategy:Direct] over the same completed pairs.

    Sessions are single-owner mutable values with no internal locking;
    the serving layer serializes access per session. *)
module Session : sig
  type t

  (** Monotonic per-session activity counters, for the serving layer's
      [stats] op. *)
  type counters = {
    appended : int;    (** fit samples accepted over the session *)
    held_out : int;    (** hold-out samples accepted *)
    refits : int;      (** reduce-stage reruns *)
    suggests : int;    (** adaptive suggestions served *)
  }

  (** [open_ ?options ~inputs ~outputs ()] starts an empty session for
      a [outputs x inputs] response.  [Per_sample] weights are a typed
      error (they need the full sample count up front); [Full] resolves
      to [min inputs outputs] per block. *)
  val open_ :
    ?options:options -> inputs:int -> outputs:int -> unit ->
    (t, Linalg.Mfti_error.t) result

  (** [append ?holdout sess samples] accepts a batch.  Samples stream
      in measurement order: even stream positions feed the right
      tangential data, odd the left, exactly as {!Tangential.build}
      assigns them — an unpaired trailing sample waits in a pending
      slot for its partner.  The batch is vetted as a whole
      (dimensions, finiteness, positive distinct frequencies) before
      any state changes, so a refused batch leaves the session
      untouched.  Returns the downstream stages the append invalidated
      (outermost first; empty for hold-out appends, which never
      invalidate the model).  The ["session.stale_append"] fault forces
      the expired-session refusal path. *)
  val append :
    ?holdout:bool -> t -> Statespace.Sampling.sample array ->
    (stage list, Linalg.Mfti_error.t) result

  (** Re-run exactly the invalidated downstream stages (snapshot the
      already-assembled pencil, realify, reduce).  No-op when the
      cached reduction is current. *)
  val refit : t -> (unit, Linalg.Mfti_error.t) result

  (** Current model (refitting first if stale), uncertified until
      {!finalize}. *)
  val model : t -> (Model.t, Linalg.Mfti_error.t) result

  (** Certify per the session options and close the session: appends
      after a finalize are typed errors.  An unpaired pending sample is
      dropped (recorded in the diagnostics), mirroring
      {!Dataset.trim_even}.  The ["session.finalize_race"] fault forces
      the concurrent-finalize refusal path. *)
  val finalize : t -> (Model.t, Linalg.Mfti_error.t) result

  (** Hold-out error of the current model; [None] when the session has
      no hold-out samples (or no complete pair yet). *)
  val holdout_err : t -> (float option, Linalg.Mfti_error.t) result

  (** Furthest stage currently cached ([Assembled] as soon as one pair
      is in — the builder {e is} the assembly). *)
  val stage : t -> stage

  val dataset : t -> Dataset.t
  val fit_samples : t -> Statespace.Sampling.sample array
  val holdout_samples : t -> Statespace.Sampling.sample array
  val options : t -> options

  (** [(outputs, inputs)] — the [p x m] response shape. *)
  val dims : t -> int * int

  (** Completed-pair fit samples (excludes the pending slot). *)
  val size : t -> int

  val holdout_size : t -> int

  (** True when an unpaired sample waits for its partner. *)
  val pending : t -> bool

  val finalized : t -> bool

  (** Stages dropped by the most recent fit append. *)
  val invalidated : t -> stage list

  val diagnostics : t -> Linalg.Diag.t
  val timings : t -> (string * float) list

  (** Count one adaptive suggestion against this session (the serving
      layer calls this when it serves [fit-suggest]). *)
  val record_suggest : t -> unit

  val counters : t -> counters
end
