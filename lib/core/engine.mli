(** The staged fitting engine.

    All four fitting paths (MFTI Algorithm 1 and 2, VFTI, vector
    fitting's model wrapper) are strategies over one pipeline:

    {v ingest -> assemble -> realify -> reduce -> certify -> model v}

    Each stage is explicit and resumable over a shared {!state}: calling
    a stage runs every stage it depends on that has not run yet, and
    running a stage twice is a no-op — so a driver can stop after
    {!assemble} to inspect the pencil, then continue.  Per-stage wall
    times accumulate in {!timings}.

    The [Recursive Incremental] strategy is the reason the engine
    exists: Algorithm 2 adds interpolation units one batch at a time,
    and the incremental {!Loewner.builder} appends only the new block
    rows/columns to the cached pencil — O(k) new divided differences per
    unit instead of the O(k^2) full rebuild — while producing
    bit-identical models to the [Recursive Batch] arm. *)

(** Superset of the per-algorithm option records.  The recursion fields
    ([batch] ... [probe]) are ignored by the single-pass strategies. *)
type options = {
  weight : Tangential.weight;        (** tangential block widths *)
  directions : Direction.kind;
  real_model : bool;                 (** realify before reduction *)
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;          (** SVD engine for the reduce stage *)
  batch : int;                       (** units added per iteration *)
  threshold : float;                 (** stop when the mean held-out
                                         residual drops below this *)
  max_iterations : int;
  divergence_factor : float;         (** bail when the residual exceeds
                                         this multiple of the best seen *)
  iteration_budget : float;          (** wall-clock budget in seconds *)
  probe : int option;
      (** score at most this many held-out units per iteration (strided
          subsample); [None] scores all of them — the exact Algorithm 2
          reordering *)
  certify : Certify.mode;
      (** post-reduce certification: [Off] (default) skips the stage
          entirely, [Check] records a {!Certify.Certificate.t} without
          touching the model, [Repair] additionally enforces stability
          and passivity (see {!Certify.run}) *)
}

(** [Full] weight, [Stacked]/[Gap] reduction, recursion knobs at the
    Algorithm 2 defaults, [probe = None]. *)
val default_options : options

(** {!default_options} with the [Uniform 2] weight Algorithm 2 uses. *)
val default_recursive_options : options

(** How the recursive strategy assembles each iteration's sub-pencil. *)
type assembly =
  | Batch        (** build the full pencil once, select rows/columns *)
  | Incremental  (** grow a {!Loewner.builder}, appending new units *)

type strategy =
  | Direct               (** MFTI Algorithm 1: one shot, all samples *)
  | Vector               (** VFTI: width-1 blocks (forces [Uniform 1]) *)
  | Recursive of assembly  (** MFTI Algorithm 2 *)

type stage = Ingested | Assembled | Realified | Reduced | Certified

(** Mutable pipeline state; create with {!ingest}. *)
type state

(** Validate the data and options, apply fault hooks, and build the
    tangential interpolation data.  [strategy] defaults to [Direct]. *)
val ingest :
  ?options:options -> ?strategy:strategy -> Dataset.t ->
  (state, Linalg.Mfti_error.t) result

(** Build the Loewner pencil (no-op for [Recursive Incremental], whose
    pencil grows inside the reduce stage). *)
val assemble : state -> (unit, Linalg.Mfti_error.t) result

(** Apply the realification transform when [real_model] is set. *)
val realify : state -> (unit, Linalg.Mfti_error.t) result

(** Run the SVD projection — for recursive strategies, the whole
    greedy selection loop. *)
val reduce : state -> (unit, Linalg.Mfti_error.t) result

(** Run the certification pass on the reduced model, against the
    dataset's own frequency grid.  With [options.certify = Off] the
    stage completes instantly (model unchanged, no certificate); with
    [Repair] an incurable model is a typed error and the state stays at
    {!Reduced}. *)
val certify : state -> (unit, Linalg.Mfti_error.t) result

(** Furthest stage that has completed. *)
val stage : state -> stage

val tangential : state -> Tangential.t
val dataset : state -> Dataset.t

(** The assembled full pencil, once {!assemble} has run (always [None]
    for [Recursive Incremental]). *)
val pencil : state -> Loewner.t option

val reduction : state -> Svd_reduce.result option
val diagnostics : state -> Linalg.Diag.t

(** Accumulated per-stage wall times, in first-hit order: ["ingest"],
    ["assemble"], ["realify"], ["reduce"], (recursion only)
    ["evaluate"] and (when enabled) ["certify"]. *)
val timings : state -> (string * float) list

(** Everything a finished fit produced.  The per-algorithm [result]
    records are re-exports of this type. *)
type fit = {
  model : Statespace.Descriptor.t;
  rank : int;                 (** retained order *)
  sigma : float array;        (** singular values the rank decision saw *)
  data : Tangential.t;
  loewner : Loewner.t;        (** working pencil of the final reduction *)
  selected_units : int;       (** units used ([= total] for single pass) *)
  total_units : int;
  iterations : int;
  history : float array;      (** mean held-out residual per iteration *)
  certificate : Certify.Certificate.t option;
      (** certification evidence; [None] when the stage ran with
          [certify = Off] *)
  diagnostics : Linalg.Diag.t;
  timings : (string * float) list;
}

(** First-class fitted model: the descriptor realization plus the
    metadata needed to judge and reuse it. *)
module Model : sig
  type stats = {
    selected_units : int;
    total_units : int;
    iterations : int;
    history : float array;
  }

  type t

  (** Wrap a bare descriptor (e.g. a vector-fitting result). *)
  val make :
    ?sigma:float array -> ?stats:stats ->
    ?certificate:Certify.Certificate.t -> ?diagnostics:Linalg.Diag.t ->
    ?timings:(string * float) list -> rank:int ->
    Statespace.Descriptor.t -> t

  val of_fit : fit -> t

  val descriptor : t -> Statespace.Descriptor.t
  val rank : t -> int
  val sigma : t -> float array
  val stats : t -> stats option

  (** Certification evidence attached by the engine's certify stage or
      by {!certify}; [None] for uncertified models. *)
  val certificate : t -> Certify.Certificate.t option

  (** [certify ?options ~freqs m] runs {!Certify.run} on the wrapped
      descriptor and returns the model with the (possibly repaired)
      realization and its certificate attached. *)
  val certify :
    ?options:Certify.options -> freqs:float array -> t ->
    (t, Linalg.Mfti_error.t) result

  val diagnostics : t -> Linalg.Diag.t
  val timings : t -> (string * float) list

  val order : t -> int

  (** Port dimensions of the realization: {!inputs} is [m], {!outputs}
      is [p] — the serving layer stores both in packed artifacts. *)
  val inputs : t -> int

  val outputs : t -> int
  val eval : t -> Linalg.Cx.t -> Linalg.Cmat.t
  val eval_freq : t -> float -> Linalg.Cmat.t
  val poles : ?infinite_tol:float -> t -> Linalg.Cx.t array
  val stable : ?infinite_tol:float -> t -> bool
  val is_real : ?tol:float -> t -> bool
  val save : string -> t -> unit

  val err : t -> Statespace.Sampling.sample array -> float
  val err_vector : t -> Statespace.Sampling.sample array -> float array
  val max_err : t -> Statespace.Sampling.sample array -> float
  val report : name:string -> t -> Statespace.Sampling.sample array -> string
end

(** Run every remaining stage and return the model. *)
val model : state -> (Model.t, Linalg.Mfti_error.t) result

(** [run ?options ?strategy dataset] = ingest + all stages. *)
val run :
  ?options:options -> ?strategy:strategy -> Dataset.t ->
  (fit, Linalg.Mfti_error.t) result

val run_exn : ?options:options -> ?strategy:strategy -> Dataset.t -> fit

(** Convenience over a bare sample array ({!Dataset.of_samples}). *)
val fit_result :
  ?options:options -> ?strategy:strategy ->
  Statespace.Sampling.sample array -> (fit, Linalg.Mfti_error.t) result

val fit :
  ?options:options -> ?strategy:strategy ->
  Statespace.Sampling.sample array -> fit
