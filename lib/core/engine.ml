open Linalg

(* ------------------------------------------------------------------ *)
(* Options *)

type options = {
  weight : Tangential.weight;
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;
  batch : int;
  threshold : float;
  max_iterations : int;
  divergence_factor : float;
  iteration_budget : float;
  probe : int option;
  certify : Certify.mode;
}

let default_options =
  { weight = Tangential.Full;
    directions = Direction.Orthonormal 0;
    real_model = true;
    mode = Svd_reduce.default_mode;
    rank_rule = Svd_reduce.default_rank_rule;
    svd = Svd_reduce.default_backend;
    batch = 8;
    threshold = 1e-3;
    max_iterations = 64;
    divergence_factor = 1e3;
    iteration_budget = Float.infinity;
    probe = None;
    certify = Certify.Off }

let default_recursive_options =
  { default_options with weight = Tangential.Uniform 2 }

type assembly = Batch | Incremental
type strategy = Direct | Vector | Recursive of assembly
type stage = Ingested | Assembled | Realified | Reduced | Certified

let context_of_strategy = function
  | Direct -> "algorithm1"
  | Vector -> "vfti"
  | Recursive _ -> "algorithm2"

(* ------------------------------------------------------------------ *)
(* State *)

type state = {
  options : options;
  strategy : strategy;
  context : string;
  dataset : Dataset.t;
  data : Tangential.t;
  started : float;
  diagnostics : Diag.t;
  mutable pencil : Loewner.t option;
  mutable realified : Loewner.t option;
  mutable reduction : Svd_reduce.result option;
  mutable certified :
    (Statespace.Descriptor.t * Certify.Certificate.t option) option;
  mutable selected_units : int;
  mutable total_units : int;
  mutable iterations : int;
  mutable history : float array;
  mutable timings : (string * float) list;
}

(* Accumulate wall time per stage name; first hit fixes the display
   order. *)
let timed st name f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  let dt = Unix.gettimeofday () -. t0 in
  (if List.mem_assoc name st.timings then
     st.timings <-
       List.map
         (fun (n, v) -> if String.equal n name then (n, v +. dt) else (n, v))
         st.timings
   else st.timings <- st.timings @ [ (name, dt) ]);
  x

let validate_options ~strategy o =
  (match strategy with
   | Recursive _ ->
     if o.batch < 1 then invalid_arg "Engine: batch must be >= 1";
     if o.max_iterations < 1 then
       invalid_arg "Engine: max_iterations must be >= 1";
     if not (o.divergence_factor > 1.) then
       invalid_arg "Engine: divergence_factor must be > 1";
     if not (o.iteration_budget > 0.) then
       invalid_arg "Engine: iteration_budget must be positive"
   | Direct | Vector -> ());
  match o.probe with
  | Some n when n < 1 -> invalid_arg "Engine: probe must be >= 1"
  | _ -> ()

let ingest ?(options = default_options) ?(strategy = Direct) dataset =
  let context = context_of_strategy strategy in
  let diagnostics = Diag.create () in
  Diag.using diagnostics (fun () ->
      let dataset = Dataset.fault_corrupt dataset in
      match Dataset.validate dataset with
      | Result.Error e -> Result.Error e
      | Ok () ->
        Mfti_error.guard ~context (fun () ->
            validate_options ~strategy options;
            let weight =
              match strategy with
              | Vector -> Tangential.Uniform 1
              | Direct | Recursive _ -> options.weight
            in
            let started = Unix.gettimeofday () in
            let data =
              Tangential.build ~directions:options.directions ~weight
                (Dataset.fit_samples dataset)
            in
            let dt = Unix.gettimeofday () -. started in
            { options; strategy; context; dataset; data; started; diagnostics;
              pencil = None; realified = None; reduction = None;
              certified = None;
              selected_units = 0; total_units = 0; iterations = 0;
              history = [||]; timings = [ ("ingest", dt) ] }))

(* ------------------------------------------------------------------ *)
(* Single-pass stages (Direct / Vector / Recursive Batch full pencil) *)

let assemble_raw st =
  match st.pencil with
  | Some _ -> ()
  | None ->
    (match st.strategy with
     | Recursive Incremental ->
       (* the recursion grows its own builder; there is no full pencil *)
       ()
     | Direct | Vector | Recursive Batch ->
       st.pencil <- Some (timed st "assemble" (fun () -> Loewner.build st.data)))

let realify_raw st =
  match st.realified with
  | Some _ -> ()
  | None ->
    (match st.strategy with
     | Recursive _ -> ()   (* sub-pencils are realified inside the loop *)
     | Direct | Vector ->
       assemble_raw st;
       let p = Option.get st.pencil in
       let q =
         if st.options.real_model then
           timed st "realify" (fun () -> Realify.apply p)
         else p
       in
       st.realified <- Some q)

(* ------------------------------------------------------------------ *)
(* Recursive selection (paper Algorithm 2) *)

(* One selectable unit: a width-1 tangential column with its conjugate
   partner, plus the aligned left row pair.  The four blocks are kept
   whole so the incremental assembly can append them directly. *)
type unit_data = {
  col_orig : int;
  col_conj : int;
  row_orig : int;
  row_conj : int;
  right_o : Tangential.right_block;
  right_c : Tangential.right_block;
  left_o : Tangential.left_block;
  left_c : Tangential.left_block;
  norm_u : float;   (* |w| + |v| for normalization *)
}

let block_offsets sizes =
  let off = Array.make (Array.length sizes) 0 in
  for i = 1 to Array.length sizes - 1 do
    off.(i) <- off.(i - 1) + sizes.(i - 1)
  done;
  off

let make_units (data : Tangential.t) =
  let rs = Tangential.right_sizes data and ls = Tangential.left_sizes data in
  let npairs = Array.length rs / 2 in
  if Array.length ls <> Array.length rs then
    invalid_arg "Engine: left/right block counts differ";
  let roff = block_offsets rs and loff = block_offsets ls in
  let units = ref [] in
  for g = 0 to npairs - 1 do
    let t_r = rs.(2 * g) and t_l = ls.(2 * g) in
    if t_r <> t_l then
      invalid_arg "Engine: left and right widths must match per block pair";
    let rb = data.Tangential.right.(2 * g) in
    let rbc = data.Tangential.right.((2 * g) + 1) in
    let lb = data.Tangential.left.(2 * g) in
    let lbc = data.Tangential.left.((2 * g) + 1) in
    for j = 0 to t_r - 1 do
      let right_o =
        { Tangential.lambda = rb.Tangential.lambda;
          r = Cmat.col rb.Tangential.r j;
          w = Cmat.col rb.Tangential.w j }
      in
      let right_c =
        { Tangential.lambda = rbc.Tangential.lambda;
          r = Cmat.col rbc.Tangential.r j;
          w = Cmat.col rbc.Tangential.w j }
      in
      let left_o =
        { Tangential.mu = lb.Tangential.mu;
          l = Cmat.row lb.Tangential.l j;
          v = Cmat.row lb.Tangential.v j }
      in
      let left_c =
        { Tangential.mu = lbc.Tangential.mu;
          l = Cmat.row lbc.Tangential.l j;
          v = Cmat.row lbc.Tangential.v j }
      in
      units :=
        { col_orig = roff.(2 * g) + j;
          col_conj = roff.((2 * g) + 1) + j;
          row_orig = loff.(2 * g) + j;
          row_conj = loff.((2 * g) + 1) + j;
          right_o; right_c; left_o; left_c;
          norm_u =
            Cmat.norm_fro right_o.Tangential.w
            +. Cmat.norm_fro left_o.Tangential.v }
        :: !units
    done
  done;
  Array.of_list (List.rev !units)

(* Strided initial visit order: [0, k0, 2k0, ..., 1, k0+1, ...]. *)
let strided_order n k0 =
  let order = Array.make n 0 in
  let pos = ref 0 in
  for r = 0 to k0 - 1 do
    let i = ref r in
    while !i < n do
      order.(!pos) <- !i;
      incr pos;
      i := !i + k0
    done
  done;
  order

let sub_pencil (pencil : Loewner.t) units selected =
  let n = List.length selected in
  let cols = Array.make (2 * n) 0 and rows = Array.make (2 * n) 0 in
  List.iteri
    (fun i u ->
      cols.(2 * i) <- units.(u).col_orig;
      cols.((2 * i) + 1) <- units.(u).col_conj;
      rows.(2 * i) <- units.(u).row_orig;
      rows.((2 * i) + 1) <- units.(u).row_conj)
    selected;
  let pick m = Cmat.select_rows (Cmat.select_cols m cols) rows in
  { Loewner.ll = pick pencil.Loewner.ll;
    sll = pick pencil.Loewner.sll;
    w = Cmat.select_cols pencil.Loewner.w cols;
    v = Cmat.select_rows pencil.Loewner.v rows;
    r = Cmat.select_cols pencil.Loewner.r cols;
    l = Cmat.select_rows pencil.Loewner.l rows;
    lambda = Array.map (fun c -> pencil.Loewner.lambda.(c)) cols;
    mu = Array.map (fun r -> pencil.Loewner.mu.(r)) rows;
    right_sizes = Array.make (2 * n) 1;
    left_sizes = Array.make (2 * n) 1 }

let unit_residual model u =
  let hr = Statespace.Descriptor.eval model u.right_o.Tangential.lambda in
  let right =
    Cmat.norm_fro
      (Cmat.sub (Cmat.mul hr u.right_o.Tangential.r) u.right_o.Tangential.w)
  in
  let hl = Statespace.Descriptor.eval model u.left_o.Tangential.mu in
  let left =
    Cmat.norm_fro
      (Cmat.sub (Cmat.mul u.left_o.Tangential.l hl) u.left_o.Tangential.v)
  in
  (right +. left) /. Stdlib.max u.norm_u 1e-300

let check_finite_exn st sub =
  match Loewner.check_finite ~context:st.context sub with
  | Ok () -> ()
  | Result.Error e -> Mfti_error.raise_error e

let recurse st asm =
  let o = st.options in
  (match asm with
   | Batch -> check_finite_exn st (Option.get st.pencil)
   | Incremental -> ());
  let units = make_units st.data in
  let total = Array.length units in
  let bld =
    match asm with
    | Incremental ->
      Some
        (Loewner.builder
           ~right_capacity:(2 * Stdlib.min total (2 * o.batch))
           ~left_capacity:(2 * Stdlib.min total (2 * o.batch))
           ~inputs:st.data.Tangential.inputs
           ~outputs:st.data.Tangential.outputs ())
    | Batch -> None
  in
  let remaining = ref (Array.to_list (strided_order total o.batch)) in
  let selected = ref [] in
  let history = ref [] in
  (* Best model over the recursion, by mean held-out residual: the
     divergence and budget guards return it instead of the (worse)
     model of the iteration that tripped them. *)
  let best = ref None in
  let take n lst =
    let rec go n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> go (n - 1) (x :: acc) rest
    in
    go n [] lst
  in
  let best_or current =
    match !best with
    | Some (_, bm, br, bp, bi) -> (bm, br, bp, bi)
    | None -> current
  in
  let assemble_sub batch =
    match (asm, bld) with
    | Incremental, Some b ->
      (* O(selected * batch) new divided differences instead of the
         O(selected^2) re-selection the batch arm pays each round. *)
      let sub =
        timed st "assemble" (fun () ->
            List.iter
              (fun u ->
                let ud = units.(u) in
                Loewner.append_right b ud.right_o;
                Loewner.append_right b ud.right_c;
                Loewner.append_left b ud.left_o;
                Loewner.append_left b ud.left_c)
              batch;
            Loewner.snapshot b)
      in
      check_finite_exn st sub;
      sub
    | Batch, _ ->
      timed st "assemble" (fun () ->
          sub_pencil (Option.get st.pencil) units !selected)
    | Incremental, None -> assert false
  in
  let rec loop iter =
    let batch, rest = take o.batch !remaining in
    selected := !selected @ batch;
    remaining := rest;
    let sub = assemble_sub batch in
    let subr =
      if o.real_model then timed st "realify" (fun () -> Realify.apply sub)
      else sub
    in
    let reduced =
      timed st "reduce" (fun () ->
          Svd_reduce.reduce ~mode:o.mode ~rank_rule:o.rank_rule
            ~backend:o.svd subr)
    in
    let model = reduced.Svd_reduce.model in
    match !remaining with
    | [] ->
      history := Float.nan :: !history;
      (model, reduced, subr, iter)
    | rest ->
      (* With [probe = Some n] only a strided subsample of the held-out
         units is scored — the reorder then ranks the probed units and
         keeps the rest in place.  [None] scores everything (exact
         Algorithm 2). *)
      let probed, unprobed =
        match o.probe with
        | Some n when List.length rest > n ->
          let len = List.length rest in
          let stride = (len + n - 1) / n in
          ( List.filteri (fun i _ -> i mod stride = 0) rest,
            List.filteri (fun i _ -> i mod stride <> 0) rest )
        | _ -> (rest, [])
      in
      let errs =
        timed st "evaluate" (fun () ->
            List.map (fun u -> (u, unit_residual model units.(u))) probed)
      in
      let mean =
        List.fold_left (fun acc (_, e) -> acc +. e) 0. errs
        /. float_of_int (List.length errs)
      in
      (* deterministic injection point for the recursion layer:
         residuals exploding across iterations *)
      let mean =
        if Fault.armed "algorithm2.diverge" then
          mean *. (10. ** float_of_int (10 * iter))
        else mean
      in
      history := mean :: !history;
      let improved =
        (not (Float.is_nan mean))
        && (match !best with
            | Some (m, _, _, _, _) -> mean < m
            | None -> true)
      in
      if improved then best := Some (mean, model, reduced, subr, iter);
      if mean <= o.threshold then (model, reduced, subr, iter)
      else begin
        let diverged =
          Float.is_nan mean
          || (match !best with
              | Some (bmean, _, _, _, _) ->
                mean > o.divergence_factor *. bmean
              | None -> false)
        in
        if diverged then begin
          Diag.record ~site:"algorithm2.divergence"
            (Printf.sprintf
               "held-out residual %.3g exploded past %g x best; returning \
                best-so-far model"
               mean o.divergence_factor);
          best_or (model, reduced, subr, iter)
        end
        else if iter >= o.max_iterations then begin
          Diag.record ~site:"algorithm2.max_iterations"
            (Printf.sprintf
               "threshold %.3g not reached after %d iterations (best \
                residual %.3g)"
               o.threshold iter
               (match !best with Some (m, _, _, _, _) -> m | None -> mean));
          best_or (model, reduced, subr, iter)
        end
        else if Unix.gettimeofday () -. st.started > o.iteration_budget
        then begin
          Diag.record ~site:"algorithm2.budget_exhausted"
            (Printf.sprintf
               "wall-time budget %.3g s exhausted at iteration %d; returning \
                best-so-far model"
               o.iteration_budget iter);
          best_or (model, reduced, subr, iter)
        end
        else begin
          (* Visit the worst-fitting held-out units next. *)
          let sorted = List.sort (fun (_, a) (_, b) -> compare b a) errs in
          remaining := List.map fst sorted @ unprobed;
          loop (iter + 1)
        end
      end
  in
  let _model, reduced, subr, iterations = loop 1 in
  st.realified <- Some subr;
  st.reduction <- Some reduced;
  st.selected_units <- List.length !selected;
  st.total_units <- total;
  st.iterations <- iterations;
  st.history <- Array.of_list (List.rev !history)

let reduce_raw st =
  match st.reduction with
  | Some _ -> ()
  | None ->
    (match st.strategy with
     | Recursive asm ->
       (match asm with Batch -> assemble_raw st | Incremental -> ());
       recurse st asm
     | Direct | Vector ->
       realify_raw st;
       let p = Option.get st.realified in
       check_finite_exn st p;
       let reduced =
         timed st "reduce" (fun () ->
             Svd_reduce.reduce ~mode:st.options.mode
               ~rank_rule:st.options.rank_rule ~backend:st.options.svd p)
       in
       st.reduction <- Some reduced;
       let width = Tangential.right_width st.data in
       st.selected_units <- width;
       st.total_units <- width;
       st.iterations <- 1;
       st.history <- [||])

(* ------------------------------------------------------------------ *)
(* Certification stage *)

let certify_raw st =
  match st.certified with
  | Some _ -> ()
  | None ->
    reduce_raw st;
    let model = (Option.get st.reduction).Svd_reduce.model in
    (match st.options.certify with
     | Certify.Off -> st.certified <- Some (model, None)
     | mode ->
       let copts = { Certify.default_options with mode } in
       let freqs = Dataset.frequencies st.dataset in
       (match
          timed st "certify" (fun () -> Certify.run ~options:copts ~freqs model)
        with
        | Ok pair -> st.certified <- Some pair
        | Result.Error e -> Mfti_error.raise_error e))

let complete st = certify_raw st

(* ------------------------------------------------------------------ *)
(* Public stage wrappers *)

let staged st f =
  Diag.using st.diagnostics (fun () -> Mfti_error.guard ~context:st.context f)

let assemble st = staged st (fun () -> assemble_raw st)
let realify st = staged st (fun () -> realify_raw st)
let reduce st = staged st (fun () -> reduce_raw st)
let certify st = staged st (fun () -> certify_raw st)

let stage st =
  match st.certified with
  | Some _ -> Certified
  | None ->
    (match st.reduction with
     | Some _ -> Reduced
     | None ->
       (match st.realified with
        | Some _ -> Realified
        | None ->
          (match st.pencil with Some _ -> Assembled | None -> Ingested)))

let tangential st = st.data
let dataset st = st.dataset
let pencil st = st.pencil
let reduction st = st.reduction
let diagnostics st = st.diagnostics
let timings st = st.timings

(* ------------------------------------------------------------------ *)
(* Unified fit record and model *)

type fit = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
  data : Tangential.t;
  loewner : Loewner.t;
  selected_units : int;
  total_units : int;
  iterations : int;
  history : float array;
  certificate : Certify.Certificate.t option;
  diagnostics : Diag.t;
  timings : (string * float) list;
}

let fit_of_state st =
  let reduced = Option.get st.reduction in
  let loewner =
    match st.realified with Some p -> p | None -> Option.get st.pencil
  in
  let model, certificate =
    match st.certified with
    | Some (m, c) -> (m, c)
    | None -> (reduced.Svd_reduce.model, None)
  in
  { model;
    rank = reduced.Svd_reduce.rank;
    sigma = reduced.Svd_reduce.sigma;
    data = st.data;
    loewner;
    selected_units = st.selected_units;
    total_units = st.total_units;
    iterations = st.iterations;
    history = st.history;
    certificate;
    diagnostics = st.diagnostics;
    timings = st.timings }

module Model = struct
  type stats = {
    selected_units : int;
    total_units : int;
    iterations : int;
    history : float array;
  }

  type t = {
    descriptor : Statespace.Descriptor.t;
    rank : int;
    sigma : float array;
    stats : stats option;
    certificate : Certify.Certificate.t option;
    diagnostics : Diag.t;
    timings : (string * float) list;
  }

  let make ?(sigma = [||]) ?stats ?certificate ?diagnostics ?(timings = [])
      ~rank descriptor =
    let diagnostics =
      match diagnostics with Some d -> d | None -> Diag.create ()
    in
    { descriptor; rank; sigma; stats; certificate; diagnostics; timings }

  let of_fit f =
    { descriptor = f.model;
      rank = f.rank;
      sigma = f.sigma;
      stats =
        Some
          { selected_units = f.selected_units;
            total_units = f.total_units;
            iterations = f.iterations;
            history = f.history };
      certificate = f.certificate;
      diagnostics = f.diagnostics;
      timings = f.timings }

  let descriptor m = m.descriptor
  let rank m = m.rank
  let sigma m = m.sigma
  let stats m = m.stats
  let certificate m = m.certificate

  let certify ?options ~freqs m =
    match Certify.run ?options ~freqs m.descriptor with
    | Ok (descriptor, certificate) -> Ok { m with descriptor; certificate }
    | Result.Error e -> Result.Error e

  let diagnostics m = m.diagnostics
  let timings m = m.timings
  let order m = Statespace.Descriptor.order m.descriptor
  let inputs m = Statespace.Descriptor.inputs m.descriptor
  let outputs m = Statespace.Descriptor.outputs m.descriptor
  let eval m s = Statespace.Descriptor.eval m.descriptor s
  let eval_freq m f = Statespace.Descriptor.eval_freq m.descriptor f
  let poles ?infinite_tol m =
    Statespace.Poles.finite_poles ?infinite_tol m.descriptor
  let stable ?infinite_tol m =
    Statespace.Poles.is_stable ?infinite_tol m.descriptor
  let is_real ?tol m = Statespace.Descriptor.is_real ?tol m.descriptor
  let save path m = Statespace.Descriptor.save path m.descriptor
  let err m samples = Metrics.err m.descriptor samples
  let err_vector m samples = Metrics.err_vector m.descriptor samples
  let max_err m samples = Metrics.max_err m.descriptor samples
  let report ~name m samples = Metrics.report ~name m.descriptor samples
end

let model st =
  staged st (fun () ->
      complete st;
      Model.of_fit (fit_of_state st))

(* ------------------------------------------------------------------ *)
(* One-shot drivers *)

let run ?options ?strategy dataset =
  match ingest ?options ?strategy dataset with
  | Result.Error e -> Result.Error e
  | Ok st ->
    staged st (fun () ->
        complete st;
        fit_of_state st)

let run_exn ?options ?strategy dataset =
  match run ?options ?strategy dataset with
  | Ok f -> f
  | Result.Error e -> Mfti_error.raise_error e

let fit_result ?options ?strategy samples =
  run ?options ?strategy (Dataset.of_samples samples)

let fit ?options ?strategy samples =
  match fit_result ?options ?strategy samples with
  | Ok f -> f
  | Result.Error e -> Mfti_error.raise_error e

(* ------------------------------------------------------------------ *)
(* Streaming fit sessions *)

module Session = struct
  (* A session is the staged pipeline turned inside out: instead of one
     ingest fixing the sample set forever, samples stream in and the
     incremental Loewner builder absorbs each completed right/left pair
     as one O(k) append.  The assemble stage therefore never reruns;
     an append only invalidates the downstream realify/reduce/certify
     caches, and a refit replays exactly those.

     Bit-identity with the batch path rests on two facts: direction
     streams depend only on (seed, block index, side), so the [k]-th
     streamed pair produces exactly the blocks [Tangential.build] makes
     for position [k]; and every builder entry comes from the same
     fixed-order scalar formula regardless of append schedule, so the
     snapshot equals [Loewner.build] on the same data bitwise. *)

  type counters = {
    appended : int;    (** fit samples accepted over the session *)
    held_out : int;    (** hold-out samples accepted *)
    refits : int;      (** reduce-stage reruns *)
    suggests : int;    (** adaptive suggestions served (see {!record_suggest}) *)
  }

  type t = {
    s_options : options;
    s_inputs : int;
    s_outputs : int;
    s_right_width : int;
    s_left_width : int;
    s_diag : Diag.t;
    s_builder : Loewner.builder;
    s_freqs : (float, unit) Hashtbl.t;        (* fit + pending frequencies *)
    s_holdout_freqs : (float, unit) Hashtbl.t;
    mutable s_dataset : Dataset.t;            (* completed pairs + hold-out *)
    mutable s_pending : Statespace.Sampling.sample option;
    mutable s_blocks : int;                   (* completed pair count *)
    mutable s_realified : Loewner.t option;
    mutable s_reduction : Svd_reduce.result option;
    mutable s_certified :
      (Statespace.Descriptor.t * Certify.Certificate.t option) option;
    mutable s_finalized : bool;
    mutable s_invalidated : stage list;       (* dropped by the last append *)
    mutable s_appended : int;
    mutable s_held_out : int;
    mutable s_refits : int;
    mutable s_suggests : int;
    mutable s_timings : (string * float) list;
  }

  let context = "session"

  let stimed sess name f =
    let t0 = Unix.gettimeofday () in
    let x = f () in
    let dt = Unix.gettimeofday () -. t0 in
    (if List.mem_assoc name sess.s_timings then
       sess.s_timings <-
         List.map
           (fun (n, v) -> if String.equal n name then (n, v +. dt) else (n, v))
           sess.s_timings
     else sess.s_timings <- sess.s_timings @ [ (name, dt) ]);
    x

  let invalid message =
    Mfti_error.raise_error (Mfti_error.Validation { context; message })

  let guarded sess f =
    Diag.using sess.s_diag (fun () -> Mfti_error.guard ~context f)

  let open_ ?(options = default_options) ~inputs ~outputs () =
    Mfti_error.guard ~context (fun () ->
        if inputs < 1 || outputs < 1 then
          invalid
            (Printf.sprintf "port dimensions must be positive (got %dx%d)"
               outputs inputs);
        let cap = Stdlib.min inputs outputs in
        let width =
          match options.weight with
          | Tangential.Full -> cap
          | Tangential.Uniform t ->
            if t < 1 || t > cap then
              invalid
                (Printf.sprintf "uniform width %d outside [1, %d]" t cap);
            t
          | Tangential.Per_sample _ ->
            invalid
              "Per_sample weights need the full sample count up front and \
               cannot drive a stream; use Full or Uniform"
        in
        { s_options = options;
          s_inputs = inputs;
          s_outputs = outputs;
          s_right_width = width;
          s_left_width = width;
          s_diag = Diag.create ();
          s_builder = Loewner.builder ~inputs ~outputs ();
          s_freqs = Hashtbl.create 64;
          s_holdout_freqs = Hashtbl.create 16;
          s_dataset = Dataset.of_samples [||];
          s_pending = None;
          s_blocks = 0;
          s_realified = None;
          s_reduction = None;
          s_certified = None;
          s_finalized = false;
          s_invalidated = [];
          s_appended = 0;
          s_held_out = 0;
          s_refits = 0;
          s_suggests = 0;
          s_timings = [] })

  (* Cached downstream results at this moment, outermost first — the
     stages an accepted fit append will drop. *)
  let cached_downstream sess =
    (if sess.s_certified <> None then [ Certified ] else [])
    @ (if sess.s_reduction <> None then [ Reduced ] else [])
    @ if sess.s_realified <> None then [ Realified ] else []

  let check_sample sess ~holdout (smp : Statespace.Sampling.sample) seen =
    let f = smp.Statespace.Sampling.freq in
    if not (Float.is_finite f && f > 0.) then
      invalid (Printf.sprintf "sample frequency %g must be finite and positive" f);
    let p = Cmat.rows smp.Statespace.Sampling.s in
    let m = Cmat.cols smp.Statespace.Sampling.s in
    if p <> sess.s_outputs || m <> sess.s_inputs then
      invalid
        (Printf.sprintf "sample is %dx%d, session is %dx%d" p m
           sess.s_outputs sess.s_inputs);
    for i = 0 to p - 1 do
      for j = 0 to m - 1 do
        let z = Cmat.get smp.Statespace.Sampling.s i j in
        if not (Float.is_finite z.Cx.re && Float.is_finite z.Cx.im) then
          invalid
            (Printf.sprintf "non-finite entry (%d,%d) in sample at %g Hz" i j f)
      done
    done;
    let table = if holdout then sess.s_holdout_freqs else sess.s_freqs in
    if Hashtbl.mem table f || List.mem f seen then
      invalid (Printf.sprintf "duplicate sample frequency %g" f);
    f :: seen

  (* Append a batch of samples.  All-or-nothing: the whole batch is
     vetted against the session (and itself) before any state changes,
     so a refused batch leaves the session exactly as it was. *)
  let append ?(holdout = false) sess samples =
    guarded sess (fun () ->
        if sess.s_finalized then
          invalid "session is finalized; open a new one to keep fitting";
        if Fault.armed "session.stale_append" then
          invalid
            "stale append: the session expired between suggest and append \
             (fault session.stale_append)";
        let seen = ref [] in
        Array.iter
          (fun smp -> seen := check_sample sess ~holdout smp !seen)
          samples;
        if holdout then begin
          Array.iter
            (fun (smp : Statespace.Sampling.sample) ->
              Hashtbl.replace sess.s_holdout_freqs smp.Statespace.Sampling.freq ())
            samples;
          sess.s_dataset <- Dataset.append_holdout samples sess.s_dataset;
          sess.s_held_out <- sess.s_held_out + Array.length samples;
          []
        end
        else begin
          let dropped =
            if Array.length samples = 0 then [] else cached_downstream sess
          in
          stimed sess "assemble" (fun () ->
              Array.iter
                (fun (smp : Statespace.Sampling.sample) ->
                  Hashtbl.replace sess.s_freqs smp.Statespace.Sampling.freq ();
                  match sess.s_pending with
                  | None -> sess.s_pending <- Some smp
                  | Some sr ->
                    let (ro, rc), (lo, lc) =
                      Tangential.pair ~directions:sess.s_options.directions
                        ~block:sess.s_blocks
                        ~right_width:sess.s_right_width
                        ~left_width:sess.s_left_width sr smp
                    in
                    Loewner.append_right sess.s_builder ro;
                    Loewner.append_right sess.s_builder rc;
                    Loewner.append_left sess.s_builder lo;
                    Loewner.append_left sess.s_builder lc;
                    sess.s_dataset <-
                      Dataset.append_fit [| sr; smp |] sess.s_dataset;
                    sess.s_pending <- None;
                    sess.s_blocks <- sess.s_blocks + 1)
                samples);
          sess.s_appended <- sess.s_appended + Array.length samples;
          if Array.length samples > 0 then begin
            sess.s_realified <- None;
            sess.s_reduction <- None;
            sess.s_certified <- None;
            sess.s_invalidated <- dropped
          end;
          dropped
        end)

  (* Downstream-only refit: snapshot the (already assembled) builder,
     then realify + reduce.  Never rebuilds divided differences. *)
  let realify_raw sess =
    match sess.s_realified with
    | Some _ -> ()
    | None ->
      if sess.s_blocks < 1 then
        invalid "no complete sample pair yet; append at least 2 samples";
      let p = stimed sess "snapshot" (fun () -> Loewner.snapshot sess.s_builder) in
      (match Loewner.check_finite ~context p with
       | Ok () -> ()
       | Result.Error e -> Mfti_error.raise_error e);
      let q =
        if sess.s_options.real_model then
          stimed sess "realify" (fun () -> Realify.apply p)
        else p
      in
      sess.s_realified <- Some q

  let reduce_raw sess =
    match sess.s_reduction with
    | Some _ -> ()
    | None ->
      realify_raw sess;
      let p = Option.get sess.s_realified in
      let reduced =
        stimed sess "reduce" (fun () ->
            Svd_reduce.reduce ~mode:sess.s_options.mode
              ~rank_rule:sess.s_options.rank_rule ~backend:sess.s_options.svd p)
      in
      sess.s_reduction <- Some reduced;
      sess.s_refits <- sess.s_refits + 1

  let refit sess = guarded sess (fun () -> reduce_raw sess)

  let model_raw sess =
    reduce_raw sess;
    let reduced = Option.get sess.s_reduction in
    let descriptor, certificate =
      match sess.s_certified with
      | Some (m, c) -> (m, c)
      | None -> (reduced.Svd_reduce.model, None)
    in
    Model.make ~sigma:reduced.Svd_reduce.sigma ?certificate
      ~diagnostics:sess.s_diag ~timings:sess.s_timings
      ~rank:reduced.Svd_reduce.rank descriptor

  let model sess = guarded sess (fun () -> model_raw sess)

  (* Certify (per the session options) and close.  The result is
     bit-identical to [run ~strategy:Direct] on the same completed
     pairs: same tangential blocks, same pencil bits, same downstream
     stages on identical input. *)
  let finalize sess =
    guarded sess (fun () ->
        if sess.s_finalized then invalid "session already finalized";
        if Fault.armed "session.finalize_race" then
          invalid
            "finalize raced another finalize on this session \
             (fault session.finalize_race)";
        if sess.s_blocks < 1 then
          invalid "cannot finalize before the first complete sample pair";
        (match sess.s_pending with
         | Some smp ->
           Diag.record ~site:"session.trim_even"
             (Printf.sprintf
                "finalize with an unpaired trailing sample at %g Hz; dropped \
                 (tangential split needs an even count)"
                smp.Statespace.Sampling.freq)
         | None -> ());
        reduce_raw sess;
        let reduced = Option.get sess.s_reduction in
        (match sess.s_options.certify with
         | Certify.Off ->
           sess.s_certified <- Some (reduced.Svd_reduce.model, None)
         | mode ->
           let copts = { Certify.default_options with mode } in
           let freqs = Dataset.frequencies sess.s_dataset in
           (match
              stimed sess "certify" (fun () ->
                  Certify.run ~options:copts ~freqs reduced.Svd_reduce.model)
            with
            | Ok pair -> sess.s_certified <- Some pair
            | Result.Error e -> Mfti_error.raise_error e));
        sess.s_finalized <- true;
        model_raw sess)

  let stage sess =
    match sess.s_certified with
    | Some _ -> Certified
    | None ->
      (match sess.s_reduction with
       | Some _ -> Reduced
       | None ->
         (match sess.s_realified with
          | Some _ -> Realified
          | None -> if sess.s_blocks > 0 then Assembled else Ingested))

  let dataset sess = sess.s_dataset
  let fit_samples sess = Dataset.fit_samples sess.s_dataset
  let holdout_samples sess = Dataset.holdout_samples sess.s_dataset
  let options sess = sess.s_options
  let dims sess = (sess.s_outputs, sess.s_inputs)
  let size sess = Dataset.size sess.s_dataset
  let holdout_size sess = Dataset.holdout_size sess.s_dataset
  let pending sess = sess.s_pending <> None
  let finalized sess = sess.s_finalized
  let invalidated sess = sess.s_invalidated
  let diagnostics sess = sess.s_diag
  let timings sess = sess.s_timings
  let record_suggest sess = sess.s_suggests <- sess.s_suggests + 1

  let counters sess =
    { appended = sess.s_appended;
      held_out = sess.s_held_out;
      refits = sess.s_refits;
      suggests = sess.s_suggests }

  (* Hold-out error of the current model; [None] before the first pair
     or when no hold-out samples exist. *)
  let holdout_err sess =
    if sess.s_blocks < 1 || Dataset.holdout_size sess.s_dataset = 0 then
      Ok None
    else
      match model sess with
      | Ok m ->
        Ok (Some (Metrics.err (Model.descriptor m)
                    (Dataset.holdout_samples sess.s_dataset)))
      | Result.Error e -> Result.Error e
end
