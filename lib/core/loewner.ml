open Linalg

type t = {
  ll : Cmat.t;
  sll : Cmat.t;
  w : Cmat.t;
  v : Cmat.t;
  r : Cmat.t;
  l : Cmat.t;
  lambda : Cx.t array;
  mu : Cx.t array;
  right_sizes : int array;
  left_sizes : int array;
}

let build (data : Tangential.t) =
  let right = data.Tangential.right and left = data.Tangential.left in
  let right_sizes = Tangential.right_sizes data in
  let left_sizes = Tangential.left_sizes data in
  let kr = Array.fold_left ( + ) 0 right_sizes in
  let kl = Array.fold_left ( + ) 0 left_sizes in
  let m = data.Tangential.inputs and p = data.Tangential.outputs in
  let col_off = Array.make (Array.length right_sizes) 0 in
  for i = 1 to Array.length right_sizes - 1 do
    col_off.(i) <- col_off.(i - 1) + right_sizes.(i - 1)
  done;
  let row_off = Array.make (Array.length left_sizes) 0 in
  for i = 1 to Array.length left_sizes - 1 do
    row_off.(i) <- row_off.(i - 1) + left_sizes.(i - 1)
  done;
  let ll = Cmat.zeros kl kr and sll = Cmat.zeros kl kr in
  let w = Cmat.zeros p kr and r = Cmat.zeros m kr in
  let v = Cmat.zeros kl m and l = Cmat.zeros kl p in
  let lambda = Array.make kr Cx.zero and mu = Array.make kl Cx.zero in
  Array.iteri
    (fun j (rb : Tangential.right_block) ->
      let off = col_off.(j) in
      Cmat.set_sub w ~r:0 ~c:off rb.Tangential.w;
      Cmat.set_sub r ~r:0 ~c:off rb.Tangential.r;
      for c = 0 to right_sizes.(j) - 1 do
        lambda.(off + c) <- rb.Tangential.lambda
      done)
    right;
  Array.iteri
    (fun i (lb : Tangential.left_block) ->
      let off = row_off.(i) in
      Cmat.set_sub v ~r:off ~c:0 lb.Tangential.v;
      Cmat.set_sub l ~r:off ~c:0 lb.Tangential.l;
      for c = 0 to left_sizes.(i) - 1 do
        mu.(off + c) <- lb.Tangential.mu
      done)
    left;
  (* The per-pair products [v_i * r_j] and [l_i * w_j] of the classic
     assembly are exactly the blocks of the aggregated products [V R]
     and [L W], so two (parallel, blocked) matrix products replace the
     kl x kr small-product loop, and the divided differences

       ll(a,b)  = (vr(a,b) - lw(a,b)) / (mu_a - lambda_b)
       sll(a,b) = (mu_a vr(a,b) - lambda_b lw(a,b)) / (mu_a - lambda_b)

     fill [ll] / [sll] entrywise in place — no per-pair temporaries.
     Columns write disjoint ranges, so the fill runs on the domain
     pool; per-entry arithmetic is chunking-invariant, hence results
     do not depend on the domain count. *)
  let vr = Cmat.mul v r and lw = Cmat.mul l w in
  let vrre = Cmat.unsafe_re vr and vrim = Cmat.unsafe_im vr in
  let lwre = Cmat.unsafe_re lw and lwim = Cmat.unsafe_im lw in
  let llre = Cmat.unsafe_re ll and llim = Cmat.unsafe_im ll in
  let sllre = Cmat.unsafe_re sll and sllim = Cmat.unsafe_im sll in
  Parallel.parallel_for kr (fun j0 j1 ->
      for jcol = j0 to j1 - 1 do
        let lam = lambda.(jcol) in
        let lr = lam.Cx.re and li = lam.Cx.im in
        let off = jcol * kl in
        for a = 0 to kl - 1 do
          let mu_a = mu.(a) in
          let mr = mu_a.Cx.re and mi = mu_a.Cx.im in
          (* unboxed complex arithmetic: [Cx.inv] / [Cx.abs] go through
             scaled division and [hypot], an order of magnitude slower
             than this fill's worth of flops *)
          let dr = mr -. lr and di = mi -. li in
          if dr = 0. && di = 0. then
            invalid_arg "Loewner.build: coincident left and right points";
          let d2 = (dr *. dr) +. (di *. di) in
          let s = 1. /. d2 in
          let ir = dr *. s and ii = -.di *. s in
          let k = off + a in
          let vr_r = vrre.(k) and vr_i = vrim.(k) in
          let lw_r = lwre.(k) and lw_i = lwim.(k) in
          let tr = vr_r -. lw_r and ti = vr_i -. lw_i in
          llre.(k) <- (tr *. ir) -. (ti *. ii);
          llim.(k) <- (tr *. ii) +. (ti *. ir);
          let sr = (mr *. vr_r) -. (mi *. vr_i) -. ((lr *. lw_r) -. (li *. lw_i))
          and si = (mr *. vr_i) +. (mi *. vr_r) -. ((lr *. lw_i) +. (li *. lw_r))
          in
          sllre.(k) <- (sr *. ir) -. (si *. ii);
          sllim.(k) <- (sr *. ii) +. (si *. ir)
        done
      done);
  (* Deterministic injection point: a NaN planted in the assembled
     pencil models numerical garbage propagating out of the divided
     differences — caught downstream by [check_finite]. *)
  if Array.length llre > 0 then
    llre.(0) <- Fault.poison "loewner.poison" llre.(0);
  { ll; sll; w; v; r; l; lambda; mu; right_sizes; left_sizes }

let check_finite ?(context = "loewner") t =
  if Cmat.is_finite t.ll && Cmat.is_finite t.sll then Ok ()
  else
    Result.Error
      (Mfti_error.Numerical_breakdown
         { context;
           message =
             "non-finite entries in the Loewner pencil (corrupt samples or \
              near-coincident interpolation points)";
           condition = None })

let sylvester_residuals t =
  let lw = Cmat.mul t.l t.w in
  let vr = Cmat.mul t.v t.r in
  let scale_cols m diag = Cmat.mapi (fun _ jcol x -> Cx.mul x diag.(jcol)) m in
  let scale_rows m diag = Cmat.mapi (fun i _ x -> Cx.mul diag.(i) x) m in
  let res1 =
    Cmat.sub
      (Cmat.sub (scale_cols t.ll t.lambda) (scale_rows t.ll t.mu))
      (Cmat.sub lw vr)
  in
  let res2 =
    Cmat.sub
      (Cmat.sub (scale_cols t.sll t.lambda) (scale_rows t.sll t.mu))
      (Cmat.sub (scale_cols lw t.lambda) (scale_rows vr t.mu))
  in
  (Cmat.norm_fro res1, Cmat.norm_fro res2)

let ll_via_sylvester t =
  let f = Cmat.sub (Cmat.mul t.l t.w) (Cmat.mul t.v t.r) in
  Sylvester.solve_diag ~mu:t.mu ~lambda:t.lambda f
