open Linalg

type t = {
  ll : Cmat.t;
  sll : Cmat.t;
  w : Cmat.t;
  v : Cmat.t;
  r : Cmat.t;
  l : Cmat.t;
  lambda : Cx.t array;
  mu : Cx.t array;
  right_sizes : int array;
  left_sizes : int array;
}

(* ------------------------------------------------------------------ *)
(* Incremental builder.

   The pencil is stored column-wise in growable arrays so appending a
   tangential block only allocates/fills the new strip.  Every entry is
   produced by [fill_entry]: a fixed scalar accumulation over the ports
   that depends only on the entry's own row/column data — never on how
   large the pencil was when the entry was computed, nor on the chunking
   of the parallel fill.  That schedule independence is what makes an
   incrementally grown pencil bit-identical to a batch {!build} of the
   same data (and to itself under any domain count); it is also why the
   aggregated-GEMM assembly of the previous revision had to go — the
   blocked kernel's accumulation order depends on the operand sizes. *)

type builder = {
  inputs : int;                         (* m: rows of R, columns of V *)
  outputs : int;                        (* p: rows of W, columns of L *)
  mutable kr : int;                     (* live columns *)
  mutable kl : int;                     (* live rows *)
  mutable cap_r : int;
  mutable cap_l : int;
  (* pencil column [j] lives in [ll_re.(j)], rows [0 .. kl-1] valid *)
  mutable ll_re : float array array;
  mutable ll_im : float array array;
  mutable sll_re : float array array;
  mutable sll_im : float array array;
  (* stacked left data, column-wise with row capacity [cap_l]:
     [v_re.(q).(a)] is V(a,q), [l_re.(q).(a)] is L(a,q) *)
  v_re : float array array;             (* length m *)
  v_im : float array array;
  l_re : float array array;             (* length p *)
  l_im : float array array;
  (* stacked right data: column [j] of W (length p) and of R (length m) *)
  mutable w_re : float array array;
  mutable w_im : float array array;
  mutable r_re : float array array;
  mutable r_im : float array array;
  mutable lambda : Cx.t array;          (* capacity cap_r *)
  mutable mu : Cx.t array;              (* capacity cap_l *)
  mutable right_sizes_rev : int list;
  mutable left_sizes_rev : int list;
}

let builder ?(right_capacity = 16) ?(left_capacity = 16) ~inputs ~outputs () =
  if inputs < 1 || outputs < 1 then
    invalid_arg "Loewner.builder: port counts must be positive";
  let cap_r = Stdlib.max 1 right_capacity in
  let cap_l = Stdlib.max 1 left_capacity in
  { inputs; outputs; kr = 0; kl = 0; cap_r; cap_l;
    ll_re = Array.make cap_r [||]; ll_im = Array.make cap_r [||];
    sll_re = Array.make cap_r [||]; sll_im = Array.make cap_r [||];
    v_re = Array.init inputs (fun _ -> Array.make cap_l 0.);
    v_im = Array.init inputs (fun _ -> Array.make cap_l 0.);
    l_re = Array.init outputs (fun _ -> Array.make cap_l 0.);
    l_im = Array.init outputs (fun _ -> Array.make cap_l 0.);
    w_re = Array.make cap_r [||]; w_im = Array.make cap_r [||];
    r_re = Array.make cap_r [||]; r_im = Array.make cap_r [||];
    lambda = Array.make cap_r Cx.zero;
    mu = Array.make cap_l Cx.zero;
    right_sizes_rev = []; left_sizes_rev = [] }

let builder_dims b = (b.kl, b.kr)

let grow_floats a cap =
  let g = Array.make cap 0. in
  Array.blit a 0 g 0 (Array.length a);
  g

let grow_cap cap needed =
  let c = ref (Stdlib.max 1 cap) in
  while !c < needed do
    c := !c * 2
  done;
  !c

let ensure_rows b needed =
  if needed > b.cap_l then begin
    let cap = grow_cap b.cap_l needed in
    for j = 0 to b.kr - 1 do
      b.ll_re.(j) <- grow_floats b.ll_re.(j) cap;
      b.ll_im.(j) <- grow_floats b.ll_im.(j) cap;
      b.sll_re.(j) <- grow_floats b.sll_re.(j) cap;
      b.sll_im.(j) <- grow_floats b.sll_im.(j) cap
    done;
    for q = 0 to b.inputs - 1 do
      b.v_re.(q) <- grow_floats b.v_re.(q) cap;
      b.v_im.(q) <- grow_floats b.v_im.(q) cap
    done;
    for q = 0 to b.outputs - 1 do
      b.l_re.(q) <- grow_floats b.l_re.(q) cap;
      b.l_im.(q) <- grow_floats b.l_im.(q) cap
    done;
    let mu = Array.make cap Cx.zero in
    Array.blit b.mu 0 mu 0 b.kl;
    b.mu <- mu;
    b.cap_l <- cap
  end

let grow_outer a cap =
  let g = Array.make cap [||] in
  Array.blit a 0 g 0 (Array.length a);
  g

let ensure_cols b needed =
  if needed > b.cap_r then begin
    let cap = grow_cap b.cap_r needed in
    b.ll_re <- grow_outer b.ll_re cap;
    b.ll_im <- grow_outer b.ll_im cap;
    b.sll_re <- grow_outer b.sll_re cap;
    b.sll_im <- grow_outer b.sll_im cap;
    b.w_re <- grow_outer b.w_re cap;
    b.w_im <- grow_outer b.w_im cap;
    b.r_re <- grow_outer b.r_re cap;
    b.r_im <- grow_outer b.r_im cap;
    let lambda = Array.make cap Cx.zero in
    Array.blit b.lambda 0 lambda 0 b.kr;
    b.lambda <- lambda;
    b.cap_r <- cap
  end

(* One pencil entry at row [a], column [jcol]:

     vr = V(a,:) . R(:,j)    lw = L(a,:) . W(:,j)
     ll(a,j)  = (vr - lw) / (mu_a - lambda_j)
     sll(a,j) = (mu_a vr - lambda_j lw) / (mu_a - lambda_j)

   Unboxed complex arithmetic ([Cx.inv] / [Cx.abs] go through scaled
   division and [hypot], an order of magnitude slower than this fill's
   worth of flops); the port loops always run in ascending order. *)
let fill_entry b a jcol =
  let lam = b.lambda.(jcol) in
  let lr = lam.Cx.re and li = lam.Cx.im in
  let mu_a = b.mu.(a) in
  let mr = mu_a.Cx.re and mi = mu_a.Cx.im in
  let dr = mr -. lr and di = mi -. li in
  if dr = 0. && di = 0. then
    invalid_arg "Loewner.build: coincident left and right points";
  let d2 = (dr *. dr) +. (di *. di) in
  let s = 1. /. d2 in
  let ir = dr *. s and ii = -.di *. s in
  let rc_re = b.r_re.(jcol) and rc_im = b.r_im.(jcol) in
  let vr_r = ref 0. and vr_i = ref 0. in
  for q = 0 to b.inputs - 1 do
    let xr = b.v_re.(q).(a) and xi = b.v_im.(q).(a) in
    let yr = rc_re.(q) and yi = rc_im.(q) in
    vr_r := !vr_r +. ((xr *. yr) -. (xi *. yi));
    vr_i := !vr_i +. ((xr *. yi) +. (xi *. yr))
  done;
  let wc_re = b.w_re.(jcol) and wc_im = b.w_im.(jcol) in
  let lw_r = ref 0. and lw_i = ref 0. in
  for q = 0 to b.outputs - 1 do
    let xr = b.l_re.(q).(a) and xi = b.l_im.(q).(a) in
    let yr = wc_re.(q) and yi = wc_im.(q) in
    lw_r := !lw_r +. ((xr *. yr) -. (xi *. yi));
    lw_i := !lw_i +. ((xr *. yi) +. (xi *. yr))
  done;
  let vr_r = !vr_r and vr_i = !vr_i in
  let lw_r = !lw_r and lw_i = !lw_i in
  let tr = vr_r -. lw_r and ti = vr_i -. lw_i in
  b.ll_re.(jcol).(a) <- (tr *. ir) -. (ti *. ii);
  b.ll_im.(jcol).(a) <- (tr *. ii) +. (ti *. ir);
  let sr = (mr *. vr_r) -. (mi *. vr_i) -. ((lr *. lw_r) -. (li *. lw_i))
  and si = (mr *. vr_i) +. (mi *. vr_r) -. ((lr *. lw_i) +. (li *. lw_r)) in
  b.sll_re.(jcol).(a) <- (sr *. ir) -. (si *. ii);
  b.sll_im.(jcol).(a) <- (sr *. ii) +. (si *. ir)

(* Entries are independent, so the rectangle can be tiled along either
   axis; parallelize the longer one.  Chunking cannot affect the result
   ([fill_entry] is per-entry pure), so any domain count gives the same
   bits. *)
(* Below this many multiply-adds the pool handshake costs more than
   the fill itself (BENCH_kernels: 4 ports / 16 samples ran at 1.12x
   on 4 domains); [~chunk] spanning the whole range keeps the loop
   inline in the caller.  The cutoff is a work estimate, not a domain
   count, so chunking still cannot affect the result. *)
let fill_work_cutoff = 65536

let fill_rect b ~r0 ~r1 ~c0 ~c1 =
  let nr = r1 - r0 and nc = c1 - c0 in
  if nr > 0 && nc > 0 then begin
    let small = nr * nc * (b.inputs + b.outputs) < fill_work_cutoff in
    if nc >= nr then
      let chunk = if small then Some nc else None in
      Parallel.parallel_for ?chunk nc (fun j0 j1 ->
          for jcol = c0 + j0 to c0 + j1 - 1 do
            for a = r0 to r1 - 1 do
              fill_entry b a jcol
            done
          done)
    else
      let chunk = if small then Some nr else None in
      Parallel.parallel_for ?chunk nr (fun i0 i1 ->
          for a = r0 + i0 to r0 + i1 - 1 do
            for jcol = c0 to c1 - 1 do
              fill_entry b a jcol
            done
          done)
  end

(* Copy a right block's columns in without computing anything. *)
let push_right_data b (rb : Tangential.right_block) =
  let m = b.inputs and p = b.outputs in
  let t = Cmat.cols rb.Tangential.r in
  if t < 1 then invalid_arg "Loewner.append_right: empty block";
  if Cmat.rows rb.Tangential.r <> m then
    invalid_arg "Loewner.append_right: direction rows must equal the input count";
  if Cmat.rows rb.Tangential.w <> p || Cmat.cols rb.Tangential.w <> t then
    invalid_arg "Loewner.append_right: data block must be outputs x width";
  ensure_cols b (b.kr + t);
  let rre = Cmat.unsafe_re rb.Tangential.r
  and rim = Cmat.unsafe_im rb.Tangential.r in
  let wre = Cmat.unsafe_re rb.Tangential.w
  and wim = Cmat.unsafe_im rb.Tangential.w in
  for c = 0 to t - 1 do
    let j = b.kr + c in
    b.ll_re.(j) <- Array.make b.cap_l 0.;
    b.ll_im.(j) <- Array.make b.cap_l 0.;
    b.sll_re.(j) <- Array.make b.cap_l 0.;
    b.sll_im.(j) <- Array.make b.cap_l 0.;
    let cr = Array.make m 0. and ci = Array.make m 0. in
    Array.blit rre (c * m) cr 0 m;
    Array.blit rim (c * m) ci 0 m;
    b.r_re.(j) <- cr;
    b.r_im.(j) <- ci;
    let cr = Array.make p 0. and ci = Array.make p 0. in
    Array.blit wre (c * p) cr 0 p;
    Array.blit wim (c * p) ci 0 p;
    b.w_re.(j) <- cr;
    b.w_im.(j) <- ci;
    b.lambda.(j) <- rb.Tangential.lambda
  done;
  b.kr <- b.kr + t;
  b.right_sizes_rev <- t :: b.right_sizes_rev;
  t

let push_left_data b (lb : Tangential.left_block) =
  let m = b.inputs and p = b.outputs in
  let t = Cmat.rows lb.Tangential.l in
  if t < 1 then invalid_arg "Loewner.append_left: empty block";
  if Cmat.cols lb.Tangential.l <> p then
    invalid_arg "Loewner.append_left: direction columns must equal the output count";
  if Cmat.rows lb.Tangential.v <> t || Cmat.cols lb.Tangential.v <> m then
    invalid_arg "Loewner.append_left: data block must be width x inputs";
  ensure_rows b (b.kl + t);
  let lre = Cmat.unsafe_re lb.Tangential.l
  and lim = Cmat.unsafe_im lb.Tangential.l in
  (* column q of the t x p block is contiguous at [q*t, q*t + t) *)
  for q = 0 to p - 1 do
    Array.blit lre (q * t) b.l_re.(q) b.kl t;
    Array.blit lim (q * t) b.l_im.(q) b.kl t
  done;
  let vre = Cmat.unsafe_re lb.Tangential.v
  and vim = Cmat.unsafe_im lb.Tangential.v in
  for q = 0 to m - 1 do
    Array.blit vre (q * t) b.v_re.(q) b.kl t;
    Array.blit vim (q * t) b.v_im.(q) b.kl t
  done;
  for c = 0 to t - 1 do
    b.mu.(b.kl + c) <- lb.Tangential.mu
  done;
  b.kl <- b.kl + t;
  b.left_sizes_rev <- t :: b.left_sizes_rev;
  t

let append_right b rb =
  let c0 = b.kr in
  let t = push_right_data b rb in
  fill_rect b ~r0:0 ~r1:b.kl ~c0 ~c1:(c0 + t)

let append_left b lb =
  let r0 = b.kl in
  let t = push_left_data b lb in
  fill_rect b ~r0 ~r1:(r0 + t) ~c0:0 ~c1:b.kr

let append b rb lb =
  append_right b rb;
  append_left b lb

let of_tangential (data : Tangential.t) =
  let b =
    builder
      ~right_capacity:(Stdlib.max 1 (Tangential.right_width data))
      ~left_capacity:(Stdlib.max 1 (Tangential.left_width data))
      ~inputs:data.Tangential.inputs ~outputs:data.Tangential.outputs ()
  in
  Array.iter (fun rb -> ignore (push_right_data b rb)) data.Tangential.right;
  Array.iter (fun lb -> ignore (push_left_data b lb)) data.Tangential.left;
  fill_rect b ~r0:0 ~r1:b.kl ~c0:0 ~c1:b.kr;
  b

let snapshot b =
  let kl = b.kl and kr = b.kr in
  let m = b.inputs and p = b.outputs in
  let ll = Cmat.zeros kl kr and sll = Cmat.zeros kl kr in
  let llre = Cmat.unsafe_re ll and llim = Cmat.unsafe_im ll in
  let sllre = Cmat.unsafe_re sll and sllim = Cmat.unsafe_im sll in
  for j = 0 to kr - 1 do
    Array.blit b.ll_re.(j) 0 llre (j * kl) kl;
    Array.blit b.ll_im.(j) 0 llim (j * kl) kl;
    Array.blit b.sll_re.(j) 0 sllre (j * kl) kl;
    Array.blit b.sll_im.(j) 0 sllim (j * kl) kl
  done;
  let w = Cmat.zeros p kr and r = Cmat.zeros m kr in
  let wre = Cmat.unsafe_re w and wim = Cmat.unsafe_im w in
  let rre = Cmat.unsafe_re r and rim = Cmat.unsafe_im r in
  for j = 0 to kr - 1 do
    Array.blit b.w_re.(j) 0 wre (j * p) p;
    Array.blit b.w_im.(j) 0 wim (j * p) p;
    Array.blit b.r_re.(j) 0 rre (j * m) m;
    Array.blit b.r_im.(j) 0 rim (j * m) m
  done;
  let v = Cmat.zeros kl m and l = Cmat.zeros kl p in
  let vre = Cmat.unsafe_re v and vim = Cmat.unsafe_im v in
  for q = 0 to m - 1 do
    Array.blit b.v_re.(q) 0 vre (q * kl) kl;
    Array.blit b.v_im.(q) 0 vim (q * kl) kl
  done;
  let lre = Cmat.unsafe_re l and lim = Cmat.unsafe_im l in
  for q = 0 to p - 1 do
    Array.blit b.l_re.(q) 0 lre (q * kl) kl;
    Array.blit b.l_im.(q) 0 lim (q * kl) kl
  done;
  (* Deterministic injection point: a NaN planted in the assembled
     pencil models numerical garbage propagating out of the divided
     differences — caught downstream by [check_finite].  Planted at
     snapshot time so incremental and batch assembly share it. *)
  if Array.length llre > 0 then
    llre.(0) <- Fault.poison "loewner.poison" llre.(0);
  { ll; sll; w; v; r; l;
    lambda = Array.sub b.lambda 0 kr;
    mu = Array.sub b.mu 0 kl;
    right_sizes = Array.of_list (List.rev b.right_sizes_rev);
    left_sizes = Array.of_list (List.rev b.left_sizes_rev) }

let build data = snapshot (of_tangential data)

let check_finite ?(context = "loewner") t =
  if Cmat.is_finite t.ll && Cmat.is_finite t.sll then Ok ()
  else
    Result.Error
      (Mfti_error.Numerical_breakdown
         { context;
           message =
             "non-finite entries in the Loewner pencil (corrupt samples or \
              near-coincident interpolation points)";
           condition = None })

let sylvester_residuals t =
  let lw = Cmat.mul t.l t.w in
  let vr = Cmat.mul t.v t.r in
  let scale_cols m diag = Cmat.mapi (fun _ jcol x -> Cx.mul x diag.(jcol)) m in
  let scale_rows m diag = Cmat.mapi (fun i _ x -> Cx.mul diag.(i) x) m in
  let res1 =
    Cmat.sub
      (Cmat.sub (scale_cols t.ll t.lambda) (scale_rows t.ll t.mu))
      (Cmat.sub lw vr)
  in
  let res2 =
    Cmat.sub
      (Cmat.sub (scale_cols t.sll t.lambda) (scale_rows t.sll t.mu))
      (Cmat.sub (scale_cols lw t.lambda) (scale_rows vr t.mu))
  in
  (Cmat.norm_fro res1, Cmat.norm_fro res2)

let ll_via_sylvester t =
  let f = Cmat.sub (Cmat.mul t.l t.w) (Cmat.mul t.v t.r) in
  Sylvester.solve_diag ~mu:t.mu ~lambda:t.lambda f
