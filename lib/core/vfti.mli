(** Vector-format tangential interpolation — the paper's baseline
    (Section 2.1, after Lefteriu-Antoulas).

    Exactly the MFTI pipeline restricted to width-1 tangential blocks:
    each sampled matrix contributes one column (right data) or one row
    (left data) along a single direction, so most of the matrix is never
    seen by the interpolant.  A thin wrapper over {!Engine} with the
    [Vector] strategy, returning the same result record as
    {!Algorithm1} so the two are drop-in comparable.  New code should
    use {!Engine} directly — this interface is kept as a compatibility
    alias for one release. *)

type options = {
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;
}

val default_options : options

(** Typed-error variant, mirroring {!Algorithm1.fit_result}. *)
val fit_result :
  ?options:options -> Statespace.Sampling.sample array ->
  (Algorithm1.result, Linalg.Mfti_error.t) result

val fit : ?options:options -> Statespace.Sampling.sample array -> Algorithm1.result
