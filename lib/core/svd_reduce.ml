open Linalg

type mode = Pencil of Cx.t option | Stacked
type rank_rule = Fixed of int | Tol of float | Gap | Auto_noise
type backend = Auto | Randomized | Jacobi | Gk

type result = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
}

let default_mode = Stacked
let default_rank_rule = Gap
let default_backend = Auto

(* Below this spectrum length a sketch cannot beat the exact path, so
   [Auto] stays exact; above it the MFTI pencil is numerically
   low-rank (Lemma 3.3 bounds it by order + rank D) and the
   randomized range finder turns the reduce-stage SVD into parallel
   GEMMs. *)
let randomized_cutoff = 96

(* Decompose through the selected backend.  Returns the factorization
   plus a certified bound on every singular value a truncated
   (randomized) spectrum cut off, for the tail-aware rank rules. *)
let decompose_backend backend a =
  let exact_auto x = (Svd.decompose x, None) in
  let randomized x =
    let r = Rsvd.decompose_adaptive x in
    if r.Rsvd.certified then (r.Rsvd.svd, Some r.Rsvd.residual)
    else begin
      Diag.record ~site:"svd.rsvd.fallback"
        (Printf.sprintf
           "sketch %d/%d residual %.3g not certified; exact cascade"
           r.Rsvd.sketch r.Rsvd.total r.Rsvd.residual);
      Diag.incr_retries ();
      exact_auto x
    end
  in
  match backend with
  | Jacobi -> (Svd.decompose ~algorithm:Svd.Blocked_jacobi a, None)
  | Gk -> (Svd.decompose ~algorithm:Svd.Golub_kahan a, None)
  | Randomized -> randomized a
  | Auto ->
    let m, n = Cmat.dims a in
    if Stdlib.min m n >= randomized_cutoff then randomized a else exact_auto a

let pick_rank ?tail_bound rule (d : Svd.t) =
  let n = Array.length d.Svd.sigma in
  match rule with
  | Fixed r ->
    if r < 1 then invalid_arg "Svd_reduce: rank must be >= 1";
    Stdlib.min r n
  | Tol tol -> Stdlib.max 1 (Svd.rank ~rtol:tol d)
  | Gap -> Stdlib.max 1 (Svd.rank_gap_of_values ?tail_bound d.Svd.sigma)
  | Auto_noise ->
    if n = 0 || d.Svd.sigma.(0) = 0. then 0
    else begin
      (* Noise floods the tail of the spectrum with slowly decaying
         singular values; their median estimates the floor.  Keep modes a
         comfortable factor above it.  Falls back to the gap rule when
         the tail is pure roundoff (noise-free data). *)
      let tail = Array.sub d.Svd.sigma (n - (n / 4) - 1) ((n / 4) + 1) in
      Array.sort compare tail;
      let floor_est = tail.(Array.length tail / 2) in
      if floor_est <= 1e-12 *. d.Svd.sigma.(0) then
        Stdlib.max 1 (Svd.rank_gap d)
      else begin
        let thresh = 5. *. floor_est in
        let count = ref 0 in
        Array.iter (fun s -> if s > thresh then incr count) d.Svd.sigma;
        Stdlib.max 1 !count
      end
    end

let pencil_matrix ?(x0 = None) (t : Loewner.t) =
  let x0 =
    match x0 with
    | Some x -> x
    | None ->
      if Array.length t.Loewner.lambda = 0 then
        invalid_arg "Svd_reduce: empty pencil";
      t.Loewner.lambda.(0)
  in
  (x0, Cmat.sub (Cmat.scale x0 t.Loewner.ll) t.Loewner.sll)

let reduce ?(mode = default_mode) ?(rank_rule = default_rank_rule)
    ?(backend = default_backend) (t : Loewner.t) =
  let y, x, sigma, tail_bound =
    match mode with
    | Pencil x0 ->
      let _, p = pencil_matrix ~x0 t in
      let d, tb = decompose_backend backend p in
      (d.Svd.u, d.Svd.v, d.Svd.sigma, tb)
    | Stacked ->
      let row, tb = decompose_backend backend (Cmat.hcat t.Loewner.ll t.Loewner.sll) in
      let col, _ = decompose_backend backend (Cmat.vcat t.Loewner.ll t.Loewner.sll) in
      (row.Svd.u, col.Svd.v, row.Svd.sigma, tb)
  in
  let rank =
    let d_for_rank = { Svd.u = y; sigma; v = x } in
    pick_rank ?tail_bound rank_rule d_for_rank
  in
  (* A truncated (randomized) factorization retains [sketch] columns
     per side; the projection can only keep directions present in
     both. *)
  let rank = Stdlib.min rank (Stdlib.min (Cmat.cols y) (Cmat.cols x)) in
  let nsig = Array.length sigma in
  (* Keeping directions whose singular value sits at the roundoff floor
     only injects noise into the projected realization; demote the rank
     past them regardless of how it was chosen (a [Fixed] request can
     overshoot the numerical rank of a degenerate pencil). *)
  let rank =
    if nsig = 0 || rank = 0 then rank
    else begin
      let floor = 1e-13 *. sigma.(0) in
      let r = ref (Stdlib.min rank nsig) in
      while !r > 1 && not (sigma.(!r - 1) > floor) do
        decr r
      done;
      if !r < rank then
        Diag.record ~site:"svd_reduce.rank_demotion"
          (Printf.sprintf
             "rank %d demoted to %d: trailing singular values at the \
              roundoff floor (sigma_max %.3g)"
             rank !r (if nsig > 0 then sigma.(0) else 0.));
      !r
    end
  in
  (* Pencil conditioning of the retained subspace and the sharpness of
     the cut, for the fit diagnostics. *)
  if rank > 0 && nsig > 0 then begin
    Diag.set_condition (sigma.(0) /. Stdlib.max sigma.(rank - 1) 1e-300);
    if rank < nsig then
      Diag.set_rank_gap
        (log10 (sigma.(rank - 1) /. Stdlib.max sigma.(rank) 1e-300))
  end;
  let yk = Cmat.sub_matrix y ~r:0 ~c:0 ~rows:(Cmat.rows y) ~cols:rank in
  let xk = Cmat.sub_matrix x ~r:0 ~c:0 ~rows:(Cmat.rows x) ~cols:rank in
  let e = Cmat.neg (Cmat.mul_cn yk (Cmat.mul t.Loewner.ll xk)) in
  let a = Cmat.neg (Cmat.mul_cn yk (Cmat.mul t.Loewner.sll xk)) in
  let b = Cmat.mul_cn yk t.Loewner.v in
  let c = Cmat.mul t.Loewner.w xk in
  let p = Cmat.rows t.Loewner.w and m = Cmat.cols t.Loewner.v in
  let d = Cmat.zeros p m in
  let model = Statespace.Descriptor.create ~e ~a ~b ~c ~d in
  { model; rank; sigma }

let fig1_singular_values ?x0 (t : Loewner.t) =
  let _, p = pencil_matrix ~x0 t in
  ( Svd.values t.Loewner.ll, Svd.values t.Loewner.sll, Svd.values p )

let minimal_samples ~order ~rank_d ~inputs ~outputs =
  if order < 1 || rank_d < 0 || inputs < 1 || outputs < 1 then
    invalid_arg "Svd_reduce.minimal_samples: bad arguments";
  let cap = Stdlib.min inputs outputs in
  let k =
    int_of_float (Float.ceil (float_of_int (order + rank_d) /. float_of_int cap))
  in
  if k land 1 = 1 then k + 1 else Stdlib.max k 2
