(** MFTI of noise-free data — paper Algorithm 1, end to end.

    Pipeline: matrix-format tangential data (eqs. 6-9) -> Loewner pencil
    (eqs. 11-12) -> realification (Lemma 3.2) -> SVD projection
    (Lemma 3.4) -> descriptor model.  With [weight = Full] and
    orthonormal directions, the model matches every sampled matrix
    exactly when the sampling is sufficient (Lemma 3.1 / Theorem 3.5).

    This module is a thin wrapper over {!Engine} with the [Direct]
    strategy; the records below are re-exports of the engine's types.
    New code should use {!Engine} directly — this interface is kept as a
    compatibility alias for one release. *)

(** Re-export of {!Engine.options}.  The recursion fields ([batch] and
    later) are ignored by Algorithm 1. *)
type options = Engine.options = {
  weight : Tangential.weight;       (** block widths [t_i] *)
  directions : Direction.kind;
  real_model : bool;                (** apply Lemma 3.2 before the SVD *)
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;        (** SVD engine for the reduce stage *)
  batch : int;
  threshold : float;
  max_iterations : int;
  divergence_factor : float;
  iteration_budget : float;
  probe : int option;
  certify : Certify.mode;
}

val default_options : options
(** [Full] weights, orthonormal directions, realification on, stacked
    SVD, gap-based rank detection ({!Engine.default_options}). *)

(** Re-export of {!Engine.fit}.  For a single-pass fit
    [selected_units = total_units], [iterations = 1] and [history] is
    empty. *)
type result = Engine.fit = {
  model : Statespace.Descriptor.t;
  rank : int;                (** model order retained by the SVD *)
  sigma : float array;       (** singular values behind the rank choice *)
  data : Tangential.t;       (** the interpolation data used *)
  loewner : Loewner.t;       (** the (possibly realified) pencil *)
  selected_units : int;
  total_units : int;
  iterations : int;
  history : float array;
  certificate : Certify.Certificate.t option;
  diagnostics : Linalg.Diag.t;
      (** what the numerics did: condition / rank gap of the reduction,
          fallbacks taken, retries, wall time *)
  timings : (string * float) list;  (** per-stage wall times *)
}

(** [fit_result ?options samples] runs Algorithm 1.  Needs an even
    number of samples at distinct positive frequencies with all-finite
    entries; anything else is a typed [Validation] error rather than an
    exception, and numerical trouble surfaces as [Numerical_breakdown]
    (after the kernel fallback cascades have been exhausted).  The
    returned [diagnostics] is populated even on clean fits (wall time,
    condition estimate). *)
val fit_result :
  ?options:options -> Statespace.Sampling.sample array ->
  (result, Linalg.Mfti_error.t) Stdlib.result

(** [fit ?options samples] is {!fit_result} with errors re-raised as
    {!Linalg.Mfti_error.Error} — the thin compatibility wrapper. *)
val fit : ?options:options -> Statespace.Sampling.sample array -> result
