open Linalg
open Statespace

(* Tangential rational Krylov pre-reduction: project the sparse MNA
   pencil (sC + G) onto the union of shifted-solve subspaces
   span{(sigma_i C + G)^{-1} B}, keeping the basis real so the reduced
   model goes through realify/certify unchanged.  One sparse LU per
   shift; the AMD ordering is computed once on the union pattern and
   reused for every factorization in the sweep. *)

type system = {
  g : Sparse.Scsr.t;
  c : Sparse.Scsr.t;
  b : Cmat.t;
  l : Cmat.t;
}

let of_mna circuit =
  let g, c, b, l = Rf.Mna.sparse_system circuit in
  { g; c; b; l }

type options = {
  f_lo : float;
  f_hi : float;
  shifts : int;
  batch : int;
  max_rounds : int;
  max_order : int;
  tol : float;
  deflation_tol : float;
  holdout : int;
  z0 : float option;
}

let default_options =
  { f_lo = 1e4;
    f_hi = 1e10;
    shifts = 8;
    batch = 4;
    max_rounds = 6;
    max_order = 240;
    tol = 1e-6;
    deflation_tol = 1e-8;
    holdout = 9;
    z0 = None }

type reduction = {
  model : Engine.Model.t;
  order : int;
  shift_freqs : float array;
  history : float array;
  factorizations : int;
  timings : (string * float) list;
}

let context = "krylov"

let invalid message = Mfti_error.Validation { context; message }

let validate_options o =
  if not (Float.is_finite o.f_lo) || o.f_lo <= 0. then
    Error (invalid "f_lo must be positive and finite")
  else if not (Float.is_finite o.f_hi) || o.f_hi <= o.f_lo then
    Error (invalid "f_hi must exceed f_lo")
  else if o.shifts < 2 then Error (invalid "need at least 2 initial shifts")
  else if o.batch < 1 then Error (invalid "batch must be positive")
  else if o.max_rounds < 0 then Error (invalid "max_rounds must be >= 0")
  else if o.max_order < 2 then Error (invalid "max_order must be >= 2")
  else if not (o.tol > 0.) then Error (invalid "tol must be positive")
  else if not (o.deflation_tol > 0.) then
    Error (invalid "deflation_tol must be positive")
  else if o.holdout < 1 then Error (invalid "need at least 1 hold-out probe")
  else
    match o.z0 with
    | Some z0 when not (z0 > 0.) ->
      Error (invalid "z0 must be a positive reference impedance")
    | _ -> Ok ()

let validate_system sys =
  let n, nc = Sparse.Scsr.dims sys.g in
  let nc', nc'' = Sparse.Scsr.dims sys.c in
  let bn, _ = Cmat.dims sys.b in
  let _, ln = Cmat.dims sys.l in
  if n = 0 then Error (invalid "empty system")
  else if n <> nc || nc' <> n || nc'' <> n then
    Error (invalid "G and C must be square with matching dimension")
  else if bn <> n then Error (invalid "B row count must match the pencil")
  else if ln <> n then Error (invalid "L column count must match the pencil")
  else Ok ()

(* ---- small dense helpers ------------------------------------------- *)

(* Column-by-column inverse of a lower-triangular factor (same scheme
   as the randomized-SVD kernel): k x k with k the basis block width,
   so the sequential loops are negligible next to the tall GEMMs. *)
let tri_inv_lower l =
  let n = Cmat.rows l in
  let m = Cmat.create n n in
  for j = 0 to n - 1 do
    Cmat.set m j j (Cx.inv (Cmat.get l j j));
    for i = j + 1 to n - 1 do
      let acc = ref Cx.zero in
      for k = j to i - 1 do
        acc := Cx.add_mul (Cmat.get l i k) (Cmat.get m k j) !acc
      done;
      Cmat.set m i j (Cx.neg (Cx.div !acc (Cmat.get l i i)))
    done
  done;
  m

let cholqr y =
  let g = Cmat.mul_cn y y in
  let l = Chol.factorize g in
  Cmat.mul y (Cmat.ctranspose (tri_inv_lower l))

(* Per-column modified Gram-Schmidt with renormalization: the robust
   fallback when the block Gram matrix is numerically singular.  Each
   column is re-orthogonalized against the existing basis [v] and the
   already-accepted columns (two passes), then must clear [tol]
   relative to its equilibrated unit norm — an angle threshold — or it
   deflates away instead of polluting the basis. *)
let mgs_columns ~tol v w =
  let n = Cmat.rows w in
  let k = Cmat.cols w in
  let accepted = ref [] in
  let count = ref 0 in
  for j = 0 to k - 1 do
    let x = ref (Cmat.col w j) in
    for _pass = 1 to 2 do
      (match v with
       | None -> ()
       | Some v -> x := Cmat.sub !x (Cmat.mul v (Cmat.mul_cn v !x)));
      List.iter
        (fun q ->
          let coeff = Cmat.vec_dot q !x in
          x := Cmat.axpy (Cx.neg coeff) q !x)
        !accepted
    done;
    let nrm = Cmat.norm_fro !x in
    if nrm > tol then begin
      accepted := Cmat.scale_float (1. /. nrm) !x :: !accepted;
      incr count
    end
  done;
  if !count = 0 then None
  else begin
    let q = Cmat.zeros n !count in
    List.iteri
      (fun i col -> Cmat.set_col q (!count - 1 - i) col)
      !accepted;
    Some q
  end

(* CholeskyQR2 on the unit-equilibrated block.  A Cholesky breakdown
   is not the only failure mode: on a numerically singular Gram matrix
   the factorization can "succeed" through rounding noise and return
   garbage directions with enormous norms, so the result is verified
   against Q* Q = I and demoted to per-column MGS deflation whenever
   the certificate fails. *)
let orthonormalize ~tol v y =
  let verified q =
    let k = Cmat.cols q in
    let gram = Cmat.mul_cn q q in
    Cmat.norm_fro (Cmat.sub gram (Cmat.identity k)) <= 1e-8 *. sqrt (float_of_int k)
  in
  match cholqr (cholqr y) with
  | q when verified q -> Some q
  | _ | (exception Chol.Not_positive_definite _) ->
    Diag.record ~site:"krylov.cholqr_fallback"
      "block Gram matrix numerically singular; per-column MGS deflation";
    mgs_columns ~tol v y

(* [Re X | Im X] as a complex matrix with zero imaginary part. *)
let real_block x =
  Cmat.hcat
    (Cmat.of_real (Cmat.real_part x))
    (Cmat.of_real (Cmat.imag_part x))

let col_norms w =
  let _, k = Cmat.dims w in
  Array.init k (fun j -> Cmat.norm_fro (Cmat.col w j))

(* Two-pass block Gram-Schmidt against [v], per-column deflation
   relative to the pre-projection column norms, unit equilibration of
   the survivors (so the Gram condition reflects angles, not the norm
   disparity of nearly-converged directions), then CholeskyQR2.
   Returns the new orthonormal columns, or [None] when everything
   deflated. *)
let extend_basis ~deflation_tol ~room v w =
  let norms0 = col_norms w in
  let w =
    match v with
    | None -> w
    | Some v ->
      let w = Cmat.sub w (Cmat.mul v (Cmat.mul_cn v w)) in
      Cmat.sub w (Cmat.mul v (Cmat.mul_cn v w))
  in
  let norms = col_norms w in
  let keep = ref [] in
  Array.iteri
    (fun j n0 ->
      if norms.(j) > deflation_tol *. Float.max n0 1e-300 && norms.(j) > 0.
      then keep := j :: !keep)
    norms0;
  let keep = Array.of_list (List.rev !keep) in
  let keep =
    if Array.length keep > room then Array.sub keep 0 room else keep
  in
  if Array.length keep = 0 then None
  else begin
    let w = Cmat.select_cols w keep in
    Array.iteri
      (fun j' j ->
        Cmat.set_col w j' (Cmat.scale_float (1. /. norms.(j)) (Cmat.col w j')))
      keep;
    orthonormalize ~tol:deflation_tol v w
  end

(* ---- the reduction -------------------------------------------------- *)

let reduce ?(options = default_options) sys =
  match
    match validate_options options with
    | Error _ as e -> e
    | Ok () -> validate_system sys
  with
  | Error e -> Error e
  | Ok () ->
    let o = options in
    let n = Sparse.Scsr.rows sys.g in
    let m = Cmat.cols sys.b in
    let p = Cmat.rows sys.l in
    let max_order = Stdlib.min o.max_order n in
    let timings = Hashtbl.create 8 in
    let timed key f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      Hashtbl.replace timings key
        (dt +. Option.value ~default:0. (Hashtbl.find_opt timings key));
      r
    in
    let factorizations = ref 0 in
    (* One AMD ordering for the whole sweep: scale_add keeps the union
       pattern stable across (alpha, beta), so the permutation computed
       on C + G is valid for every shifted pencil. *)
    let perm =
      timed "ordering" (fun () ->
        Sparse.Ordering.amd
          (Sparse.Scsr.scale_add ~alpha:Cx.one sys.c ~beta:Cx.one sys.g))
    in
    (* x = (j 2 pi f C + G)^{-1} B, one sparse LU (AMD reused). *)
    let solve_at f =
      let s = Cx.jw (2. *. Float.pi *. f) in
      let pencil = Sparse.Scsr.scale_add ~alpha:s sys.c ~beta:Cx.one sys.g in
      match timed "factor" (fun () -> Sparse.Slu.factorize ~perm pencil) with
      | Error _ as e -> e
      | Ok fac ->
        incr factorizations;
        Ok (timed "factor" (fun () -> Sparse.Slu.solve fac sys.b))
    in
    (* Exact transfer samples, cached: shifts get theirs free from the
       basis solve, hold-out probes pay one factorization each, once. *)
    let truth = Hashtbl.create 32 in
    let truth_at f =
      match Hashtbl.find_opt truth f with
      | Some h -> Ok h
      | None ->
        (match solve_at f with
         | Error _ as e -> e
         | Ok x ->
           let h = Cmat.mul sys.l x in
           Hashtbl.add truth f h;
           Ok h)
    in
    (* Hold-out probes at the centres of equal log bins — never on the
       log-spaced shift grid, which sits on the bin edges. *)
    let span = Float.log10 (o.f_hi /. o.f_lo) in
    let holdout_freqs =
      Array.init o.holdout (fun i ->
        o.f_lo
        *. Float.pow 10.
             (span *. (2. *. float_of_int i +. 1.)
              /. (2. *. float_of_int o.holdout)))
    in
    (* Basis and incrementally-projected reduced matrices. *)
    let v = ref None in
    let cv = ref None in
    let gv = ref None in
    let er = ref (Cmat.zeros 0 0) in
    let ar = ref (Cmat.zeros 0 0) in
    let br = ref (Cmat.zeros 0 m) in
    let cr = ref (Cmat.zeros p 0) in
    let order () = match !v with None -> 0 | Some v -> Cmat.cols v in
    let absorb q =
      timed "project" (fun () ->
        let cq = Sparse.Scsr.mul_mat sys.c q in
        let gq = Sparse.Scsr.mul_mat sys.g q in
        (match !v with
         | None ->
           er := Cmat.mul_cn q cq;
           ar := Cmat.neg (Cmat.mul_cn q gq)
         | Some v0 ->
           let block old x_old x_new =
             Cmat.blocks
               [ [ old; Cmat.mul_cn v0 x_new ];
                 [ Cmat.mul_cn q x_old; Cmat.mul_cn q x_new ] ]
           in
           er := block !er (Option.get !cv) cq;
           ar := Cmat.neg (block (Cmat.neg !ar) (Option.get !gv) gq));
        br := Cmat.vcat !br (Cmat.mul_cn q sys.b);
        cr := Cmat.hcat !cr (Cmat.mul sys.l q);
        cv := Some (match !cv with None -> cq | Some c0 -> Cmat.hcat c0 cq);
        gv := Some (match !gv with None -> gq | Some g0 -> Cmat.hcat g0 gq);
        v := Some (match !v with None -> q | Some v0 -> Cmat.hcat v0 q))
    in
    let rom () =
      Descriptor.create ~e:!er ~a:!ar ~b:!br ~c:!cr ~d:(Cmat.zeros p m)
    in
    let shift_log = ref [] in
    let used f =
      List.exists
        (fun f' -> Float.abs (f -. f') <= 1e-9 *. Float.max f f')
        !shift_log
    in
    let expand freqs =
      let rec go = function
        | [] -> Ok ()
        | f :: rest ->
          if used f || order () >= max_order then go rest
          else
            (match solve_at f with
             | Error _ as e -> e
             | Ok x ->
               Hashtbl.replace truth f (Cmat.mul sys.l x);
               shift_log := f :: !shift_log;
               (match
                  timed "basis" (fun () ->
                    extend_basis ~deflation_tol:o.deflation_tol
                      ~room:(max_order - order ())
                      !v (real_block x))
                with
                | None ->
                  Diag.record ~site:"krylov.deflation"
                    (Printf.sprintf
                       "shift at %.6g Hz fully deflated (order %d)" f
                       (order ()));
                  go rest
                | Some q ->
                  absorb q;
                  go rest))
      in
      go freqs
    in
    (* Max relative hold-out error of the current reduced model. *)
    let holdout_err () =
      let model = rom () in
      let worst = ref (neg_infinity, 0.) in
      let rec go i =
        if i >= Array.length holdout_freqs then
          Ok (fst !worst, snd !worst)
        else
          let f = holdout_freqs.(i) in
          match truth_at f with
          | Error _ as e -> e
          | Ok ht ->
            let hr =
              timed "evaluate" (fun () -> Descriptor.eval_freq model f)
            in
            let rel =
              Cmat.norm_fro (Cmat.sub hr ht)
              /. Float.max (Cmat.norm_fro ht) 1e-300
            in
            if rel > fst !worst then worst := (rel, f);
            go (i + 1)
      in
      go 0
    in
    (* Next shifts: adaptive cross-validation suggestion over every
       exact sample seen so far, falling back to log-gap bisection of
       the shift set when the suggester refuses (too few samples) or
       comes back empty. *)
    let bisect_shifts () =
      let sorted =
        List.sort_uniq compare !shift_log |> Array.of_list
      in
      let gaps = ref [] in
      Array.iteri
        (fun i f ->
          if i > 0 then
            gaps :=
              (Float.log10 (f /. sorted.(i - 1)), sqrt (f *. sorted.(i - 1)))
              :: !gaps)
        sorted;
      List.sort (fun (a, _) (b, _) -> compare b a) !gaps
      |> List.filteri (fun i _ -> i < o.batch)
      |> List.map snd
    in
    let next_shifts worst_freq =
      let samples =
        Hashtbl.fold (fun f h acc -> (f, h) :: acc) truth []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let freqs = Array.of_list (List.map fst samples) in
      let mats = Array.of_list (List.map snd samples) in
      let suggested =
        if Array.length freqs < 8 then []
        else
          match
            Adaptive.suggest
              ~options:{ Adaptive.default_options with count = o.batch }
              (Sampling.of_matrices freqs mats)
          with
          | Ok scores -> List.map (fun s -> s.Adaptive.freq) scores
          | Error _ -> []
      in
      let picks = if suggested = [] then bisect_shifts () else suggested in
      (* Always press on the worst probe: interpolation there kills the
         dominant error term even when the suggester looks elsewhere. *)
      let picks = if used worst_freq then picks else worst_freq :: picks in
      List.filteri (fun i _ -> i < o.batch) picks
    in
    let history = ref [] in
    let initial = Array.to_list (Sampling.logspace o.f_lo o.f_hi o.shifts) in
    let rec rounds i prev =
      match prev with
      | Error _ as e -> e
      | Ok () ->
        (match holdout_err () with
         | Error _ as e -> e
         | Ok (err, worst_freq) ->
           history := err :: !history;
           if err <= o.tol || i >= o.max_rounds || order () >= max_order
           then Ok ()
           else rounds (i + 1) (expand (next_shifts worst_freq)))
    in
    (match rounds 0 (expand initial) with
     | Error _ as e -> e
     | Ok () ->
       if order () = 0 then
         Error
           (Mfti_error.Numerical_breakdown
              { context;
                message = "every shift direction deflated to zero";
                condition = None })
       else begin
         let descriptor = rom () in
         let descriptor =
           match o.z0 with
           | None -> descriptor
           | Some z0 -> Rf.Sparams.descriptor_z_to_s ~z0 descriptor
         in
         let timings =
           List.filter_map
             (fun key ->
               Option.map (fun t -> (key, t)) (Hashtbl.find_opt timings key))
             [ "ordering"; "factor"; "basis"; "project"; "evaluate" ]
         in
         let model =
           Engine.Model.make ~timings ~rank:(order ()) descriptor
         in
         Ok
           { model;
             order = order ();
             shift_freqs = Array.of_list (List.rev !shift_log);
             history = Array.of_list (List.rev !history);
             factorizations = !factorizations;
             timings }
       end)

(* ---- krylov+mfti ---------------------------------------------------- *)

let fit_mfti ?(options = default_options) ?fit_options ?(fit_points = 128)
    sys =
  if fit_points < 4 then Error (invalid "fit_points must be >= 4")
  else
    match reduce ~options sys with
    | Error _ as e -> e
    | Ok kr ->
      let freqs = Sampling.logspace options.f_lo options.f_hi fit_points in
      let samples =
        Sampling.of_matrices freqs
          (Array.map (Engine.Model.eval_freq kr.model) freqs)
      in
      let fit_options =
        Option.value ~default:Engine.default_options fit_options
      in
      (match
         Engine.fit_result ~options:fit_options ~strategy:Engine.Direct
           samples
       with
       | Error _ as e -> e
       | Ok fit -> Ok (Engine.Model.of_fit fit, kr))
