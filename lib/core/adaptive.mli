(** Adaptive frequency selection for streaming fits.

    After each refit the open question is {e where to measure next}.
    Following the cross-validation idea of Åkerstedt et al. ("On
    Adaptive Frequency Sampling for Data-driven Model Order
    Reduction"), the accepted samples are split into two interleaved
    halves and a cheap surrogate model is fitted to each; where the two
    surrogates disagree, the data does not yet pin the response down.
    A residual estimate — the surrogates' consensus against the local
    log-frequency interpolation of the measured data — sharpens the
    score near under-resolved resonances.  Candidates are ranked by the
    combined score and returned best-first with a minimum log-spacing,
    so one sharp peak cannot absorb the whole suggestion budget. *)

type options = {
  surrogate : Engine.options;
      (** options for the two half-data surrogate fits (certification is
          never run here); match the session's options so the surrogates
          probe the same model class *)
  count : int;          (** maximum suggestions returned *)
  grid : int;           (** candidate grid size when none is supplied *)
  min_gap : float;
      (** minimum spacing, in decades, between two suggestions and
          between a suggestion and an existing sample *)
}

(** [Engine.default_options] surrogates ([certify] forced off), 8
    suggestions over a 64-point grid, 0.02-decade spacing. *)
val default_options : options

(** One scored candidate frequency. *)
type score = {
  freq : float;
  disagreement : float;  (** relative Frobenius gap of the two surrogates *)
  residual : float;      (** surrogate consensus vs interpolated data *)
  score : float;         (** [disagreement + residual], the ranking key *)
}

(** [suggest ?options ?candidates samples] ranks the next-best
    frequencies to measure given the accepted fit [samples] in stream
    order.  [candidates] defaults to a log grid spanning the sampled
    band; candidates closer than [min_gap] decades to an existing
    sample are excluded.  Needs at least 8 samples (two surrogate
    halves of two pairs each) — fewer is a typed [Validation] error.
    Deterministic: same samples, same options, same suggestions. *)
val suggest :
  ?options:options -> ?candidates:float array ->
  Statespace.Sampling.sample array ->
  (score list, Linalg.Mfti_error.t) result
