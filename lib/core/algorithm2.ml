open Linalg

type options = {
  weight : Tangential.weight;
  directions : Direction.kind;
  batch : int;
  threshold : float;
  max_iterations : int;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  divergence_factor : float;
  iteration_budget : float;
}

let default_options =
  { weight = Tangential.Uniform 2;
    directions = Direction.Orthonormal 0;
    batch = 8;
    threshold = 1e-3;
    max_iterations = 64;
    real_model = true;
    mode = Svd_reduce.default_mode;
    rank_rule = Svd_reduce.default_rank_rule;
    divergence_factor = 1e3;
    iteration_budget = Float.infinity }

type result = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
  selected_units : int;
  total_units : int;
  iterations : int;
  history : float array;
  diagnostics : Diag.t;
}

(* One selectable unit: a tangential column with its conjugate partner,
   plus the aligned left row pair, and the data needed for residuals. *)
type unit_data = {
  col_orig : int;
  col_conj : int;
  row_orig : int;
  row_conj : int;
  lambda_u : Cx.t;
  r_col : Cmat.t;   (* m x 1 *)
  w_col : Cmat.t;   (* p x 1 *)
  mu_u : Cx.t;
  l_row : Cmat.t;   (* 1 x p *)
  v_row : Cmat.t;   (* 1 x m *)
  norm_u : float;   (* |w| + |v| for normalization *)
}

let block_offsets sizes =
  let off = Array.make (Array.length sizes) 0 in
  for i = 1 to Array.length sizes - 1 do
    off.(i) <- off.(i - 1) + sizes.(i - 1)
  done;
  off

let make_units (data : Tangential.t) (pencil : Loewner.t) =
  let rs = pencil.Loewner.right_sizes and ls = pencil.Loewner.left_sizes in
  let npairs = Array.length rs / 2 in
  if Array.length ls <> Array.length rs then
    invalid_arg "Algorithm2: left/right block counts differ";
  let roff = block_offsets rs and loff = block_offsets ls in
  let units = ref [] in
  for g = 0 to npairs - 1 do
    let t_r = rs.(2 * g) and t_l = ls.(2 * g) in
    if t_r <> t_l then
      invalid_arg "Algorithm2: left and right widths must match per block pair";
    let rb = data.Tangential.right.(2 * g) in
    let lb = data.Tangential.left.(2 * g) in
    for j = 0 to t_r - 1 do
      let r_col = Cmat.col rb.Tangential.r j in
      let w_col = Cmat.col rb.Tangential.w j in
      let l_row = Cmat.row lb.Tangential.l j in
      let v_row = Cmat.row lb.Tangential.v j in
      units :=
        { col_orig = roff.(2 * g) + j;
          col_conj = roff.((2 * g) + 1) + j;
          row_orig = loff.(2 * g) + j;
          row_conj = loff.((2 * g) + 1) + j;
          lambda_u = rb.Tangential.lambda;
          r_col; w_col;
          mu_u = lb.Tangential.mu;
          l_row; v_row;
          norm_u = Cmat.norm_fro w_col +. Cmat.norm_fro v_row }
        :: !units
    done
  done;
  Array.of_list (List.rev !units)

(* Strided initial visit order: [0, k0, 2k0, ..., 1, k0+1, ...]. *)
let strided_order n k0 =
  let order = Array.make n 0 in
  let pos = ref 0 in
  for r = 0 to k0 - 1 do
    let i = ref r in
    while !i < n do
      order.(!pos) <- !i;
      incr pos;
      i := !i + k0
    done
  done;
  order

let sub_pencil (pencil : Loewner.t) units selected =
  let n = List.length selected in
  let cols = Array.make (2 * n) 0 and rows = Array.make (2 * n) 0 in
  List.iteri
    (fun i u ->
      cols.(2 * i) <- units.(u).col_orig;
      cols.((2 * i) + 1) <- units.(u).col_conj;
      rows.(2 * i) <- units.(u).row_orig;
      rows.((2 * i) + 1) <- units.(u).row_conj)
    selected;
  let pick m = Cmat.select_rows (Cmat.select_cols m cols) rows in
  { Loewner.ll = pick pencil.Loewner.ll;
    sll = pick pencil.Loewner.sll;
    w = Cmat.select_cols pencil.Loewner.w cols;
    v = Cmat.select_rows pencil.Loewner.v rows;
    r = Cmat.select_cols pencil.Loewner.r cols;
    l = Cmat.select_rows pencil.Loewner.l rows;
    lambda = Array.map (fun c -> pencil.Loewner.lambda.(c)) cols;
    mu = Array.map (fun r -> pencil.Loewner.mu.(r)) rows;
    right_sizes = Array.make (2 * n) 1;
    left_sizes = Array.make (2 * n) 1 }

let unit_residual model u =
  let hr = Statespace.Descriptor.eval model u.lambda_u in
  let right = Cmat.norm_fro (Cmat.sub (Cmat.mul hr u.r_col) u.w_col) in
  let hl = Statespace.Descriptor.eval model u.mu_u in
  let left = Cmat.norm_fro (Cmat.sub (Cmat.mul u.l_row hl) u.v_row) in
  (right +. left) /. Stdlib.max u.norm_u 1e-300

let fit_result ?(options = default_options) samples =
  let diagnostics = Diag.create () in
  Diag.using diagnostics (fun () ->
      let samples = Statespace.Sampling.fault_corrupt samples in
      match Statespace.Sampling.validate samples with
      | Result.Error e -> Result.Error e
      | Ok () ->
        Mfti_error.guard ~context:"algorithm2" (fun () ->
            if options.batch < 1 then
              invalid_arg "Algorithm2: batch must be >= 1";
            if options.max_iterations < 1 then
              invalid_arg "Algorithm2: max_iterations must be >= 1";
            if not (options.divergence_factor > 1.) then
              invalid_arg "Algorithm2: divergence_factor must be > 1";
            if not (options.iteration_budget > 0.) then
              invalid_arg "Algorithm2: iteration_budget must be positive";
            let start = Unix.gettimeofday () in
            let data =
              Tangential.build ~directions:options.directions
                ~weight:options.weight samples
            in
            let pencil = Loewner.build data in
            (match Loewner.check_finite ~context:"algorithm2" pencil with
             | Ok () -> ()
             | Result.Error e -> Mfti_error.raise_error e);
            let units = make_units data pencil in
            let total = Array.length units in
            let remaining =
              ref (Array.to_list (strided_order total options.batch))
            in
            let selected = ref [] in
            let history = ref [] in
            (* Best model over the recursion, by mean held-out residual:
               the divergence and budget guards return it instead of the
               (worse) model of the iteration that tripped them. *)
            let best = ref None in
            let take n lst =
              let rec go n acc = function
                | rest when n = 0 -> (List.rev acc, rest)
                | [] -> (List.rev acc, [])
                | x :: rest -> go (n - 1) (x :: acc) rest
              in
              go n [] lst
            in
            let best_or current =
              match !best with
              | Some (_, bm, br, bi) -> (bm, br, bi)
              | None -> current
            in
            let rec loop iter =
              let batch, rest = take options.batch !remaining in
              selected := !selected @ batch;
              remaining := rest;
              let sub = sub_pencil pencil units !selected in
              let sub = if options.real_model then Realify.apply sub else sub in
              let reduced =
                Svd_reduce.reduce ~mode:options.mode
                  ~rank_rule:options.rank_rule sub
              in
              let model = reduced.Svd_reduce.model in
              match !remaining with
              | [] ->
                history := Float.nan :: !history;
                (model, reduced, iter)
              | rest ->
                let errs =
                  List.map (fun u -> (u, unit_residual model units.(u))) rest
                in
                let mean =
                  List.fold_left (fun acc (_, e) -> acc +. e) 0. errs
                  /. float_of_int (List.length errs)
                in
                (* deterministic injection point for the recursion layer:
                   residuals exploding across iterations *)
                let mean =
                  if Fault.armed "algorithm2.diverge" then
                    mean *. (10. ** float_of_int (10 * iter))
                  else mean
                in
                history := mean :: !history;
                let improved =
                  (not (Float.is_nan mean))
                  && (match !best with Some (m, _, _, _) -> mean < m | None -> true)
                in
                if improved then best := Some (mean, model, reduced, iter);
                if mean <= options.threshold then (model, reduced, iter)
                else begin
                  let diverged =
                    Float.is_nan mean
                    || (match !best with
                        | Some (bmean, _, _, _) ->
                          mean > options.divergence_factor *. bmean
                        | None -> false)
                  in
                  if diverged then begin
                    Diag.record ~site:"algorithm2.divergence"
                      (Printf.sprintf
                         "held-out residual %.3g exploded past %g x best; \
                          returning best-so-far model"
                         mean options.divergence_factor);
                    best_or (model, reduced, iter)
                  end
                  else if iter >= options.max_iterations then begin
                    Diag.record ~site:"algorithm2.max_iterations"
                      (Printf.sprintf
                         "threshold %.3g not reached after %d iterations \
                          (best residual %.3g)"
                         options.threshold iter
                         (match !best with Some (m, _, _, _) -> m | None -> mean));
                    best_or (model, reduced, iter)
                  end
                  else if Unix.gettimeofday () -. start > options.iteration_budget
                  then begin
                    Diag.record ~site:"algorithm2.budget_exhausted"
                      (Printf.sprintf
                         "wall-time budget %.3g s exhausted at iteration %d; \
                          returning best-so-far model"
                         options.iteration_budget iter);
                    best_or (model, reduced, iter)
                  end
                  else begin
                    (* Visit the worst-fitting held-out units next. *)
                    let sorted =
                      List.sort (fun (_, a) (_, b) -> compare b a) errs
                    in
                    remaining := List.map fst sorted;
                    loop (iter + 1)
                  end
                end
            in
            let model, reduced, iterations = loop 1 in
            { model;
              rank = reduced.Svd_reduce.rank;
              sigma = reduced.Svd_reduce.sigma;
              selected_units = List.length !selected;
              total_units = total;
              iterations;
              history = Array.of_list (List.rev !history);
              diagnostics }))

let fit ?options samples =
  match fit_result ?options samples with
  | Ok r -> r
  | Result.Error e -> Mfti_error.raise_error e
