(** Post-fit certification: stability and passivity enforcement.

    A raw interpolant of noisy data routinely carries a few poles just
    across the imaginary axis and a transfer function whose largest
    singular value grazes (or crosses) 1 where noise pushed it — and a
    macromodel with either defect can make an otherwise stable
    transient simulation blow up.  This module is the gate between the
    engine's model stage and anything durable: it {e checks} a fitted
    descriptor, optionally {e repairs} it, and emits a typed
    {!Certificate.t} recording exactly what was found and done, so the
    serving layer can admit models on evidence instead of trust.

    The pipeline (Aumann & Gosea's post-fit repair loop, PAPERS.md):

    + {b Stability.}  Finite poles with [Re >= 0] are reflected into
      the left half-plane through {!Statespace.Stabilize.reflect};
      the modal decomposition's residual is thresholded
      ([max_reflect_residual]) so an untrustworthy flip is a typed
      refusal, not a silently wrong model.
    + {b Passivity.}  The Hamiltonian test {!Rf.Passivity.check}
      (exact, cannot miss violations between samples) combined with a
      sampled [sigma_max S(jw) - 1] margin sweep over the data band,
      refined around the Hamiltonian's crossing frequencies and the
      interior of each violation band.
    + {b Perturbative repair.}  Small violations (worst sampled margin
      at most [repair_limit]) are repaired by contracting the model
      toward the bounded-real boundary: a pure feedthrough violation
      scales [D] alone; finite-frequency violations scale the residues
      ([C]) and [D] together by [(1 - gamma_margin) / (1 + worst)].
      Re-test, bounded retry ([max_repair]); anything worse is
      {e incurable} and refused with a typed error.

    Every failure path is deterministic under the fault harness (see
    {!Linalg.Fault}): ["certify.unstable"] forces the post-reflection
    stability verdict to fail, ["certify.passivity_violation"] poisons
    the sampled margin to an incurable violation, and
    ["certify.repair_stall"] pins the passivity re-check to "still
    violating" so the bounded retry loop exhausts. *)

(** The evidence record carried by version-2 artifacts and printed by
    [mfti inspect]. *)
module Certificate : sig
  type t = {
    stable : bool;           (** every finite pole has [Re < 0] *)
    passive : bool;          (** Hamiltonian test clean at level
                                 [1 + gamma_margin] and sampled margin
                                 within tolerance (always [false] when
                                 unstable; vacuously [true] when the
                                 passivity check was skipped) *)
    flipped : int;           (** unstable poles reflected by the repair *)
    worst_margin : float;    (** final sampled [max (sigma_max S - 1)]
                                 over the sweep — negative means a real
                                 margin; [nan] when passivity was not
                                 checked *)
    pre_margin : float;      (** the same sweep before any repair *)
    repair_iterations : int; (** passivity-repair retries performed *)
    fit_delta : float;       (** relative RMS transfer-function change
                                 introduced by the whole repair, over
                                 the sweep grid; [0.] when untouched *)
  }

  (** [passed c] — the certificate attests a servable model:
      [stable && passive]. *)
  val passed : t -> bool

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type mode =
  | Off     (** no certification: {!run} returns the model unchanged
                with no certificate *)
  | Check   (** measure and record; never modifies the model and never
                refuses it *)
  | Repair  (** check, then enforce: reflect unstable poles,
                perturbatively restore passivity; incurable models are
                a typed {!Linalg.Mfti_error.t} refusal *)

type options = {
  mode : mode;
  check_passivity : bool;        (** [false] for Y/Z-parameter data,
                                     where bounded-realness is not the
                                     right gate *)
  gamma_margin : float;          (** passivity level is
                                     [1 + gamma_margin]; keeps lossless
                                     boundary models passive *)
  sweep_points : int;            (** sampled margin sweep resolution *)
  repair_limit : float;          (** violations above this sampled
                                     margin are incurable *)
  max_repair : int;              (** bounded retry loop length *)
  max_reflect_residual : float;  (** modal-decomposition trust
                                     threshold for pole reflection *)
}

(** [Repair] mode, passivity on, margin [1e-6], 128 sweep points,
    repair limit [0.25], 8 retries, reflection residual threshold
    [1e-3]. *)
val default_options : options

(** [run ?options ~freqs sys] certifies [sys] against the physical
    frequency band [freqs] (Hz, the fitted data's grid; the sweep is a
    strided subsample refined around detected crossings).

    - [Off]: [Ok (sys, None)] — untouched, uncertified.
    - [Check]: [Ok (sys, Some cert)] — the model is never modified;
      defects are recorded in the certificate ([passed cert = false]).
    - [Repair]: [Ok (repaired, Some cert)] with [passed cert = true],
      or a typed error — [Numerical_breakdown] for an untrustworthy
      reflection or an incurable passivity violation,
      [Non_convergence] when the bounded repair loop stalls.

    Note the repaired realization may differ from the input beyond the
    repair itself: reflection goes through
    {!Statespace.Descriptor.to_proper} and absorbs [E].  A model that
    needs no repair is returned bit-identical. *)
val run :
  ?options:options -> freqs:float array -> Statespace.Descriptor.t ->
  (Statespace.Descriptor.t * Certificate.t option, Linalg.Mfti_error.t) result
