type options = {
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
}

let default_options =
  { directions = Direction.Orthonormal 0;
    real_model = true;
    mode = Svd_reduce.default_mode;
    rank_rule = Svd_reduce.default_rank_rule }

let algorithm1_options options =
  { Algorithm1.weight = Tangential.Uniform 1;
    directions = options.directions;
    real_model = options.real_model;
    mode = options.mode;
    rank_rule = options.rank_rule }

let fit_result ?(options = default_options) samples =
  Algorithm1.fit_result ~options:(algorithm1_options options) samples

let fit ?(options = default_options) samples =
  Algorithm1.fit ~options:(algorithm1_options options) samples
