(* Thin strategy wrapper: VFTI is the engine's [Vector] path (width-1
   tangential blocks, whatever the weight option says). *)

type options = {
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;
}

let default_options =
  { directions = Direction.Orthonormal 0;
    real_model = true;
    mode = Svd_reduce.default_mode;
    rank_rule = Svd_reduce.default_rank_rule;
    svd = Svd_reduce.default_backend }

let engine_options options =
  { Engine.default_options with
    directions = options.directions;
    real_model = options.real_model;
    mode = options.mode;
    rank_rule = options.rank_rule;
    svd = options.svd }

let fit_result ?(options = default_options) samples =
  Engine.fit_result ~options:(engine_options options)
    ~strategy:Engine.Vector samples

let fit ?(options = default_options) samples =
  Engine.fit ~options:(engine_options options) ~strategy:Engine.Vector samples
