(** Block Loewner and shifted Loewner matrices — paper eqs. (11)-(13).

    Block [(i,j)] of [LL] is [(V_i R_j - L_i W_j) / (mu_i - lambda_j)];
    of [sLL] it is [(mu_i V_i R_j - lambda_j L_i W_j) / (mu_i - lambda_j)].
    Rows follow the left data, columns the right data.  The stacked
    direction/data matrices [R, W, L, V] and the expanded diagonal points
    [Lambda, M] of eqs. (8)-(9) are kept alongside, because the
    realization (Lemma 3.1) and the Sylvester identities (13) need them. *)

type t = {
  ll : Linalg.Cmat.t;        (** Loewner matrix, [kl x kr] *)
  sll : Linalg.Cmat.t;       (** shifted Loewner matrix, [kl x kr] *)
  w : Linalg.Cmat.t;         (** stacked right data, [p x kr] *)
  v : Linalg.Cmat.t;         (** stacked left data, [kl x m] *)
  r : Linalg.Cmat.t;         (** stacked right directions, [m x kr] *)
  l : Linalg.Cmat.t;         (** stacked left directions, [kl x p] *)
  lambda : Linalg.Cx.t array; (** expanded right points, length [kr] *)
  mu : Linalg.Cx.t array;     (** expanded left points, length [kl] *)
  right_sizes : int array;   (** block widths along the columns *)
  left_sizes : int array;    (** block widths along the rows *)
}

(** [build data] assembles the matrices.  Raises [Invalid_argument] when
    a left and right point coincide (the divided difference is then
    undefined; distinct sample frequencies guarantee this never fires). *)
val build : Tangential.t -> t

(** [check_finite ?context t] verifies that [LL] and [sLL] contain only
    finite entries, returning a typed [Numerical_breakdown] otherwise —
    the cheap gate the fitting drivers run before the SVD.  The
    ["loewner.poison"] fault plants a NaN in [LL] during {!build} so
    this path can be tested deterministically. *)
val check_finite : ?context:string -> t -> (unit, Linalg.Mfti_error.t) result

(** Frobenius residuals of the two Sylvester identities (13):
    [LL Lambda - M LL = L W - V R] and
    [sLL Lambda - M sLL = L W Lambda - M V R].  Both are zero up to
    roundoff for a correctly assembled pencil. *)
val sylvester_residuals : t -> float * float

(** Assemble [LL] by solving the first Sylvester identity instead of the
    divided-difference formula (the "or solve from (13)" alternative in
    Algorithm 1 step 3) — used to cross-check {!build}. *)
val ll_via_sylvester : t -> Linalg.Cmat.t
