(** Block Loewner and shifted Loewner matrices — paper eqs. (11)-(13).

    Block [(i,j)] of [LL] is [(V_i R_j - L_i W_j) / (mu_i - lambda_j)];
    of [sLL] it is [(mu_i V_i R_j - lambda_j L_i W_j) / (mu_i - lambda_j)].
    Rows follow the left data, columns the right data.  The stacked
    direction/data matrices [R, W, L, V] and the expanded diagonal points
    [Lambda, M] of eqs. (8)-(9) are kept alongside, because the
    realization (Lemma 3.1) and the Sylvester identities (13) need them. *)

type t = {
  ll : Linalg.Cmat.t;        (** Loewner matrix, [kl x kr] *)
  sll : Linalg.Cmat.t;       (** shifted Loewner matrix, [kl x kr] *)
  w : Linalg.Cmat.t;         (** stacked right data, [p x kr] *)
  v : Linalg.Cmat.t;         (** stacked left data, [kl x m] *)
  r : Linalg.Cmat.t;         (** stacked right directions, [m x kr] *)
  l : Linalg.Cmat.t;         (** stacked left directions, [kl x p] *)
  lambda : Linalg.Cx.t array; (** expanded right points, length [kr] *)
  mu : Linalg.Cx.t array;     (** expanded left points, length [kl] *)
  right_sizes : int array;   (** block widths along the columns *)
  left_sizes : int array;    (** block widths along the rows *)
}

(** [build data] assembles the matrices.  Raises [Invalid_argument] when
    a left and right point coincide (the divided difference is then
    undefined; distinct sample frequencies guarantee this never fires). *)
val build : Tangential.t -> t

(** {1 Incremental assembly}

    A {!builder} holds the pencil in growable storage so tangential
    blocks can be appended one at a time: appending the [k+1]-th sample
    computes only the new block row/column of divided differences —
    O(k) work instead of the O(k^2) full rebuild.  Every entry is
    produced by the same fixed-order scalar formula regardless of when
    it is filled or how the fill is chunked across domains, so a
    {!snapshot} of an incrementally grown builder is {e bit-identical}
    to {!build} on the same data (and insensitive to [MFTI_DOMAINS]). *)

type builder

(** [builder ~inputs ~outputs ()] starts an empty pencil for a system
    with [m = inputs] and [p = outputs] ports.  The optional capacities
    pre-size the growable storage (they are hints; storage doubles as
    needed). *)
val builder :
  ?right_capacity:int -> ?left_capacity:int ->
  inputs:int -> outputs:int -> unit -> builder

(** [builder_dims b] is [(kl, kr)] — current row and column counts. *)
val builder_dims : builder -> int * int

(** Append one right block: one new column strip of [LL]/[sLL] plus the
    matching columns of [W], [R] and entry of [Lambda].  Raises
    [Invalid_argument] on dimension mismatch or when the new point
    coincides with an existing left point. *)
val append_right : builder -> Tangential.right_block -> unit

(** Append one left block: one new row strip of [LL]/[sLL] plus the
    matching rows of [V], [L] and entry of [M]. *)
val append_left : builder -> Tangential.left_block -> unit

(** [append b rb lb] appends a right block then a left block — one
    interpolation unit of Algorithm 2's recursion. *)
val append : builder -> Tangential.right_block -> Tangential.left_block -> unit

(** Bulk-load a whole tangential data set into a fresh builder.
    [build data] is exactly [snapshot (of_tangential data)]. *)
val of_tangential : Tangential.t -> builder

(** Freeze the builder into an immutable pencil.  The builder remains
    usable; later appends do not affect earlier snapshots. *)
val snapshot : builder -> t

(** [check_finite ?context t] verifies that [LL] and [sLL] contain only
    finite entries, returning a typed [Numerical_breakdown] otherwise —
    the cheap gate the fitting drivers run before the SVD.  The
    ["loewner.poison"] fault plants a NaN in [LL] during {!snapshot} so
    this path can be tested deterministically. *)
val check_finite : ?context:string -> t -> (unit, Linalg.Mfti_error.t) result

(** Frobenius residuals of the two Sylvester identities (13):
    [LL Lambda - M LL = L W - V R] and
    [sLL Lambda - M sLL = L W Lambda - M V R].  Both are zero up to
    roundoff for a correctly assembled pencil. *)
val sylvester_residuals : t -> float * float

(** Assemble [LL] by solving the first Sylvester identity instead of the
    divided-difference formula (the "or solve from (13)" alternative in
    Algorithm 1 step 3) — used to cross-check {!build}. *)
val ll_via_sylvester : t -> Linalg.Cmat.t
