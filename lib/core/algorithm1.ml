open Linalg

type options = {
  weight : Tangential.weight;
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
}

let default_options =
  { weight = Tangential.Full;
    directions = Direction.Orthonormal 0;
    real_model = true;
    mode = Svd_reduce.default_mode;
    rank_rule = Svd_reduce.default_rank_rule }

type result = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
  data : Tangential.t;
  loewner : Loewner.t;
  diagnostics : Diag.t;
}

let fit_result ?(options = default_options) samples =
  let diagnostics = Diag.create () in
  Diag.using diagnostics (fun () ->
      let samples = Statespace.Sampling.fault_corrupt samples in
      match Statespace.Sampling.validate samples with
      | Result.Error e -> Result.Error e
      | Ok () ->
        Mfti_error.guard ~context:"algorithm1" (fun () ->
            let data =
              Tangential.build ~directions:options.directions
                ~weight:options.weight samples
            in
            let pencil = Loewner.build data in
            let pencil =
              if options.real_model then Realify.apply pencil else pencil
            in
            (match Loewner.check_finite ~context:"algorithm1" pencil with
             | Ok () -> ()
             | Result.Error e -> Mfti_error.raise_error e);
            let reduced =
              Svd_reduce.reduce ~mode:options.mode ~rank_rule:options.rank_rule
                pencil
            in
            { model = reduced.Svd_reduce.model;
              rank = reduced.Svd_reduce.rank;
              sigma = reduced.Svd_reduce.sigma;
              data;
              loewner = pencil;
              diagnostics }))

let fit ?options samples =
  match fit_result ?options samples with
  | Ok r -> r
  | Result.Error e -> Mfti_error.raise_error e
