(* Thin strategy wrapper: Algorithm 1 is the engine's [Direct] path. *)

type options = Engine.options = {
  weight : Tangential.weight;
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;
  batch : int;
  threshold : float;
  max_iterations : int;
  divergence_factor : float;
  iteration_budget : float;
  probe : int option;
  certify : Certify.mode;
}

let default_options = Engine.default_options

type result = Engine.fit = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
  data : Tangential.t;
  loewner : Loewner.t;
  selected_units : int;
  total_units : int;
  iterations : int;
  history : float array;
  certificate : Certify.Certificate.t option;
  diagnostics : Linalg.Diag.t;
  timings : (string * float) list;
}

let fit_result ?options samples =
  Engine.fit_result ?options ~strategy:Engine.Direct samples

let fit ?options samples = Engine.fit ?options ~strategy:Engine.Direct samples
