(** SVD projection of the Loewner pencil to a minimal model —
    paper Lemmas 3.3-3.4 and Theorem 3.5.

    The raw pencil has rank at most [order + rank D] (Lemma 3.3); the
    singular values of [x0 LL - sLL] exhibit a sharp drop at that rank
    (paper Fig. 1).  Projecting with the dominant singular subspaces
    gives the descriptor realization
    [E = -Y* LL X, A = -Y* sLL X, B = Y* V, C = W X]. *)

(** How to choose the projection subspaces. *)
type mode =
  | Pencil of Linalg.Cx.t option
      (** SVD of [x0 LL - sLL] (Lemma 3.4); [None] picks [x0 =
          lambda.(0)] as the paper suggests.  Complex [x0] generally
          yields a complex (but equivalent) model. *)
  | Stacked
      (** [Y] from svd [[LL sLL]], [X] from svd [[LL; sLL]] — the
          Lefteriu-Antoulas practical variant; keeps realified pencils
          real. *)

(** How many singular values to keep. *)
type rank_rule =
  | Fixed of int        (** exact order (clipped to the pencil size) *)
  | Tol of float        (** keep sigma > tol * sigma_max *)
  | Gap                 (** the largest log10 drop ({!Linalg.Svd.rank_gap}) *)
  | Auto_noise
      (** estimate the noise floor from the tail of the spectrum (median
          of the last quarter) and keep sigma above a small multiple of
          it — a tolerance-free rule for noisy data (an extension beyond
          the paper, which sets the threshold by hand) *)

type result = {
  model : Statespace.Descriptor.t;
  rank : int;              (** retained order *)
  sigma : float array;     (** singular values the rank decision saw *)
}

val default_mode : mode       (* Stacked *)
val default_rank_rule : rank_rule  (* Gap *)

(** [reduce ?mode ?rank_rule loewner] projects and realizes.

    The chosen rank is automatically demoted past trailing singular
    values at the roundoff floor ([<= 1e-13 sigma_max]) — keeping them
    only injects noise into the realization; a demotion is recorded in
    the ambient {!Linalg.Diag} collector as ["svd_reduce.rank_demotion"].
    The collector also receives the retained-subspace condition estimate
    [sigma_max / sigma_rank] and the log10 drop at the cut. *)
val reduce : ?mode:mode -> ?rank_rule:rank_rule -> Loewner.t -> result

(** Singular values of [LL], [sLL] and [x0 LL - sLL] — the three curves
    of the paper's Fig. 1.  [x0] defaults to [lambda.(0)]. *)
val fig1_singular_values :
  ?x0:Linalg.Cx.t -> Loewner.t -> float array * float array * float array

(** Theorem 3.5: the empirical minimum number of (noise-free) samples,
    [ceil ((order + rank_d) / min (m, p))], rounded up to even so the
    conjugate split works. *)
val minimal_samples : order:int -> rank_d:int -> inputs:int -> outputs:int -> int
