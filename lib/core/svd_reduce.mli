(** SVD projection of the Loewner pencil to a minimal model —
    paper Lemmas 3.3-3.4 and Theorem 3.5.

    The raw pencil has rank at most [order + rank D] (Lemma 3.3); the
    singular values of [x0 LL - sLL] exhibit a sharp drop at that rank
    (paper Fig. 1).  Projecting with the dominant singular subspaces
    gives the descriptor realization
    [E = -Y* LL X, A = -Y* sLL X, B = Y* V, C = W X]. *)

(** How to choose the projection subspaces. *)
type mode =
  | Pencil of Linalg.Cx.t option
      (** SVD of [x0 LL - sLL] (Lemma 3.4); [None] picks [x0 =
          lambda.(0)] as the paper suggests.  Complex [x0] generally
          yields a complex (but equivalent) model. *)
  | Stacked
      (** [Y] from svd [[LL sLL]], [X] from svd [[LL; sLL]] — the
          Lefteriu-Antoulas practical variant; keeps realified pencils
          real. *)

(** How many singular values to keep. *)
type rank_rule =
  | Fixed of int        (** exact order (clipped to the pencil size) *)
  | Tol of float        (** keep sigma > tol * sigma_max *)
  | Gap                 (** the largest log10 drop ({!Linalg.Svd.rank_gap}) *)
  | Auto_noise
      (** estimate the noise floor from the tail of the spectrum (median
          of the last quarter) and keep sigma above a small multiple of
          it — a tolerance-free rule for noisy data (an extension beyond
          the paper, which sets the threshold by hand) *)

(** Which SVD engine performs the projection. *)
type backend =
  | Auto
      (** exact below a ~96 spectrum-length cutoff, [Randomized] above
          it — the regime where the MFTI pencil is numerically
          low-rank (Lemma 3.3) and a Gaussian sketch wins *)
  | Randomized
      (** adaptive {!Linalg.Rsvd} range finder; when the residual
          certificate fails (sketch missed part of the range, or the
          ["svd.rsvd.degrade"] fault poisoned it) the exact cascade
          reruns and ["svd.rsvd.fallback"] is recorded in the ambient
          {!Linalg.Diag} collector *)
  | Jacobi
      (** exact blocked one-sided Jacobi
          ({!Linalg.Svd.algorithm.Blocked_jacobi}) — the parallel
          exact path *)
  | Gk  (** exact Golub-Kahan (with its usual Jacobi fallback) *)

type result = {
  model : Statespace.Descriptor.t;
  rank : int;              (** retained order *)
  sigma : float array;     (** singular values the rank decision saw *)
}

val default_mode : mode       (* Stacked *)
val default_rank_rule : rank_rule  (* Gap *)
val default_backend : backend (* Auto *)

(** [reduce ?mode ?rank_rule ?backend loewner] projects and realizes.

    The chosen rank is automatically demoted past trailing singular
    values at the roundoff floor ([<= 1e-13 sigma_max]) — keeping them
    only injects noise into the realization; a demotion is recorded in
    the ambient {!Linalg.Diag} collector as ["svd_reduce.rank_demotion"].
    The collector also receives the retained-subspace condition estimate
    [sigma_max / sigma_rank] and the log10 drop at the cut.

    Under a [Randomized] (or auto-selected randomized) backend the rank
    rules run on the truncated spectrum with the certified residual as
    tail bound ({!Linalg.Svd.rank_gap_of_values}), so rank decisions
    match the exact path on well-gapped spectra. *)
val reduce :
  ?mode:mode -> ?rank_rule:rank_rule -> ?backend:backend -> Loewner.t -> result

(** Singular values of [LL], [sLL] and [x0 LL - sLL] — the three curves
    of the paper's Fig. 1.  [x0] defaults to [lambda.(0)]. *)
val fig1_singular_values :
  ?x0:Linalg.Cx.t -> Loewner.t -> float array * float array * float array

(** Theorem 3.5: the empirical minimum number of (noise-free) samples,
    [ceil ((order + rank_d) / min (m, p))], rounded up to even so the
    conjugate split works. *)
val minimal_samples : order:int -> rank_d:int -> inputs:int -> outputs:int -> int
