(** Tangential rational Krylov pre-reduction for sparse MNA systems.

    MFTI interpolates {e measured} transfer data; for a synthesized
    100k-node power-grid netlist there is no instrument — sampling the
    full system densely enough to feed the Loewner pencil would itself
    be the dominant cost.  This module closes the gap: a moment-matching
    projection built from sparse shifted solves

    {v  X_i = (sigma_i C + G)^{-1} B  v}

    compresses the MNA descriptor [(s C + G) x = B u, y = L x] to a few
    hundred states at a cost of one sparse LU per shift (the AMD
    ordering is computed once and reused across the sweep — see
    {!Sparse.Slu.factorize}).  The reduced model interpolates the full
    transfer function at every shift; adaptive rounds add shifts where
    a held-out probe says the response is not yet pinned down, reusing
    {!Adaptive.suggest} once enough probes have accumulated.

    The basis is kept {e real} — each complex block contributes
    [[Re X, Im X]] — so the reduced model is real and matches both
    [H(sigma)] and [H(conj sigma)]: the downstream realify / certify
    stages see exactly the model class they expect.  Deflation of
    converged directions happens inside a two-pass block Gram-Schmidt
    with CholeskyQR2 re-orthonormalization (Householder fallback when
    the Gram matrix loses definiteness).

    The output is an {!Engine.Model.t}, so certification, packing and
    serving work unchanged; {!fit_mfti} goes one step further and runs
    the staged MFTI engine on samples of the reduced model — the
    [krylov+mfti] strategy: sparse physics to a few hundred states,
    tangential interpolation down to tens. *)

(** The sparse first-order system [(s C + G) x = B u, y = L x] —
    exactly what {!Rf.Mna.sparse_system} produces. *)
type system = {
  g : Sparse.Scsr.t;       (** conductance part, [n x n] *)
  c : Sparse.Scsr.t;       (** susceptance part, [n x n] *)
  b : Linalg.Cmat.t;       (** port injection, [n x m] *)
  l : Linalg.Cmat.t;       (** port selection, [p x n] *)
}

(** Build the system from an assembled MNA circuit. *)
val of_mna : Rf.Mna.t -> system

type options = {
  f_lo : float;            (** band of interest, Hz *)
  f_hi : float;
  shifts : int;            (** initial log-spaced interpolation shifts *)
  batch : int;             (** shifts added per adaptive round *)
  max_rounds : int;        (** adaptive rounds after the initial sweep *)
  max_order : int;         (** hard cap on the reduced order *)
  tol : float;             (** stop when the max relative hold-out
                               error drops below this *)
  deflation_tol : float;   (** drop basis candidates whose residual
                               after re-orthogonalization falls below
                               this fraction of the block norm *)
  holdout : int;           (** held-out probe frequencies (interleaved
                               with the shift grid, never equal to a
                               shift) *)
  z0 : float option;       (** when set, convert the reduced impedance
                               model to scattering parameters at this
                               reference before returning *)
}

(** [1e4 .. 1e10] Hz, 8 initial shifts, 4 per round, 6 rounds, order
    cap 240, [tol = 1e-6], [z0 = None]. *)
val default_options : options

type reduction = {
  model : Engine.Model.t;    (** the reduced descriptor, wrapped *)
  order : int;               (** retained reduced order *)
  shift_freqs : float array; (** every shift frequency used, in the
                                 order the basis absorbed them *)
  history : float array;     (** max relative hold-out error after
                                 each round *)
  factorizations : int;      (** sparse LU factorizations performed *)
  timings : (string * float) list;
      (** ["ordering"], ["factor"], ["basis"], ["project"],
          ["evaluate"] wall times in seconds *)
}

(** [reduce ?options sys] runs the projection.  Ill-posed options and
    empty systems are [Validation] errors; a singular shifted pencil
    surfaces as the underlying {!Sparse.Slu} [Numerical_breakdown].
    Deterministic: same system, same options, same model. *)
val reduce : ?options:options -> system -> (reduction, Linalg.Mfti_error.t) result

(** [fit_mfti ?options ?fit_options ?fit_points sys] is the
    [krylov+mfti] strategy: {!reduce}, sample the reduced model at
    [fit_points] (default 128) log-spaced frequencies over the band,
    and run the staged engine ({!Engine.strategy} [Direct]) on those
    samples.  [fit_options.certify] controls certification of the
    final model exactly as in a dense fit.  Returns the MFTI model
    together with the intermediate Krylov result. *)
val fit_mfti :
  ?options:options -> ?fit_options:Engine.options -> ?fit_points:int ->
  system -> (Engine.Model.t * reduction, Linalg.Mfti_error.t) result
