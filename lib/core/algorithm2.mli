(** Recursive MFTI of noisy data — paper Algorithm 2.

    Instead of using every tangential column/row at once (whose cost
    grows quickly with the pencil size), the recursion starts from a
    small strided subset, builds a model, measures the tangential
    residual on the *held-out* data, and moves the [batch] worst-fitting
    units into the active set — repeating until the mean held-out
    residual falls below [threshold] or the data is exhausted.  The
    pencil grows incrementally: each iteration appends only the new
    units' block rows/columns to a cached {!Loewner.builder} (the
    paper's "update instead of recompute" step, bit-identical to a full
    rebuild).

    A selection unit is one tangential column together with its
    conjugate partner (plus the aligned row pair), so realification
    stays applicable to every intermediate model.  Residuals are
    normalized by the data norms, making [threshold] scale-free.

    This module is a thin wrapper over {!Engine} with the
    [Recursive Incremental] strategy; the records below are re-exports
    of the engine's types.  New code should use {!Engine} directly —
    this interface is kept as a compatibility alias for one release. *)

(** Re-export of {!Engine.options}. *)
type options = Engine.options = {
  weight : Tangential.weight;
  directions : Direction.kind;
  real_model : bool;
  mode : Svd_reduce.mode;
  rank_rule : Svd_reduce.rank_rule;
  svd : Svd_reduce.backend;        (** SVD engine for the reduce stage *)
  batch : int;             (** k0: units moved per iteration (>= 1) *)
  threshold : float;       (** Th: mean relative held-out residual target *)
  max_iterations : int;
  divergence_factor : float;
      (** stop (returning the best model so far) when the mean held-out
          residual exceeds this factor times the best seen (> 1;
          default 1e3) *)
  iteration_budget : float;
      (** wall-clock budget in seconds for the whole recursion; on
          exhaustion the best model so far is returned (default
          [infinity]) *)
  probe : int option;
      (** residual-probing cap per iteration; [None] (the default)
          scores every held-out unit, the exact Algorithm 2 *)
  certify : Certify.mode;
      (** post-reduce certification mode ([Off] by default) *)
}

val default_options : options
(** {!Engine.default_recursive_options}: [Uniform 2] weights and the
    recursion defaults above. *)

(** Re-export of {!Engine.fit}. *)
type result = Engine.fit = {
  model : Statespace.Descriptor.t;
  rank : int;
  sigma : float array;
  data : Tangential.t;
  loewner : Loewner.t;     (** working pencil of the final reduction *)
  selected_units : int;    (** units in the final active set *)
  total_units : int;
  iterations : int;
  history : float array;   (** mean held-out relative residual per iteration
                               ([nan] for the final one when nothing is
                               held out) *)
  certificate : Certify.Certificate.t option;
  diagnostics : Linalg.Diag.t;
      (** what the numerics did, including which recursion guard (if
          any) ended the iteration: ["algorithm2.divergence"],
          ["algorithm2.max_iterations"], ["algorithm2.budget_exhausted"] *)
  timings : (string * float) list;  (** per-stage wall times *)
}

(** [fit_result ?options samples] runs the recursion.  Same sample
    requirements as {!Algorithm1.fit_result}; additionally the left and
    right tangential widths must match (they always do with [Full],
    [Uniform] or a pairwise-equal [Per_sample] weighting).  Bad options
    or samples are typed [Validation] errors.  A stalled or diverging
    recursion is NOT an error: the guards record their trigger in
    [diagnostics] and the best model found so far is returned. *)
val fit_result :
  ?options:options -> Statespace.Sampling.sample array ->
  (result, Linalg.Mfti_error.t) Stdlib.result

(** [fit ?options samples] is {!fit_result} with errors re-raised as
    {!Linalg.Mfti_error.Error} — the thin compatibility wrapper. *)
val fit : ?options:options -> Statespace.Sampling.sample array -> result
