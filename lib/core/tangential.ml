open Linalg
open Statespace

type right_block = { lambda : Cx.t; r : Cmat.t; w : Cmat.t }
type left_block = { mu : Cx.t; l : Cmat.t; v : Cmat.t }

type t = {
  right : right_block array;
  left : left_block array;
  inputs : int;
  outputs : int;
}

type weight =
  | Full
  | Uniform of int
  | Per_sample of int array

let trim_even samples =
  let n = Array.length samples in
  if n land 1 = 0 then samples else Array.sub samples 0 (n - 1)

let validate_samples samples =
  let k = Array.length samples in
  if k < 2 then invalid_arg "Tangential.build: need at least 2 samples";
  if k land 1 = 1 then
    invalid_arg "Tangential.build: need an even number of samples (see trim_even)";
  Array.iter
    (fun smp ->
      if smp.Sampling.freq <= 0. then
        invalid_arg "Tangential.build: frequencies must be positive")
    samples;
  let seen = Hashtbl.create k in
  Array.iter
    (fun smp ->
      if Hashtbl.mem seen smp.Sampling.freq then
        invalid_arg "Tangential.build: duplicate sampling frequency";
      Hashtbl.add seen smp.Sampling.freq ())
    samples

let widths ~k ~cap weight =
  let check t =
    if t < 1 || t > cap then
      invalid_arg
        (Printf.sprintf "Tangential.build: width %d outside [1, %d]" t cap)
  in
  match weight with
  | Full -> Array.make k cap
  | Uniform t ->
    check t;
    Array.make k t
  | Per_sample ts ->
    if Array.length ts <> k then
      invalid_arg "Tangential.build: Per_sample weight length must equal sample count";
    Array.iter check ts;
    ts

let pair ?(directions = Direction.Orthonormal 0) ~block ~right_width ~left_width
    sr sl =
  let p = Cmat.rows sr.Sampling.s and m = Cmat.cols sr.Sampling.s in
  (* Even positions (paper's odd 1-based indices) are right data. *)
  let lambda = Cx.jw (2. *. Float.pi *. sr.Sampling.freq) in
  let r = Direction.right directions ~block ~ports:m ~size:right_width in
  let w = Cmat.mul sr.Sampling.s r in
  let mu = Cx.jw (2. *. Float.pi *. sl.Sampling.freq) in
  let l = Direction.left directions ~block ~ports:p ~size:left_width in
  let v = Cmat.mul l sl.Sampling.s in
  ( ({ lambda; r; w }, { lambda = Cx.conj lambda; r; w = Cmat.conj w }),
    ({ mu; l; v }, { mu = Cx.conj mu; l; v = Cmat.conj v }) )

let build ?(directions = Direction.Orthonormal 0) ?(weight = Full) samples =
  validate_samples samples;
  let p, m = Sampling.port_dims samples in
  let k = Array.length samples in
  let cap = Stdlib.min m p in
  let ts = widths ~k ~cap weight in
  let right = ref [] and left = ref [] in
  for i = 0 to (k / 2) - 1 do
    let sr = samples.(2 * i) and sl = samples.((2 * i) + 1) in
    let (ro, rc), (lo, lc) =
      pair ~directions ~block:i
        ~right_width:ts.(2 * i) ~left_width:ts.((2 * i) + 1) sr sl
    in
    right := rc :: ro :: !right;
    left := lc :: lo :: !left
  done;
  { right = Array.of_list (List.rev !right);
    left = Array.of_list (List.rev !left);
    inputs = m; outputs = p }

let build_vector ?(directions = Direction.Orthonormal 0) samples =
  build ~directions ~weight:(Uniform 1) samples

let right_width t = Array.fold_left (fun acc b -> acc + Cmat.cols b.r) 0 t.right
let left_width t = Array.fold_left (fun acc b -> acc + Cmat.rows b.l) 0 t.left
let right_sizes t = Array.map (fun b -> Cmat.cols b.r) t.right
let left_sizes t = Array.map (fun b -> Cmat.rows b.l) t.left

let residual_right model blk =
  let h = Descriptor.eval model blk.lambda in
  Cmat.norm_fro (Cmat.sub (Cmat.mul h blk.r) blk.w)

let residual_left model blk =
  let h = Descriptor.eval model blk.mu in
  Cmat.norm_fro (Cmat.sub (Cmat.mul blk.l h) blk.v)

let max_residual model t =
  let acc = ref 0. in
  Array.iter (fun b -> acc := Stdlib.max !acc (residual_right model b)) t.right;
  Array.iter (fun b -> acc := Stdlib.max !acc (residual_left model b)) t.left;
  !acc
