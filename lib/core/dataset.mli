(** A fitting data set: sampled response matrices plus an optional
    hold-out view.

    The engine fits against {!fit_samples} and, when a hold-out set is
    present, reports error metrics against it — the held-out-error
    validation loop the adaptive-sampling literature builds on.  The
    arrays are never mutated; every transform returns a new value. *)

type t

(** [of_samples ?holdout samples] wraps explicit measured/simulated
    data.  [holdout] defaults to empty. *)
val of_samples :
  ?holdout:Statespace.Sampling.sample array ->
  Statespace.Sampling.sample array -> t

(** [of_system ?holdout_freqs sys freqs] samples the transfer function
    of [sys] on [freqs] (and on [holdout_freqs] for the hold-out set). *)
val of_system :
  ?holdout_freqs:float array -> Statespace.Descriptor.t -> float array -> t

val fit_samples : t -> Statespace.Sampling.sample array
val holdout_samples : t -> Statespace.Sampling.sample array
val size : t -> int
val holdout_size : t -> int

(** Response dimensions [(p, m)] of the fitting samples. *)
val port_dims : t -> int * int

(** Fitting-sample frequencies in Hz, in order. *)
val frequencies : t -> float array

(** [append_fit samples t] extends the fitting view with [samples], in
    order, after the existing ones — the streaming-session append.  The
    input arrays are not validated here; run {!validate} (or let the
    session layer vet each batch) before fitting. *)
val append_fit : Statespace.Sampling.sample array -> t -> t

(** [append_holdout samples t] extends the hold-out view. *)
val append_holdout : Statespace.Sampling.sample array -> t -> t

(** [partition ~every t] moves every [every]-th fitting sample into the
    hold-out set (appended after any existing hold-out samples).
    [every <= 1] is a typed [Validation] error — it would hold out
    everything (1) or nothing at all (0 and below). *)
val partition : every:int -> t -> (t, Linalg.Mfti_error.t) result

(** Drop the last fitting sample when the count is odd (the tangential
    split needs an even count). *)
val trim_even : t -> t

(** Symmetrize both views — see {!Statespace.Sampling.symmetrize}. *)
val symmetrize : t -> t

(** Apply the ["sample.corrupt"] fault hook to the fitting view. *)
val fault_corrupt : t -> t

(** Validate fitting samples, then the hold-out set if non-empty. *)
val validate : t -> (unit, Linalg.Mfti_error.t) result

(** Drop non-finite and duplicate-frequency samples from both views. *)
val scrub : t -> t

(** Tangential interpolation data built from the fitting view. *)
val tangential : ?directions:Direction.kind -> ?weight:Tangential.weight -> t -> Tangential.t

(** {1 Error metrics}

    Measured against the hold-out view when non-empty, the fitting view
    otherwise. *)

val err : Statespace.Descriptor.t -> t -> float
val err_vector : Statespace.Descriptor.t -> t -> float array
val max_err : Statespace.Descriptor.t -> t -> float
