open Statespace

type t = {
  fit : Sampling.sample array;
  holdout : Sampling.sample array;
}

let of_samples ?(holdout = [||]) samples = { fit = samples; holdout }

let of_system ?(holdout_freqs = [||]) sys freqs =
  { fit = Sampling.sample_system sys freqs;
    holdout = Sampling.sample_system sys holdout_freqs }

let fit_samples t = t.fit
let holdout_samples t = t.holdout
let size t = Array.length t.fit
let holdout_size t = Array.length t.holdout
let port_dims t = Sampling.port_dims t.fit
let frequencies t = Array.map (fun s -> s.Sampling.freq) t.fit

let append_fit samples t = { t with fit = Array.append t.fit samples }

let append_holdout samples t =
  { t with holdout = Array.append t.holdout samples }

let partition ~every t =
  if every <= 1 then
    Result.Error
      (Linalg.Mfti_error.Validation
         { context = "dataset";
           message =
             Printf.sprintf
               "partition: every must be >= 2 (got %d); every k-th sample \
                moves to the hold-out set"
               every })
  else
    let fit, held = Sampling.partition ~every t.fit in
    Ok { fit; holdout = Array.append t.holdout held }

let trim_even t = { t with fit = Tangential.trim_even t.fit }

let symmetrize t =
  { fit = Sampling.symmetrize t.fit; holdout = Sampling.symmetrize t.holdout }

let fault_corrupt t = { t with fit = Sampling.fault_corrupt t.fit }

let validate t =
  match Sampling.validate t.fit with
  | Error _ as e -> e
  | Ok () ->
    if Array.length t.holdout = 0 then Ok ()
    else Sampling.validate t.holdout

let scrub t =
  { fit = Sampling.scrub t.fit; holdout = Sampling.scrub t.holdout }

let tangential ?directions ?weight t = Tangential.build ?directions ?weight t.fit

let eval_samples t = if Array.length t.holdout > 0 then t.holdout else t.fit
let err model t = Metrics.err model (eval_samples t)
let err_vector model t = Metrics.err_vector model (eval_samples t)
let max_err model t = Metrics.max_err model (eval_samples t)
