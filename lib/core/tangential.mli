(** Matrix-format tangential interpolation data — paper eqs. (6)-(9).

    Sampled matrices are split into right data (odd-position samples) and
    left data (even-position samples), each closed under conjugation so
    a real model exists: for every block [(lambda, R, W)] the array also
    contains [(conj lambda, R, conj W)] immediately after it (directions
    are real, so they are shared).  VFTI is the special case where every
    block has width 1. *)

type right_block = {
  lambda : Linalg.Cx.t;   (** interpolation point, [j 2 pi f] or conjugate *)
  r : Linalg.Cmat.t;      (** m x t direction *)
  w : Linalg.Cmat.t;      (** p x t data, [W = S R] *)
}

type left_block = {
  mu : Linalg.Cx.t;
  l : Linalg.Cmat.t;      (** t x p direction *)
  v : Linalg.Cmat.t;      (** t x m data, [V = L S] *)
}

type t = {
  right : right_block array;  (** conjugate pairs adjacent: [b0; conj b0; ...] *)
  left : left_block array;
  inputs : int;               (** m *)
  outputs : int;              (** p *)
}

(** Block widths [t_i], the paper's speed/accuracy/weighting knob. *)
type weight =
  | Full                  (** t_i = min(m, p): use every entry (Lemma 3.1) *)
  | Uniform of int        (** the same 1 <= t <= min(m,p) everywhere *)
  | Per_sample of int array
      (** one width per sample, in sample order; lets ill-conditioned
          samples be down/up-weighted (Table 1 "weight 1/2") *)

(** [build ?directions ?weight samples] constructs the MFTI data.
    Requires an even number (>= 2) of samples with distinct positive
    frequencies; raises [Invalid_argument] otherwise (use {!trim_even}).
    Samples at even positions (0-based) feed the right data, odd
    positions the left data, mirroring eqs. (6)-(7). *)
val build :
  ?directions:Direction.kind -> ?weight:weight ->
  Statespace.Sampling.sample array -> t

(** [build_vector ?directions samples] is the VFTI special case: width-1
    blocks (paper Section 2.1). *)
val build_vector :
  ?directions:Direction.kind -> Statespace.Sampling.sample array -> t

(** [pair ?directions ~block ~right_width ~left_width sr sl] builds the
    tangential blocks for one sample pair: [sr] feeds the right data,
    [sl] the left.  Returns [((orig, conj) right, (orig, conj) left)] —
    the conjugate-closure blocks adjacent ordering {!build} uses.  This
    is the per-pair unit an incremental driver appends one at a time. *)
val pair :
  ?directions:Direction.kind -> block:int -> right_width:int ->
  left_width:int -> Statespace.Sampling.sample -> Statespace.Sampling.sample ->
  (right_block * right_block) * (left_block * left_block)

(** Drop the last sample when the count is odd. *)
val trim_even : Statespace.Sampling.sample array -> Statespace.Sampling.sample array

(** Total right width [sum t_i] (columns of the Loewner matrix). *)
val right_width : t -> int

(** Total left width (rows of the Loewner matrix). *)
val left_width : t -> int

(** Right block widths in order (for the realification transform). *)
val right_sizes : t -> int array

val left_sizes : t -> int array

(** [residual_right model blk] is [|H(lambda) R - W|_F] — the right
    interpolation condition of eq. (10); likewise {!residual_left}. *)
val residual_right : Statespace.Descriptor.t -> right_block -> float

val residual_left : Statespace.Descriptor.t -> left_block -> float

(** Largest interpolation residual of eq. (10) over all blocks. *)
val max_residual : Statespace.Descriptor.t -> t -> float
