open Linalg
open Statespace

type options = {
  surrogate : Engine.options;
  count : int;
  grid : int;
  min_gap : float;
}

let default_options =
  { surrogate = { Engine.default_options with certify = Certify.Off };
    count = 8;
    grid = 64;
    min_gap = 0.02 }

type score = {
  freq : float;
  disagreement : float;
  residual : float;
  score : float;
}

let context = "adaptive"

let invalid message =
  Mfti_error.raise_error (Mfti_error.Validation { context; message })

let tiny = 1e-300

(* Interleave by sample pair: pairs at even positions feed half A, odd
   positions half B.  Splitting whole pairs keeps each half a valid
   right/left tangential stream with an even sample count. *)
let halves samples =
  let npairs = Array.length samples / 2 in
  let a = ref [] and b = ref [] in
  for i = 0 to npairs - 1 do
    let dst = if i land 1 = 0 then a else b in
    dst := samples.((2 * i) + 1) :: samples.(2 * i) :: !dst
  done;
  (Array.of_list (List.rev !a), Array.of_list (List.rev !b))

(* Log-frequency linear interpolation of the measured responses onto
   [f]: the local data trend the surrogate consensus is scored against.
   Outside the sampled band the nearest sample is used as-is. *)
let interp_data sorted f =
  let n = Array.length sorted in
  let lo = sorted.(0) and hi = sorted.(n - 1) in
  if f <= lo.Sampling.freq then lo.Sampling.s
  else if f >= hi.Sampling.freq then hi.Sampling.s
  else begin
    let i = ref 0 in
    while sorted.(!i + 1).Sampling.freq < f do incr i done;
    let a = sorted.(!i) and b = sorted.(!i + 1) in
    let t =
      (log f -. log a.Sampling.freq)
      /. (log b.Sampling.freq -. log a.Sampling.freq)
    in
    Cmat.add (Cmat.scale_float (1. -. t) a.Sampling.s)
      (Cmat.scale_float t b.Sampling.s)
  end

let suggest ?(options = default_options) ?candidates samples =
  Mfti_error.guard ~context (fun () ->
      if options.count < 1 then invalid "count must be >= 1";
      if options.grid < 2 then invalid "grid must be >= 2";
      if not (options.min_gap >= 0.) then invalid "min_gap must be >= 0";
      if Array.length samples < 8 then
        invalid
          (Printf.sprintf
             "need at least 8 samples to cross-validate (got %d)"
             (Array.length samples));
      let sorted = Array.copy samples in
      Array.sort
        (fun a b -> compare a.Sampling.freq b.Sampling.freq)
        sorted;
      let f_lo = sorted.(0).Sampling.freq in
      let f_hi = sorted.(Array.length sorted - 1).Sampling.freq in
      let candidates =
        match candidates with
        | Some c ->
          if Array.length c = 0 then invalid "empty candidate grid";
          Array.iter
            (fun f ->
              if not (Float.is_finite f && f > 0.) then
                invalid
                  (Printf.sprintf "candidate %g must be finite and positive" f))
            c;
          c
        | None -> Sampling.logspace f_lo f_hi options.grid
      in
      (* drop candidates sitting on top of an existing sample *)
      let gap_ok f g = Float.abs (log10 f -. log10 g) >= options.min_gap in
      let fresh =
        Array.to_list candidates
        |> List.filter (fun f ->
               Array.for_all (fun s -> gap_ok f s.Sampling.freq) sorted)
      in
      if fresh = [] then
        invalid "every candidate is within min_gap of an existing sample";
      let sa, sb = halves samples in
      let strategy = Engine.Direct in
      let surrogate =
        { options.surrogate with certify = Certify.Off }
      in
      let fit_half which half =
        match Engine.fit_result ~options:surrogate ~strategy half with
        | Ok f -> f.Engine.model
        | Result.Error e ->
          Mfti_error.raise_error
            (Mfti_error.Numerical_breakdown
               { context;
                 message =
                   Printf.sprintf "surrogate %s failed: %s" which
                     (Mfti_error.to_string e);
                 condition = None })
      in
      let ma = fit_half "A" sa and mb = fit_half "B" sb in
      let scored =
        List.map
          (fun f ->
            let ha = Statespace.Descriptor.eval_freq ma f in
            let hb = Statespace.Descriptor.eval_freq mb f in
            let scale =
              0.5 *. (Cmat.norm_fro ha +. Cmat.norm_fro hb)
            in
            let disagreement =
              Cmat.norm_fro (Cmat.sub ha hb) /. Stdlib.max scale tiny
            in
            let hd = interp_data sorted f in
            let consensus =
              Cmat.scale_float 0.5 (Cmat.add ha hb)
            in
            let residual =
              Cmat.norm_fro (Cmat.sub consensus hd)
              /. Stdlib.max (Cmat.norm_fro hd) tiny
            in
            { freq = f; disagreement; residual;
              score = disagreement +. residual })
          fresh
      in
      (* best-first, with a minimum log spacing between picks so one
         sharp feature cannot absorb the whole budget *)
      let ranked =
        List.stable_sort (fun a b -> compare b.score a.score) scored
      in
      let picked = ref [] in
      List.iter
        (fun s ->
          if List.length !picked < options.count
             && List.for_all (fun p -> gap_ok s.freq p.freq) !picked
          then picked := s :: !picked)
        ranked;
      List.rev !picked)
