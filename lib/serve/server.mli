(** Model evaluation server.

    Serves a directory of packed artifacts ([<root>/<id>.mfti]) over a
    line-delimited-JSON protocol: one request object per line in, one
    response object per line out.  No external dependencies — the
    transport is stdin/stdout ({!serve_channels}) or a Unix domain
    socket ({!serve_unix_socket}).

    {2 Protocol}

    Requests are objects with an ["op"] field:

    - [{"op":"list-models"}] — enumerate artifacts under the root:
      [{"ok":true,"op":"list-models","models":[{"id":...,"bytes":...,
      "cached":...}]}]
    - [{"op":"model-info","model":ID}] — artifact metadata plus the
      compiled evaluator's mode ("pole-residue" or "direct") and pole
      count.
    - [{"op":"eval-grid","model":ID,"freqs":[f1,...]}] — evaluate
      [H(j 2 pi f)] at every frequency (batched over the domain pool).
      ["results"] is one [p x m] matrix per frequency, each entry a
      [[re, im]] pair, bit-exact (the emitter round-trips floats).
    - [{"op":"stats"}] — counters snapshot (see {!stats_json}).
    - [{"op":"shutdown"}] — acknowledge and stop the serve loop.

    Every failure is a typed response, never a crash or a dropped
    connection: [{"ok":false,"error":{"kind":K,"message":M}}] where [K]
    mirrors the {!Linalg.Mfti_error} taxonomy ("parse", "validation",
    "numerical", "non-convergence", "budget", "fault").  Malformed JSON
    is "parse"; an unknown op, bad field, or unknown model id is
    "validation"; a corrupt artifact is whatever {!Artifact.load}
    reports (typically "parse").

    Model ids are restricted to [A-Za-z0-9_.-] — the server never
    concatenates request text into a path outside the root.

    Loaded artifacts are compiled once ({!Compiled.of_model}) and kept
    in an {!Lru} cache accounted at their on-disk byte size. *)

type t

(** [create ~root ()] serves artifacts under directory [root].
    [cache_bytes] is the LRU budget (default 256 MiB). *)
val create : ?cache_bytes:int -> root:string -> unit -> t

(** [handle_line t line] processes one request line and returns the
    response line (no trailing newline) plus [true] when the request
    asked the serve loop to stop.  Never raises. *)
val handle_line : t -> string -> string * bool

(** Serve until EOF or a shutdown request; responses are flushed after
    every line.  Returns how the loop ended. *)
val serve_channels : t -> in_channel -> out_channel -> [ `Eof | `Stop ]

(** Bind a Unix domain socket at [path] (unlinking any stale one),
    accept connections sequentially, and serve each until EOF.  Returns
    after a shutdown request; the socket file is removed. *)
val serve_unix_socket : t -> path:string -> unit

(** Counters snapshot: total/per-op request counts, error count,
    latency totals and maxima (seconds), bytes in/out, cache
    hits/misses/evictions/residency, uptime. *)
val stats_json : t -> Sjson.t
