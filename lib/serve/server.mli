(** Model evaluation server.

    Serves a directory of packed artifacts ([<root>/<id>.mfti]) over a
    line-delimited-JSON protocol: one request object per line in, one
    response object per line out.  No external dependencies — the
    transport is stdin/stdout ({!serve_channels}) or a Unix domain
    socket ({!serve_unix_socket}).

    {2 Protocol}

    Requests are objects with an ["op"] field:

    - [{"op":"list-models"}] — enumerate artifacts under the root:
      [{"ok":true,"op":"list-models","models":[{"id":...,"bytes":...,
      "cached":...}]}]
    - [{"op":"model-info","model":ID}] — artifact metadata plus the
      compiled evaluator's mode ("pole-residue" or "direct") and pole
      count.
    - [{"op":"eval-grid","model":ID,"freqs":[f1,...]}] — evaluate
      [H(j 2 pi f)] at every frequency (batched over the domain pool).
      ["results"] is one [p x m] matrix per frequency, each entry a
      [[re, im]] pair, bit-exact (the emitter round-trips floats).
    - [{"op":"stats"}] — counters snapshot (see {!stats_json}).
    - [{"op":"ping"}] — liveness probe: [{"ok":true,"op":"ping",
      "draining":B}].  The {!Router}'s health checks use it; the
      ["draining"] flag lets the ring mark a draining replica before
      its listener goes away.
    - [{"op":"shutdown"}] — acknowledge and stop the serve loop.

    Connections through the concurrent transports ({!Supervisor},
    {!Router}) may additionally negotiate length-prefixed {b binary
    frames} with [{"op":"hello","frames":"binary"}] — see {!Frame}.
    The negotiation never reaches this module; {!handle_request} is
    merely told which rendering the transport wants.

    {2 Streaming fit sessions}

    A fit session is a server-resident {!Mfti.Engine.Session}: the
    client opens it, streams sample batches, asks where to measure
    next, and finalizes into a packed artifact — without ever holding
    the full dataset client-side.

    - [{"op":"fit-open","ports":P}] — open a session for a [P x P]
      response ([ "ports":[p,m] ] for a rectangular one).  Optional
      ["width"] (uniform tangential block width; default full),
      ["rank-tol"] (reduction tolerance; default the engine's gap
      rule), ["certify"] ("off"/"check"/"repair", applied at finalize;
      default "off").  Returns [{"session":ID,"ttl_s":...,
      "bytes_budget":...}].
    - [{"op":"fit-add-samples","session":ID,"samples":[
      {"freq":F,"s":[[[re,im],...],...]},...]}] — append a batch in
      measurement order; ["holdout":true] routes it to the hold-out
      view instead.  The batch is vetted whole (all-or-nothing) by the
      session; the response reports the accepted count, current
      pipeline ["stage"], and which cached stages the append
      ["invalidated"].
    - [{"op":"fit-status","session":ID}] — stage, sample counts, byte
      usage and per-session counters.  ["refit":true] first re-runs
      the invalidated downstream stages; ["holdout_err"] is reported
      only while the cached reduction is current (never triggers a
      refit implicitly).
    - [{"op":"fit-suggest","session":ID}] — adaptive next-frequency
      suggestions ({!Mfti.Adaptive}), best first.  Optional ["count"]
      and explicit ["candidates"].
    - [{"op":"fit-finalize","session":ID,"model":MID}] — certify per
      the session options, pack the model into the store as
      [MID.mfti] (refusing to overwrite an existing id), and close the
      session.  Optional ["name"] labels the artifact.

    Sessions are budgeted: at most [max_sessions] live at once, at
    most [session_bytes] of accepted sample payload each — exhaustion
    is a typed ["budget"] response ({!Linalg.Mfti_error.Budget_exhausted},
    context ["serve.session"]).  A session idle past [session_ttl_s]
    is expired lazily (swept on the next session op or ["stats"]);
    touching an expired or unknown id is a typed ["validation"]
    refusal.  While {!set_draining} is on, [fit-open] is refused but
    live sessions keep streaming — the supervisor's drain lets
    in-flight fits land before the listener goes away.  Each session
    is serialized by its own lock (sticky access), so concurrent
    requests for one id — even over different connections — apply in
    some serial order; distinct sessions proceed in parallel.

    Every failure is a typed response, never a crash or a dropped
    connection: [{"ok":false,"error":{"kind":K,"message":M}}] where [K]
    mirrors the {!Linalg.Mfti_error} taxonomy ("parse", "validation",
    "numerical", "non-convergence", "budget", "fault").  Malformed JSON
    is "parse"; an unknown op, bad field, or unknown model id is
    "validation"; a corrupt artifact is whatever {!Artifact.load}
    reports (typically "parse").

    Model ids are restricted to [A-Za-z0-9_.-] — the server never
    concatenates request text into a path outside the root.

    {2 Admission policy}

    Models carry certification evidence (a {!Mfti.Certify.Certificate.t}
    in version-2 artifacts; see {!Artifact}).  The {!admission} policy
    decides what happens when a model arrives without one, or with one
    that records a failed check: [Strict] refuses it with a typed
    ["validation"] response (context ["serve.admission"]), [Warn] (the
    default) serves it but counts the lapse, [Open] ignores
    certification entirely.  The gate runs on cache misses — the
    ["model-info"] response includes the certificate (or [null]) and
    ["stats"] reports the policy with refused/warned counts under
    ["admission"].

    Loaded artifacts are compiled once ({!Compiled.of_model}) and kept
    in an {!Lru} cache accounted at their on-disk byte size.  The cache
    and every counter sit behind one internal mutex, so {!handle_line}
    is safe to call concurrently from {!Supervisor} worker domains —
    the LRU byte accounting stays exact under contention. *)

type t

(** What to do with a model whose artifact carries no certificate, or a
    certificate recording a failed stability/passivity check. *)
type admission =
  | Open    (** serve everything, certification ignored *)
  | Warn    (** serve it, but count it in [stats.admission.warned] *)
  | Strict  (** refuse it with a typed ["validation"] response *)

(** Budgets for streaming fit sessions.  [max_sessions] caps the live
    session count; [session_bytes] caps the accepted sample payload of
    one session (16 bytes per complex entry plus a small per-sample
    overhead); [session_ttl_s] is the idle time after which a session
    is expired. *)
type session_limits = {
  max_sessions : int;
  session_bytes : int;
  session_ttl_s : float;
}

(** 8 sessions, 64 MiB each, 10-minute idle TTL. *)
val default_session_limits : session_limits

(** [create ~root ()] serves artifacts under directory [root].
    [cache_bytes] is the LRU budget (default 256 MiB).  [admission]
    (default [Warn]) gates uncertified / failed-certification models.
    [session_limits] budgets streaming fit sessions (default
    {!default_session_limits}).  Unless [recover] is [false], the root
    is scanned first ({!Artifact.recover_root}): torn or orphaned
    files are quarantined before anything can be served from them —
    see {!quarantined}. *)
val create :
  ?cache_bytes:int -> ?recover:bool -> ?admission:admission ->
  ?session_limits:session_limits -> root:string ->
  unit -> t

(** [set_draining t true] refuses new [fit-open] requests with a typed
    ["validation"] response while letting live sessions stream and
    finalize.  The {!Supervisor} turns this on when a drain starts. *)
val set_draining : t -> bool -> unit

val draining : t -> bool

(** Files moved aside by the startup recovery scan (empty when
    [~recover:false] or the root was clean). *)
val quarantined : t -> Artifact.quarantine list

(** [set_stats_hook t f] registers extra top-level fields appended to
    every {!stats_json} response.  The {!Supervisor} uses this to
    publish queue depth, sheds, timeouts, restarts and per-worker
    latency through the ordinary ["stats"] op.  [f] is called outside
    the server's internal lock. *)
val set_stats_hook : t -> (unit -> (string * Sjson.t) list) -> unit

(** [handle_line t line] processes one request line and returns the
    response line (no trailing newline) plus [true] when the request
    asked the serve loop to stop.  Never raises; safe to call from
    several domains concurrently. *)
val handle_line : t -> string -> string * bool

(** A rendered response: JSON text, or (binary connections only) the
    body of a {!Frame} grid frame. *)
type reply = Text of string | Grid of string

(** [handle_request t ~binary line] is {!handle_line} generalized over
    the connection's frame mode: with [~binary:true] a successful
    [eval-grid] renders as [Grid] (raw IEEE-754 matrix data, see
    {!Frame.grid_body}) instead of the JSON ["results"] array; every
    other response — including every error — stays [Text].  With
    [~binary:false] it never returns [Grid]. *)
val handle_request : t -> binary:bool -> string -> reply * bool

(** [error_response ?op e] is the standard typed rendering of a
    pipeline error — [{"ok":false,"error":{"kind":K,"message":M}}] with
    [K] from the {!Linalg.Mfti_error} taxonomy.  Exposed so the
    {!Router} renders errors it catches exactly as a replica would. *)
val error_response : ?op:string -> Linalg.Mfti_error.t -> Sjson.t

(** [protocol_error ~kind ~message ()] builds the standard
    [{"ok":false,"error":{...}}] response for protocol-level conditions
    outside the {!Linalg.Mfti_error} taxonomy — the supervisor's
    ["overloaded"] (load shedding) and ["timeout"] (deadline expiry)
    kinds. *)
val protocol_error : ?op:string -> kind:string -> message:string -> unit -> Sjson.t

(** Serve until EOF or a shutdown request; responses are flushed after
    every line.  Returns how the loop ended. *)
val serve_channels : t -> in_channel -> out_channel -> [ `Eof | `Stop ]

(** [bind_unix ~path] binds and listens on a Unix domain socket at
    [path] without the unlink-then-bind race: if the path is currently
    connectable (a live server owns it) the call fails with a typed
    {!Linalg.Mfti_error.Validation} error instead of deleting the live
    socket; a stale file from a dead process is removed and rebound.
    SIGPIPE is set to ignore.  A successful bind confers ownership —
    release with {!release_unix}. *)
val bind_unix : path:string -> Unix.file_descr

(** [release_unix ~path sock] closes the listening socket and unlinks
    the path we own.  Never raises. *)
val release_unix : path:string -> Unix.file_descr -> unit

(** [bind_tcp ~host ~port] binds and listens on a TCP address and
    returns the socket with the actual bound port (useful with
    [~port:0], which picks an ephemeral port).  [SO_REUSEADDR] is set
    so a restarted replica rebinds without waiting out TIME_WAIT; a
    busy address or unresolvable host is a typed
    {!Linalg.Mfti_error.Validation} error.  SIGPIPE is set to
    ignore. *)
val bind_tcp : host:string -> port:int -> Unix.file_descr * int

(** Bind a Unix domain socket at [path] (via {!bind_unix}), accept
    connections sequentially, and serve each until EOF.  Per-connection
    channels are closed through [Fun.protect] (output first, flushing
    buffered bytes) so an error between accept and close can never leak
    the descriptor.  Returns after a shutdown request; the socket file
    is removed.  For concurrent serving with deadlines and load
    shedding use {!Supervisor} instead. *)
val serve_unix_socket : t -> path:string -> unit

(** Counters snapshot: total/per-op request counts, error count,
    latency totals and maxima (seconds), bytes in/out, cache
    hits/misses/evictions/residency, uptime. *)
val stats_json : t -> Sjson.t

(** Record a client vanishing mid-response (EPIPE / reset during a
    write).  The channel loops count their own; the {!Supervisor} and
    {!Router} transports call this so ["conn_drops"] in {!stats_json}
    covers every transport. *)
val note_conn_drop : t -> unit
