(** Byte-budgeted LRU cache keyed by string ids.

    Backing store for the server's resident model set: each entry
    carries the byte size it is accounted at (the artifact's on-disk
    size), and inserting past the budget evicts least-recently-used
    entries until the new entry fits.  A value larger than the whole
    budget is not cached at all (counted in [stats.oversize]).

    Recency is a monotone logical clock bumped by {!find} hits and
    {!insert}, so the eviction order is fully deterministic.  Not
    thread-safe; the server drives it from a single domain. *)

type 'a t

type stats = {
  hits : int;
  misses : int;
  evictions : int;      (** entries removed to make room *)
  oversize : int;       (** inserts rejected for exceeding the budget *)
  resident_bytes : int;
  budget_bytes : int;
  count : int;          (** resident entries *)
}

(** [create ~budget] with [budget >= 0] bytes. *)
val create : budget:int -> 'a t

(** [find t key] returns the cached value and marks it most recently
    used; counts a hit or miss either way. *)
val find : 'a t -> string -> 'a option

(** [insert t key ~bytes v] caches [v] accounted at [bytes >= 0],
    evicting LRU entries as needed.  Replaces any existing entry under
    [key] (its bytes are released first; not counted as an eviction). *)
val insert : 'a t -> string -> bytes:int -> 'a -> unit

val mem : 'a t -> string -> bool

(** [remove t key] drops the entry if present (not an eviction). *)
val remove : 'a t -> string -> unit

(** Resident keys, most recently used first. *)
val keys_by_recency : 'a t -> string list

val resident_bytes : 'a t -> int
val stats : 'a t -> stats
