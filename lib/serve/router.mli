(** Sharded, replicated serving: a router in front of N replica
    servers.

    Clients speak the ordinary {!Server} protocol to the router (JSON
    lines, or binary frames after a [hello] — see {!Frame}); the router
    owns which replica answers:

    - {b Sharding}: models are spread over the replica fleet by
      consistent hashing on the model id ({!Ring}: FNV-1a over
      [vnodes] virtual nodes per replica).  A model's requests land on
      the same replica every time, so each replica's LRU cache holds
      its shard of the model set instead of every replica thrashing
      over all of it.
    - {b Health}: a background prober pings every replica each
      [probe_interval_ms] and runs the {!Health} state machine — [Up],
      [Suspect] (a failure seen, still tried), [Down] (>=
      [fail_threshold] consecutive failures, skipped), [Draining] (the
      replica answered with ["draining":true], skipped for new work).
      A probe that answers flips the replica straight back to [Up] —
      {b rejoin} — which also discards pooled connections from before
      the outage and counts a rejoin; routing resumes without dropping
      any in-flight request.
    - {b Failover}: a request whose replica fails at the connection
      level (connect refused, reset, EOF mid-response) retries on the
      next distinct candidate along the hash ring, at most
      [max_failover] extra attempts, then answers with a typed
      ["unavailable"] response.  A replica that merely {e times out}
      is NOT failed over — the work may still be running there, and
      re-running it elsewhere would double-execute; the client gets a
      typed ["timeout"] response instead.  Reconnect attempts to a
      failing replica are gated by exponential backoff
      ([backoff_base_ms] doubling to [backoff_cap_ms]) plus a
      deterministic per-replica jitter.
    - {b Coalescing}: concurrent [eval-grid] requests for the same
      model merge into one upstream call over the union of their
      frequency grids (sorted ascending, deduplicated); each waiter's
      response is demultiplexed back out {b byte-identical} to what a
      direct replica answer would have been — same field order, same
      float text (the emitter round-trips bits).  [coalesce_hold_ms]
      optionally holds a fresh batch open so concurrent requests can
      pile in (deterministic tests); the default [0] coalesces only
      requests that arrive while an upstream call is being formed.
    - {b Registration}: [{"op":"register","replica":ADDR}] adds a
      replica to the ring at runtime; requests already routed keep
      their old candidates, new requests see the new ring.

    Upstream connections are pooled per replica and negotiated to
    binary frames, so grid payloads cross the router as raw IEEE-754;
    a JSON client's response is re-rendered from the bits
    ({!Frame.results_json}), a binary client's is relayed as-is.

    Session ([fit-*]) ops are {b connection-sticky}: the replica that
    answers a connection's [fit-open] owns every later session op on
    that connection (session state lives in one replica's memory).  A
    session op arriving with no pin routes by hash of the session id
    and will be refused by a replica that does not hold it — typed,
    never a hang.

    Local ops (never forwarded): ["ping"], ["stats"] (router counters
    plus per-replica health), ["register"], ["shutdown"] (drains the
    router, not the replicas), and the [hello] negotiation.

    Fault sites (see {!Linalg.Fault}), all targeting the {e first}
    configured replica so chaos runs replay exactly:
    ["router.partition"] — requests and probes to it fail at the
    connection level (failover path); ["router.slow_replica"] — its
    requests are treated as having blown the deadline (typed
    ["timeout"], no failover); ["router.rejoin_flap"] — its probes
    alternate ok/failed, exercising Up/Suspect churn and rejoin
    convergence. *)

(** Consistent-hash ring: pure, deterministic, exposed for tests. *)
module Ring : sig
  type t

  (** [hash s] is the 64-bit FNV-1a hash of [s], finished with a
      splitmix64 mix (raw FNV lacks avalanche on short strings). *)
  val hash : string -> int64

  (** [make ~vnodes names] places [vnodes] points per name.  Raises
      {!Linalg.Mfti_error.Error} ([Validation]) when [vnodes < 1]. *)
  val make : vnodes:int -> string list -> t

  (** [candidates t key] is every distinct name, nearest first, walking
      the ring clockwise from [hash key] — the failover order for
      [key].  Empty when the ring is empty. *)
  val candidates : t -> string -> string list
end

(** Replica health state machine: pure, exposed for tests. *)
module Health : sig
  type state = Up | Suspect | Down | Draining
  type probe = Ok | Ok_draining | Failed

  (** [step ~fail_threshold state fails probe] is the next
      [(state, consecutive_failures)].  Any successful probe resets to
      [Up] (or [Draining]) with zero failures; a failure increments the
      count, turning [Up] into [Suspect] and anything into [Down] at
      the threshold. *)
  val step : fail_threshold:int -> state -> int -> probe -> state * int

  val to_string : state -> string
end

type config = {
  vnodes : int;              (** virtual nodes per replica (>= 1) *)
  probe_interval_ms : int;   (** health-probe period *)
  fail_threshold : int;      (** consecutive failures before [Down] *)
  max_failover : int;        (** extra candidates tried after the first *)
  connect_timeout_ms : int;  (** upstream connect / probe deadline *)
  request_timeout_ms : int;  (** upstream request deadline *)
  idle_timeout_ms : int;     (** client keep-alive between frames *)
  max_conns : int;           (** client connection cap (then shed) *)
  coalesce_hold_ms : int;    (** hold a fresh batch open this long *)
  backoff_base_ms : int;     (** first reconnect delay to a failed replica *)
  backoff_cap_ms : int;      (** reconnect delay ceiling *)
  max_line_bytes : int;      (** frame cap, both directions *)
}

(** 64 vnodes, 200 ms probes, threshold 3, 2 failover attempts, 1 s
    connect / 5 s request / 30 s idle deadlines, 64 client connections,
    no hold window, 50 ms..2 s backoff, 8 MiB frames. *)
val default_config : config

(** Per-replica view in a {!snapshot}. *)
type replica_snapshot = {
  rp_name : string;
  rp_state : Health.state;
  rp_fails : int;      (** consecutive probe/request failures *)
  rp_served : int;     (** upstream requests answered *)
  rp_errors : int;     (** upstream connection-level failures *)
  rp_rejoins : int;    (** transitions back to [Up] from [Down] *)
}

type snapshot = {
  rt_requests : int;          (** client requests dispatched *)
  rt_forwarded : int;         (** upstream calls issued *)
  rt_failovers : int;         (** candidate retries after a failure *)
  rt_timeouts : int;          (** typed ["timeout"] responses *)
  rt_unavailable : int;       (** typed ["unavailable"] responses *)
  rt_shed : int;              (** client connections refused at the cap *)
  rt_coalesce_batches : int;  (** upstream eval-grid batches executed *)
  rt_coalesce_hits : int;     (** requests that rode another's batch *)
  rt_probes : int;            (** health probes sent *)
  rt_conns : int;             (** live client connections *)
  rt_draining : bool;
  rt_replicas : replica_snapshot list;
}

(** [parse_addr s] reads a replica/listen address: [host:port] (no
    [/]) is TCP, anything else a Unix socket path.  Raises
    {!Linalg.Mfti_error.Error} ([Validation]) on a malformed port. *)
val parse_addr : string -> Supervisor.listener

type t

(** [start ~listen ~replicas ()] binds the client listener, spawns the
    accept loop and health prober, and returns immediately.  [replicas]
    are addresses per {!parse_addr}; the list must be non-empty and
    duplicate-free (typed [Validation] otherwise).  The {e first}
    replica is the chaos target for the [router.*] fault sites. *)
val start :
  ?config:config -> listen:Supervisor.listener -> replicas:string list ->
  unit -> t

(** The actual TCP port bound ([None] for a Unix listener). *)
val bound_port : t -> int option

(** Consistent counter snapshot (also the ["stats"] response body). *)
val stats : t -> snapshot

(** Block until a client's [{"op":"shutdown"}] initiates the drain. *)
val wait : t -> unit

(** Stop accepting, let in-flight client connections finish briefly,
    close upstream pools, join every thread.  Replicas are left
    running.  Idempotent. *)
val stop : t -> unit

(** [run ~listen ~replicas ()] is {!start}, {!wait}, then {!stop}. *)
val run :
  ?config:config -> listen:Supervisor.listener -> replicas:string list ->
  unit -> unit
