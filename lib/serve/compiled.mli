(** Compiled transfer-function evaluators.

    The whole point of the reduced Loewner realization is cheap
    downstream evaluation, but the naive route still pays an
    [O(n^3)] LU solve of [(sE - A)] per frequency point.
    {!of_model} diagonalizes the pencil once — factorize [E], form
    [E^{-1}A], eigendecompose it as [V diag(poles) V^{-1}] — into
    pole–residue form

    {v H(s) = D + (C V) diag(1/(s - pole_k)) (V^{-1} E^{-1} B) v}

    after which each evaluation costs [O(n m p)].

    The diagonalization is validated before it is trusted: the
    candidate is compared against direct [C (sE - A)^{-1} B + D]
    evaluation at deterministic probe points spanning the pole band.
    When the pencil is defective (repeated poles with a deficient
    eigenvector basis), ill-conditioned, or [E] is singular even after
    {!Statespace.Descriptor.to_proper}, the compiler falls back to
    [Direct] mode — exact per-point LU solves — and records
    ["compiled.defective_fallback"] in the ambient {!Linalg.Diag}
    collector.  Either way {!eval} never lies: [Pole_residue] mode is
    only kept when it reproduces the model to [tol].

    {!eval_grid} batches points across the {!Linalg.Parallel} domain
    pool; each point is computed independently, so results are
    bit-identical for any domain count.

    Fault-injection site: ["compiled.defective"] forces the [Direct]
    fallback (see {!Linalg.Fault}). *)

type mode =
  | Pole_residue  (** diagonalized; O(n m p) per point *)
  | Direct        (** defective/singular fallback; LU solve per point *)

type t

(** [of_model ?tol model] compiles the model.  [tol] (default [1e-5])
    is the relative accuracy the pole–residue form must achieve at the
    probe points to be accepted.  The default is deliberately looser
    than machine precision: probes land on weakly-damped resonances
    where a diagonalized form genuinely loses accuracy in proportion to
    the eigenvector conditioning (a few digits for realistic Loewner
    realizations), while a defective pencil mis-evaluates by whole
    orders of magnitude — [1e-5] separates the two cleanly and still
    sits below typical fit errors.  Tighten it (e.g. [1e-11]) when the
    evaluator must track a well-conditioned realization bitward. *)
val of_model : ?tol:float -> Mfti.Engine.Model.t -> t

(** Compile a bare descriptor realization. *)
val of_descriptor : ?tol:float -> Statespace.Descriptor.t -> t

val mode : t -> mode
val order : t -> int
val inputs : t -> int
val outputs : t -> int

(** The system poles ([Pole_residue] mode only; empty in [Direct]). *)
val poles : t -> Linalg.Cx.t array

(** [eval t s] is [H(s)], identical (to compile [tol]) to
    {!Statespace.Descriptor.eval} of the source realization. *)
val eval : t -> Linalg.Cx.t -> Linalg.Cmat.t

(** [eval_freq t f] evaluates at [s = j 2 pi f]. *)
val eval_freq : t -> float -> Linalg.Cmat.t

(** [eval_grid t freqs] evaluates every frequency, distributing points
    over the domain pool.  [eval_grid t [|f|]].(0) is bit-identical to
    [eval_freq t f] at any domain count. *)
val eval_grid : t -> float array -> Linalg.Cmat.t array
