open Linalg
open Statespace

type mode = Pole_residue | Direct

type t = {
  mode : mode;
  poles : Cx.t array;
  cl : Cmat.t;  (* C V,             p x n *)
  br : Cmat.t;  (* V^{-1} E^{-1} B, n x m *)
  d : Cmat.t;   (* feedthrough of the compiled realization, p x m *)
  sys : Descriptor.t;  (* exact source realization (Direct mode, probes) *)
}

let mode t = t.mode
let order t = Descriptor.order t.sys
let inputs t = Descriptor.inputs t.sys
let outputs t = Descriptor.outputs t.sys
let poles t = t.poles

(* ------------------------------------------------------------------ *)
(* Pole-residue evaluation: H(s) = D + CL diag(1/(s - pole_k)) BR.
   One fused pass over the factors, O(n m p) with no allocation beyond
   the result. *)

let eval_pr t s =
  let n = Array.length t.poles in
  let p = Cmat.rows t.cl and m = Cmat.cols t.br in
  let res = Cmat.copy t.d in
  let rre = Cmat.unsafe_re res and rim = Cmat.unsafe_im res in
  let clre = Cmat.unsafe_re t.cl and clim = Cmat.unsafe_im t.cl in
  let brre = Cmat.unsafe_re t.br and brim = Cmat.unsafe_im t.br in
  for k = 0 to n - 1 do
    let w = Cx.inv (Cx.sub s t.poles.(k)) in
    for jc = 0 to m - 1 do
      let bre = brre.(k + (jc * n)) and bim = brim.(k + (jc * n)) in
      (* wb = w * BR(k, jc) *)
      let wbre = (w.Cx.re *. bre) -. (w.Cx.im *. bim) in
      let wbim = (w.Cx.re *. bim) +. (w.Cx.im *. bre) in
      let base = jc * p in
      for i = 0 to p - 1 do
        let cre = clre.(i + (k * p)) and cim = clim.(i + (k * p)) in
        rre.(base + i) <- rre.(base + i) +. (cre *. wbre) -. (cim *. wbim);
        rim.(base + i) <- rim.(base + i) +. (cre *. wbim) +. (cim *. wbre)
      done
    done
  done;
  res

let eval t s =
  match t.mode with
  | Pole_residue -> eval_pr t s
  | Direct -> Descriptor.eval t.sys s

let eval_freq t f = eval t (Cx.jw (2. *. Float.pi *. f))

let eval_grid t freqs =
  let n = Array.length freqs in
  let out = Array.make n t.d in
  (* each point writes its own slot: bit-identical at any domain count *)
  Parallel.parallel_for n (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- eval_freq t freqs.(i)
      done);
  out

(* ------------------------------------------------------------------ *)
(* Compilation *)

let direct sys =
  { mode = Direct;
    poles = [||];
    cl = Cmat.create (Descriptor.outputs sys) 0;
    br = Cmat.create 0 (Descriptor.inputs sys);
    d = sys.Descriptor.d;
    sys }

let try_diagonalize ~source realization =
  let fe = Lu.factorize realization.Descriptor.e in
  let einv_a = Lu.solve fe realization.Descriptor.a in
  let lam, v = Eig.eigen einv_a in
  let fv = Lu.factorize v in
  let br = Lu.solve fv (Lu.solve fe realization.Descriptor.b) in
  let cl = Cmat.mul realization.Descriptor.c v in
  { mode = Pole_residue; poles = lam; cl; br;
    d = realization.Descriptor.d; sys = source }

(* Deterministic probe grid spanning the pole band on the jw axis —
   the region serving requests actually hit. *)
let probe_points poles =
  let mags =
    Array.to_list poles
    |> List.filter_map (fun z ->
           let m = Cx.abs z in
           if Float.is_finite m && m > 0. then Some m else None)
  in
  let lo, hi =
    match mags with
    | [] -> (1., 1e9)
    | m :: rest ->
      List.fold_left (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
        (m, m) rest
  in
  let lo = Stdlib.max lo 1e-3 and hi = Stdlib.max (Stdlib.max hi 1.) lo in
  let k = 7 in
  Array.init k (fun i ->
      let frac = float_of_int i /. float_of_int (k - 1) in
      Cx.jw (lo *. ((hi /. lo) ** frac)))

let accurate ~tol cand sys =
  Array.for_all
    (fun s ->
      let exact = Descriptor.eval sys s in
      let got = eval_pr cand s in
      Cmat.is_finite got
      && Cmat.norm_fro (Cmat.sub got exact)
         <= tol *. Stdlib.max (Cmat.norm_fro exact) 1e-30)
    (probe_points cand.poles)

let of_descriptor ?(tol = 1e-5) sys =
  if Descriptor.order sys = 0 then
    (* static network: pole-residue form with no poles *)
    { (direct sys) with mode = Pole_residue }
  else if Fault.armed "compiled.defective" then begin
    Diag.record ~site:"compiled.defective_fallback"
      "fault-injected defective pencil; serving direct LU evaluation";
    direct sys
  end
  else begin
    let attempt realization =
      match try_diagonalize ~source:sys realization with
      | cand when accurate ~tol cand sys -> Some cand
      | _ -> None
      | exception (Lu.Singular _ | Eig.No_convergence | Invalid_argument _) ->
        None
    in
    match attempt sys with
    | Some c -> c
    | None ->
      (* singular E: solve out the algebraic states, then retry (the
         validation still compares against the original realization) *)
      let proper =
        match Descriptor.to_proper sys with
        | p -> attempt p
        | exception Invalid_argument _ -> None
      in
      (match proper with
       | Some c -> c
       | None ->
         Diag.record ~site:"compiled.defective_fallback"
           (Printf.sprintf
              "pencil not diagonalizable to %.1e at order %d; serving \
               direct LU evaluation"
              tol (Descriptor.order sys));
         direct sys)
  end

let of_model ?tol model = of_descriptor ?tol (Mfti.Engine.Model.descriptor model)
