open Linalg
open Mfti

type t = {
  name : string;
  created : float;
  fit_err : float;
  model : Engine.Model.t;
}

let v ?(name = "") ?(fit_err = Float.nan) ?created model =
  let created = match created with Some c -> c | None -> Unix.time () in
  { name; created; fit_err; model }

let magic = "MFTIART\x00"
let format_version = 2

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* ------------------------------------------------------------------ *)
(* Encoding *)

let w_u32 b n =
  if n < 0 then invalid_arg "Artifact: negative length";
  Buffer.add_int32_le b (Int32.of_int n)

let w_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))
let w_f64 b x = Buffer.add_int64_le b (Int64.bits_of_float x)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_floats b a =
  w_u32 b (Array.length a);
  Array.iter (w_f64 b) a

let w_cmat b m =
  let rows, cols = Cmat.dims m in
  w_u32 b rows;
  w_u32 b cols;
  let re = Cmat.unsafe_re m and im = Cmat.unsafe_im m in
  for k = 0 to (rows * cols) - 1 do
    w_f64 b re.(k);
    w_f64 b im.(k)
  done

let encode t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  w_u32 b format_version;
  w_str b t.name;
  w_f64 b t.created;
  let m = t.model in
  let sys = Engine.Model.descriptor m in
  w_u32 b (Engine.Model.order m);
  w_u32 b (Engine.Model.inputs m);
  w_u32 b (Engine.Model.outputs m);
  w_u32 b (Engine.Model.rank m);
  w_f64 b t.fit_err;
  w_floats b (Engine.Model.sigma m);
  let timings = Engine.Model.timings m in
  w_u32 b (List.length timings);
  List.iter
    (fun (name, dt) ->
      w_str b name;
      w_f64 b dt)
    timings;
  (match Engine.Model.stats m with
   | None -> w_u8 b 0
   | Some s ->
     w_u8 b 1;
     w_u32 b s.Engine.Model.selected_units;
     w_u32 b s.Engine.Model.total_units;
     w_u32 b s.Engine.Model.iterations;
     w_floats b s.Engine.Model.history);
  w_cmat b sys.Statespace.Descriptor.e;
  w_cmat b sys.Statespace.Descriptor.a;
  w_cmat b sys.Statespace.Descriptor.b;
  w_cmat b sys.Statespace.Descriptor.c;
  w_cmat b sys.Statespace.Descriptor.d;
  (* version 2: certification block, last so a v1 body is a prefix *)
  (match Engine.Model.certificate m with
   | None -> w_u8 b 0
   | Some c ->
     w_u8 b 1;
     w_u8 b (if c.Certify.Certificate.stable then 1 else 0);
     w_u8 b (if c.Certify.Certificate.passive then 1 else 0);
     w_u32 b c.Certify.Certificate.flipped;
     w_u32 b c.Certify.Certificate.repair_iterations;
     w_f64 b c.Certify.Certificate.worst_margin;
     w_f64 b c.Certify.Certificate.pre_margin;
     w_f64 b c.Certify.Certificate.fit_delta);
  let body = Buffer.contents b in
  let crc = crc32 body in
  let tail = Buffer.create 4 in
  Buffer.add_int32_le tail crc;
  body ^ Buffer.contents tail

let to_string t =
  let s = encode t in
  (* deterministic damage for the robustness tests *)
  if Fault.armed "artifact.truncate" then
    String.sub s 0 (Stdlib.max 0 (String.length s - 9))
  else if Fault.armed "artifact.corrupt" then begin
    let bytes = Bytes.of_string s in
    (* flip the last magic byte: header corruption, detected pre-CRC *)
    Bytes.set bytes 7 '\xff';
    Bytes.to_string bytes
  end
  else s

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Bad of string

let of_string ?source s =
  let n = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  let need k what =
    if !pos + k > n then raise (Bad (Printf.sprintf "truncated %s" what))
  in
  let r_u32 what =
    need 4 what;
    let v = Int32.to_int (Bytes.get_int32_le bytes !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    if v < 0 || v > 0x7FFFFFF then
      raise (Bad (Printf.sprintf "implausible %s (%d)" what v));
    v
  in
  let r_u8 what =
    need 1 what;
    let v = Char.code (Bytes.get bytes !pos) in
    incr pos;
    v
  in
  let r_f64 what =
    need 8 what;
    let v = Int64.float_of_bits (Bytes.get_int64_le bytes !pos) in
    pos := !pos + 8;
    v
  in
  let r_str what =
    let len = r_u32 (what ^ " length") in
    need len what;
    let v = String.sub s !pos len in
    pos := !pos + len;
    v
  in
  let r_floats what =
    let len = r_u32 (what ^ " count") in
    let a = Array.make len 0. in
    for i = 0 to len - 1 do
      a.(i) <- r_f64 what
    done;
    a
  in
  let r_cmat what =
    let rows = r_u32 (what ^ " rows") in
    let cols = r_u32 (what ^ " cols") in
    let m = Cmat.create rows cols in
    let re = Cmat.unsafe_re m and im = Cmat.unsafe_im m in
    need (16 * rows * cols) what;
    for k = 0 to (rows * cols) - 1 do
      re.(k) <- Int64.float_of_bits (Bytes.get_int64_le bytes !pos);
      im.(k) <- Int64.float_of_bits (Bytes.get_int64_le bytes (!pos + 8));
      pos := !pos + 16
    done;
    m
  in
  match
    let ml = String.length magic in
    if n < ml + 4 + 4 then raise (Bad "truncated header");
    if String.sub s 0 ml <> magic then raise (Bad "bad magic");
    pos := ml;
    let ver = r_u32 "version" in
    if ver <> 1 && ver <> format_version then
      raise (Bad (Printf.sprintf "unsupported version %d (expected 1..%d)" ver
                    format_version));
    (* structural damage anywhere downstream surfaces here, before any
       field is trusted *)
    let stored =
      Int32.logand (Bytes.get_int32_le bytes (n - 4)) 0xFFFFFFFFl
    in
    let computed = crc32 (String.sub s 0 (n - 4)) in
    if stored <> computed then raise (Bad "checksum mismatch");
    let name = r_str "name" in
    let created = r_f64 "created" in
    let order = r_u32 "order" in
    let inputs = r_u32 "inputs" in
    let outputs = r_u32 "outputs" in
    let rank = r_u32 "rank" in
    let fit_err = r_f64 "fit_err" in
    let sigma = r_floats "sigma" in
    let ntimings = r_u32 "timings count" in
    let timings = ref [] in
    for _ = 1 to ntimings do
      let name = r_str "timing name" in
      let dt = r_f64 "timing value" in
      timings := (name, dt) :: !timings
    done;
    let timings = List.rev !timings in
    let stats =
      match r_u8 "stats flag" with
      | 0 -> None
      | 1 ->
        let selected_units = r_u32 "selected_units" in
        let total_units = r_u32 "total_units" in
        let iterations = r_u32 "iterations" in
        let history = r_floats "history" in
        Some
          { Engine.Model.selected_units; total_units; iterations; history }
      | k -> raise (Bad (Printf.sprintf "bad stats flag %d" k))
    in
    let e = r_cmat "E" in
    let a = r_cmat "A" in
    let b = r_cmat "B" in
    let c = r_cmat "C" in
    let d = r_cmat "D" in
    (* version-1 files simply end here: they load with no certificate *)
    let certificate =
      if ver < 2 then None
      else
        let r_bool what =
          match r_u8 what with
          | 0 -> false
          | 1 -> true
          | k -> raise (Bad (Printf.sprintf "bad %s %d" what k))
        in
        match r_u8 "certificate flag" with
        | 0 -> None
        | 1 ->
          let stable = r_bool "certificate stable" in
          let passive = r_bool "certificate passive" in
          let flipped = r_u32 "certificate flipped" in
          let repair_iterations = r_u32 "certificate repairs" in
          let worst_margin = r_f64 "certificate worst margin" in
          let pre_margin = r_f64 "certificate pre margin" in
          let fit_delta = r_f64 "certificate fit delta" in
          Some
            { Certify.Certificate.stable; passive; flipped; worst_margin;
              pre_margin; repair_iterations; fit_delta }
        | k -> raise (Bad (Printf.sprintf "bad certificate flag %d" k))
    in
    if !pos <> n - 4 then raise (Bad "trailing bytes");
    let sys =
      try Statespace.Descriptor.create ~e ~a ~b ~c ~d
      with Invalid_argument m -> raise (Bad ("inconsistent matrices: " ^ m))
    in
    if Statespace.Descriptor.order sys <> order
       || Statespace.Descriptor.inputs sys <> inputs
       || Statespace.Descriptor.outputs sys <> outputs
    then raise (Bad "header dimensions disagree with matrices");
    let model = Engine.Model.make ~sigma ?stats ?certificate ~timings ~rank sys in
    { name; created; fit_err; model }
  with
  | t -> Ok t
  | exception Bad message ->
    Error (Mfti_error.Parse { source; line = None; message })

(* ------------------------------------------------------------------ *)
(* Files *)

let temp_suffix = ".tmp"
let quarantine_suffix = ".quarantined"

let write_all fd s ~len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Crash-safe: the bytes land in [path ^ ".tmp"], are fsynced, and only
   then renamed over [path].  A crash at any point leaves either the old
   artifact intact or a torn ".tmp" orphan — never a torn ".mfti".  The
   ["serve.torn_write"] fault site simulates the crash: half the bytes
   are written, the temp file is left behind, and a typed error is
   raised without renaming. *)
let save path t =
  let data = to_string t in
  let tmp = path ^ temp_suffix in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     if Fault.armed "serve.torn_write" then begin
       write_all fd data ~len:(String.length data / 2);
       Mfti_error.raise_error (Mfti_error.Fault_injected { site = "serve.torn_write" })
     end;
     write_all fd data ~len:(String.length data);
     Unix.fsync fd
   with
   | () -> Unix.close fd
   | exception e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.rename tmp path;
  (* best-effort directory fsync so the rename itself is durable *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | dirfd ->
    (try Unix.fsync dirfd with Unix.Unix_error _ -> ());
    (try Unix.close dirfd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> of_string ~source:path s
  | exception Sys_error m ->
    Error (Mfti_error.Parse { source = Some path; line = None; message = m })

let load_exn path =
  match load path with
  | Ok t -> t
  | Error e -> Mfti_error.raise_error e

(* ------------------------------------------------------------------ *)
(* Startup recovery *)

type quarantine = {
  original : string;
  quarantined : string;
  reason : Mfti_error.t;
}

(* Scan a model root for damage left by interrupted writers: orphaned
   ".mfti.tmp" files (a save that died before its rename) and torn or
   corrupt ".mfti" files (a legacy non-atomic writer, disk damage).
   Each is renamed aside with a ".quarantined" suffix — outside the
   servable namespace, which is exactly "*.mfti" — so a damaged model
   is never silently loaded, and the evidence survives for inspection. *)
let recover_root ?(verify = true) root =
  match Sys.readdir root with
  | exception Sys_error _ -> []
  | entries ->
    Array.sort compare entries;
    Array.to_list entries
    |> List.filter_map (fun f ->
        let p = Filename.concat root f in
        let quarantine reason =
          let q = p ^ quarantine_suffix in
          match Sys.rename p q with
          | () -> Some { original = p; quarantined = q; reason }
          | exception Sys_error m ->
            (* the rename itself failed: report it, leave the file *)
            Some
              { original = p; quarantined = p;
                reason =
                  Mfti_error.Parse
                    { source = Some p; line = None;
                      message = "quarantine rename failed: " ^ m } }
        in
        if Filename.check_suffix f (".mfti" ^ temp_suffix) then
          quarantine
            (Mfti_error.Parse
               { source = Some p; line = None;
                 message = "orphaned temp file from an interrupted save" })
        else if Filename.check_suffix f ".mfti" && verify then
          match load p with Ok _ -> None | Error e -> quarantine e
        else None)
