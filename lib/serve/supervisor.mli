(** Supervised concurrent serving over a Unix domain socket or TCP.

    {!Server.serve_unix_socket} serves one connection at a time with no
    deadlines; this module is the production tier on top of the same
    {!Server.handle_request} core:

    - one accept loop owns the listening socket — a Unix domain path
      (bound race-free via {!Server.bind_unix}) or a TCP address
      ({!Server.bind_tcp}; [~port:0] picks an ephemeral port, reported
      by {!bound_port}) — and feeds a {b bounded admission queue};
    - a fixed pool of workers — OCaml 5 domains, falling back to
      threads when the domain budget is exhausted — pops connections
      and serves them, each evaluation wrapped in
      {!Linalg.Parallel.with_sequential} so worker domains never race
      on the kernel pool's submission protocol;
    - when the queue is full the accept loop {b sheds}: the client
      immediately receives the typed
      [{"ok":false,"error":{"kind":"overloaded",...}}] response instead
      of waiting in an unbounded backlog;
    - {b deadlines}: an idle connection may sit [idle_timeout_ms]
      between frames (expiry closes it silently); once the first byte
      of a frame arrives the rest must land within
      [request_timeout_ms], and a request whose evaluation blows that
      budget gets a ["timeout"] response instead of its (discarded)
      result;
    - a worker whose handler raises is {b restarted} with exponential
      backoff ([backoff_base_ms] doubling up to [backoff_cap_ms],
      reset after a cleanly-finished connection);
    - {!stop} {b drains gracefully}: stop accepting (the socket closes
      immediately so new connects are refused), let in-flight
      connections finish within [drain_ms], then force-close the
      stragglers and join every runner.

    The certification {!Server.admission} policy is inherited from the
    wrapped server: a supervisor over a [Strict] server refuses
    uncertified / failed-certification models with the same typed
    ["validation"] response on every worker, and the refused/warned
    counts surface through the shared ["stats"] op.

    {b Streaming fit sessions} ride the same worker pool.  Routing is
    session-sticky at two levels: a connection is owned by one worker
    for its whole lifetime, and requests that reach one session id
    from {e different} connections serialize on that session's own
    lock inside {!Server} — so a streaming client always observes its
    appends in order, and two clients racing one id apply in some
    serial order instead of corrupting the fit.  Drain semantics:
    initiating a drain (a ["shutdown"] request or {!stop}) flips
    {!Server.set_draining}, refusing new [fit-open] requests
    immediately, while connections already streaming a session keep
    their worker until they finish or the [drain_ms] deadline
    force-closes them — an in-flight [fit-finalize] either lands a
    complete artifact or leaves none (the artifact write is atomic).

    {b Frame negotiation}: every connection starts in JSON-lines mode;
    a [{"op":"hello","frames":"binary"}] request is intercepted here
    (it never reaches the server), acknowledged in the old framing, and
    switches the connection to length-prefixed binary frames — see
    {!Frame}.  Under binary framing a successful [eval-grid] response
    carries its matrices as raw IEEE-754 instead of JSON text.

    Fault sites (see {!Linalg.Fault}) exercised by the chaos suite:
    ["serve.slow_client"] forces the partial-frame deadline,
    ["serve.stall"] makes a request overshoot its deadline,
    ["serve.conn_drop"] kills a worker mid-connection (restart path).

    Statistics are published through the ordinary ["stats"] op: {!start}
    registers a {!Server.set_stats_hook} adding a ["supervisor"] object
    with queue depth, sheds, timeouts, restarts and per-worker
    latency. *)

type config = {
  workers : int;             (** worker pool size (>= 1) *)
  queue : int;               (** admission queue capacity (>= 1) *)
  request_timeout_ms : int;  (** per-request / partial-frame deadline *)
  idle_timeout_ms : int;     (** keep-alive between frames *)
  drain_ms : int;            (** graceful-drain budget in {!stop} *)
  backoff_base_ms : int;     (** first restart delay *)
  backoff_cap_ms : int;      (** restart delay ceiling *)
  max_line_bytes : int;      (** request frame cap *)
}

(** 2 workers, queue 16, 5 s request / 30 s idle timeouts, 2 s drain,
    10 ms..1 s backoff, 8 MiB frames. *)
val default_config : config

type t

type worker_snapshot = {
  ws_served : int;       (** requests answered *)
  ws_conns : int;        (** connections handled *)
  ws_total_s : float;    (** summed request latency *)
  ws_max_s : float;      (** worst request latency *)
  ws_restarts : int;     (** times this worker was restarted *)
}

type snapshot = {
  sn_workers : int;
  sn_queue_capacity : int;
  accepted : int;          (** connections accepted *)
  dispatched : int;        (** connections handed to a worker *)
  shed : int;              (** connections refused with "overloaded" *)
  idle_timeouts : int;     (** idle keep-alives expired (silent close) *)
  read_timeouts : int;     (** partial frames / unread responses timed out *)
  request_timeouts : int;  (** evaluations that blew the request deadline *)
  restarts : int;          (** worker + accept-loop restarts *)
  queue_depth : int;       (** connections waiting right now *)
  queue_max : int;         (** high-water mark of the queue *)
  in_flight : int;         (** connections being served right now *)
  draining : bool;
  per_worker : worker_snapshot array;
}

(** Where to listen: a Unix domain socket path, or a TCP host/port
    (host resolved by {!Server.bind_tcp}; port [0] = ephemeral). *)
type listener = Unix_path of string | Tcp of string * int

(** [start server ~listen] binds the listener (race-free, typed error
    if the address is taken), spawns the accept loop and workers,
    registers the stats hook, and returns immediately.  Raises
    {!Linalg.Mfti_error.Error} ([Validation]) on a nonsensical
    [config]. *)
val start : ?config:config -> Server.t -> listen:listener -> t

(** The actual TCP port bound, once started ([None] for a Unix
    listener).  Useful with [Tcp (host, 0)]. *)
val bound_port : t -> int option

(** Consistent counter snapshot (also published as the ["supervisor"]
    object in ["stats"] responses). *)
val stats : t -> snapshot

(** Block until a client's [{"op":"shutdown"}] initiates the drain. *)
val wait : t -> unit

(** Graceful drain then forced shutdown; joins every runner and removes
    the socket file (Unix listeners).  Idempotent. *)
val stop : t -> unit

(** [run server ~listen] is {!start}, {!wait}, then {!stop}. *)
val run : ?config:config -> Server.t -> listen:listener -> unit
