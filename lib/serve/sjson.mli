(** Minimal JSON reader/writer shared by the serving layer and the
    benchmark reporters (there is no JSON library in the build
    environment, and the server protocol must not grow one).

    This is the single escaping/emission routine in the repo:
    [bench/bjson.ml] re-exports this module, and {!Server} builds every
    protocol response through it.

    Number emission round-trips exactly: a finite [Num x] is printed
    with the shortest of [%.6g]/[%.12g]/[%.17g] that parses back to the
    identical float, so values survive a write/parse cycle bit-for-bit
    (the serving protocol depends on this).  Non-finite floats have no
    JSON representation and are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

exception Parse_error of string

(** Recursive-descent parser for the subset we emit (strings, numbers,
    bools, null, arrays, objects).  Raises {!Parse_error} with an offset
    message on malformed input. *)
val parse : string -> t

(** [member k json] is the value bound to key [k] when [json] is an
    object containing it. *)
val member : string -> t -> t option
