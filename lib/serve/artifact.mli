(** Versioned, checksummed binary artifacts for fitted models.

    A fitted {!Mfti.Engine.Model.t} dies with the process; an artifact
    is its durable form — the realization matrices plus the fit
    metadata a serving layer needs (ports, order, singular values,
    recursion stats, stage timings, fit error).

    {2 Format (version 2)}

    All integers are unsigned 32-bit little-endian; all floats are raw
    IEEE-754 bits (64-bit little-endian, via [Int64.bits_of_float]) —
    never printed and re-parsed, so every value round-trips bitwise.
    Field order is canonical and fixed:

    {v
    magic   "MFTIART\x00"                       8 bytes
    version u32 = 2
    name    u32 length + bytes
    created f64 (unix time of packing)
    order, inputs, outputs, rank               4 x u32
    fit_err f64 (NaN when unknown)
    sigma   u32 count + count x f64
    timings u32 count + count x (string, f64)
    stats   u8 flag; when 1: selected, total,
            iterations (u32) + history floats
    E A B C D  each: u32 rows, u32 cols,
            rows*cols x (f64 re, f64 im), column-major
    cert    u8 flag; when 1: stable u8, passive u8,
            flipped u32, repair_iterations u32,
            worst_margin f64, pre_margin f64,
            fit_delta f64          (version >= 2 only)
    crc32   u32 over every preceding byte
    v}

    Version 2 appends exactly the [cert] block — a version-1 body is a
    byte prefix of the version-2 body for the same model.

    Version policy: readers accept exactly the versions they know
    (currently 1 and 2) and reject anything else as
    {!Linalg.Mfti_error.Parse} — a newer writer never silently
    half-loads.  A version-1 file (no [cert] block) loads with
    [Engine.Model.certificate = None], indistinguishable from a
    version-2 file packed without certification — either way the model
    is {e uncertified} and a strict serving policy refuses it.  Any
    structural damage (bad magic, truncation, checksum mismatch,
    trailing bytes) is a [Parse] error too, never a crash.

    Fault-injection sites (see {!Linalg.Fault}): ["artifact.corrupt"]
    flips a header byte in the encoded output, ["artifact.truncate"]
    drops the trailing bytes — both make the result unloadable in a
    deterministic way for the robustness tests.  ["serve.torn_write"]
    simulates a writer killed mid-{!save}: half the bytes reach the
    temp file, no rename happens, and a typed
    {!Linalg.Mfti_error.Fault_injected} error is raised.

    {2 Crash safety}

    {!save} is atomic: bytes are written to [path ^ ".tmp"], fsynced,
    and renamed over [path] (with a best-effort directory fsync), so a
    crash leaves either the previous artifact intact or an orphaned
    temp file — never a torn [.mfti].  {!recover_root} is the matching
    startup scan: it quarantines orphaned temp files and (optionally)
    any [.mfti] that fails to decode, renaming them aside with a
    [".quarantined"] suffix so they leave the servable namespace but
    survive for inspection. *)

type t = {
  name : string;          (** human label, e.g. the source file *)
  created : float;        (** unix time the artifact was packed *)
  fit_err : float;        (** relative fit error at pack time; NaN = unknown *)
  model : Mfti.Engine.Model.t;
}

(** [v ?name ?fit_err ?created model] fills defaults: empty name,
    [nan] fit error, [created = Unix.time ()]. *)
val v : ?name:string -> ?fit_err:float -> ?created:float ->
  Mfti.Engine.Model.t -> t

(** Current format version (2); writers always emit it, readers also
    accept 1. *)
val format_version : int

(** Encode to the binary format.  Deterministic: encoding the result of
    {!of_string} reproduces the input bytes exactly. *)
val to_string : t -> string

(** Decode; every failure mode is a {!Linalg.Mfti_error.Parse}. *)
val of_string : ?source:string -> string -> (t, Linalg.Mfti_error.t) result

(** [save path t] writes [to_string t] atomically: temp file + fsync +
    rename.  Raises {!Linalg.Mfti_error.Error} at the
    ["serve.torn_write"] fault site (leaving a torn temp file behind,
    as a killed writer would). *)
val save : string -> t -> unit

(** [load path] reads and decodes; I/O errors and corrupt content both
    surface as [Error]. *)
val load : string -> (t, Linalg.Mfti_error.t) result

val load_exn : string -> t

(** One quarantined file found by {!recover_root}: where it was, where
    it went, and the typed diagnostic explaining why. *)
type quarantine = {
  original : string;
  quarantined : string;     (** [original ^ ".quarantined"], or equal to
                                [original] when the rename itself failed *)
  reason : Linalg.Mfti_error.t;
}

(** [recover_root root] scans a model directory for damage left by
    interrupted writers: orphaned [*.mfti.tmp] files are always
    quarantined; when [verify] (default [true]) every [*.mfti] is
    decoded (checksum and all) and quarantined on failure.  Returns the
    quarantine record for each file moved aside, in sorted filename
    order.  An unreadable [root] yields [[]]. *)
val recover_root : ?verify:bool -> string -> quarantine list
