(** Versioned, checksummed binary artifacts for fitted models.

    A fitted {!Mfti.Engine.Model.t} dies with the process; an artifact
    is its durable form — the realization matrices plus the fit
    metadata a serving layer needs (ports, order, singular values,
    recursion stats, stage timings, fit error).

    {2 Format (version 1)}

    All integers are unsigned 32-bit little-endian; all floats are raw
    IEEE-754 bits (64-bit little-endian, via [Int64.bits_of_float]) —
    never printed and re-parsed, so every value round-trips bitwise.
    Field order is canonical and fixed:

    {v
    magic   "MFTIART\x00"                       8 bytes
    version u32 = 1
    name    u32 length + bytes
    created f64 (unix time of packing)
    order, inputs, outputs, rank               4 x u32
    fit_err f64 (NaN when unknown)
    sigma   u32 count + count x f64
    timings u32 count + count x (string, f64)
    stats   u8 flag; when 1: selected, total,
            iterations (u32) + history floats
    E A B C D  each: u32 rows, u32 cols,
            rows*cols x (f64 re, f64 im), column-major
    crc32   u32 over every preceding byte
    v}

    Version policy: readers accept exactly the versions they know
    (currently 1) and reject anything else as {!Linalg.Mfti_error.Parse}
    — a newer writer never silently half-loads.  Any structural damage
    (bad magic, truncation, checksum mismatch, trailing bytes) is a
    [Parse] error too, never a crash.

    Fault-injection sites (see {!Linalg.Fault}): ["artifact.corrupt"]
    flips a header byte in the encoded output, ["artifact.truncate"]
    drops the trailing bytes — both make the result unloadable in a
    deterministic way for the robustness tests. *)

type t = {
  name : string;          (** human label, e.g. the source file *)
  created : float;        (** unix time the artifact was packed *)
  fit_err : float;        (** relative fit error at pack time; NaN = unknown *)
  model : Mfti.Engine.Model.t;
}

(** [v ?name ?fit_err ?created model] fills defaults: empty name,
    [nan] fit error, [created = Unix.time ()]. *)
val v : ?name:string -> ?fit_err:float -> ?created:float ->
  Mfti.Engine.Model.t -> t

(** Current format version (1). *)
val format_version : int

(** Encode to the binary format.  Deterministic: encoding the result of
    {!of_string} reproduces the input bytes exactly. *)
val to_string : t -> string

(** Decode; every failure mode is a {!Linalg.Mfti_error.Parse}. *)
val of_string : ?source:string -> string -> (t, Linalg.Mfti_error.t) result

(** [save path t] writes [to_string t] atomically enough for our use
    (binary mode, single write). *)
val save : string -> t -> unit

(** [load path] reads and decodes; I/O errors and corrupt content both
    surface as [Error]. *)
val load : string -> (t, Linalg.Mfti_error.t) result

val load_exn : string -> t
