(** Wire framing for the serving tier.

    Two framings share every transport:

    - {b JSON lines} (the default): one request/response object per
      newline-terminated line, exactly as {!Server} has always spoken.
    - {b Binary frames}, negotiated per connection: a 4-byte big-endian
      payload length [n], one tag byte, then [n - 1] payload bytes.
      Tag ['J'] carries JSON text (any request, any non-grid response);
      tag ['G'] carries a binary eval-grid response whose matrix data
      is raw IEEE-754 instead of JSON text — a 1024-point 8-port grid
      shrinks from ~1 MB of JSON to ~128 KiB.

    A connection starts in JSON-lines mode.  The client switches with
    [{"op":"hello","frames":"binary"}]; the acknowledgement
    [{"ok":true,"op":"hello","frames":"binary"}] is sent in the {e old}
    framing and every subsequent frame in both directions uses the new
    one.  [{"op":"hello","frames":"json"}] switches back the same way.
    Negotiation is handled by the concurrent transports ({!Supervisor},
    {!Router}); the sequential stdio/socket loops in {!Server} stay
    JSON-only.

    {2 Grid body layout}

    All integers big-endian, floats raw IEEE-754 bits big-endian:

    {v
    u32  meta length
    ...  meta: JSON text of the response object minus "results"
    u32  points   u32 outputs (p)   u32 inputs (m)
    then points * p * m entries, row-major per point,
    each entry f64 re, f64 im
    v}

    Decoding failures are typed {!Linalg.Mfti_error.Parse} errors, never
    exceptions escaping a worker. *)

type mode = Json | Binary

(** A complete incoming frame: a JSON request/response line, or the
    body of a binary grid response (clients only receive the latter). *)
type payload = Json_text of string | Grid_body of string

(** [encode_json s] is the binary frame (header + tag ['J']) carrying
    JSON text [s]. *)
val encode_json : string -> string

(** [encode_grid body] is the binary frame (header + tag ['G'])
    carrying an already-encoded grid body. *)
val encode_grid : string -> string

(** [grid_body ~meta ~grid] encodes the eval-grid response whose
    non-result fields are the object [meta] and whose per-frequency
    matrices are [grid]. *)
val grid_body : meta:Sjson.t -> grid:Linalg.Cmat.t array -> string

(** [decode_grid_body body] recovers the meta object and the matrices.
    Raises {!Linalg.Mfti_error.Error} ([Parse]) on a damaged body. *)
val decode_grid_body : string -> Sjson.t * Linalg.Cmat.t array

(** The JSON ["results"] array for a grid — one [p x m] matrix per
    frequency, each entry a [[re, im]] pair.  Shared by {!Server} (JSON
    eval-grid responses) and {!Router} (re-rendering a binary upstream
    reply for a JSON client), so the two emit bit-identical text. *)
val results_json : Linalg.Cmat.t array -> Sjson.t

(** Incremental frame extraction over a byte stream.  The reader owns
    the receive buffer; transports feed it raw chunks and pull complete
    frames under the current {!mode}.  One reader serves a connection
    for its whole lifetime — switching modes mid-stream is safe because
    extraction only ever consumes whole frames. *)
module Reader : sig
  type t

  val create : unit -> t

  (** [add r chunk k] appends the first [k] bytes of [chunk]. *)
  val add : t -> bytes -> int -> unit

  (** Buffered bytes not yet consumed by {!next}. *)
  val pending : t -> int

  (** [next r ~mode ~max_bytes] extracts the next complete frame:
      [`Frame p] on success, [`None] when more bytes are needed,
      [`Too_long] when the frame under construction exceeds
      [max_bytes], [`Bad msg] on a malformed binary frame (bad tag, or
      a grid frame arriving as a request). In [Json] mode frames are
      newline-delimited lines with a trailing [CR] stripped. *)
  val next :
    t -> mode:mode -> max_bytes:int ->
    [ `Frame of payload | `None | `Too_long | `Bad of string ]

  (** Drain whatever is buffered (EOF with an unterminated trailing
      line in [Json] mode: serve it, the way [input_line] would). *)
  val take_rest : t -> string
end

(** [is_hello line] is [Some "binary"], [Some "json"], or [Some other]
    when [line] parses to a [{"op":"hello","frames":...}] request
    ([Some ""] when the field is missing/not a string); [None] when it
    is any other request.  Transports use it to intercept negotiation
    before the request reaches {!Server.handle_line}. *)
val is_hello : string -> string option

(** The [{"ok":true,"op":"hello","frames":F}] acknowledgement text. *)
val hello_ack : string -> string
