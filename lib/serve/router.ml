open Linalg

(* Sharded, replicated serving tier.  See router.mli for the design:
   consistent-hash sharding, health-checked replicas with failover and
   rejoin, per-model coalescing of concurrent eval-grid requests, and
   frame negotiation on both sides (clients negotiate with us; we
   negotiate binary frames with every replica so grids cross as raw
   IEEE-754).

   Concurrency model: the router is IO-bound, so everything runs on
   systhreads — one accept loop, one health prober, one thread per
   client connection.  One global mutex [t.mu] guards the replica set,
   the ring, the coalescing slots, the pools and every counter; all
   network IO happens outside it. *)

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring *)

module Ring = struct
  type t = { points : (int64 * string) array }

  let hash s =
    (* FNV-1a, 64-bit.  Raw FNV has almost no avalanche on short
       strings (one-byte keys differ in a handful of bit positions), so
       finish with a splitmix64 mix — without it a ring of short names
       is badly lumpy. *)
    let h = ref 0xcbf29ce484222325L in
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s;
    let z = !h in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let make ~vnodes names =
    if vnodes < 1 then
      Mfti_error.raise_error
        (Mfti_error.Validation
           { context = "router.ring"; message = "vnodes must be >= 1" });
    let points =
      Array.of_list
        (List.concat_map
           (fun name ->
             List.init vnodes (fun v ->
                 (hash (Printf.sprintf "%s#%d" name v), name)))
           names)
    in
    Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) points;
    { points }

  let candidates t key =
    let n = Array.length t.points in
    if n = 0 then []
    else begin
      let h = hash key in
      (* first point clockwise of [h] (unsigned), wrapping *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then
          lo := mid + 1
        else hi := mid
      done;
      let start = if !lo = n then 0 else !lo in
      let seen = Hashtbl.create 8 in
      let out = ref [] in
      for i = 0 to n - 1 do
        let _, name = t.points.((start + i) mod n) in
        if not (Hashtbl.mem seen name) then begin
          Hashtbl.add seen name ();
          out := name :: !out
        end
      done;
      List.rev !out
    end
end

(* ------------------------------------------------------------------ *)
(* Health state machine *)

module Health = struct
  type state = Up | Suspect | Down | Draining
  type probe = Ok | Ok_draining | Failed

  let step ~fail_threshold state fails probe =
    match probe with
    | Ok -> (Up, 0)
    | Ok_draining -> (Draining, 0)
    | Failed ->
      let fails = fails + 1 in
      if fails >= fail_threshold then (Down, fails)
      else (
        match state with
        | Up | Suspect -> (Suspect, fails)
        | (Down | Draining) as s -> (s, fails))

  let to_string = function
    | Up -> "up"
    | Suspect -> "suspect"
    | Down -> "down"
    | Draining -> "draining"
end

(* ------------------------------------------------------------------ *)
(* Configuration *)

type config = {
  vnodes : int;
  probe_interval_ms : int;
  fail_threshold : int;
  max_failover : int;
  connect_timeout_ms : int;
  request_timeout_ms : int;
  idle_timeout_ms : int;
  max_conns : int;
  coalesce_hold_ms : int;
  backoff_base_ms : int;
  backoff_cap_ms : int;
  max_line_bytes : int;
}

let default_config =
  { vnodes = 64;
    probe_interval_ms = 200;
    fail_threshold = 3;
    max_failover = 2;
    connect_timeout_ms = 1_000;
    request_timeout_ms = 5_000;
    idle_timeout_ms = 30_000;
    max_conns = 64;
    coalesce_hold_ms = 0;
    backoff_base_ms = 50;
    backoff_cap_ms = 2_000;
    max_line_bytes = 8 * 1024 * 1024 }

let validate_config c =
  let bad what =
    Mfti_error.raise_error
      (Mfti_error.Validation { context = "router"; message = what })
  in
  if c.vnodes < 1 then bad "vnodes must be >= 1";
  if c.probe_interval_ms < 1 then bad "probe interval must be >= 1 ms";
  if c.fail_threshold < 1 then bad "fail threshold must be >= 1";
  if c.max_failover < 0 then bad "max failover must be >= 0";
  if c.connect_timeout_ms < 1 then bad "connect timeout must be >= 1 ms";
  if c.request_timeout_ms < 1 then bad "request timeout must be >= 1 ms";
  if c.idle_timeout_ms < 1 then bad "idle timeout must be >= 1 ms";
  if c.max_conns < 1 then bad "connection cap must be >= 1";
  if c.coalesce_hold_ms < 0 then bad "coalesce hold must be >= 0 ms";
  if c.max_line_bytes < 2 then bad "frame cap must be >= 2 bytes"

(* ------------------------------------------------------------------ *)
(* Addresses *)

let parse_addr s =
  let bad () =
    Mfti_error.raise_error
      (Mfti_error.Validation
         { context = "router";
           message =
             Printf.sprintf
               "malformed replica address %S (want host:port or a socket \
                path)"
               s })
  in
  if s = "" then bad ();
  if String.contains s '/' || not (String.contains s ':') then
    Supervisor.Unix_path s
  else
    match String.rindex_opt s ':' with
    | None -> Supervisor.Unix_path s
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
       | Some p when p >= 0 && p <= 65535 && host <> "" ->
         Supervisor.Tcp (host, p)
       | _ -> bad ())

(* ------------------------------------------------------------------ *)
(* Low-level IO with deadlines *)

let now () = Unix.gettimeofday ()
let tick = 0.05
let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd s ~deadline =
  let len = String.length s in
  let rec go off =
    if off >= len then `Ok
    else
      let t = now () in
      if t >= deadline then `Timeout
      else
        match Unix.select [] [ fd ] [] (Float.min tick (deadline -. t)) with
        | _, [], _ -> go off
        | _ ->
          (match Unix.write_substring fd s off (len - off) with
           | k -> go (off + k)
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
           | exception Unix.Unix_error _ -> `Closed)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Pull one complete frame off [fd].  [stop] lets an idle client loop
   notice a router drain between frames. *)
let read_payload ?(stop = fun () -> false) fd reader chunk ~mode ~deadline
    ~max_bytes =
  let rec go () =
    match Frame.Reader.next reader ~mode ~max_bytes with
    | `Frame p -> `Payload p
    | `Too_long -> `Err "frame exceeds the byte cap"
    | `Bad m -> `Err ("malformed frame: " ^ m)
    | `None ->
      let t = now () in
      if t >= deadline then
        (if Frame.Reader.pending reader > 0 then `Timeout_partial
         else `Timeout)
      else if stop () && Frame.Reader.pending reader = 0 then `Eof
      else (
        match Unix.select [ fd ] [] [] (Float.min tick (deadline -. t)) with
        | [], _, _ -> go ()
        | _ ->
          (match Unix.read fd chunk 0 (Bytes.length chunk) with
           | 0 -> `Eof
           | k ->
             Frame.Reader.add reader chunk k;
             go ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
           | exception Unix.Unix_error _ -> `Err "connection error")
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let connect_addr addr ~timeout_s =
  match addr with
  | Supervisor.Unix_path p ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_UNIX p);
       `Ok fd
     with Unix.Unix_error (e, _, _) ->
       close_quiet fd;
       `Err (Unix.error_message e))
  | Supervisor.Tcp (host, port) ->
    let ip =
      try Some (Unix.inet_addr_of_string host)
      with Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } -> None
        | h -> Some h.Unix.h_addr_list.(0)
        | exception Not_found -> None)
    in
    (match ip with
     | None -> `Err ("cannot resolve host " ^ host)
     | Some ip ->
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ());
       Unix.set_nonblock fd;
       (match Unix.connect fd (Unix.ADDR_INET (ip, port)) with
        | () ->
          Unix.clear_nonblock fd;
          `Ok fd
        | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) ->
          (match Unix.select [] [ fd ] [] timeout_s with
           | _, _ :: _, _ ->
             (match Unix.getsockopt_error fd with
              | None ->
                Unix.clear_nonblock fd;
                `Ok fd
              | Some e ->
                close_quiet fd;
                `Err (Unix.error_message e))
           | _ ->
             close_quiet fd;
             `Err "connect timed out"
           | exception Unix.Unix_error (e, _, _) ->
             close_quiet fd;
             `Err (Unix.error_message e))
        | exception Unix.Unix_error (e, _, _) ->
          close_quiet fd;
          `Err (Unix.error_message e)))

(* ------------------------------------------------------------------ *)
(* Upstream connections: pooled, binary-negotiated *)

type rconn = {
  u_fd : Unix.file_descr;
  u_rd : Frame.Reader.t;
  u_chunk : bytes;
}

let hello_binary_line =
  Sjson.to_string
    (Sjson.Obj
       [ ("op", Sjson.Str "hello"); ("frames", Sjson.Str "binary") ])

let open_rconn addr ~cfg =
  let timeout_s = float_of_int cfg.connect_timeout_ms /. 1000. in
  match connect_addr addr ~timeout_s with
  | `Err m -> `Err m
  | `Ok fd ->
    let rc = { u_fd = fd; u_rd = Frame.Reader.create ();
               u_chunk = Bytes.create 65536 } in
    let deadline = now () +. timeout_s in
    (match write_all fd (hello_binary_line ^ "\n") ~deadline with
     | `Timeout | `Closed ->
       close_quiet fd;
       `Err "hello write failed"
     | `Ok ->
       (match
          read_payload fd rc.u_rd rc.u_chunk ~mode:Frame.Json ~deadline
            ~max_bytes:cfg.max_line_bytes
        with
        | `Payload (Frame.Json_text ack) ->
          let ok =
            match Sjson.parse ack with
            | j -> Sjson.member "ok" j = Some (Sjson.Bool true)
            | exception Sjson.Parse_error _ -> false
          in
          if ok then `Ok rc
          else begin
            close_quiet fd;
            `Err "replica refused binary frames"
          end
        | _ ->
          close_quiet fd;
          `Err "no hello acknowledgement"))

(* One request/response round trip over a binary-negotiated connection. *)
let rconn_request rc line ~deadline ~max_bytes =
  match write_all rc.u_fd (Frame.encode_json line) ~deadline with
  | `Timeout -> `Timeout
  | `Closed -> `Conn_err "write failed"
  | `Ok ->
    (match
       read_payload rc.u_fd rc.u_rd rc.u_chunk ~mode:Frame.Binary ~deadline
         ~max_bytes
     with
     | `Payload (Frame.Json_text s) -> `Json s
     | `Payload (Frame.Grid_body b) -> `Grid b
     | `Timeout | `Timeout_partial -> `Timeout
     | `Eof -> `Conn_err "connection closed mid-response"
     | `Err m -> `Conn_err m)

(* ------------------------------------------------------------------ *)
(* Replicas *)

type replica = {
  r_name : string;
  r_addr : Supervisor.listener;
  r_faulted : bool;             (* first configured replica: chaos target *)
  mutable r_state : Health.state;
  mutable r_fails : int;
  mutable r_pool : rconn list;
  mutable r_next_attempt : float;
  mutable r_backoff_ms : int;
  mutable r_served : int;
  mutable r_errors : int;
  mutable r_rejoins : int;
  mutable r_flap : int;         (* router.rejoin_flap probe counter *)
}

let pool_cap = 4

(* ------------------------------------------------------------------ *)
(* Coalescing *)

(* The outcome of one upstream eval-grid batch, shared by its waiters:
   the replica's meta fields + matrices over the merged grid, or an
   error response text relayed to everyone. *)
type gres =
  | Gok of (string * Sjson.t) list * Cmat.t array * float array
  | Gtext of string

type batch = {
  b_cond : Condition.t;
  mutable b_freqs : float array list;   (* one entry per waiter *)
  mutable b_running : bool;
  mutable b_result : gres option;
}

type slot = { mutable open_batch : batch option }

(* ------------------------------------------------------------------ *)
(* Router state *)

type replica_snapshot = {
  rp_name : string;
  rp_state : Health.state;
  rp_fails : int;
  rp_served : int;
  rp_errors : int;
  rp_rejoins : int;
}

type snapshot = {
  rt_requests : int;
  rt_forwarded : int;
  rt_failovers : int;
  rt_timeouts : int;
  rt_unavailable : int;
  rt_shed : int;
  rt_coalesce_batches : int;
  rt_coalesce_hits : int;
  rt_probes : int;
  rt_conns : int;
  rt_draining : bool;
  rt_replicas : replica_snapshot list;
}

type t = {
  config : config;
  listen : Supervisor.listener;
  listen_fd : Unix.file_descr;
  bound : int option;
  mu : Mutex.t;
  mutable replicas : replica list;      (* configured order *)
  mutable ring : Ring.t;
  slots : (string, slot) Hashtbl.t;
  mutable session_rr : int;             (* fit-open round-robin cursor *)
  mutable stopping : bool;
  mutable stopped : bool;
  mutable conns : int;
  mutable c_requests : int;
  mutable c_forwarded : int;
  mutable c_failovers : int;
  mutable c_timeouts : int;
  mutable c_unavailable : int;
  mutable c_shed : int;
  mutable c_batches : int;
  mutable c_hits : int;
  mutable c_probes : int;
  mutable threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable health_thread : Thread.t option;
}

let locked t f = Mutex.protect t.mu f

let find_replica t name =
  List.find_opt (fun r -> r.r_name = name) t.replicas

(* ------------------------------------------------------------------ *)
(* Health bookkeeping (callers hold t.mu) *)

let flush_pool r =
  List.iter (fun rc -> close_quiet rc.u_fd) r.r_pool;
  r.r_pool <- []

let note_transition r was =
  if r.r_state = Health.Up && was <> Health.Up then begin
    if was = Health.Down then r.r_rejoins <- r.r_rejoins + 1;
    r.r_backoff_ms <- 0;
    r.r_next_attempt <- 0.;
    (* pooled fds predate the outage; a restarted replica has new ones *)
    flush_pool r
  end

let note_failure t r =
  let was = r.r_state in
  let st, fails =
    Health.step ~fail_threshold:t.config.fail_threshold r.r_state r.r_fails
      Health.Failed
  in
  r.r_state <- st;
  r.r_fails <- fails;
  r.r_errors <- r.r_errors + 1;
  r.r_backoff_ms <-
    Stdlib.min t.config.backoff_cap_ms
      (Stdlib.max t.config.backoff_base_ms (r.r_backoff_ms * 2));
  (* deterministic per-replica jitter so a fleet of routers does not
     hammer a recovering replica in lockstep *)
  let jit = Int64.to_int (Int64.logand (Ring.hash r.r_name) 0xfL) in
  r.r_next_attempt <- now () +. (float_of_int (r.r_backoff_ms + jit) /. 1000.);
  flush_pool r;
  ignore was

let note_success r =
  (* request-path success: resurrect Suspect/Down, but leave Draining
     alone — the replica asked to wind down *)
  if r.r_state <> Health.Draining then begin
    let was = r.r_state in
    r.r_state <- Health.Up;
    r.r_fails <- 0;
    note_transition r was
  end

let apply_probe t r probe =
  let was = r.r_state in
  let st, fails =
    Health.step ~fail_threshold:t.config.fail_threshold r.r_state r.r_fails
      probe
  in
  r.r_state <- st;
  r.r_fails <- fails;
  note_transition r was

(* ------------------------------------------------------------------ *)
(* Upstream calls *)

let take_conn t r =
  match
    locked t (fun () ->
        match r.r_pool with
        | [] -> None
        | c :: rest ->
          r.r_pool <- rest;
          Some c)
  with
  | Some c -> `Ok c
  | None -> open_rconn r.r_addr ~cfg:t.config

let put_conn t r rc =
  locked t (fun () ->
      if (not t.stopping) && List.length r.r_pool < pool_cap
         && r.r_state <> Health.Down
      then r.r_pool <- rc :: r.r_pool
      else close_quiet rc.u_fd)

(* One attempt against one replica: fault sites first, then the wire.
   [`Timeout] is terminal (no failover — the work may still land);
   [`Conn_err] lets the caller try the next candidate. *)
let call_replica t r line =
  if r.r_faulted && Fault.armed "router.partition" then
    `Conn_err "injected partition"
  else if r.r_faulted && Fault.armed "router.slow_replica" then `Timeout
  else
    match take_conn t r with
    | `Err m -> `Conn_err m
    | `Ok rc ->
      let deadline =
        now () +. (float_of_int t.config.request_timeout_ms /. 1000.)
      in
      (match
         rconn_request rc line ~deadline ~max_bytes:t.config.max_line_bytes
       with
       | (`Json _ | `Grid _) as ok ->
         put_conn t r rc;
         locked t (fun () ->
             r.r_served <- r.r_served + 1;
             note_success r);
         ok
       | `Timeout ->
         close_quiet rc.u_fd;
         `Timeout
       | `Conn_err m ->
         close_quiet rc.u_fd;
         `Conn_err m)

(* Route [line] by [key] along the ring with bounded failover. *)
let exec_upstream ?attempts t ~key line =
  let max_attempts =
    match attempts with Some n -> n | None -> 1 + t.config.max_failover
  in
  let cands = locked t (fun () -> Ring.candidates t.ring key) in
  let tried = ref 0 in
  let rec go = function
    | [] ->
      locked t (fun () -> t.c_unavailable <- t.c_unavailable + 1);
      `Unavailable !tried
    | name :: rest ->
      if !tried >= max_attempts then begin
        locked t (fun () -> t.c_unavailable <- t.c_unavailable + 1);
        `Unavailable !tried
      end
      else begin
        let r_opt = locked t (fun () -> find_replica t name) in
        match r_opt with
        | None -> go rest
        | Some r ->
          let eligible =
            locked t (fun () ->
                match r.r_state with
                | Health.Down | Health.Draining -> false
                | Health.Up -> true
                | Health.Suspect -> now () >= r.r_next_attempt)
          in
          if not eligible then go rest
          else begin
            if !tried > 0 then
              locked t (fun () -> t.c_failovers <- t.c_failovers + 1);
            incr tried;
            locked t (fun () -> t.c_forwarded <- t.c_forwarded + 1);
            match call_replica t r line with
            | `Json s -> `Json s
            | `Grid b -> `Grid b
            | `Timeout ->
              locked t (fun () -> t.c_timeouts <- t.c_timeouts + 1);
              `Timeout
            | `Conn_err _ ->
              locked t (fun () -> note_failure t r);
              go rest
          end
      end
  in
  go cands

(* A single-replica call (session stickiness), no ring walk. *)
let exec_on_replica t r line =
  locked t (fun () -> t.c_forwarded <- t.c_forwarded + 1);
  match call_replica t r line with
  | `Json s -> `Json s
  | `Grid b -> `Grid b
  | `Timeout ->
    locked t (fun () -> t.c_timeouts <- t.c_timeouts + 1);
    `Timeout
  | `Conn_err _ ->
    locked t (fun () ->
        note_failure t r;
        t.c_unavailable <- t.c_unavailable + 1);
    `Unavailable 1

(* ------------------------------------------------------------------ *)
(* Typed local responses *)

let timeout_resp ?op ms =
  Server.protocol_error ?op ~kind:"timeout"
    ~message:(Printf.sprintf "upstream replica deadline exceeded (%d ms)" ms)
    ()

let unavailable_resp ?op tried =
  Server.protocol_error ?op ~kind:"unavailable"
    ~message:
      (Printf.sprintf
         "no live replica could answer (attempted %d); retry with backoff"
         tried)
    ()

(* ------------------------------------------------------------------ *)
(* Coalesced eval-grid *)

let merge_freqs sets =
  let all = Array.concat sets in
  let l = List.sort_uniq Float.compare (Array.to_list all) in
  Array.of_list l

let find_idx merged f =
  let lo = ref 0 and hi = ref (Array.length merged - 1) in
  let found = ref (-1) in
  while !lo <= !hi && !found < 0 do
    let mid = (!lo + !hi) / 2 in
    let c = Float.compare merged.(mid) f in
    if c = 0 then found := mid
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let grid_request ~model freqs =
  Sjson.to_string
    (Sjson.Obj
       [ ("op", Sjson.Str "eval-grid");
         ("model", Sjson.Str model);
         ( "freqs",
           Sjson.Arr
             (Array.to_list (Array.map (fun f -> Sjson.Num f) freqs)) ) ])

let exec_grid t ~model merged =
  let line = grid_request ~model merged in
  match exec_upstream t ~key:model line with
  | `Grid body ->
    (match Frame.decode_grid_body body with
     | Sjson.Obj fields, grid -> Gok (fields, grid, merged)
     | _ ->
       Gtext
         (Sjson.to_string
            (Server.protocol_error ~op:"eval-grid" ~kind:"parse"
               ~message:"replica grid meta is not an object" ()))
     | exception Mfti_error.Error e ->
       Gtext (Sjson.to_string (Server.error_response ~op:"eval-grid" e)))
  | `Json s -> Gtext s
  | `Timeout ->
    Gtext
      (Sjson.to_string (timeout_resp ~op:"eval-grid" t.config.request_timeout_ms))
  | `Unavailable tried ->
    Gtext (Sjson.to_string (unavailable_resp ~op:"eval-grid" tried))

(* Submit one eval-grid request, riding a shared batch when one is
   forming for the same model.  Returns this waiter's share. *)
let submit_grid t ~model ~freqs =
  Mutex.lock t.mu;
  let slot =
    match Hashtbl.find_opt t.slots model with
    | Some s -> s
    | None ->
      let s = { open_batch = None } in
      Hashtbl.add t.slots model s;
      s
  in
  let result =
    match slot.open_batch with
    | Some b when not b.b_running ->
      (* follower: join the forming batch, wait for its leader *)
      b.b_freqs <- freqs :: b.b_freqs;
      t.c_hits <- t.c_hits + 1;
      while b.b_result = None do
        Condition.wait b.b_cond t.mu
      done;
      Mutex.unlock t.mu;
      (match b.b_result with Some r -> r | None -> assert false)
    | _ ->
      (* leader: open a batch, optionally hold it so concurrent
         requests can pile in, then run the merged call *)
      let b =
        { b_cond = Condition.create (); b_freqs = [ freqs ];
          b_running = false; b_result = None }
      in
      slot.open_batch <- Some b;
      t.c_batches <- t.c_batches + 1;
      if t.config.coalesce_hold_ms > 0 then begin
        Mutex.unlock t.mu;
        Unix.sleepf (float_of_int t.config.coalesce_hold_ms /. 1000.);
        Mutex.lock t.mu
      end;
      b.b_running <- true;
      (match slot.open_batch with
       | Some b' when b' == b -> slot.open_batch <- None
       | _ -> ());
      let merged = merge_freqs b.b_freqs in
      Mutex.unlock t.mu;
      let res = exec_grid t ~model merged in
      Mutex.lock t.mu;
      b.b_result <- Some res;
      Condition.broadcast b.b_cond;
      Mutex.unlock t.mu;
      res
  in
  (* demultiplex this waiter's frequencies back out *)
  match result with
  | Gtext s -> `Text s
  | Gok (fields, grid, merged) ->
    let ok = ref true in
    let mine =
      Array.map
        (fun f ->
          let i = find_idx merged f in
          if i < 0 then begin
            ok := false;
            Cmat.zeros 0 0
          end
          else grid.(i))
        freqs
    in
    if not !ok then
      `Text
        (Sjson.to_string
           (Server.protocol_error ~op:"eval-grid" ~kind:"parse"
              ~message:"merged grid is missing a requested frequency" ()))
    else
      let fields =
        List.map
          (fun (k, v) ->
            if k = "points" then
              (k, Sjson.Num (float_of_int (Array.length freqs)))
            else (k, v))
          fields
      in
      `Grid_meta (fields, mine)

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats t =
  locked t (fun () ->
      { rt_requests = t.c_requests;
        rt_forwarded = t.c_forwarded;
        rt_failovers = t.c_failovers;
        rt_timeouts = t.c_timeouts;
        rt_unavailable = t.c_unavailable;
        rt_shed = t.c_shed;
        rt_coalesce_batches = t.c_batches;
        rt_coalesce_hits = t.c_hits;
        rt_probes = t.c_probes;
        rt_conns = t.conns;
        rt_draining = t.stopping;
        rt_replicas =
          List.map
            (fun r ->
              { rp_name = r.r_name;
                rp_state = r.r_state;
                rp_fails = r.r_fails;
                rp_served = r.r_served;
                rp_errors = r.r_errors;
                rp_rejoins = r.r_rejoins })
            t.replicas })

let stats_json t =
  let s = stats t in
  let n x = Sjson.Num (float_of_int x) in
  Sjson.Obj
    [ ("ok", Sjson.Bool true);
      ("op", Sjson.Str "stats");
      ( "router",
        Sjson.Obj
          [ ("requests", n s.rt_requests);
            ("forwarded", n s.rt_forwarded);
            ("failovers", n s.rt_failovers);
            ("timeouts", n s.rt_timeouts);
            ("unavailable", n s.rt_unavailable);
            ("shed", n s.rt_shed);
            ("coalesce_batches", n s.rt_coalesce_batches);
            ("coalesce_hits", n s.rt_coalesce_hits);
            ("probes", n s.rt_probes);
            ("conns", n s.rt_conns);
            ("draining", Sjson.Bool s.rt_draining);
            ( "replicas",
              Sjson.Arr
                (List.map
                   (fun r ->
                     Sjson.Obj
                       [ ("name", Sjson.Str r.rp_name);
                         ("state", Sjson.Str (Health.to_string r.rp_state));
                         ("fails", n r.rp_fails);
                         ("served", n r.rp_served);
                         ("errors", n r.rp_errors);
                         ("rejoins", n r.rp_rejoins) ])
                   s.rt_replicas) ) ] ) ]

(* ------------------------------------------------------------------ *)
(* Health prober *)

let probe_replica t r =
  if r.r_faulted && Fault.armed "router.partition" then Health.Failed
  else if r.r_faulted && Fault.armed "router.rejoin_flap" then begin
    let odd =
      locked t (fun () ->
          r.r_flap <- r.r_flap + 1;
          r.r_flap land 1 = 1)
    in
    if odd then Health.Failed else Health.Ok
  end
  else begin
    let timeout_s = float_of_int t.config.connect_timeout_ms /. 1000. in
    match connect_addr r.r_addr ~timeout_s with
    | `Err _ -> Health.Failed
    | `Ok fd ->
      let deadline = now () +. timeout_s in
      let ping =
        Sjson.to_string (Sjson.Obj [ ("op", Sjson.Str "ping") ]) ^ "\n"
      in
      let verdict =
        match write_all fd ping ~deadline with
        | `Timeout | `Closed -> Health.Failed
        | `Ok ->
          let rd = Frame.Reader.create () in
          let chunk = Bytes.create 4096 in
          (match
             read_payload fd rd chunk ~mode:Frame.Json ~deadline
               ~max_bytes:t.config.max_line_bytes
           with
           | `Payload (Frame.Json_text s) ->
             (match Sjson.parse s with
              | j when Sjson.member "ok" j = Some (Sjson.Bool true) ->
                if Sjson.member "draining" j = Some (Sjson.Bool true) then
                  Health.Ok_draining
                else Health.Ok
              | _ -> Health.Failed
              | exception Sjson.Parse_error _ -> Health.Failed)
           | _ -> Health.Failed)
      in
      close_quiet fd;
      verdict
  end

let health_loop t () =
  let interval = float_of_int t.config.probe_interval_ms /. 1000. in
  let rec go () =
    if t.stopping then ()
    else begin
      let reps = locked t (fun () -> t.replicas) in
      List.iter
        (fun r ->
          if not t.stopping then begin
            let probe = probe_replica t r in
            locked t (fun () ->
                t.c_probes <- t.c_probes + 1;
                apply_probe t r probe)
          end)
        reps;
      let until = now () +. interval in
      while now () < until && not t.stopping do
        Unix.sleepf (Float.min tick (until -. now ()))
      done;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Client-facing dispatch *)

type reply =
  | Rtext of string
  | Rgrid_meta of (string * Sjson.t) list * Cmat.t array
  | Rgrid_body of string

let reply_bytes ~mode = function
  | Rtext s ->
    (match mode with
     | Frame.Json -> s ^ "\n"
     | Frame.Binary -> Frame.encode_json s)
  | Rgrid_meta (fields, grid) ->
    (match mode with
     | Frame.Binary ->
       Frame.encode_grid (Frame.grid_body ~meta:(Sjson.Obj fields) ~grid)
     | Frame.Json ->
       Sjson.to_string
         (Sjson.Obj (fields @ [ ("results", Frame.results_json grid) ]))
       ^ "\n")
  | Rgrid_body body ->
    (match mode with
     | Frame.Binary -> Frame.encode_grid body
     | Frame.Json ->
       (* a JSON client behind a binary upstream: re-render from bits *)
       (match Frame.decode_grid_body body with
        | Sjson.Obj fields, grid ->
          Sjson.to_string
            (Sjson.Obj (fields @ [ ("results", Frame.results_json grid) ]))
          ^ "\n"
        | _ | (exception Mfti_error.Error _) ->
          Sjson.to_string
            (Server.protocol_error ~op:"eval-grid" ~kind:"parse"
               ~message:"replica grid body is damaged" ())
          ^ "\n"))

let member_str req k =
  match Sjson.member k req with Some (Sjson.Str s) -> Some s | _ -> None

let freqs_of req =
  match Sjson.member "freqs" req with
  | Some (Sjson.Arr l) ->
    let ok = List.for_all (function Sjson.Num _ -> true | _ -> false) l in
    if ok && l <> [] then
      Some
        (Array.of_list
           (List.map (function Sjson.Num f -> f | _ -> 0.) l))
    else None
  | _ -> None

let upstream_reply ?op t = function
  | `Json s -> Rtext s
  | `Grid b -> Rgrid_body b
  | `Timeout ->
    Rtext (Sjson.to_string (timeout_resp ?op t.config.request_timeout_ms))
  | `Unavailable tried -> Rtext (Sjson.to_string (unavailable_resp ?op tried))

let pick_session_replica t =
  locked t (fun () ->
      let arr = Array.of_list t.replicas in
      let n = Array.length arr in
      if n = 0 then None
      else begin
        let k = t.session_rr in
        t.session_rr <- t.session_rr + 1;
        let rec find i =
          if i >= n then None
          else
            let r = arr.((k + i) mod n) in
            if r.r_state = Health.Up then Some r else find (i + 1)
        in
        find 0
      end)

let op_register t req =
  match member_str req "replica" with
  | None ->
    Rtext
      (Sjson.to_string
         (Server.protocol_error ~op:"register" ~kind:"validation"
            ~message:"register needs a \"replica\" address" ()))
  | Some addr_s ->
    (match parse_addr addr_s with
     | exception Mfti_error.Error e ->
       Rtext (Sjson.to_string (Server.error_response ~op:"register" e))
     | addr ->
       let count =
         locked t (fun () ->
             (match find_replica t addr_s with
              | Some _ -> ()       (* idempotent re-register *)
              | None ->
                let r =
                  { r_name = addr_s; r_addr = addr; r_faulted = false;
                    r_state = Health.Suspect; r_fails = 0; r_pool = [];
                    r_next_attempt = 0.; r_backoff_ms = 0; r_served = 0;
                    r_errors = 0; r_rejoins = 0; r_flap = 0 }
                in
                t.replicas <- t.replicas @ [ r ];
                t.ring <-
                  Ring.make ~vnodes:t.config.vnodes
                    (List.map (fun r -> r.r_name) t.replicas));
             List.length t.replicas)
       in
       Rtext
         (Sjson.to_string
            (Sjson.Obj
               [ ("ok", Sjson.Bool true);
                 ("op", Sjson.Str "register");
                 ("replicas", Sjson.Num (float_of_int count)) ])))

(* [pinned] is the connection's sticky session replica (set by the
   first successful fit-open).  Returns the reply plus a stop flag. *)
let dispatch t ~pinned line =
  locked t (fun () -> t.c_requests <- t.c_requests + 1);
  match Sjson.parse line with
  | exception Sjson.Parse_error _ ->
    (* let a replica render the typed parse error so clients see the
       exact same diagnostics with or without a router in front *)
    (upstream_reply t (exec_upstream t ~key:"" line), false)
  | req ->
    let op = member_str req "op" in
    (match op with
     | Some "ping" ->
       ( Rtext
           (Sjson.to_string
              (Sjson.Obj
                 [ ("ok", Sjson.Bool true);
                   ("op", Sjson.Str "ping");
                   ("draining", Sjson.Bool t.stopping) ])),
         false )
     | Some "stats" -> (Rtext (Sjson.to_string (stats_json t)), false)
     | Some "register" -> (op_register t req, false)
     | Some "shutdown" ->
       ( Rtext
           (Sjson.to_string
              (Sjson.Obj
                 [ ("ok", Sjson.Bool true); ("op", Sjson.Str "shutdown") ])),
         true )
     | Some "eval-grid" ->
       (match (member_str req "model", freqs_of req) with
        | Some model, Some freqs ->
          (match submit_grid t ~model ~freqs with
           | `Text s -> (Rtext s, false)
           | `Grid_meta (fields, grid) -> (Rgrid_meta (fields, grid), false))
        | _ ->
          (* malformed eval-grid: forward for the replica's typed error *)
          let key = Option.value ~default:"" (member_str req "model") in
          (upstream_reply ~op:"eval-grid" t (exec_upstream t ~key line), false))
     | Some o
       when String.length o >= 4 && String.sub o 0 4 = "fit-" ->
       (* session ops are connection-sticky *)
       (match !pinned with
        | Some name ->
          (match locked t (fun () -> find_replica t name) with
           | Some r -> (upstream_reply ~op:o t (exec_on_replica t r line), false)
           | None -> (Rtext (Sjson.to_string (unavailable_resp ~op:o 0)), false))
        | None ->
          if o = "fit-open" then (
            match pick_session_replica t with
            | None ->
              (Rtext (Sjson.to_string (unavailable_resp ~op:o 0)), false)
            | Some r ->
              let res = exec_on_replica t r line in
              (match res with
               | `Json _ -> pinned := Some r.r_name
               | _ -> ());
              (upstream_reply ~op:o t res, false))
          else
            let key = Option.value ~default:"" (member_str req "session") in
            (upstream_reply ~op:o t (exec_upstream ~attempts:1 t ~key line), false))
     | _ ->
       let key = Option.value ~default:"" (member_str req "model") in
       (upstream_reply ?op t (exec_upstream t ~key line), false))

(* ------------------------------------------------------------------ *)
(* Drain *)

let request_stop t =
  locked t (fun () -> t.stopping <- true)

(* ------------------------------------------------------------------ *)
(* Client connections *)

let client_loop t conn () =
  let cfg = t.config in
  let reader = Frame.Reader.create () in
  let chunk = Bytes.create 65536 in
  let mode = ref Frame.Json in
  let pinned = ref None in
  let idle_s = float_of_int cfg.idle_timeout_ms /. 1000. in
  let req_s = float_of_int cfg.request_timeout_ms /. 1000. in
  let send reply =
    write_all conn (reply_bytes ~mode:!mode reply)
      ~deadline:(now () +. req_s)
  in
  let rec loop () =
    match
      read_payload conn reader chunk ~mode:!mode
        ~deadline:(now () +. idle_s) ~max_bytes:cfg.max_line_bytes
        ~stop:(fun () -> t.stopping)
    with
    | `Eof | `Timeout -> ()          (* idle expiry / drain: silent close *)
    | `Timeout_partial ->
      ignore
        (send
           (Rtext
              (Sjson.to_string
                 (Server.protocol_error ~kind:"timeout"
                    ~message:
                      (Printf.sprintf "request frame deadline exceeded (%d ms)"
                         cfg.idle_timeout_ms)
                    ()))))
    | `Err msg ->
      ignore
        (send
           (Rtext
              (Sjson.to_string
                 (Server.protocol_error ~kind:"parse" ~message:msg ()))))
    | `Payload (Frame.Grid_body _) ->
      ignore
        (send
           (Rtext
              (Sjson.to_string
                 (Server.protocol_error ~kind:"parse"
                    ~message:"grid frames are response-only" ()))))
    | `Payload (Frame.Json_text "") -> loop ()
    | `Payload (Frame.Json_text line) ->
      (match Frame.is_hello line with
       | Some frames ->
         let reply, next_mode =
           match frames with
           | "binary" -> (Frame.hello_ack "binary", Some Frame.Binary)
           | "json" -> (Frame.hello_ack "json", Some Frame.Json)
           | other ->
             ( Sjson.to_string
                 (Server.protocol_error ~op:"hello" ~kind:"validation"
                    ~message:
                      (Printf.sprintf
                         "unknown frames value %S (want \"json\" or \
                          \"binary\")"
                         other)
                    ()),
               None )
         in
         (match send (Rtext reply) with
          | `Ok ->
            (match next_mode with Some m -> mode := m | None -> ());
            loop ()
          | `Closed | `Timeout -> ())
       | None ->
         let reply, stop = dispatch t ~pinned line in
         (match send reply with
          | `Ok -> if stop then request_stop t else loop ()
          | `Closed | `Timeout -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      close_quiet conn;
      locked t (fun () -> t.conns <- t.conns - 1))
    loop

(* ------------------------------------------------------------------ *)
(* Accept loop *)

let shed t conn =
  locked t (fun () -> t.c_shed <- t.c_shed + 1);
  ignore
    (write_all conn
       (Sjson.to_string
          (Server.protocol_error ~kind:"overloaded"
             ~message:"router connection cap reached; retry with backoff" ())
        ^ "\n")
       ~deadline:(now () +. 1.0));
  close_quiet conn

let accept_loop t () =
  let rec go () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] tick with
      | [], _, _ -> go ()
      | _ ->
        (match Unix.accept t.listen_fd with
         | conn, _ ->
           (match t.listen with
            | Supervisor.Tcp _ ->
              (try Unix.setsockopt conn Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ())
            | Supervisor.Unix_path _ -> ());
           let admitted =
             locked t (fun () ->
                 if t.stopping || t.conns >= t.config.max_conns then false
                 else begin
                   t.conns <- t.conns + 1;
                   true
                 end)
           in
           if admitted then begin
             let th = Thread.create (client_loop t conn) () in
             locked t (fun () -> t.threads <- th :: t.threads)
           end
           else shed t conn;
           go ()
         | exception
             Unix.Unix_error
               ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                 | Unix.ECONNABORTED ),
                 _,
                 _ ) ->
           go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  (try go () with _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let start ?(config = default_config) ~listen ~replicas () =
  validate_config config;
  let bad what =
    Mfti_error.raise_error
      (Mfti_error.Validation { context = "router"; message = what })
  in
  if replicas = [] then bad "at least one replica is required";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a then
        bad (Printf.sprintf "duplicate replica address %S" a);
      Hashtbl.add seen a ())
    replicas;
  let reps =
    List.mapi
      (fun i a ->
        { r_name = a; r_addr = parse_addr a; r_faulted = i = 0;
          r_state = Health.Up; r_fails = 0; r_pool = [];
          r_next_attempt = 0.; r_backoff_ms = 0; r_served = 0;
          r_errors = 0; r_rejoins = 0; r_flap = 0 })
      replicas
  in
  let listen_fd, bound =
    match listen with
    | Supervisor.Unix_path path -> (Server.bind_unix ~path, None)
    | Supervisor.Tcp (host, port) ->
      let fd, p = Server.bind_tcp ~host ~port in
      (fd, Some p)
  in
  let t =
    { config; listen; listen_fd; bound;
      mu = Mutex.create ();
      replicas = reps;
      ring = Ring.make ~vnodes:config.vnodes replicas;
      slots = Hashtbl.create 32;
      session_rr = 0;
      stopping = false; stopped = false;
      conns = 0;
      c_requests = 0; c_forwarded = 0; c_failovers = 0; c_timeouts = 0;
      c_unavailable = 0; c_shed = 0; c_batches = 0; c_hits = 0;
      c_probes = 0;
      threads = []; accept_thread = None; health_thread = None }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t.health_thread <- Some (Thread.create (health_loop t) ());
  t

let bound_port t = t.bound

let wait t =
  let rec go () =
    if not (locked t (fun () -> t.stopping)) then begin
      Unix.sleepf tick;
      go ()
    end
  in
  go ()

let stop t =
  if t.stopped then ()
  else begin
    request_stop t;
    (* let in-flight client connections notice the drain *)
    let deadline = now () +. 2.0 in
    let rec wait_conns () =
      if locked t (fun () -> t.conns) > 0 && now () < deadline then begin
        Unix.sleepf 0.02;
        wait_conns ()
      end
    in
    wait_conns ();
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.health_thread with Some th -> Thread.join th | None -> ());
    List.iter Thread.join (locked t (fun () -> t.threads));
    locked t (fun () -> List.iter flush_pool t.replicas);
    (match t.listen with
     | Supervisor.Unix_path path ->
       (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Supervisor.Tcp _ -> ());
    t.stopped <- true
  end

let run ?config ~listen ~replicas () =
  let t = start ?config ~listen ~replicas () in
  wait t;
  stop t
