(* Minimal JSON shared by the serving layer and the bench reporters: a
   writer for protocol responses and BENCH_*.json, and a parser for
   protocol requests and the smoke checks (no JSON library in the build
   environment).  [bench/bjson.ml] re-exports this module so there is
   exactly one escaping routine in the repo. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest of %.6g / %.12g / %.17g that parses back to the same float:
   compact for round numbers, exact always.  The serving protocol
   relies on emitted values surviving a write/parse cycle bitwise. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.6g" x in
    if float_of_string s = x then s
    else
      let s = Printf.sprintf "%.12g" x in
      if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num x ->
    (* JSON has no NaN/infinity; emit null rather than invalid text *)
    if not (Float.is_finite x) then Buffer.add_string b "null"
    else Buffer.add_string b (float_repr x)
  | Str s ->
    Buffer.add_char b '"';
    buf_add_escaped b s;
    Buffer.add_char b '"'
  | Arr xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string b ", ";
        write b (Str k);
        Buffer.add_string b ": ";
        write b x)
      kvs;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 4096 in
  write b t;
  Buffer.contents b

exception Parse_error of string

(* Recursive-descent parser, just enough for the protocol and the
   smoke checks. *)
let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "bad escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'u' ->
               if !pos + 4 >= n then fail "bad unicode escape";
               (* int_of_string would raise Failure on mutated hex
                  digits; every malformed input must be Parse_error *)
               let code =
                 match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                 | Some c when c >= 0 -> c
                 | _ -> fail "bad unicode escape"
               in
               pos := !pos + 4;
               if code < 128 then Buffer.add_char b (Char.chr code)
               else Buffer.add_char b '?'
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
