open Linalg

(* Supervised concurrent serving.

   One accept loop owns the listening socket and dispatches each
   connection into a bounded admission queue; a fixed set of workers
   (OCaml 5 domains, falling back to threads when the domain budget is
   exhausted) pops connections and serves them with per-connection
   idle/frame deadlines and a per-request deadline.  When the queue is
   full the accept loop sheds: the client gets a typed "overloaded"
   response immediately instead of waiting in an unbounded backlog.
   A worker whose connection handler dies is restarted with
   exponential backoff; a shutdown request drains gracefully — stop
   accepting, finish in-flight work under a drain deadline, then
   force-close stragglers and join everything.

   Workers run their evaluations under [Parallel.with_sequential]:
   the domain pool's submission protocol assumes one submitting domain
   at a time, so in the serving tier concurrency comes from the worker
   pool, not from the kernels.  (Thread-fallback workers share the
   spawning domain's sequential flag; they too evaluate inline.) *)

type config = {
  workers : int;
  queue : int;
  request_timeout_ms : int;
  idle_timeout_ms : int;
  drain_ms : int;
  backoff_base_ms : int;
  backoff_cap_ms : int;
  max_line_bytes : int;
}

let default_config =
  { workers = 2;
    queue = 16;
    request_timeout_ms = 5_000;
    idle_timeout_ms = 30_000;
    drain_ms = 2_000;
    backoff_base_ms = 10;
    backoff_cap_ms = 1_000;
    max_line_bytes = 8 * 1024 * 1024 }

type worker_stat = {
  mutable served : int;
  mutable conns : int;
  mutable w_total_s : float;
  mutable w_max_s : float;
  mutable w_restarts : int;
}

type worker_snapshot = {
  ws_served : int;
  ws_conns : int;
  ws_total_s : float;
  ws_max_s : float;
  ws_restarts : int;
}

type snapshot = {
  sn_workers : int;
  sn_queue_capacity : int;
  accepted : int;
  dispatched : int;
  shed : int;
  idle_timeouts : int;
  read_timeouts : int;
  request_timeouts : int;
  restarts : int;
  queue_depth : int;
  queue_max : int;
  in_flight : int;
  draining : bool;
  per_worker : worker_snapshot array;
}

type runner = Dom of unit Domain.t | Thr of Thread.t

type listener = Unix_path of string | Tcp of string * int

type t = {
  server : Server.t;
  config : config;
  listen : listener;
  bound : int option;                   (* actual TCP port *)
  listen_fd : Unix.file_descr;
  mu : Mutex.t;
  nonempty : Condition.t;               (* queue gained work, or draining *)
  queue : Unix.file_descr Queue.t;
  active : (int, Unix.file_descr) Hashtbl.t;  (* worker index -> live conn *)
  wstats : worker_stat array;
  mutable s_accepted : int;
  mutable s_dispatched : int;
  mutable s_shed : int;
  mutable s_idle_timeouts : int;
  mutable s_read_timeouts : int;
  mutable s_request_timeouts : int;
  mutable s_restarts : int;
  mutable s_queue_max : int;
  mutable s_in_flight : int;
  mutable stopping : bool;              (* drain initiated *)
  mutable accept_done : bool;
  mutable stopped : bool;               (* joined and cleaned up *)
  mutable runners : runner list;
  mutable accept_runner : runner option;
}

(* ------------------------------------------------------------------ *)
(* Low-level socket I/O with deadlines (wall-clock seconds) *)

let now () = Unix.gettimeofday ()

(* Ticked select so the loop notices [stopping] and forced shutdowns
   promptly; the tick is coarse enough to stay off the profile. *)
let tick = 0.05

let write_all_deadline fd s ~deadline =
  let len = String.length s in
  let rec go off =
    if off >= len then `Ok
    else
      let t = now () in
      if t >= deadline then `Timeout
      else
        match Unix.select [] [ fd ] [] (Float.min tick (deadline -. t)) with
        | _, [], _ -> go off
        | _ ->
          (match Unix.write_substring fd s off (len - off) with
           | k -> go (off + k)
           | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _)
             -> `Closed)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Frame reader: accumulate bytes, hand out complete frames under the
   connection's negotiated mode — newline-delimited JSON lines, or
   length-prefixed binary frames ({!Frame.Reader} owns the buffering
   and extraction for both).

   Deadline policy: an *idle* connection (no partial frame pending) may
   sit for [idle_timeout_ms]; once the first byte of a frame arrives,
   the rest must follow within [request_timeout_ms] — a slow client
   cannot hold a worker hostage for the idle window.  The
   ["serve.slow_client"] fault site forces the partial-frame expiry
   deterministically, without real clock time. *)

type frame =
  [ `Line of string      (* complete request payload (JSON text) *)
  | `Timeout_idle        (* keep-alive expired with no frame pending *)
  | `Timeout_partial     (* client stalled mid-frame *)
  | `Eof
  | `Too_long
  | `Bad of string       (* malformed binary frame; stream is lost *)
  | `Drain ]             (* draining and nothing buffered *)

let read_frame t conn reader chunk ~mode : frame =
  let cfg = t.config in
  let started = now () in
  let idle_deadline = started +. (float_of_int cfg.idle_timeout_ms /. 1000.) in
  let frame_deadline = ref None in      (* set when the frame starts *)
  let rec go () =
    match Frame.Reader.next reader ~mode ~max_bytes:cfg.max_line_bytes with
    | `Frame (Frame.Json_text line) -> `Line line
    | `Frame (Frame.Grid_body _) -> `Bad "grid frames are response-only"
    | `Too_long -> `Too_long
    | `Bad m -> `Bad m
    | `None ->
      begin
        let partial = Frame.Reader.pending reader > 0 in
        if partial && !frame_deadline = None then
          frame_deadline :=
            Some (now () +. (float_of_int cfg.request_timeout_ms /. 1000.));
        if partial && Fault.armed "serve.slow_client" then `Timeout_partial
        else begin
          let deadline =
            match !frame_deadline with
            | Some d -> Float.min d idle_deadline
            | None -> idle_deadline
          in
          let t' = now () in
          if t' >= deadline then
            (if partial then `Timeout_partial else `Timeout_idle)
          else if t.stopping && not partial then `Drain
          else
            match Unix.select [ conn ] [] [] (Float.min tick (deadline -. t')) with
            | [], _, _ -> go ()
            | _ ->
              (match Unix.read conn chunk 0 (Bytes.length chunk) with
               | 0 ->
                 (* EOF with a trailing unterminated JSON line: serve
                    it, the way [input_line] would on the stdio
                    transport.  A truncated binary frame at EOF is just
                    EOF — its length prefix promised bytes that never
                    came. *)
                 if partial && mode = Frame.Json then
                   `Line (Frame.Reader.take_rest reader)
                 else `Eof
               | k ->
                 Frame.Reader.add reader chunk k;
                 go ()
               | exception
                   Unix.Unix_error
                     ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
                 `Eof)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Typed protocol responses for supervisor-level conditions *)

(* Render a reply under the connection's frame mode.  JSON-lines mode
   never sees [Server.Grid] — {!Server.handle_request} only produces it
   when asked for binary rendering. *)
let reply_bytes ~mode (reply : Server.reply) =
  match (mode, reply) with
  | Frame.Json, Server.Text s -> s ^ "\n"
  | Frame.Binary, Server.Text s -> Frame.encode_json s
  | Frame.Binary, Server.Grid body -> Frame.encode_grid body
  | Frame.Json, Server.Grid _ -> assert false

let send_reply conn ~mode ~deadline reply =
  write_all_deadline conn (reply_bytes ~mode reply) ~deadline

let send_response ?(mode = Frame.Json) conn ~deadline json =
  ignore (send_reply conn ~mode ~deadline (Server.Text (Sjson.to_string json)))

let overloaded_response queue =
  Server.protocol_error ~kind:"overloaded"
    ~message:
      (Printf.sprintf
         "admission queue full (%d waiting); retry with backoff" queue)
    ()

let timeout_response ?op what ms =
  Server.protocol_error ?op ~kind:"timeout"
    ~message:(Printf.sprintf "%s deadline exceeded (%d ms)" what ms)
    ()

(* ------------------------------------------------------------------ *)
(* Drain initiation *)

let request_stop t =
  Mutex.lock t.mu;
  let first = not t.stopping in
  if first then begin
    t.stopping <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mu;
  (* new fit sessions are refused for the whole drain window; sessions
     already open keep streaming until their connection finishes *)
  if first then Server.set_draining t.server true

(* ------------------------------------------------------------------ *)
(* Connection handler (runs on a worker) *)

let handle_conn t i conn =
  Parallel.with_sequential @@ fun () ->
  let cfg = t.config in
  let ws = t.wstats.(i) in
  let reader = Frame.Reader.create () in
  let chunk = Bytes.create 4096 in
  let mode = ref Frame.Json in
  let req_timeout_s = float_of_int cfg.request_timeout_ms /. 1000. in
  let rec serve_loop () =
    match read_frame t conn reader chunk ~mode:!mode with
    | `Drain | `Eof -> ()
    | `Too_long ->
      send_response ~mode:!mode conn ~deadline:(now () +. req_timeout_s)
        (Server.protocol_error ~kind:"validation"
           ~message:
             (Printf.sprintf "request frame exceeds the %d-byte cap"
                cfg.max_line_bytes)
           ())
    | `Bad msg ->
      (* the stream is desynchronized past a malformed binary frame:
         answer with a typed error and close *)
      send_response ~mode:!mode conn ~deadline:(now () +. req_timeout_s)
        (Server.protocol_error ~kind:"parse"
           ~message:("malformed frame: " ^ msg) ())
    | `Timeout_idle ->
      Mutex.lock t.mu;
      t.s_idle_timeouts <- t.s_idle_timeouts + 1;
      Mutex.unlock t.mu
      (* silent close: an idle keep-alive expiry is not an error *)
    | `Timeout_partial ->
      Mutex.lock t.mu;
      t.s_read_timeouts <- t.s_read_timeouts + 1;
      Mutex.unlock t.mu;
      send_response ~mode:!mode conn ~deadline:(now () +. req_timeout_s)
        (timeout_response "request frame" cfg.request_timeout_ms)
    | `Line "" -> serve_loop ()       (* blank keep-alive lines *)
    | `Line line ->
      (match Frame.is_hello line with
       | Some frames ->
         (* frame negotiation is transport-level: ack in the old mode,
            then switch.  An unknown value is a typed refusal and the
            mode stays put. *)
         let reply, next_mode =
           match frames with
           | "binary" -> (Frame.hello_ack "binary", Some Frame.Binary)
           | "json" -> (Frame.hello_ack "json", Some Frame.Json)
           | other ->
             ( Sjson.to_string
                 (Server.protocol_error ~op:"hello" ~kind:"validation"
                    ~message:
                      (Printf.sprintf
                         "unknown frames value %S (want \"json\" or \
                          \"binary\")"
                         other)
                    ()),
               None )
         in
         (match
            send_reply conn ~mode:!mode
              ~deadline:(now () +. req_timeout_s)
              (Server.Text reply)
          with
          | `Ok ->
            (match next_mode with Some m -> mode := m | None -> ());
            serve_loop ()
          | `Closed -> Server.note_conn_drop t.server
          | `Timeout -> ())
       | None ->
         let t0 = now () in
         (* deterministic chaos: a handler that dies mid-connection; the
            worker's supervisor loop catches, counts a restart, and
            backs off *)
         Fault.check "serve.conn_drop";
         (* deterministic chaos: a request that blows its deadline *)
         if Fault.armed "serve.stall" then Unix.sleepf (2. *. req_timeout_s);
         let reply, stop =
           Server.handle_request t.server
             ~binary:(!mode = Frame.Binary) line
         in
         let dt = now () -. t0 in
         let reply =
           if dt > req_timeout_s then begin
             Mutex.lock t.mu;
             t.s_request_timeouts <- t.s_request_timeouts + 1;
             Mutex.unlock t.mu;
             let op =
               match Sjson.parse line with
               | req ->
                 (match Sjson.member "op" req with
                  | Some (Sjson.Str op) -> Some op
                  | _ -> None)
               | exception Sjson.Parse_error _ -> None
             in
             Server.Text
               (Sjson.to_string
                  (timeout_response ?op "request" cfg.request_timeout_ms))
           end
           else reply
         in
         Mutex.lock t.mu;
         ws.served <- ws.served + 1;
         ws.w_total_s <- ws.w_total_s +. dt;
         if dt > ws.w_max_s then ws.w_max_s <- dt;
         Mutex.unlock t.mu;
         (match
            send_reply conn ~mode:!mode reply
              ~deadline:(now () +. req_timeout_s)
          with
          | `Ok -> if stop then request_stop t else serve_loop ()
          | `Closed ->
            (* the client vanished mid-response: typed, counted *)
            Server.note_conn_drop t.server
          | `Timeout ->
            (* client stopped reading: count it as a read-side stall *)
            Mutex.lock t.mu;
            t.s_read_timeouts <- t.s_read_timeouts + 1;
            Mutex.unlock t.mu))
  in
  serve_loop ()

(* ------------------------------------------------------------------ *)
(* Worker supervision *)

let worker_loop t i clean =
  let rec next () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.queue then
      (* stopping and drained *)
      Mutex.unlock t.mu
    else begin
      let conn = Queue.pop t.queue in
      t.s_dispatched <- t.s_dispatched + 1;
      t.s_in_flight <- t.s_in_flight + 1;
      t.wstats.(i).conns <- t.wstats.(i).conns + 1;
      Hashtbl.replace t.active i conn;
      Mutex.unlock t.mu;
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.mu;
          Hashtbl.remove t.active i;
          t.s_in_flight <- t.s_in_flight - 1;
          Mutex.unlock t.mu;
          try Unix.close conn with Unix.Unix_error _ -> ())
        (fun () -> handle_conn t i conn);
      clean := true;
      next ()
    end
  in
  next ()

(* A worker that dies is restarted with exponential backoff; the
   attempt counter resets after any cleanly-finished connection, so a
   persistent crash loop backs off to the cap while a one-off failure
   recovers at the base delay. *)
let worker_life t i () =
  let rec live attempt =
    let clean = ref false in
    match worker_loop t i clean with
    | () -> ()
    | exception _ ->
      Mutex.lock t.mu;
      t.s_restarts <- t.s_restarts + 1;
      t.wstats.(i).w_restarts <- t.wstats.(i).w_restarts + 1;
      let stop_now = t.stopping && Queue.is_empty t.queue in
      Mutex.unlock t.mu;
      if stop_now then ()
      else begin
        let attempt = if !clean then 0 else attempt + 1 in
        let ms =
          Stdlib.min t.config.backoff_cap_ms
            (t.config.backoff_base_ms * (1 lsl Stdlib.min attempt 16))
        in
        Unix.sleepf (float_of_int ms /. 1000.);
        live attempt
      end
  in
  live (-1)

(* ------------------------------------------------------------------ *)
(* Accept loop *)

let shed t conn =
  let qlen = Mutex.protect t.mu (fun () -> Queue.length t.queue) in
  send_response conn
    ~deadline:(now () +. 1.0)
    (overloaded_response qlen);
  try Unix.close conn with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec go () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] tick with
      | [], _, _ -> go ()
      | _ ->
        (match Unix.accept t.listen_fd with
         | conn, _ ->
           (* request/response protocol: Nagle would add 40 ms stalls *)
           (match t.listen with
            | Tcp _ ->
              (try Unix.setsockopt conn Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ())
            | Unix_path _ -> ());
           Mutex.lock t.mu;
           t.s_accepted <- t.s_accepted + 1;
           let decision =
             if t.stopping then `Draining
             else if Queue.length t.queue >= t.config.queue then begin
               t.s_shed <- t.s_shed + 1;
               `Shed
             end
             else begin
               Queue.push conn t.queue;
               if Queue.length t.queue > t.s_queue_max then
                 t.s_queue_max <- Queue.length t.queue;
               Condition.signal t.nonempty;
               `Queued
             end
           in
           Mutex.unlock t.mu;
           (match decision with
            | `Queued -> ()
            | `Shed -> shed t conn
            | `Draining ->
              send_response conn ~deadline:(now () +. 1.0)
                (Server.protocol_error ~kind:"overloaded"
                   ~message:"server is draining" ());
              (try Unix.close conn with Unix.Unix_error _ -> ()));
           go ()
         | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN
                                      | Unix.EWOULDBLOCK | Unix.ECONNABORTED),
                                      _, _) -> go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  (* restart the accept loop too if something unexpected escapes — the
     listening socket is the one resource the server cannot lose *)
  let rec supervise attempt =
    match go () with
    | () -> ()
    | exception _ ->
      Mutex.lock t.mu;
      t.s_restarts <- t.s_restarts + 1;
      let stop_now = t.stopping in
      Mutex.unlock t.mu;
      if not stop_now then begin
        let ms =
          Stdlib.min t.config.backoff_cap_ms
            (t.config.backoff_base_ms * (1 lsl Stdlib.min attempt 16))
        in
        Unix.sleepf (float_of_int ms /. 1000.);
        supervise (attempt + 1)
      end
  in
  supervise 0;
  (* close the listening socket as soon as accepting stops so new
     connects are refused during the drain, not parked in the backlog *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.mu;
  t.accept_done <- true;
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)
(* Stats *)

let stats t =
  Mutex.protect t.mu (fun () ->
      { sn_workers = t.config.workers;
        sn_queue_capacity = t.config.queue;
        accepted = t.s_accepted;
        dispatched = t.s_dispatched;
        shed = t.s_shed;
        idle_timeouts = t.s_idle_timeouts;
        read_timeouts = t.s_read_timeouts;
        request_timeouts = t.s_request_timeouts;
        restarts = t.s_restarts;
        queue_depth = Queue.length t.queue;
        queue_max = t.s_queue_max;
        in_flight = t.s_in_flight;
        draining = t.stopping;
        per_worker =
          Array.map
            (fun w ->
              { ws_served = w.served; ws_conns = w.conns;
                ws_total_s = w.w_total_s; ws_max_s = w.w_max_s;
                ws_restarts = w.w_restarts })
            t.wstats })

let stats_fields t =
  let s = stats t in
  let n x = Sjson.Num (float_of_int x) in
  [ ( "supervisor",
      Sjson.Obj
        [ ("workers", n s.sn_workers);
          ("queue_capacity", n s.sn_queue_capacity);
          ("accepted", n s.accepted);
          ("dispatched", n s.dispatched);
          ("shed", n s.shed);
          ("idle_timeouts", n s.idle_timeouts);
          ("read_timeouts", n s.read_timeouts);
          ("request_timeouts", n s.request_timeouts);
          ("restarts", n s.restarts);
          ("queue_depth", n s.queue_depth);
          ("queue_max", n s.queue_max);
          ("in_flight", n s.in_flight);
          ("draining", Sjson.Bool s.draining);
          ( "per_worker",
            Sjson.Arr
              (Array.to_list
                 (Array.map
                    (fun w ->
                      Sjson.Obj
                        [ ("served", n w.ws_served);
                          ("conns", n w.ws_conns);
                          ("total_s", Sjson.Num w.ws_total_s);
                          ("max_s", Sjson.Num w.ws_max_s);
                          ("restarts", n w.ws_restarts) ])
                    s.per_worker)) ) ] ) ]

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

(* Workers prefer domains; when the domain budget is exhausted (OCaml
   caps the live-domain count) fall back to systhreads, which share
   the spawning domain. *)
let spawn f =
  match Domain.spawn f with
  | d -> Dom d
  | exception _ -> Thr (Thread.create f ())

let join = function Dom d -> Domain.join d | Thr th -> Thread.join th

let validate_config c =
  let bad what = Mfti_error.raise_error
      (Mfti_error.Validation { context = "supervisor"; message = what }) in
  if c.workers < 1 then bad "workers must be >= 1";
  if c.queue < 1 then bad "queue capacity must be >= 1";
  if c.request_timeout_ms < 1 then bad "request timeout must be >= 1 ms";
  if c.idle_timeout_ms < 1 then bad "idle timeout must be >= 1 ms";
  if c.drain_ms < 0 then bad "drain deadline must be >= 0 ms";
  if c.max_line_bytes < 2 then bad "frame cap must be >= 2 bytes"

let start ?(config = default_config) server ~listen =
  validate_config config;
  let listen_fd, bound =
    match listen with
    | Unix_path path -> (Server.bind_unix ~path, None)
    | Tcp (host, port) ->
      let fd, p = Server.bind_tcp ~host ~port in
      (fd, Some p)
  in
  let t =
    { server; config; listen; bound; listen_fd;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      active = Hashtbl.create 8;
      wstats =
        Array.init config.workers (fun _ ->
            { served = 0; conns = 0; w_total_s = 0.; w_max_s = 0.;
              w_restarts = 0 });
      s_accepted = 0; s_dispatched = 0; s_shed = 0;
      s_idle_timeouts = 0; s_read_timeouts = 0; s_request_timeouts = 0;
      s_restarts = 0; s_queue_max = 0; s_in_flight = 0;
      stopping = false; accept_done = false; stopped = false;
      runners = []; accept_runner = None }
  in
  Server.set_stats_hook server (fun () -> stats_fields t);
  t.runners <- List.init config.workers (fun i -> spawn (worker_life t i));
  t.accept_runner <- Some (spawn (accept_loop t));
  t

let stop t =
  if t.stopped then ()
  else begin
    request_stop t;
    (* graceful drain: let in-flight connections finish *)
    let deadline = now () +. (float_of_int t.config.drain_ms /. 1000.) in
    let rec wait_drain () =
      let busy =
        Mutex.protect t.mu (fun () ->
            t.s_in_flight > 0 || Queue.length t.queue > 0
            || not t.accept_done)
      in
      if busy && now () < deadline then begin
        Unix.sleepf 0.01;
        wait_drain ()
      end
    in
    wait_drain ();
    (* past the drain deadline: force.  Shut down live connections so
       blocked readers see EOF, and close connections still queued —
       they were admitted but will never be served. *)
    Mutex.lock t.mu;
    Hashtbl.iter
      (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
      t.active;
    Queue.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.queue;
    Queue.clear t.queue;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu;
    (match t.accept_runner with Some r -> join r | None -> ());
    List.iter join t.runners;
    (match t.listen with
     | Unix_path path -> (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Tcp _ -> ());
    t.stopped <- true
  end

let bound_port t = t.bound

(* block until a shutdown request initiates the drain *)
let wait t =
  let rec go () =
    let stopping = Mutex.protect t.mu (fun () -> t.stopping) in
    if not stopping then begin
      Unix.sleepf tick;
      go ()
    end
  in
  go ()

let run ?config server ~listen =
  let t = start ?config server ~listen in
  wait t;
  stop t
