open Linalg

type op_stat = {
  mutable count : int;
  mutable op_errors : int;
  mutable total_s : float;
  mutable max_s : float;
}

type admission = Open | Warn | Strict

let admission_name = function
  | Open -> "open"
  | Warn -> "warn"
  | Strict -> "strict"

type session_limits = {
  max_sessions : int;
  session_bytes : int;
  session_ttl_s : float;
}

let default_session_limits =
  { max_sessions = 8;
    session_bytes = 64 * 1024 * 1024;
    session_ttl_s = 600. }

(* One live streaming-fit session.  [se_lock] serializes every op on
   the session (sticky access): [Engine.Session.t] is single-owner
   mutable state with no internal locking, and two supervisor workers
   can carry requests for the same session id on different
   connections. *)
type session_entry = {
  se_id : string;
  se_session : Mfti.Engine.Session.t;
  se_lock : Mutex.t;
  mutable se_last_used : float;
  mutable se_bytes : int;       (* accepted sample payload, accounted *)
}

type t = {
  root : string;
  admission : admission;
  cache : (Artifact.t * Compiled.t) Lru.t;
  started : float;
  ops : (string, op_stat) Hashtbl.t;
  (* one lock guards the cache and every mutable counter: supervisor
     workers call [handle_line] from several domains concurrently, and
     the LRU byte accounting must stay exact, not approximate *)
  lock : Mutex.t;
  quarantined : Artifact.quarantine list;
  limits : session_limits;
  sessions : (string, session_entry) Hashtbl.t;
  mutable next_session : int;
  mutable draining : bool;
  mutable extra_stats : unit -> (string * Sjson.t) list;
  mutable requests : int;
  mutable errors : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable conn_drops : int;
  mutable admission_refused : int;
  mutable admission_warned : int;
  mutable sessions_opened : int;
  mutable sessions_finalized : int;
  mutable sessions_expired : int;
  mutable sessions_refused : int;
  mutable session_samples : int;
  mutable session_suggests : int;
}

let validate_limits l =
  let bad what =
    Mfti_error.raise_error
      (Mfti_error.Validation { context = "serve.session"; message = what })
  in
  if l.max_sessions < 0 then bad "max_sessions must be >= 0";
  if l.session_bytes < 1 then bad "session_bytes must be >= 1";
  if not (l.session_ttl_s > 0.) then bad "session_ttl_s must be > 0"

let create ?(cache_bytes = 256 * 1024 * 1024) ?(recover = true)
    ?(admission = Warn) ?(session_limits = default_session_limits) ~root () =
  validate_limits session_limits;
  let quarantined = if recover then Artifact.recover_root root else [] in
  { root;
    admission;
    cache = Lru.create ~budget:cache_bytes;
    started = Unix.gettimeofday ();
    ops = Hashtbl.create 8;
    lock = Mutex.create ();
    quarantined;
    limits = session_limits;
    sessions = Hashtbl.create 8;
    next_session = 0;
    draining = false;
    extra_stats = (fun () -> []);
    requests = 0; errors = 0; bytes_in = 0; bytes_out = 0; conn_drops = 0;
    admission_refused = 0; admission_warned = 0;
    sessions_opened = 0; sessions_finalized = 0; sessions_expired = 0;
    sessions_refused = 0; session_samples = 0; session_suggests = 0 }

let quarantined t = t.quarantined
let set_stats_hook t f = t.extra_stats <- f

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_draining t b = locked t (fun () -> t.draining <- b)
let draining t = locked t (fun () -> t.draining)

(* expire idle streaming sessions; call with [t.lock] held *)
let sweep_sessions t now =
  let expired =
    Hashtbl.fold
      (fun id e acc ->
        if now -. e.se_last_used > t.limits.session_ttl_s then id :: acc
        else acc)
      t.sessions []
  in
  List.iter
    (fun id ->
      Hashtbl.remove t.sessions id;
      t.sessions_expired <- t.sessions_expired + 1)
    expired

(* ------------------------------------------------------------------ *)
(* Errors as typed responses *)

let kind_of_error = function
  | Mfti_error.Parse _ -> "parse"
  | Mfti_error.Validation _ -> "validation"
  | Mfti_error.Numerical_breakdown _ -> "numerical"
  | Mfti_error.Non_convergence _ -> "non-convergence"
  | Mfti_error.Budget_exhausted _ -> "budget"
  | Mfti_error.Fault_injected _ -> "fault"

let error_response ?op e =
  let base =
    [ ("ok", Sjson.Bool false);
      ( "error",
        Sjson.Obj
          [ ("kind", Sjson.Str (kind_of_error e));
            ("message", Sjson.Str (Mfti_error.to_string e)) ] ) ]
  in
  Sjson.Obj
    (match op with
     | Some op -> ("op", Sjson.Str op) :: base
     | None -> base)

let invalid message =
  Mfti_error.raise_error
    (Mfti_error.Validation { context = "serve"; message })

(* Protocol-level failure that is not a fitting-pipeline error: the
   supervisor uses this for load shedding ("overloaded") and deadline
   expiry ("timeout").  Same shape as [error_response] so clients parse
   one format. *)
let protocol_error ?op ~kind ~message () =
  let base =
    [ ("ok", Sjson.Bool false);
      ( "error",
        Sjson.Obj
          [ ("kind", Sjson.Str kind); ("message", Sjson.Str message) ] ) ]
  in
  Sjson.Obj
    (match op with
     | Some op -> ("op", Sjson.Str op) :: base
     | None -> base)

(* ------------------------------------------------------------------ *)
(* Model store *)

let id_ok id =
  String.length id > 0
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       id

let path_of_id t id = Filename.concat t.root (id ^ ".mfti")

(* Certification gate between disk and the cache.  An artifact with no
   certificate (a version-1 file or a pack without [--certify]) or a
   certificate that records a failed check is inadmissible evidence:
   [Strict] refuses it with a typed response, [Warn] serves it but
   counts the lapse, [Open] waves everything through.  Runs on cache
   misses only — a resident model already passed the same policy. *)
let admission_gate t id (art : Artifact.t) =
  let defect =
    match Mfti.Engine.Model.certificate art.Artifact.model with
    | None -> Some "uncertified (no certificate in the artifact)"
    | Some c when not (Mfti.Certify.Certificate.passed c) ->
      Some ("failed certification: " ^ Mfti.Certify.Certificate.to_string c)
    | Some _ -> None
  in
  match (defect, t.admission) with
  | None, _ | Some _, Open -> ()
  | Some _, Warn ->
    locked t (fun () -> t.admission_warned <- t.admission_warned + 1)
  | Some reason, Strict ->
    locked t (fun () -> t.admission_refused <- t.admission_refused + 1);
    Mfti_error.raise_error
      (Mfti_error.Validation
         { context = "serve.admission";
           message =
             Printf.sprintf "model %s refused under strict admission: %s" id
               reason })

(* Load through the cache; [snd] of the result tells whether it was
   resident already.  The lock covers each cache operation but not the
   disk load + compile in between: two workers missing on the same id
   load it twice and the second insert replaces the first (the LRU
   releases the replaced bytes), which keeps the byte accounting exact
   without serializing every model load. *)
let get_model t id =
  if not (id_ok id) then invalid ("malformed model id " ^ String.escaped id);
  match locked t (fun () -> Lru.find t.cache id) with
  | Some v -> (v, true)
  | None ->
    let path = path_of_id t id in
    if not (Sys.file_exists path) then invalid ("unknown model id " ^ id);
    let art =
      match Artifact.load path with
      | Ok art -> art
      | Error e -> Mfti_error.raise_error e
    in
    admission_gate t id art;
    let compiled = Compiled.of_model art.Artifact.model in
    let bytes = (Unix.stat path).Unix.st_size in
    locked t (fun () -> Lru.insert t.cache id ~bytes (art, compiled));
    ((art, compiled), false)

let list_ids t =
  match Sys.readdir t.root with
  | entries ->
    Array.to_list entries
    |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:".mfti" f)
    |> List.filter id_ok
    |> List.sort compare
  | exception Sys_error m -> invalid ("model root unreadable: " ^ m)

(* ------------------------------------------------------------------ *)
(* Request fields *)

let str_field req name =
  match Sjson.member name req with
  | Some (Sjson.Str s) -> s
  | Some _ -> invalid (Printf.sprintf "field %S must be a string" name)
  | None -> invalid (Printf.sprintf "missing field %S" name)

let max_grid_points = 1 lsl 16

let freqs_field req =
  match Sjson.member "freqs" req with
  | Some (Sjson.Arr (_ :: _ as xs)) ->
    if List.length xs > max_grid_points then
      invalid
        (Printf.sprintf "freqs exceeds the %d-point request cap"
           max_grid_points);
    Array.of_list
      (List.map
         (function
           | Sjson.Num f when Float.is_finite f -> f
           | _ -> invalid "freqs entries must be finite numbers")
         xs)
  | Some _ -> invalid "field \"freqs\" must be a non-empty array"
  | None -> invalid "missing field \"freqs\""

(* ------------------------------------------------------------------ *)
(* Ops *)

let mode_str c =
  match Compiled.mode c with
  | Compiled.Pole_residue -> "pole-residue"
  | Compiled.Direct -> "direct"

let op_list_models t =
  let models =
    List.map
      (fun id ->
        let bytes =
          try (Unix.stat (path_of_id t id)).Unix.st_size with _ -> 0
        in
        Sjson.Obj
          [ ("id", Sjson.Str id);
            ("bytes", Sjson.Num (float_of_int bytes));
            ("cached", Sjson.Bool (locked t (fun () -> Lru.mem t.cache id))) ])
      (list_ids t)
  in
  Sjson.Obj
    [ ("ok", Sjson.Bool true);
      ("op", Sjson.Str "list-models");
      ("models", Sjson.Arr models) ]

let certificate_json m =
  match Mfti.Engine.Model.certificate m with
  | None -> Sjson.Null
  | Some c ->
    let num x = if Float.is_finite x then Sjson.Num x else Sjson.Null in
    Sjson.Obj
      [ ("stable", Sjson.Bool c.Mfti.Certify.Certificate.stable);
        ("passive", Sjson.Bool c.Mfti.Certify.Certificate.passive);
        ("passed", Sjson.Bool (Mfti.Certify.Certificate.passed c));
        ("flipped",
         Sjson.Num (float_of_int c.Mfti.Certify.Certificate.flipped));
        ("repair_iterations",
         Sjson.Num (float_of_int c.Mfti.Certify.Certificate.repair_iterations));
        ("worst_margin", num c.Mfti.Certify.Certificate.worst_margin);
        ("pre_margin", num c.Mfti.Certify.Certificate.pre_margin);
        ("fit_delta", num c.Mfti.Certify.Certificate.fit_delta) ]

let op_model_info t req =
  let id = str_field req "model" in
  let (art, compiled), cached = get_model t id in
  let m = art.Artifact.model in
  Sjson.Obj
    [ ("ok", Sjson.Bool true);
      ("op", Sjson.Str "model-info");
      ("model", Sjson.Str id);
      ("name", Sjson.Str art.Artifact.name);
      ("created", Sjson.Num art.Artifact.created);
      ("order", Sjson.Num (float_of_int (Mfti.Engine.Model.order m)));
      ("inputs", Sjson.Num (float_of_int (Mfti.Engine.Model.inputs m)));
      ("outputs", Sjson.Num (float_of_int (Mfti.Engine.Model.outputs m)));
      ("rank", Sjson.Num (float_of_int (Mfti.Engine.Model.rank m)));
      ("fit_err", Sjson.Num art.Artifact.fit_err);
      ("mode", Sjson.Str (mode_str compiled));
      ("poles", Sjson.Num (float_of_int (Array.length (Compiled.poles compiled))));
      ("certificate", certificate_json m);
      ("cached", Sjson.Bool cached) ]

(* eval-grid computes meta fields and the raw grid separately so the
   transport can render either the JSON "results" array or the binary
   frame body without paying for the other *)
let op_eval_grid t req =
  let id = str_field req "model" in
  let freqs = freqs_field req in
  let (_, compiled), cached = get_model t id in
  let grid = Compiled.eval_grid compiled freqs in
  let meta =
    [ ("ok", Sjson.Bool true);
      ("op", Sjson.Str "eval-grid");
      ("model", Sjson.Str id);
      ("points", Sjson.Num (float_of_int (Array.length freqs)));
      ("outputs", Sjson.Num (float_of_int (Compiled.outputs compiled)));
      ("inputs", Sjson.Num (float_of_int (Compiled.inputs compiled)));
      ("cached", Sjson.Bool cached) ]
  in
  (meta, grid)

let op_ping t =
  Sjson.Obj
    [ ("ok", Sjson.Bool true);
      ("op", Sjson.Str "ping");
      ("draining", Sjson.Bool (locked t (fun () -> t.draining))) ]

let stats_json t =
  (* snapshot under the lock; render (and call the supervisor's stats
     hook, which takes its own lock) outside it so lock ordering stays
     one-directional *)
  let base =
    locked t (fun () ->
        sweep_sessions t (Unix.gettimeofday ());
        let cache = Lru.stats t.cache in
        let session_bytes =
          Hashtbl.fold (fun _ e acc -> acc + e.se_bytes) t.sessions 0
        in
        let per_op =
          Hashtbl.fold
            (fun op s acc ->
              ( op,
                Sjson.Obj
                  [ ("count", Sjson.Num (float_of_int s.count));
                    ("errors", Sjson.Num (float_of_int s.op_errors));
                    ("total_s", Sjson.Num s.total_s);
                    ("max_s", Sjson.Num s.max_s) ] )
              :: acc)
            t.ops []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        [ ("ok", Sjson.Bool true);
          ("op", Sjson.Str "stats");
          ("uptime_s", Sjson.Num (Unix.gettimeofday () -. t.started));
          ("requests", Sjson.Num (float_of_int t.requests));
          ("errors", Sjson.Num (float_of_int t.errors));
          ("bytes_in", Sjson.Num (float_of_int t.bytes_in));
          ("bytes_out", Sjson.Num (float_of_int t.bytes_out));
          ("conn_drops", Sjson.Num (float_of_int t.conn_drops));
          ("quarantined", Sjson.Num (float_of_int (List.length t.quarantined)));
          ( "admission",
            Sjson.Obj
              [ ("policy", Sjson.Str (admission_name t.admission));
                ("refused", Sjson.Num (float_of_int t.admission_refused));
                ("warned", Sjson.Num (float_of_int t.admission_warned)) ] );
          ( "sessions",
            Sjson.Obj
              [ ("open", Sjson.Num (float_of_int (Hashtbl.length t.sessions)));
                ("opened", Sjson.Num (float_of_int t.sessions_opened));
                ("finalized", Sjson.Num (float_of_int t.sessions_finalized));
                ("expired", Sjson.Num (float_of_int t.sessions_expired));
                ("refused", Sjson.Num (float_of_int t.sessions_refused));
                ("appended_samples",
                 Sjson.Num (float_of_int t.session_samples));
                ("suggest_calls", Sjson.Num (float_of_int t.session_suggests));
                ("resident_bytes", Sjson.Num (float_of_int session_bytes));
                ("draining", Sjson.Bool t.draining);
                ( "limits",
                  Sjson.Obj
                    [ ("max_sessions",
                       Sjson.Num (float_of_int t.limits.max_sessions));
                      ("session_bytes",
                       Sjson.Num (float_of_int t.limits.session_bytes));
                      ("ttl_s", Sjson.Num t.limits.session_ttl_s) ] ) ] );
          ("by_op", Sjson.Obj per_op);
          ( "cache",
            Sjson.Obj
              [ ("hits", Sjson.Num (float_of_int cache.Lru.hits));
                ("misses", Sjson.Num (float_of_int cache.Lru.misses));
                ("evictions", Sjson.Num (float_of_int cache.Lru.evictions));
                ("oversize", Sjson.Num (float_of_int cache.Lru.oversize));
                ("resident_bytes",
                 Sjson.Num (float_of_int cache.Lru.resident_bytes));
                ("budget_bytes", Sjson.Num (float_of_int cache.Lru.budget_bytes));
                ("models", Sjson.Num (float_of_int cache.Lru.count)) ] ) ])
  in
  Sjson.Obj (base @ t.extra_stats ())

(* ------------------------------------------------------------------ *)
(* Streaming fit sessions

   Registry discipline: [t.lock] guards the session table and the
   session counters; each entry's [se_lock] serializes the (mutable,
   lock-free) [Engine.Session.t] underneath.  Lock order is always
   [se_lock] before [t.lock] — lookups take [t.lock] briefly and
   release it before locking the entry, so the two can never deadlock.
   Expiry is lazy: any session op (and [stats]) sweeps entries whose
   idle time exceeds the TTL.  An op that raced the sweep keeps its
   already-resolved entry and completes; the next lookup of that id is
   a typed refusal. *)

let invalid_session message =
  Mfti_error.raise_error
    (Mfti_error.Validation { context = "serve.session"; message })

let find_session t id =
  let now = Unix.gettimeofday () in
  locked t (fun () ->
      sweep_sessions t now;
      match Hashtbl.find_opt t.sessions id with
      | None ->
        invalid_session ("unknown or expired session " ^ String.escaped id)
      | Some e ->
        e.se_last_used <- now;
        e)

let with_entry e f =
  Mutex.lock e.se_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock e.se_lock) f

let stage_name = function
  | Mfti.Engine.Ingested -> "ingested"
  | Mfti.Engine.Assembled -> "assembled"
  | Mfti.Engine.Realified -> "realified"
  | Mfti.Engine.Reduced -> "reduced"
  | Mfti.Engine.Certified -> "certified"

let opt_int_field req name =
  match Sjson.member name req with
  | Some (Sjson.Num f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> invalid (Printf.sprintf "field %S must be an integer" name)
  | None -> None

let opt_bool_field req name =
  match Sjson.member name req with
  | Some (Sjson.Bool b) -> b
  | Some _ -> invalid (Printf.sprintf "field %S must be a boolean" name)
  | None -> false

(* the 16 bytes/entry of a complex payload plus a fixed per-sample
   overhead: what the byte budget charges an accepted sample *)
let sample_cost s =
  let p, m = Cmat.dims s.Statespace.Sampling.s in
  (16 * p * m) + 16

let complex_of_json = function
  | Sjson.Arr [ Sjson.Num re; Sjson.Num im ] -> { Cx.re; im }
  | _ -> invalid "matrix entries must be [re, im] pairs"

let sample_of_json j =
  let freq =
    match Sjson.member "freq" j with
    | Some (Sjson.Num f) -> f
    | Some _ | None -> invalid "sample field \"freq\" must be a number"
  in
  let rows =
    match Sjson.member "s" j with
    | Some (Sjson.Arr (_ :: _ as rows)) -> rows
    | Some _ | None ->
      invalid "sample field \"s\" must be a non-empty row-major matrix"
  in
  let p = List.length rows in
  let m =
    match List.hd rows with
    | Sjson.Arr (_ :: _ as r) -> List.length r
    | _ -> invalid "sample rows must be non-empty arrays"
  in
  let h = Cmat.zeros p m in
  List.iteri
    (fun i row ->
      match row with
      | Sjson.Arr cols when List.length cols = m ->
        List.iteri (fun jc z -> Cmat.set h i jc (complex_of_json z)) cols
      | _ -> invalid "sample rows must all have the same length")
    rows;
  { Statespace.Sampling.freq; s = h }

let max_batch_samples = 4096
let max_suggestions = 64

let certify_of_string = function
  | "off" -> Mfti.Certify.Off
  | "check" -> Mfti.Certify.Check
  | "repair" -> Mfti.Certify.Repair
  | s ->
    invalid
      (Printf.sprintf
         "field \"certify\" must be \"off\", \"check\" or \"repair\" (got %S)"
         s)

let session_options req =
  let weight =
    match opt_int_field req "width" with
    | None -> Mfti.Tangential.Full
    | Some w -> Mfti.Tangential.Uniform w
  in
  let rank_rule =
    match Sjson.member "rank-tol" req with
    | Some (Sjson.Num tol) when Float.is_finite tol && tol > 0. ->
      Mfti.Svd_reduce.Tol tol
    | Some _ -> invalid "field \"rank-tol\" must be a positive number"
    | None -> Mfti.Engine.default_options.Mfti.Engine.rank_rule
  in
  let certify =
    match Sjson.member "certify" req with
    | Some (Sjson.Str s) -> certify_of_string s
    | Some _ -> invalid "field \"certify\" must be a string"
    | None -> Mfti.Certify.Off
  in
  { Mfti.Engine.default_options with
    Mfti.Engine.weight; rank_rule; certify }

let op_fit_open t req =
  let outputs, inputs =
    match Sjson.member "ports" req with
    | Some (Sjson.Num f) when Float.is_integer f && f > 0. ->
      let p = int_of_float f in
      (p, p)
    | Some (Sjson.Arr [ Sjson.Num p; Sjson.Num m ])
      when Float.is_integer p && Float.is_integer m ->
      (int_of_float p, int_of_float m)
    | Some _ ->
      invalid
        "field \"ports\" must be a positive integer or [outputs, inputs]"
    | None -> invalid "missing field \"ports\""
  in
  let options = session_options req in
  let now = Unix.gettimeofday () in
  let id =
    locked t (fun () ->
        sweep_sessions t now;
        if t.draining then
          invalid_session
            "server is draining; new fit sessions are refused";
        if Hashtbl.length t.sessions >= t.limits.max_sessions then begin
          t.sessions_refused <- t.sessions_refused + 1;
          Mfti_error.raise_error
            (Mfti_error.Budget_exhausted
               { context = "serve.session";
                 budget =
                   Printf.sprintf "session slots (%d open, limit %d)"
                     (Hashtbl.length t.sessions) t.limits.max_sessions })
        end;
        let session =
          match Mfti.Engine.Session.open_ ~options ~inputs ~outputs () with
          | Ok s -> s
          | Error e -> Mfti_error.raise_error e
        in
        t.next_session <- t.next_session + 1;
        let id = Printf.sprintf "s%d" t.next_session in
        Hashtbl.replace t.sessions id
          { se_id = id; se_session = session; se_lock = Mutex.create ();
            se_last_used = now; se_bytes = 0 };
        t.sessions_opened <- t.sessions_opened + 1;
        id)
  in
  Sjson.Obj
    [ ("ok", Sjson.Bool true);
      ("op", Sjson.Str "fit-open");
      ("session", Sjson.Str id);
      ("outputs", Sjson.Num (float_of_int outputs));
      ("inputs", Sjson.Num (float_of_int inputs));
      ("ttl_s", Sjson.Num t.limits.session_ttl_s);
      ("bytes_budget", Sjson.Num (float_of_int t.limits.session_bytes)) ]

let op_fit_add t req =
  let id = str_field req "session" in
  let holdout = opt_bool_field req "holdout" in
  let samples =
    match Sjson.member "samples" req with
    | Some (Sjson.Arr (_ :: _ as xs)) ->
      if List.length xs > max_batch_samples then
        invalid
          (Printf.sprintf "samples exceeds the %d-per-request cap"
             max_batch_samples);
      Array.of_list (List.map sample_of_json xs)
    | Some _ | None -> invalid "field \"samples\" must be a non-empty array"
  in
  let e = find_session t id in
  with_entry e (fun () ->
      let cost = Array.fold_left (fun acc s -> acc + sample_cost s) 0 samples in
      if e.se_bytes + cost > t.limits.session_bytes then begin
        locked t (fun () -> t.sessions_refused <- t.sessions_refused + 1);
        Mfti_error.raise_error
          (Mfti_error.Budget_exhausted
             { context = "serve.session";
               budget =
                 Printf.sprintf
                   "session bytes (%d resident + %d incoming, limit %d)"
                   e.se_bytes cost t.limits.session_bytes })
      end;
      match Mfti.Engine.Session.append ~holdout e.se_session samples with
      | Error err -> Mfti_error.raise_error err
      | Ok stages ->
        e.se_bytes <- e.se_bytes + cost;
        locked t (fun () ->
            t.session_samples <- t.session_samples + Array.length samples);
        let s = e.se_session in
        Sjson.Obj
          [ ("ok", Sjson.Bool true);
            ("op", Sjson.Str "fit-add-samples");
            ("session", Sjson.Str id);
            ("accepted", Sjson.Num (float_of_int (Array.length samples)));
            ("holdout", Sjson.Bool holdout);
            ("samples", Sjson.Num (float_of_int (Mfti.Engine.Session.size s)));
            ("holdout_samples",
             Sjson.Num (float_of_int (Mfti.Engine.Session.holdout_size s)));
            ("pending", Sjson.Bool (Mfti.Engine.Session.pending s));
            ("stage", Sjson.Str (stage_name (Mfti.Engine.Session.stage s)));
            ("invalidated",
             Sjson.Arr (List.map (fun st -> Sjson.Str (stage_name st)) stages));
            ("bytes", Sjson.Num (float_of_int e.se_bytes)) ])

let op_fit_status t req =
  let id = str_field req "session" in
  let refit = opt_bool_field req "refit" in
  let e = find_session t id in
  with_entry e (fun () ->
      let s = e.se_session in
      if refit then begin
        match Mfti.Engine.Session.refit s with
        | Ok () -> ()
        | Error err -> Mfti_error.raise_error err
      end;
      (* the hold-out error is only reported when the cached reduction
         is current — a bare status probe must stay cheap and must not
         trigger a refit behind the client's back *)
      let holdout_err =
        match Mfti.Engine.Session.stage s with
        | Mfti.Engine.Reduced | Mfti.Engine.Certified ->
          (match Mfti.Engine.Session.holdout_err s with
           | Ok (Some v) when Float.is_finite v -> Sjson.Num v
           | _ -> Sjson.Null)
        | _ -> Sjson.Null
      in
      let c = Mfti.Engine.Session.counters s in
      Sjson.Obj
        [ ("ok", Sjson.Bool true);
          ("op", Sjson.Str "fit-status");
          ("session", Sjson.Str id);
          ("stage", Sjson.Str (stage_name (Mfti.Engine.Session.stage s)));
          ("samples", Sjson.Num (float_of_int (Mfti.Engine.Session.size s)));
          ("holdout_samples",
           Sjson.Num (float_of_int (Mfti.Engine.Session.holdout_size s)));
          ("pending", Sjson.Bool (Mfti.Engine.Session.pending s));
          ("finalized", Sjson.Bool (Mfti.Engine.Session.finalized s));
          ("holdout_err", holdout_err);
          ("bytes", Sjson.Num (float_of_int e.se_bytes));
          ("bytes_budget", Sjson.Num (float_of_int t.limits.session_bytes));
          ( "counters",
            Sjson.Obj
              [ ("appended",
                 Sjson.Num (float_of_int c.Mfti.Engine.Session.appended));
                ("held_out",
                 Sjson.Num (float_of_int c.Mfti.Engine.Session.held_out));
                ("refits",
                 Sjson.Num (float_of_int c.Mfti.Engine.Session.refits));
                ("suggests",
                 Sjson.Num (float_of_int c.Mfti.Engine.Session.suggests)) ] ) ])

let op_fit_suggest t req =
  let id = str_field req "session" in
  let count =
    match opt_int_field req "count" with
    | None -> Mfti.Adaptive.default_options.Mfti.Adaptive.count
    | Some c ->
      if c < 1 || c > max_suggestions then
        invalid
          (Printf.sprintf "field \"count\" must be in [1, %d]" max_suggestions);
      c
  in
  let candidates =
    match Sjson.member "candidates" req with
    | Some (Sjson.Arr (_ :: _ as xs)) ->
      Some
        (Array.of_list
           (List.map
              (function
                | Sjson.Num f -> f
                | _ -> invalid "candidates entries must be numbers")
              xs))
    | Some _ -> invalid "field \"candidates\" must be a non-empty array"
    | None -> None
  in
  let e = find_session t id in
  with_entry e (fun () ->
      let s = e.se_session in
      let options =
        { Mfti.Adaptive.default_options with
          Mfti.Adaptive.surrogate = Mfti.Engine.Session.options s;
          count }
      in
      match
        Mfti.Adaptive.suggest ~options ?candidates
          (Mfti.Engine.Session.fit_samples s)
      with
      | Error err -> Mfti_error.raise_error err
      | Ok scores ->
        Mfti.Engine.Session.record_suggest s;
        locked t (fun () -> t.session_suggests <- t.session_suggests + 1);
        Sjson.Obj
          [ ("ok", Sjson.Bool true);
            ("op", Sjson.Str "fit-suggest");
            ("session", Sjson.Str id);
            ( "suggestions",
              Sjson.Arr
                (List.map
                   (fun sc ->
                     Sjson.Obj
                       [ ("freq", Sjson.Num sc.Mfti.Adaptive.freq);
                         ("score", Sjson.Num sc.Mfti.Adaptive.score);
                         ("disagreement",
                          Sjson.Num sc.Mfti.Adaptive.disagreement);
                         ("residual", Sjson.Num sc.Mfti.Adaptive.residual) ])
                   scores) ) ])

let op_fit_finalize t req =
  let sid = str_field req "session" in
  let model_id = str_field req "model" in
  if not (id_ok model_id) then
    invalid ("malformed model id " ^ String.escaped model_id);
  let path = path_of_id t model_id in
  if Sys.file_exists path then
    invalid ("model id " ^ model_id ^ " already exists in the store");
  let name =
    match Sjson.member "name" req with
    | Some (Sjson.Str s) -> s
    | Some _ -> invalid "field \"name\" must be a string"
    | None -> model_id
  in
  let e = find_session t sid in
  with_entry e (fun () ->
      let s = e.se_session in
      let model =
        match Mfti.Engine.Session.finalize s with
        | Ok m -> m
        | Error err -> Mfti_error.raise_error err
      in
      let fit_err =
        Mfti.Dataset.err
          (Mfti.Engine.Model.descriptor model)
          (Mfti.Engine.Session.dataset s)
      in
      Artifact.save path (Artifact.v ~name ~fit_err model);
      locked t (fun () ->
          Hashtbl.remove t.sessions sid;
          t.sessions_finalized <- t.sessions_finalized + 1);
      Sjson.Obj
        [ ("ok", Sjson.Bool true);
          ("op", Sjson.Str "fit-finalize");
          ("session", Sjson.Str sid);
          ("model", Sjson.Str model_id);
          ("order", Sjson.Num (float_of_int (Mfti.Engine.Model.order model)));
          ("rank", Sjson.Num (float_of_int (Mfti.Engine.Model.rank model)));
          ("samples", Sjson.Num (float_of_int (Mfti.Engine.Session.size s)));
          ("fit_err",
           if Float.is_finite fit_err then Sjson.Num fit_err else Sjson.Null);
          ("certificate", certificate_json model) ])

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let shutdown_response =
  Sjson.Obj [ ("ok", Sjson.Bool true); ("op", Sjson.Str "shutdown") ]

(* an op either yields an ordinary JSON response or (eval-grid only)
   meta fields plus the raw grid, rendered per the connection's frame
   mode by [handle_request] *)
type outcome =
  | Json_out of Sjson.t
  | Grid_out of (string * Sjson.t) list * Cmat.t array

let dispatch t req =
  match str_field req "op" with
  | "list-models" -> (Json_out (op_list_models t), false)
  | "model-info" -> (Json_out (op_model_info t req), false)
  | "eval-grid" ->
    let meta, grid = op_eval_grid t req in
    (Grid_out (meta, grid), false)
  | "fit-open" -> (Json_out (op_fit_open t req), false)
  | "fit-add-samples" -> (Json_out (op_fit_add t req), false)
  | "fit-status" -> (Json_out (op_fit_status t req), false)
  | "fit-suggest" -> (Json_out (op_fit_suggest t req), false)
  | "fit-finalize" -> (Json_out (op_fit_finalize t req), false)
  | "stats" -> (Json_out (stats_json t), false)
  | "ping" -> (Json_out (op_ping t), false)
  | "shutdown" -> (Json_out shutdown_response, true)
  | op -> invalid ("unknown op " ^ String.escaped op)

(* call with [t.lock] held *)
let op_stat t op =
  match Hashtbl.find_opt t.ops op with
  | Some s -> s
  | None ->
    let s = { count = 0; op_errors = 0; total_s = 0.; max_s = 0. } in
    Hashtbl.add t.ops op s;
    s

type reply = Text of string | Grid of string

let handle_request t ~binary line =
  locked t (fun () ->
      t.requests <- t.requests + 1;
      t.bytes_in <- t.bytes_in + String.length line + 1);
  let t0 = Unix.gettimeofday () in
  let op_name = ref "invalid" in
  let outcome, stop =
    match Sjson.parse line with
    | req ->
      (match Sjson.member "op" req with
       | Some (Sjson.Str op) -> op_name := op
       | _ -> ());
      (* anything escaping an op lands in the taxonomy, then in a typed
         response — a request can never kill the serve loop *)
      (match Mfti_error.guard ~context:"serve" (fun () -> dispatch t req) with
       | Ok r -> r
       | Error e -> (Json_out (error_response ~op:!op_name e), false))
    | exception Sjson.Parse_error m ->
      ( Json_out
          (error_response
             (Mfti_error.Parse { source = None; line = None; message = m })),
        false )
  in
  let dt = Unix.gettimeofday () -. t0 in
  let failed =
    match outcome with
    | Grid_out _ -> false
    | Json_out response ->
      (match Sjson.member "ok" response with
       | Some (Sjson.Bool true) -> false
       | _ -> true)
  in
  let reply =
    match outcome with
    | Json_out response -> Text (Sjson.to_string response)
    | Grid_out (meta, grid) ->
      if binary then Grid (Frame.grid_body ~meta:(Sjson.Obj meta) ~grid)
      else
        Text
          (Sjson.to_string
             (Sjson.Obj
                (meta @ [ ("results", Frame.results_json grid) ])))
  in
  let out_bytes =
    match reply with
    | Text s -> String.length s + 1
    | Grid body -> String.length body + 5
  in
  locked t (fun () ->
      let s = op_stat t !op_name in
      s.count <- s.count + 1;
      s.total_s <- s.total_s +. dt;
      if dt > s.max_s then s.max_s <- dt;
      if failed then begin
        t.errors <- t.errors + 1;
        s.op_errors <- s.op_errors + 1
      end;
      t.bytes_out <- t.bytes_out + out_bytes);
  (reply, stop)

let handle_line t line =
  match handle_request t ~binary:false line with
  | Text s, stop -> (s, stop)
  | Grid _, _ -> assert false (* ~binary:false never yields a grid *)

(* ------------------------------------------------------------------ *)
(* Transports *)

(* Large responses (a 1024-point 8-port grid is ~1 MB of JSON) are
   written in bounded chunks with a flush between, so a client that
   stops reading or vanishes surfaces as [Sys_error] (EPIPE under the
   channel) on some chunk boundary — counted as a typed connection
   drop, never an exception escaping the serve loop. *)
let write_chunk_bytes = 64 * 1024

let write_response t oc text =
  let len = String.length text in
  let rec go off =
    if off >= len then
      match
        output_char oc '\n';
        flush oc
      with
      | () -> `Ok
      | exception Sys_error _ -> `Closed
    else
      let n = Stdlib.min write_chunk_bytes (len - off) in
      match
        output_substring oc text off n;
        flush oc
      with
      | () -> go (off + n)
      | exception Sys_error _ -> `Closed
  in
  match go 0 with
  | `Ok -> `Ok
  | `Closed ->
    locked t (fun () -> t.conn_drops <- t.conn_drops + 1);
    `Closed

let note_conn_drop t = locked t (fun () -> t.conn_drops <- t.conn_drops + 1)

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | "" -> loop ()  (* blank keep-alive lines are ignored *)
    | line ->
      let response, stop = handle_line t line in
      (match write_response t oc response with
       | `Ok -> if stop then `Stop else loop ()
       | `Closed -> `Eof)
    | exception End_of_file -> `Eof
  in
  loop ()

(* Bind a listening Unix socket at [path] without the unlink-then-bind
   race: blindly unlinking would delete a *live* server's socket.  A
   pre-existing path is probed with [connect] — a successful connect
   means someone is serving there (typed error); a refused connect
   means a stale file from a dead process (safe to remove).  Only a
   successful bind confers ownership of the path; callers release it
   with [release_unix], which unlinks only what we bound. *)
let bind_unix ~path =
  (match Unix.stat path with
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
   | { Unix.st_kind = Unix.S_SOCK; _ } ->
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let live =
       match Unix.connect probe (Unix.ADDR_UNIX path) with
       | () -> true
       | exception Unix.Unix_error _ -> false
     in
     (try Unix.close probe with Unix.Unix_error _ -> ());
     if live then
       invalid ("socket path " ^ path ^ " already has a live server")
     else (try Unix.unlink path with Unix.Unix_error _ -> ())
   | _ -> invalid ("socket path " ^ path ^ " exists and is not a socket"));
  (* a client closing mid-response must surface as EPIPE, not kill the
     process with SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 64
  with
  | () -> sock
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e

let release_unix ~path sock =
  (try Unix.close sock with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ -> ()

(* TCP listener beside the Unix-socket path.  Port 0 asks the kernel
   for an ephemeral port; the actual bound port is returned so tests
   and replica fleets can avoid collisions.  SO_REUSEADDR lets a
   restarted replica rebind its address immediately — rejoin must not
   wait out TIME_WAIT. *)
let bind_tcp ~host ~port =
  if port < 0 || port > 0xffff then
    invalid (Printf.sprintf "tcp port %d out of range" port);
  let addr =
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ ->
      (match Unix.gethostbyname host with
       | { Unix.h_addr_list = [||]; _ } ->
         invalid ("cannot resolve host " ^ host)
       | h -> h.Unix.h_addr_list.(0)
       | exception Not_found -> invalid ("cannot resolve host " ^ host))
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (addr, port));
    Unix.listen sock 64;
    (match Unix.getsockname sock with
     | Unix.ADDR_INET (_, p) -> p
     | _ -> port)
  with
  | bound -> (sock, bound)
  | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    invalid (Printf.sprintf "tcp address %s:%d already in use" host port)
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e

let serve_unix_socket t ~path =
  let sock = bind_unix ~path in
  let rec accept_loop () =
    let conn, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr conn in
    let oc = Unix.out_channel_of_descr conn in
    (* [Fun.protect] so an exception between accept and close cannot
       leak the descriptor; closing the *channels* (out first) flushes
       any buffered response bytes to a draining client.  Both channels
       share the fd, so the second close reports EBADF — ignored. *)
    let outcome =
      Fun.protect
        ~finally:(fun () ->
          (try close_out oc with Sys_error _ -> ());
          (try close_in ic with Sys_error _ -> ()))
        (fun () ->
          (* a client vanishing mid-response (EPIPE under the channel)
             ends that connection, not the server *)
          match serve_channels t ic oc with
          | outcome -> outcome
          | exception Sys_error _ -> `Eof)
    in
    match outcome with `Stop -> () | `Eof -> accept_loop ()
  in
  Fun.protect ~finally:(fun () -> release_unix ~path sock) accept_loop
