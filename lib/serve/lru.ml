type 'a entry = { value : 'a; bytes : int; mutable tick : int }

type 'a t = {
  budget : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable oversize : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  oversize : int;
  resident_bytes : int;
  budget_bytes : int;
  count : int;
}

let create ~budget =
  if budget < 0 then invalid_arg "Lru.create: negative budget";
  { budget; tbl = Hashtbl.create 16; clock = 0; resident = 0;
    hits = 0; misses = 0; evictions = 0; oversize = 0 }

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.hits <- t.hits + 1;
    touch t e;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

let drop t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.tbl key;
    t.resident <- t.resident - e.bytes

let remove = drop

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, tick) when tick <= e.tick -> acc
        | _ -> Some (key, e.tick))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    drop t key;
    t.evictions <- t.evictions + 1

let insert t key ~bytes v =
  if bytes < 0 then invalid_arg "Lru.insert: negative size";
  drop t key;
  if bytes > t.budget then t.oversize <- t.oversize + 1
  else begin
    while t.resident + bytes > t.budget && Hashtbl.length t.tbl > 0 do
      evict_lru t
    done;
    let e = { value = v; bytes; tick = 0 } in
    touch t e;
    Hashtbl.replace t.tbl key e;
    t.resident <- t.resident + bytes
  end

let mem t key = Hashtbl.mem t.tbl key

let keys_by_recency t =
  Hashtbl.fold (fun key e acc -> (key, e.tick) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

let resident_bytes t = t.resident

let stats (t : 'a t) =
  { hits = t.hits; misses = t.misses; evictions = t.evictions;
    oversize = t.oversize; resident_bytes = t.resident;
    budget_bytes = t.budget; count = Hashtbl.length t.tbl }
