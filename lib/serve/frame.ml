open Linalg

type mode = Json | Binary
type payload = Json_text of string | Grid_body of string

let tag_json = 'J'
let tag_grid = 'G'

let parse_fail message =
  Mfti_error.raise_error
    (Mfti_error.Parse { source = Some "frame"; line = None; message })

(* ------------------------------------------------------------------ *)
(* Binary encoding *)

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_f64 b x =
  let bits = Int64.bits_of_float x in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
  done

let get_u32 s off =
  if off + 4 > String.length s then parse_fail "truncated u32";
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let get_f64 s off =
  if off + 8 > String.length s then parse_fail "truncated f64";
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[off + i]))
  done;
  Int64.float_of_bits !bits

let frame tag payload =
  let b = Buffer.create (String.length payload + 5) in
  put_u32 b (String.length payload + 1);
  Buffer.add_char b tag;
  Buffer.add_string b payload;
  Buffer.contents b

let encode_json s = frame tag_json s
let encode_grid body = frame tag_grid body

let grid_body ~meta ~grid =
  let meta_text = Sjson.to_string meta in
  let points = Array.length grid in
  let p, m = if points = 0 then (0, 0) else Cmat.dims grid.(0) in
  let b = Buffer.create (String.length meta_text + 16 + (points * p * m * 16)) in
  put_u32 b (String.length meta_text);
  Buffer.add_string b meta_text;
  put_u32 b points;
  put_u32 b p;
  put_u32 b m;
  Array.iter
    (fun h ->
      let hp, hm = Cmat.dims h in
      if hp <> p || hm <> m then parse_fail "grid matrices disagree on dims";
      for i = 0 to p - 1 do
        for j = 0 to m - 1 do
          let z = Cmat.get h i j in
          put_f64 b z.Cx.re;
          put_f64 b z.Cx.im
        done
      done)
    grid;
  Buffer.contents b

let results_json grid =
  Sjson.Arr
    (Array.to_list
       (Array.map
          (fun h ->
            let p, m = Cmat.dims h in
            Sjson.Arr
              (List.init p (fun i ->
                   Sjson.Arr
                     (List.init m (fun jc ->
                          let z = Cmat.get h i jc in
                          Sjson.Arr [ Sjson.Num z.Cx.re; Sjson.Num z.Cx.im ])))))
          grid))

let decode_grid_body body =
  let meta_len = get_u32 body 0 in
  if 4 + meta_len > String.length body then parse_fail "truncated grid meta";
  let meta_text = String.sub body 4 meta_len in
  let meta =
    match Sjson.parse meta_text with
    | j -> j
    | exception Sjson.Parse_error m -> parse_fail ("grid meta: " ^ m)
  in
  let off = 4 + meta_len in
  let points = get_u32 body off in
  let p = get_u32 body (off + 4) in
  let m = get_u32 body (off + 8) in
  let off = off + 12 in
  if String.length body <> off + (points * p * m * 16) then
    parse_fail "grid payload length disagrees with its header";
  let grid =
    Array.init points (fun k ->
        let h = Cmat.zeros p m in
        let base = off + (k * p * m * 16) in
        for i = 0 to p - 1 do
          for j = 0 to m - 1 do
            let e = base + (((i * m) + j) * 16) in
            Cmat.set h i j { Cx.re = get_f64 body e; im = get_f64 body (e + 8) }
          done
        done;
        h)
  in
  (meta, grid)

(* ------------------------------------------------------------------ *)
(* Incremental reader *)

module Reader = struct
  type t = { buf : Buffer.t }

  let create () = { buf = Buffer.create 512 }
  let add r chunk k = Buffer.add_subbytes r.buf chunk 0 k
  let pending r = Buffer.length r.buf

  let take_rest r =
    let s = Buffer.contents r.buf in
    Buffer.clear r.buf;
    s

  (* drop the first [n] buffered bytes *)
  let consume r n =
    let s = Buffer.contents r.buf in
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s n (String.length s - n)

  let next_json r ~max_bytes =
    let s = Buffer.contents r.buf in
    match String.index_opt s '\n' with
    | None ->
      if Buffer.length r.buf > max_bytes then `Too_long else `None
    | Some i ->
      consume r (i + 1);
      let line = String.sub s 0 i in
      let line =
        (* tolerate CRLF clients *)
        if line <> "" && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      if String.length line > max_bytes then `Too_long else `Frame (Json_text line)

  let next_binary r ~max_bytes =
    let s = Buffer.contents r.buf in
    let have = String.length s in
    if have < 4 then (if have > 0 && have > max_bytes then `Too_long else `None)
    else begin
      let n = get_u32 s 0 in
      if n < 1 then `Bad "binary frame with empty payload"
      else if n + 4 > max_bytes then `Too_long
      else if have < 4 + n then `None
      else begin
        let tag = s.[4] in
        let payload = String.sub s 5 (n - 1) in
        consume r (4 + n);
        if tag = tag_json then `Frame (Json_text payload)
        else if tag = tag_grid then `Frame (Grid_body payload)
        else `Bad (Printf.sprintf "unknown frame tag 0x%02x" (Char.code tag))
      end
    end

  let next r ~mode ~max_bytes =
    match mode with
    | Json -> next_json r ~max_bytes
    | Binary -> next_binary r ~max_bytes
end

(* ------------------------------------------------------------------ *)
(* Negotiation *)

let is_hello line =
  (* cheap reject first: almost every request is not a hello, and the
     transports probe every line *)
  let has_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
    at 0
  in
  if not (has_sub "hello" line) then None
  else
    match Sjson.parse line with
    | j ->
      (match Sjson.member "op" j with
       | Some (Sjson.Str "hello") ->
         (match Sjson.member "frames" j with
          | Some (Sjson.Str f) -> Some f
          | _ -> Some "")
       | _ -> None)
    | exception Sjson.Parse_error _ -> None

let hello_ack frames =
  Sjson.to_string
    (Sjson.Obj
       [ ("ok", Sjson.Bool true);
         ("op", Sjson.Str "hello");
         ("frames", Sjson.Str frames) ])
