(** Modified nodal analysis (MNA) of linear RLC circuits.

    Builds the descriptor system [E x' = A x + B u, y = C x] directly
    from a netlist: node voltages plus one branch current per (R)L
    element, current-source inputs at the ports, port voltages as
    outputs.  The transfer function is therefore the open-circuit
    impedance matrix [Z(s)]; convert with {!Sparams} as needed.

    Node [0] is ground.  Nodes are dense integers [0 .. num_nodes-1]. *)

type node = int

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Inductor of { a : node; b : node; henries : float }
  | Rl_branch of { a : node; b : node; ohms : float; henries : float }
      (** series R+L as a single branch unknown (one state, not two) *)
  | Mutual of { k1 : int; k2 : int; henries : float }
      (** mutual inductance between the [k1]-th and [k2]-th inductive
          branches (counting [Inductor] and [Rl_branch] elements in
          insertion order, 0-based) *)

type t

(** [create ~nodes] starts an empty circuit with [nodes >= 1] nodes
    (including ground). *)
val create : nodes:int -> t

(** [add circuit element] returns the circuit extended with [element].
    Raises [Invalid_argument] on out-of-range nodes or non-positive
    values. *)
val add : t -> element -> t

(** [add_port circuit ~plus ~minus] declares a port: input = current
    injected from [minus] to [plus], output = voltage [v_plus - v_minus].
    Returns the port's index and the extended circuit. *)
val add_port : t -> plus:node -> minus:node -> int * t

val num_nodes : t -> int
val num_ports : t -> int

(** Number of MNA unknowns: non-ground nodes + inductive branches. *)
val num_states : t -> int

(** Assemble the impedance-parameter descriptor model (dense). *)
val to_descriptor : t -> Statespace.Descriptor.t

(** Sparse assembly: the [(G, C)] pair with
    [(sC + G) x = B u, y = B^T x]. *)
val to_sparse : t -> Sparse.Scsr.t * Sparse.Scsr.t

(** [sparse_system circuit] is [(g, c, b, l)]: the sparse MNA pencil
    plus the dense port injection/selection matrices, the form the
    Krylov reduction consumes ([Z(s) = l (sC + G)^{-1} b]). *)
val sparse_system :
  t -> Sparse.Scsr.t * Sparse.Scsr.t * Linalg.Cmat.t * Linalg.Cmat.t

(** AMD ordering of the frequency-independent pattern of [sC + G],
    reusable across a whole sweep via [Slu.factorize ~perm]. *)
val sparse_ordering : t -> int array

(** [impedance circuit freqs] samples [Z(j 2 pi f)] via the dense model. *)
val impedance : t -> float array -> Statespace.Sampling.sample array

(** Same samples via sparse assembly and sparse LU — near-linear in the
    circuit size, the right path for plane grids with thousands of
    states. *)
val impedance_sparse : t -> float array -> Statespace.Sampling.sample array

(** Dense below ~600 states, sparse above. *)
val impedance_auto : t -> float array -> Statespace.Sampling.sample array

(** Elements in insertion order (for the netlist writer). *)
val elements : t -> element list

(** Ports in insertion order as [(plus, minus)] pairs. *)
val ports : t -> (node * node) list
