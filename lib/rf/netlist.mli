(** Plain-text netlist interchange for {!Mna} circuits.

    One directive per line — [nodes N] first, then [R]/[C]/[L]/[RL]/[K]
    element stamps and [P plus minus] port declarations, with [#]
    comments.  Elements and ports keep file order, so mutual-inductance
    branch numbering and port indices round-trip exactly.

    This is how [gen --grid] hands a 100k-node plane grid to
    [engine --strategy krylov] without synthesizing a dense Touchstone
    sweep of the full system first. *)

(** Write a circuit; values are printed round-trip exact ([%.17g]). *)
val save : string -> Mna.t -> unit

(** Parse a netlist.  Malformed input comes back as
    [Mfti_error.Parse] with the offending line number; element
    validation failures (bad nodes, non-positive values) are reported
    the same way. *)
val load : string -> (Mna.t, Linalg.Mfti_error.t) result

(** Raising form of {!load}. *)
val load_exn : string -> Mna.t
