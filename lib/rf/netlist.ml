open Linalg

(* Minimal circuit interchange format, one element per line:

     # comments and blank lines ignored
     nodes <n>                 (required, first directive)
     R  <a> <b> <ohms>
     C  <a> <b> <farads>
     L  <a> <b> <henries>
     RL <a> <b> <ohms> <henries>
     K  <k1> <k2> <henries>
     P  <plus> <minus>

   Elements stamp in file order (mutual-inductance branch numbering
   follows it), ports gain indices in file order.  This is how `gen`
   hands 100k-node grids to `engine` without synthesizing a multi-GB
   Touchstone sweep first. *)

let magic = "# mfti-netlist v1"

let save path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_char oc '\n';
      Printf.fprintf oc "nodes %d\n" (Mna.num_nodes circuit);
      List.iter
        (fun e ->
          match e with
          | Mna.Resistor { a; b; ohms } ->
            Printf.fprintf oc "R %d %d %.17g\n" a b ohms
          | Mna.Capacitor { a; b; farads } ->
            Printf.fprintf oc "C %d %d %.17g\n" a b farads
          | Mna.Inductor { a; b; henries } ->
            Printf.fprintf oc "L %d %d %.17g\n" a b henries
          | Mna.Rl_branch { a; b; ohms; henries } ->
            Printf.fprintf oc "RL %d %d %.17g %.17g\n" a b ohms henries
          | Mna.Mutual { k1; k2; henries } ->
            Printf.fprintf oc "K %d %d %.17g\n" k1 k2 henries)
        (Mna.elements circuit);
      List.iter
        (fun (plus, minus) -> Printf.fprintf oc "P %d %d\n" plus minus)
        (Mna.ports circuit))

let parse_error ~source ~line message =
  Mfti_error.Parse { source = Some source; line = Some line; message }

let load path =
  let fail ~line message = Error (parse_error ~source:path ~line message) in
  let parse_int ~line s k =
    match int_of_string_opt s with
    | Some v -> k v
    | None -> fail ~line (Printf.sprintf "expected an integer, got %S" s)
  in
  let parse_float ~line s k =
    match float_of_string_opt s with
    | Some v -> k v
    | None -> fail ~line (Printf.sprintf "expected a number, got %S" s)
  in
  match open_in path with
  | exception Sys_error msg ->
    Error (Mfti_error.Parse { source = Some path; line = None; message = msg })
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let circuit = ref None in
        let lineno = ref 0 in
        let result = ref None in
        (try
           while !result = None do
             let raw = input_line ic in
             incr lineno;
             let line = !lineno in
             let trimmed = String.trim raw in
             if trimmed <> "" && trimmed.[0] <> '#' then begin
               let fields =
                 String.split_on_char ' ' trimmed
                 |> List.filter (fun s -> s <> "")
               in
               (* stamp through Mna's validating [add]; its
                  Invalid_argument messages become parse errors with
                  the offending line attached *)
               let add_element e =
                 match !circuit with
                 | None -> result := Some (fail ~line "element before 'nodes'")
                 | Some c ->
                   (match Mna.add c e with
                    | c' -> circuit := Some c'
                    | exception Invalid_argument msg ->
                      result := Some (fail ~line msg))
               in
               let bind p k = p (fun v -> k v) in
               let handled =
                 match fields with
                 | [ "nodes"; n ] ->
                   bind (parse_int ~line n) (fun n ->
                     if !circuit <> None then fail ~line "duplicate 'nodes'"
                     else if n < 1 then
                       fail ~line "node count must be positive"
                     else begin
                       circuit := Some (Mna.create ~nodes:n);
                       Ok ()
                     end)
                 | [ "R"; a; b; ohms ] ->
                   bind (parse_int ~line a) (fun a ->
                     bind (parse_int ~line b) (fun b ->
                       bind (parse_float ~line ohms) (fun ohms ->
                         add_element (Mna.Resistor { a; b; ohms });
                         Ok ())))
                 | [ "C"; a; b; farads ] ->
                   bind (parse_int ~line a) (fun a ->
                     bind (parse_int ~line b) (fun b ->
                       bind (parse_float ~line farads) (fun farads ->
                         add_element (Mna.Capacitor { a; b; farads });
                         Ok ())))
                 | [ "L"; a; b; henries ] ->
                   bind (parse_int ~line a) (fun a ->
                     bind (parse_int ~line b) (fun b ->
                       bind (parse_float ~line henries) (fun henries ->
                         add_element (Mna.Inductor { a; b; henries });
                         Ok ())))
                 | [ "RL"; a; b; ohms; henries ] ->
                   bind (parse_int ~line a) (fun a ->
                     bind (parse_int ~line b) (fun b ->
                       bind (parse_float ~line ohms) (fun ohms ->
                         bind (parse_float ~line henries) (fun henries ->
                           add_element (Mna.Rl_branch { a; b; ohms; henries });
                           Ok ()))))
                 | [ "K"; k1; k2; henries ] ->
                   bind (parse_int ~line k1) (fun k1 ->
                     bind (parse_int ~line k2) (fun k2 ->
                       bind (parse_float ~line henries) (fun henries ->
                         add_element (Mna.Mutual { k1; k2; henries });
                         Ok ())))
                 | [ "P"; plus; minus ] ->
                   bind (parse_int ~line plus) (fun plus ->
                     bind (parse_int ~line minus) (fun minus ->
                       match !circuit with
                       | None -> fail ~line "port before 'nodes'"
                       | Some c ->
                         (match Mna.add_port c ~plus ~minus with
                          | _, c' ->
                            circuit := Some c';
                            Ok ()
                          | exception Invalid_argument msg ->
                            fail ~line msg)))
                 | directive :: _ ->
                   fail ~line (Printf.sprintf "unknown directive %S" directive)
                 | [] -> Ok ()
               in
               match handled with
               | Ok () -> ()
               | Error _ as e -> result := Some e
             end
           done
         with End_of_file -> ());
        match !result with
        | Some r -> r
        | None ->
          (match !circuit with
           | None ->
             Error
               (parse_error ~source:path ~line:!lineno
                  "missing 'nodes' directive")
           | Some c ->
             if Mna.num_ports c = 0 then
               Error
                 (parse_error ~source:path ~line:!lineno
                    "netlist declares no ports")
             else Ok c))

let load_exn path =
  match load path with
  | Ok c -> c
  | Error e -> Mfti_error.raise_error e
