(** Touchstone v1 (.sNp) reader/writer.

    The industry interchange format for sampled network parameters, and
    the natural input to the fitting CLI.  Supports RI / MA / DB number
    formats, Hz/kHz/MHz/GHz units, S/Y/Z parameters and any port count.
    Ordering follows the v1 specification: 2-port data is column-major
    (S11 S21 S12 S22); other port counts are row-major with arbitrary
    line wrapping. *)

type number_format = Ri | Ma | Db
type parameter = S | Y | Z

type t = {
  parameter : parameter;
  z0 : float;
  samples : Statespace.Sampling.sample array;  (** frequencies in Hz *)
}

exception Parse_error of string

(** How forgiving the parser is with real-world (dirty) files. *)
type policy =
  | Strict
      (** any defect is a parse error with a line number: unparseable
          tokens, truncated trailing records, non-finite values *)
  | Lenient
      (** best-effort recovery: lines with unparseable tokens are
          dropped whole, a truncated trailing record is discarded,
          non-finite records are scrubbed, and duplicate frequency
          points are deduplicated (first wins).  Every recovery is
          recorded in the ambient {!Linalg.Diag} collector under
          ["touchstone.lenient"]. *)

(** [parse ~nports text] parses the body of a Touchstone file.  The port
    count is not recorded in v1 files — it comes from the file extension
    — so it must be supplied.  Both CRLF and classic-Mac line endings
    are accepted; ['!'] comments may trail data lines.  Strict policy;
    raises {!Parse_error}. *)
val parse : nports:int -> string -> t

(** [parse_result ?policy ?source ~nports text] is {!parse} with a typed
    error instead of an exception ([source] names the input in the
    error) and a selectable {!policy} (default [Strict]). *)
val parse_result :
  ?policy:policy -> ?source:string -> nports:int -> string ->
  (t, Linalg.Mfti_error.t) result

(** [print ?format ?comment data] renders a v1 file (Hz, chosen number
    format, default [Ri]). *)
val print : ?format:number_format -> ?comment:string -> t -> string

(** [ports_of_filename "x.s4p"] extracts 4; the extension match is
    case-insensitive ([.S4P] works).  Raises {!Parse_error} when the
    extension is not [.sNp]. *)
val ports_of_filename : string -> int

val read_file : string -> t

(** [read_file_result ?policy path] reads and parses with typed errors:
    unreadable files and bad extensions are [Parse] errors carrying
    [path] as the source. *)
val read_file_result : ?policy:policy -> string -> (t, Linalg.Mfti_error.t) result

val write_file : string -> ?format:number_format -> ?comment:string -> t -> unit
