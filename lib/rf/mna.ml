open Linalg

type node = int

type element =
  | Resistor of { a : node; b : node; ohms : float }
  | Capacitor of { a : node; b : node; farads : float }
  | Inductor of { a : node; b : node; henries : float }
  | Rl_branch of { a : node; b : node; ohms : float; henries : float }
  | Mutual of { k1 : int; k2 : int; henries : float }

type t = {
  nodes : int;
  elements : element list;  (* reversed insertion order *)
  ports : (node * node) list;  (* reversed insertion order *)
}

let create ~nodes =
  if nodes < 1 then invalid_arg "Mna.create: need at least the ground node";
  { nodes; elements = []; ports = [] }

let inductive = function
  | Inductor _ | Rl_branch _ -> true
  | Resistor _ | Capacitor _ | Mutual _ -> false

let count_inductive t =
  List.fold_left (fun acc e -> if inductive e then acc + 1 else acc) 0 t.elements

let check_node t n name =
  if n < 0 || n >= t.nodes then
    invalid_arg (Printf.sprintf "Mna.%s: node %d out of range [0, %d)" name n t.nodes)

let check_positive v name =
  if v <= 0. || not (Float.is_finite v) then
    invalid_arg (Printf.sprintf "Mna.add: %s must be positive and finite" name)

let add t element =
  (match element with
   | Resistor { a; b; ohms } ->
     check_node t a "add";
     check_node t b "add";
     check_positive ohms "resistance"
   | Capacitor { a; b; farads } ->
     check_node t a "add";
     check_node t b "add";
     check_positive farads "capacitance"
   | Inductor { a; b; henries } ->
     check_node t a "add";
     check_node t b "add";
     check_positive henries "inductance"
   | Rl_branch { a; b; ohms; henries } ->
     check_node t a "add";
     check_node t b "add";
     check_positive ohms "resistance";
     check_positive henries "inductance"
   | Mutual { k1; k2; henries } ->
     let nl = count_inductive t in
     if k1 < 0 || k1 >= nl || k2 < 0 || k2 >= nl || k1 = k2 then
       invalid_arg "Mna.add: mutual inductance branch indices invalid";
     if henries = 0. || not (Float.is_finite henries) then
       invalid_arg "Mna.add: mutual inductance must be nonzero and finite");
  { t with elements = element :: t.elements }

let add_port t ~plus ~minus =
  check_node t plus "add_port";
  check_node t minus "add_port";
  if plus = minus then invalid_arg "Mna.add_port: degenerate port";
  (List.length t.ports, { t with ports = (plus, minus) :: t.ports })

let num_nodes t = t.nodes
let num_ports t = List.length t.ports
let num_states t = t.nodes - 1 + count_inductive t

(* Stamp the netlist into abstract (G, C) accumulators so the dense and
   sparse assemblies share one code path.  [addg]/[addc] accumulate a real
   value onto entry (i, j) of G and C respectively. *)
let stamp t ~addg ~addc =
  let elements = List.rev t.elements in
  let nv = t.nodes - 1 in
  (* voltage unknown index of node k (ground has none) *)
  let vidx k = k - 1 in
  (* stamp a conductance-like value between nodes a b *)
  let stamp_pair badd a b x =
    if a > 0 then badd (vidx a) (vidx a) x;
    if b > 0 then badd (vidx b) (vidx b) x;
    if a > 0 && b > 0 then begin
      badd (vidx a) (vidx b) (-.x);
      badd (vidx b) (vidx a) (-.x)
    end
  in
  (* Assign branch indices to inductive elements in insertion order. *)
  let branch_index = ref [] in
  let next_branch = ref nv in
  List.iter
    (fun e ->
      if inductive e then begin
        branch_index := !next_branch :: !branch_index;
        incr next_branch
      end
      else branch_index := (-1) :: !branch_index)
    elements;
  let branch_index = Array.of_list (List.rev !branch_index) in
  (* inductive-branch serial number -> state index *)
  let inductive_states =
    Array.of_list
      (List.filter (fun i -> i >= 0) (Array.to_list branch_index))
  in
  List.iteri
    (fun k e ->
      match e with
      | Resistor { a; b; ohms } -> stamp_pair addg a b (1. /. ohms)
      | Capacitor { a; b; farads } -> stamp_pair addc a b farads
      | Inductor { a; b; henries } | Rl_branch { a; b; henries; _ } ->
        let idx = branch_index.(k) in
        (* KCL: current leaves a, enters b. *)
        if a > 0 then addg (vidx a) idx 1.;
        if b > 0 then addg (vidx b) idx (-1.);
        (* Branch equation: v_a - v_b - R i - L di/dt = 0. *)
        if a > 0 then addg idx (vidx a) 1.;
        if b > 0 then addg idx (vidx b) (-1.);
        addc idx idx (-.henries);
        (match e with
         | Rl_branch { ohms; _ } -> addg idx idx (-.ohms)
         | Inductor _ | Resistor _ | Capacitor _ | Mutual _ -> ())
      | Mutual { k1; k2; henries } ->
        let i1 = inductive_states.(k1) and i2 = inductive_states.(k2) in
        addc i1 i2 (-.henries);
        addc i2 i1 (-.henries))
    elements

(* dense port-injection/selection matrices *)
let port_matrices t =
  let ports = Array.of_list (List.rev t.ports) in
  let n = num_states t in
  let nports = Array.length ports in
  let vidx k = k - 1 in
  let b = Cmat.zeros n nports and c = Cmat.zeros nports n in
  Array.iteri
    (fun kp (plus, minus) ->
      if plus > 0 then begin
        Cmat.set b (vidx plus) kp Cx.one;
        Cmat.set c kp (vidx plus) Cx.one
      end;
      if minus > 0 then begin
        Cmat.set b (vidx minus) kp (Cx.of_float (-1.));
        Cmat.set c kp (vidx minus) (Cx.of_float (-1.))
      end)
    ports;
  (b, c)

let to_descriptor t =
  let n = num_states t in
  let nports = num_ports t in
  let g = Cmat.zeros n n and cap = Cmat.zeros n n in
  let badd m i jcol x =
    Cmat.set m i jcol (Cx.add (Cmat.get m i jcol) (Cx.of_float x))
  in
  stamp t ~addg:(badd g) ~addc:(badd cap);
  let b, c = port_matrices t in
  let d = Cmat.zeros nports nports in
  Statespace.Descriptor.create ~e:cap ~a:(Cmat.neg g) ~b ~c ~d

(* sparse assembly: (G, C) in CSR form *)
let to_sparse t =
  let n = num_states t in
  let hint = 8 * (List.length t.elements + 1) in
  let g = Sparse.Scsr.create ~hint ~rows:n ~cols:n () in
  let c = Sparse.Scsr.create ~hint ~rows:n ~cols:n () in
  stamp t
    ~addg:(fun i jcol x -> Sparse.Scsr.add_real g i jcol x)
    ~addc:(fun i jcol x -> Sparse.Scsr.add_real c i jcol x);
  (Sparse.Scsr.compress g, Sparse.Scsr.compress c)

let sparse_system t =
  let g, c = to_sparse t in
  let b, l = port_matrices t in
  (g, c, b, l)

let sparse_ordering t =
  let g, c = to_sparse t in
  (* the pattern of sC + G is frequency-independent: a fill-reducing
     ordering of the union pattern serves every frequency point *)
  Sparse.Ordering.amd (Sparse.Scsr.scale_add ~alpha:Cx.one c ~beta:Cx.one g)

let impedance_sparse t freqs =
  let g, c = to_sparse t in
  let b, cout = port_matrices t in
  let pattern = Sparse.Scsr.scale_add ~alpha:Cx.one c ~beta:Cx.one g in
  let perm = Sparse.Ordering.amd pattern in
  Array.map
    (fun freq ->
      let s = Cx.jw (2. *. Float.pi *. freq) in
      let m = Sparse.Scsr.scale_add ~alpha:s c ~beta:Cx.one g in
      match Sparse.Slu.factorize ~perm m with
      | Error _ -> raise (Statespace.Descriptor.Singular_pencil s)
      | Ok f ->
        let x = Sparse.Slu.solve f b in
        { Statespace.Sampling.freq; s = Cmat.mul cout x })
    freqs

let impedance t freqs =
  Statespace.Sampling.sample_system (to_descriptor t) freqs

(* beyond a few hundred states the dense descriptor sweep's cubic
   factorizations lose to sparse LU on MNA patterns *)
let sparse_threshold = 600

let impedance_auto t freqs =
  if num_states t <= sparse_threshold then impedance t freqs
  else impedance_sparse t freqs

(* insertion-order views for the netlist writer *)
let elements t = List.rev t.elements
let ports t = List.rev t.ports
