(** Synthetic power-distribution-network workload.

    The paper's Example 2 uses measured data from a proprietary 14-port
    INC-board PDN [Min, Georgia Tech 2004].  As a substitute we
    synthesize a PDN with the same modeling-relevant character: a
    power/ground plane pair modeled as an RL grid with distributed plane
    capacitance, decoupling capacitors (series RLC) scattered over the
    plane, and ports at distinct grid locations.  Such a structure has
    many closely spaced resonances and strongly frequency-dependent
    coupling — exactly what makes the Table 1 tests (noisy and
    ill-conditioned sampling) hard.

    The generated system is an impedance-parameter descriptor model;
    scattering samples come from {!Sparams.descriptor_z_to_s}. *)

type spec = {
  nx : int;            (** grid columns (>= 2) *)
  ny : int;            (** grid rows (>= 2) *)
  ports : int;         (** number of ports, <= nx*ny *)
  decaps : int;        (** number of decoupling capacitors, <= nx*ny *)
  cell_r : float;      (** plane segment resistance, ohms *)
  cell_l : float;      (** plane segment inductance, henries *)
  cell_c : float;      (** plane capacitance per node, farads *)
  cell_g : float;      (** dielectric-loss conductance per node, siemens *)
  decap_c : float;     (** decap capacitance, farads *)
  decap_esr : float;   (** decap equivalent series resistance, ohms *)
  decap_esl : float;   (** decap equivalent series inductance, henries *)
  plane_rl : bool;     (** [true]: RL plane segments (one branch state
                           each, the paper-faithful default); [false]:
                           resistive segments, keeping the MNA order at
                           the node count for very large grids *)
  seed : int;          (** placement randomization *)
}

val default_spec : spec

(** The Example 2 stand-in: an 8x8 plane with 14 ports and 12 decaps
    (descriptor order about 200). *)
val example2_spec : spec

(** Build the circuit; ports are placed at distinct random grid nodes,
    each referenced to ground. *)
val build : spec -> Mna.t

(** [scattering spec ~z0 freqs] returns the sampled S-parameters. *)
val scattering : spec -> z0:float -> float array -> Statespace.Sampling.sample array

(** Same samples through the sparse MNA path ({!Mna.impedance_sparse} +
    per-sample Z->S conversion) — use for grids beyond ~15x15 where the
    dense descriptor sweep becomes cubic-cost. *)
val scattering_sparse :
  spec -> z0:float -> float array -> Statespace.Sampling.sample array

(** The underlying scattering descriptor model (for reference curves). *)
val scattering_model : spec -> z0:float -> Statespace.Descriptor.t
