open Linalg

type number_format = Ri | Ma | Db
type parameter = S | Y | Z

type t = {
  parameter : parameter;
  z0 : float;
  samples : Statespace.Sampling.sample array;
}

exception Parse_error of string

type policy = Strict | Lenient

(* Internal failure carrying an optional 1-based line number; converted
   to [Parse_error] by the legacy entry points and to a typed
   [Mfti_error.Parse] by the [_result] ones. *)
exception Fail of int option * string

let fail fmt = Format.kasprintf (fun s -> raise (Fail (None, s))) fmt
let fail_at line fmt = Format.kasprintf (fun s -> raise (Fail (Some line, s))) fmt

let strip_comment line =
  match String.index_opt line '!' with
  | Some i -> String.sub line 0 i
  | None -> line

type options = {
  funit : float;            (* multiplier to Hz *)
  opt_parameter : parameter;
  opt_format : number_format;
  opt_z0 : float;
}

let default_options = { funit = 1e9; opt_parameter = S; opt_format = Ma; opt_z0 = 50. }

let parse_option_line line =
  let tokens =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
    |> List.filter (fun s -> s <> "")
    |> List.map String.uppercase_ascii
  in
  let rec go opts = function
    | [] -> opts
    | "#" :: rest -> go opts rest
    | "HZ" :: rest -> go { opts with funit = 1. } rest
    | "KHZ" :: rest -> go { opts with funit = 1e3 } rest
    | "MHZ" :: rest -> go { opts with funit = 1e6 } rest
    | "GHZ" :: rest -> go { opts with funit = 1e9 } rest
    | "S" :: rest -> go { opts with opt_parameter = S } rest
    | "Y" :: rest -> go { opts with opt_parameter = Y } rest
    | "Z" :: rest -> go { opts with opt_parameter = Z } rest
    | "RI" :: rest -> go { opts with opt_format = Ri } rest
    | "MA" :: rest -> go { opts with opt_format = Ma } rest
    | "DB" :: rest -> go { opts with opt_format = Db } rest
    | "R" :: value :: rest ->
      (match float_of_string_opt value with
       | Some z0 when z0 > 0. -> go { opts with opt_z0 = z0 } rest
       | Some _ | None -> fail "invalid reference impedance in option line")
    | tok :: _ -> fail "unsupported option token %S" tok
  in
  go default_options tokens

let decode fmt (x, y) =
  match fmt with
  | Ri -> Cx.make x y
  | Ma -> Cx.polar x (y *. Float.pi /. 180.)
  | Db -> Cx.polar (10. ** (x /. 20.)) (y *. Float.pi /. 180.)

let encode fmt (z : Cx.t) =
  match fmt with
  | Ri -> (z.Cx.re, z.Cx.im)
  | Ma -> (Cx.abs z, Cx.arg z *. 180. /. Float.pi)
  | Db ->
    let m = Cx.abs z in
    let mdb = if m <= 0. then -400. else 20. *. log10 m in
    (mdb, Cx.arg z *. 180. /. Float.pi)

(* Entry order within one frequency record. *)
let entry_order nports =
  if nports = 2 then [| (0, 0); (1, 0); (0, 1); (1, 1) |]
  else
    Array.init (nports * nports) (fun k -> (k / nports, k mod nports))

let parse_internal ~policy ~nports text =
  if nports < 1 then invalid_arg "Touchstone.parse: nports must be >= 1";
  (* Classic-Mac line endings: '\r' only, no '\n'.  CRLF needs no
     rewrite — the '\r' lands at the end of each '\n'-split line and is
     stripped with the rest of the whitespace. *)
  let text =
    if String.contains text '\r' && not (String.contains text '\n') then
      String.map (function '\r' -> '\n' | c -> c) text
    else text
  in
  (* Deterministic injection point for the parse layer: one garbage
     line appended to the body.  Strict parsing reports it as a typed
     error; lenient parsing drops the line and recovers the data. *)
  let text =
    if Fault.armed "touchstone.corrupt" then text ^ "\n1.0 GARBAGE\n" else text
  in
  let lines = String.split_on_char '\n' text in
  let options = ref None in
  (* numbers as (line, value), newest first, so record-level errors can
     point at the line the offending record started on *)
  let numbers = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim (strip_comment raw) in
      if line <> "" then
        if line.[0] = '#' then begin
          match !options with
          | Some _ -> fail_at lineno "duplicate option line"
          | None ->
            (match parse_option_line line with
             | o -> options := Some o
             | exception Fail (None, m) -> fail_at lineno "%s" m)
        end
        else begin
          let toks =
            String.split_on_char ' '
              (String.map (function '\t' | '\r' -> ' ' | c -> c) line)
            |> List.filter (fun s -> s <> "")
          in
          let vals = List.map (fun tok -> (tok, float_of_string_opt tok)) toks in
          match List.find_opt (fun (_, v) -> v = None) vals with
          | Some (tok, _) ->
            (match policy with
             | Strict -> fail_at lineno "unexpected token %S in data" tok
             | Lenient ->
               (* drop the whole line, not just the bad token: a partial
                  line would shift every later record out of alignment *)
               Diag.record ~site:"touchstone.lenient"
                 (Printf.sprintf "line %d: dropped (unparseable token %S)"
                    lineno tok))
          | None ->
            List.iter
              (fun (_, v) -> numbers := (lineno, Option.get v) :: !numbers)
              vals
        end)
    lines;
  let opts = Option.value !options ~default:default_options in
  let data = Array.of_list (List.rev !numbers) in
  let per_record = 1 + (2 * nports * nports) in
  if Array.length data = 0 then fail "no data records";
  let nrec =
    let n = Array.length data in
    if n mod per_record = 0 then n / per_record
    else begin
      let tail_line, _ = data.(n - (n mod per_record)) in
      match policy with
      | Strict ->
        fail_at tail_line
          "data length %d is not a multiple of %d values per frequency point"
          n per_record
      | Lenient ->
        Diag.record ~site:"touchstone.lenient"
          (Printf.sprintf
             "line %d: dropped truncated trailing record (%d stray values)"
             tail_line (n mod per_record));
        n / per_record
    end
  in
  if nrec = 0 then fail "no complete data records";
  let order = entry_order nports in
  let records =
    Array.init nrec (fun k ->
        let base = k * per_record in
        let fline, fv = data.(base) in
        let freq = fv *. opts.funit in
        let s = Cmat.zeros nports nports in
        Array.iteri
          (fun e (i, jcol) ->
            let _, x = data.(base + 1 + (2 * e)) in
            let _, y = data.(base + 2 + (2 * e)) in
            Cmat.set s i jcol (decode opts.opt_format (x, y)))
          order;
        (fline, { Statespace.Sampling.freq; s }))
  in
  (* NaN/Inf scrubbing: a record that decodes to non-finite values can
     only poison the fit downstream. *)
  let samples =
    Array.to_list records
    |> List.filter_map (fun (fline, smp) ->
           let finite =
             Float.is_finite smp.Statespace.Sampling.freq
             && Cmat.is_finite smp.Statespace.Sampling.s
           in
           if finite then Some smp
           else
             match policy with
             | Strict ->
               fail_at fline "non-finite values in record at %g Hz"
                 smp.Statespace.Sampling.freq
             | Lenient ->
               Diag.record ~site:"touchstone.lenient"
                 (Printf.sprintf
                    "line %d: dropped record at %g Hz (non-finite values)"
                    fline smp.Statespace.Sampling.freq);
               None)
    |> Array.of_list
  in
  if Array.length samples = 0 then fail "no usable data records";
  (* The spec requires ascending frequencies; tolerate but sort. *)
  Array.sort
    (fun a b ->
      compare a.Statespace.Sampling.freq b.Statespace.Sampling.freq)
    samples;
  let samples =
    match policy with
    | Strict -> samples
    | Lenient ->
      (* duplicated frequency points break the Loewner divided
         differences; keep the first of each run *)
      let keep = ref [] and dropped = ref 0 in
      Array.iteri
        (fun i smp ->
          if
            i > 0
            && smp.Statespace.Sampling.freq
               = samples.(i - 1).Statespace.Sampling.freq
          then incr dropped
          else keep := smp :: !keep)
        samples;
      if !dropped > 0 then
        Diag.record ~site:"touchstone.lenient"
          (Printf.sprintf "dropped %d duplicate frequency point(s) (first wins)"
             !dropped);
      Array.of_list (List.rev !keep)
  in
  { parameter = opts.opt_parameter; z0 = opts.opt_z0; samples }

let format_fail line msg =
  match line with
  | Some l -> Printf.sprintf "line %d: %s" l msg
  | None -> msg

let parse ~nports text =
  match parse_internal ~policy:Strict ~nports text with
  | t -> t
  | exception Fail (line, msg) -> raise (Parse_error (format_fail line msg))

let parse_result ?(policy = Strict) ?source ~nports text =
  match parse_internal ~policy ~nports text with
  | t -> Ok t
  | exception Fail (line, message) ->
    Result.Error (Mfti_error.Parse { source; line; message })
  | exception Invalid_argument message ->
    Result.Error (Mfti_error.Validation { context = "touchstone"; message })

let print ?(format = Ri) ?comment t =
  let buf = Buffer.create 4096 in
  (match comment with
   | Some c ->
     String.split_on_char '\n' c
     |> List.iter (fun line -> Buffer.add_string buf ("! " ^ line ^ "\n"))
   | None -> ());
  let fmt_name = match format with Ri -> "RI" | Ma -> "MA" | Db -> "DB" in
  let param_name = match t.parameter with S -> "S" | Y -> "Y" | Z -> "Z" in
  Buffer.add_string buf
    (Printf.sprintf "# HZ %s %s R %g\n" param_name fmt_name t.z0);
  Array.iter
    (fun smp ->
      let s = smp.Statespace.Sampling.s in
      let nports = Cmat.rows s in
      let order = entry_order nports in
      Buffer.add_string buf (Printf.sprintf "%.10g" smp.Statespace.Sampling.freq);
      Array.iteri
        (fun e (i, jcol) ->
          let x, y = encode format (Cmat.get s i jcol) in
          (* wrap long records: one matrix row per line for n >= 3 *)
          if nports >= 3 && e mod nports = 0 && e > 0 then
            Buffer.add_string buf "\n ";
          Buffer.add_string buf (Printf.sprintf " %.10g %.10g" x y))
        order;
      Buffer.add_char buf '\n')
    t.samples;
  Buffer.contents buf

(* Case-insensitive (.s4p / .S4P both work — the spec is silent and
   Windows-originated files are routinely uppercase). *)
let ports_internal name =
  let base = Filename.basename name in
  match String.rindex_opt base '.' with
  | None -> fail "filename %S has no extension" name
  | Some i ->
    let ext = String.lowercase_ascii (String.sub base (i + 1) (String.length base - i - 1)) in
    let len = String.length ext in
    if len >= 3 && ext.[0] = 's' && ext.[len - 1] = 'p' then
      match int_of_string_opt (String.sub ext 1 (len - 2)) with
      | Some n when n >= 1 -> n
      | Some _ | None -> fail "cannot read port count from extension %S" ext
    else fail "expected a .sNp extension, got %S" ext

let ports_of_filename name =
  match ports_internal name with
  | n -> n
  | exception Fail (line, msg) -> raise (Parse_error (format_fail line msg))

let read_text path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let read_file path =
  let nports = ports_of_filename path in
  parse ~nports (read_text path)

let read_file_result ?policy path =
  match
    let nports = ports_internal path in
    (nports, read_text path)
  with
  | exception Fail (line, message) ->
    Result.Error (Mfti_error.Parse { source = Some path; line; message })
  | exception Sys_error message ->
    Result.Error (Mfti_error.Parse { source = Some path; line = None; message })
  | nports, text -> parse_result ?policy ~source:path ~nports text

let write_file path ?format ?comment t =
  let oc = open_out path in
  output_string oc (print ?format ?comment t);
  close_out oc
