open Linalg

type spec = {
  nx : int;
  ny : int;
  ports : int;
  decaps : int;
  cell_r : float;
  cell_l : float;
  cell_c : float;
  cell_g : float;
  decap_c : float;
  decap_esr : float;
  decap_esl : float;
  plane_rl : bool;
  seed : int;
}

let default_spec =
  { nx = 4; ny = 4; ports = 4; decaps = 3;
    cell_r = 0.01; cell_l = 0.5e-9; cell_c = 10e-12; cell_g = 1e-6;
    decap_c = 100e-9; decap_esr = 0.02; decap_esl = 1e-9;
    plane_rl = true; seed = 0 }

let example2_spec =
  (* 7x7 plane, 10 decaps, 14 ports: descriptor order 153 — comparable to
     the effective order the paper's recovered models suggest (95-260) *)
  { nx = 7; ny = 7; ports = 14; decaps = 10;
    cell_r = 0.008; cell_l = 0.4e-9; cell_c = 22e-12; cell_g = 2e-6;
    decap_c = 220e-9; decap_esr = 0.015; decap_esl = 0.8e-9;
    plane_rl = true; seed = 14 }

let validate spec =
  if spec.nx < 2 || spec.ny < 2 then invalid_arg "Pdn.build: grid must be at least 2x2";
  let cells = spec.nx * spec.ny in
  if spec.ports < 1 || spec.ports > cells then
    invalid_arg "Pdn.build: ports must be in [1, nx*ny]";
  if spec.decaps < 0 || spec.decaps > cells then
    invalid_arg "Pdn.build: decaps must be in [0, nx*ny]"

let build spec =
  validate spec;
  let cells = spec.nx * spec.ny in
  (* node 0 = ground; 1..cells = plane nodes; cells+1.. = decap internal *)
  let plane_node ix iy = 1 + ix + (iy * spec.nx) in
  let total_nodes = 1 + cells + spec.decaps in
  let circuit = ref (Mna.create ~nodes:total_nodes) in
  let rng = Rng.create spec.seed in
  let jittered base = base *. (0.9 +. (0.2 *. Rng.uniform rng)) in
  (* Plane grid: series RL between adjacent nodes. *)
  for iy = 0 to spec.ny - 1 do
    for ix = 0 to spec.nx - 1 do
      let a = plane_node ix iy in
      (* RL segments carry one branch state each; a resistive plane
         ([plane_rl = false]) keeps the state count at the node count,
         which is what makes 100k-node grids factor in seconds *)
      let segment b =
        if spec.plane_rl then
          Mna.Rl_branch { a; b; ohms = jittered spec.cell_r;
                          henries = jittered spec.cell_l }
        else Mna.Resistor { a; b; ohms = jittered spec.cell_r }
      in
      if ix + 1 < spec.nx then
        circuit := Mna.add !circuit (segment (plane_node (ix + 1) iy));
      if iy + 1 < spec.ny then
        circuit := Mna.add !circuit (segment (plane_node ix (iy + 1)));
      (* Distributed plane capacitance and dielectric loss to ground. *)
      circuit :=
        Mna.add !circuit (Mna.Capacitor { a; b = 0; farads = jittered spec.cell_c });
      circuit :=
        Mna.add !circuit
          (Mna.Resistor { a; b = 0; ohms = 1. /. jittered spec.cell_g })
    done
  done;
  (* Random distinct grid locations for decaps and ports. *)
  let locations = Array.init cells (fun i -> i + 1) in
  Rng.shuffle rng locations;
  for k = 0 to spec.decaps - 1 do
    let plane = locations.(k) in
    let internal = 1 + cells + k in
    circuit :=
      Mna.add !circuit
        (Mna.Rl_branch { a = plane; b = internal;
                         ohms = jittered spec.decap_esr;
                         henries = jittered spec.decap_esl });
    circuit :=
      Mna.add !circuit
        (Mna.Capacitor { a = internal; b = 0; farads = jittered spec.decap_c })
  done;
  (* Ports at the following distinct locations (reuse the shuffle tail,
     wrapping if ports + decaps > cells). *)
  for k = 0 to spec.ports - 1 do
    let plane = locations.((spec.decaps + k) mod cells) in
    let _, c = Mna.add_port !circuit ~plus:plane ~minus:0 in
    circuit := c
  done;
  !circuit

let scattering_model spec ~z0 =
  Sparams.descriptor_z_to_s ~z0 (Mna.to_descriptor (build spec))

let scattering spec ~z0 freqs =
  Statespace.Sampling.sample_system (scattering_model spec ~z0) freqs

let scattering_sparse spec ~z0 freqs =
  let circuit = build spec in
  Sparams.map_samples (Sparams.z_to_s ~z0) (Mna.impedance_sparse circuit freqs)
