(** Descriptor (generalized state-space) systems.

    [E x' = A x + B u,  y = C x + D u] — paper eq. (1).  [E] may be
    singular; the only requirement for frequency-domain evaluation is
    that the pencil [sE - A] is regular at the evaluation points.
    Matrices are complex; models produced by the realified MFTI pipeline
    have numerically real entries (see {!is_real}). *)

type t = private {
  e : Linalg.Cmat.t;  (** n x n *)
  a : Linalg.Cmat.t;  (** n x n *)
  b : Linalg.Cmat.t;  (** n x m *)
  c : Linalg.Cmat.t;  (** p x n *)
  d : Linalg.Cmat.t;  (** p x m *)
}

(** [create ~e ~a ~b ~c ~d] checks dimension consistency. *)
val create :
  e:Linalg.Cmat.t -> a:Linalg.Cmat.t -> b:Linalg.Cmat.t -> c:Linalg.Cmat.t ->
  d:Linalg.Cmat.t -> t

(** [of_state_space ~a ~b ~c ~d] uses [E = I]. *)
val of_state_space :
  a:Linalg.Cmat.t -> b:Linalg.Cmat.t -> c:Linalg.Cmat.t -> d:Linalg.Cmat.t -> t

(** State dimension [n]. *)
val order : t -> int

(** Number of inputs [m]. *)
val inputs : t -> int

(** Number of outputs [p]. *)
val outputs : t -> int

exception Singular_pencil of Linalg.Cx.t
(** Raised by MNA netlist evaluation when [sE - A] is singular at the
    requested point.  {!eval} itself no longer raises it: an exactly
    singular pencil goes through the column-pivoted QR fallback of
    {!Linalg.Lu.solve_robust}, which records ["lu.qr_fallback"] in the
    ambient {!Linalg.Diag} collector and returns the minimum-norm
    solution. *)

(** [eval sys s] is the transfer matrix [H(s) = C (sE - A)^{-1} B + D].
    Never raises on singular pencils — see {!Singular_pencil}. *)
val eval : t -> Linalg.Cx.t -> Linalg.Cmat.t

(** [eval_freq sys f] evaluates at [s = j 2 pi f]. *)
val eval_freq : t -> float -> Linalg.Cmat.t

(** [dc_gain sys] is [H(0)]. *)
val dc_gain : t -> Linalg.Cmat.t

(** True when all matrices are numerically real (relative tol). *)
val is_real : ?tol:float -> t -> bool

(** Force real parts, failing loudly when the imaginary residue is above
    the tolerance. *)
val realify : ?tol:float -> t -> t

(** [to_proper ?rtol sys] eliminates the algebraic (singular-[E]) part:
    the state space is split along the singular vectors of [E] and the
    algebraic states are solved out (index-1 Kron reduction), giving an
    equivalent model with nonsingular [E] and an explicit feedthrough
    [D].  The transfer function is preserved exactly.  MNA netlists and
    noise-free Loewner models are the typical inputs.

    [rtol] is the relative rank cut on the singular values of [E]
    (default [1e-11]).  Raises [Invalid_argument] when the algebraic
    subsystem is itself singular (a higher-index descriptor, e.g. a pure
    C-loop); such circuits need topological preprocessing first. *)
val to_proper : ?rtol:float -> t -> t

val pp : Format.formatter -> t -> unit

(** [save path sys] writes the model as a plain-text file (dimensions,
    then E, A, B, C, D entries as "re im" pairs, row-major) — a stable
    interchange format that diffs cleanly and loads anywhere. *)
val save : string -> t -> unit

(** [load path] reads a model written by {!save}.  Raises [Failure] with
    a location message on malformed input. *)
val load : string -> t
