open Linalg

type result = {
  model : Descriptor.t;
  flipped : int;
  max_residual : float;
}

let breakdown ?condition message =
  Mfti_error.raise_error
    (Mfti_error.Numerical_breakdown
       { context = "stabilize"; message; condition })

let reflect ?(min_decay = 1e-9) ?(max_residual = infinity) sys =
  let residual_threshold = max_residual in
  let sys = Descriptor.to_proper sys in
  let n = Descriptor.order sys in
  if n = 0 then { model = sys; flipped = 0; max_residual = 0. }
  else begin
    let f =
      match Lu.factorize sys.Descriptor.e with
      | exception Lu.Singular _ ->
        breakdown "E singular after index reduction"
      | f -> f
    in
    let a0 = Lu.solve f sys.Descriptor.a in
    let b0 = Lu.solve f sys.Descriptor.b in
    let values = Eig.eigenvalues a0 in
    let unstable = Array.exists (fun (p : Cx.t) -> p.Cx.re >= 0.) values in
    if not unstable then
      { model =
          Descriptor.of_state_space ~a:a0 ~b:b0 ~c:sys.Descriptor.c
            ~d:sys.Descriptor.d;
        flipped = 0; max_residual = 0. }
    else begin
      let vectors = Eig.right_vectors a0 values in
      (* residual check: |A v - lambda v| / |lambda v| per eigenpair *)
      let max_residual = ref 0. in
      let av = Cmat.mul a0 vectors in
      Array.iteri
        (fun i lambda ->
          let r = ref 0. and s = ref 0. in
          for k = 0 to n - 1 do
            let lhs = Cmat.get av k i in
            let rhs = Cx.mul lambda (Cmat.get vectors k i) in
            r := !r +. Cx.abs2 (Cx.sub lhs rhs);
            s := !s +. Cx.abs2 rhs
          done;
          if !s > 0. then
            max_residual := Stdlib.max !max_residual (sqrt (!r /. !s)))
        values;
      (* [nan] poisoning (fault injection upstream) must also refuse:
         a NaN residual is "not known to be below the threshold" *)
      if not (!max_residual <= residual_threshold) then
        breakdown ~condition:!max_residual
          (Printf.sprintf
             "modal decomposition residual %.3g exceeds the trust \
              threshold %.3g; pole reflection would be untrustworthy"
             !max_residual residual_threshold);
      let flipped = ref 0 in
      let flipped_values =
        Array.map
          (fun (p : Cx.t) ->
            if p.Cx.re >= 0. then begin
              incr flipped;
              let decay = Stdlib.max p.Cx.re (min_decay *. Cx.abs p) in
              Cx.make (-.(Stdlib.max decay min_decay)) p.Cx.im
            end
            else p)
          values
      in
      (* A' = V diag(flipped) V^{-1}, evaluated as solving V^H from the
         right: A' = (V^{-H} (V diag)^H)^H *)
      let vdiag =
        Cmat.mapi (fun _ jcol x -> Cx.mul x flipped_values.(jcol)) vectors
      in
      let vf = Lu.factorize (Cmat.ctranspose vectors) in
      let a' = Cmat.ctranspose (Lu.solve vf (Cmat.ctranspose vdiag)) in
      (* keep the model real if the input was *)
      let a' =
        if Descriptor.is_real sys && Cmat.max_imag a' < 1e-6 *. Cmat.norm_fro a'
        then Cmat.of_real (Cmat.real_part a')
        else a'
      in
      { model =
          Descriptor.of_state_space ~a:a' ~b:b0 ~c:sys.Descriptor.c
            ~d:sys.Descriptor.d;
        flipped = !flipped;
        max_residual = !max_residual }
    end
  end
