(** Stability enforcement for fitted macromodels.

    Interpolation of noisy data routinely produces models with a few
    poles just across the imaginary axis.  The standard repair — the
    state-space analogue of vector fitting's pole flipping — reflects
    every unstable eigenvalue into the left half-plane through a modal
    (eigenvector) transformation, leaving the stable modes bit-exact.
    The transfer function changes only by the reflected modes'
    contributions, which for near-axis noise poles is below the noise
    floor.

    Requires a diagonalizable proper part; singular-[E] models go
    through {!Descriptor.to_proper} first. *)

type result = {
  model : Descriptor.t;
  flipped : int;          (** number of reflected eigenvalues *)
  max_residual : float;   (** worst relative eigen-residual of the modal
                              decomposition — a sanity indicator, small
                              (<1e-6) when the flip is trustworthy *)
}

(** [reflect ?min_decay ?max_residual sys] mirrors eigenvalues with
    [Re >= 0] to [Re = -max(|Re|, min_decay * |eig|)] (default
    [min_decay = 1e-9]).  A model that is already stable is returned
    unchanged (with [flipped = 0]).

    Failure is typed, never [Invalid_argument], so the certification
    pipeline can degrade gracefully: when the modal decomposition's
    worst relative eigen-residual exceeds [max_residual] (default
    [infinity], i.e. never) the flip is untrustworthy and
    {!Linalg.Mfti_error.Error} is raised with [Numerical_breakdown]
    carrying the residual as its condition estimate; a pencil whose [E]
    stays singular after index reduction raises the same typed error. *)
val reflect : ?min_decay:float -> ?max_residual:float -> Descriptor.t -> result
