(** Frequency grids and frequency-response sampling.

    A {!sample} is one measured/simulated scattering (or admittance,
    impedance...) matrix at a physical frequency in Hz — the raw material
    of the interpolation algorithms (paper eq. (2)). *)

type sample = {
  freq : float;            (** physical frequency in Hz, > 0 *)
  s : Linalg.Cmat.t;       (** p x m response matrix at [freq] *)
}

(** [linspace lo hi n] — [n] uniformly spaced points including endpoints
    ([n >= 2]). *)
val linspace : float -> float -> int -> float array

(** [logspace lo hi n] — [n] log-uniformly spaced points ([lo, hi > 0]). *)
val logspace : float -> float -> int -> float array

(** [clustered ~lo ~hi ~split ~fraction n] puts [fraction] of the points
    uniformly in the upper band [[split, hi]] and the rest in
    [[lo, split]] — the paper's Test 2 "poorly distributed samples
    concentrated in the high-frequency band". *)
val clustered : lo:float -> hi:float -> split:float -> fraction:float -> int -> float array

(** [sample_system sys freqs] evaluates the transfer function of [sys] at
    [j 2 pi f] for every [f]. *)
val sample_system : Descriptor.t -> float array -> sample array

(** [of_matrices freqs ms] zips explicit data into samples. *)
val of_matrices : float array -> Linalg.Cmat.t array -> sample array

(** All samples share the response dimensions of the first; returns
    [(p, m)].  Raises on empty or inconsistent arrays. *)
val port_dims : sample array -> int * int

(** [max_conjugate_mismatch sys freqs] is the largest deviation of
    [H(-j w)] from [conj (H(j w))] over the grid — zero for real systems. *)
val max_conjugate_mismatch : Descriptor.t -> float array -> float

(** [interpolate samples freqs] resamples measured data onto a new grid
    by entrywise linear interpolation (in frequency) between the two
    bracketing samples; frequencies outside the measured band clamp to
    the nearest endpoint.  Useful for aligning two measurement grids —
    NOT a substitute for rational fitting.  The input must be sorted by
    frequency (Touchstone readers guarantee this). *)
val interpolate : sample array -> float array -> sample array

(** [symmetrize samples] replaces each matrix by [(S + S^T)/2] —
    enforcing the reciprocity that passive RLC devices must satisfy but
    measurement noise breaks.  Fitting symmetrized data halves the noise
    on off-diagonal entries. *)
val symmetrize : sample array -> sample array

(** [partition ~every samples] splits the array into
    [(fit, holdout)] where every [every]-th sample (1-based positions
    [every, 2*every, ...]) goes to the hold-out set and the rest stay
    for fitting.  Order is preserved in both halves.  Raises
    [Invalid_argument] when [every < 2]. *)
val partition : every:int -> sample array -> sample array * sample array

(** True when the sample has a finite positive frequency and all-finite
    response entries. *)
val sample_is_finite : sample -> bool

(** [fault_corrupt samples] is the ["sample.corrupt"] fault-injection
    point: when armed it returns a copy with a NaN planted in the first
    response matrix (the caller's array is untouched); otherwise it
    returns [samples] as-is.  The fitting drivers route their input
    through it so the validation gate can be tested deterministically. *)
val fault_corrupt : sample array -> sample array

(** [validate samples] checks the whole array is fit-ready: non-empty,
    consistent dimensions, finite positive frequencies, finite entries.
    The strict-mode gate of the fitting pipeline. *)
val validate : sample array -> (unit, Linalg.Mfti_error.t) result

(** [scrub samples] is the lenient counterpart of {!validate}: samples
    with non-finite frequencies/entries and duplicate frequencies (first
    wins) are dropped instead of rejected, each drop recorded in the
    ambient {!Linalg.Diag} collector under ["sampling.scrub"]. *)
val scrub : sample array -> sample array
