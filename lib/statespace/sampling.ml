open Linalg

type sample = { freq : float; s : Cmat.t }

let linspace lo hi n =
  if n < 2 then invalid_arg "Sampling.linspace: need at least 2 points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then hi else lo +. (float_of_int i *. step))

let logspace lo hi n =
  if lo <= 0. || hi <= 0. then invalid_arg "Sampling.logspace: bounds must be positive";
  Array.map (fun x -> 10. ** x) (linspace (log10 lo) (log10 hi) n)

let clustered ~lo ~hi ~split ~fraction n =
  if fraction < 0. || fraction > 1. then invalid_arg "Sampling.clustered: fraction in [0,1]";
  if not (lo < split && split < hi) then
    invalid_arg "Sampling.clustered: need lo < split < hi";
  let n_hi = int_of_float (Float.round (fraction *. float_of_int n)) in
  let n_hi = Stdlib.min (Stdlib.max n_hi 0) n in
  let n_lo = n - n_hi in
  let band lo hi k =
    if k >= 2 then linspace lo hi k else if k = 1 then [| lo |] else [||]
  in
  let low = band lo split n_lo in
  (* Start the upper band strictly above the split to avoid a duplicate. *)
  let eps = (hi -. split) /. (float_of_int (Stdlib.max n_hi 1) *. 10.) in
  let high = band (split +. eps) hi n_hi in
  Array.append low high

let sample_system sys freqs =
  let n = Array.length freqs in
  if n = 0 then [||]
  else begin
    (* Each sample is an independent (E s - A) solve, so the sweep
       fans out per frequency on the domain pool; slots are written
       disjointly and the per-sample arithmetic does not depend on
       the chunking, so the result is identical for any domain
       count.  [chunk:1] because solve cost dominates handshakes —
       except below ~order 32, where one O(order^3) solve no longer
       covers the pool round trip and the sweep runs inline.  (Audit
       note: even large sweeps cap near 1.4x on 4 domains; each eval
       allocates its factorization workspace, so the multicore GC,
       not the handshake, is the ceiling there.) *)
    let order = Descriptor.order sys in
    let chunk = if order * order * order < 32768 then n else 1 in
    let out =
      Array.make n { freq = 0.; s = Cmat.create 0 0 }
    in
    Parallel.parallel_for ~chunk n (fun lo hi ->
        for i = lo to hi - 1 do
          let freq = freqs.(i) in
          out.(i) <- { freq; s = Descriptor.eval_freq sys freq }
        done);
    out
  end

let of_matrices freqs ms =
  if Array.length freqs <> Array.length ms then
    invalid_arg "Sampling.of_matrices: length mismatch";
  Array.map2 (fun freq s -> { freq; s }) freqs ms

let port_dims samples =
  if Array.length samples = 0 then invalid_arg "Sampling.port_dims: no samples";
  let p, m = Cmat.dims samples.(0).s in
  Array.iter
    (fun smp ->
      if Cmat.dims smp.s <> (p, m) then
        invalid_arg "Sampling.port_dims: inconsistent sample dimensions")
    samples;
  (p, m)

let interpolate samples freqs =
  let k = Array.length samples in
  if k = 0 then invalid_arg "Sampling.interpolate: no samples";
  for i = 0 to k - 2 do
    if samples.(i).freq >= samples.(i + 1).freq then
      invalid_arg "Sampling.interpolate: samples must be sorted by frequency"
  done;
  Array.map
    (fun f ->
      if f <= samples.(0).freq then { samples.(0) with freq = f }
      else if f >= samples.(k - 1).freq then { samples.(k - 1) with freq = f }
      else begin
        (* binary search for the bracketing pair *)
        let lo = ref 0 and hi = ref (k - 1) in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if samples.(mid).freq <= f then lo := mid else hi := mid
        done;
        let a = samples.(!lo) and b = samples.(!hi) in
        let t = (f -. a.freq) /. (b.freq -. a.freq) in
        let s =
          Cmat.add
            (Cmat.scale_float (1. -. t) a.s)
            (Cmat.scale_float t b.s)
        in
        { freq = f; s }
      end)
    freqs

let symmetrize samples =
  Array.map
    (fun smp ->
      let s =
        Cmat.scale_float 0.5 (Cmat.add smp.s (Cmat.transpose smp.s))
      in
      { smp with s })
    samples

let partition ~every samples =
  if every < 2 then invalid_arg "Sampling.partition: every must be >= 2";
  let keep = ref [] and held = ref [] in
  Array.iteri
    (fun i smp ->
      if (i + 1) mod every = 0 then held := smp :: !held
      else keep := smp :: !keep)
    samples;
  (Array.of_list (List.rev !keep), Array.of_list (List.rev !held))

(* --- input hardening ---------------------------------------------- *)

(* Deterministic injection point for the sample layer: a NaN planted in
   a private copy of the first response matrix, caught by [validate]
   downstream.  The caller's array is never mutated.  No-op unless the
   [sample.corrupt] fault is armed. *)
let fault_corrupt samples =
  if Fault.armed "sample.corrupt" && Array.length samples > 0 then begin
    let s0 = samples.(0) in
    let s = Cmat.copy s0.s in
    if Cmat.rows s > 0 && Cmat.cols s > 0 then
      Cmat.set s 0 0 (Cx.make Float.nan Float.nan);
    let samples = Array.copy samples in
    samples.(0) <- { s0 with s };
    samples
  end
  else samples

let sample_is_finite smp =
  Float.is_finite smp.freq && smp.freq > 0. && Cmat.is_finite smp.s

let validate samples =
  if Array.length samples = 0 then
    Result.Error
      (Mfti_error.Validation { context = "sampling"; message = "no samples" })
  else begin
    let p, m = Cmat.dims samples.(0).s in
    let err = ref None in
    Array.iteri
      (fun i smp ->
        if !err = None then begin
          if not (Float.is_finite smp.freq && smp.freq > 0.) then
            err :=
              Some
                (Printf.sprintf
                   "sample %d: frequency %g must be finite and positive" i
                   smp.freq)
          else if Cmat.dims smp.s <> (p, m) then
            err :=
              Some
                (Printf.sprintf
                   "sample %d: response dimensions differ from sample 0" i)
          else if not (Cmat.is_finite smp.s) then
            err :=
              Some
                (Printf.sprintf
                   "sample %d (%g Hz): non-finite response entries" i smp.freq)
        end)
      samples;
    match !err with
    | Some message ->
      Result.Error (Mfti_error.Validation { context = "sampling"; message })
    | None -> Ok ()
  end

let scrub samples =
  (* Lenient counterpart of {!validate}: instead of rejecting the whole
     array, drop samples that cannot be used — non-finite frequency or
     entries, duplicate frequencies (first wins) — recording each drop
     in the ambient diagnostics. *)
  let seen = Hashtbl.create 64 in
  let keep =
    Array.to_list samples
    |> List.filteri (fun i smp ->
           if not (sample_is_finite smp) then begin
             Diag.record ~site:"sampling.scrub"
               (Printf.sprintf
                  "dropped sample %d (%g Hz): non-finite frequency or entries"
                  i smp.freq);
             false
           end
           else if Hashtbl.mem seen smp.freq then begin
             Diag.record ~site:"sampling.scrub"
               (Printf.sprintf
                  "dropped sample %d: duplicate frequency %g Hz (first wins)" i
                  smp.freq);
             false
           end
           else begin
             Hashtbl.add seen smp.freq ();
             true
           end)
  in
  Array.of_list keep

let max_conjugate_mismatch sys freqs =
  Array.fold_left
    (fun acc f ->
      let pos = Descriptor.eval sys (Cx.jw (2. *. Float.pi *. f)) in
      let neg = Descriptor.eval sys (Cx.jw (-2. *. Float.pi *. f)) in
      Stdlib.max acc (Cmat.norm_fro (Cmat.sub neg (Cmat.conj pos))))
    0. freqs
