open Linalg

type t = { e : Cmat.t; a : Cmat.t; b : Cmat.t; c : Cmat.t; d : Cmat.t }

exception Singular_pencil of Cx.t

let create ~e ~a ~b ~c ~d =
  let n, n2 = Cmat.dims e in
  let na, na2 = Cmat.dims a in
  let nb, m = Cmat.dims b in
  let p, nc = Cmat.dims c in
  let pd, md = Cmat.dims d in
  if n <> n2 || na <> na2 || n <> na then
    invalid_arg "Descriptor.create: E and A must be square of equal size";
  if nb <> n then invalid_arg "Descriptor.create: B row count must match order";
  if nc <> n then invalid_arg "Descriptor.create: C column count must match order";
  if pd <> p || md <> m then
    invalid_arg "Descriptor.create: D must be (outputs x inputs)";
  { e; a; b; c; d }

let of_state_space ~a ~b ~c ~d =
  create ~e:(Cmat.identity (Cmat.rows a)) ~a ~b ~c ~d

let order sys = Cmat.rows sys.a
let inputs sys = Cmat.cols sys.b
let outputs sys = Cmat.rows sys.c

let eval sys s =
  if order sys = 0 then sys.d
  else begin
    (* [solve_robust] falls back to a column-pivoted QR least-squares
       solve on pivot breakdown (recording "lu.qr_fallback" in the
       ambient diagnostics), so evaluation at an exactly-singular point
       yields the finite minimum-norm response instead of raising. *)
    let pencil = Cmat.sub (Cmat.scale s sys.e) sys.a in
    Cmat.add (Cmat.mul sys.c (Lu.solve_robust pencil sys.b)) sys.d
  end

let eval_freq sys f = eval sys (Cx.jw (2. *. Float.pi *. f))
let dc_gain sys = eval sys Cx.zero

let is_real ?(tol = 1e-8) sys =
  let part m =
    let scale = Stdlib.max (Cmat.norm_fro m) 1e-300 in
    Cmat.max_imag m <= tol *. scale
  in
  part sys.e && part sys.a && part sys.b && part sys.c && part sys.d

let realify ?(tol = 1e-8) sys =
  let strip m = Cmat.of_real (Cmat.to_real ~tol m) in
  { e = strip sys.e; a = strip sys.a; b = strip sys.b; c = strip sys.c;
    d = strip sys.d }

let to_proper ?(rtol = 1e-11) sys =
  let n = order sys in
  if n = 0 then sys
  else begin
    let d = Svd.decompose sys.e in
    let r = Svd.rank ~rtol d in
    if r = n then sys
    else begin
      (* coordinates: x = V z, equations premultiplied by U^H:
         [Sigma_r z1'; 0] = U^H A V z + U^H B u *)
      let u = d.Svd.u and v = d.Svd.v in
      let at = Cmat.mul_cn u (Cmat.mul sys.a v) in
      let bt = Cmat.mul_cn u sys.b in
      let ct = Cmat.mul sys.c v in
      let a11 = Cmat.sub_matrix at ~r:0 ~c:0 ~rows:r ~cols:r in
      let a12 = Cmat.sub_matrix at ~r:0 ~c:r ~rows:r ~cols:(n - r) in
      let a21 = Cmat.sub_matrix at ~r ~c:0 ~rows:(n - r) ~cols:r in
      let a22 = Cmat.sub_matrix at ~r ~c:r ~rows:(n - r) ~cols:(n - r) in
      let b1 = Cmat.sub_matrix bt ~r:0 ~c:0 ~rows:r ~cols:(inputs sys) in
      let b2 = Cmat.sub_matrix bt ~r ~c:0 ~rows:(n - r) ~cols:(inputs sys) in
      let c1 = Cmat.sub_matrix ct ~r:0 ~c:0 ~rows:(outputs sys) ~cols:r in
      let c2 = Cmat.sub_matrix ct ~r:0 ~c:r ~rows:(outputs sys) ~cols:(n - r) in
      let a22f =
        match Lu.factorize a22 with
        | exception Lu.Singular _ ->
          invalid_arg
            "Descriptor.to_proper: algebraic block singular (index > 1)"
        | f -> f
      in
      (* z2 = -A22^{-1} (A21 z1 + B2 u) *)
      let s_a21 = Lu.solve a22f a21 in
      let s_b2 = Lu.solve a22f b2 in
      let e' =
        Cmat.init r r (fun i jcol ->
            if i = jcol then Cx.of_float d.Svd.sigma.(i) else Cx.zero)
      in
      let a' = Cmat.sub a11 (Cmat.mul a12 s_a21) in
      let b' = Cmat.sub b1 (Cmat.mul a12 s_b2) in
      let c' = Cmat.sub c1 (Cmat.mul c2 s_a21) in
      let d' = Cmat.sub sys.d (Cmat.mul c2 s_b2) in
      create ~e:e' ~a:a' ~b:b' ~c:c' ~d:d'
    end
  end

let save path sys =
  let oc = open_out path in
  let p = outputs sys and m = inputs sys and n = order sys in
  Printf.fprintf oc "mfti-descriptor-v1\n%d %d %d\n" n m p;
  let dump name mat =
    Printf.fprintf oc "%s\n" name;
    let rows, cols = Cmat.dims mat in
    for i = 0 to rows - 1 do
      for jcol = 0 to cols - 1 do
        let z = Cmat.get mat i jcol in
        if jcol > 0 then output_char oc ' ';
        Printf.fprintf oc "%.17g %.17g" z.Cx.re z.Cx.im
      done;
      output_char oc '\n'
    done
  in
  dump "E" sys.e;
  dump "A" sys.a;
  dump "B" sys.b;
  dump "C" sys.c;
  dump "D" sys.d;
  close_out oc

let load path =
  let ic = open_in path in
  let fail fmt = Printf.ksprintf (fun s -> close_in ic; failwith (path ^ ": " ^ s)) fmt in
  let line () = try input_line ic with End_of_file -> fail "unexpected end of file" in
  if String.trim (line ()) <> "mfti-descriptor-v1" then fail "bad header";
  let n, m, p =
    match String.split_on_char ' ' (String.trim (line ())) with
    | [ a; b; c ] ->
      (try (int_of_string a, int_of_string b, int_of_string c)
       with _ -> fail "bad dimensions")
    | _ -> fail "bad dimension line"
  in
  let read_matrix name rows cols =
    if String.trim (line ()) <> name then fail "expected matrix %s" name;
    Cmat.init rows cols (fun _ _ -> Cx.zero) |> fun mat ->
    for i = 0 to rows - 1 do
      let toks =
        String.split_on_char ' ' (String.trim (line ()))
        |> List.filter (fun s -> s <> "")
      in
      if List.length toks <> 2 * cols then
        fail "matrix %s row %d: expected %d numbers" name i (2 * cols);
      List.iteri
        (fun k tok ->
          match float_of_string_opt tok with
          | None -> fail "matrix %s row %d: bad number %S" name i tok
          | Some v ->
            let jcol = k / 2 in
            let z = Cmat.get mat i jcol in
            if k land 1 = 0 then Cmat.set mat i jcol { z with Cx.re = v }
            else Cmat.set mat i jcol { z with Cx.im = v })
        toks
    done;
    mat
  in
  let e = read_matrix "E" n n in
  let a = read_matrix "A" n n in
  let b = read_matrix "B" n m in
  let c = read_matrix "C" p n in
  let d = read_matrix "D" p m in
  close_in ic;
  create ~e ~a ~b ~c ~d

let pp ppf sys =
  Format.fprintf ppf "descriptor system: order %d, %d inputs, %d outputs%s"
    (order sys) (inputs sys) (outputs sys)
    (if is_real sys then " (real)" else " (complex)")
