(** Matrix vector fitting (Gustavsen–Semlyen) with common poles.

    The Table 1 baseline: iterative sigma/pole-relocation rational
    fitting of sampled frequency responses.  All least-squares problems
    use the real-coefficient basis of {!Basis}, so fitted models are
    real.  Pole identification stacks a configurable subset of matrix
    entries (fitting all [p*m] entries is the textbook method but is
    quadratically expensive; the diagonal subset is the standard
    engineering compromise) and eliminates the entry-local unknowns with
    a per-entry QR, keeping only the shared sigma block.  Residues are
    then identified for every entry against the final poles in one
    multi-RHS solve. *)

type entry_selection =
  | Diagonal          (** the [min(p,m)] diagonal entries *)
  | All               (** every entry (slow for many ports) *)
  | First of int      (** the first [q] entries in row-major order *)

type options = {
  n_poles : int;
  iterations : int;          (** sigma iterations (the paper uses 10) *)
  selection : entry_selection;
  enforce_stability : bool;  (** reflect unstable relocated poles *)
}

val default_options : options

type model = {
  basis : Basis.t;
      (** poles in *normalized* frequency [s' = s / w_scale]; use
          {!poles} for physical values *)
  coeffs : Linalg.Cmat.t array;
      (** one real [p x m] coefficient matrix per basis function *)
  d : Linalg.Cmat.t;         (** real [p x m] feedthrough *)
  w_scale : float;
      (** frequency normalization (rad/s): fitting runs with the band's
          upper edge at [|s'| = 1], the standard VF conditioning trick *)
}

type diagnostics = {
  iterations_run : int;
  pole_history : Linalg.Cx.t array array;  (** poles after each iteration *)
}

(** [fit ?options samples] runs the full loop.  Raises
    [Invalid_argument] on empty samples or non-positive frequencies. *)
val fit :
  ?options:options -> Statespace.Sampling.sample array -> model * diagnostics

(** Transfer-function evaluation [H(s) = D + sum coeffs_n phi_n(s)]. *)
val eval : model -> Linalg.Cx.t -> Linalg.Cmat.t

val eval_freq : model -> float -> Linalg.Cmat.t

(** Number of poles (the "reduced order" a VF user reports). *)
val order : model -> int

(** The conjugate-closed pole list. *)
val poles : model -> Linalg.Cx.t array

(** Real state-space realization of order [n_poles * m] (Gilbert form).
    Exact but large; intended for small fits fed to transient analysis. *)
val to_descriptor : model -> Statespace.Descriptor.t

(** Wrap as a sampled-error-compatible object: evaluates [eval_freq] on
    each sample frequency and reports the paper's ERR metric. *)
val err : model -> Statespace.Sampling.sample array -> float

(** [fit_model ?options samples] runs {!fit} and wraps the realized
    descriptor as a unified {!Mfti.Engine.Model.t} — same surface as the
    Loewner-framework fits (eval, poles, save, error metrics), with the
    sigma-iteration count in the model stats and the wall time under the
    ["fit"] timing key. *)
val fit_model :
  ?options:options -> Statespace.Sampling.sample array -> Mfti.Engine.Model.t
