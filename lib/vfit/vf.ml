open Linalg
open Statespace

type entry_selection =
  | Diagonal
  | All
  | First of int

type options = {
  n_poles : int;
  iterations : int;
  selection : entry_selection;
  enforce_stability : bool;
}

let default_options =
  { n_poles = 20; iterations = 10; selection = Diagonal;
    enforce_stability = true }

type model = {
  basis : Basis.t;        (* poles in normalized rad/s: s' = s / w_scale *)
  coeffs : Cmat.t array;
  d : Cmat.t;
  w_scale : float;        (* frequency normalization, rad/s *)
}

type diagnostics = {
  iterations_run : int;
  pole_history : Cx.t array array;
}

let validate samples =
  if Array.length samples = 0 then invalid_arg "Vf.fit: no samples";
  Array.iter
    (fun smp ->
      if smp.Sampling.freq <= 0. then
        invalid_arg "Vf.fit: frequencies must be positive")
    samples

let selected_entries selection ~p ~m =
  match selection with
  | Diagonal -> Array.init (Stdlib.min p m) (fun i -> (i, i))
  | All -> Array.init (p * m) (fun k -> (k / m, k mod m))
  | First q ->
    if q < 1 || q > p * m then invalid_arg "Vf.fit: bad First selection";
    Array.init q (fun k -> (k / m, k mod m))

(* Basis rows at every (normalized) sample point: k x n complex.  All
   fitting happens in normalized frequency s' = s / w_scale, the standard
   VF conditioning trick: poles, samples and basis entries stay O(1)
   even for multi-GHz bands. *)
let basis_rows basis ~w_scale samples =
  Array.map
    (fun smp ->
      Basis.row basis (Cx.jw (2. *. Float.pi *. smp.Sampling.freq /. w_scale)))
    samples

(* --- sigma (pole identification) step ------------------------------- *)

(* Relaxed vector fitting (Gustavsen 2006): the sigma function is
   sigma(s) = d~ + sum c~_n phi_n(s) with d~ a free unknown, and one
   extra equation keeps sum_k Re sigma(s_k) = k so the trivial
   sigma = 0 solution — the classic failure mode of non-relaxed VF on
   noisy data — is excluded.

   Per entry, build the realified block [A1 | A2] where A1 = [phi, 1]
   holds the entry-local unknowns (numerator coefficients) and
   A2 = [-h .* phi, -h] the shared sigma unknowns (c~, d~); the
   right-hand side is zero.  QR-eliminate the local block and return the
   trailing rows of the shared columns. *)
let entry_reduced_block rows h n =
  let k = Array.length rows in
  let cols = (2 * n) + 2 in
  let a = Cmat.zeros (2 * k) cols in
  for kk = 0 to k - 1 do
    let phi = rows.(kk) in
    let hv = h.(kk) in
    for nn = 0 to n - 1 do
      let p = phi.(nn) in
      Cmat.set a kk nn (Cx.of_float (Cx.re p));
      Cmat.set a (k + kk) nn (Cx.of_float (Cx.im p));
      let hp = Cx.mul hv p in
      Cmat.set a kk (n + 1 + nn) (Cx.of_float (-.Cx.re hp));
      Cmat.set a (k + kk) (n + 1 + nn) (Cx.of_float (-.Cx.im hp))
    done;
    Cmat.set a kk n Cx.one;  (* the d_e column: Re rows only *)
    (* the d~ column *)
    Cmat.set a kk ((2 * n) + 1) (Cx.of_float (-.Cx.re hv));
    Cmat.set a (k + kk) ((2 * n) + 1) (Cx.of_float (-.Cx.im hv))
  done;
  let f = Qr.factorize a in
  let r = Qr.r f in
  let rr = Cmat.rows r in
  let top = n + 1 in
  if rr <= top then None
  else
    Some
      (Cmat.sub_matrix r ~r:top ~c:top ~rows:(rr - top) ~cols:(n + 1))

let finite_matrix m =
  Array.for_all Float.is_finite (Cmat.unsafe_re m)
  && Array.for_all Float.is_finite (Cmat.unsafe_im m)

(* Least squares via truncated SVD.  VF systems routinely turn
   rank-deficient (clustered poles, over-parameterized fits); a plain QR
   solve then returns finite but wildly amplified coefficients, while the
   pseudoinverse gives the minimum-norm solution.  VF problem sizes are
   small enough that the SVD cost does not matter. *)
let robust_ls lhs rhs = Cmat.mul (Svd.pinv ~rtol:1e-11 lhs) rhs

(* Returns (c~, d~): the sigma coefficients and the relaxation constant. *)
let sigma_coefficients basis ~w_scale samples entries =
  let n = Basis.size basis in
  let k = Array.length samples in
  let rows = basis_rows basis ~w_scale samples in
  let blocks =
    Array.to_list entries
    |> List.filter_map (fun (i, jcol) ->
        let h =
          Array.map (fun smp -> Cmat.get smp.Sampling.s i jcol) samples
        in
        entry_reduced_block rows h n)
  in
  match blocks with
  | [] ->
    (* Over-parameterized: every entry's local unknowns absorb all of its
       equations, so the data says nothing about sigma.  The minimum-norm
       answer leaves the poles where they are. *)
    Logs.warn (fun l ->
        l "Vf: %d poles with too few samples: pole relocation is \
           information-free; keeping the current poles" n);
    (Array.make n 0., 1.)
  | blocks ->
    (* relaxation equation: w_r * (sum_k Re sigma(s_k)) = w_r * k,
       weighted to the RMS magnitude of the data rows *)
    let rms =
      let total = ref 0. and count = ref 0 in
      Array.iter
        (fun (i, jcol) ->
          Array.iter
            (fun smp ->
              total := !total +. Cx.abs2 (Cmat.get smp.Sampling.s i jcol);
              incr count)
            samples)
        entries;
      sqrt (!total /. float_of_int (Stdlib.max !count 1))
    in
    let w_r = rms /. float_of_int k in
    let relax = Cmat.zeros 1 (n + 1) in
    for nn = 0 to n - 1 do
      let acc = ref 0. in
      Array.iter (fun phi -> acc := !acc +. Cx.re phi.(nn)) rows;
      Cmat.set relax 0 nn (Cx.of_float (w_r *. !acc))
    done;
    Cmat.set relax 0 n (Cx.of_float (w_r *. float_of_int k));
    let stacked = List.fold_left Cmat.vcat relax blocks in
    let lhs = stacked in
    let rhs = Cmat.zeros (Cmat.rows stacked) 1 in
    (* the relaxation row ended up first *)
    Cmat.set rhs 0 0 (Cx.of_float (w_r *. float_of_int k));
    Logs.debug (fun l ->
        l "Vf sigma: lhs %dx%d finite=%b max=%.3e"
          (Cmat.rows lhs) (Cmat.cols lhs) (finite_matrix lhs)
          (Cmat.max_abs lhs));
    let x = robust_ls lhs rhs in
    let ctilde = Array.init n (fun i -> Cx.re (Cmat.get x i 0)) in
    let dtilde = Cx.re (Cmat.get x n 0) in
    (ctilde, dtilde)

(* A relocated pole landing on the imaginary axis sits on top of the
   sample points and makes the next basis matrix singular (infinite
   entries).  Clamp every pole to a minimum damping ratio. *)
let min_damping = 1e-6

let clamp_damping (basis : Basis.t) =
  let wscale =
    let ps = Basis.poles basis in
    if Array.length ps = 0 then 1.
    else
      Array.fold_left (fun acc p -> acc +. Cx.abs p) 0. ps
      /. float_of_int (Array.length ps)
  in
  let floor_for mag = -.(min_damping *. Stdlib.max mag (1e-3 *. wscale)) in
  { Basis.groups =
      Array.map
        (fun g ->
          match g with
          | Basis.Real a ->
            if a > floor_for (abs_float a) then Basis.Real (floor_for (abs_float a))
            else Basis.Real a
          | Basis.Pair p ->
            if Cx.re p > floor_for (Cx.abs p) then
              Basis.Pair (Cx.make (floor_for (Cx.abs p)) (Cx.im p))
            else Basis.Pair p)
        basis.Basis.groups }

let relocate basis (ctilde, dtilde) ~enforce =
  (* zeros of sigma = d~ + sum c~ phi are eig(A - b (c~/d~)^T); guard a
     vanishing d~ (Gustavsen recommends re-solving, clamping is enough
     at our scales) *)
  let scale_sol =
    Array.fold_left (fun a x -> Stdlib.max a (abs_float x)) 1e-8 ctilde
  in
  let d_eff =
    if abs_float dtilde < 1e-8 *. scale_sol then
      (if dtilde < 0. then -1e-8 *. scale_sol else 1e-8 *. scale_sol)
    else dtilde
  in
  let sigma = Array.map (fun c -> c /. d_eff) ctilde in
  let m = Basis.relocation_matrix basis sigma in
  let eigs = Eig.eigenvalues_real m in
  let scale = Rmat.norm_fro m +. 1e-300 in
  let snapped =
    Array.map
      (fun (p : Cx.t) ->
        if abs_float p.Cx.im <= 1e-12 *. scale then Cx.make p.Cx.re 0. else p)
      eigs
  in
  let groups = ref [] in
  Array.iter
    (fun (p : Cx.t) ->
      if p.Cx.im > 0. then groups := Basis.Pair p :: !groups
      else if p.Cx.im = 0. then groups := Basis.Real p.Cx.re :: !groups)
    snapped;
  let basis' = { Basis.groups = Array.of_list (List.rev !groups) } in
  let basis' = if enforce then Basis.enforce_stability basis' else basis' in
  clamp_damping basis'

(* --- residue identification ----------------------------------------- *)

let residue_matrices basis ~w_scale samples =
  let n = Basis.size basis in
  let k = Array.length samples in
  let p, m = Sampling.port_dims samples in
  let rows = basis_rows basis ~w_scale samples in
  let a = Cmat.zeros (2 * k) (n + 1) in
  for kk = 0 to k - 1 do
    let phi = rows.(kk) in
    for nn = 0 to n - 1 do
      Cmat.set a kk nn (Cx.of_float (Cx.re phi.(nn)));
      Cmat.set a (k + kk) nn (Cx.of_float (Cx.im phi.(nn)))
    done;
    Cmat.set a kk n Cx.one
  done;
  (* one multi-RHS solve for every entry *)
  let b = Cmat.zeros (2 * k) (p * m) in
  for i = 0 to p - 1 do
    for jcol = 0 to m - 1 do
      let col = (i * m) + jcol in
      for kk = 0 to k - 1 do
        let h = Cmat.get samples.(kk).Sampling.s i jcol in
        Cmat.set b kk col (Cx.of_float (Cx.re h));
        Cmat.set b (k + kk) col (Cx.of_float (Cx.im h))
      done
    done
  done;
  let x = robust_ls a b in
  let coeffs =
    Array.init n (fun nn ->
        Cmat.init p m (fun i jcol ->
            Cmat.get x nn ((i * m) + jcol)))
  in
  let d = Cmat.init p m (fun i jcol -> Cmat.get x n ((i * m) + jcol)) in
  (coeffs, d)

(* --- public API ------------------------------------------------------ *)

let fit ?(options = default_options) samples =
  validate samples;
  if options.n_poles < 1 then invalid_arg "Vf.fit: n_poles must be >= 1";
  if options.iterations < 0 then invalid_arg "Vf.fit: iterations must be >= 0";
  let p, m = Sampling.port_dims samples in
  let entries = selected_entries options.selection ~p ~m in
  let freqs = Array.map (fun s -> s.Sampling.freq) samples in
  let freq_lo = Array.fold_left Stdlib.min infinity freqs in
  let freq_hi = Array.fold_left Stdlib.max neg_infinity freqs in
  (* normalize so the band's upper edge sits at |s'| = 1 *)
  let w_scale = 2. *. Float.pi *. freq_hi in
  let basis =
    let two_pi = 2. *. Float.pi in
    ref (Basis.initial ~n:options.n_poles
           ~freq_lo:(freq_lo /. (freq_hi *. two_pi))
           ~freq_hi:(1. /. two_pi))
  in
  let physical_poles b = Array.map (Cx.scale w_scale) (Basis.poles b) in
  let history = ref [ physical_poles !basis ] in
  (* The per-entry elimination only constrains sigma when the entry-local
     unknowns (n+1) leave equations over: 2k > n + 1. *)
  let identifiable = 2 * Array.length samples > options.n_poles + 1 in
  if not identifiable then
    Logs.warn (fun k ->
        k "Vf: %d poles from %d samples is over-parameterized; skipping \
           pole relocation" options.n_poles (Array.length samples));
  if identifiable then begin
    let keep_going = ref true in
    let iter = ref 0 in
    while !keep_going && !iter < options.iterations do
      incr iter;
      let ctilde, dtilde = sigma_coefficients !basis ~w_scale samples entries in
      if Array.for_all Float.is_finite ctilde && Float.is_finite dtilde then begin
        basis := relocate !basis (ctilde, dtilde) ~enforce:options.enforce_stability;
        Logs.debug (fun l ->
            l "Vf iter %d: d~=%.3e, pole magnitudes up to %.3e" !iter dtilde
              (Array.fold_left (fun a p -> Stdlib.max a (Cx.abs p)) 0.
                 (Basis.poles !basis)));
        history := physical_poles !basis :: !history
      end
      else begin
        (* ill-conditioned sigma solve: freeze the poles rather than
           propagate NaNs into the relocation eigenproblem *)
        Logs.warn (fun k ->
            k "Vf: non-finite sigma solution at iteration %d; stopping \
               pole relocation early" !iter);
        keep_going := false
      end
    done
  end;
  let coeffs, d = residue_matrices !basis ~w_scale samples in
  ( { basis = !basis; coeffs; d; w_scale },
    { iterations_run = options.iterations;
      pole_history = Array.of_list (List.rev !history) } )

let eval model s =
  let phi = Basis.row model.basis (Cx.scale (1. /. model.w_scale) s) in
  let acc = ref (Cmat.map (fun x -> x) model.d) in
  Array.iteri
    (fun nn f -> acc := Cmat.add !acc (Cmat.scale f model.coeffs.(nn)))
    phi;
  !acc

let eval_freq model f = eval model (Cx.jw (2. *. Float.pi *. f))

let order model = Basis.size model.basis

let poles model =
  Array.map (Cx.scale model.w_scale) (Basis.poles model.basis)

let to_descriptor model =
  let p, m = Cmat.dims model.d in
  let blocks = ref [] in
  (* (a_block, b_block, c_block) per group, all real *)
  let pos = ref 0 in
  Array.iter
    (fun g ->
      (match g with
       | Basis.Real a ->
         let ab = Cmat.scale_float a (Cmat.identity m) in
         let bb = Cmat.identity m in
         let cb = model.coeffs.(!pos) in
         blocks := (ab, bb, cb) :: !blocks;
         incr pos
       | Basis.Pair pole ->
         let alpha = Cx.re pole and beta = Cx.im pole in
         let ab = Cmat.zeros (2 * m) (2 * m) in
         for i = 0 to m - 1 do
           Cmat.set ab i i (Cx.of_float alpha);
           Cmat.set ab i (m + i) (Cx.of_float beta);
           Cmat.set ab (m + i) i (Cx.of_float (-.beta));
           Cmat.set ab (m + i) (m + i) (Cx.of_float alpha)
         done;
         let bb = Cmat.vcat (Cmat.scale_float 2. (Cmat.identity m)) (Cmat.zeros m m) in
         let cb = Cmat.hcat model.coeffs.(!pos) model.coeffs.(!pos + 1) in
         blocks := (ab, bb, cb) :: !blocks;
         pos := !pos + 2))
    model.basis.Basis.groups;
  let blocks = List.rev !blocks in
  (* the basis lives in normalized frequency: H(s) = H'(s / w);
     realization-wise A = w A', B = w B'. *)
  let a =
    Cmat.scale_float model.w_scale
      (Cmat.blkdiag (List.map (fun (ab, _, _) -> ab) blocks))
  in
  let b =
    Cmat.scale_float model.w_scale
      (match List.map (fun (_, bb, _) -> bb) blocks with
       | [] -> Cmat.zeros 0 m
       | first :: rest -> List.fold_left Cmat.vcat first rest)
  in
  let c =
    match List.map (fun (_, _, cb) -> cb) blocks with
    | [] -> Cmat.zeros p 0
    | first :: rest -> List.fold_left Cmat.hcat first rest
  in
  Descriptor.of_state_space ~a ~b ~c ~d:model.d

let err model samples =
  let errs =
    Array.map
      (fun smp ->
        let h = eval_freq model smp.Sampling.freq in
        let denom = Svd.norm2 smp.Sampling.s in
        let num = Svd.norm2 (Cmat.sub h smp.Sampling.s) in
        if denom = 0. then num else num /. denom)
      samples
  in
  let k = Array.length errs in
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. errs)
  /. sqrt (float_of_int k)

let fit_model ?options samples =
  let t0 = Unix.gettimeofday () in
  let diagnostics = Linalg.Diag.create () in
  let model, diag =
    Linalg.Diag.using diagnostics (fun () ->
        let model, diag = fit ?options samples in
        Linalg.Diag.record ~site:"vf"
          (Printf.sprintf "converged pole set after %d sigma iterations"
             diag.iterations_run);
        (model, diag))
  in
  let dt = Unix.gettimeofday () -. t0 in
  let stats =
    { Mfti.Engine.Model.selected_units = Array.length samples;
      total_units = Array.length samples;
      iterations = diag.iterations_run;
      history = [||] }
  in
  Mfti.Engine.Model.make ~stats ~diagnostics ~timings:[ ("fit", dt) ]
    ~rank:(order model) (to_descriptor model)
