type factor = { lu : Cmat.t; piv : int array; swaps : int }

exception Singular of int

let factorize a =
  let n, n' = Cmat.dims a in
  if n <> n' then invalid_arg "Lu.factorize: matrix not square";
  let lu = Cmat.copy a in
  let re = Cmat.unsafe_re lu and im = Cmat.unsafe_im lu in
  let piv = Array.init n (fun i -> i) in
  let swaps = ref 0 in
  for k = 0 to n - 1 do
    (* Partial pivot: largest modulus in column k at or below the diagonal. *)
    let koff = k * n in
    let best = ref k and best_mag = ref 0. in
    for i = k to n - 1 do
      let mag = (re.(koff + i) *. re.(koff + i)) +. (im.(koff + i) *. im.(koff + i)) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag = 0. then raise (Singular k);
    if !best <> k then begin
      incr swaps;
      let p = !best in
      let tmp = piv.(k) in
      piv.(k) <- piv.(p);
      piv.(p) <- tmp;
      for jcol = 0 to n - 1 do
        let o = jcol * n in
        let tr = re.(o + k) and ti = im.(o + k) in
        re.(o + k) <- re.(o + p);
        im.(o + k) <- im.(o + p);
        re.(o + p) <- tr;
        im.(o + p) <- ti
      done
    end;
    (* Eliminate below the pivot. *)
    let pr = re.(koff + k) and pi = im.(koff + k) in
    let pmag = (pr *. pr) +. (pi *. pi) in
    for i = k + 1 to n - 1 do
      (* multiplier = a_ik / pivot *)
      let ar = re.(koff + i) and ai = im.(koff + i) in
      let mr = ((ar *. pr) +. (ai *. pi)) /. pmag in
      let mi = ((ai *. pr) -. (ar *. pi)) /. pmag in
      re.(koff + i) <- mr;
      im.(koff + i) <- mi;
      if mr <> 0. || mi <> 0. then
        for jcol = k + 1 to n - 1 do
          let o = jcol * n in
          let ur = re.(o + k) and ui = im.(o + k) in
          re.(o + i) <- re.(o + i) -. (mr *. ur) +. (mi *. ui);
          im.(o + i) <- im.(o + i) -. (mr *. ui) -. (mi *. ur)
        done
    done
  done;
  { lu; piv; swaps = !swaps }

let solve f b =
  let n = Cmat.rows f.lu in
  if Cmat.rows b <> n then invalid_arg "Lu.solve: dimension mismatch";
  let nrhs = Cmat.cols b in
  let x = Cmat.select_rows b f.piv in
  let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
  let re = Cmat.unsafe_re f.lu and im = Cmat.unsafe_im f.lu in
  for jcol = 0 to nrhs - 1 do
    let xoff = jcol * n in
    (* Forward substitution with unit-diagonal L. *)
    for k = 0 to n - 1 do
      let br = xr.(xoff + k) and bi = xi.(xoff + k) in
      if br <> 0. || bi <> 0. then begin
        let koff = k * n in
        for i = k + 1 to n - 1 do
          let lr = re.(koff + i) and li = im.(koff + i) in
          xr.(xoff + i) <- xr.(xoff + i) -. (lr *. br) +. (li *. bi);
          xi.(xoff + i) <- xi.(xoff + i) -. (lr *. bi) -. (li *. br)
        done
      end
    done;
    (* Back substitution with U. *)
    for k = n - 1 downto 0 do
      let koff = k * n in
      let ur = re.(koff + k) and ui = im.(koff + k) in
      let umag = (ur *. ur) +. (ui *. ui) in
      let br = xr.(xoff + k) and bi = xi.(xoff + k) in
      let sr = ((br *. ur) +. (bi *. ui)) /. umag in
      let si = ((bi *. ur) -. (br *. ui)) /. umag in
      xr.(xoff + k) <- sr;
      xi.(xoff + k) <- si;
      if sr <> 0. || si <> 0. then
        for i = 0 to k - 1 do
          let ar = re.(koff + i) and ai = im.(koff + i) in
          xr.(xoff + i) <- xr.(xoff + i) -. (ar *. sr) +. (ai *. si);
          xi.(xoff + i) <- xi.(xoff + i) -. (ar *. si) -. (ai *. sr)
        done
    done
  done;
  x

let solve_mat a b = solve (factorize a) b

(* First stage of the solve cascade: LU with partial pivoting; on pivot
   breakdown (exact zero pivot, or the [lu.singular] fault), fall back
   to a column-pivoted QR least-squares solve, which never divides by a
   sub-threshold pivot.  The fallback is recorded in the ambient
   diagnostics so callers can tell a clean solve from a degraded one. *)
let solve_robust a b =
  match
    Fault.check "lu.singular";
    factorize a
  with
  | f -> solve f b
  | exception (Singular k) ->
    Diag.record ~site:"lu.qr_fallback"
      (Printf.sprintf
         "zero pivot at elimination step %d; column-pivoted QR solve" k);
    Diag.incr_retries ();
    Qr.solve_cp (Qr.factorize_cp a) b
  | exception (Fault.Injected _) ->
    Diag.record ~site:"lu.qr_fallback"
      "injected pivot breakdown; column-pivoted QR solve";
    Diag.incr_retries ();
    Qr.solve_cp (Qr.factorize_cp a) b

let det f =
  let n = Cmat.rows f.lu in
  let acc = ref (if f.swaps land 1 = 1 then Cx.make (-1.) 0. else Cx.one) in
  for k = 0 to n - 1 do
    acc := Cx.mul !acc (Cmat.get f.lu k k)
  done;
  !acc

let inverse a =
  let n = Cmat.rows a in
  solve (factorize a) (Cmat.identity n)

let rcond_est a =
  match factorize a with
  | exception Singular _ -> 0.
  | f ->
    let n = Cmat.rows a in
    let inv = solve f (Cmat.identity n) in
    let denom = Cmat.norm_one a *. Cmat.norm_one inv in
    if denom = 0. then 0. else 1. /. denom
