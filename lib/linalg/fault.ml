(* Deterministic fault injection.

   A fault spec is a comma-separated list of site names, read once from
   the MFTI_FAULT environment variable (or set programmatically with
   [set_spec]).  Code under test sprinkles named injection points
   ([check] / [armed] / [poison]) at the places a production pipeline
   can break: parser token streams, matrix entries, iteration budgets,
   domain-pool workers.  When the site is armed, the injection fires on
   every visit — deterministically, with no clocks or randomness — so a
   failing scenario replays exactly.

   The spec lives in an [Atomic.t] because pool workers in other
   domains consult it ([pool.worker]); sites are plain strings so
   layers above linalg can add their own without touching this file. *)

exception Injected of string

let parse_spec s =
  String.split_on_char ',' s
  |> List.filter_map (fun tok ->
      let tok = String.trim tok in
      if tok = "" then None else Some tok)

(* [None] means "not yet read from the environment". *)
let spec : string list option Atomic.t = Atomic.make None

let current () =
  match Atomic.get spec with
  | Some sites -> sites
  | None ->
    let sites =
      match Sys.getenv_opt "MFTI_FAULT" with
      | None -> []
      | Some s -> parse_spec s
    in
    Atomic.set spec (Some sites);
    sites

let set_spec = function
  | None -> Atomic.set spec (Some [])
  | Some s -> Atomic.set spec (Some (parse_spec s))

let armed site = List.mem site (current ())

let check site = if armed site then raise (Injected site)

let poison site x = if armed site then Float.nan else x

let with_spec s f =
  let saved = Atomic.get spec in
  Atomic.set spec (Some (parse_spec s));
  Fun.protect ~finally:(fun () -> Atomic.set spec saved) f
