type event = { site : string; detail : string }

type t = {
  mutable condition : float option;
  mutable rank_gap : float option;
  mutable fallbacks : event list;
  mutable retries : int;
  mutable wall_time : float;
}

let create () =
  { condition = None; rank_gap = None; fallbacks = []; retries = 0;
    wall_time = 0. }

(* One ambient collector for the process, guarded by a mutex: deep
   numerics (an LU fallback inside a parallelized frequency sweep, a
   non-converging SVD) record events from whatever domain they run on,
   without every kernel threading a diagnostics parameter. *)
let lock = Mutex.create ()
let current : t option ref = ref None

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let record ~site detail =
  with_lock (fun () ->
      match !current with
      | None -> ()
      | Some d -> d.fallbacks <- { site; detail } :: d.fallbacks)

let incr_retries () =
  with_lock (fun () ->
      match !current with None -> () | Some d -> d.retries <- d.retries + 1)

let set_condition c =
  with_lock (fun () ->
      match !current with None -> () | Some d -> d.condition <- Some c)

let set_rank_gap g =
  with_lock (fun () ->
      match !current with None -> () | Some d -> d.rank_gap <- Some g)

let using d f =
  let saved = with_lock (fun () -> let s = !current in current := Some d; s) in
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      d.wall_time <- d.wall_time +. (Unix.gettimeofday () -. t0);
      with_lock (fun () -> current := saved))
    f

let with_collector f =
  let d = create () in
  let x = using d f in
  (x, d)

let events d = List.rev d.fallbacks
let fallback_count d = List.length d.fallbacks
let recorded d site = List.exists (fun e -> e.site = site) d.fallbacks

let summary d =
  let buf = Buffer.create 128 in
  (match d.condition with
   | Some c -> Buffer.add_string buf (Printf.sprintf "condition ~ %.3g" c)
   | None -> Buffer.add_string buf "condition n/a");
  (match d.rank_gap with
   | Some g -> Buffer.add_string buf (Printf.sprintf "; rank gap %.2f decades" g)
   | None -> ());
  let n = fallback_count d in
  if n = 0 then Buffer.add_string buf "; no fallbacks"
  else begin
    Buffer.add_string buf (Printf.sprintf "; %d fallback%s (" n
                             (if n = 1 then "" else "s"));
    let sites =
      List.sort_uniq compare (List.map (fun e -> e.site) (events d))
    in
    Buffer.add_string buf (String.concat ", " sites);
    Buffer.add_char buf ')'
  end;
  if d.retries > 0 then
    Buffer.add_string buf (Printf.sprintf "; %d retr%s" d.retries
                             (if d.retries = 1 then "y" else "ies"));
  Buffer.add_string buf (Printf.sprintf "; %.3f s" d.wall_time);
  Buffer.contents buf
