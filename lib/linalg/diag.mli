(** Diagnostics threaded through the fitting pipeline.

    A diagnostics record accumulates what the numerics actually did on
    a request: the condition estimate of the reduced pencil, the
    singular-value gap behind the rank decision, every fallback taken
    (LU to pivoted QR, Golub-Kahan to Jacobi, rank demotion, recursion
    guards, ...), the retry count, and the wall time.

    Collection is ambient: {!using} installs a record as the current
    collector, and the kernels call {!record} / {!set_condition} /
    {!incr_retries} from whatever domain they execute on (the store is
    mutex-guarded).  With no collector installed every call is a cheap
    no-op, so instrumented kernels cost nothing outside a fit. *)

type event = { site : string; detail : string }

type t = {
  mutable condition : float option;
      (** sigma_max / sigma_rank of the retained pencil block *)
  mutable rank_gap : float option;
      (** log10 drop at the chosen rank (decades) *)
  mutable fallbacks : event list;  (** newest first; see {!events} *)
  mutable retries : int;           (** numerical retries taken *)
  mutable wall_time : float;       (** seconds inside {!using} *)
}

val create : unit -> t

(** [using d f] runs [f] with [d] installed as the ambient collector,
    restoring the previous collector afterwards (also on exceptions)
    and adding the elapsed wall time to [d.wall_time].  Nesting is
    safe; the innermost collector receives the events. *)
val using : t -> (unit -> 'a) -> 'a

(** [with_collector f] = run [f] under a fresh record and return both. *)
val with_collector : (unit -> 'a) -> 'a * t

(** [record ~site detail] appends a fallback event to the ambient
    collector (no-op when none is installed).  Safe from any domain. *)
val record : site:string -> string -> unit

val incr_retries : unit -> unit
val set_condition : float -> unit
val set_rank_gap : float -> unit

val events : t -> event list
(** Oldest first. *)

val fallback_count : t -> int

(** [recorded d site] is true when an event with that site was taken. *)
val recorded : t -> string -> bool

(** One-line human-readable summary for logs / stderr. *)
val summary : t -> string
