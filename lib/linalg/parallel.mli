(** Persistent domain pool for the numerics kernels.

    A single process-wide pool of OCaml 5 domains executes chunked
    index-range loops.  The pool is created lazily on the first parallel
    call that can use it and persists across calls, so the per-call cost
    is one mutex/condition handshake rather than a domain spawn.

    Pool size comes from the [MFTI_DOMAINS] environment variable
    (default: [Domain.recommended_domain_count ()]).  A size of [1]
    means every loop runs inline in the calling domain — the fully
    sequential fallback the determinism tests compare against.

    Every kernel built on {!parallel_for} writes disjoint output
    elements and keeps the per-element operation order independent of
    the chunk decomposition, so results are bit-identical for any
    domain count.  {!parallel_for_reduce} combines per-chunk partials in
    chunk-index order with a chunk grid that does not depend on the
    domain count, so it too is deterministic. *)

(** Effective pool size: the value set by {!set_domain_count}, else
    [MFTI_DOMAINS], else [Domain.recommended_domain_count ()]. *)
val domain_count : unit -> int

(** [set_domain_count n] fixes the pool size to [n >= 1], shutting down
    any existing pool (its domains are joined).  Call only from the
    main domain while no parallel loop is in flight — intended for
    benchmarks and tests.  [set_domain_count 1] restores fully
    sequential execution. *)
val set_domain_count : int -> unit

(** [parallel_for ?chunk n f] runs [f lo hi] over subranges that
    exactly tile [0, n): every index is covered once.  [f] must only
    write state disjoint between ranges.  Runs inline as [f 0 n] when
    the pool size is 1, when called from inside another parallel loop
    (nested parallelism degrades gracefully), or under
    {!with_sequential}.  Default [chunk] splits [n] into about
    4 chunks per domain.  Exceptions raised by [f] are re-raised in the
    caller after the loop drains. *)
val parallel_for : ?chunk:int -> int -> (int -> int -> unit) -> unit

(** [parallel_for_result ~context ?chunk n f] is {!parallel_for} with a
    typed-error boundary: an exception escaping [f] (or the
    ["pool.worker"] injected fault) is returned as
    [Error (Mfti_error.of_exn ~context e)] instead of being re-raised.
    A failed call leaves the pool reusable — subsequent loops run
    normally. *)
val parallel_for_result :
  ?chunk:int -> context:string -> int -> (int -> int -> unit) ->
  (unit, Mfti_error.t) result

(** [parallel_for_reduce ?chunk ~neutral ~combine n f] evaluates
    [f lo hi] on each chunk and folds the per-chunk results with
    [combine], left to right in chunk-index order starting from
    [neutral].  The chunk grid defaults to at most 32 chunks and is
    independent of the domain count, so the fold order (hence the
    floating-point result) does not change with parallelism. *)
val parallel_for_reduce :
  ?chunk:int -> neutral:'a -> combine:('a -> 'a -> 'a) -> int ->
  (int -> int -> 'a) -> 'a

(** [with_sequential f] runs [f ()] with every parallel loop in this
    domain forced inline — the reference execution used by the
    determinism tests and the [domains = 1] benchmark arm. *)
val with_sequential : (unit -> 'a) -> 'a

(** [shutdown ()] joins and discards the pool (if any).  The next
    parallel call recreates it.  Exposed for benchmarks that want to
    exclude pool spin-up from a timed region boundary. *)
val shutdown : unit -> unit
