(** Structured error taxonomy for the whole fitting pipeline.

    Every public entry point that can fail offers a
    [('a, Mfti_error.t) result] variant; the raising forms wrap the
    value in the {!Error} exception.  The taxonomy distinguishes the
    questions a serving layer must answer: is the input malformed
    ([Parse]), is the request ill-posed ([Validation]), did the
    numerics break down ([Numerical_breakdown] / [Non_convergence]),
    or did a budget run out ([Budget_exhausted])? *)

type t =
  | Parse of { source : string option; line : int option; message : string }
      (** malformed input text (Touchstone body, model file, ...) *)
  | Validation of { context : string; message : string }
      (** structurally invalid request: wrong dimensions, odd sample
          count, non-finite sample entries, bad option values *)
  | Numerical_breakdown of {
      context : string;
      message : string;
      condition : float option;  (** condition estimate when known *)
    }  (** singular/rank-deficient/NaN-contaminated linear algebra *)
  | Non_convergence of {
      context : string;
      achieved : float;   (** residual or off-diagonal norm reached *)
      target : float;
      iterations : int;
    }  (** an iteration ran out of budget before reaching its target *)
  | Budget_exhausted of { context : string; budget : string }
      (** a wall-time / iteration / memory budget was exhausted *)
  | Fault_injected of { site : string }
      (** a {!Fault} injection point fired (test harness only) *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** sysexits-style process exit code: 64 (usage) for [Validation],
    65 (data) for [Parse], 70 (software) for numerical failures. *)
val exit_code : t -> int

(** [of_exn ~context e] maps an arbitrary exception to the taxonomy:
    {!Error} unwraps, [Fault.Injected] becomes [Fault_injected],
    [Invalid_argument] becomes [Validation], [Sys_error] becomes
    [Parse], everything else [Numerical_breakdown]. *)
val of_exn : context:string -> exn -> t

(** [guard ~context f] runs [f] and converts any escaping exception
    with {!of_exn}.  [Stack_overflow] / [Out_of_memory] map to
    [Budget_exhausted]. *)
val guard : context:string -> (unit -> 'a) -> ('a, t) result

(** [raise_error e] raises [Error e]. *)
val raise_error : t -> 'a
