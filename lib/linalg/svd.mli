(** Singular value decomposition of complex matrices,
    [A = U diag(s) V*] with [U] of size [m x min(m,n)], [s] descending,
    [V] of size [n x min(m,n)].

    Two backends (property-tested to agree at machine precision):
    one-sided Jacobi — simple, unconditionally convergent, high relative
    accuracy on the smallest singular values — and Golub–Kahan
    bidiagonalization with implicit-shift QR, roughly an order of
    magnitude faster at the pencil sizes the Loewner pipeline produces.
    The [Auto] default picks Jacobi below ~32 columns. *)

type t = {
  u : Cmat.t;      (** [m x k] left singular vectors, [k = min(m,n)] *)
  sigma : float array;  (** [k] singular values, descending *)
  v : Cmat.t;      (** [n x k] right singular vectors *)
}

exception No_convergence
(** The bidiagonal QR iteration failed to deflate within its budget.
    Not raised by {!decompose}: the [Auto] and [Golub_kahan] paths
    catch it and fall back to the Jacobi cascade, recording
    ["svd.gk.jacobi_fallback"] in the ambient {!Diag} collector.
    The Jacobi path itself never raises — on a blown sweep budget it
    extends the budget, then retries at a rescaled magnitude, and
    finally records the achieved off-diagonal norm
    (["svd.jacobi.non_convergence"]) and returns the degraded
    factorization.  The ["svd.no_converge"] fault collapses all these
    budgets so the whole cascade can be tested deterministically. *)

type algorithm =
  | Auto         (** Jacobi for small matrices, Golub-Kahan otherwise *)
  | Jacobi       (** unconditionally convergent, high relative accuracy *)
  | Blocked_jacobi
      (** same cascade and per-pair arithmetic as [Jacobi], but the
          circle-method tournament pairs column {e blocks}: each domain
          rotates a whole block pair per task, which amortizes the pool
          handshake that caps the column-pair scheduler at ~1x on the
          pencil sizes the reduce stage produces.  Bit-identical across
          domain counts; falls back to [Jacobi] below ~16 columns. *)
  | Golub_kahan  (** bidiagonalization + implicit QR; much faster *)

val decompose : ?algorithm:algorithm -> Cmat.t -> t

(** [reconstruct d] re-multiplies [U diag(s) V*] (for tests). *)
val reconstruct : t -> Cmat.t

(** [rank ~rtol d] counts singular values above [rtol * s.(0)]. *)
val rank : rtol:float -> t -> int

(** [rank_gap ?floor d] finds the split maximizing the log10 drop between
    consecutive singular values (the "sharp drop" of the paper's Fig. 1),
    ignoring values below [floor * s.(0)] (default [1e-13]).  Returns the
    number of values before the largest gap, or [Array.length sigma] when
    no significant gap exists. *)
val rank_gap : ?floor:float -> t -> int

(** [rank_of_values ~rtol sigma] is {!rank} over a bare descending
    spectrum (e.g. the truncated spectrum of a randomized SVD). *)
val rank_of_values : rtol:float -> float array -> int

(** [rank_gap_of_values ?floor ?tail_bound sigma] is {!rank_gap} over a
    bare descending spectrum.  [tail_bound] makes the rule safe on
    truncated spectra: it is a certified upper bound on every singular
    value the truncation cut off (sigma_{k+1} <= tail_bound), and the
    drop from the last retained value into that bound competes as a
    candidate gap — so a spectrum cut exactly at its cliff still
    reports the full retained count. *)
val rank_gap_of_values : ?floor:float -> ?tail_bound:float -> float array -> int

(** Spectral norm [s.(0)] (0 for empty matrices). *)
val norm2 : Cmat.t -> float

(** Moore–Penrose pseudoinverse with relative tolerance [rtol]
    (default [1e-12]). *)
val pinv : ?rtol:float -> Cmat.t -> Cmat.t

(** Singular values only (convenience wrapper). *)
val values : Cmat.t -> float array
