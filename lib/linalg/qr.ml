(* Householder QR.

   For each column x we pick beta = -exp(j arg x0) * |x| and u = x - beta e1.
   That phase makes u* x real, so H = I - 2 u u* / |u|^2 is Hermitian,
   unitary and maps x to beta e1.  We store v = u / u0 (so v0 = 1) packed
   below the diagonal, plus the real coefficient tau = 2 |u0|^2 / |u|^2:
   H = I - tau v v*. *)

type factor = { qr : Cmat.t; tau : float array; nref : int }

(* Compute the reflector for column k (rows k..m-1) and apply it to
   columns k+1..n-1: the shared step of the plain and column-pivoted
   factorizations. *)
let house_step re im ~m ~n ~k tau =
  begin
    let koff = k * m in
    (* norm of x = qr[k:m, k] *)
    let xnorm2 = ref 0. in
    for i = k to m - 1 do
      xnorm2 := !xnorm2 +. (re.(koff + i) *. re.(koff + i)) +. (im.(koff + i) *. im.(koff + i))
    done;
    let xnorm = Stdlib.sqrt !xnorm2 in
    if xnorm = 0. then tau.(k) <- 0.
    else begin
      let ar = re.(koff + k) and ai = im.(koff + k) in
      let amag = Stdlib.sqrt ((ar *. ar) +. (ai *. ai)) in
      (* beta = -exp(j arg a) * xnorm  (if a = 0 take arg = 0) *)
      let br, bi =
        if amag = 0. then (-.xnorm, 0.)
        else (-.xnorm *. ar /. amag, -.xnorm *. ai /. amag)
      in
      (* u0 = a - beta; |u|^2 = 2 (xnorm^2 + xnorm*|a|) *)
      let u0r = ar -. br and u0i = ai -. bi in
      let u0mag2 = (u0r *. u0r) +. (u0i *. u0i) in
      if u0mag2 = 0. then
        (* x is already beta e1 (or underflowed): nothing to reflect *)
        tau.(k) <- 0.
      else begin
      let unorm2 = 2. *. (!xnorm2 +. (xnorm *. amag)) in
      tau.(k) <- 2. *. u0mag2 /. unorm2;
      (* Normalize below-diagonal entries to v = u / u0. *)
      let inv = 1. /. u0mag2 in
      for i = k + 1 to m - 1 do
        let xr = re.(koff + i) and xi = im.(koff + i) in
        (* x / u0 = x * conj(u0) / |u0|^2 *)
        re.(koff + i) <- ((xr *. u0r) +. (xi *. u0i)) *. inv;
        im.(koff + i) <- ((xi *. u0r) -. (xr *. u0i)) *. inv
      done;
      re.(koff + k) <- br;
      im.(koff + k) <- bi;
      (* Apply H to the remaining columns: c -= tau * v * (v* c). *)
      for jcol = k + 1 to n - 1 do
        let joff = jcol * m in
        (* s = v* c with v0 = 1 *)
        let sr = ref re.(joff + k) and si = ref im.(joff + k) in
        for i = k + 1 to m - 1 do
          let vr = re.(koff + i) and vi = -.im.(koff + i) in
          let cr = re.(joff + i) and ci = im.(joff + i) in
          sr := !sr +. (vr *. cr) -. (vi *. ci);
          si := !si +. (vr *. ci) +. (vi *. cr)
        done;
        let sr = tau.(k) *. !sr and si = tau.(k) *. !si in
        re.(joff + k) <- re.(joff + k) -. sr;
        im.(joff + k) <- im.(joff + k) -. si;
        for i = k + 1 to m - 1 do
          let vr = re.(koff + i) and vi = im.(koff + i) in
          re.(joff + i) <- re.(joff + i) -. (vr *. sr) +. (vi *. si);
          im.(joff + i) <- im.(joff + i) -. (vr *. si) -. (vi *. sr)
        done
      done
      end
    end
  end

let factorize a =
  let m, n = Cmat.dims a in
  let qr = Cmat.copy a in
  let re = Cmat.unsafe_re qr and im = Cmat.unsafe_im qr in
  let nref = Stdlib.min m n in
  let tau = Array.make nref 0. in
  for k = 0 to nref - 1 do
    house_step re im ~m ~n ~k tau
  done;
  { qr; tau; nref }

(* ------------------------------------------------------------------ *)
(* Column-pivoted variant: at each step the column with the largest
   remaining (below-row-k) norm is swapped into position k, so the
   diagonal of R is non-increasing in magnitude and a numerical rank
   can be read off it.  Used as the fallback solver when LU pivoting
   breaks down; norms are recomputed exactly each step (O(m n^2)
   total — fine for a fallback path). *)

type factor_cp = {
  cp_qr : Cmat.t;
  cp_tau : float array;
  jpvt : int array;   (* cp_qr column j holds original column jpvt.(j) *)
  cp_nref : int;
}

let factorize_cp a =
  let m, n = Cmat.dims a in
  let qr = Cmat.copy a in
  let re = Cmat.unsafe_re qr and im = Cmat.unsafe_im qr in
  let nref = Stdlib.min m n in
  let tau = Array.make nref 0. in
  let jpvt = Array.init n (fun j -> j) in
  let tail_norm2 k jcol =
    let off = jcol * m in
    let acc = ref 0. in
    for i = k to m - 1 do
      acc := !acc +. (re.(off + i) *. re.(off + i)) +. (im.(off + i) *. im.(off + i))
    done;
    !acc
  in
  for k = 0 to nref - 1 do
    let best = ref k and best_norm = ref (tail_norm2 k k) in
    for jcol = k + 1 to n - 1 do
      let nrm = tail_norm2 k jcol in
      if nrm > !best_norm then begin
        best := jcol;
        best_norm := nrm
      end
    done;
    if !best <> k then begin
      let p = !best in
      let tmp = jpvt.(k) in
      jpvt.(k) <- jpvt.(p);
      jpvt.(p) <- tmp;
      let koff = k * m and poff = p * m in
      for i = 0 to m - 1 do
        let tr = re.(koff + i) and ti = im.(koff + i) in
        re.(koff + i) <- re.(poff + i);
        im.(koff + i) <- im.(poff + i);
        re.(poff + i) <- tr;
        im.(poff + i) <- ti
      done
    end;
    house_step re im ~m ~n ~k tau
  done;
  { cp_qr = qr; cp_tau = tau; jpvt; cp_nref = nref }

let r f =
  let m, n = Cmat.dims f.qr in
  let k = Stdlib.min m n in
  Cmat.init k n (fun i jcol -> if jcol >= i then Cmat.get f.qr i jcol else Cx.zero)

(* Apply one reflector H_k (Hermitian) to b in place. *)
let apply_reflector qr tau k b =
  let m = Cmat.rows qr in
  let re = Cmat.unsafe_re qr and im = Cmat.unsafe_im qr in
  let br = Cmat.unsafe_re b and bi = Cmat.unsafe_im b in
  let nrhs = Cmat.cols b in
  let koff = k * m in
  let t = tau.(k) in
  if t <> 0. then
    for jcol = 0 to nrhs - 1 do
      let joff = jcol * m in
      let sr = ref br.(joff + k) and si = ref bi.(joff + k) in
      for i = k + 1 to m - 1 do
        let vr = re.(koff + i) and vi = -.im.(koff + i) in
        let cr = br.(joff + i) and ci = bi.(joff + i) in
        sr := !sr +. (vr *. cr) -. (vi *. ci);
        si := !si +. (vr *. ci) +. (vi *. cr)
      done;
      let sr = t *. !sr and si = t *. !si in
      br.(joff + k) <- br.(joff + k) -. sr;
      bi.(joff + k) <- bi.(joff + k) -. si;
      for i = k + 1 to m - 1 do
        let vr = re.(koff + i) and vi = im.(koff + i) in
        br.(joff + i) <- br.(joff + i) -. (vr *. sr) +. (vi *. si);
        bi.(joff + i) <- bi.(joff + i) -. (vr *. si) -. (vi *. sr)
      done
    done

let apply_qh f b =
  let m = Cmat.rows f.qr in
  if Cmat.rows b <> m then invalid_arg "Qr.apply_qh: dimension mismatch";
  let x = Cmat.copy b in
  (* Q = H_0 ... H_{r-1}; each H Hermitian, so Q* = H_{r-1} ... H_0. *)
  for k = 0 to f.nref - 1 do
    apply_reflector f.qr f.tau k x
  done;
  x

let apply_q f b =
  let m = Cmat.rows f.qr in
  if Cmat.rows b <> m then invalid_arg "Qr.apply_q: dimension mismatch";
  let x = Cmat.copy b in
  for k = f.nref - 1 downto 0 do
    apply_reflector f.qr f.tau k x
  done;
  x

let thin_q f =
  let m, _ = Cmat.dims f.qr in
  let k = f.nref in
  let e = Cmat.init m k (fun i jcol -> if i = jcol then Cx.one else Cx.zero) in
  apply_q f e

let solve_ls a b =
  let m, n = Cmat.dims a in
  if m < n then invalid_arg "Qr.solve_ls: underdetermined system";
  if Cmat.rows b <> m then invalid_arg "Qr.solve_ls: rhs dimension mismatch";
  let f = factorize a in
  let qtb = apply_qh f b in
  let nrhs = Cmat.cols b in
  let x = Cmat.sub_matrix qtb ~r:0 ~c:0 ~rows:n ~cols:nrhs in
  let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
  let qre = Cmat.unsafe_re f.qr and qim = Cmat.unsafe_im f.qr in
  for jcol = 0 to nrhs - 1 do
    let joff = jcol * n in
    for k = n - 1 downto 0 do
      let koff = k * m in
      let ur = qre.(koff + k) and ui = qim.(koff + k) in
      let umag = (ur *. ur) +. (ui *. ui) in
      if umag = 0. then invalid_arg "Qr.solve_ls: rank-deficient matrix";
      let br = xr.(joff + k) and bi = xi.(joff + k) in
      let sr = ((br *. ur) +. (bi *. ui)) /. umag in
      let si = ((bi *. ur) -. (br *. ui)) /. umag in
      xr.(joff + k) <- sr;
      xi.(joff + k) <- si;
      for i = 0 to k - 1 do
        let ar = qre.(koff + i) and ai = qim.(koff + i) in
        xr.(joff + i) <- xr.(joff + i) -. (ar *. sr) +. (ai *. si);
        xi.(joff + i) <- xi.(joff + i) -. (ar *. si) -. (ai *. sr)
      done
    done
  done;
  x

let orthonormalize a =
  let m, n = Cmat.dims a in
  if m < n then invalid_arg "Qr.orthonormalize: more columns than rows";
  thin_q (factorize a)

(* Rank-truncated least-squares solve from a column-pivoted factor:
   back-substitute the leading r x r triangle (r = numerical rank read
   off the pivoted diagonal of R), zero the remaining permuted
   unknowns, un-permute.  Never divides by a sub-threshold pivot, so a
   singular system yields a finite minimum-residual-style solution
   instead of an exception — the terminal stage of the LU fallback
   cascade. *)
let solve_cp ?(rtol = 1e-12) f b =
  let m, n = Cmat.dims f.cp_qr in
  if Cmat.rows b <> m then invalid_arg "Qr.solve_cp: rhs dimension mismatch";
  let qtb = Cmat.copy b in
  for k = 0 to f.cp_nref - 1 do
    apply_reflector f.cp_qr f.cp_tau k qtb
  done;
  let re = Cmat.unsafe_re f.cp_qr and im = Cmat.unsafe_im f.cp_qr in
  let diag_mag k = Float.hypot re.((k * m) + k) im.((k * m) + k) in
  let d0 = if f.cp_nref > 0 then diag_mag 0 else 0. in
  let rank = ref 0 in
  (try
     for k = 0 to f.cp_nref - 1 do
       let d = diag_mag k in
       if Float.is_finite d && d > rtol *. d0 then incr rank else raise Exit
     done
   with Exit -> ());
  let r = !rank in
  let nrhs = Cmat.cols b in
  let y = Cmat.zeros n nrhs in
  let yr = Cmat.unsafe_re y and yi = Cmat.unsafe_im y in
  let qtbr = Cmat.unsafe_re qtb and qtbi = Cmat.unsafe_im qtb in
  for jcol = 0 to nrhs - 1 do
    let boff = jcol * m and yoff = jcol * n in
    for k = 0 to r - 1 do
      yr.(yoff + k) <- qtbr.(boff + k);
      yi.(yoff + k) <- qtbi.(boff + k)
    done;
    for k = r - 1 downto 0 do
      let koff = k * m in
      let ur = re.(koff + k) and ui = im.(koff + k) in
      let umag = (ur *. ur) +. (ui *. ui) in
      let br = yr.(yoff + k) and bi = yi.(yoff + k) in
      let sr = ((br *. ur) +. (bi *. ui)) /. umag in
      let si = ((bi *. ur) -. (br *. ui)) /. umag in
      yr.(yoff + k) <- sr;
      yi.(yoff + k) <- si;
      for i = 0 to k - 1 do
        let ar = re.(koff + i) and ai = im.(koff + i) in
        yr.(yoff + i) <- yr.(yoff + i) -. (ar *. sr) +. (ai *. si);
        yi.(yoff + i) <- yi.(yoff + i) -. (ar *. si) -. (ai *. sr)
      done
    done
  done;
  let x = Cmat.zeros n nrhs in
  let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
  for jcol = 0 to nrhs - 1 do
    let off = jcol * n in
    for k = 0 to n - 1 do
      xr.(off + f.jpvt.(k)) <- yr.(off + k);
      xi.(off + f.jpvt.(k)) <- yi.(off + k)
    done
  done;
  x
