(** Dense complex matrices.

    The real and imaginary parts are stored in two separate column-major
    [float array]s, which keeps every arithmetic kernel on unboxed floats
    (a boxed [Complex.t array array] is several times slower and GC-heavy
    at the sizes the Loewner pipeline produces).  Indices are zero-based.

    Vectors are represented as [n x 1] matrices throughout the library. *)

type t = private { rows : int; cols : int; re : float array; im : float array }

val create : int -> int -> t
val zeros : int -> int -> t
val init : int -> int -> (int -> int -> Cx.t) -> t
val identity : int -> t

(** [scalar z] is the 1x1 matrix [[z]]. *)
val scalar : Cx.t -> t

(** [of_rows [[a;b];[c;d]]] builds from row lists of complex entries. *)
val of_rows : Cx.t list list -> t

(** [of_real r] embeds a real matrix ([im = 0]). *)
val of_real : Rmat.t -> t

(** [of_parts re im] combines real and imaginary parts (same dims). *)
val of_parts : Rmat.t -> Rmat.t -> t

(** [col_vector [| ... |]] is an [n x 1] matrix. *)
val col_vector : Cx.t array -> t

(** [row_vector [| ... |]] is a [1 x n] matrix. *)
val row_vector : Cx.t array -> t

(** Entries i.i.d. standard complex Gaussian. *)
val random : Rng.t -> int -> int -> t

(** Real Gaussian entries (imaginary part zero). *)
val random_real : Rng.t -> int -> int -> t

val dims : t -> int * int
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cx.t
val set : t -> int -> int -> Cx.t -> unit
val copy : t -> t
val map : (Cx.t -> Cx.t) -> t -> t
val mapi : (int -> int -> Cx.t -> Cx.t) -> t -> t
val iteri : (int -> int -> Cx.t -> unit) -> t -> unit
val transpose : t -> t

(** Conjugate (Hermitian) transpose [A*]. *)
val ctranspose : t -> t

val conj : t -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Cx.t -> t -> t
val scale_float : float -> t -> t

(** Matrix product.  Small products use a scalar kernel; above roughly
    [32^3] multiply-adds a cache-blocked kernel takes over: the left
    operand is packed as [conj(A)^T], the outer loop over result
    columns is distributed across the {!Parallel} domain pool, and the
    per-entry dot products run in a vectorized C microkernel.  Results
    are independent of the domain count (identical chunking-invariant
    per-entry reductions), though not bit-identical to the scalar
    reference — agreement is at rounding level (relative [1e-15]ish). *)
val mul : t -> t -> t

(** [mul_cn a b] is [ctranspose a * b] without forming the transpose.
    Same small/blocked dispatch as {!mul}. *)
val mul_cn : t -> t -> t

(** The pre-blocking scalar kernels, exported as the benchmark baseline
    (and used internally as the small-size fast path). *)
val mul_reference : t -> t -> t

val mul_cn_reference : t -> t -> t

(** [axpy alpha x y] returns [alpha*x + y]. *)
val axpy : Cx.t -> t -> t -> t

val col : t -> int -> t
val row : t -> int -> t
val set_col : t -> int -> t -> unit
val set_row : t -> int -> t -> unit
val sub_matrix : t -> r:int -> c:int -> rows:int -> cols:int -> t
val set_sub : t -> r:int -> c:int -> t -> unit

(** [select_rows a idx] keeps the listed rows, in order. *)
val select_rows : t -> int array -> t

val select_cols : t -> int array -> t
val hcat : t -> t -> t
val vcat : t -> t -> t

(** [blocks [[a;b];[c;d]]] assembles a block matrix. *)
val blocks : t list list -> t

(** Block-diagonal assembly. *)
val blkdiag : t list -> t

val trace : t -> Cx.t
val norm_fro : t -> float

(** Largest entry modulus. *)
val max_abs : t -> float

(** Spectral norm estimate is in {!Svd}; [norm_one] is the max column sum. *)
val norm_one : t -> float

(** True when every entry is finite (no NaN / infinity in either part). *)
val is_finite : t -> bool

(** Euclidean norm of an [n x 1] or [1 x n] matrix. *)
val vec_norm : t -> float

(** Hermitian inner product [x* y] of two vectors (as 1x1 matrices' entry). *)
val vec_dot : t -> t -> Cx.t

val real_part : t -> Rmat.t
val imag_part : t -> Rmat.t

(** Largest absolute imaginary entry — for "is this numerically real?". *)
val max_imag : t -> float

(** [to_real ~tol a] drops the imaginary part after checking it is below
    [tol] relative to the Frobenius norm.  Raises [Invalid_argument]
    otherwise. *)
val to_real : tol:float -> t -> Rmat.t

val equal : tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Unsafe raw access used by the factorization kernels in this library.
    [idx i j = i + j*rows]. *)
val unsafe_re : t -> float array

val unsafe_im : t -> float array
