(* Persistent domain pool.

   One pool for the whole process.  Jobs are chunked index ranges of a
   single [int -> int -> unit] task; the submitting domain participates
   in chunk consumption, so a pool of size n uses n domains total
   (n - 1 spawned workers).  Workers park on a condition variable
   between jobs; a job submission bumps [generation] and broadcasts.

   Chunks are handed out under the pool mutex.  The kernels built on
   top use coarse chunks (a handful per domain), so the lock is cold. *)

let env_domains () =
  match Sys.getenv_opt "MFTI_DOMAINS" with
  | None -> Domain.recommended_domain_count ()
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ ->
       invalid_arg
         (Printf.sprintf "MFTI_DOMAINS=%S: expected a positive integer" s))

type pool = {
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable task : int -> int -> unit;
  mutable next : int;
  mutable limit : int;
  mutable chunk : int;
  mutable active : int;       (* chunks currently executing *)
  mutable failure : exn option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* True while this domain is executing pool chunks: nested parallel
   loops (e.g. a matrix product inside a parallelized frequency sweep)
   run inline instead of deadlocking on the busy pool. *)
let inside_task = Domain.DLS.new_key (fun () -> ref false)
let forced_sequential = Domain.DLS.new_key (fun () -> ref false)

(* Drain chunks of the current job.  Called with [p.mutex] held;
   returns with it held.  Completion is tracked per chunk ([active]),
   not per worker, so a worker that starts late — or sleeps through a
   whole generation — can never stall a job. *)
let consume p =
  let inside = Domain.DLS.get inside_task in
  while p.next < p.limit do
    let lo = p.next in
    let hi = Stdlib.min p.limit (lo + p.chunk) in
    p.next <- hi;
    p.active <- p.active + 1;
    Mutex.unlock p.mutex;
    inside := true;
    (try
       (* deterministic injection point for the pool layer: proves a
          worker-side exception surfaces as a typed error at the
          submitting call without deadlocking or poisoning the pool *)
       Fault.check "pool.worker";
       p.task lo hi
     with e ->
       Mutex.lock p.mutex;
       if p.failure = None then p.failure <- Some e;
       (* poison the remaining range so the job drains fast *)
       p.next <- p.limit;
       Mutex.unlock p.mutex);
    inside := false;
    Mutex.lock p.mutex;
    p.active <- p.active - 1
  done;
  if p.active = 0 then Condition.broadcast p.finished

let worker p () =
  Mutex.lock p.mutex;
  let last_gen = ref 0 in
  let rec loop () =
    while (not p.stop) && p.generation = !last_gen do
      Condition.wait p.work p.mutex
    done;
    if p.stop then Mutex.unlock p.mutex
    else begin
      last_gen := p.generation;
      consume p;
      loop ()
    end
  in
  loop ()

let requested_size = ref None
let the_pool : pool option ref = ref None

let domain_count () =
  match !requested_size with Some n -> n | None -> env_domains ()

let make_pool size =
  let p =
    { mutex = Mutex.create (); work = Condition.create ();
      finished = Condition.create (); generation = 0;
      task = (fun _ _ -> ()); next = 0; limit = 0; chunk = 1;
      active = 0; failure = None; stop = false; workers = [] }
  in
  p.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker p));
  p

let shutdown () =
  match !the_pool with
  | None -> ()
  | Some p ->
    Mutex.lock p.mutex;
    p.stop <- true;
    Condition.broadcast p.work;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.workers;
    the_pool := None

let set_domain_count n =
  if n < 1 then invalid_arg "Parallel.set_domain_count: need n >= 1";
  shutdown ();
  requested_size := Some n

let get_pool () =
  match !the_pool with
  | Some p -> p
  | None ->
    let p = make_pool (domain_count ()) in
    the_pool := Some p;
    p

let sequential_here () =
  !(Domain.DLS.get forced_sequential) || !(Domain.DLS.get inside_task)

let with_sequential f =
  let flag = Domain.DLS.get forced_sequential in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let run_pool p n task chunk =
  Mutex.lock p.mutex;
  p.generation <- p.generation + 1;
  p.task <- task;
  p.next <- 0;
  p.limit <- n;
  p.chunk <- chunk;
  p.active <- 0;
  p.failure <- None;
  Condition.broadcast p.work;
  consume p;
  while p.active > 0 do
    Condition.wait p.finished p.mutex
  done;
  let failure = p.failure in
  p.task <- (fun _ _ -> ());
  Mutex.unlock p.mutex;
  match failure with Some e -> raise e | None -> ()

let default_chunk n size = Stdlib.max 1 ((n + (4 * size) - 1) / (4 * size))

(* The inline paths arm the same fault site as the pool workers so the
   [pool.worker] scenario behaves identically at any domain count. *)
let run_inline n f =
  Fault.check "pool.worker";
  f 0 n

let parallel_for ?chunk n f =
  if n > 0 then begin
    let size = domain_count () in
    if size <= 1 || sequential_here () then run_inline n f
    else begin
      let chunk =
        match chunk with
        | Some c when c >= 1 -> c
        | Some _ -> invalid_arg "Parallel.parallel_for: chunk must be >= 1"
        | None -> default_chunk n size
      in
      if chunk >= n then run_inline n f else run_pool (get_pool ()) n f chunk
    end
  end

(* Typed-error boundary for callers that prefer results over exceptions:
   any exception escaping the loop body — including injected faults and
   worker-side failures re-raised by the pool — is classified into the
   {!Mfti_error.t} taxonomy instead of unwinding the caller. *)
let parallel_for_result ?chunk ~context n f =
  match parallel_for ?chunk n f with
  | () -> Ok ()
  | exception e -> Error (Mfti_error.of_exn ~context e)

let parallel_for_reduce ?chunk ~neutral ~combine n f =
  if n <= 0 then neutral
  else begin
    (* The chunk grid must not depend on the domain count: partials are
       combined in chunk order, so a fixed grid keeps the fold (and its
       floating-point rounding) identical for any parallelism. *)
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Parallel.parallel_for_reduce: chunk must be >= 1"
      | None -> Stdlib.max 1 ((n + 31) / 32)
    in
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks = 1 then combine neutral (f 0 n)
    else begin
      let partials = Array.make nchunks neutral in
      parallel_for ~chunk:1 nchunks (fun lo hi ->
          for c = lo to hi - 1 do
            let clo = c * chunk in
            let chi = Stdlib.min n (clo + chunk) in
            partials.(c) <- f clo chi
          done);
      Array.fold_left combine neutral partials
    end
  end
