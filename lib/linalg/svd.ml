type t = { u : Cmat.t; sigma : float array; v : Cmat.t }

let max_sweeps = 60
let conv_tol = 1e-15

(* Rotate columns p,q of a matrix with raw arrays (rows = len):
   new_p = c*col_p - (sr + j si)*col_q ; new_q = s*col_p + (cr + j ci)*col_q
   where the second column coefficients carry the phase. *)
let rotate re im len p q c s phr phi =
  (* coefficients: col_p' = c*col_p - s*e^{-j phase}*col_q
                   col_q' = s*col_p + c*e^{-j phase}*col_q
     with e^{-j phase} = phr - j phi  (phr,phi = cos,sin of phase) *)
  let poff = p * len and qoff = q * len in
  let er = phr and ei = -.phi in
  for i = 0 to len - 1 do
    let pr = re.(poff + i) and pi = im.(poff + i) in
    let qr = re.(qoff + i) and qi = im.(qoff + i) in
    (* eq = e^{-j phase} * col_q entry *)
    let eqr = (er *. qr) -. (ei *. qi) in
    let eqi = (er *. qi) +. (ei *. qr) in
    re.(poff + i) <- (c *. pr) -. (s *. eqr);
    im.(poff + i) <- (c *. pi) -. (s *. eqi);
    re.(qoff + i) <- (s *. pr) +. (c *. eqr);
    im.(qoff + i) <- (s *. pi) +. (c *. eqi)
  done

(* b_p^H b_q over raw column-major arrays. *)
let col_dot br bi m p q =
  let poff = p * m and qoff = q * m in
  let accr = ref 0. and acci = ref 0. in
  for i = 0 to m - 1 do
    let ar = br.(poff + i) and ai = -.bi.(poff + i) in
    let cr = br.(qoff + i) and ci = bi.(qoff + i) in
    accr := !accr +. (ar *. cr) -. (ai *. ci);
    acci := !acci +. (ar *. ci) +. (ai *. cr)
  done;
  (!accr, !acci)

(* One Jacobi step on column pair (p < q): Gram dot, rotation of b and
   v, exact analytic update of the cached squared norms.  Returns the
   relative off-diagonal seen.  Shared by the column-pair and the
   blocked schedulers — both therefore perform identical per-pair
   arithmetic; only the visiting order differs. *)
let jacobi_pair br bi vr vi m nv norms p q =
  let app = norms.(p) and aqq = norms.(q) in
  if app > 0. && aqq > 0. then begin
    let dr, di = col_dot br bi m p q in
    let alpha = Stdlib.sqrt ((dr *. dr) +. (di *. di)) in
    let rel = alpha /. Stdlib.sqrt (app *. aqq) in
    if rel > conv_tol then begin
      (* phase of apq *)
      let phr = dr /. alpha and phi = di /. alpha in
      (* real symmetric 2x2 [[app, alpha], [alpha, aqq]] *)
      let theta = (aqq -. app) /. (2. *. alpha) in
      let tparam =
        let sign = if theta >= 0. then 1. else -1. in
        sign /. (abs_float theta +. Stdlib.sqrt (1. +. (theta *. theta)))
      in
      let c = 1. /. Stdlib.sqrt (1. +. (tparam *. tparam)) in
      let s = tparam *. c in
      rotate br bi m p q c s phr phi;
      rotate vr vi nv p q c s phr phi;
      (* rotated Gram diagonal: exact update of the two norms *)
      let cs2 = 2. *. c *. s *. alpha in
      let c2 = c *. c and s2 = s *. s in
      norms.(p) <- (c2 *. app) -. cs2 +. (s2 *. aqq);
      norms.(q) <- (s2 *. app) +. cs2 +. (c2 *. aqq)
    end;
    rel
  end
  else 0.

let col_norm2_direct br bi m jcol =
  let off = jcol * m in
  let acc = ref 0. in
  for i = 0 to m - 1 do
    acc := !acc +. (br.(off + i) *. br.(off + i)) +. (bi.(off + i) *. bi.(off + i))
  done;
  !acc

(* One-sided Jacobi on the columns of b (m x n, m >= 1), accumulating the
   rotations into v (n x n).  After convergence the columns of b are
   mutually orthogonal; their norms are the singular values.  Returns
   the worst relative off-diagonal seen in the last sweep (<= conv_tol
   when converged), so callers can grant more budget or report the
   achieved orthogonality instead of failing. *)
let jacobi_orthogonalize ?(sweeps = max_sweeps) b v =
  let m, n = Cmat.dims b in
  let br = Cmat.unsafe_re b and bi = Cmat.unsafe_im b in
  let vr = Cmat.unsafe_re v and vi = Cmat.unsafe_im v in
  let nv = Cmat.rows v in
  (* Column norms are cached and updated analytically after each rotation
     (the rotated 2x2 Gram diagonal), then refreshed at the start of every
     sweep to stop floating-point drift. *)
  let norms = Array.make n 0. in
  let refresh_norms () =
    for jcol = 0 to n - 1 do
      norms.(jcol) <- col_norm2_direct br bi m jcol
    done
  in
  (* One sweep visits every unordered column pair once, scheduled as
     the circle-method round-robin tournament: n' - 1 rounds of
     [n' / 2] disjoint pairs (a dummy player pads odd n).  Pairs within
     a round touch disjoint columns — and disjoint [norms] entries — so
     their dots and rotations run concurrently on the domain pool.
     The pairing schedule and the per-pair arithmetic are fixed
     independently of the chunk decomposition, so the factorization is
     bit-identical for any domain count. *)
  let sweep () =
    refresh_norms ();
    let worst = ref 0. in
    let n' = if n land 1 = 0 then n else n + 1 in
    let npairs = n' / 2 in
    let perm = Array.init n' (fun i -> i) in
    let round_rel = Array.make npairs 0. in
    let dc = Parallel.domain_count () in
    (* below this much work per round the pool handshake dominates;
       [chunk = npairs] makes the loop run inline in the caller *)
    let chunk =
      if m * npairs < 16384 then npairs
      else Stdlib.max 1 ((npairs + dc - 1) / dc)
    in
    for _round = 0 to n' - 2 do
      Parallel.parallel_for ~chunk npairs (fun lo hi ->
          for idx = lo to hi - 1 do
            let a = perm.(idx) and b = perm.(n' - 1 - idx) in
            round_rel.(idx) <-
              (if a < n && b < n then
                 jacobi_pair br bi vr vi m nv norms
                   (Stdlib.min a b) (Stdlib.max a b)
               else 0.)
          done);
      for idx = 0 to npairs - 1 do
        if round_rel.(idx) > !worst then worst := round_rel.(idx)
      done;
      (* advance the tournament: hold position 0, rotate the rest *)
      let last = perm.(n' - 1) in
      for i = n' - 1 downto 2 do
        perm.(i) <- perm.(i - 1)
      done;
      perm.(1) <- last
    done;
    !worst
  in
  let rec loop k acc =
    if k >= sweeps then acc
    else
      let worst = sweep () in
      if worst > conv_tol then loop (k + 1) worst else worst
  in
  loop 0 0.

(* ------------------------------------------------------------------ *)
(* Blocked one-sided Jacobi.

   The column-pair scheduler above parallelizes one round of [n/2]
   disjoint pairs at a time; each pair is O(m) work, so for the pencil
   sizes the reduce stage produces the pool handshake and the
   per-round barrier dominate — BENCH_kernels measured 1.05x at
   4 domains.  Here the tournament pairs column *blocks* instead:
   an intra pass orthogonalizes the pairs inside each block (blocks
   are column-disjoint, so they run concurrently), then nb - 1 rounds
   pair the blocks and each block pair rotates its bs x bs cross
   pairs sequentially inside one task.  Per-task work rises from
   O(m) to O(bs^2 m), which is what actually amortizes the pool
   handshake.  Every unordered column pair is still visited exactly
   once per sweep, so convergence behaves like the cyclic method.

   The block size is fixed (independent of the domain count) and the
   per-pair arithmetic is [jacobi_pair], so the factorization is
   bit-identical for any domain count — the determinism contract of
   the rest of the kernel layer. *)

let jacobi_block_cols = 8

let jacobi_orthogonalize_blocked ?(sweeps = max_sweeps) b v =
  let m, n = Cmat.dims b in
  let bs = jacobi_block_cols in
  if n <= 2 * bs then jacobi_orthogonalize ~sweeps b v
  else begin
    let br = Cmat.unsafe_re b and bi = Cmat.unsafe_im b in
    let vr = Cmat.unsafe_re v and vi = Cmat.unsafe_im v in
    let nv = Cmat.rows v in
    let norms = Array.make n 0. in
    let refresh_norms () =
      for jcol = 0 to n - 1 do
        norms.(jcol) <- col_norm2_direct br bi m jcol
      done
    in
    let nb = (n + bs - 1) / bs in
    let nb' = if nb land 1 = 0 then nb else nb + 1 in
    let block_lo k = k * bs in
    let block_hi k = Stdlib.min n ((k + 1) * bs) in
    let sweep () =
      refresh_norms ();
      let worst = ref 0. in
      (* intra pass: all pairs inside each block, blocks concurrent *)
      let intra_rel = Array.make nb 0. in
      Parallel.parallel_for ~chunk:1 nb (fun lo hi ->
          for k = lo to hi - 1 do
            let c0 = block_lo k and c1 = block_hi k in
            let w = ref 0. in
            for p = c0 to c1 - 1 do
              for q = p + 1 to c1 - 1 do
                let rel = jacobi_pair br bi vr vi m nv norms p q in
                if rel > !w then w := rel
              done
            done;
            intra_rel.(k) <- !w
          done);
      Array.iter (fun r -> if r > !worst then worst := r) intra_rel;
      (* block tournament: each round rotates disjoint block pairs *)
      let npairs = nb' / 2 in
      let perm = Array.init nb' (fun i -> i) in
      let round_rel = Array.make npairs 0. in
      (* a round's work is ~ m * bs^2 per pair; below the same budget
         the column scheduler uses, run the round inline *)
      let chunk = if m * npairs * bs * bs < 16384 then npairs else 1 in
      for _round = 0 to nb' - 2 do
        Parallel.parallel_for ~chunk npairs (fun lo hi ->
            for idx = lo to hi - 1 do
              let a = perm.(idx) and b = perm.(nb' - 1 - idx) in
              round_rel.(idx) <-
                (if a < nb && b < nb then begin
                   let i = Stdlib.min a b and j = Stdlib.max a b in
                   let w = ref 0. in
                   for p = block_lo i to block_hi i - 1 do
                     for q = block_lo j to block_hi j - 1 do
                       let rel = jacobi_pair br bi vr vi m nv norms p q in
                       if rel > !w then w := rel
                     done
                   done;
                   !w
                 end
                 else 0.)
            done);
        for idx = 0 to npairs - 1 do
          if round_rel.(idx) > !worst then worst := round_rel.(idx)
        done;
        let last = perm.(nb' - 1) in
        for i = nb' - 1 downto 2 do
          perm.(i) <- perm.(i - 1)
        done;
        perm.(1) <- last
      done;
      !worst
    in
    let rec loop k acc =
      if k >= sweeps then acc
      else
        let worst = sweep () in
        if worst > conv_tol then loop (k + 1) worst else worst
    in
    loop 0 0.
  end

(* Orthonormal completion: replace (near-)zero columns of u, in index
   order, with unit vectors orthogonal to all current columns. *)
let complete_columns u zero_cols =
  let m, _ = Cmat.dims u in
  List.iter
    (fun jcol ->
      (* Try canonical basis vectors until one survives orthogonalization. *)
      let rec try_basis e =
        if e >= m then ()  (* pathological; leave zero *)
        else begin
          let cand = Cmat.init m 1 (fun i _ -> if i = e then Cx.one else Cx.zero) in
          let cand = ref cand in
          for k = 0 to Cmat.cols u - 1 do
            if k <> jcol then begin
              let uk = Cmat.col u k in
              let coef = Cmat.vec_dot uk !cand in
              cand := Cmat.sub !cand (Cmat.scale coef uk)
            end
          done;
          let nrm = Cmat.vec_norm !cand in
          if nrm > 1e-8 then Cmat.set_col u jcol (Cmat.scale_float (1. /. nrm) !cand)
          else try_basis (e + 1)
        end
      in
      try_basis 0)
    zero_cols

let decompose_tall_with orth a =
  let m, n = Cmat.dims a in
  let b = ref (Cmat.copy a) in
  let v = Cmat.identity n in
  (* Convergence cascade: nominal sweep budget, then an extra budget,
     then a rescaled retry (extreme magnitudes can overflow the Gram
     dots), and finally report the achieved off-diagonal norm in the
     diagnostics instead of raising — the factorization is degraded
     but still usable.  The [svd.no_converge] fault collapses every
     budget to one sweep so the whole cascade is exercised. *)
  let forced = Fault.armed "svd.no_converge" in
  let budget base = if forced then 1 else base in
  let worst = orth ~sweeps:(budget max_sweeps) !b v in
  let worst =
    if worst <= conv_tol then worst
    else begin
      Diag.record ~site:"svd.jacobi.extra_sweeps"
        (Printf.sprintf "off-diagonal %.3g after %d sweeps; extending budget"
           worst (budget max_sweeps));
      Diag.incr_retries ();
      orth ~sweeps:(budget (max_sweeps / 2)) !b v
    end
  in
  let scale_back = ref 1. in
  let worst =
    if worst <= conv_tol then worst
    else begin
      let mx = Cmat.max_abs !b in
      let s = if mx > 0. && Float.is_finite mx then 1. /. mx else 1. in
      Diag.record ~site:"svd.jacobi.scaled_retry"
        (Printf.sprintf "off-diagonal %.3g; retrying at scale %.3g" worst s);
      Diag.incr_retries ();
      b := Cmat.scale_float s !b;
      scale_back := s;
      orth ~sweeps:(budget (max_sweeps / 2)) !b v
    end
  in
  if worst > conv_tol then
    Diag.record ~site:"svd.jacobi.non_convergence"
      (Printf.sprintf "achieved off-diagonal %.3g (target %.3g); using as-is"
         worst conv_tol);
  let b = !b in
  (* Column norms are the singular values (at the working scale; the
     retry rescaling is undone on the final sigma only, so U columns
     are normalized by the norms actually present in [b]). *)
  let sig2 = Array.init n (fun jcol ->
      let c = Cmat.col b jcol in
      Cmat.vec_norm c)
  in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare sig2.(j) sig2.(i)) order;
  let sigma = Array.map (fun i -> sig2.(i)) order in
  let bs = Cmat.select_cols b order in
  let vs = Cmat.select_cols v order in
  (* Normalize U columns; collect the ones we must complete. *)
  let u = Cmat.create m n in
  let smax = if n > 0 then sigma.(0) else 0. in
  let zero_cols = ref [] in
  for jcol = 0 to n - 1 do
    if sigma.(jcol) > 1e-100 && (smax = 0. || sigma.(jcol) > 1e-15 *. smax) then
      Cmat.set_col u jcol (Cmat.scale_float (1. /. sigma.(jcol)) (Cmat.col bs jcol))
    else zero_cols := jcol :: !zero_cols
  done;
  complete_columns u (List.rev !zero_cols);
  let sigma =
    if !scale_back = 1. then sigma
    else Array.map (fun s -> s /. !scale_back) sigma
  in
  { u; sigma; v = vs }

let decompose_tall a =
  decompose_tall_with (fun ~sweeps b v -> jacobi_orthogonalize ~sweeps b v) a

let decompose_tall_blocked a =
  decompose_tall_with
    (fun ~sweeps b v -> jacobi_orthogonalize_blocked ~sweeps b v)
    a

(* ------------------------------------------------------------------ *)
(* Golub-Kahan SVD: Householder bidiagonalization, phase normalization,
   then implicit-shift QR on the real bidiagonal.  O(m n^2) overall,
   roughly an order of magnitude faster than cyclic Jacobi at the pencil
   sizes the Loewner pipeline produces. *)

exception No_convergence

(* Givens rotation [c s; -s c] [f; g] = [r; 0]. *)
let givens f g =
  if g = 0. then (1., 0., f)
  else if f = 0. then (0., 1., g)
  else begin
    let r = Float.hypot f g in
    let r = if f >= 0. then r else -.r in
    (f /. r, g /. r, r)
  end

(* Rotate columns p and q of a complex matrix by a real rotation:
   col_p' = c col_p + s col_q ; col_q' = -s col_p + c col_q. *)
let rotate_cols_real m p q c s =
  let rows = Cmat.rows m in
  let re = Cmat.unsafe_re m and im = Cmat.unsafe_im m in
  let poff = p * rows and qoff = q * rows in
  for i = 0 to rows - 1 do
    let pr = re.(poff + i) and pi = im.(poff + i) in
    let qr = re.(qoff + i) and qi = im.(qoff + i) in
    re.(poff + i) <- (c *. pr) +. (s *. qr);
    im.(poff + i) <- (c *. pi) +. (s *. qi);
    re.(qoff + i) <- (c *. qr) -. (s *. pr);
    im.(qoff + i) <- (c *. qi) -. (s *. pi)
  done

(* One implicit-shift Golub-Kahan step on the window [lo..hi] of the
   real bidiagonal (d, e), accumulating rotations into u and v. *)
let gk_step d e u v lo hi =
  (* Wilkinson shift from the trailing 2x2 of B^T B *)
  let dm = d.(hi - 1) and dn = d.(hi) and em = e.(hi - 1) in
  let el = if hi - 1 > lo then e.(hi - 2) else 0. in
  let a11 = (dm *. dm) +. (el *. el) in
  let a22 = (dn *. dn) +. (em *. em) in
  let a12 = dm *. em in
  let mu =
    if a12 = 0. then a22
    else begin
      let delta = (a11 -. a22) /. 2. in
      let sgn = if delta >= 0. then 1. else -1. in
      a22 -. (a12 *. a12 /. (delta +. (sgn *. Float.hypot delta a12)))
    end
  in
  let y0 = (d.(lo) *. d.(lo)) -. mu in
  let z0 = d.(lo) *. e.(lo) in
  let bulge = ref 0. in
  for k = lo to hi - 1 do
    let c, s, _ =
      if k = lo then givens y0 z0 else givens e.(k - 1) !bulge
    in
    if k > lo then e.(k - 1) <- (c *. e.(k - 1)) +. (s *. !bulge);
    (* right rotation on columns k, k+1 *)
    let dk = d.(k) and ek = e.(k) and dk1 = d.(k + 1) in
    d.(k) <- (c *. dk) +. (s *. ek);
    e.(k) <- (c *. ek) -. (s *. dk);
    let below = s *. dk1 in
    d.(k + 1) <- c *. dk1;
    rotate_cols_real v k (k + 1) c s;
    (* left rotation on rows k, k+1 kills the subdiagonal bulge *)
    let c2, s2, r2 = givens d.(k) below in
    d.(k) <- r2;
    let ek' = e.(k) and dk1' = d.(k + 1) in
    e.(k) <- (c2 *. ek') +. (s2 *. dk1');
    d.(k + 1) <- (c2 *. dk1') -. (s2 *. ek');
    if k < hi - 1 then begin
      bulge := s2 *. e.(k + 1);
      e.(k + 1) <- c2 *. e.(k + 1)
    end;
    rotate_cols_real u k (k + 1) c2 s2
  done

let eps = 2.2e-16

(* Iterate the bidiagonal QR to convergence. *)
let bidiag_qr d e u v =
  let n = Array.length d in
  if n > 1 then begin
    let anorm =
      let acc = ref 0. in
      Array.iter (fun x -> acc := Stdlib.max !acc (abs_float x)) d;
      Array.iter (fun x -> acc := Stdlib.max !acc (abs_float x)) e;
      !acc
    in
    if anorm > 0. then begin
      (* exact zeros on the diagonal stall the chase; a sub-roundoff
         perturbation is invisible at working precision *)
      for k = 0 to n - 1 do
        if abs_float d.(k) <= eps *. eps *. anorm then
          d.(k) <- eps *. eps *. anorm
      done;
      (* the [svd.no_converge] fault collapses the iteration budget so
         the No_convergence path (and the Jacobi fallback above it) is
         exercised deterministically *)
      let budget = ref (if Fault.armed "svd.no_converge" then 1 else 60 * n) in
      let hi = ref (n - 1) in
      while !hi > 0 do
        for k = 0 to !hi - 1 do
          if abs_float e.(k) <= eps *. (abs_float d.(k) +. abs_float d.(k + 1))
          then e.(k) <- 0.
        done;
        if e.(!hi - 1) = 0. then decr hi
        else begin
          decr budget;
          if !budget <= 0 then raise No_convergence;
          let lo = ref (!hi - 1) in
          while !lo > 0 && e.(!lo - 1) <> 0. do
            decr lo
          done;
          gk_step d e u v !lo !hi
        end
      done
    end
  end

(* Complex Householder bidiagonalization of a (m >= n); returns
   (u, d, e, v) with a = u (bidiag d, e) v^H, u: m x n, v: n x n. *)
let bidiagonalize a =
  let m, n = Cmat.dims a in
  let b = Cmat.copy a in
  let re = Cmat.unsafe_re b and im = Cmat.unsafe_im b in
  (* reflector scratch *)
  let taul = Array.make n 0. in
  let taur = Array.make (Stdlib.max 0 (n - 1)) 0. in
  for k = 0 to n - 1 do
    (* left reflector annihilating column k below the diagonal *)
    let koff = k * m in
    let xnorm2 = ref 0. in
    for i = k to m - 1 do
      xnorm2 := !xnorm2 +. (re.(koff + i) *. re.(koff + i)) +. (im.(koff + i) *. im.(koff + i))
    done;
    let xnorm = Stdlib.sqrt !xnorm2 in
    if xnorm > 0. then begin
      let ar = re.(koff + k) and ai = im.(koff + k) in
      let amag = Stdlib.sqrt ((ar *. ar) +. (ai *. ai)) in
      let br, bi =
        if amag = 0. then (-.xnorm, 0.)
        else (-.xnorm *. ar /. amag, -.xnorm *. ai /. amag)
      in
      let u0r = ar -. br and u0i = ai -. bi in
      let u0mag2 = (u0r *. u0r) +. (u0i *. u0i) in
      if u0mag2 > 0. then begin
        let unorm2 = 2. *. (!xnorm2 +. (xnorm *. amag)) in
        taul.(k) <- 2. *. u0mag2 /. unorm2;
        let inv = 1. /. u0mag2 in
        for i = k + 1 to m - 1 do
          let xr = re.(koff + i) and xi = im.(koff + i) in
          re.(koff + i) <- ((xr *. u0r) +. (xi *. u0i)) *. inv;
          im.(koff + i) <- ((xi *. u0r) -. (xr *. u0i)) *. inv
        done;
        re.(koff + k) <- br;
        im.(koff + k) <- bi;
        for jcol = k + 1 to n - 1 do
          let joff = jcol * m in
          let sr = ref re.(joff + k) and si = ref im.(joff + k) in
          for i = k + 1 to m - 1 do
            let vr = re.(koff + i) and vi = -.im.(koff + i) in
            let cr = re.(joff + i) and ci = im.(joff + i) in
            sr := !sr +. (vr *. cr) -. (vi *. ci);
            si := !si +. (vr *. ci) +. (vi *. cr)
          done;
          let sr = taul.(k) *. !sr and si = taul.(k) *. !si in
          re.(joff + k) <- re.(joff + k) -. sr;
          im.(joff + k) <- im.(joff + k) -. si;
          for i = k + 1 to m - 1 do
            let vr = re.(koff + i) and vi = im.(koff + i) in
            re.(joff + i) <- re.(joff + i) -. (vr *. sr) +. (vi *. si);
            im.(joff + i) <- im.(joff + i) -. (vr *. si) -. (vi *. sr)
          done
        done
      end
    end;
    (* right reflector annihilating row k beyond the superdiagonal *)
    if k < n - 2 then begin
      (* z = conj of row k entries k+1..n-1 *)
      let len = n - 1 - k in
      let zr = Array.make len 0. and zi = Array.make len 0. in
      for j = 0 to len - 1 do
        let idx = k + ((k + 1 + j) * m) in
        zr.(j) <- re.(idx);
        zi.(j) <- -.im.(idx)
      done;
      let znorm2 = ref 0. in
      Array.iteri (fun j x -> znorm2 := !znorm2 +. (x *. x) +. (zi.(j) *. zi.(j))) zr;
      let znorm = Stdlib.sqrt !znorm2 in
      if znorm > 0. then begin
        let ar = zr.(0) and ai = zi.(0) in
        let amag = Stdlib.sqrt ((ar *. ar) +. (ai *. ai)) in
        let br, bi =
          if amag = 0. then (-.znorm, 0.)
          else (-.znorm *. ar /. amag, -.znorm *. ai /. amag)
        in
        let u0r = ar -. br and u0i = ai -. bi in
        let u0mag2 = (u0r *. u0r) +. (u0i *. u0i) in
        if u0mag2 > 0. then begin
          let unorm2 = 2. *. (!znorm2 +. (znorm *. amag)) in
          taur.(k) <- 2. *. u0mag2 /. unorm2;
          let inv = 1. /. u0mag2 in
          (* v_j = z_j / u0, v_0 = 1; store conj(v_j) back into row k *)
          let vre = Array.make len 0. and vim = Array.make len 0. in
          vre.(0) <- 1.;
          for j = 1 to len - 1 do
            vre.(j) <- ((zr.(j) *. u0r) +. (zi.(j) *. u0i)) *. inv;
            vim.(j) <- ((zi.(j) *. u0r) -. (zr.(j) *. u0i)) *. inv
          done;
          (* apply P = I - tau v v^H from the right to rows k..m-1:
             row := row - tau (row . v) v^H  (v^H entries conj(v)) *)
          for i = k to m - 1 do
            let sr = ref 0. and si = ref 0. in
            for j = 0 to len - 1 do
              let cidx = i + ((k + 1 + j) * m) in
              let rr = re.(cidx) and ri = im.(cidx) in
              (* row_j * v_j *)
              sr := !sr +. (rr *. vre.(j)) -. (ri *. vim.(j));
              si := !si +. (rr *. vim.(j)) +. (ri *. vre.(j))
            done;
            let sr = taur.(k) *. !sr and si = taur.(k) *. !si in
            for j = 0 to len - 1 do
              let cidx = i + ((k + 1 + j) * m) in
              (* subtract s * conj(v_j) *)
              let vr = vre.(j) and vi = -.vim.(j) in
              re.(cidx) <- re.(cidx) -. (sr *. vr) +. (si *. vi);
              im.(cidx) <- im.(cidx) -. (sr *. vi) -. (si *. vr)
            done
          done;
          (* store v (j >= 1) in row k for later accumulation; the row is
             now [d, beta', 0...] plus our stash *)
          for j = 1 to len - 1 do
            let cidx = k + ((k + 1 + j) * m) in
            re.(cidx) <- vre.(j);
            im.(cidx) <- vim.(j)
          done
        end
      end
    end
  done;
  (* accumulate thin U by applying left reflectors to [I; 0] *)
  let u = Cmat.create m n in
  let ure = Cmat.unsafe_re u and uim = Cmat.unsafe_im u in
  for k = 0 to n - 1 do
    ure.(k + (k * m)) <- 1.
  done;
  for k = n - 1 downto 0 do
    if taul.(k) <> 0. then
      for jcol = 0 to n - 1 do
        let joff = jcol * m in
        let koff = k * m in
        let sr = ref ure.(joff + k) and si = ref uim.(joff + k) in
        for i = k + 1 to m - 1 do
          let vr = re.(koff + i) and vi = -.im.(koff + i) in
          let cr = ure.(joff + i) and ci = uim.(joff + i) in
          sr := !sr +. (vr *. cr) -. (vi *. ci);
          si := !si +. (vr *. ci) +. (vi *. cr)
        done;
        let sr = taul.(k) *. !sr and si = taul.(k) *. !si in
        ure.(joff + k) <- ure.(joff + k) -. sr;
        uim.(joff + k) <- uim.(joff + k) -. si;
        for i = k + 1 to m - 1 do
          let vr = re.(koff + i) and vi = im.(koff + i) in
          ure.(joff + i) <- ure.(joff + i) -. (vr *. sr) +. (vi *. si);
          uim.(joff + i) <- uim.(joff + i) -. (vr *. si) -. (vi *. sr)
        done
      done
  done;
  (* accumulate V by applying right reflectors (v stored in rows) *)
  let v = Cmat.identity n in
  let vre_m = Cmat.unsafe_re v and vim_m = Cmat.unsafe_im v in
  for k = n - 3 downto 0 do
    if taur.(k) <> 0. then begin
      let len = n - 1 - k in
      (* reload v from the stash in row k *)
      let wre = Array.make len 0. and wim = Array.make len 0. in
      wre.(0) <- 1.;
      for j = 1 to len - 1 do
        let cidx = k + ((k + 1 + j) * m) in
        wre.(j) <- re.(cidx);
        wim.(j) <- im.(cidx)
      done;
      (* V := P V with P = I - tau w w^H acting on rows k+1..n-1 of V *)
      for jcol = 0 to n - 1 do
        let joff = jcol * n in
        let sr = ref 0. and si = ref 0. in
        for j = 0 to len - 1 do
          let idx = joff + k + 1 + j in
          let wr = wre.(j) and wi = -.wim.(j) in
          let cr = vre_m.(idx) and ci = vim_m.(idx) in
          sr := !sr +. (wr *. cr) -. (wi *. ci);
          si := !si +. (wr *. ci) +. (wi *. cr)
        done;
        let sr = taur.(k) *. !sr and si = taur.(k) *. !si in
        for j = 0 to len - 1 do
          let idx = joff + k + 1 + j in
          let wr = wre.(j) and wi = wim.(j) in
          vre_m.(idx) <- vre_m.(idx) -. (wr *. sr) +. (wi *. si);
          vim_m.(idx) <- vim_m.(idx) -. (wr *. si) -. (wi *. sr)
        done
      done
    end
  done;
  (* extract the complex bidiagonal *)
  let dc = Array.init n (fun k -> Cmat.get b k k) in
  let ec = Array.init (Stdlib.max 0 (n - 1)) (fun k -> Cmat.get b k (k + 1)) in
  (u, dc, ec, v)

let decompose_gk_tall a =
  let m, n = Cmat.dims a in
  ignore m;
  let u, dc, ec, v = bidiagonalize a in
  (* phase-normalize the bidiagonal to real nonnegative entries;
     fold the phases into U and V column scalings *)
  let d = Array.make n 0. and e = Array.make (Stdlib.max 0 (n - 1)) 0. in
  let dr = ref Cx.one in
  for k = 0 to n - 1 do
    (* effective diagonal after right phase: dc_k * dr *)
    let dk = Cx.mul dc.(k) !dr in
    let mag = Cx.abs dk in
    d.(k) <- mag;
    let dl = if mag = 0. then Cx.one else Cx.scale (1. /. mag) dk in
    (* fold dl into U column k *)
    let urow = Cmat.rows u in
    let ure = Cmat.unsafe_re u and uim = Cmat.unsafe_im u in
    let off = k * urow in
    for i = 0 to urow - 1 do
      let xr = ure.(off + i) and xi = uim.(off + i) in
      ure.(off + i) <- (xr *. dl.Cx.re) -. (xi *. dl.Cx.im);
      uim.(off + i) <- (xr *. dl.Cx.im) +. (xi *. dl.Cx.re)
    done;
    (* fold dr into V column k *)
    let vrow = Cmat.rows v in
    let vre = Cmat.unsafe_re v and vim = Cmat.unsafe_im v in
    let voff = k * vrow in
    let drc = !dr in
    for i = 0 to vrow - 1 do
      let xr = vre.(voff + i) and xi = vim.(voff + i) in
      vre.(voff + i) <- (xr *. drc.Cx.re) -. (xi *. drc.Cx.im);
      vim.(voff + i) <- (xr *. drc.Cx.im) +. (xi *. drc.Cx.re)
    done;
    if k < n - 1 then begin
      (* superdiagonal after phases: conj(dl) * ec_k * dr_{k+1}; choose
         dr_{k+1} to make it real nonnegative *)
      let g = Cx.mul (Cx.conj dl) ec.(k) in
      let gmag = Cx.abs g in
      e.(k) <- gmag;
      dr := if gmag = 0. then Cx.one else Cx.conj (Cx.scale (1. /. gmag) g)
    end
  done;
  bidiag_qr d e u v;
  (* signs, then sort descending *)
  for k = 0 to n - 1 do
    if d.(k) < 0. then begin
      d.(k) <- -.d.(k);
      let urow = Cmat.rows u in
      let ure = Cmat.unsafe_re u and uim = Cmat.unsafe_im u in
      let off = k * urow in
      for i = 0 to urow - 1 do
        ure.(off + i) <- -.ure.(off + i);
        uim.(off + i) <- -.uim.(off + i)
      done
    end
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare d.(j) d.(i)) order;
  { u = Cmat.select_cols u order;
    sigma = Array.map (fun i -> d.(i)) order;
    v = Cmat.select_cols v order }

type algorithm = Auto | Jacobi | Blocked_jacobi | Golub_kahan

let decompose ?(algorithm = Auto) a =
  let m, n = Cmat.dims a in
  if m = 0 || n = 0 then { u = Cmat.create m 0; sigma = [||]; v = Cmat.create n 0 }
  else begin
    (* GK is the fast path but its implicit-shift QR has a hard
       iteration budget; on exhaustion fall back to the Jacobi cascade,
       which always terminates and reports its achieved orthogonality
       through the diagnostics instead of raising. *)
    let gk_with_fallback x =
      match decompose_gk_tall x with
      | d -> d
      | exception No_convergence ->
        Diag.record ~site:"svd.gk.jacobi_fallback"
          "bidiagonal QR budget exhausted; one-sided Jacobi retry";
        Diag.incr_retries ();
        decompose_tall x
    in
    let tall x =
      match algorithm with
      | Jacobi -> decompose_tall x
      | Blocked_jacobi -> decompose_tall_blocked x
      | Golub_kahan -> gk_with_fallback x
      | Auto ->
        (* Jacobi is competitive (and slightly more accurate on the
           smallest singular values) below ~32 columns *)
        if Cmat.cols x <= 32 then decompose_tall x else gk_with_fallback x
    in
    if m >= n then tall a
    else begin
      (* A = (A^H)^H: svd(A^H) = U' S V'^H  =>  A = V' S U'^H *)
      let d = tall (Cmat.ctranspose a) in
      { u = d.v; sigma = d.sigma; v = d.u }
    end
  end

let reconstruct d =
  let k = Array.length d.sigma in
  let us = Cmat.init (Cmat.rows d.u) k (fun i jcol ->
      Cx.scale d.sigma.(jcol) (Cmat.get d.u i jcol))
  in
  Cmat.mul us (Cmat.ctranspose d.v)

(* Rank rules over a bare (descending) spectrum.  The [tail_bound]
   variants are truncated-spectrum safe: a randomized factorization
   yields only the top [k] singular values plus a certified bound on
   everything it cut off (sigma_{k+1} <= tail_bound).  The bound
   stands in for the unseen tail so the same rules apply. *)

let rank_of_values ~rtol sigma =
  if Array.length sigma = 0 || sigma.(0) = 0. then 0
  else begin
    let thresh = rtol *. sigma.(0) in
    let count = ref 0 in
    Array.iter (fun s -> if s > thresh then incr count) sigma;
    !count
  end

let rank_gap_of_values ?(floor = 1e-13) ?tail_bound sigma =
  let n = Array.length sigma in
  if n = 0 || sigma.(0) = 0. then 0
  else begin
    let cutoff = floor *. sigma.(0) in
    (* Only consider gaps whose left edge is above the noise floor. *)
    let best = ref n and best_gap = ref 1.0 (* require at least 10x drop *) in
    for i = 0 to n - 2 do
      if sigma.(i) > cutoff then begin
        let lo = Stdlib.max sigma.(i + 1) (1e-300) in
        let gap = log10 (sigma.(i) /. lo) in
        if gap > !best_gap then begin
          best_gap := gap;
          best := i + 1
        end
      end
    done;
    (* Truncation boundary: the drop from the last retained value into
       the certified tail bound is itself a candidate gap, so a
       spectrum cut exactly at its cliff still reports the full
       retained count rather than falling through to the floor rule. *)
    let boundary_won = ref false in
    (match tail_bound with
     | Some tb when sigma.(n - 1) > cutoff ->
       let lo = Stdlib.max tb 1e-300 in
       let gap = log10 (sigma.(n - 1) /. lo) in
       if gap > !best_gap then begin
         best_gap := gap;
         best := n;
         boundary_won := true
       end
     | _ -> ());
    (* If everything below cutoff counts as zero and no explicit gap was
       found, fall back to the floor-based rank. *)
    if !best = n && not !boundary_won then begin
      let count = ref 0 in
      Array.iter (fun s -> if s > cutoff then incr count) sigma;
      !count
    end
    else !best
  end

let rank ~rtol d = rank_of_values ~rtol d.sigma
let rank_gap ?floor d = rank_gap_of_values ?floor d.sigma

let norm2 a =
  let d = decompose a in
  if Array.length d.sigma = 0 then 0. else d.sigma.(0)

let pinv ?(rtol = 1e-12) a =
  let d = decompose a in
  let k = Array.length d.sigma in
  if k = 0 then Cmat.create (Cmat.cols a) (Cmat.rows a)
  else begin
    let thresh = rtol *. d.sigma.(0) in
    let vs = Cmat.init (Cmat.rows d.v) k (fun i jcol ->
        if d.sigma.(jcol) > thresh then
          Cx.scale (1. /. d.sigma.(jcol)) (Cmat.get d.v i jcol)
        else Cx.zero)
    in
    Cmat.mul vs (Cmat.ctranspose d.u)
  end

let values a = (decompose a).sigma
