(** Randomized truncated SVD (Gaussian range finder).

    For a numerically low-rank [m x n] matrix — the regime of the MFTI
    pencil [[L sL]], whose rank is bounded by the model order (Lemma
    3.3) — the full SVD is wasted work: a Gaussian sketch [Y = A Om]
    captures the range with high probability, and the decomposition
    reduces to a few large GEMMs (which go through the cache-blocked
    parallel {!Cmat} kernel) plus a small dense SVD of [Q* A].

    The factorization is {e certified}: because [Q] has orthonormal
    columns, [|A - Q Q* A|_F^2 = |A|_F^2 - |Q* A|_F^2] exactly, so the
    residual of the returned truncation is usually known without
    forming the error matrix.  The difference of squares cancels once
    the true residual is below about [sqrt eps * |A|_F]; in that
    regime the error matrix is formed explicitly (one extra GEMM) so
    tiny tails still certify deterministically.  Callers check
    {!field-certified} and fall back
    to the exact path when the sketch missed part of the range —
    {!Core.Svd_reduce} records ["svd.rsvd.fallback"] and reruns the
    Jacobi/GK cascade.

    All randomness is drawn from a {!Rng} stream fixed by [seed], and
    every parallel kernel used is domain-count independent, so results
    are reproducible across runs and domain counts.

    Fault sites: ["svd.rsvd.degrade"] poisons the residual certificate
    to [infinity] (the factorization itself is untouched), forcing the
    caller's fallback path deterministically. *)

type t = {
  svd : Svd.t;
      (** truncated factorization: [u] is [m x l], [sigma] has the [l]
          leading singular values (descending), [v] is [n x l], where
          [l] is the final sketch width *)
  residual : float;
      (** certified [|A - Q Q* A|_F]; every singular value the
          truncation cut off is [<= residual], so it is a valid
          [tail_bound] for {!Svd.rank_gap_of_values} *)
  certified : bool;  (** [residual <= tol * |A|_F] *)
  sketch : int;      (** final sketch width [l] *)
  total : int;       (** [min (m, n)] — the full spectrum length *)
}

(** [decompose ?seed ?oversample ?power ?tol ~rank a] sketches with
    [rank + oversample] Gaussian columns (default oversample [8]),
    runs [power] power iterations (default [1]) with re-orthogonalization
    between applications, and certifies against [tol * |A|_F] (default
    [1e-10]).  Matrices with [min (m, n) <= 32] or a sketch covering
    the full spectrum are dispatched to the exact path ([residual = 0],
    [certified = true]). *)
val decompose :
  ?seed:int -> ?oversample:int -> ?power:int -> ?tol:float ->
  rank:int -> Cmat.t -> t

(** [decompose_adaptive ?seed ?power ?tol a] grows the sketch
    geometrically (starting near [min (m, n) / 4]) until the residual
    certifies or the sketch covers the full spectrum, reusing the
    already-orthonormalized block at each step (new sketch columns are
    projected against the existing basis, not recomputed).  This is
    the reduce-stage entry point: the pencil rank is not known a
    priori. *)
val decompose_adaptive :
  ?seed:int -> ?power:int -> ?tol:float -> Cmat.t -> t
