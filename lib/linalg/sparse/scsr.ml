(* Complex sparse matrices in compressed-sparse-row form.

   Assembly goes through a triplet [builder] backed by growable
   unboxed parallel arrays (the first sparse cut used a boxed tuple
   list, which at 100k-node MNA sizes spent more time in the GC than
   in the stamps).  [compress] is a counting sort by row, a per-row
   sort by column, and a duplicate merge — O(nnz log rowlen) with no
   intermediate boxing.

   The matvec kernels run on the {!Linalg.Parallel} domain pool and
   keep the per-output-element accumulation order fixed (each output
   row is reduced sequentially inside one chunk), so results are
   bit-identical at any pool size — the same contract the dense
   kernels honour. *)

open Linalg

type builder = {
  brows : int;
  bcols : int;
  mutable bi : int array;
  mutable bj : int array;
  mutable bre : float array;
  mutable bim : float array;
  mutable blen : int;
}

type t = {
  rows : int;
  cols : int;
  rowptr : int array;
  colind : int array;
  re : float array;
  im : float array;
}

let create ?(hint = 16) ~rows ~cols () =
  if rows < 0 || cols < 0 then invalid_arg "Scsr.create: negative dimension";
  let cap = Stdlib.max hint 4 in
  { brows = rows; bcols = cols;
    bi = Array.make cap 0; bj = Array.make cap 0;
    bre = Array.make cap 0.; bim = Array.make cap 0.;
    blen = 0 }

let grow b =
  let cap = 2 * Array.length b.bi in
  let gi = Array.make cap 0 and gj = Array.make cap 0 in
  let gre = Array.make cap 0. and gim = Array.make cap 0. in
  Array.blit b.bi 0 gi 0 b.blen;
  Array.blit b.bj 0 gj 0 b.blen;
  Array.blit b.bre 0 gre 0 b.blen;
  Array.blit b.bim 0 gim 0 b.blen;
  b.bi <- gi; b.bj <- gj; b.bre <- gre; b.bim <- gim

let add_parts b i j vre vim =
  if i < 0 || i >= b.brows || j < 0 || j >= b.bcols then
    invalid_arg "Scsr.add: index out of range";
  if vre <> 0. || vim <> 0. then begin
    if b.blen = Array.length b.bi then grow b;
    b.bi.(b.blen) <- i;
    b.bj.(b.blen) <- j;
    b.bre.(b.blen) <- vre;
    b.bim.(b.blen) <- vim;
    b.blen <- b.blen + 1
  end

let add b i j (z : Cx.t) = add_parts b i j z.Cx.re z.Cx.im
let add_real b i j x = add_parts b i j x 0.
let pending b = b.blen

(* sort [cj|cre|cim] on [lo, hi) by column index: insertion sort for the
   short rows MNA produces, index-sort for anything long (of_dense) *)
let sort_row cj cre cim lo hi =
  let len = hi - lo in
  if len > 1 then begin
    if len <= 32 then
      for p = lo + 1 to hi - 1 do
        let j = cj.(p) and vr = cre.(p) and vi = cim.(p) in
        let q = ref (p - 1) in
        while !q >= lo && cj.(!q) > j do
          cj.(!q + 1) <- cj.(!q);
          cre.(!q + 1) <- cre.(!q);
          cim.(!q + 1) <- cim.(!q);
          decr q
        done;
        cj.(!q + 1) <- j;
        cre.(!q + 1) <- vr;
        cim.(!q + 1) <- vi
      done
    else begin
      let order = Array.init len (fun k -> lo + k) in
      Array.sort (fun a bq -> compare cj.(a) cj.(bq)) order;
      let tj = Array.make len 0 in
      let tr = Array.make len 0. and ti = Array.make len 0. in
      for k = 0 to len - 1 do
        tj.(k) <- cj.(order.(k));
        tr.(k) <- cre.(order.(k));
        ti.(k) <- cim.(order.(k))
      done;
      Array.blit tj 0 cj lo len;
      Array.blit tr 0 cre lo len;
      Array.blit ti 0 cim lo len
    end
  end

let compress b =
  let n = b.brows in
  let starts = Array.make (n + 1) 0 in
  for p = 0 to b.blen - 1 do
    starts.(b.bi.(p) + 1) <- starts.(b.bi.(p) + 1) + 1
  done;
  for i = 0 to n - 1 do
    starts.(i + 1) <- starts.(i + 1) + starts.(i)
  done;
  let cursor = Array.sub starts 0 n in
  let cj = Array.make b.blen 0 in
  let cre = Array.make b.blen 0. and cim = Array.make b.blen 0. in
  for p = 0 to b.blen - 1 do
    let i = b.bi.(p) in
    let q = cursor.(i) in
    cj.(q) <- b.bj.(p);
    cre.(q) <- b.bre.(p);
    cim.(q) <- b.bim.(p);
    cursor.(i) <- q + 1
  done;
  let rowptr = Array.make (n + 1) 0 in
  (* merge duplicates in place (write cursor never passes read cursor),
     dropping entries that cancelled to exactly zero *)
  let w = ref 0 in
  for i = 0 to n - 1 do
    let lo = starts.(i) and hi = starts.(i + 1) in
    sort_row cj cre cim lo hi;
    rowptr.(i) <- !w;
    let p = ref lo in
    while !p < hi do
      let j = cj.(!p) in
      let sr = ref 0. and si = ref 0. in
      while !p < hi && cj.(!p) = j do
        sr := !sr +. cre.(!p);
        si := !si +. cim.(!p);
        incr p
      done;
      if !sr <> 0. || !si <> 0. then begin
        cj.(!w) <- j;
        cre.(!w) <- !sr;
        cim.(!w) <- !si;
        incr w
      end
    done
  done;
  rowptr.(n) <- !w;
  { rows = b.brows; cols = b.bcols; rowptr;
    colind = Array.sub cj 0 !w;
    re = Array.sub cre 0 !w;
    im = Array.sub cim 0 !w }

let nnz t = t.rowptr.(t.rows)
let dims t = (t.rows, t.cols)
let rows t = t.rows
let cols t = t.cols

let mul_vec t x =
  if Cmat.rows x <> t.cols || Cmat.cols x <> 1 then
    invalid_arg "Scsr.mul_vec: expected a column vector of matching size";
  let y = Cmat.zeros t.rows 1 in
  let yr = Cmat.unsafe_re y and yi = Cmat.unsafe_im y in
  let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
  Parallel.parallel_for t.rows (fun lo hi ->
    for i = lo to hi - 1 do
      let sr = ref 0. and si = ref 0. in
      for p = t.rowptr.(i) to t.rowptr.(i + 1) - 1 do
        let j = t.colind.(p) in
        let ar = t.re.(p) and ai = t.im.(p) in
        let vr = xr.(j) and vi = xi.(j) in
        sr := !sr +. (ar *. vr) -. (ai *. vi);
        si := !si +. (ar *. vi) +. (ai *. vr)
      done;
      yr.(i) <- sr.contents;
      yi.(i) <- si.contents
    done);
  y

let mul_mat t x =
  if Cmat.rows x <> t.cols then
    invalid_arg "Scsr.mul_mat: dimension mismatch";
  let k = Cmat.cols x in
  if k = 1 then mul_vec t x
  else begin
    let y = Cmat.zeros t.rows k in
    let yr = Cmat.unsafe_re y and yi = Cmat.unsafe_im y in
    let xr = Cmat.unsafe_re x and xi = Cmat.unsafe_im x in
    let run_rows lo hi c =
      let xoff = c * t.cols and yoff = c * t.rows in
      for i = lo to hi - 1 do
        let sr = ref 0. and si = ref 0. in
        for p = t.rowptr.(i) to t.rowptr.(i + 1) - 1 do
          let j = t.colind.(p) in
          let ar = t.re.(p) and ai = t.im.(p) in
          let vr = xr.(xoff + j) and vi = xi.(xoff + j) in
          sr := !sr +. (ar *. vr) -. (ai *. vi);
          si := !si +. (ar *. vi) +. (ai *. vr)
        done;
        yr.(yoff + i) <- sr.contents;
        yi.(yoff + i) <- si.contents
      done
    in
    (* with few right-hand sides split the rows across the pool, with
       many split the columns: each keeps one matrix pass per column in
       cache-friendly order, and either way every output element is
       reduced sequentially, so the result is chunking-invariant *)
    if k < 4 then
      Parallel.parallel_for t.rows (fun lo hi ->
        for c = 0 to k - 1 do run_rows lo hi c done)
    else
      Parallel.parallel_for k (fun clo chi ->
        for c = clo to chi - 1 do run_rows 0 t.rows c done);
    y
  end

let scale_add ~alpha a ~beta b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Scsr.scale_add: dimension mismatch";
  let alr = alpha.Cx.re and ali = alpha.Cx.im in
  let ber = beta.Cx.re and bei = beta.Cx.im in
  let n = a.rows in
  let rowptr = Array.make (n + 1) 0 in
  (* pass 1: count the merged row lengths.  The result pattern is the
     union of the operand patterns even where values cancel, so the
     pattern (hence a fill-reducing ordering computed on it) is stable
     across the frequency sweep that reuses it. *)
  for i = 0 to n - 1 do
    let pa = ref a.rowptr.(i) and pb = ref b.rowptr.(i) in
    let ea = a.rowptr.(i + 1) and eb = b.rowptr.(i + 1) in
    let c = ref 0 in
    while !pa < ea || !pb < eb do
      (if !pa < ea && (!pb >= eb || a.colind.(!pa) <= b.colind.(!pb)) then begin
         let j = a.colind.(!pa) in
         incr pa;
         if !pb < eb && b.colind.(!pb) = j then incr pb
       end
       else incr pb);
      incr c
    done;
    rowptr.(i + 1) <- !c
  done;
  for i = 0 to n - 1 do
    rowptr.(i + 1) <- rowptr.(i + 1) + rowptr.(i)
  done;
  let total = rowptr.(n) in
  let colind = Array.make total 0 in
  let re = Array.make total 0. and im = Array.make total 0. in
  for i = 0 to n - 1 do
    let pa = ref a.rowptr.(i) and pb = ref b.rowptr.(i) in
    let ea = a.rowptr.(i + 1) and eb = b.rowptr.(i + 1) in
    let w = ref rowptr.(i) in
    while !pa < ea || !pb < eb do
      let ja = if !pa < ea then a.colind.(!pa) else max_int in
      let jb = if !pb < eb then b.colind.(!pb) else max_int in
      let j = Stdlib.min ja jb in
      let sr = ref 0. and si = ref 0. in
      if ja = j then begin
        sr := (alr *. a.re.(!pa)) -. (ali *. a.im.(!pa));
        si := (alr *. a.im.(!pa)) +. (ali *. a.re.(!pa));
        incr pa
      end;
      if jb = j then begin
        sr := !sr +. (ber *. b.re.(!pb)) -. (bei *. b.im.(!pb));
        si := !si +. (ber *. b.im.(!pb)) +. (bei *. b.re.(!pb));
        incr pb
      end;
      colind.(!w) <- j;
      re.(!w) <- !sr;
      im.(!w) <- !si;
      incr w
    done
  done;
  { rows = n; cols = a.cols; rowptr; colind; re; im }

let transpose t =
  let m = t.cols in
  let rowptr = Array.make (m + 1) 0 in
  let tnnz = nnz t in
  for p = 0 to tnnz - 1 do
    rowptr.(t.colind.(p) + 1) <- rowptr.(t.colind.(p) + 1) + 1
  done;
  for j = 0 to m - 1 do
    rowptr.(j + 1) <- rowptr.(j + 1) + rowptr.(j)
  done;
  let cursor = Array.sub rowptr 0 m in
  let colind = Array.make tnnz 0 in
  let re = Array.make tnnz 0. and im = Array.make tnnz 0. in
  (* scanning source rows in order leaves every target row sorted *)
  for i = 0 to t.rows - 1 do
    for p = t.rowptr.(i) to t.rowptr.(i + 1) - 1 do
      let j = t.colind.(p) in
      let q = cursor.(j) in
      colind.(q) <- i;
      re.(q) <- t.re.(p);
      im.(q) <- t.im.(p);
      cursor.(j) <- q + 1
    done
  done;
  { rows = m; cols = t.rows; rowptr; colind; re; im }

let check_perm n perm =
  if Array.length perm <> n then
    invalid_arg "Scsr.permute: bad permutation length";
  let seen = Array.make n false in
  Array.iter
    (fun old ->
      if old < 0 || old >= n || seen.(old) then
        invalid_arg "Scsr.permute: not a permutation";
      seen.(old) <- true)
    perm

let permute t ~perm =
  let n, n' = dims t in
  if n <> n' then invalid_arg "Scsr.permute: matrix not square";
  check_perm n perm;
  let inv = Array.make n 0 in
  Array.iteri (fun newpos old -> inv.(old) <- newpos) perm;
  let rowptr = Array.make (n + 1) 0 in
  for i' = 0 to n - 1 do
    let i = perm.(i') in
    rowptr.(i' + 1) <- rowptr.(i') + (t.rowptr.(i + 1) - t.rowptr.(i))
  done;
  let total = rowptr.(n) in
  let colind = Array.make total 0 in
  let re = Array.make total 0. and im = Array.make total 0. in
  for i' = 0 to n - 1 do
    let i = perm.(i') in
    let w = ref rowptr.(i') in
    for p = t.rowptr.(i) to t.rowptr.(i + 1) - 1 do
      colind.(!w) <- inv.(t.colind.(p));
      re.(!w) <- t.re.(p);
      im.(!w) <- t.im.(p);
      incr w
    done;
    sort_row colind re im rowptr.(i') rowptr.(i' + 1)
  done;
  { rows = n; cols = n; rowptr; colind; re; im }

let to_dense t =
  let m = Cmat.zeros t.rows t.cols in
  let mr = Cmat.unsafe_re m and mi = Cmat.unsafe_im m in
  for i = 0 to t.rows - 1 do
    for p = t.rowptr.(i) to t.rowptr.(i + 1) - 1 do
      let off = i + (t.colind.(p) * t.rows) in
      mr.(off) <- mr.(off) +. t.re.(p);
      mi.(off) <- mi.(off) +. t.im.(p)
    done
  done;
  m

let of_dense ?(drop_tol = 0.) d =
  let rows, cols = Cmat.dims d in
  let b = create ~rows ~cols () in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let z = Cmat.get d i j in
      if Cx.abs z > drop_tol then add b i j z
    done
  done;
  compress b

let is_finite t =
  let ok = ref true in
  for p = 0 to nnz t - 1 do
    if not (Float.is_finite t.re.(p) && Float.is_finite t.im.(p)) then
      ok := false
  done;
  !ok
