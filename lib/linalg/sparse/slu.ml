(* Left-looking sparse LU with partial pivoting (Gilbert-Peierls; the
   organization follows CSparse's cs_lu).

   L is built column by column with *original* row indices and a unit
   diagonal stored explicitly as each column's first entry; pinv maps a
   (permuted) row to its pivot step (-1 while not yet pivotal).  Solving
   L x = A(:,k) only touches the entries reachable from A(:,k)'s pattern
   in L's graph, found by DFS in topological order.

   The numeric core works on a column-major view obtained by
   transposing the (symmetrically permuted) CSR input — an O(nnz)
   counting pass, cheap next to the factorization itself.  Failures are
   typed: a zero pivot (or the armed ["sparse.singular_pivot"] fault
   site) comes back as [Mfti_error.Numerical_breakdown]. *)

open Linalg

exception Singular of int

(* growable parallel arrays for the factors *)
type growbuf = {
  mutable idx : int array;
  mutable re : float array;
  mutable im : float array;
  mutable len : int;
}

let growbuf_make n =
  { idx = Array.make (Stdlib.max n 16) 0;
    re = Array.make (Stdlib.max n 16) 0.;
    im = Array.make (Stdlib.max n 16) 0.;
    len = 0 }

let growbuf_push g i vre vim =
  if g.len = Array.length g.idx then begin
    let cap = 2 * g.len in
    let idx = Array.make cap 0 in
    let re = Array.make cap 0. and im = Array.make cap 0. in
    Array.blit g.idx 0 idx 0 g.len;
    Array.blit g.re 0 re 0 g.len;
    Array.blit g.im 0 im 0 g.len;
    g.idx <- idx;
    g.re <- re;
    g.im <- im
  end;
  g.idx.(g.len) <- i;
  g.re.(g.len) <- vre;
  g.im.(g.len) <- vim;
  g.len <- g.len + 1

type ordering = [ `Natural | `Rcm | `Amd ]

type factor = {
  n : int;
  lp : int array;       (* n+1 column pointers into l *)
  l : growbuf;          (* row indices in PIVOT order after finalization *)
  up : int array;
  u : growbuf;          (* row indices are pivot steps, as emitted *)
  pinv : int array;     (* (permuted) row -> pivot step *)
  sym_perm : int array option;  (* new_position -> original index *)
}

(* [acolptr/arowind/are/aim] is a column-major (CSC) view of the
   already-permuted matrix *)
let factorize_core n acolptr arowind are aim =
  let l = growbuf_make (4 * acolptr.(n)) in
  let u = growbuf_make (4 * acolptr.(n)) in
  let lp = Array.make (n + 1) 0 in
  let up = Array.make (n + 1) 0 in
  let pinv = Array.make n (-1) in
  let xre = Array.make n 0. and xim = Array.make n 0. in
  let marked = Array.make n false in
  let xi = Array.make n 0 in         (* reach, xi[top..n-1] in toporder *)
  let stack = Array.make n 0 in
  let pstack = Array.make n 0 in
  for k = 0 to n - 1 do
    lp.(k) <- l.len;
    up.(k) <- u.len;
    (* --- symbolic: reach of A(:,k) through L --- *)
    let top = ref n in
    let dfs start =
      let head = ref 0 in
      stack.(0) <- start;
      while !head >= 0 do
        let j = stack.(!head) in
        let jnew = pinv.(j) in
        if not marked.(j) then begin
          marked.(j) <- true;
          (* skip the unit diagonal (first entry of column jnew) *)
          pstack.(!head) <- (if jnew < 0 then 0 else lp.(jnew) + 1)
        end;
        let p_end = if jnew < 0 then 0 else lp.(jnew + 1) in
        let advanced = ref false in
        let p = ref pstack.(!head) in
        while (not !advanced) && !p < p_end do
          let i = l.idx.(!p) in
          incr p;
          if not marked.(i) then begin
            pstack.(!head) <- !p;
            incr head;
            stack.(!head) <- i;
            advanced := true
          end
        done;
        if not !advanced then begin
          (* postorder: all descendants done *)
          decr head;
          decr top;
          xi.(!top) <- j
        end
      done
    in
    for p = acolptr.(k) to acolptr.(k + 1) - 1 do
      let i = arowind.(p) in
      if not marked.(i) then dfs i
    done;
    (* --- numeric: x = L \ A(:,k) on the reach --- *)
    for p = !top to n - 1 do
      xre.(xi.(p)) <- 0.;
      xim.(xi.(p)) <- 0.
    done;
    for p = acolptr.(k) to acolptr.(k + 1) - 1 do
      xre.(arowind.(p)) <- are.(p);
      xim.(arowind.(p)) <- aim.(p)
    done;
    for px = !top to n - 1 do
      let j = xi.(px) in
      let jnew = pinv.(j) in
      if jnew >= 0 then begin
        (* unit diagonal: x[j] is final; eliminate below *)
        let xjr = xre.(j) and xji = xim.(j) in
        if xjr <> 0. || xji <> 0. then
          for p = lp.(jnew) + 1 to lp.(jnew + 1) - 1 do
            let i = l.idx.(p) in
            let lr = l.re.(p) and li = l.im.(p) in
            xre.(i) <- xre.(i) -. (lr *. xjr) +. (li *. xji);
            xim.(i) <- xim.(i) -. (lr *. xji) -. (li *. xjr)
          done
      end
    done;
    (* --- pivot: largest modulus among non-pivotal rows --- *)
    let ipiv = ref (-1) and best = ref 0. in
    for p = !top to n - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 then begin
        let mag = (xre.(i) *. xre.(i)) +. (xim.(i) *. xim.(i)) in
        if mag > !best then begin
          best := mag;
          ipiv := i
        end
      end
      else
        (* finished U entry for pivotal row *)
        growbuf_push u pinv.(i) xre.(i) xim.(i)
    done;
    if !ipiv < 0 || !best = 0. then raise (Singular k);
    let ipiv = !ipiv in
    pinv.(ipiv) <- k;
    (* pivot onto U's diagonal *)
    growbuf_push u k xre.(ipiv) xim.(ipiv);
    let pr = xre.(ipiv) and pi = xim.(ipiv) in
    let pmag = (pr *. pr) +. (pi *. pi) in
    (* L column: unit diagonal first, then scaled subdiagonal entries *)
    growbuf_push l ipiv 1. 0.;
    for p = !top to n - 1 do
      let i = xi.(p) in
      if pinv.(i) < 0 && (xre.(i) <> 0. || xim.(i) <> 0.) then begin
        (* x_i / pivot *)
        let vr = ((xre.(i) *. pr) +. (xim.(i) *. pi)) /. pmag in
        let vi = ((xim.(i) *. pr) -. (xre.(i) *. pi)) /. pmag in
        growbuf_push l i vr vi
      end
    done;
    (* clear marks and x *)
    for p = !top to n - 1 do
      marked.(xi.(p)) <- false;
      xre.(xi.(p)) <- 0.;
      xim.(xi.(p)) <- 0.
    done
  done;
  lp.(n) <- l.len;
  up.(n) <- u.len;
  (* convert L's row indices to pivot order *)
  for p = 0 to l.len - 1 do
    l.idx.(p) <- pinv.(l.idx.(p))
  done;
  (lp, l, up, u, pinv)

let singular ?(injected = false) k =
  Mfti_error.Numerical_breakdown
    { context = "sparse.lu";
      message =
        Printf.sprintf "%szero pivot at elimination step %d"
          (if injected then "injected " else "")
          k;
      condition = None }

let bad_perm msg =
  Mfti_error.Validation { context = "sparse.lu"; message = msg }

let factorize ?(ordering = `Amd) ?perm (a : Scsr.t) =
  let n, n' = Scsr.dims a in
  if n <> n' then Error (bad_perm "matrix not square")
  else if Fault.armed "sparse.singular_pivot" then
    Error (singular ~injected:true 0)
  else begin
    let perm_ok =
      match perm with
      | Some p ->
        if Array.length p <> n then Error (bad_perm "bad permutation length")
        else begin
          let seen = Array.make n false in
          let ok = ref true in
          Array.iter
            (fun old ->
              if old < 0 || old >= n || seen.(old) then ok := false
              else seen.(old) <- true)
            p;
          if !ok then Ok (Some p) else Error (bad_perm "not a permutation")
        end
      | None ->
        Ok
          (match ordering with
           | `Natural -> None
           | `Rcm -> Some (Ordering.rcm a)
           | `Amd -> Some (Ordering.amd a))
    in
    match perm_ok with
    | Error e -> Error e
    | Ok perm ->
      let ap = match perm with None -> a | Some p -> Scsr.permute a ~perm:p in
      let at = Scsr.transpose ap in
      (match
         factorize_core n at.Scsr.rowptr at.Scsr.colind at.Scsr.re at.Scsr.im
       with
       | exception Singular k -> Error (singular k)
       | lp, l, up, u, pinv -> Ok { n; lp; l; up; u; pinv; sym_perm = perm })
  end

let factorize_exn ?ordering ?perm a =
  match factorize ?ordering ?perm a with
  | Ok f -> f
  | Error e -> Mfti_error.raise_error e

let solve f b =
  if Cmat.rows b <> f.n then invalid_arg "Slu.solve: dimension mismatch";
  let nrhs = Cmat.cols b in
  (* with a symmetric ordering, solve A' x' = b' where b'_i = b_{perm i}
     and x_{perm i} = x'_i *)
  let b =
    match f.sym_perm with
    | None -> b
    | Some perm -> Cmat.select_rows b perm
  in
  let x = Cmat.zeros f.n nrhs in
  let xr = Cmat.unsafe_re x and xi_ = Cmat.unsafe_im x in
  let br = Cmat.unsafe_re b and bi = Cmat.unsafe_im b in
  for jcol = 0 to nrhs - 1 do
    let off = jcol * f.n in
    (* permute: y = P b (row i of b goes to position pinv[i]) *)
    for i = 0 to f.n - 1 do
      xr.(off + f.pinv.(i)) <- br.(off + i);
      xi_.(off + f.pinv.(i)) <- bi.(off + i)
    done;
    (* forward: L y = Pb, unit diagonal; columns in pivot order *)
    for k = 0 to f.n - 1 do
      let yr = xr.(off + k) and yi = xi_.(off + k) in
      if yr <> 0. || yi <> 0. then
        for p = f.lp.(k) + 1 to f.lp.(k + 1) - 1 do
          let i = f.l.idx.(p) in
          let lr = f.l.re.(p) and li = f.l.im.(p) in
          xr.(off + i) <- xr.(off + i) -. (lr *. yr) +. (li *. yi);
          xi_.(off + i) <- xi_.(off + i) -. (lr *. yi) -. (li *. yr)
        done
    done;
    (* backward: U x = y; column k of U ends with its diagonal *)
    for k = f.n - 1 downto 0 do
      let dpos = f.up.(k + 1) - 1 in
      let ur = f.u.re.(dpos) and ui = f.u.im.(dpos) in
      let umag = (ur *. ur) +. (ui *. ui) in
      let yr = xr.(off + k) and yi = xi_.(off + k) in
      let sr = ((yr *. ur) +. (yi *. ui)) /. umag in
      let si = ((yi *. ur) -. (yr *. ui)) /. umag in
      xr.(off + k) <- sr;
      xi_.(off + k) <- si;
      if sr <> 0. || si <> 0. then
        for p = f.up.(k) to dpos - 1 do
          let i = f.u.idx.(p) in
          let ar = f.u.re.(p) and ai = f.u.im.(p) in
          xr.(off + i) <- xr.(off + i) -. (ar *. sr) +. (ai *. si);
          xi_.(off + i) <- xi_.(off + i) -. (ar *. si) -. (ai *. sr)
        done
    done
  done;
  match f.sym_perm with
  | None -> x
  | Some perm ->
    let out = Cmat.zeros f.n nrhs in
    let outr = Cmat.unsafe_re out and outi = Cmat.unsafe_im out in
    for jcol = 0 to nrhs - 1 do
      let off = jcol * f.n in
      for i = 0 to f.n - 1 do
        outr.(off + perm.(i)) <- xr.(off + i);
        outi.(off + perm.(i)) <- xi_.(off + i)
      done
    done;
    out

let fill f = f.l.len + f.u.len
let order f = f.sym_perm
let size f = f.n
