(* Fill-reducing orderings for sparse LU.

   [amd] is an approximate-minimum-degree ordering in the style of
   Amestoy, Davis and Duff (the organization follows CSparse's
   cs_amd): quotient-graph elimination with element absorption,
   approximate external degrees maintained by a two-pass marking
   trick, and hash-based merging of indistinguishable supervariables.
   [rcm] is the reverse Cuthill-McKee bandwidth reducer kept from the
   first sparse cut, still useful as a comparison point.

   With partial pivoting any permutation yields a correct
   factorization — ordering only affects fill — so [amd] is allowed
   to degrade but never to fail: an internal error (or the armed
   ["sparse.ordering_degrade"] fault site) falls back to the natural
   order and records the degrade in {!Linalg.Diag}. *)

open Linalg

let identity n = Array.init n (fun i -> i)

(* symmetrized pattern of a square matrix, diagonal dropped: returns
   (ptr, ind) with each adjacency list sorted and duplicate-free *)
let symmetric_pattern (a : Scsr.t) =
  let n = Scsr.rows a in
  let cnt = Array.make (n + 1) 0 in
  let an = Scsr.nnz a in
  let rp = a.Scsr.rowptr and ci = a.Scsr.colind in
  for i = 0 to n - 1 do
    for p = rp.(i) to rp.(i + 1) - 1 do
      let j = ci.(p) in
      if j <> i then begin
        cnt.(i + 1) <- cnt.(i + 1) + 1;
        cnt.(j + 1) <- cnt.(j + 1) + 1
      end
    done
  done;
  for i = 0 to n - 1 do
    cnt.(i + 1) <- cnt.(i + 1) + cnt.(i)
  done;
  let cap = cnt.(n) in
  ignore an;
  let cursor = Array.sub cnt 0 n in
  let ind = Array.make (Stdlib.max cap 1) 0 in
  for i = 0 to n - 1 do
    for p = rp.(i) to rp.(i + 1) - 1 do
      let j = ci.(p) in
      if j <> i then begin
        ind.(cursor.(i)) <- j;
        cursor.(i) <- cursor.(i) + 1;
        ind.(cursor.(j)) <- i;
        cursor.(j) <- cursor.(j) + 1
      end
    done
  done;
  (* sort + dedup each list in place *)
  let ptr = Array.make (n + 1) 0 in
  let w = ref 0 in
  for i = 0 to n - 1 do
    let lo = cnt.(i) and hi = cnt.(i + 1) in
    let seg = Array.sub ind lo (hi - lo) in
    Array.sort compare seg;
    ptr.(i) <- !w;
    Array.iteri
      (fun k j ->
        if k = 0 || j <> seg.(k - 1) then begin
          ind.(!w) <- j;
          incr w
        end)
      seg
  done;
  ptr.(n) <- !w;
  (ptr, ind, !w)

let amd_core (a : Scsr.t) =
  let n = Scsr.rows a in
  if n = 0 then [||]
  else begin
    let sp, si, snz = symmetric_pattern a in
    (* node lists live in a growable arena: for a live variable the
       list is [elements ... variables ...] (elen element ids first),
       for a live element it is the variables of its pivotal block *)
    let arena = ref (Array.make (Stdlib.max (2 * snz + (8 * n) + 64) 1) 0) in
    let pos = Array.make n 0 in
    let len = Array.make n 0 in
    let elen = Array.make n 0 in
    let free = ref 0 in
    for i = 0 to n - 1 do
      pos.(i) <- sp.(i);
      len.(i) <- sp.(i + 1) - sp.(i)
    done;
    Array.blit si 0 !arena 0 snz;
    free := snz;
    let nv = Array.make n 1 in         (* supervariable mass; 0 = merged *)
    let dead = Array.make n false in   (* merged variable or absorbed element *)
    let iselt = Array.make n false in
    let degree = Array.init n (fun i -> len.(i)) in
    (* degree buckets: doubly-linked lists threaded through dnext/dprev *)
    let dhead = Array.make n (-1) in
    let dnext = Array.make n (-1) in
    let dprev = Array.make n (-1) in
    let inlist = Array.make n false in
    let deg_insert i d =
      let d = Stdlib.min (Stdlib.max d 0) (n - 1) in
      dnext.(i) <- dhead.(d);
      dprev.(i) <- -d - 1;      (* negative = head marker for bucket d *)
      if dhead.(d) >= 0 then dprev.(dhead.(d)) <- i;
      dhead.(d) <- i;
      inlist.(i) <- true
    in
    let deg_remove i =
      if inlist.(i) then begin
        let nx = dnext.(i) and pv = dprev.(i) in
        if nx >= 0 then dprev.(nx) <- pv;
        if pv >= 0 then dnext.(pv) <- nx
        else dhead.(-pv - 1) <- nx;
        inlist.(i) <- false
      end
    in
    for i = 0 to n - 1 do
      deg_insert i degree.(i)
    done;
    let mark = ref 0 in
    let wmark = Array.make n 0 in
    let wdiff = Array.make n 0 in        (* |Le \ Lk|, nv-weighted *)
    let esweep = Array.make n (-1) in
    let hashval = Array.make n 0 in
    let hnext = Array.make n (-1) in
    let hhead = Array.make n (-1) in
    let children = Array.make n [] in
    let elim = Array.make n 0 in
    let nelim = ref 0 in
    let nel = ref 0 in
    let mindeg = ref 0 in
    let compact need =
      let live = ref 0 in
      for i = 0 to n - 1 do
        if not dead.(i) then live := !live + len.(i)
      done;
      let cap = Stdlib.max (Array.length !arena) (!live + need + n + 64) in
      let fresh = Array.make cap 0 in
      let f = ref 0 in
      for i = 0 to n - 1 do
        if not dead.(i) then begin
          Array.blit !arena pos.(i) fresh !f len.(i);
          pos.(i) <- !f;
          f := !f + len.(i)
        end
      done;
      arena := fresh;
      free := !f
    in
    let ensure need =
      if !free + need > Array.length !arena then compact need
    in
    while !nel < n do
      while dhead.(!mindeg) < 0 do incr mindeg done;
      let k = dhead.(!mindeg) in
      deg_remove k;
      (* space bound for Lk: k's own list plus the lists of its elements *)
      let bound = ref len.(k) in
      let kp0 = pos.(k) in
      for p = kp0 to kp0 + elen.(k) - 1 do
        let e = !arena.(p) in
        if not dead.(e) then bound := !bound + len.(e)
      done;
      ensure !bound;
      let sweep = !nelim in
      elim.(!nelim) <- k;
      incr nelim;
      nel := !nel + nv.(k);
      iselt.(k) <- true;
      incr mark;
      let lkmark = !mark in
      wmark.(k) <- lkmark;
      let w = !arena in
      let lkstart = !free in
      let push_var v =
        if nv.(v) > 0 && (not dead.(v)) && (not iselt.(v))
           && wmark.(v) <> lkmark then begin
          wmark.(v) <- lkmark;
          w.(!free) <- v;
          incr free
        end
      in
      let kp = pos.(k) in
      for p = kp to kp + elen.(k) - 1 do
        let e = w.(p) in
        if not dead.(e) then begin
          for q = pos.(e) to pos.(e) + len.(e) - 1 do
            push_var w.(q)
          done;
          dead.(e) <- true     (* e's pivotal block is swallowed by k *)
        end
      done;
      for p = kp + elen.(k) to kp + len.(k) - 1 do
        push_var w.(p)
      done;
      pos.(k) <- lkstart;
      len.(k) <- !free - lkstart;
      elen.(k) <- 0;
      let dk = ref 0 in
      for p = lkstart to !free - 1 do
        dk := !dk + nv.(w.(p))
      done;
      (* scan 1: wdiff.(e) = nv-weighted |Le \ Lk| for every element
         adjacent to Lk *)
      for p = lkstart to lkstart + len.(k) - 1 do
        let i = w.(p) in
        for q = pos.(i) to pos.(i) + elen.(i) - 1 do
          let e = w.(q) in
          if not dead.(e) then begin
            if esweep.(e) <> sweep then begin
              esweep.(e) <- sweep;
              let wt = ref 0 in
              for r = pos.(e) to pos.(e) + len.(e) - 1 do
                let v = w.(r) in
                if nv.(v) > 0 && (not dead.(v)) && not iselt.(v) then
                  wt := !wt + nv.(v)
              done;
              wdiff.(e) <- !wt
            end;
            wdiff.(e) <- wdiff.(e) - nv.(i)
          end
        done
      done;
      (* scan 2: rebuild each i in Lk as [k, surviving elements,
         surviving variables], refresh its approximate degree, and
         absorb elements whose pivotal block is contained in Lk *)
      let need2 = ref 0 in
      for p = lkstart to lkstart + len.(k) - 1 do
        need2 := !need2 + len.(w.(p)) + 1
      done;
      ensure !need2;
      let w = !arena in
      let lkstart = pos.(k) in     (* compaction may have moved Lk *)
      for p = lkstart to lkstart + len.(k) - 1 do
        let i = w.(p) in
        let ip = pos.(i) in
        let ielen = elen.(i) and ilen = len.(i) in
        let dst = !free in
        w.(!free) <- k;
        incr free;
        let esum = ref 0 in
        let h = ref k in
        for q = ip to ip + ielen - 1 do
          let e = w.(q) in
          if not dead.(e) then begin
            let d = if esweep.(e) = sweep then wdiff.(e) else len.(e) in
            if d <= 0 then dead.(e) <- true    (* aggressive absorption *)
            else begin
              w.(!free) <- e;
              incr free;
              esum := !esum + d;
              h := !h + e
            end
          end
        done;
        let new_elen = !free - dst in
        let vsum = ref 0 in
        for q = ip + ielen to ip + ilen - 1 do
          let v = w.(q) in
          if nv.(v) > 0 && (not dead.(v)) && (not iselt.(v))
             && wmark.(v) <> lkmark then begin
            w.(!free) <- v;
            incr free;
            vsum := !vsum + nv.(v);
            h := !h + v
          end
        done;
        pos.(i) <- dst;
        elen.(i) <- new_elen;
        len.(i) <- !free - dst;
        deg_remove i;
        (* Amestoy-Davis-Duff approximate external degree:
           min(n - nel, old + |Lk \ i|, |Ai \ Lk| + |Lk \ i| + sum |Le \ Lk|) *)
        let lk_contrib = !dk - nv.(i) in
        let d_fresh = !esum + !vsum + lk_contrib in
        let d_grown = degree.(i) + lk_contrib in
        let d = Stdlib.min (Stdlib.min d_fresh d_grown) (n - !nel) in
        let d = Stdlib.max d 0 in
        degree.(i) <- d;
        hashval.(i) <- ((!h mod n) + n) mod n
      done;
      (* supervariable merge: bucket Lk by hash, compare exact lists *)
      let touched = ref [] in
      for p = lkstart to lkstart + len.(k) - 1 do
        let i = w.(p) in
        if (not dead.(i)) && nv.(i) > 0 then begin
          let h = hashval.(i) in
          if hhead.(h) < 0 then touched := h :: !touched;
          hnext.(i) <- hhead.(h);
          hhead.(h) <- i
        end
      done;
      List.iter
        (fun h ->
          let i = ref hhead.(h) in
          hhead.(h) <- -1;
          while !i >= 0 do
            let iv = !i in
            if (not dead.(iv)) && nv.(iv) > 0 then begin
              let j = ref hnext.(iv) in
              while !j >= 0 do
                let jv = !j in
                let next = hnext.(jv) in
                if (not dead.(jv)) && nv.(jv) > 0
                   && elen.(jv) = elen.(iv) && len.(jv) = len.(iv) then begin
                  incr mark;
                  let m = !mark in
                  for q = pos.(iv) to pos.(iv) + len.(iv) - 1 do
                    wmark.(w.(q)) <- m
                  done;
                  let same = ref true in
                  for q = pos.(jv) to pos.(jv) + len.(jv) - 1 do
                    if wmark.(w.(q)) <> m then same := false
                  done;
                  if !same then begin
                    nv.(iv) <- nv.(iv) + nv.(jv);
                    nv.(jv) <- 0;
                    dead.(jv) <- true;
                    deg_remove jv;
                    children.(iv) <- jv :: children.(iv)
                  end
                end;
                j := next
              done
            end;
            i := hnext.(iv)
          done)
        !touched;
      (* re-list the surviving members of Lk *)
      for p = lkstart to lkstart + len.(k) - 1 do
        let i = w.(p) in
        if (not dead.(i)) && nv.(i) > 0 then begin
          deg_insert i degree.(i);
          if degree.(i) < !mindeg then mindeg := degree.(i)
        end
      done;
      if len.(k) = 0 then dead.(k) <- true   (* empty element: drop it *)
    done;
    (* expand principals (elimination order) with their merged twins *)
    let perm = Array.make n 0 in
    let idx = ref 0 in
    let rec emit v =
      perm.(!idx) <- v;
      incr idx;
      List.iter emit (List.rev children.(v))
    in
    for e = 0 to !nelim - 1 do
      emit elim.(e)
    done;
    if !idx <> n then failwith "amd: lost nodes";
    perm
  end

let validate n perm =
  if Array.length perm <> n then failwith "amd: bad length";
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n || seen.(i) then failwith "amd: not a permutation";
      seen.(i) <- true)
    perm;
  perm

let amd (a : Scsr.t) =
  let n, n' = Scsr.dims a in
  if n <> n' then invalid_arg "Ordering.amd: matrix not square";
  if Fault.armed "sparse.ordering_degrade" then begin
    Diag.record ~site:"sparse.ordering_degrade"
      "fault injected: fill-reducing ordering degraded to natural";
    identity n
  end
  else
    try validate n (amd_core a)
    with e ->
      Diag.record ~site:"sparse.ordering_degrade"
        (Printf.sprintf "amd degraded to natural order: %s"
           (Printexc.to_string e));
      identity n

let rcm (a : Scsr.t) =
  let n, n' = Scsr.dims a in
  if n <> n' then invalid_arg "Ordering.rcm: matrix not square";
  let sp, si, _ = symmetric_pattern a in
  let degree = Array.init n (fun i -> sp.(i + 1) - sp.(i)) in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let filled = ref 0 in
  let queue = Queue.create () in
  (* process every connected component, starting from a minimum-degree
     node (a cheap stand-in for a pseudo-peripheral vertex) *)
  let next_start () =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if (not visited.(i)) && (!best < 0 || degree.(i) < degree.(!best)) then
        best := i
    done;
    if !best < 0 then None else Some !best
  in
  let rec component () =
    match next_start () with
    | None -> ()
    | Some start ->
      visited.(start) <- true;
      Queue.push start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        order.(!filled) <- v;
        incr filled;
        let fresh = ref [] in
        for p = sp.(v) to sp.(v + 1) - 1 do
          let u = si.(p) in
          if not visited.(u) then fresh := u :: !fresh
        done;
        let fresh =
          List.sort (fun a b -> compare degree.(a) degree.(b)) !fresh
        in
        List.iter
          (fun u ->
            if not visited.(u) then begin
              visited.(u) <- true;
              Queue.push u queue
            end)
          fresh
      done;
      component ()
  in
  component ();
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    out.(i) <- order.(n - 1 - i)
  done;
  out
