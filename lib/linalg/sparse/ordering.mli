(** Fill-reducing orderings for sparse LU.

    Both functions return a symmetric permutation in the convention
    used across the library: [perm.(new_position) = original_index],
    directly usable with {!Scsr.permute} and {!Slu.factorize}.

    With partial pivoting any permutation yields a correct
    factorization, so ordering quality is never allowed to break one:
    [amd] degrades to the natural order on any internal failure (or
    when the ["sparse.ordering_degrade"] fault site is armed),
    recording the degrade in {!Linalg.Diag}. *)

(** Approximate minimum degree (Amestoy–Davis–Duff style quotient-graph
    elimination with element absorption and supervariable merging) on
    the symmetrized pattern of a square matrix. *)
val amd : Scsr.t -> int array

(** Reverse Cuthill–McKee bandwidth reduction. *)
val rcm : Scsr.t -> int array
