(** Complex sparse matrices in compressed-sparse-row form.

    Assembly goes through a triplet {!builder} backed by growable
    unboxed arrays; {!compress} sorts, merges duplicate coordinates by
    summation, and drops entries that cancelled to exactly zero.  The
    matvec kernels distribute rows (or right-hand-side columns) over
    the {!Linalg.Parallel} domain pool with a fixed per-element
    reduction order, so results are bit-identical at any pool size. *)

type builder

type t = private {
  rows : int;
  cols : int;
  rowptr : int array;   (** length [rows + 1] *)
  colind : int array;   (** column indices, sorted within each row *)
  re : float array;
  im : float array;
}

(** [create ?hint ~rows ~cols] starts a triplet builder; [hint] is the
    expected number of entries (capacity only, not a bound). *)
val create : ?hint:int -> rows:int -> cols:int -> unit -> builder

(** [add b i j z] records [z] at [(i, j)].  Duplicate coordinates
    accumulate at {!compress}.  Exact zeros are skipped. *)
val add : builder -> int -> int -> Linalg.Cx.t -> unit

(** [add_real b i j x] is [add] with a purely real value. *)
val add_real : builder -> int -> int -> float -> unit

(** Triplets recorded so far. *)
val pending : builder -> int

(** Freeze the builder into a compressed matrix.  The builder remains
    usable (compress again after more [add]s to get a superset). *)
val compress : builder -> t

val nnz : t -> int
val dims : t -> int * int
val rows : t -> int
val cols : t -> int

(** [mul_vec a x] is [a * x] for a column vector [x]. *)
val mul_vec : t -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [mul_mat a x] is the sparse-dense product [a * x]. *)
val mul_mat : t -> Linalg.Cmat.t -> Linalg.Cmat.t

(** [scale_add ~alpha a ~beta b] is [alpha*a + beta*b].  The result
    pattern is the union of the operand patterns even where values
    cancel, so a fill-reducing ordering computed on one [alpha, beta]
    combination stays valid for every other — the contract the
    frequency sweep relies on. *)
val scale_add : alpha:Linalg.Cx.t -> t -> beta:Linalg.Cx.t -> t -> t

val transpose : t -> t

(** [permute t ~perm] applies a symmetric permutation to a square
    matrix: entry [(perm.(i'), perm.(j'))] of [t] lands at [(i', j')].
    [perm.(new_position) = original_index], the convention used by the
    ordering and LU modules. *)
val permute : t -> perm:int array -> t

val to_dense : t -> Linalg.Cmat.t

(** [of_dense ?drop_tol d] keeps entries with modulus above
    [drop_tol] (default [0.], i.e. keep all nonzeros). *)
val of_dense : ?drop_tol:float -> Linalg.Cmat.t -> t

(** True when every stored entry is finite. *)
val is_finite : t -> bool
