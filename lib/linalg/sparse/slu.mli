(** Sparse LU with partial pivoting and fill-reducing ordering.

    A left-looking Gilbert–Peierls factorization of a square complex
    CSR matrix.  A symmetric fill-reducing permutation is applied
    first — approximate minimum degree by default — and partial
    pivoting by largest modulus keeps the numerics safe under any
    ordering.

    Failures are typed through {!Linalg.Mfti_error}: a zero pivot (or
    the armed ["sparse.singular_pivot"] fault site) is
    [Numerical_breakdown]; a malformed permutation is [Validation].
    An AMD-internal failure never fails the factorization — it
    degrades to the natural order and records
    ["sparse.ordering_degrade"] in {!Linalg.Diag}. *)

type ordering = [ `Natural | `Rcm | `Amd ]

type factor

(** [factorize ?ordering ?perm a] factors square [a].  [perm]
    short-circuits the ordering computation with a precomputed
    symmetric permutation ([perm.(new) = old]) — pass the
    {!Ordering.amd} of the pattern once and reuse it across a
    frequency sweep, since [Scsr.scale_add] keeps the pattern stable.
    Default [ordering] is [`Amd]. *)
val factorize :
  ?ordering:ordering -> ?perm:int array -> Scsr.t ->
  (factor, Linalg.Mfti_error.t) result

(** Raising form: wraps the error in {!Linalg.Mfti_error.Error}. *)
val factorize_exn : ?ordering:ordering -> ?perm:int array -> Scsr.t -> factor

(** [solve f b] solves [a x = b] for one or more dense right-hand-side
    columns. *)
val solve : factor -> Linalg.Cmat.t -> Linalg.Cmat.t

(** Stored entries in [L] plus [U] — the fill the ordering is trying
    to keep down. *)
val fill : factor -> int

(** The symmetric permutation that was applied, if any. *)
val order : factor -> int array option

val size : factor -> int
