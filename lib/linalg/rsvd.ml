type t = {
  svd : Svd.t;
  residual : float;
  certified : bool;
  sketch : int;
  total : int;
}

let default_tol = 1e-10
let default_oversample = 8
let default_power = 1
let default_seed = 0x5eed

(* Below this spectrum length the exact path is already fast and a
   sketch cannot win; matches the Jacobi cutoff in {!Svd}. *)
let small_cutoff = 32

(* Inverse of a lower-triangular complex matrix by forward
   substitution, column by column.  O(l^3) on the sketch width only —
   never on the large dimension. *)
let tri_inv_lower l =
  let n = Cmat.rows l in
  let m = Cmat.create n n in
  for j = 0 to n - 1 do
    Cmat.set m j j (Cx.inv (Cmat.get l j j));
    for i = j + 1 to n - 1 do
      let acc = ref Cx.zero in
      for k = j to i - 1 do
        acc := Cx.add_mul !acc (Cmat.get l i k) (Cmat.get m k j)
      done;
      Cmat.set m i j (Cx.neg (Cx.div !acc (Cmat.get l i i)))
    done
  done;
  m

(* One CholeskyQR pass: G = Y* Y (parallel GEMM), L = chol(G),
   Q = Y L^-H (another parallel GEMM against the small triangular
   inverse).  Raises [Chol.Not_positive_definite] when Y is too
   ill-conditioned for the Gram matrix to stay PD at working
   precision. *)
let cholqr y =
  let g = Cmat.mul_cn y y in
  let l = Chol.factorize g in
  let linv = tri_inv_lower l in
  Cmat.mul y (Cmat.ctranspose linv)

(* CholeskyQR2: two passes bring the orthogonality error from
   O(kappa^2 eps) down to machine precision, with all the heavy work
   in parallel GEMMs — unlike the sequential Householder
   {!Qr.orthonormalize}, which would dominate the whole sketch cost at
   tall sizes.  Householder remains the fallback when the Gram matrix
   loses positive definiteness. *)
let orthonormalize y =
  match cholqr (cholqr y) with
  | q -> q
  | exception Chol.Not_positive_definite _ ->
    Diag.record ~site:"svd.rsvd.cholqr_fallback"
      "sketch Gram matrix not PD; Householder orthonormalization";
    Qr.orthonormalize y

(* Subspace (power) iteration with re-orthonormalization after every
   product, so small singular directions are not washed out. *)
let power_iterate a q power =
  let q = ref q in
  for _ = 1 to power do
    let z = orthonormalize (Cmat.mul_cn a !q) in
    q := orthonormalize (Cmat.mul a z)
  done;
  !q

(* Project the columns of [y] against the orthonormal basis [q],
   twice (classical Gram-Schmidt needs the second pass for
   orthogonality at working precision). *)
let project_out q y =
  let y = Cmat.sub y (Cmat.mul q (Cmat.mul_cn q y)) in
  Cmat.sub y (Cmat.mul q (Cmat.mul_cn q y))

(* Finish: small dense SVD of B = Q* A (sketch x n), lift U back
   through Q, and certify via the exact Frobenius identity
   |A - Q Q* A|_F^2 = |A|_F^2 - |Q* A|_F^2 (Q has orthonormal
   columns, so no error matrix is ever formed). *)
let finish ~tol ~norm_a ~total a q =
  let b = Cmat.mul_cn q a in
  let d = Svd.decompose b in
  let norm_b = Cmat.norm_fro b in
  let res2 = (norm_a *. norm_a) -. (norm_b *. norm_b) in
  (* The difference of squares cancels catastrophically once the true
     residual drops below ~sqrt(eps) |A|: the computed [res2] is then
     rounding noise of either sign, and whether a tiny tail certifies
     would be a coin flip.  In that regime form the error matrix
     explicitly — one extra GEMM, no worse than one power-iteration
     product — so the residual is trustworthy down to machine
     precision. *)
  let residual =
    if res2 <= 1e-12 *. norm_a *. norm_a then
      Cmat.norm_fro (Cmat.sub a (Cmat.mul q b))
    else Stdlib.sqrt res2
  in
  (* The degrade fault poisons the certificate only: the factorization
     is returned untouched but can never certify, which drives the
     caller's fallback path deterministically. *)
  let residual =
    if Fault.armed "svd.rsvd.degrade" then Float.infinity else residual
  in
  {
    svd = { Svd.u = Cmat.mul q d.Svd.u; sigma = d.Svd.sigma; v = d.Svd.v };
    residual;
    certified = residual <= tol *. norm_a;
    sketch = Cmat.cols q;
    total;
  }

let exact a =
  let m, n = Cmat.dims a in
  let k = Stdlib.min m n in
  { svd = Svd.decompose a; residual = 0.; certified = true; sketch = k;
    total = k }

let transpose_result r =
  { r with svd = { r.svd with Svd.u = r.svd.Svd.v; v = r.svd.Svd.u } }

let decompose_tall ?(seed = default_seed) ?(oversample = default_oversample)
    ?(power = default_power) ?(tol = default_tol) ~rank a =
  let m, n = Cmat.dims a in
  assert (m >= n);
  let l = Stdlib.min n (Stdlib.max 1 rank + oversample) in
  if n <= small_cutoff || l >= n then exact a
  else begin
    let norm_a = Cmat.norm_fro a in
    if norm_a = 0. then exact a
    else begin
      let rng = Rng.create seed in
      let omega = Cmat.random rng n l in
      let q = orthonormalize (Cmat.mul a omega) in
      let q = power_iterate a q power in
      finish ~tol ~norm_a ~total:n a q
    end
  end

let decompose_adaptive_tall ?(seed = default_seed) ?(power = default_power)
    ?(tol = default_tol) a =
  let m, n = Cmat.dims a in
  assert (m >= n);
  if n <= small_cutoff then exact a
  else begin
    let norm_a = Cmat.norm_fro a in
    if norm_a = 0. then exact a
    else begin
      let rng = Rng.create seed in
      (* A poisoned certificate can never certify; growing the sketch
         to full width would just burn time before the caller falls
         back, so return the first (degraded) round immediately. *)
      let degraded = Fault.armed "svd.rsvd.degrade" in
      let l0 = Stdlib.min n (Stdlib.max 16 (n / 4)) in
      let omega = Cmat.random rng n l0 in
      let q0 = power_iterate a (orthonormalize (Cmat.mul a omega)) power in
      let rec grow q =
        let l = Cmat.cols q in
        let r = finish ~tol ~norm_a ~total:n a q in
        if r.certified || degraded || l >= n then r
        else begin
          (* Geometric growth, reusing the basis built so far: fresh
             sketch columns are power-iterated, projected against the
             existing Q (twice), and orthonormalized — never
             recomputed from scratch. *)
          let dl = Stdlib.min l (n - l) in
          let omega = Cmat.random rng n dl in
          let y = power_iterate a (orthonormalize (Cmat.mul a omega)) power in
          let fresh = orthonormalize (project_out q y) in
          grow (Cmat.hcat q fresh)
        end
      in
      grow q0
    end
  end

let decompose ?seed ?oversample ?power ?tol ~rank a =
  let m, n = Cmat.dims a in
  if m = 0 || n = 0 then exact a
  else if m >= n then decompose_tall ?seed ?oversample ?power ?tol ~rank a
  else
    transpose_result
      (decompose_tall ?seed ?oversample ?power ?tol ~rank (Cmat.ctranspose a))

let decompose_adaptive ?seed ?power ?tol a =
  let m, n = Cmat.dims a in
  if m = 0 || n = 0 then exact a
  else if m >= n then decompose_adaptive_tall ?seed ?power ?tol a
  else
    transpose_result (decompose_adaptive_tall ?seed ?power ?tol (Cmat.ctranspose a))
