(** LU factorization with partial pivoting, for complex matrices.

    This is the kernel behind every transfer-function evaluation
    [H(s) = C (sE - A)^{-1} B + D]: one factorization per frequency
    point, reused across all right-hand sides. *)

type factor

exception Singular of int
(** Raised (with the offending elimination step) when a pivot is exactly
    zero; near-singular systems go through but [cond_est] flags them. *)

(** [factorize a] computes [P A = L U] for square [a]. *)
val factorize : Cmat.t -> factor

(** [solve f b] solves [A X = B] for every column of [b]. *)
val solve : factor -> Cmat.t -> Cmat.t

(** [solve_mat a b] is [solve (factorize a) b]. *)
val solve_mat : Cmat.t -> Cmat.t -> Cmat.t

(** [solve_robust a b] solves [A X = B] with a fallback cascade: LU
    with partial pivoting first; on pivot breakdown ({!Singular}, or
    the ["lu.singular"] fault) a column-pivoted QR rank-truncated
    least-squares solve.  Never raises {!Singular}; the fallback is
    recorded in the ambient {!Diag} collector as ["lu.qr_fallback"]. *)
val solve_robust : Cmat.t -> Cmat.t -> Cmat.t

val det : factor -> Cx.t
val inverse : Cmat.t -> Cmat.t

(** Reciprocal condition estimate [1 / (norm1 A * norm1 A^-1)] — cheap and
    adequate for sanity checks, not a LAPACK-grade estimator. *)
val rcond_est : Cmat.t -> float
