type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Cmat: negative dimension";
  { rows; cols; re = Array.make (rows * cols) 0.; im = Array.make (rows * cols) 0. }

let zeros = create

let init rows cols f =
  let m = create rows cols in
  for jcol = 0 to cols - 1 do
    for i = 0 to rows - 1 do
      let z = f i jcol in
      m.re.(i + (jcol * rows)) <- z.Cx.re;
      m.im.(i + (jcol * rows)) <- z.Cx.im
    done
  done;
  m

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.(i + (i * n)) <- 1.
  done;
  m

let scalar z = init 1 1 (fun _ _ -> z)

let of_rows rows_list =
  match rows_list with
  | [] -> create 0 0
  | first :: _ ->
    let rows = List.length rows_list and cols = List.length first in
    let m = create rows cols in
    List.iteri
      (fun i row ->
        if List.length row <> cols then invalid_arg "Cmat.of_rows: ragged rows";
        List.iteri
          (fun jcol (z : Cx.t) ->
            m.re.(i + (jcol * rows)) <- z.re;
            m.im.(i + (jcol * rows)) <- z.im)
          row)
      rows_list;
    m

let of_real (r : Rmat.t) =
  { rows = r.Rmat.rows; cols = r.Rmat.cols;
    re = Array.copy r.Rmat.data;
    im = Array.make (Array.length r.Rmat.data) 0. }

let of_parts (re : Rmat.t) (im : Rmat.t) =
  if Rmat.dims re <> Rmat.dims im then invalid_arg "Cmat.of_parts: dimension mismatch";
  { rows = re.Rmat.rows; cols = re.Rmat.cols;
    re = Array.copy re.Rmat.data; im = Array.copy im.Rmat.data }

let col_vector a = init (Array.length a) 1 (fun i _ -> a.(i))
let row_vector a = init 1 (Array.length a) (fun _ jcol -> a.(jcol))
let random rng rows cols = init rows cols (fun _ _ -> Rng.complex_gaussian rng)
let random_real rng rows cols = init rows cols (fun _ _ -> Cx.of_float (Rng.gaussian rng))
let dims m = (m.rows, m.cols)
let rows m = m.rows
let cols m = m.cols

let get m i jcol =
  let k = i + (jcol * m.rows) in
  Cx.make m.re.(k) m.im.(k)

let set m i jcol (z : Cx.t) =
  let k = i + (jcol * m.rows) in
  m.re.(k) <- z.re;
  m.im.(k) <- z.im

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }
let map f m = init m.rows m.cols (fun i jcol -> f (get m i jcol))
let mapi f m = init m.rows m.cols (fun i jcol -> f i jcol (get m i jcol))

let iteri f m =
  for jcol = 0 to m.cols - 1 do
    for i = 0 to m.rows - 1 do
      f i jcol (get m i jcol)
    done
  done

let transpose m = init m.cols m.rows (fun i jcol -> get m jcol i)
let ctranspose m = init m.cols m.rows (fun i jcol -> Cx.conj (get m jcol i))

let conj m = { m with re = Array.copy m.re; im = Array.map (fun x -> -.x) m.im }
let neg m = { m with re = Array.map (fun x -> -.x) m.re; im = Array.map (fun x -> -.x) m.im }

let same_dims a b op =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Cmat.%s: dimension mismatch %dx%d vs %dx%d"
                   op a.rows a.cols b.rows b.cols)

let add a b =
  same_dims a b "add";
  { a with
    re = Array.init (Array.length a.re) (fun k -> a.re.(k) +. b.re.(k));
    im = Array.init (Array.length a.im) (fun k -> a.im.(k) +. b.im.(k)) }

let sub a b =
  same_dims a b "sub";
  { a with
    re = Array.init (Array.length a.re) (fun k -> a.re.(k) -. b.re.(k));
    im = Array.init (Array.length a.im) (fun k -> a.im.(k) -. b.im.(k)) }

let scale (z : Cx.t) m =
  { m with
    re = Array.init (Array.length m.re) (fun k -> (z.re *. m.re.(k)) -. (z.im *. m.im.(k)));
    im = Array.init (Array.length m.im) (fun k -> (z.re *. m.im.(k)) +. (z.im *. m.re.(k))) }

let scale_float s m =
  { m with re = Array.map (( *. ) s) m.re; im = Array.map (( *. ) s) m.im }

let mul_reference a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Cmat.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let c = create a.rows b.cols in
  (* (ar + j ai)(br + j bi): four real saxpy passes per (k, jcol). *)
  for jcol = 0 to b.cols - 1 do
    let coff = jcol * a.rows in
    for k = 0 to a.cols - 1 do
      let boff = k + (jcol * b.rows) in
      let br = b.re.(boff) and bi = b.im.(boff) in
      if br <> 0. || bi <> 0. then begin
        let aoff = k * a.rows in
        for i = 0 to a.rows - 1 do
          let ar = a.re.(aoff + i) and ai = a.im.(aoff + i) in
          c.re.(coff + i) <- c.re.(coff + i) +. (ar *. br) -. (ai *. bi);
          c.im.(coff + i) <- c.im.(coff + i) +. (ar *. bi) +. (ai *. br)
        done
      end
    done
  done;
  c

(* Below [gemm_small_work] multiply-adds, the reference kernel wins
   (no pack, no pool handshake, no dispatch overhead). *)
let gemm_small_work = 32 * 32 * 32

(* The large-size [mul] packs conj(A^T) once — a cache-blocked O(mk)
   transpose — and then runs the contiguous dot-product kernel shared
   with [mul_cn]: both operand columns stream unit-stride, which beats
   every saxpy variant measured on this substrate.  The per-entry
   accumulation order over k is that of the reference kernel
   (k ascending), keeping the blocked path numerically aligned with
   it. *)
let transpose_tile = 32

(* conj(A^T) with 32x32 tiles so both source and destination touch a
   bounded working set; negating twice is exact, so routing [mul]
   through the conjugating dot kernel reproduces A's entries bit for
   bit. *)
let ctranspose_packed a =
  let m = a.rows and n = a.cols in
  let t = create n m in
  let are = a.re and aim = a.im in
  let tre = t.re and tim = t.im in
  let jb = ref 0 in
  while !jb < n do
    let jhi = Stdlib.min n (!jb + transpose_tile) in
    let ib = ref 0 in
    while !ib < m do
      let ihi = Stdlib.min m (!ib + transpose_tile) in
      for jcol = !jb to jhi - 1 do
        for i = !ib to ihi - 1 do
          let src = i + (jcol * m) and dst = jcol + (i * n) in
          Array.unsafe_set tre dst (Array.unsafe_get are src);
          Array.unsafe_set tim dst (-.Array.unsafe_get aim src)
        done
      done;
      ib := ihi
    done;
    jb := jhi
  done;
  t

(* C = conj(A)^T B with A consumed column-wise: four C rows per B
   column sweep, unit-stride loads on both operands, unchecked
   accesses.  Row groups are formed inside each B column, so the
   parallel chunking over columns cannot change any result. *)
let gemm_panel = 96

external conj_dot_block :
  float array -> float array -> float array -> float array ->
  float array -> float array -> int -> int -> int -> int -> int -> int ->
  unit
  = "mfti_conj_dot_block_byte" "mfti_conj_dot_block"
[@@noalloc]

let dot_kernel a b =
  let kk = a.rows and m = a.cols and n = b.cols in
  let c = create m n in
  (* columns are uniform work: one chunk per domain minimizes pool
     handshakes *)
  let dc = Parallel.domain_count () in
  let chunk = Stdlib.max 1 ((n + dc - 1) / dc) in
  (* C-row panels keep the corresponding [gemm_panel] columns of the
     packed operand L2-resident while every column of [b] streams
     against them, instead of re-reading all of [a] from memory for
     each result column.  Per-entry dots are unchanged by the panel
     split; the dots themselves run in the vectorized C microkernel. *)
  let ip = ref 0 in
  while !ip < m do
    let ilo = !ip and ihi = Stdlib.min m (!ip + gemm_panel) in
    Parallel.parallel_for ~chunk n (fun j0 j1 ->
        conj_dot_block a.re a.im b.re b.im c.re c.im kk m ilo ihi j0 j1);
    ip := ihi
  done;
  c

let mul_blocked a b = dot_kernel (ctranspose_packed a) b

let mul a b =
  if a.cols <> b.rows then
    invalid_arg (Printf.sprintf "Cmat.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  if a.rows * a.cols * b.cols <= gemm_small_work then mul_reference a b
  else mul_blocked a b

let mul_cn_reference a b =
  if a.rows <> b.rows then invalid_arg "Cmat.mul_cn: dimension mismatch";
  let c = create a.cols b.cols in
  for jcol = 0 to b.cols - 1 do
    let boff = jcol * b.rows in
    for i = 0 to a.cols - 1 do
      let aoff = i * a.rows in
      let accr = ref 0. and acci = ref 0. in
      for k = 0 to a.rows - 1 do
        let ar = a.re.(aoff + k) and ai = -.a.im.(aoff + k) in
        let br = b.re.(boff + k) and bi = b.im.(boff + k) in
        accr := !accr +. (ar *. br) -. (ai *. bi);
        acci := !acci +. (ar *. bi) +. (ai *. br)
      done;
      c.re.(i + (jcol * a.cols)) <- !accr;
      c.im.(i + (jcol * a.cols)) <- !acci
    done
  done;
  c

(* [mul_cn] is exactly the dot kernel: A is already consumed
   column-wise as conj(A)^T. *)
let mul_cn_blocked = dot_kernel

let mul_cn a b =
  if a.rows <> b.rows then invalid_arg "Cmat.mul_cn: dimension mismatch";
  if a.rows * a.cols * b.cols <= gemm_small_work then mul_cn_reference a b
  else mul_cn_blocked a b

let axpy alpha x y =
  same_dims x y "axpy";
  let n = Array.length x.re in
  let r = create x.rows x.cols in
  let zr = alpha.Cx.re and zi = alpha.Cx.im in
  for k = 0 to n - 1 do
    r.re.(k) <- (zr *. x.re.(k)) -. (zi *. x.im.(k)) +. y.re.(k);
    r.im.(k) <- (zr *. x.im.(k)) +. (zi *. x.re.(k)) +. y.im.(k)
  done;
  r

let sub_matrix m ~r ~c ~rows ~cols =
  if r < 0 || c < 0 || r + rows > m.rows || c + cols > m.cols then
    invalid_arg "Cmat.sub_matrix: block out of range";
  let blk = create rows cols in
  for jcol = 0 to cols - 1 do
    let src = r + ((c + jcol) * m.rows) and dst = jcol * rows in
    Array.blit m.re src blk.re dst rows;
    Array.blit m.im src blk.im dst rows
  done;
  blk

let set_sub m ~r ~c blk =
  if r < 0 || c < 0 || r + blk.rows > m.rows || c + blk.cols > m.cols then
    invalid_arg "Cmat.set_sub: block out of range";
  for jcol = 0 to blk.cols - 1 do
    let dst = r + ((c + jcol) * m.rows) and src = jcol * blk.rows in
    Array.blit blk.re src m.re dst blk.rows;
    Array.blit blk.im src m.im dst blk.rows
  done

let col m jcol = sub_matrix m ~r:0 ~c:jcol ~rows:m.rows ~cols:1
let row m i = sub_matrix m ~r:i ~c:0 ~rows:1 ~cols:m.cols

let set_col m jcol v =
  if v.rows <> m.rows || v.cols <> 1 then invalid_arg "Cmat.set_col: shape mismatch";
  set_sub m ~r:0 ~c:jcol v

let set_row m i v =
  if v.cols <> m.cols || v.rows <> 1 then invalid_arg "Cmat.set_row: shape mismatch";
  set_sub m ~r:i ~c:0 v

let select_rows m idx =
  init (Array.length idx) m.cols (fun i jcol -> get m idx.(i) jcol)

let select_cols m idx =
  let blk = create m.rows (Array.length idx) in
  Array.iteri
    (fun jcol src ->
      Array.blit m.re (src * m.rows) blk.re (jcol * m.rows) m.rows;
      Array.blit m.im (src * m.rows) blk.im (jcol * m.rows) m.rows)
    idx;
  blk

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Cmat.hcat: row mismatch";
  let m = create a.rows (a.cols + b.cols) in
  Array.blit a.re 0 m.re 0 (Array.length a.re);
  Array.blit a.im 0 m.im 0 (Array.length a.im);
  Array.blit b.re 0 m.re (Array.length a.re) (Array.length b.re);
  Array.blit b.im 0 m.im (Array.length a.im) (Array.length b.im);
  m

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Cmat.vcat: column mismatch";
  let m = create (a.rows + b.rows) a.cols in
  set_sub m ~r:0 ~c:0 a;
  set_sub m ~r:a.rows ~c:0 b;
  m

let blocks rows_of_blocks =
  match rows_of_blocks with
  | [] -> create 0 0
  | _ ->
    let row_of_blocks blks =
      match blks with
      | [] -> invalid_arg "Cmat.blocks: empty block row"
      | first :: rest -> List.fold_left hcat first rest
    in
    (match List.map row_of_blocks rows_of_blocks with
     | [] -> assert false
     | first :: rest -> List.fold_left vcat first rest)

let blkdiag blks =
  let rows = List.fold_left (fun acc b -> acc + b.rows) 0 blks in
  let cols = List.fold_left (fun acc b -> acc + b.cols) 0 blks in
  let m = create rows cols in
  let _ =
    List.fold_left
      (fun (r, c) b ->
        set_sub m ~r ~c b;
        (r + b.rows, c + b.cols))
      (0, 0) blks
  in
  m

let trace m =
  let n = Stdlib.min m.rows m.cols in
  let accr = ref 0. and acci = ref 0. in
  for i = 0 to n - 1 do
    accr := !accr +. m.re.(i + (i * m.rows));
    acci := !acci +. m.im.(i + (i * m.rows))
  done;
  Cx.make !accr !acci

let norm_fro m =
  let acc = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    acc := !acc +. (m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k))
  done;
  Stdlib.sqrt !acc

let max_abs m =
  let acc = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    acc := Stdlib.max !acc (Stdlib.sqrt ((m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k))))
  done;
  !acc

let is_finite m =
  let ok = ref true in
  for k = 0 to Array.length m.re - 1 do
    if not (Float.is_finite m.re.(k) && Float.is_finite m.im.(k)) then
      ok := false
  done;
  !ok

let norm_one m =
  let best = ref 0. in
  for jcol = 0 to m.cols - 1 do
    let acc = ref 0. in
    for i = 0 to m.rows - 1 do
      let k = i + (jcol * m.rows) in
      acc := !acc +. Stdlib.sqrt ((m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k)))
    done;
    best := Stdlib.max !best !acc
  done;
  !best

let vec_norm m =
  if m.rows <> 1 && m.cols <> 1 then invalid_arg "Cmat.vec_norm: not a vector";
  norm_fro m

let vec_dot x y =
  if (x.rows <> 1 && x.cols <> 1) || (y.rows <> 1 && y.cols <> 1) then
    invalid_arg "Cmat.vec_dot: not vectors";
  let n = Array.length x.re in
  if n <> Array.length y.re then invalid_arg "Cmat.vec_dot: length mismatch";
  let accr = ref 0. and acci = ref 0. in
  for k = 0 to n - 1 do
    let ar = x.re.(k) and ai = -.x.im.(k) in
    let br = y.re.(k) and bi = y.im.(k) in
    accr := !accr +. (ar *. br) -. (ai *. bi);
    acci := !acci +. (ar *. bi) +. (ai *. br)
  done;
  Cx.make !accr !acci

let real_part m = Rmat.init m.rows m.cols (fun i jcol -> m.re.(i + (jcol * m.rows)))
let imag_part m = Rmat.init m.rows m.cols (fun i jcol -> m.im.(i + (jcol * m.rows)))

let max_imag m = Array.fold_left (fun acc x -> Stdlib.max acc (abs_float x)) 0. m.im

let to_real ~tol m =
  let scale_ref = Stdlib.max (norm_fro m) 1e-300 in
  if max_imag m > tol *. scale_ref then
    invalid_arg
      (Printf.sprintf "Cmat.to_real: imaginary residue %.3g exceeds tol %.3g"
         (max_imag m /. scale_ref) tol);
  real_part m

let equal ~tol a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let n = Array.length a.re in
  let ok = ref true and k = ref 0 in
  while !ok && !k < n do
    let dr = a.re.(!k) -. b.re.(!k) and di = a.im.(!k) -. b.im.(!k) in
    if Stdlib.sqrt ((dr *. dr) +. (di *. di)) > tol then ok := false;
    incr k
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>";
    for jcol = 0 to m.cols - 1 do
      if jcol > 0 then Format.fprintf ppf "  ";
      Format.fprintf ppf "%a" Cx.pp (get m i jcol)
    done;
    Format.fprintf ppf "@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

let unsafe_re m = m.re
let unsafe_im m = m.im
