(** Householder QR factorization of complex matrices.

    The reflector phases are chosen so that each [H_k] is Hermitian with a
    real coefficient, which keeps [Q] application numerically clean.  Used
    for least-squares solves (vector fitting) and for orthonormalizing
    interpolation directions. *)

type factor

(** [factorize a] for any [m x n] (both [m >= n] and [m < n] accepted). *)
val factorize : Cmat.t -> factor

(** The [min(m,n) x n] upper-triangular factor. *)
val r : factor -> Cmat.t

(** [apply_qh f b] computes [Q* B] ([b] has [m] rows). *)
val apply_qh : factor -> Cmat.t -> Cmat.t

(** [apply_q f b] computes [Q B]. *)
val apply_q : factor -> Cmat.t -> Cmat.t

(** Thin orthonormal factor: [m x min(m,n)] with [Q* Q = I]. *)
val thin_q : factor -> Cmat.t

(** [solve_ls a b] minimizes [|A x - B|_F] for full-column-rank [a]
    ([m >= n]).  Raises [Invalid_argument] on rank deficiency detected via
    a zero diagonal of [R]. *)
val solve_ls : Cmat.t -> Cmat.t -> Cmat.t

(** [orthonormalize a] returns a matrix with orthonormal columns spanning
    the columns of [a] (thin [Q]).  [a] must have [m >= n]. *)
val orthonormalize : Cmat.t -> Cmat.t

type factor_cp

(** [factorize_cp a]: Householder QR with column pivoting — at each
    step the remaining column of largest tail norm is eliminated, so
    [|R_00| >= |R_11| >= ...] numerically and the diagonal exposes the
    rank.  The fallback factorization when LU pivoting breaks down. *)
val factorize_cp : Cmat.t -> factor_cp

(** [solve_cp ?rtol f b]: rank-truncated least-squares solve.  Unknowns
    whose pivoted diagonal falls below [rtol * |R_00|] (default
    [1e-12]) are set to zero rather than divided by, so singular and
    rank-deficient systems yield a finite solution instead of raising. *)
val solve_cp : ?rtol:float -> factor_cp -> Cmat.t -> Cmat.t
