/* Vectorized microkernel for the blocked complex GEMM.
 *
 * The OCaml side packs conj(A)^T so that every result entry is a pair of
 * contiguous dot products; this stub computes one rows x cols block of
 * those dots.  Separate re/im arrays (SoA) keep the k-loop a plain
 * fused-multiply-add reduction that the C compiler vectorizes.
 *
 * No allocation, no exceptions, no callbacks into the runtime: the
 * external is declared [@@noalloc] and raw [float array] data pointers
 * stay valid for the whole call (this domain cannot reach a GC
 * safepoint while inside).
 *
 * Layouts (column-major, zero-based):
 *   at : kk x m   column i holds conj of row i of the left operand
 *   b  : kk x n
 *   c  : m  x n   entries [ilo,ihi) x [j0,j1) are written, disjointly
 *                 per parallel chunk.
 *
 * For a fixed (i, j) the reduction order depends only on kk and the
 * pointer values, never on the [j0,j1) chunking, so results are
 * bit-identical for any domain count.
 */

#include <caml/mlvalues.h>

/* Elements of an OCaml float array are unboxed doubles stored inline. */
#define DATA(v) ((double *) Op_val(v))

CAMLprim value mfti_conj_dot_block(value vatre, value vatim, value vbre,
                                   value vbim, value vcre, value vcim,
                                   value vkk, value vm, value vilo,
                                   value vihi, value vj0, value vj1)
{
  const double *atre = DATA(vatre);
  const double *atim = DATA(vatim);
  const double *bre = DATA(vbre);
  const double *bim = DATA(vbim);
  double *cre = DATA(vcre);
  double *cim = DATA(vcim);
  long kk = Long_val(vkk);
  long m = Long_val(vm);
  long ilo = Long_val(vilo);
  long ihi = Long_val(vihi);
  long j0 = Long_val(vj0);
  long j1 = Long_val(vj1);

  for (long j = j0; j < j1; j++) {
    const double *brj = bre + j * kk;
    const double *bij = bim + j * kk;
    long i = ilo;
    /* Two result rows per pass reuse each loaded b vector twice. */
    for (; i + 1 < ihi; i += 2) {
      const double *a0r = atre + i * kk;
      const double *a0i = atim + i * kk;
      const double *a1r = a0r + kk;
      const double *a1i = a0i + kk;
      double s0r = 0.0, s0i = 0.0, s1r = 0.0, s1i = 0.0;
      for (long k = 0; k < kk; k++) {
        double br = brj[k], bi = bij[k];
        s0r += a0r[k] * br + a0i[k] * bi;
        s0i += a0r[k] * bi - a0i[k] * br;
        s1r += a1r[k] * br + a1i[k] * bi;
        s1i += a1r[k] * bi - a1i[k] * br;
      }
      cre[i + j * m] = s0r;
      cim[i + j * m] = s0i;
      cre[i + 1 + j * m] = s1r;
      cim[i + 1 + j * m] = s1i;
    }
    if (i < ihi) {
      const double *ar = atre + i * kk;
      const double *ai = atim + i * kk;
      double sr = 0.0, si = 0.0;
      for (long k = 0; k < kk; k++) {
        sr += ar[k] * brj[k] + ai[k] * bij[k];
        si += ar[k] * bij[k] - ai[k] * brj[k];
      }
      cre[i + j * m] = sr;
      cim[i + j * m] = si;
    }
  }
  return Val_unit;
}

CAMLprim value mfti_conj_dot_block_byte(value *argv, int argn)
{
  (void) argn;
  return mfti_conj_dot_block(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6], argv[7], argv[8], argv[9],
                             argv[10], argv[11]);
}
