type t =
  | Parse of { source : string option; line : int option; message : string }
  | Validation of { context : string; message : string }
  | Numerical_breakdown of {
      context : string;
      message : string;
      condition : float option;
    }
  | Non_convergence of {
      context : string;
      achieved : float;
      target : float;
      iterations : int;
    }
  | Budget_exhausted of { context : string; budget : string }
  | Fault_injected of { site : string }

exception Error of t

let to_string = function
  | Parse { source; line; message } ->
    Printf.sprintf "parse error%s%s: %s"
      (match source with Some s -> " in " ^ s | None -> "")
      (match line with Some l -> Printf.sprintf " (line %d)" l | None -> "")
      message
  | Validation { context; message } ->
    Printf.sprintf "invalid input (%s): %s" context message
  | Numerical_breakdown { context; message; condition } ->
    Printf.sprintf "numerical breakdown (%s): %s%s" context message
      (match condition with
       | Some c -> Printf.sprintf " [condition ~ %.3g]" c
       | None -> "")
  | Non_convergence { context; achieved; target; iterations } ->
    Printf.sprintf
      "non-convergence (%s): reached %.3g (target %.3g) after %d iterations"
      context achieved target iterations
  | Budget_exhausted { context; budget } ->
    Printf.sprintf "budget exhausted (%s): %s" context budget
  | Fault_injected { site } -> Printf.sprintf "injected fault at %s" site

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* sysexits(3) style: EX_USAGE for caller mistakes, EX_DATAERR for bad
   input data, EX_SOFTWARE for numerical failure the caller cannot fix
   by changing arguments. *)
let exit_code = function
  | Validation _ -> 64
  | Parse _ -> 65
  | Numerical_breakdown _ | Non_convergence _ | Budget_exhausted _
  | Fault_injected _ -> 70

let of_exn ~context = function
  | Error e -> e
  | Fault.Injected site -> Fault_injected { site }
  | Invalid_argument message -> Validation { context; message }
  | Failure message ->
    Numerical_breakdown { context; message; condition = None }
  | Sys_error message -> Parse { source = None; line = None; message }
  | e ->
    Numerical_breakdown
      { context; message = Printexc.to_string e; condition = None }

let guard ~context f =
  match f () with
  | x -> Ok x
  | exception (Stack_overflow | Out_of_memory) ->
    (* genuinely unrecoverable resource exhaustion: keep a typed record
       but do not pretend the process state is sound *)
    Result.Error
      (Budget_exhausted { context; budget = "memory or stack exhausted" })
  | exception e -> Result.Error (of_exn ~context e)

let raise_error e = raise (Error e)
