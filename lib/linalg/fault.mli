(** Deterministic fault injection for the robustness test harness.

    A spec is a comma-separated list of site names, e.g.
    [MFTI_FAULT="svd.no_converge,pool.worker"].  When a site is armed
    its injection point fires on every visit, with no randomness, so a
    failing scenario replays exactly.  With no spec every injection
    point is a no-op costing one atomic read.

    Sites used by the library (layers above add their own):
    - ["touchstone.corrupt"]   garbage token prepended to parser input
    - ["sample.corrupt"]       NaN written into the first fitted sample
    - ["loewner.poison"]       NaN written into the assembled pencil
    - ["svd.no_converge"]      sweep/iteration budgets collapsed to force
                               the SVD non-convergence cascade
    - ["svd.rsvd.degrade"]     randomized-SVD residual certificate
                               poisoned to infinity, so the reduce stage
                               deterministically takes the exact-cascade
                               fallback (recorded as ["svd.rsvd.fallback"]
                               in {!Diag}; the sketch's own Householder
                               retreat is ["svd.rsvd.cholqr_fallback"])
    - ["lu.singular"]          LU factorization reports pivot breakdown
    - ["pool.worker"]          domain-pool worker raises mid-chunk
    - ["algorithm2.diverge"]   recursion residuals inflated to trigger
                               the divergence guard
    - ["artifact.corrupt"]     header byte flipped in an encoded model
                               artifact (serving layer)
    - ["artifact.truncate"]    encoded model artifact cut short
    - ["compiled.defective"]   pole-residue compilation forced into the
                               direct-LU fallback
    - ["serve.torn_write"]     artifact save killed mid-write: half the
                               bytes reach the temp file, no rename
    - ["serve.slow_client"]    supervisor treats a partial request frame
                               as having blown its read deadline
    - ["serve.stall"]          request handler sleeps past the request
                               deadline, forcing a "timeout" response
    - ["serve.conn_drop"]      worker raises mid-connection, exercising
                               the supervisor restart/backoff path
    - ["certify.unstable"]     certification's stability verdict forced
                               false: in [Check] mode the certificate
                               reports [stable = false], in [Repair]
                               mode the post-reflection re-check fails
                               and the model is refused with a typed
                               [Numerical_breakdown]
    - ["certify.passivity_violation"]
                               certification's sampled passivity margin
                               forced above the perturbative repair
                               limit, so [Repair] refuses the model as
                               incurable ([Numerical_breakdown])
    - ["certify.repair_stall"] certification's passivity re-check pinned
                               to "still violating", so the bounded
                               repair loop exhausts and [Repair] fails
                               with a typed [Non_convergence]
    - ["session.stale_append"] a streaming fit session treats the next
                               append as landing on an expired/stale
                               session and refuses it with a typed
                               [Validation] — the client raced the TTL
                               reaper
    - ["session.finalize_race"]
                               a streaming fit session's finalize
                               behaves as if another finalize is
                               already in flight and refuses with a
                               typed [Validation] — two clients racing
                               one session id
    - ["sparse.singular_pivot"]
                               sparse LU reports a zero pivot at the
                               first elimination step, surfacing the
                               typed [Numerical_breakdown] a singular
                               shifted pencil would produce
    - ["sparse.ordering_degrade"]
                               AMD ordering abandoned: the natural
                               (identity) permutation is returned and
                               the degradation recorded in {!Diag}, so
                               fill blow-ups stay observable
    - ["router.partition"]     the routing tier treats its first
                               configured replica as network-partitioned:
                               requests and health probes to it fail at
                               the connection level, exercising failover
                               along the hash ring and the Down/rejoin
                               path
    - ["router.slow_replica"]  requests routed to the first configured
                               replica are treated as having blown the
                               upstream deadline: the client gets a
                               typed "timeout" response and the router
                               does NOT fail over (the work may still
                               land there; re-running it elsewhere would
                               double-execute)
    - ["router.rejoin_flap"]   health probes of the first configured
                               replica alternate failed/ok, so the
                               replica churns Up/Suspect and the ring's
                               rejoin logic (pool flush, backoff reset,
                               no double-execution) is exercised
                               repeatedly *)

exception Injected of string
(** Raised by {!check} at an armed site. *)

(** [armed site] is true when [site] appears in the active spec. *)
val armed : string -> bool

(** [check site] raises [Injected site] when armed, else does nothing. *)
val check : string -> unit

(** [poison site x] is [nan] when armed, else [x]. *)
val poison : string -> float -> float

(** [set_spec (Some "a,b")] replaces the active spec; [set_spec None]
    clears it.  The [MFTI_FAULT] environment variable is read once, on
    first use, unless a spec was set first. *)
val set_spec : string option -> unit

(** [with_spec s f] runs [f] with spec [s] active, restoring the
    previous spec afterwards (also on exceptions). *)
val with_spec : string -> (unit -> 'a) -> 'a
